GO ?= go

.PHONY: all build vet lint test race bench bench-baseline bench-check chaos-smoke chaos-nightly scale-smoke scale-full live-smoke livechaos-smoke livechaos-nightly rebalance-smoke tier1 ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint: vet, formatting, and doc coverage of the public surfaces (every
# exported symbol of the root rescon facade and of the rcruntime bridge
# must carry a doc comment).
lint: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) run ./cmd/checkdocs . ./internal/rcruntime

# Fast suite: -short skips the long experiment sweeps but keeps the
# runtime invariant checker on (the experiments test Options enable it).
test:
	$(GO) test -short ./...

# Full suite under the race detector — the tier-1 gate.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run - -bench . -benchtime 1x ./...

# Record the full testing.B suite as a JSON baseline for perf-regression
# comparisons (docs/PERFORMANCE.md). Uses a real benchtime so the numbers
# are stable enough to compare against.
bench-baseline:
	$(GO) test -run - -bench . -benchmem -timeout 30m ./... | $(GO) run ./cmd/benchjson -o BENCH_baseline.json

# Benchmark-regression gate: re-run the testing.B suite and diff against
# the stored baseline — ns/op must stay within ±20%, and the pinned hot
# paths (docs/PERFORMANCE.md) must stay at exactly 0 allocs/op.
BENCH_TOL ?= 0.20
bench-check:
	$(GO) test -run - -bench . -benchmem -timeout 30m ./... | $(GO) run ./cmd/benchjson -check BENCH_baseline.json -tol $(BENCH_TOL)

# Chaos harness smoke: a handful of seeded scenarios, each run under all
# three kernel modes with the invariant battery and the determinism
# double-run, under the race detector. Failing seeds shrink to JSON
# repros in the working directory (chaos-repro-<seed>-<mode>.json).
chaos-smoke:
	$(GO) run -race ./cmd/rcchaos -run 8 -seed 1

# The nightly sweep: a much wider seed range (rotate the base seed to
# cover new ground; CI passes the run date).
CHAOS_NIGHTLY_SEED ?= 1
chaos-nightly:
	$(GO) run ./cmd/rcchaos -run 500 -seed $(CHAOS_NIGHTLY_SEED)

# Datacenter-scale smoke: ramp each kernel mode to 100k concurrent
# connections (quick axis) under the race detector. Verifies the
# flyweight conn table, batched accept path and timing wheel end to end
# on every push without paying for the 1M ramp.
scale-smoke:
	$(GO) run -race ./cmd/rcbench -exp scale -quick

# The full sweep: 10k → 1M concurrent connections across all six
# mode × policing configs (nightly alongside the chaos sweep).
scale-full:
	$(GO) run ./cmd/rcbench -exp scale

# Live-bridge smoke: boot a real net/http server on loopback, govern it
# with rcruntime, and drive the closed-loop load generator under virtual
# time. -check makes the run fail unless the policed configuration's
# well-behaved goodput strictly exceeds the unpoliced one.
live-smoke:
	$(GO) run -race ./cmd/rcbench -exp live -quick -check

# Survivability smoke: the same real server under live fault injection
# (handler stalls, panics, connection resets) with the closed-loop
# watchdog defending. -check re-runs both cells and enforces
# byte-identical results, clamp-then-restore, zero drain leaks, and
# defended goodput strictly above undefended.
livechaos-smoke:
	$(GO) run -race ./cmd/rcbench -exp livechaos -quick -check

# Nightly live fuzz: seeded breaker/watchdog interaction scenarios on
# the real middleware stack, hunting oscillation, starvation, ledger
# drift and leaks. Failing seeds shrink to live-repro-<seed>.json.
livechaos-nightly:
	$(GO) run ./cmd/rcchaos -live -run 300 -seed $(CHAOS_NIGHTLY_SEED)

# Adaptive-rebalancing smoke: the static vs adaptive vs no-damping
# ablation under flash-crowd and diurnal load shifts, across all three
# kernel modes, under the race detector. -check gates on byte-identical
# double runs, adaptive goodput strictly above the static split, the
# damped arm never disarming, the no-damping arm tripping the
# oscillation detector (and restoring the static shares verbatim), and
# the starvation floor holding in every cell.
rebalance-smoke:
	$(GO) run -race ./cmd/rcbench -exp rebalance -quick -check

tier1: build race

ci: build lint race chaos-smoke livechaos-smoke rebalance-smoke
