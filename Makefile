GO ?= go

.PHONY: all build vet test race bench tier1 ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast suite: -short skips the long experiment sweeps but keeps the
# runtime invariant checker on (the experiments test Options enable it).
test:
	$(GO) test -short ./...

# Full suite under the race detector — the tier-1 gate.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run - -bench . -benchtime 1x ./...

tier1: build race

ci: build vet race
