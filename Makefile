GO ?= go

.PHONY: all build vet lint test race bench bench-baseline tier1 ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint: vet, formatting, and facade doc coverage (every exported symbol
# of the root rescon package must carry a doc comment).
lint: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) run ./cmd/checkdocs .

# Fast suite: -short skips the long experiment sweeps but keeps the
# runtime invariant checker on (the experiments test Options enable it).
test:
	$(GO) test -short ./...

# Full suite under the race detector — the tier-1 gate.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run - -bench . -benchtime 1x ./...

# Record the full testing.B suite as a JSON baseline for perf-regression
# comparisons (docs/PERFORMANCE.md). Uses a real benchtime so the numbers
# are stable enough to compare against.
bench-baseline:
	$(GO) test -run - -bench . -benchmem -timeout 30m ./... | $(GO) run ./cmd/benchjson -o BENCH_baseline.json

tier1: build race

ci: build lint race
