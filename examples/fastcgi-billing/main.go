// FastCGI pool + billing: persistent CGI worker processes serve dynamic
// requests with the request's container passed *explicitly* across the
// protection-domain boundary (paper §4.8: "...or explicitly, when
// persistent CGI server processes are used"), and the guest's accumulated
// usage is exported as a JSON billing snapshot (§4.8: "sending accurate
// bills to customers").
package main

import (
	"fmt"
	"os"

	"rescon"
	"rescon/internal/httpsim"
	"rescon/internal/rc"
)

func main() {
	s := rescon.NewSim(rescon.ModeRC, 12)

	// The guest's subtree: server + a CGI sandbox capped at 40%.
	guest, err := rescon.NewContainer(nil, rescon.FixedShare, "guest", rescon.Attributes{})
	if err != nil {
		panic(err)
	}
	cgiParent, err := rescon.NewContainer(guest, rescon.FixedShare, "cgi-sandbox",
		rescon.Attributes{Limit: 0.4})
	if err != nil {
		panic(err)
	}

	srv, err := rescon.NewServer(rescon.ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr:              rescon.Addr("10.0.0.1", 80),
		API:               rescon.EventAPI,
		PerConnContainers: true,
		Parent:            guest,
		CGIParent:         cgiParent,
	})
	if err != nil {
		panic(err)
	}
	if err := srv.Process().DefaultContainer.SetParent(guest); err != nil {
		panic(err)
	}

	// Four persistent FastCGI workers instead of fork-per-request.
	pool, err := httpsim.NewFastCGIPool(srv, 4)
	if err != nil {
		panic(err)
	}

	statics := rescon.MustStartPopulation(16, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
	})
	rescon.MustStartPopulation(3, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.2.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
		Kind:   rescon.CGI,
		CGICPU: 500 * rescon.Millisecond,
	})

	s.RunFor(10 * rescon.Second)

	fmt.Printf("static: %.0f req/s   dynamic served by pool: %d (queue %d, idle workers %d)\n\n",
		statics.Rate(s.Now()), pool.Served, pool.QueueLen(), pool.Idle())

	snap := rc.Capture(guest)
	bill := snap.Bill()
	fmt.Printf("guest bill: cpu=%.3fs (user %.3fs / kernel %.3fs)  pkts=%d/%d  drops=%d\n\n",
		bill.CPUSeconds, bill.UserSeconds, bill.KernSeconds,
		bill.PacketsIn, bill.PacketsOut, bill.Drops)

	fmt.Println("billing snapshot (JSON):")
	if err := rc.WriteJSON(os.Stdout, cgiParent); err != nil {
		panic(err)
	}
}
