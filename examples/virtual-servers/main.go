// Virtual servers (paper §5.8): three guest Web servers on one machine —
// the Rent-A-Server scenario — each rooted in a top-level fixed-share
// container. However many processes and activities each guest spawns, its
// total consumption matches its allocation, and each guest subdivides its
// own share internally (here: a per-guest CGI sandbox).
package main

import (
	"fmt"

	"rescon"
)

func main() {
	s := rescon.NewSim(rescon.ModeRC, 5)

	shares := []float64{0.50, 0.30, 0.20}
	type guest struct {
		root *rescon.Container
		pop  *rescon.Population
	}
	var guests []guest

	for i, share := range shares {
		// Top-level fixed-share container: the guest's whole subtree is
		// guaranteed — and capped at — its share.
		root, err := rescon.NewContainer(nil, rescon.FixedShare,
			fmt.Sprintf("guest-%d", i+1),
			rescon.Attributes{Share: share, Limit: share})
		if err != nil {
			panic(err)
		}
		// Each guest further sandboxes its own CGI work (recursive use of
		// the hierarchy: the guest administers its subtree).
		cgiParent, err := rescon.NewContainer(root, rescon.FixedShare, "cgi", rescon.Attributes{})
		if err != nil {
			panic(err)
		}

		addr := rescon.Addr("10.0.0.1", uint16(8001+i))
		srv, err := rescon.NewServer(rescon.ServerConfig{
			Kernel: s.Kernel, Name: fmt.Sprintf("guest%d", i+1),
			Addr:              addr,
			API:               rescon.SelectAPI,
			PerConnContainers: true,
			Parent:            root,
			CGIParent:         cgiParent,
		})
		if err != nil {
			panic(err)
		}
		// The guest's own process lives inside its subtree.
		if err := srv.Process().DefaultContainer.SetParent(root); err != nil {
			panic(err)
		}

		pop := rescon.MustStartPopulation(16, rescon.ClientConfig{
			Kernel: s.Kernel,
			Src:    rescon.Addr(fmt.Sprintf("10.%d.0.1", i+1), 1024),
			Dst:    addr,
		})
		rescon.MustStartPopulation(1, rescon.ClientConfig{
			Kernel: s.Kernel,
			Src:    rescon.Addr(fmt.Sprintf("10.%d.2.1", i+1), 1024),
			Dst:    addr,
			Kind:   rescon.CGI,
			CGICPU: rescon.Second,
		})
		guests = append(guests, guest{root: root, pop: pop})
	}

	s.RunFor(5 * rescon.Second)
	before := make([]rescon.Duration, len(guests))
	for i, g := range guests {
		g.pop.ResetStats()
		before[i] = g.root.Usage().CPU()
	}
	start := s.Now()
	s.RunFor(20 * rescon.Second)
	elapsed := s.Now().Sub(start)

	fmt.Println("guest    allocated   consumed   static throughput")
	for i, g := range guests {
		used := float64(g.root.Usage().CPU()-before[i]) / float64(elapsed) * 100
		fmt.Printf("guest-%d  %5.1f%%      %5.1f%%     %6.0f req/s\n",
			i+1, shares[i]*100, used, g.pop.Rate(s.Now()))
	}
}
