// SYN-flood defense (paper §5.7, Fig. 14) — the *dynamic* version: the
// server starts unprotected, detects the attack through the kernel's
// SYN-drop notifications, identifies the attacking prefix, and installs a
// filtered listen socket (§4.8) bound to a priority-0 container. The
// attack's connection-request processing then happens only when the CPU
// would otherwise be idle, and throughput recovers.
package main

import (
	"fmt"

	"rescon"
)

const floodRate = 40_000 // SYNs per second

func main() {
	s := rescon.NewSim(rescon.ModeRC, 99)

	var srv *rescon.Server
	var dropsSeen int
	var lastAttacker rescon.Address
	defended := false

	var err error
	srv, err = rescon.NewServer(rescon.ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr:              rescon.Addr("10.0.0.1", 80),
		API:               rescon.EventAPI,
		PerConnContainers: true,
		OnSynDrop: func(src rescon.Address) {
			dropsSeen++
			lastAttacker = src
			// A real server would run proper attack classification; here
			// a burst of drops from one prefix is evidence enough.
			if !defended && dropsSeen > 100 {
				defended = true
				installDefense(srv, lastAttacker)
				fmt.Printf("[%v] %d SYN drops observed — isolating %s/8 on a priority-0 socket\n",
					s.Now(), dropsSeen, lastAttacker.IP)
			}
		},
	})
	if err != nil {
		panic(err)
	}

	good := rescon.MustStartPopulation(32, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
	})

	// Phase 1: healthy baseline.
	s.RunFor(2 * rescon.Second)
	good.ResetStats()
	s.RunFor(3 * rescon.Second)
	fmt.Printf("[%v] baseline throughput:  %6.0f req/s\n", s.Now(), good.Rate(s.Now()))

	// Phase 2: the flood begins from 66.0.0.0/8.
	rescon.StartFlood(s.Kernel, floodRate, rescon.Addr("66.0.0.1", 0).IP, 4096,
		rescon.Addr("10.0.0.1", 80))
	good.ResetStats()
	s.RunFor(3 * rescon.Second)
	fmt.Printf("[%v] under attack:         %6.0f req/s (%d SYNs/s flood)\n",
		s.Now(), good.Rate(s.Now()), floodRate)

	// Phase 3: the defense (installed automatically above) holds.
	good.ResetStats()
	s.RunFor(5 * rescon.Second)
	fmt.Printf("[%v] with defense:         %6.0f req/s\n", s.Now(), good.Rate(s.Now()))
}

// installDefense binds a listen socket whose filter matches the attacking
// /8 to a container with numeric priority zero (§5.7).
func installDefense(srv *rescon.Server, attacker rescon.Address) {
	prefix := attacker.IP & 0xFF000000
	floodCont, err := rescon.NewContainer(nil, rescon.TimeShare, "attackers",
		rescon.Attributes{Priority: 0})
	if err != nil {
		panic(err)
	}
	if _, err := srv.AddListener(rescon.Filter{Template: prefix, MaskBits: 8}, floodCont); err != nil {
		panic(err)
	}
}
