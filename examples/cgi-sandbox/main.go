// CGI sandbox (paper §5.6, Figs. 12–13): put a hard CPU cap around all
// CGI processing by making every CGI request's container a child of one
// capped "CGI-parent" container, and watch static-document throughput
// stay high no matter how many 2-second CGI jobs compete.
package main

import (
	"fmt"

	"rescon"
)

const nCGI = 4 // concurrent CGI requests, each ~2 s of CPU

func main() {
	fmt.Printf("static throughput with %d concurrent 2s-CPU CGI requests:\n\n", nCGI)
	for _, c := range []struct {
		name  string
		mode  rescon.Mode
		limit float64
	}{
		{"unmodified kernel:      ", rescon.ModeUnmodified, 0},
		{"RC kernel, CGI cap 30%: ", rescon.ModeRC, 0.30},
		{"RC kernel, CGI cap 10%: ", rescon.ModeRC, 0.10},
	} {
		tput, share := run(c.mode, c.limit)
		fmt.Printf("%s %6.0f req/s (CGI share %4.1f%%)\n", c.name, tput, share)
	}
}

func run(mode rescon.Mode, cgiLimit float64) (float64, float64) {
	s := rescon.NewSim(mode, 7)
	cfg := rescon.ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr: rescon.Addr("10.0.0.1", 80),
		API:  rescon.SelectAPI,
	}
	if mode == rescon.ModeRC {
		cfg.PerConnContainers = true
		if cgiLimit > 0 {
			// The resource sandbox: a fixed-share container capped at
			// cgiLimit of the CPU; every CGI request container is created
			// as its child, so the cap covers them collectively (§4.5).
			parent, err := rescon.NewContainer(nil, rescon.FixedShare, "cgi-parent",
				rescon.Attributes{Limit: cgiLimit})
			if err != nil {
				panic(err)
			}
			cfg.CGIParent = parent
		}
	}
	srv, err := rescon.NewServer(cfg)
	if err != nil {
		panic(err)
	}

	statics := rescon.MustStartPopulation(48, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
	})
	rescon.MustStartPopulation(nCGI, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.2.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
		Kind:   rescon.CGI,
		CGICPU: 2 * rescon.Second,
	})

	s.RunFor(5 * rescon.Second)
	statics.ResetStats()
	cgiBefore := srv.CGICPU()
	start := s.Now()
	s.RunFor(20 * rescon.Second)
	share := float64(srv.CGICPU()-cgiBefore) / float64(s.Now().Sub(start)) * 100
	return statics.Rate(s.Now()), share
}
