// Prioritized clients (paper §5.5, Fig. 11): one high-priority client's
// response time while low-priority clients saturate the server, compared
// across the unmodified kernel, containers with select(), and containers
// with the scalable event API — including the §4.8 filtered listen socket
// that prioritizes the premium client's connection requests before the
// application ever sees them.
package main

import (
	"fmt"

	"rescon"
)

const nLow = 30

func main() {
	fmt.Printf("%d low-priority clients saturating the server; T_high = premium client's mean response time\n\n", nLow)
	for _, cfg := range []struct {
		name string
		mode rescon.Mode
		api  rescon.API
		rc   bool
	}{
		{"without containers        ", rescon.ModeUnmodified, rescon.SelectAPI, false},
		{"containers + select()     ", rescon.ModeRC, rescon.SelectAPI, true},
		{"containers + new event API", rescon.ModeRC, rescon.EventAPI, true},
	} {
		fmt.Printf("%s  T_high = %6.2f ms\n", cfg.name, run(cfg.mode, cfg.api, cfg.rc))
	}
}

func run(mode rescon.Mode, api rescon.API, containers bool) float64 {
	s := rescon.NewSim(mode, 1999)
	highIP := rescon.Addr("10.9.9.9", 0).IP
	srv, err := rescon.NewServer(rescon.ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr:              rescon.Addr("10.0.0.1", 80),
		API:               api,
		PerConnContainers: containers,
		ConnPriority: func(a rescon.Address) int {
			if a.IP == highIP {
				return 30
			}
			return 1
		},
	})
	if err != nil {
		panic(err)
	}
	if containers {
		// The premium client's SYNs demultiplex to their own socket whose
		// container carries priority 30, so even kernel-mode connection
		// processing runs ahead of the low-priority backlog (§4.8).
		premium, err := rescon.NewContainer(nil, rescon.TimeShare, "premium",
			rescon.Attributes{Priority: 30})
		if err != nil {
			panic(err)
		}
		if _, err := srv.AddListener(rescon.CIDR("10.9.9.9", 32), premium); err != nil {
			panic(err)
		}
	}

	rescon.MustStartPopulation(nLow, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
		Think:  5 * rescon.Millisecond,
	})
	high := rescon.MustStartClient(rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.9.9.9", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
		Think:  5 * rescon.Millisecond,
	})

	s.RunFor(2 * rescon.Second)
	high.ResetStats()
	s.RunFor(10 * rescon.Second)
	return high.Latency.Mean()
}
