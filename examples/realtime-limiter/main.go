// Real-server usage (no simulation): resource containers applied to a
// live net/http server via cooperative enforcement — the userspace
// approximation of the paper's kernel mechanism. Handlers bracket their
// work with the rcruntime Enforcer: consumption is accounted into a
// container hierarchy, and the batch endpoint's subtree is held to a 25%
// CPU limit (the §5.6 sandbox, cooperatively).
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rescon/internal/rc"
	"rescon/internal/rcruntime"
)

// spin burns roughly d of CPU.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func main() {
	root := rc.MustNew(nil, rc.FixedShare, "httpd", rc.Attributes{})
	premium := rc.MustNew(root, rc.FixedShare, "premium", rc.Attributes{})
	batch := rc.MustNew(root, rc.FixedShare, "batch", rc.Attributes{Limit: 0.25})
	enf := rcruntime.New(nil, 50*time.Millisecond)

	handler := func(c *rc.Container, work time.Duration) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			charge := enf.Acquire(c)
			start := time.Now()
			spin(work)
			charge(time.Since(start))
			fmt.Fprintln(w, "ok")
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/premium", handler(premium, 2*time.Millisecond))
	mux.Handle("/batch", handler(batch, 2*time.Millisecond))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Two client populations hammer the endpoints for one second.
	var premiumDone, batchDone atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{}
	hammer := func(path string, counter *atomic.Int64) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(base + path)
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			counter.Add(1)
		}
	}
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go hammer("/premium", &premiumDone)
		go hammer("/batch", &batchDone)
	}
	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()
	_ = srv.Close()

	fmt.Printf("premium: %4d requests, %8v CPU accounted\n",
		premiumDone.Load(), time.Duration(premium.Usage().CPU()))
	fmt.Printf("batch:   %4d requests, %8v CPU accounted (capped at 25%%)\n",
		batchDone.Load(), time.Duration(batch.Usage().CPU()))
	batchShare := float64(batch.Usage().CPU()) / float64(root.Usage().CPU())
	fmt.Printf("batch share of served CPU: %.0f%% — the cooperative sandbox held\n", batchShare*100)
}
