// Quickstart: create resource containers, run a prioritized Web server on
// the simulated resource-container kernel, and inspect per-activity
// resource accounting — the paper's core abstraction in ~60 lines.
package main

import (
	"fmt"
	"os"

	"rescon"
)

func main() {
	// A deterministic simulated machine running the resource-container
	// kernel (ModeRC). ModeUnmodified and ModeLRP give the paper's two
	// comparison systems. Functional options tune the machine —
	// WithCPUs(4) for SMP, WithCosts for a custom cost model; here,
	// WithTelemetry attaches structured tracing and CPU profiling.
	s := rescon.NewSim(rescon.ModeRC, 42,
		rescon.WithTelemetry(rescon.TelemetryConfig{}))

	// An event-driven Web server (the thttpd-like server of §5.2) that
	// creates one resource container per connection. Clients from the
	// 10.9.0.0/16 "premium" network get priority 30; everyone else 1.
	premium := rescon.CIDR("10.9.0.0", 16)
	srv, err := rescon.NewServer(rescon.ServerConfig{
		Kernel:            s.Kernel,
		Name:              "httpd",
		Addr:              rescon.Addr("10.0.0.1", 80),
		API:               rescon.EventAPI,
		PerConnContainers: true,
		ConnPriority: func(a rescon.Address) int {
			if premium.Matches(a.IP) {
				return 30
			}
			return 1
		},
	})
	if err != nil {
		panic(err)
	}

	// Load: 24 ordinary clients saturate the server; one premium client
	// measures response time.
	regular := rescon.MustStartPopulation(24, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
	})
	vip := rescon.MustStartClient(rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.9.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
		Think:  5 * rescon.Millisecond,
	})

	// Warm up, reset the meters, measure.
	s.RunFor(2 * rescon.Second)
	regular.ResetStats()
	vip.ResetStats()
	s.RunFor(10 * rescon.Second)

	fmt.Printf("server throughput:        %.0f requests/s (regular clients)\n",
		regular.Rate(s.Now()))
	fmt.Printf("regular response time:    %.2f ms mean\n", regular.MeanLatencyMs())
	fmt.Printf("premium response time:    %.2f ms mean  (prioritized by container)\n",
		vip.Latency.Mean())

	// Every activity's consumption is fully accounted, including
	// kernel-mode protocol processing (§4.1).
	u := srv.Process().DefaultContainer.Usage()
	fmt.Printf("server default container: user=%v kernel=%v\n", u.CPUUser, u.CPUKernel)
	fmt.Printf("static requests served:   %d\n", srv.StaticServed)

	// The telemetry collector breaks the same accounting down by kernel
	// stage: where did every simulated microsecond actually go?
	fmt.Println()
	s.Telemetry.WriteProfile(os.Stdout, 8)
}
