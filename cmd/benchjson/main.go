// Command benchjson converts `go test -bench` output on stdin into a
// JSON document, one record per benchmark, for storing perf baselines
// (see `make bench-baseline` and docs/PERFORMANCE.md).
//
//	go test -run - -bench . -benchtime 1x ./... | go run ./cmd/benchjson -o BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. NsPerOp is always present; the
// allocation columns appear only when the benchmark reports them
// (b.ReportAllocs or -benchmem).
type Result struct {
	Package     string   `json:"package"`
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// parse consumes `go test -bench` output. Benchmark lines precede the
// `ok <package> <time>` line of their package, so results are buffered
// until the package name is known.
func parse(lines *bufio.Scanner) ([]Result, error) {
	var out []Result
	var pending []Result
	for lines.Scan() {
		line := strings.TrimSpace(lines.Text())
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "Benchmark") && len(fields) >= 4:
			r, ok := parseBench(fields)
			if !ok {
				continue
			}
			pending = append(pending, r)
		case len(fields) >= 2 && fields[0] == "ok":
			for i := range pending {
				pending[i].Package = fields[1]
			}
			out = append(out, pending...)
			pending = pending[:0]
		}
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}
	// Trailing results with no ok line (e.g. a failed package) keep an
	// empty package rather than being dropped silently.
	out = append(out, pending...)
	return out, nil
}

// parseBench parses one benchmark line:
//
//	BenchmarkName-8   123   456.7 ns/op   8 B/op   1 allocs/op
func parseBench(fields []string) (Result, bool) {
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix if numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, seenNs
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *outPath)
}
