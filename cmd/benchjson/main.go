// Command benchjson converts `go test -bench` output on stdin into a
// JSON document, one record per benchmark, for storing perf baselines
// (see `make bench-baseline` and docs/PERFORMANCE.md).
//
//	go test -run - -bench . -benchtime 1x ./... | go run ./cmd/benchjson -o BENCH_baseline.json
//
// With -check it becomes the regression gate instead (`make bench-check`):
// the fresh run on stdin is compared against a stored baseline, failing on
// any benchmark whose ns/op regressed beyond -tol, on baseline benchmarks
// missing from the run, and on any allocation on the pinned hot paths —
// those must stay at exactly 0 allocs/op regardless of tolerance.
//
//	go test -run - -bench . -benchmem ./... | go run ./cmd/benchjson -check BENCH_baseline.json -tol 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. NsPerOp is always present; the
// allocation columns appear only when the benchmark reports them
// (b.ReportAllocs or -benchmem).
type Result struct {
	Package     string   `json:"package"`
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// parse consumes `go test -bench` output. Benchmark lines precede the
// `ok <package> <time>` line of their package, so results are buffered
// until the package name is known.
func parse(lines *bufio.Scanner) ([]Result, error) {
	var out []Result
	var pending []Result
	for lines.Scan() {
		line := strings.TrimSpace(lines.Text())
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "Benchmark") && len(fields) >= 4:
			r, ok := parseBench(fields)
			if !ok {
				continue
			}
			pending = append(pending, r)
		case len(fields) >= 2 && fields[0] == "ok":
			for i := range pending {
				pending[i].Package = fields[1]
			}
			out = append(out, pending...)
			pending = pending[:0]
		}
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}
	// Trailing results with no ok line (e.g. a failed package) keep an
	// empty package rather than being dropped silently.
	out = append(out, pending...)
	return out, nil
}

// parseBench parses one benchmark line:
//
//	BenchmarkName-8   123   456.7 ns/op   8 B/op   1 allocs/op
func parseBench(fields []string) (Result, bool) {
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix if numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, seenNs
}

// hotPaths are the allocation-free simulator inner loops pinned by
// docs/PERFORMANCE.md: tolerance never applies to them — one alloc/op on
// any of these multiplies into millions of allocations per experiment,
// so the gate is hard zero.
var hotPaths = []struct{ pkg, name string }{
	{"rescon", "BenchmarkSimEngineEventChurn"},
	{"rescon/internal/netsim", "BenchmarkQueuePushPop"},
	{"rescon/internal/rc", "BenchmarkChargeCPUDepth3"},
	{"rescon/internal/rc", "BenchmarkSetAttributesChurn"},
	{"rescon/internal/sched", "BenchmarkPick8Entities"},
	{"rescon/internal/sim", "BenchmarkEventCancelFarFuture"},
	{"rescon/internal/sim", "BenchmarkWheelChurn1MPending"},
	{"rescon/internal/kernel", "BenchmarkConnCycle100kOpen"},
}

// compare diffs a fresh run against the baseline. Failures are gate
// violations (regressions past tol, vanished benchmarks, hot-path
// allocations); notes are informational (big improvements worth a
// baseline refresh, benchmarks the baseline does not know yet).
func compare(baseline, current []Result, tol float64) (failures, notes []string) {
	byKey := func(rs []Result) map[string]Result {
		m := make(map[string]Result, len(rs))
		for _, r := range rs {
			m[r.Package+"."+r.Name] = r
		}
		return m
	}
	cur := byKey(current)
	base := byKey(baseline)

	for _, b := range baseline {
		key := b.Package + "." + b.Name
		c, ok := cur[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", key))
			continue
		}
		if b.NsPerOp > 0 {
			ratio := c.NsPerOp / b.NsPerOp
			switch {
			case ratio > 1+tol:
				failures = append(failures, fmt.Sprintf("%s: %.4g ns/op vs baseline %.4g (+%.0f%%, tolerance %.0f%%)",
					key, c.NsPerOp, b.NsPerOp, (ratio-1)*100, tol*100))
			case ratio < 1-tol:
				notes = append(notes, fmt.Sprintf("%s: %.4g ns/op vs baseline %.4g (%.0f%% faster — refresh the baseline?)",
					key, c.NsPerOp, b.NsPerOp, (1-ratio)*100))
			}
		}
	}
	for _, hp := range hotPaths {
		key := hp.pkg + "." + hp.name
		c, ok := cur[key]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: pinned hot path missing from this run", key))
		case c.AllocsPerOp == nil:
			failures = append(failures, fmt.Sprintf("%s: pinned hot path reported no allocs/op (run with -benchmem)", key))
		case *c.AllocsPerOp != 0:
			failures = append(failures, fmt.Sprintf("%s: %g allocs/op on a pinned hot path, want 0", key, *c.AllocsPerOp))
		}
	}
	// Benchmarks present in the run but unknown to the baseline are
	// skipped with a warning, never a failure: a fresh benchmark must not
	// break the gate before `make bench-baseline` has recorded it.
	for _, c := range current {
		key := c.Package + "." + c.Name
		if _, ok := base[key]; !ok {
			notes = append(notes, fmt.Sprintf("%s: skipped, not in the baseline (record it with `make bench-baseline`)", key))
		}
	}
	return failures, notes
}

// runCheck is the -check mode: exit 0 when the run on stdin holds the
// baseline, 1 on any gate violation.
func runCheck(baselinePath string, tol float64, current []Result) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", baselinePath, err)
		return 2
	}
	failures, notes := compare(baseline, current, tol)
	for _, n := range notes {
		fmt.Printf("note: %s\n", n)
	}
	for _, f := range failures {
		fmt.Printf("FAIL: %s\n", f)
	}
	if len(failures) > 0 {
		fmt.Printf("benchjson: %d regression(s) against %s\n", len(failures), baselinePath)
		return 1
	}
	fmt.Printf("benchjson: %d benchmark(s) within ±%.0f%% of %s, hot paths allocation-free\n",
		len(baseline), tol*100, baselinePath)
	return 0
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	checkPath := flag.String("check", "", "compare stdin against this baseline JSON instead of converting")
	tol := flag.Float64("tol", 0.20, "ns/op tolerance for -check (0.20 = ±20%)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	if *checkPath != "" {
		os.Exit(runCheck(*checkPath, *tol, results))
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *outPath)
}
