package main

import (
	"bufio"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

// hotSet returns results covering every pinned hot path at 0 allocs/op,
// so tests can focus on the case under test without tripping the gate.
func hotSet(ns float64) []Result {
	out := make([]Result, 0, len(hotPaths))
	for _, hp := range hotPaths {
		out = append(out, Result{Package: hp.pkg, Name: hp.name, NsPerOp: ns, AllocsPerOp: fp(0)})
	}
	return out
}

func TestCompareClean(t *testing.T) {
	base := append(hotSet(100), Result{Package: "p", Name: "BenchmarkX", NsPerOp: 100})
	cur := append(hotSet(110), Result{Package: "p", Name: "BenchmarkX", NsPerOp: 119})
	failures, notes := compare(base, cur, 0.20)
	if len(failures) != 0 {
		t.Fatalf("clean run failed the gate: %v", failures)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
}

func TestCompareRegressionBeyondTolerance(t *testing.T) {
	base := append(hotSet(100), Result{Package: "p", Name: "BenchmarkX", NsPerOp: 100})
	cur := append(hotSet(100), Result{Package: "p", Name: "BenchmarkX", NsPerOp: 121})
	failures, _ := compare(base, cur, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "p.BenchmarkX") {
		t.Fatalf("regression not flagged: %v", failures)
	}
}

func TestCompareImprovementIsNoteNotFailure(t *testing.T) {
	base := append(hotSet(100), Result{Package: "p", Name: "BenchmarkX", NsPerOp: 100})
	cur := append(hotSet(100), Result{Package: "p", Name: "BenchmarkX", NsPerOp: 50})
	failures, notes := compare(base, cur, 0.20)
	if len(failures) != 0 {
		t.Fatalf("improvement failed the gate: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "faster") {
		t.Fatalf("improvement not noted: %v", notes)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := append(hotSet(100), Result{Package: "p", Name: "BenchmarkGone", NsPerOp: 100})
	failures, _ := compare(base, hotSet(100), 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from this run") {
		t.Fatalf("vanished benchmark not flagged: %v", failures)
	}
}

func TestCompareNewBenchmarkIsSkippedWithWarning(t *testing.T) {
	// A benchmark in the run but absent from the baseline is skipped with
	// a warning, even at zero tolerance — it must never hard-fail the
	// gate before `make bench-baseline` has recorded it.
	cur := append(hotSet(100), Result{Package: "p", Name: "BenchmarkNew", NsPerOp: 100})
	failures, notes := compare(hotSet(100), cur, 0)
	if len(failures) != 0 {
		t.Fatalf("new benchmark failed the gate: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skipped, not in the baseline") {
		t.Fatalf("new benchmark not noted as skipped: %v", notes)
	}
}

func TestCompareHotPathAllocGateIsHard(t *testing.T) {
	// One alloc/op on a hot path fails even with an absurd tolerance and
	// identical ns/op.
	cur := hotSet(100)
	cur[0].AllocsPerOp = fp(1)
	failures, _ := compare(hotSet(100), cur, 100)
	if len(failures) != 1 || !strings.Contains(failures[0], "pinned hot path") {
		t.Fatalf("hot-path allocation not flagged: %v", failures)
	}

	// A hot path that stopped reporting allocs at all also fails: the
	// guard must never silently become vacuous.
	cur = hotSet(100)
	cur[1].AllocsPerOp = nil
	failures, _ = compare(hotSet(100), cur, 100)
	if len(failures) != 1 || !strings.Contains(failures[0], "-benchmem") {
		t.Fatalf("missing allocs/op not flagged: %v", failures)
	}

	// A hot path absent from the run entirely fails even if the baseline
	// does not list it.
	failures, _ = compare(nil, hotSet(100)[1:], 100)
	if len(failures) != 1 || !strings.Contains(failures[0], "hot path missing") {
		t.Fatalf("absent hot path not flagged: %v", failures)
	}
}

func TestHotPathsExistInBenchOutputFormat(t *testing.T) {
	// The pinned names must parse out of real `go test -bench` output —
	// a renamed benchmark should fail this test, not silently skip the
	// alloc gate (compare would catch it at gate time; this catches the
	// typo at unit-test time).
	var lines []string
	for _, hp := range hotPaths {
		lines = append(lines,
			hp.name+"-8   1000000   5.0 ns/op   0 B/op   0 allocs/op",
			"ok   "+hp.pkg+"  1.0s")
	}
	results, err := parse(bufio.NewScanner(strings.NewReader(strings.Join(lines, "\n"))))
	if err != nil {
		t.Fatal(err)
	}
	failures, _ := compare(results, results, 0.20)
	if len(failures) != 0 {
		t.Fatalf("round-trip of the pinned hot paths failed the gate: %v", failures)
	}
}
