// Command rcchaos drives the deterministic chaos harness: it generates
// seeded scenarios over the simulated resource-container server, runs
// each one under all three kernel modes with the full invariant battery
// (including the alert-flap and missed-detection checks over the alert
// stream, and — on scenarios that arm the adaptive rebalancer — the
// rebalance-conservation, rebalance-starvation and rebalance-oscillation
// classes over the controller's decision journal) and the determinism
// double-run, and — on failure — shrinks the scenario to a minimal
// repro and writes it as JSON.
//
// With -live it fuzzes the real runtime's closed loop instead: seeded
// tenant mixes and request-level fault schedules against the governed
// net/http middleware stack (breakers, monitor, watchdog, drain) under
// a virtual clock, hunting watchdog oscillation, starved victims,
// accounting leaks and nondeterminism.
//
// Usage:
//
//	rcchaos -run 200 -seed 1                 # 200 scenarios × 3 modes
//	rcchaos -live -run 500 -seed 1           # 500 live-runtime scenarios
//	rcchaos -repro chaos-repro-42.json       # replay a shipped repro
//	rcchaos -live -repro live-repro-42.json  # replay a live repro
//
// Exit status distinguishes failure kinds so CI and scripts can react:
// 0 all runs clean, 1 invariant or alert violations, 2 usage or
// configuration errors. Repro files land in -out (default ".") as
// chaos-repro-<seed>-<mode>.json, or live-repro-<seed>.json with -live.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"rescon/internal/chaos"
)

// Exit codes. The distinction lets callers tell "the system is broken"
// (a violation — page someone) from "the invocation is broken" (fix the
// command line) without parsing output.
const (
	exitOK        = 0
	exitViolation = 1 // invariant or alert violations, or an error during a sweep run
	exitUsage     = 2 // usage or configuration errors: bad flags, unreadable repro, missing -out
)

// Test seams: regression tests substitute these to exercise the exit-code
// mapping without constructing a genuinely violating scenario.
var (
	runChecked     = chaos.RunChecked
	shrinkFn       = chaos.Shrink
	runLiveChecked = chaos.RunLiveChecked
	shrinkLiveFn   = chaos.ShrinkLive
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and dispatches to replay or sweep, returning the
// process exit code. It is the whole program minus os.Exit, so tests can
// assert exit codes directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rcchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runs    = fs.Int("run", 20, "number of scenarios to generate and run (each under all three kernel modes)")
		seed    = fs.Uint64("seed", 1, "first scenario seed; scenario i uses seed+i")
		repro   = fs.String("repro", "", "replay a repro JSON file instead of generating scenarios")
		out     = fs.String("out", ".", "directory for repro files of failing scenarios")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel scenario runners (each scenario is internally serial)")
		verbose = fs.Bool("v", false, "print every run, not just failures")
		live    = fs.Bool("live", false, "fuzz the real runtime's closed loop (breakers, watchdog, drain) instead of the simulated kernel")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rcchaos [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
Exit status:
  0  all runs clean
  1  invariant or alert violations (including a repro that still fails),
     or an error while running a sweep cell
  2  usage or configuration errors: bad flags, -run/-workers < 1, an
     unreadable or invalid -repro file, or a missing -out directory
`)
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rcchaos: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return exitUsage
	}

	if *repro != "" {
		if *live {
			return replayLive(*repro, stdout, stderr)
		}
		return replay(*repro, stdout, stderr)
	}

	if *runs < 1 {
		fmt.Fprintf(stderr, "rcchaos: -run must be >= 1 (got %d)\n", *runs)
		return exitUsage
	}
	if *workers < 1 {
		fmt.Fprintf(stderr, "rcchaos: -workers must be >= 1 (got %d)\n", *workers)
		return exitUsage
	}
	if info, err := os.Stat(*out); err != nil || !info.IsDir() {
		fmt.Fprintf(stderr, "rcchaos: -out %q is not an existing directory\n", *out)
		return exitUsage
	}
	if *live {
		return liveSweep(*runs, *seed, *out, *workers, *verbose, stdout, stderr)
	}
	return sweep(*runs, *seed, *out, *workers, *verbose, stdout, stderr)
}

// replayLive loads and re-runs a live repro file, printing its outcome.
func replayLive(path string, stdout, stderr io.Writer) int {
	sc, err := chaos.LoadLiveScenario(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	r, err := runLiveChecked(sc)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	fmt.Fprintf(stdout, "live seed %d: hash %016x, %d violation(s)\n",
		sc.Seed, r.Hash, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintln(stdout, "  "+v)
	}
	if r.Failed() {
		return exitViolation
	}
	fmt.Fprintln(stdout, "live repro ran clean (the failure it reproduced is fixed)")
	return exitOK
}

// replay loads and re-runs a repro file, printing its outcome.
func replay(path string, stdout, stderr io.Writer) int {
	sc, err := chaos.LoadScenario(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	r, err := runChecked(sc)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	fmt.Fprintf(stdout, "seed %d mode %s: hash %016x, %d violation(s)\n",
		sc.Seed, sc.Mode, r.Hash, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintln(stdout, "  "+v)
	}
	if r.Failed() {
		return exitViolation
	}
	fmt.Fprintln(stdout, "repro ran clean (the failure it reproduced is fixed)")
	return exitOK
}

// cell is one (scenario, mode) unit of the sweep.
type cell struct {
	sc  chaos.Scenario
	res *chaos.Result
	err error
}

// sweep runs scenarios seed..seed+runs-1 under every kernel mode,
// fanning cells across workers. Every cell is an independent engine, so
// parallelism never changes results; reporting stays in deterministic
// (seed, mode) order. Each failure is shrunk and written as a repro.
func sweep(runs int, seed uint64, out string, workers int, verbose bool, stdout, stderr io.Writer) int {
	cells := make([]cell, runs*len(chaos.ModeNames))
	for i := 0; i < runs; i++ {
		sc := chaos.Generate(seed + uint64(i))
		for m, mode := range chaos.ModeNames {
			sc.Mode = mode
			cells[i*len(chaos.ModeNames)+m] = cell{sc: sc}
		}
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				cells[idx].res, cells[idx].err = runChecked(cells[idx].sc)
			}
		}()
	}
	for idx := range cells {
		work <- idx
	}
	close(work)
	wg.Wait()

	failures := 0
	for _, c := range cells {
		switch {
		case c.err != nil:
			failures++
			fmt.Fprintf(stderr, "seed %d mode %s: ERROR: %v\n", c.sc.Seed, c.sc.Mode, c.err)
		case c.res.Failed():
			failures++
			fmt.Fprintf(stdout, "seed %d mode %s: FAIL (%d violation(s), classes %v)\n",
				c.sc.Seed, c.sc.Mode, len(c.res.Violations), chaos.Classes(c.res))
			fmt.Fprintln(stdout, "  "+c.res.Violations[0])
			writeRepro(c, out, stdout, stderr)
		case verbose:
			fmt.Fprintf(stdout, "seed %d mode %s: ok (hash %016x, %d conns, %d completed)\n",
				c.sc.Seed, c.sc.Mode, c.res.Hash, c.res.Established, c.res.Completed)
		}
	}
	fmt.Fprintf(stdout, "chaos: %d scenario(s) × %d mode(s): %d failure(s)\n",
		runs, len(chaos.ModeNames), failures)
	if failures > 0 {
		return exitViolation
	}
	return exitOK
}

// liveCell is one live-scenario unit of a -live sweep.
type liveCell struct {
	sc  chaos.LiveScenario
	res *chaos.LiveResult
	err error
}

// liveSweep runs live scenarios seed..seed+runs-1, fanning cells across
// workers. Each cell is an isolated runtime on its own virtual clock,
// so parallelism never changes results; reporting stays in seed order.
// Each failure is shrunk and written as a live repro.
func liveSweep(runs int, seed uint64, out string, workers int, verbose bool, stdout, stderr io.Writer) int {
	cells := make([]liveCell, runs)
	for i := range cells {
		cells[i] = liveCell{sc: chaos.GenerateLive(seed + uint64(i))}
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				cells[idx].res, cells[idx].err = runLiveChecked(cells[idx].sc)
			}
		}()
	}
	for idx := range cells {
		work <- idx
	}
	close(work)
	wg.Wait()

	failures := 0
	for _, c := range cells {
		switch {
		case c.err != nil:
			failures++
			fmt.Fprintf(stderr, "live seed %d: ERROR: %v\n", c.sc.Seed, c.err)
		case c.res.Failed():
			failures++
			fmt.Fprintf(stdout, "live seed %d: FAIL (%d violation(s))\n", c.sc.Seed, len(c.res.Violations))
			fmt.Fprintln(stdout, "  "+c.res.Violations[0])
			writeLiveRepro(c, out, stdout, stderr)
		case verbose:
			fmt.Fprintf(stdout, "live seed %d: ok (hash %016x, served %d, shed %d, wd %d/%d)\n",
				c.sc.Seed, c.res.Hash, c.res.Served, c.res.Shed, c.res.Engagements, c.res.Restores)
		}
	}
	fmt.Fprintf(stdout, "chaos: %d live scenario(s): %d failure(s)\n", runs, failures)
	if failures > 0 {
		return exitViolation
	}
	return exitOK
}

// writeLiveRepro shrinks a failing live cell and writes the minimal
// scenario as an indented JSON repro file.
func writeLiveRepro(c liveCell, out string, stdout, stderr io.Writer) {
	class := chaos.Classify(c.res.Violations[0])
	shrunk := shrinkLiveFn(c.sc, class)
	path := filepath.Join(out, fmt.Sprintf("live-repro-%d.json", c.sc.Seed))
	if err := shrunk.WriteFile(path); err != nil {
		fmt.Fprintf(stderr, "  writing repro: %v\n", err)
		return
	}
	fmt.Fprintf(stdout, "  shrunk to %d tenant(s), %d+%d round(s); repro: %s\n",
		len(shrunk.Tenants), shrunk.HostileRounds, shrunk.CalmRounds, path)
}

// writeRepro shrinks a failing cell and writes the minimal scenario as
// an indented JSON repro file.
func writeRepro(c cell, out string, stdout, stderr io.Writer) {
	class := chaos.Classes(c.res)[0]
	shrunk := shrinkFn(c.sc, class)
	path := filepath.Join(out, fmt.Sprintf("chaos-repro-%d-%s.json", c.sc.Seed, c.sc.Mode))
	if err := shrunk.WriteFile(path); err != nil {
		fmt.Fprintf(stderr, "  writing repro: %v\n", err)
		return
	}
	fmt.Fprintf(stdout, "  shrunk to %d container(s), %d workload(s); repro: %s\n",
		len(shrunk.Containers), len(shrunk.Workloads), path)
}
