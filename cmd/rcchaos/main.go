// Command rcchaos drives the deterministic chaos harness: it generates
// seeded scenarios over the simulated resource-container server, runs
// each one under all three kernel modes with the full invariant battery
// and the determinism double-run, and — on failure — shrinks the
// scenario to a minimal repro and writes it as JSON.
//
// Usage:
//
//	rcchaos -run 200 -seed 1            # 200 scenarios × 3 modes
//	rcchaos -repro chaos-repro-42.json  # replay a shipped repro
//
// Exit status is non-zero when any run violates an invariant. Repro
// files land in -out (default ".") as chaos-repro-<seed>-<mode>.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"rescon/internal/chaos"
)

func main() {
	var (
		runs    = flag.Int("run", 20, "number of scenarios to generate and run (each under all three kernel modes)")
		seed    = flag.Uint64("seed", 1, "first scenario seed; scenario i uses seed+i")
		repro   = flag.String("repro", "", "replay a repro JSON file instead of generating scenarios")
		out     = flag.String("out", ".", "directory for repro files of failing scenarios")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel scenario runners (each scenario is internally serial)")
		verbose = flag.Bool("v", false, "print every run, not just failures")
	)
	flag.Parse()

	if *repro != "" {
		os.Exit(replay(*repro))
	}
	os.Exit(sweep(*runs, *seed, *out, *workers, *verbose))
}

// replay loads and re-runs a repro file, printing its outcome.
func replay(path string) int {
	sc, err := chaos.LoadScenario(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r, err := chaos.RunChecked(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("seed %d mode %s: hash %016x, %d violation(s)\n",
		sc.Seed, sc.Mode, r.Hash, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Println("  " + v)
	}
	if r.Failed() {
		return 1
	}
	fmt.Println("repro ran clean (the failure it reproduced is fixed)")
	return 0
}

// cell is one (scenario, mode) unit of the sweep.
type cell struct {
	sc  chaos.Scenario
	res *chaos.Result
	err error
}

// sweep runs scenarios seed..seed+runs-1 under every kernel mode,
// fanning cells across workers. Every cell is an independent engine, so
// parallelism never changes results; reporting stays in deterministic
// (seed, mode) order. Each failure is shrunk and written as a repro.
func sweep(runs int, seed uint64, out string, workers int, verbose bool) int {
	cells := make([]cell, runs*len(chaos.ModeNames))
	for i := 0; i < runs; i++ {
		sc := chaos.Generate(seed + uint64(i))
		for m, mode := range chaos.ModeNames {
			sc.Mode = mode
			cells[i*len(chaos.ModeNames)+m] = cell{sc: sc}
		}
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				cells[idx].res, cells[idx].err = chaos.RunChecked(cells[idx].sc)
			}
		}()
	}
	for idx := range cells {
		work <- idx
	}
	close(work)
	wg.Wait()

	failures := 0
	for _, c := range cells {
		switch {
		case c.err != nil:
			failures++
			fmt.Fprintf(os.Stderr, "seed %d mode %s: ERROR: %v\n", c.sc.Seed, c.sc.Mode, c.err)
		case c.res.Failed():
			failures++
			fmt.Printf("seed %d mode %s: FAIL (%d violation(s), classes %v)\n",
				c.sc.Seed, c.sc.Mode, len(c.res.Violations), chaos.Classes(c.res))
			fmt.Println("  " + c.res.Violations[0])
			writeRepro(c, out)
		case verbose:
			fmt.Printf("seed %d mode %s: ok (hash %016x, %d conns, %d completed)\n",
				c.sc.Seed, c.sc.Mode, c.res.Hash, c.res.Established, c.res.Completed)
		}
	}
	fmt.Printf("chaos: %d scenario(s) × %d mode(s): %d failure(s)\n",
		runs, len(chaos.ModeNames), failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// writeRepro shrinks a failing cell and writes the minimal scenario as
// an indented JSON repro file.
func writeRepro(c cell, out string) {
	class := chaos.Classes(c.res)[0]
	shrunk := chaos.Shrink(c.sc, class)
	path := filepath.Join(out, fmt.Sprintf("chaos-repro-%d-%s.json", c.sc.Seed, c.sc.Mode))
	if err := shrunk.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "  writing repro: %v\n", err)
		return
	}
	fmt.Printf("  shrunk to %d container(s), %d workload(s); repro: %s\n",
		len(shrunk.Containers), len(shrunk.Workloads), path)
}
