package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rescon/internal/chaos"
	"rescon/internal/sim"
)

// stubRun substitutes the chaos runner (and neuters the shrinker) for
// the duration of a test, so exit-code paths can be exercised without
// constructing a genuinely violating scenario.
func stubRun(t *testing.T, fn func(chaos.Scenario) (*chaos.Result, error)) {
	t.Helper()
	oldRun, oldShrink := runChecked, shrinkFn
	runChecked = fn
	shrinkFn = func(sc chaos.Scenario, class string) chaos.Scenario { return sc }
	t.Cleanup(func() { runChecked, shrinkFn = oldRun, oldShrink })
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-run", "notanumber"},
		{"-run", "0"},
		{"-run", "1", "-workers", "0"},
		{"-run", "1", "-out", filepath.Join(t.TempDir(), "missing")},
		{"-repro", filepath.Join(t.TempDir(), "missing.json")},
		{"stray-positional-arg"},
	}
	for _, args := range cases {
		if code := run(args, io.Discard, io.Discard); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestHelpDocumentsExitCodesAndExitsZero(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-h"}, io.Discard, &stderr); code != exitOK {
		t.Fatalf("run(-h) = %d, want %d", code, exitOK)
	}
	help := stderr.String()
	for _, want := range []string{"Exit status", "invariant or alert violations", "usage or configuration errors"} {
		if !strings.Contains(help, want) {
			t.Errorf("-h output does not document %q:\n%s", want, help)
		}
	}
}

func TestInvalidReproFileExitsTwo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-repro", path}, io.Discard, io.Discard); code != exitUsage {
		t.Fatalf("replaying a corrupt repro = %d, want %d", code, exitUsage)
	}
}

func TestViolationsExitOne(t *testing.T) {
	stubRun(t, func(sc chaos.Scenario) (*chaos.Result, error) {
		return &chaos.Result{Violations: []string{
			"fault: invariant violated at 42ms: alert-flap: alert stream flapped (1 total)",
		}}, nil
	})

	// Sweep path: one failing scenario.
	out := t.TempDir()
	var stdout bytes.Buffer
	if code := run([]string{"-run", "1", "-seed", "7", "-out", out}, &stdout, io.Discard); code != exitViolation {
		t.Fatalf("sweep with violations = %d, want %d\n%s", code, exitViolation, stdout.String())
	}
	if !strings.Contains(stdout.String(), "alert-flap") {
		t.Errorf("sweep output does not name the failure class:\n%s", stdout.String())
	}

	// Replay path: a repro that still fails.
	repro := filepath.Join(out, "chaos-repro-7-rc.json")
	if code := run([]string{"-repro", repro}, io.Discard, io.Discard); code != exitViolation {
		t.Fatalf("replaying a failing repro = %d, want %d", code, exitViolation)
	}
}

// stubLiveRun substitutes the live runner (and neuters the live
// shrinker) for the duration of a test.
func stubLiveRun(t *testing.T, fn func(chaos.LiveScenario) (*chaos.LiveResult, error)) {
	t.Helper()
	oldRun, oldShrink := runLiveChecked, shrinkLiveFn
	runLiveChecked = fn
	shrinkLiveFn = func(sc chaos.LiveScenario, class string) chaos.LiveScenario { return sc }
	t.Cleanup(func() { runLiveChecked, shrinkLiveFn = oldRun, oldShrink })
}

func TestLiveViolationsExitOne(t *testing.T) {
	stubLiveRun(t, func(sc chaos.LiveScenario) (*chaos.LiveResult, error) {
		return &chaos.LiveResult{Scenario: sc, Violations: []string{
			"live-oscillation: watchdog engaged 3 time(s) during the settled calm phase",
		}}, nil
	})

	out := t.TempDir()
	var stdout bytes.Buffer
	if code := run([]string{"-live", "-run", "1", "-seed", "9", "-out", out}, &stdout, io.Discard); code != exitViolation {
		t.Fatalf("live sweep with violations = %d, want %d\n%s", code, exitViolation, stdout.String())
	}
	if !strings.Contains(stdout.String(), "live-oscillation") {
		t.Errorf("live sweep output does not name the failure:\n%s", stdout.String())
	}

	// Replay path: the written repro still fails under the stub.
	repro := filepath.Join(out, "live-repro-9.json")
	if code := run([]string{"-live", "-repro", repro}, io.Discard, io.Discard); code != exitViolation {
		t.Fatalf("replaying a failing live repro = %d, want %d", code, exitViolation)
	}
}

func TestLiveCleanRunsExitZero(t *testing.T) {
	// Real runner, two scenarios end to end: the closed loop on the real
	// middleware stack, double-run determinism included.
	var stdout bytes.Buffer
	if code := run([]string{"-live", "-run", "2", "-seed", "1", "-v", "-out", t.TempDir()}, &stdout, io.Discard); code != exitOK {
		t.Fatalf("live sweep = %d, want %d\n%s", code, exitOK, stdout.String())
	}
	if !strings.Contains(stdout.String(), "2 live scenario(s): 0 failure(s)") {
		t.Errorf("live sweep summary missing:\n%s", stdout.String())
	}
}

func TestLiveReplayCleanRepro(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live-repro-1.json")
	if err := chaos.GenerateLive(1).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if code := run([]string{"-live", "-repro", path}, &stdout, io.Discard); code != exitOK {
		t.Fatalf("replaying a clean live repro = %d, want %d\n%s", code, exitOK, stdout.String())
	}
	if !strings.Contains(stdout.String(), "live repro ran clean") {
		t.Errorf("clean replay banner missing:\n%s", stdout.String())
	}
	if code := run([]string{"-live", "-repro", filepath.Join(t.TempDir(), "missing.json")}, io.Discard, io.Discard); code != exitUsage {
		t.Fatal("missing live repro did not exit 2")
	}
}

// TestRebalanceMutationReproExitsOne replays planted-bug rebalance
// repros end to end — no stubs: each mutation's invariant class must
// fire, be named in the output, and map to the violation exit code.
func TestRebalanceMutationReproExitsOne(t *testing.T) {
	cases := []struct{ mutation, class string }{
		{chaos.MutationRebalanceLeak, "rebalance-conservation"},
		{chaos.MutationRebalanceNoFloor, "rebalance-starvation"},
		{chaos.MutationRebalanceNoDisarm, "rebalance-oscillation"},
	}
	for _, tc := range cases {
		t.Run(tc.mutation, func(t *testing.T) {
			sc := chaos.Scenario{
				Seed:    11,
				Mode:    "rc",
				CPUs:    1,
				Horizon: 800 * sim.Millisecond,
				Containers: []chaos.ContainerSpec{
					{Name: "a", Parent: -1, Fixed: true, Share: 0.25},
					{Name: "b", Parent: -1, Fixed: true, Share: 0.20},
				},
				Workloads: []chaos.WorkloadSpec{{Kind: chaos.WorkClients, Count: 8}},
				Rebalance: &chaos.RebalanceSpec{},
				Mutation:  tc.mutation,
			}
			path := filepath.Join(t.TempDir(), "repro.json")
			if err := sc.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			var stdout bytes.Buffer
			if code := run([]string{"-repro", path}, &stdout, io.Discard); code != exitViolation {
				t.Fatalf("replaying %s repro = %d, want %d\n%s", tc.mutation, code, exitViolation, stdout.String())
			}
			if !strings.Contains(stdout.String(), tc.class) {
				t.Errorf("output does not name %s:\n%s", tc.class, stdout.String())
			}
		})
	}
}

func TestCleanRunsExitZero(t *testing.T) {
	stubRun(t, func(sc chaos.Scenario) (*chaos.Result, error) {
		return &chaos.Result{}, nil
	})
	if code := run([]string{"-run", "2", "-out", t.TempDir()}, io.Discard, io.Discard); code != exitOK {
		t.Fatalf("clean sweep = %d, want %d", code, exitOK)
	}

	// And without the stub: one real scenario end to end, all modes.
	stubRun(t, chaos.RunChecked)
	var stdout bytes.Buffer
	if code := run([]string{"-run", "1", "-seed", "1", "-v", "-out", t.TempDir()}, &stdout, io.Discard); code != exitOK {
		t.Fatalf("real single-scenario sweep = %d, want %d\n%s", code, exitOK, stdout.String())
	}
	if !strings.Contains(stdout.String(), "0 failure(s)") {
		t.Errorf("sweep summary missing:\n%s", stdout.String())
	}
}
