package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rescon/internal/kernel"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenCfg is the pinned scenario behind the exporter goldens: fixed
// seed, short horizon, all three output-bearing kernel paths exercised
// (flood drops, connections, dispatches).
func goldenCfg() config {
	return config{
		mode:   kernel.ModeRC,
		seed:   2026,
		dur:    80 * time.Millisecond,
		flood:  2000,
		events: 5,
		// Keep the goldens small but still multi-kind: connection
		// lifecycle plus the flood's policed drops.
		kinds: "drop,conn",
	}
}

// runExporter runs the pinned scenario with one exporter pointed at a
// temp file and returns the file's bytes.
func runExporter(t *testing.T, set func(cfg *config, path string)) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	cfg := goldenCfg()
	set(&cfg, path)
	var stdout bytes.Buffer
	if err := run(cfg, &stdout); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("exporter wrote an empty file")
	}
	return got
}

// checkGolden compares got against testdata/<name>, rewriting the golden
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/rctrace -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden (%d bytes vs %d).\n"+
			"If the change is intentional, regenerate with `go test ./cmd/rctrace -update`.",
			name, len(got), len(want))
	}
}

// TestTimelineGolden pins the telemetry JSONL exporter byte-for-byte at
// a fixed seed: any encoding drift, reordering, or nondeterminism in the
// simulated scenario shows up as a golden diff.
func TestTimelineGolden(t *testing.T) {
	got := runExporter(t, func(cfg *config, path string) { cfg.timeline = path })
	checkGolden(t, "timeline.golden.jsonl", got)
}

// TestChromeTraceGolden pins the Chrome trace_event exporter the same
// way; the golden stays loadable in Perfetto as a side effect.
func TestChromeTraceGolden(t *testing.T) {
	got := runExporter(t, func(cfg *config, path string) { cfg.chrome = path })
	checkGolden(t, "chrome.golden.json", got)
}

// TestExportersDeterministic re-runs each exporter in the same process
// and demands identical bytes — this catches globals (like the container
// ID counter) leaking into the output even when a single-run golden
// would still pass.
func TestExportersDeterministic(t *testing.T) {
	for name, set := range map[string]func(cfg *config, path string){
		"timeline": func(cfg *config, path string) { cfg.timeline = path },
		"chrome":   func(cfg *config, path string) { cfg.chrome = path },
	} {
		a := runExporter(t, set)
		b := runExporter(t, set)
		if !bytes.Equal(a, b) {
			t.Errorf("%s exporter not deterministic across runs in one process", name)
		}
	}
}
