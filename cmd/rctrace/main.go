// Command rctrace runs a small prioritized-server scenario (a SYN flood
// against a server with paying clients, the setup behind Fig. 14) with
// kernel tracing and telemetry enabled, then prints the container
// hierarchy (with full per-activity accounting) and the tail of the
// kernel event trace. It is the observability companion to rcbench: a
// quick way to *see* where every cycle, packet and drop went.
//
// Usage:
//
//	rctrace [-mode rc|lrp|unmodified] [-dur 2s] [-flood 20000]
//	        [-events 40] [-kinds drop,conn] [-json]
//	        [-profile] [-timeline out.jsonl] [-chrome out.json]
//
// The -profile flag prints the virtual-CPU profile: every simulated CPU
// microsecond attributed to a (principal × stage) pair. Under -mode rc
// the flood's interrupt-stage time lands on the "attackers" container;
// under -mode unmodified it is misattributed to whichever activity the
// interrupt preempted — the paper's Fig. 14 effect, visible in two runs.
//
// -timeline writes the full telemetry stream (structured events, usage
// timeline samples, profile rows) as JSONL; -chrome writes a Chrome
// trace_event file loadable in Perfetto / chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/trace"
	"rescon/internal/workload"
)

func parseMode(s string) (kernel.Mode, error) {
	switch strings.ToLower(s) {
	case "rc":
		return kernel.ModeRC, nil
	case "lrp":
		return kernel.ModeLRP, nil
	case "unmodified", "unmod", "base":
		return kernel.ModeUnmodified, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want rc, lrp or unmodified)", s)
	}
}

// writeTo opens path for writing; "-" means stdout.
func writeTo(path string, f func(io.Writer) error) error {
	if path == "-" {
		return f(os.Stdout)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func main() {
	mode := flag.String("mode", "rc", "kernel mode: rc, lrp or unmodified")
	dur := flag.Duration("dur", 2*time.Second, "virtual duration to simulate")
	flood := flag.Float64("flood", 20_000, "SYN-flood rate (0 disables)")
	events := flag.Int("events", 40, "trace events to print")
	kinds := flag.String("kinds", "", "comma-separated event kinds to keep (default all): packet,drop,conn,dispatch,interrupt")
	asJSON := flag.Bool("json", false, "emit the container hierarchy as JSON (billing snapshot) instead of a tree")
	profile := flag.Bool("profile", false, "print the virtual-CPU profile (principal × stage)")
	timeline := flag.String("timeline", "", "write telemetry JSONL (events, samples, profile) to this file; - for stdout")
	chrome := flag.String("chrome", "", "write a Chrome trace_event file (Perfetto-loadable) to this file; - for stdout")
	flag.Parse()

	km, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	eng := sim.NewEngine(2026)
	k := kernel.New(eng, km, kernel.DefaultCosts())
	tel := telemetry.New(telemetry.Config{})
	k.AttachTelemetry(tel)
	tr := tel.Tracer()
	if *kinds != "" {
		tr.Filter = map[trace.Kind]bool{}
		for _, s := range strings.Split(*kinds, ",") {
			tr.Filter[trace.Kind(strings.TrimSpace(s))] = true
		}
	}

	addr := kernel.Addr("10.0.0.1", 80)
	// Containers only exist on the RC kernel; on the other modes the
	// server runs bare and the profile shows where misattribution lands.
	rcMode := km == kernel.ModeRC
	var root *rc.Container
	scfg := httpsim.Config{Kernel: k, Name: "httpd", Addr: addr, API: httpsim.EventAPI}
	if rcMode {
		// Build the whole tree under one root so the dump is coherent; the
		// root is created first so per-connection containers land under it.
		root = rc.MustNew(nil, rc.FixedShare, "machine", rc.Attributes{})
		scfg.PerConnContainers = true
		scfg.Parent = root
	}
	srv, err := httpsim.NewServer(scfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rcMode {
		if err := srv.Process().DefaultContainer.SetParent(root); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		attackers := rc.MustNew(root, rc.TimeShare, "attackers", rc.Attributes{Priority: 0})
		if _, err := srv.AddListener(kernel.FilterCIDR("66.0.0.0", 8), attackers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k.WatchContainer(root)
		k.WatchContainer(srv.Process().DefaultContainer)
		k.WatchContainer(attackers)
	}

	good, err := workload.StartPopulation(16, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    addr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *flood > 0 {
		workload.StartFlood(k, sim.Rate(*flood), kernel.Addr("66.0.0.1", 0).IP, 1024, addr)
	}

	eng.RunUntil(sim.Time(sim.FromStd(*dur)))

	u := k.Utilization()
	fmt.Printf("=== %s kernel, %v elapsed: %.0f good req/s; CPU %.1f%% busy, %.1f%% interrupts, %.1f%% idle ===\n",
		km, eng.Now(), good.Rate(eng.Now()), u.Busy*100, u.Interrupt*100, u.Idle*100)
	switch {
	case root == nil:
		fmt.Printf("(no container hierarchy: %s kernel has no resource containers)\n", km)
	case *asJSON:
		if err := rc.WriteJSON(os.Stdout, root); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		rc.Fprint(os.Stdout, root)
	}

	if *profile {
		fmt.Printf("\n=== virtual-CPU profile (%s kernel) ===\n", km)
		tel.WriteProfile(os.Stdout, 20)
	}
	if *timeline != "" {
		if err := writeTo(*timeline, tel.WriteJSONL); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *timeline != "-" {
			fmt.Printf("\ntelemetry JSONL written to %s\n", *timeline)
		}
	}
	if *chrome != "" {
		if err := writeTo(*chrome, tel.WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *chrome != "-" {
			fmt.Printf("Chrome trace written to %s (load in Perfetto or chrome://tracing)\n", *chrome)
		}
	}

	fmt.Printf("\n=== last %d of %d kernel events ===\n", *events, tr.Total())
	evs := tr.Events()
	if len(evs) > *events {
		evs = evs[len(evs)-*events:]
	}
	for _, e := range evs {
		fmt.Println(e)
	}
}
