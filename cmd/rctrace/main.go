// Command rctrace runs a small prioritized-server scenario (a SYN flood
// against a server with paying clients, the setup behind Fig. 14) with
// kernel tracing and telemetry enabled, then prints the container
// hierarchy (with full per-activity accounting) and the tail of the
// kernel event trace. It is the observability companion to rcbench: a
// quick way to *see* where every cycle, packet and drop went.
//
// Usage:
//
//	rctrace [-mode rc|lrp|unmodified] [-dur 2s] [-flood 20000]
//	        [-events 40] [-kinds drop,conn] [-json] [-seed 2026]
//	        [-profile] [-timeline out.jsonl] [-chrome out.json]
//
// The -profile flag prints the virtual-CPU profile: every simulated CPU
// microsecond attributed to a (principal × stage) pair. Under -mode rc
// the flood's interrupt-stage time lands on the "attackers" container;
// under -mode unmodified it is misattributed to whichever activity the
// interrupt preempted — the paper's Fig. 14 effect, visible in two runs.
//
// -timeline writes the full telemetry stream (structured events, usage
// timeline samples, profile rows) as JSONL; -chrome writes a Chrome
// trace_event file loadable in Perfetto / chrome://tracing. Both
// exporters are byte-deterministic for a fixed -seed (the golden tests
// in this package pin that property).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/trace"
	"rescon/internal/workload"
)

// config collects every knob of the tool so the whole scenario is a pure
// function of its value — main fills it from flags, tests fill it
// directly and capture the output.
type config struct {
	mode     kernel.Mode
	seed     int64
	dur      time.Duration
	flood    float64
	events   int
	kinds    string
	asJSON   bool
	profile  bool
	timeline string
	chrome   string
}

func parseMode(s string) (kernel.Mode, error) {
	switch strings.ToLower(s) {
	case "rc":
		return kernel.ModeRC, nil
	case "lrp":
		return kernel.ModeLRP, nil
	case "unmodified", "unmod", "base":
		return kernel.ModeUnmodified, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want rc, lrp or unmodified)", s)
	}
}

// writeTo opens path for writing; "-" means the tool's stdout.
func writeTo(path string, stdout io.Writer, f func(io.Writer) error) error {
	if path == "-" {
		return f(stdout)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func main() {
	mode := flag.String("mode", "rc", "kernel mode: rc, lrp or unmodified")
	seed := flag.Int64("seed", 2026, "simulation seed")
	dur := flag.Duration("dur", 2*time.Second, "virtual duration to simulate")
	flood := flag.Float64("flood", 20_000, "SYN-flood rate (0 disables)")
	events := flag.Int("events", 40, "trace events to print")
	kinds := flag.String("kinds", "", "comma-separated event kinds to keep (default all): packet,drop,conn,dispatch,interrupt")
	asJSON := flag.Bool("json", false, "emit the container hierarchy as JSON (billing snapshot) instead of a tree")
	profile := flag.Bool("profile", false, "print the virtual-CPU profile (principal × stage)")
	timeline := flag.String("timeline", "", "write telemetry JSONL (events, samples, profile) to this file; - for stdout")
	chrome := flag.String("chrome", "", "write a Chrome trace_event file (Perfetto-loadable) to this file; - for stdout")
	flag.Parse()

	km, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := config{
		mode: km, seed: *seed, dur: *dur, flood: *flood, events: *events,
		kinds: *kinds, asJSON: *asJSON, profile: *profile,
		timeline: *timeline, chrome: *chrome,
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run builds the scenario, simulates it, and writes every requested view
// to stdout (or the -timeline/-chrome files). It is main minus flag
// parsing and exit codes, so tests can drive it with a bytes.Buffer.
func run(cfg config, stdout io.Writer) error {
	eng := sim.NewEngine(cfg.seed)
	k := kernel.New(eng, cfg.mode, kernel.DefaultCosts())
	tel := telemetry.New(telemetry.Config{})
	k.AttachTelemetry(tel)
	tr := tel.Tracer()
	if cfg.kinds != "" {
		tr.Filter = map[trace.Kind]bool{}
		for _, s := range strings.Split(cfg.kinds, ",") {
			tr.Filter[trace.Kind(strings.TrimSpace(s))] = true
		}
	}

	addr := kernel.Addr("10.0.0.1", 80)
	// Containers only exist on the RC kernel; on the other modes the
	// server runs bare and the profile shows where misattribution lands.
	rcMode := cfg.mode == kernel.ModeRC
	var root *rc.Container
	scfg := httpsim.Config{Kernel: k, Name: "httpd", Addr: addr, API: httpsim.EventAPI}
	if rcMode {
		// Build the whole tree under one root so the dump is coherent; the
		// root is created first so per-connection containers land under it.
		root = rc.MustNew(nil, rc.FixedShare, "machine", rc.Attributes{})
		scfg.PerConnContainers = true
		scfg.Parent = root
	}
	srv, err := httpsim.NewServer(scfg)
	if err != nil {
		return err
	}
	if rcMode {
		if err := srv.Process().DefaultContainer.SetParent(root); err != nil {
			return err
		}
		attackers := rc.MustNew(root, rc.TimeShare, "attackers", rc.Attributes{Priority: 0})
		if _, err := srv.AddListener(kernel.FilterCIDR("66.0.0.0", 8), attackers); err != nil {
			return err
		}
		k.WatchContainer(root)
		k.WatchContainer(srv.Process().DefaultContainer)
		k.WatchContainer(attackers)
	}

	good, err := workload.StartPopulation(16, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    addr,
	})
	if err != nil {
		return err
	}
	if cfg.flood > 0 {
		workload.StartFlood(k, sim.Rate(cfg.flood), kernel.Addr("66.0.0.1", 0).IP, 1024, addr)
	}

	eng.RunUntil(sim.Time(sim.FromStd(cfg.dur)))

	u := k.Utilization()
	fmt.Fprintf(stdout, "=== %s kernel, %v elapsed: %.0f good req/s; CPU %.1f%% busy, %.1f%% interrupts, %.1f%% idle ===\n",
		cfg.mode, eng.Now(), good.Rate(eng.Now()), u.Busy*100, u.Interrupt*100, u.Idle*100)
	switch {
	case root == nil:
		fmt.Fprintf(stdout, "(no container hierarchy: %s kernel has no resource containers)\n", cfg.mode)
	case cfg.asJSON:
		if err := rc.WriteJSON(stdout, root); err != nil {
			return err
		}
	default:
		rc.Fprint(stdout, root)
	}

	if cfg.profile {
		fmt.Fprintf(stdout, "\n=== virtual-CPU profile (%s kernel) ===\n", cfg.mode)
		tel.WriteProfile(stdout, 20)
	}
	if cfg.timeline != "" {
		if err := writeTo(cfg.timeline, stdout, tel.WriteJSONL); err != nil {
			return err
		}
		if cfg.timeline != "-" {
			fmt.Fprintf(stdout, "\ntelemetry JSONL written to %s\n", cfg.timeline)
		}
	}
	if cfg.chrome != "" {
		if err := writeTo(cfg.chrome, stdout, tel.WriteChromeTrace); err != nil {
			return err
		}
		if cfg.chrome != "-" {
			fmt.Fprintf(stdout, "Chrome trace written to %s (load in Perfetto or chrome://tracing)\n", cfg.chrome)
		}
	}

	fmt.Fprintf(stdout, "\n=== last %d of %d kernel events ===\n", cfg.events, tr.Total())
	evs := tr.Events()
	if len(evs) > cfg.events {
		evs = evs[len(evs)-cfg.events:]
	}
	for _, e := range evs {
		fmt.Fprintln(stdout, e)
	}
	return nil
}
