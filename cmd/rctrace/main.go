// Command rctrace runs a small prioritized-server scenario on the
// resource-container kernel with kernel tracing enabled, then prints the
// container hierarchy (with full per-activity accounting) and the tail
// of the kernel event trace. It is the observability companion to
// rcbench: a quick way to *see* where every cycle, packet and drop went.
//
// Usage:
//
//	rctrace [-dur 2s] [-flood 20000] [-events 40] [-kinds drop,conn]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/trace"
	"rescon/internal/workload"
)

func main() {
	dur := flag.Duration("dur", 2*time.Second, "virtual duration to simulate")
	flood := flag.Float64("flood", 20_000, "SYN-flood rate (0 disables)")
	events := flag.Int("events", 40, "trace events to print")
	kinds := flag.String("kinds", "", "comma-separated event kinds to keep (default all): packet,drop,conn,dispatch,interrupt")
	asJSON := flag.Bool("json", false, "emit the container hierarchy as JSON (billing snapshot) instead of a tree")
	flag.Parse()

	eng := sim.NewEngine(2026)
	k := kernel.New(eng, kernel.ModeRC, kernel.DefaultCosts())
	tr := trace.New(4096)
	if *kinds != "" {
		tr.Filter = map[trace.Kind]bool{}
		for _, s := range strings.Split(*kinds, ",") {
			tr.Filter[trace.Kind(strings.TrimSpace(s))] = true
		}
	}
	k.Tracer = tr

	addr := kernel.Addr("10.0.0.1", 80)
	// Build the whole tree under one root so the dump is coherent; the
	// root is created first so per-connection containers land under it.
	root := rc.MustNew(nil, rc.FixedShare, "machine", rc.Attributes{})
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: addr, API: httpsim.EventAPI,
		PerConnContainers: true,
		Parent:            root,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := srv.Process().DefaultContainer.SetParent(root); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	attackers := rc.MustNew(root, rc.TimeShare, "attackers", rc.Attributes{Priority: 0})
	if _, err := srv.AddListener(kernel.FilterCIDR("66.0.0.0", 8), attackers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	good := workload.StartPopulation(16, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    addr,
	})
	if *flood > 0 {
		workload.StartFlood(k, sim.Rate(*flood), kernel.Addr("66.0.0.1", 0).IP, 1024, addr)
	}

	eng.RunUntil(sim.Time(sim.FromStd(*dur)))

	u := k.Utilization()
	fmt.Printf("=== %v elapsed: %.0f good req/s; CPU %.1f%% busy, %.1f%% interrupts, %.1f%% idle ===\n",
		eng.Now(), good.Rate(eng.Now()), u.Busy*100, u.Interrupt*100, u.Idle*100)
	if *asJSON {
		if err := rc.WriteJSON(os.Stdout, root); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		rc.Fprint(os.Stdout, root)
	}

	fmt.Printf("\n=== last %d of %d kernel events ===\n", *events, tr.Total())
	evs := tr.Events()
	if len(evs) > *events {
		evs = evs[len(evs)-*events:]
	}
	for _, e := range evs {
		fmt.Println(e)
	}
}
