package main

import (
	"strings"
	"testing"
)

func TestResolveExperimentsAll(t *testing.T) {
	got, err := resolveExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, r := range runners {
		if r.inAll {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("all resolves to %d runners, want %d", len(got), want)
	}
}

func TestResolveExperimentsListKeepsDeclarationOrder(t *testing.T) {
	got, err := resolveExperiments("fig14, fig11,overload")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(got))
	for i, r := range got {
		names[i] = r.name
	}
	if strings.Join(names, ",") != "fig11,fig14,overload" {
		t.Fatalf("resolved %v, want declaration order fig11,fig14,overload", names)
	}
}

func TestResolveExperimentsUnknownFailsUpFront(t *testing.T) {
	_, err := resolveExperiments("fig11,nope,alsonope")
	if err == nil {
		t.Fatal("unknown names did not error")
	}
	msg := err.Error()
	for _, want := range []string{`"nope"`, `"alsonope"`, "known experiments:", "fig11"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
}

func TestRunnerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.name] {
			t.Fatalf("duplicate runner name %q", r.name)
		}
		seen[r.name] = true
	}
}
