// Command rcbench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated kernel, plus the ablations documented
// in DESIGN.md.
//
// Usage:
//
//	rcbench                  # run everything
//	rcbench -exp fig11       # one experiment
//	rcbench -exp fig12,fig14 # a comma-separated list
//	rcbench -quick           # short measurement windows (CI-speed)
//	rcbench -seed 7          # different deterministic seed
//	rcbench -parallel 1      # serial sweeps (default: GOMAXPROCS workers)
//	rcbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Sweep experiments fan their independent data points across -parallel
// worker goroutines; the rendered output is byte-identical at any
// parallelism (see docs/PERFORMANCE.md). An unknown -exp name fails
// before anything runs and prints the known-experiment set.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"rescon/internal/chaos"
	"rescon/internal/experiments"
	"rescon/internal/metrics"
	"rescon/internal/sim"
)

type runner struct {
	name  string
	inAll bool
	run   func(opt experiments.Options) error
}

// asCSV switches output to CSV (for plotting tools); set by -csv.
var asCSV bool

func printTable(t *metrics.Table) {
	if asCSV {
		t.RenderCSV(os.Stdout)
		return
	}
	fmt.Print(t)
}

func printSeries(title, xLabel string, series ...*metrics.Series) {
	if asCSV {
		metrics.RenderSeriesCSV(os.Stdout, xLabel, series...)
		return
	}
	metrics.RenderSeries(os.Stdout, title, xLabel, series...)
}

// ok wraps a runner that cannot fail.
func ok(run func(opt experiments.Options)) func(opt experiments.Options) error {
	return func(opt experiments.Options) error {
		run(opt)
		return nil
	}
}

var runners = []runner{
	{"table1", true, func(opt experiments.Options) error {
		t, err := experiments.Table1()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"baseline", true, ok(func(opt experiments.Options) { printTable(experiments.Baseline(opt)) })},
	{"overhead", true, ok(func(opt experiments.Options) { printTable(experiments.Overhead(opt)) })},
	{"fig11", true, ok(func(opt experiments.Options) {
		printSeries("Fig. 11: response time of one high-priority client vs. low-priority load (ms)",
			"low-priority clients", experiments.Fig11(opt)...)
	})},
	// fig12 renders both figures from the shared run; fig13 re-runs and
	// prints only the CPU-share view for users who ask for it alone.
	{"fig12", true, ok(func(opt experiments.Options) { renderFig12(opt, true, true) })},
	{"fig13", false, ok(func(opt experiments.Options) { renderFig12(opt, false, true) })},
	{"fig14", true, ok(func(opt experiments.Options) {
		printSeries("Fig. 14: server throughput under SYN-flooding attack (req/s)",
			"SYN rate (1000s/s)", experiments.Fig14(opt)...)
	})},
	{"fig14lrp", false, ok(func(opt experiments.Options) {
		printSeries("Fig. 14 + LRP ablation: server throughput under SYN flood (req/s)",
			"SYN rate (1000s/s)", experiments.Fig14WithLRP(opt)...)
	})},
	{"vservers", true, func(opt experiments.Options) error {
		t, err := experiments.VServers(opt)
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"resilience", true, func(opt experiments.Options) error {
		curves, err := experiments.ResilienceCurves(opt)
		if err != nil {
			return err
		}
		printSeries("Resilience: goodput under SYN flood vs. wire packet loss (req/s)",
			"packet loss (%)", curves...)
		return nil
	}},
	{"faults", true, func(opt experiments.Options) error {
		t, err := experiments.FaultMatrix(opt)
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"ablate-pruning", true, ok(func(opt experiments.Options) { printTable(experiments.AblatePruning(opt)) })},
	{"ablate-filter", true, ok(func(opt experiments.Options) { printTable(experiments.AblateFilterPriority(opt)) })},
	{"ablate-api", true, ok(func(opt experiments.Options) { printTable(experiments.AblateEventAPI(opt)) })},
	{"ablate-lrp", true, ok(func(opt experiments.Options) { printTable(experiments.AblateLRPCharging(opt)) })},
	{"ablate-policy", true, ok(func(opt experiments.Options) { printTable(experiments.AblateLeafPolicy(opt)) })},
	{"smp", true, ok(func(opt experiments.Options) { printTable(experiments.SMP(opt)) })},
	{"cachewar", true, ok(func(opt experiments.Options) { printTable(experiments.CacheWar(opt)) })},
	{"diskbound", true, ok(func(opt experiments.Options) {
		printSeries("Extension: premium-client response time with uncached documents (ms)",
			"low-priority clients", experiments.DiskBound(opt)...)
	})},
	{"tail", true, ok(func(opt experiments.Options) { printTable(experiments.TailLatency(opt)) })},
	{"apache", true, ok(func(opt experiments.Options) {
		printSeries("Extension: nice-based QoS (Apache-style, §6) vs. containers — T_high (ms)",
			"low-priority clients", experiments.Apache(opt)...)
	})},
	{"overload", true, ok(func(opt experiments.Options) {
		printSeries("Extension: served vs. offered load — overload stability (req/s)",
			"offered (req/s)", experiments.Overload(opt)...)
	})},
	{"alerting", true, func(opt experiments.Options) error {
		res, err := experiments.Alerting(opt)
		if err != nil {
			return err
		}
		printTable(res.Table())
		return nil
	}},
	// rebalance is the adaptive cache-quota ablation: static split vs
	// the damped closed-loop controller vs the same controller with
	// every damping mechanism stripped, under two load-shift patterns
	// and all three kernel modes. With -check it re-runs every cell and
	// enforces byte-identical determinism, the adaptive-beats-static
	// goodput gate, the adaptive arm staying armed, and the no-damping
	// arm tripping the oscillation detector exactly once.
	{"rebalance", true, func(opt experiments.Options) error {
		res, err := experiments.Rebalance(opt)
		if err != nil {
			return err
		}
		printTable(res.Table())
		if res.Deterministic {
			fmt.Println("rebalance: double run byte-identical; goodput, stability, disarm and floor gates hold")
		}
		return nil
	}},
	// scale is not part of -exp all: the full ramp reaches one million
	// concurrent connections per cell and is meant to be invoked
	// directly (rcbench -exp scale, or -exp scale -quick for the capped
	// CI smoke).
	{"scale", false, func(opt experiments.Options) error {
		t, err := experiments.Scale(opt)
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	// live is not part of -exp all: it boots a real net/http server on a
	// loopback listener and drives it with a closed-loop load generator
	// under virtual time (rcbench -exp live, with -check to enforce the
	// isolation invariant). Goodput cells are deterministic; the overhead
	// line is wall-clock, like Table 1's cost column.
	{"live", false, func(opt experiments.Options) error {
		res, err := experiments.Live(opt)
		if err != nil {
			return err
		}
		printTable(res.Table())
		fmt.Printf("live: governed-path overhead %.0f ns/request over a bare handler (wall clock, varies)\n",
			res.OverheadNs)
		return nil
	}},
	// livechaos is not part of -exp all either: the same real server as
	// live, now under a seeded fault schedule (resets, stalls, panics)
	// with the closed loop engaged — monitor, watchdog, breakers, drain.
	// With -check it re-runs both cells and enforces byte-identical
	// determinism, the defended-goodput win, clamp-then-restore, and a
	// clean drain.
	{"livechaos", false, func(opt experiments.Options) error {
		res, err := experiments.LiveChaos(opt)
		if err != nil {
			return err
		}
		printTable(res.Table())
		if res.Deterministic {
			fmt.Println("livechaos: double run byte-identical; defense, restore and drain invariants hold")
		}
		return nil
	}},
	{"chaos", true, func(opt experiments.Options) error {
		// Short windows (-quick) run fewer scenarios; each scenario runs
		// under all three kernel modes with the determinism double-run.
		runs := 10
		if opt.Window != 0 && opt.Window <= 2*sim.Second {
			runs = 3 // -quick
		}
		if err := chaos.Smoke(runs, uint64(opt.Seed)); err != nil {
			return err
		}
		fmt.Printf("chaos: %d scenario(s) × 3 modes clean (seed %d)\n", runs, opt.Seed)
		return nil
	}},
}

func renderFig12(opt experiments.Options, tput, share bool) {
	res := experiments.Fig12(opt)
	if tput {
		printSeries("Fig. 12: HTTP throughput with competing CGI requests (req/s)",
			"concurrent CGI requests", res.Throughput...)
	}
	if share {
		printSeries("Fig. 13: CPU share of CGI requests (%)",
			"concurrent CGI requests", res.CGIShare...)
	}
}

// resolveExperiments expands an -exp spec into the runners to execute, in
// declaration order. Unknown names fail up front — before any experiment
// has run — with the full known set in the error.
func resolveExperiments(spec string) ([]runner, error) {
	if spec == "all" {
		var out []runner
		for _, r := range runners {
			if r.inAll {
				out = append(out, r)
			}
		}
		return out, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []runner
	for _, r := range runners {
		if want[r.name] {
			out = append(out, r)
			delete(want, r.name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, fmt.Sprintf("%q", name))
		}
		sort.Strings(unknown)
		known := make([]string, len(runners))
		for i, r := range runners {
			known[i] = r.name
		}
		return nil, fmt.Errorf("unknown experiment(s) %s\nknown experiments: all, %s",
			strings.Join(unknown, ", "), strings.Join(known, ", "))
	}
	return out, nil
}

func main() { os.Exit(run()) }

// run is main minus os.Exit, so the deferred profile writers always run.
func run() int {
	exp := flag.String("exp", "all", "experiment to run ('all', one name, or a comma-separated list)")
	quick := flag.Bool("quick", false, "short measurement windows")
	seed := flag.Int64("seed", 1999, "simulation seed")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	check := flag.Bool("check", false, "run the invariant checker inside every simulation")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for sweep data points (1 = serial); output is identical at any setting")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	asCSV = *csvOut

	selected, err := resolveExperiments(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	opt := experiments.Options{Seed: *seed, Invariants: *check, Parallel: *parallel}
	if *quick {
		opt.Warmup = sim.Second
		opt.Window = 2 * sim.Second
	}

	failed := 0
	for _, r := range selected {
		if *exp == "all" {
			fmt.Printf("== %s ==\n", r.name)
		}
		if err := r.run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed++
		}
		if *exp == "all" {
			fmt.Println()
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
