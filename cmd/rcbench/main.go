// Command rcbench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated kernel, plus the ablations documented
// in DESIGN.md.
//
// Usage:
//
//	rcbench                  # run everything
//	rcbench -exp fig11       # one experiment
//	rcbench -exp fig12,fig14 # a comma-separated list
//	rcbench -quick           # short measurement windows (CI-speed)
//	rcbench -seed 7          # different deterministic seed
//
// Experiments: table1, baseline, overhead, fig11, fig12, fig13, fig14,
// fig14lrp, vservers, resilience, faults, ablate-pruning, ablate-filter,
// ablate-api, ablate-lrp.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rescon/internal/experiments"
	"rescon/internal/metrics"
	"rescon/internal/sim"
)

type runner struct {
	name  string
	inAll bool
	run   func(opt experiments.Options) error
}

// asCSV switches output to CSV (for plotting tools); set by -csv.
var asCSV bool

func printTable(t *metrics.Table) {
	if asCSV {
		t.RenderCSV(os.Stdout)
		return
	}
	fmt.Print(t)
}

func printSeries(title, xLabel string, series ...*metrics.Series) {
	if asCSV {
		metrics.RenderSeriesCSV(os.Stdout, xLabel, series...)
		return
	}
	metrics.RenderSeries(os.Stdout, title, xLabel, series...)
}

// ok wraps a runner that cannot fail.
func ok(run func(opt experiments.Options)) func(opt experiments.Options) error {
	return func(opt experiments.Options) error {
		run(opt)
		return nil
	}
}

var runners = []runner{
	{"table1", true, func(opt experiments.Options) error {
		t, err := experiments.Table1()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"baseline", true, ok(func(opt experiments.Options) { printTable(experiments.Baseline(opt)) })},
	{"overhead", true, ok(func(opt experiments.Options) { printTable(experiments.Overhead(opt)) })},
	{"fig11", true, ok(func(opt experiments.Options) {
		printSeries("Fig. 11: response time of one high-priority client vs. low-priority load (ms)",
			"low-priority clients", experiments.Fig11(opt)...)
	})},
	// fig12 renders both figures from the shared run; fig13 re-runs and
	// prints only the CPU-share view for users who ask for it alone.
	{"fig12", true, ok(func(opt experiments.Options) { renderFig12(opt, true, true) })},
	{"fig13", false, ok(func(opt experiments.Options) { renderFig12(opt, false, true) })},
	{"fig14", true, ok(func(opt experiments.Options) {
		printSeries("Fig. 14: server throughput under SYN-flooding attack (req/s)",
			"SYN rate (1000s/s)", experiments.Fig14(opt)...)
	})},
	{"fig14lrp", false, ok(func(opt experiments.Options) {
		printSeries("Fig. 14 + LRP ablation: server throughput under SYN flood (req/s)",
			"SYN rate (1000s/s)", experiments.Fig14WithLRP(opt)...)
	})},
	{"vservers", true, func(opt experiments.Options) error {
		t, err := experiments.VServers(opt)
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"resilience", true, func(opt experiments.Options) error {
		curves, err := experiments.ResilienceCurves(opt)
		if err != nil {
			return err
		}
		printSeries("Resilience: goodput under SYN flood vs. wire packet loss (req/s)",
			"packet loss (%)", curves...)
		return nil
	}},
	{"faults", true, func(opt experiments.Options) error {
		t, err := experiments.FaultMatrix(opt)
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"ablate-pruning", true, ok(func(opt experiments.Options) { printTable(experiments.AblatePruning(opt)) })},
	{"ablate-filter", true, ok(func(opt experiments.Options) { printTable(experiments.AblateFilterPriority(opt)) })},
	{"ablate-api", true, ok(func(opt experiments.Options) { printTable(experiments.AblateEventAPI(opt)) })},
	{"ablate-lrp", true, ok(func(opt experiments.Options) { printTable(experiments.AblateLRPCharging(opt)) })},
	{"ablate-policy", true, ok(func(opt experiments.Options) { printTable(experiments.AblateLeafPolicy(opt)) })},
	{"smp", true, ok(func(opt experiments.Options) { printTable(experiments.SMP(opt)) })},
	{"cachewar", true, ok(func(opt experiments.Options) { printTable(experiments.CacheWar(opt)) })},
	{"diskbound", true, ok(func(opt experiments.Options) {
		printSeries("Extension: premium-client response time with uncached documents (ms)",
			"low-priority clients", experiments.DiskBound(opt)...)
	})},
	{"tail", true, ok(func(opt experiments.Options) { printTable(experiments.TailLatency(opt)) })},
	{"apache", true, ok(func(opt experiments.Options) {
		printSeries("Extension: nice-based QoS (Apache-style, §6) vs. containers — T_high (ms)",
			"low-priority clients", experiments.Apache(opt)...)
	})},
	{"overload", true, ok(func(opt experiments.Options) {
		printSeries("Extension: served vs. offered load — overload stability (req/s)",
			"offered (req/s)", experiments.Overload(opt)...)
	})},
}

func renderFig12(opt experiments.Options, tput, share bool) {
	res := experiments.Fig12(opt)
	if tput {
		printSeries("Fig. 12: HTTP throughput with competing CGI requests (req/s)",
			"concurrent CGI requests", res.Throughput...)
	}
	if share {
		printSeries("Fig. 13: CPU share of CGI requests (%)",
			"concurrent CGI requests", res.CGIShare...)
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run ('all', one name, or a comma-separated list)")
	quick := flag.Bool("quick", false, "short measurement windows")
	seed := flag.Int64("seed", 1999, "simulation seed")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	check := flag.Bool("check", false, "run the invariant checker inside every simulation")
	flag.Parse()
	asCSV = *csvOut

	opt := experiments.Options{Seed: *seed, Invariants: *check}
	if *quick {
		opt.Warmup = sim.Second
		opt.Window = 2 * sim.Second
	}

	failed := 0
	report := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed++
		}
	}
	if *exp == "all" {
		for _, r := range runners {
			if !r.inAll {
				continue
			}
			fmt.Printf("== %s ==\n", r.name)
			report(r.name, r.run(opt))
			fmt.Println()
		}
	} else {
		want := map[string]bool{}
		for _, name := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for _, r := range runners {
			if want[r.name] {
				report(r.name, r.run(opt))
				delete(want, r.name)
			}
		}
		if len(want) > 0 {
			for name := range want {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			}
			os.Exit(2)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
