package main

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTenantFlagParsing(t *testing.T) {
	tf := tenantFlags{}
	for _, s := range []string{"gold=0.6", "bronze=0.1", "free=0"} {
		if err := tf.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if tf["gold"] != 0.6 || tf["bronze"] != 0.1 || tf["free"] != 0 {
		t.Fatalf("parsed tenants %v", tf)
	}
	if got := tf.String(); got != "bronze=0.1,free=0,gold=0.6" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "noequals", "=0.5", "gold=0.2", "x=nan", "x=1.5", "x=-0.1"} {
		if err := tf.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, argv := range [][]string{
		{"-tenant", "broken"},
		{"-window", "-1s"},
		{"-grace", "-1s"},
		{"-addr", "127.0.0.1:not-a-port", "-demo"},
	} {
		if err := run(argv, &strings.Builder{}, &strings.Builder{}); err == nil {
			t.Fatalf("run(%v) succeeded, want error", argv)
		}
	}
}

// TestRunDemo boots the real server on an ephemeral loopback port, lets
// the -demo self-driver flood a limited tenant with real-CPU work, and
// checks that the governed path both served and shed.
func TestRunDemo(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-window", "50ms",
		"-tenant", "demo=0.1",
		"-demo",
	}, &out, &strings.Builder{})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "listening on") {
		t.Fatalf("missing listen banner:\n%s", got)
	}
	if !strings.Contains(got, "demo burst done") {
		t.Fatalf("demo did not finish:\n%s", got)
	}
	// With a 5ms budget per 50ms window, 2ms real-CPU requests, and
	// NoDelay shedding, the burst must include both outcomes. The exact
	// split depends on real scheduling, so only presence is asserted.
	if strings.Contains(got, "— 20 served, 0 shed") {
		t.Fatalf("flooded limited tenant was never shed:\n%s", got)
	}
	if strings.Contains(got, "— 0 served") {
		t.Fatalf("limited tenant was never served:\n%s", got)
	}
	if !strings.Contains(got, `"shed"`) {
		t.Fatalf("stats JSON missing from demo output:\n%s", got)
	}
}

// syncBuilder is a strings.Builder safe for the writes run()'s serving
// goroutines may interleave with the test's reads.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunSignalDrain delivers a synthetic SIGTERM through the
// signalNotify seam and checks that run() drains gracefully: it returns
// nil and writes the final stats JSON (with a clean drain report) to
// the error stream.
func TestRunSignalDrain(t *testing.T) {
	orig := signalNotify
	defer func() { signalNotify = orig }()
	signalNotify = func(ch chan<- os.Signal) {
		go func() {
			time.Sleep(50 * time.Millisecond) // let Serve start
			ch <- syscallSIGTERM()
		}()
	}

	var out, errOut syncBuilder
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-window", "50ms",
		"-grace", "1s",
		"-tenant", "demo=0.5",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	got := errOut.String()
	if !strings.Contains(got, "draining (grace 1s)") {
		t.Fatalf("missing drain banner on stderr:\n%s", got)
	}
	if !strings.Contains(got, `"clean":true`) {
		t.Fatalf("final stats JSON missing clean drain report:\n%s", got)
	}
	if !strings.Contains(got, `"drain_shed"`) || !strings.Contains(got, `"served"`) {
		t.Fatalf("final stats JSON incomplete:\n%s", got)
	}
}
