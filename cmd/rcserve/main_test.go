package main

import (
	"strings"
	"testing"
)

func TestTenantFlagParsing(t *testing.T) {
	tf := tenantFlags{}
	for _, s := range []string{"gold=0.6", "bronze=0.1", "free=0"} {
		if err := tf.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if tf["gold"] != 0.6 || tf["bronze"] != 0.1 || tf["free"] != 0 {
		t.Fatalf("parsed tenants %v", tf)
	}
	if got := tf.String(); got != "bronze=0.1,free=0,gold=0.6" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "noequals", "=0.5", "gold=0.2", "x=nan", "x=1.5", "x=-0.1"} {
		if err := tf.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, argv := range [][]string{
		{"-tenant", "broken"},
		{"-window", "-1s"},
		{"-addr", "127.0.0.1:not-a-port", "-demo"},
	} {
		if err := run(argv, &strings.Builder{}); err == nil {
			t.Fatalf("run(%v) succeeded, want error", argv)
		}
	}
}

// TestRunDemo boots the real server on an ephemeral loopback port, lets
// the -demo self-driver flood a limited tenant with real-CPU work, and
// checks that the governed path both served and shed.
func TestRunDemo(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-window", "50ms",
		"-tenant", "demo=0.1",
		"-demo",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "listening on") {
		t.Fatalf("missing listen banner:\n%s", got)
	}
	if !strings.Contains(got, "demo burst done") {
		t.Fatalf("demo did not finish:\n%s", got)
	}
	// With a 5ms budget per 50ms window, 2ms real-CPU requests, and
	// NoDelay shedding, the burst must include both outcomes. The exact
	// split depends on real scheduling, so only presence is asserted.
	if strings.Contains(got, "— 20 served, 0 shed") {
		t.Fatalf("flooded limited tenant was never shed:\n%s", got)
	}
	if strings.Contains(got, "— 0 served") {
		t.Fatalf("limited tenant was never served:\n%s", got)
	}
	if !strings.Contains(got, `"shed"`) {
		t.Fatalf("stats JSON missing from demo output:\n%s", got)
	}
}
