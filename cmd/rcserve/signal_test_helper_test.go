package main

import (
	"os"
	"syscall"
)

// syscallSIGTERM returns the signal the drain test injects; isolated in
// a helper so the test body stays platform-neutral to read.
func syscallSIGTERM() os.Signal { return syscall.SIGTERM }
