// Command rcserve boots a container-governed net/http server: every
// request is bound to a resource container (by the X-RC-Tenant header or
// the ?tenant= query parameter), charged for its wall-clock cost, and
// shed with a 429 once its tenant's subtree exhausts the sliding-window
// CPU budget. It is the production face of internal/rcruntime — the same
// runtime the `rcbench -exp live` experiment drives under virtual time.
//
// Usage:
//
//	rcserve -addr :8080 -window 100ms -tenant gold=0.6 -tenant bronze=0.1
//
// Endpoints:
//
//	/work?ms=N   spin real CPU for N milliseconds, charged to the tenant
//	/stats       runtime counters and per-tenant usage as JSON
//
// Each -tenant flag declares a container under the server root with the
// given CPU limit (fraction of the window; 0 means unlimited). Requests
// naming no tenant, or an unknown one, are charged to the root.
//
// With -demo the server drives itself: it issues a short burst of
// requests against its own listener (one well-behaved tenant, one
// flooding tenant), prints the resulting stats, and exits — a smoke of
// the governed path over real loopback TCP without an external client.
//
// SIGINT or SIGTERM triggers a graceful drain: accepts stop, new
// requests are shed with 503 + Connection: close, in-flight requests
// get -grace to finish, and the final counters (plus the drain report)
// are written to stderr as JSON before the process exits.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rescon/internal/rc"
	"rescon/internal/rcruntime"
	"rescon/internal/sim"
)

// signalNotify subscribes ch to the shutdown signals; a package variable
// so tests can deliver a synthetic signal instead of killing the test
// process.
var signalNotify = func(ch chan<- os.Signal) {
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
}

// tenantFlags collects repeated -tenant name=limit declarations.
type tenantFlags map[string]float64

// String renders the declared tenants for flag help output.
func (t tenantFlags) String() string {
	parts := make([]string, 0, len(t))
	for name, limit := range t {
		parts = append(parts, fmt.Sprintf("%s=%g", name, limit))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Set parses one name=limit pair.
func (t tenantFlags) Set(s string) error {
	name, limitStr, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=limit, got %q", s)
	}
	limit, err := strconv.ParseFloat(limitStr, 64)
	if err != nil {
		return fmt.Errorf("bad limit in %q: %v", s, err)
	}
	if math.IsNaN(limit) || limit < 0 || limit > 1 {
		return fmt.Errorf("limit %g out of [0,1] in %q", limit, s)
	}
	if _, dup := t[name]; dup {
		return fmt.Errorf("tenant %q declared twice", name)
	}
	t[name] = limit
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "rcserve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: parse flags, build the
// governed server, and either serve until a shutdown signal drains it or
// (with -demo) drive a self-test burst and return. Final stats and the
// drain report go to errOut as JSON, so they survive stdout pipelines.
func run(argv []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("rcserve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	window := fs.Duration("window", 100*time.Millisecond, "enforcement window")
	maxDelay := fs.Duration("maxdelay", 0, "max admission delay before a 429 (0 = one window)")
	maxConns := fs.Int("maxconns", 0, "refuse accepts beyond this many open connections (0 = unlimited)")
	grace := fs.Duration("grace", 5*time.Second, "in-flight grace period for graceful shutdown")
	demo := fs.Bool("demo", false, "drive a self-test burst against the server and exit")
	tenants := tenantFlags{}
	fs.Var(tenants, "tenant", "declare a tenant as name=limit (repeatable)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *grace < 0 {
		return fmt.Errorf("negative -grace %v", *grace)
	}

	root := rc.MustNew(nil, rc.FixedShare, "rcserve", rc.Attributes{})
	bound := map[string]*rc.Container{}
	for name, limit := range tenants {
		c, err := rc.New(root, rc.FixedShare, name, rc.Attributes{Limit: limit})
		if err != nil {
			return fmt.Errorf("tenant %q: %w", name, err)
		}
		bound[name] = c
	}

	cfg := rcruntime.Config{Root: root, Window: *window, MaxDelay: *maxDelay}
	if *demo {
		// The demo wants visible shedding, not silent admission delays.
		cfg.MaxDelay = rcruntime.NoDelay
	}
	if *maxConns > 0 {
		cfg.Policy = rcruntime.AcceptPolicy{Enabled: true, MaxConns: *maxConns}
	}
	rt, err := rcruntime.NewRuntime(cfg,
		rcruntime.WithBinder(requestBinder(bound)))
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/work", workHandler)
	mux.HandleFunc("/stats", statsHandler(rt, root, bound))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: rt.Middleware(mux)}
	fmt.Fprintf(out, "rcserve: listening on %s (window %v, %d tenant(s))\n",
		ln.Addr(), rt.Window(), len(bound))

	if *demo {
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(rt.Listener(ln)) }()
		err := runDemo(out, ln.Addr().String())
		_ = srv.Close()
		if se := <-serveErr; se != nil && !errors.Is(se, http.ErrServerClosed) && err == nil {
			err = se
		}
		return err
	}

	// Serve until a shutdown signal arrives, then drain: stop accepting,
	// shed new requests with 503 + Connection: close, wait out the grace
	// period for in-flight work, and report what the run did.
	sigCh := make(chan os.Signal, 1)
	signalNotify(sigCh)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(rt.Listener(ln)) }()
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case sig := <-sigCh:
		fmt.Fprintf(errOut, "rcserve: %v: draining (grace %v)\n", sig, *grace)
		rep, drainErr := rt.Shutdown(*grace)
		_ = srv.Close()
		<-serveErr // Serve returns once Shutdown closes the listener
		writeFinalStats(errOut, rt, root, bound, rep)
		if drainErr != nil {
			return drainErr
		}
		return nil
	}
}

// writeFinalStats emits the runtime's closing books — request counters,
// per-tenant CPU, and the drain report — as one JSON object on errOut.
func writeFinalStats(errOut io.Writer, rt *rcruntime.Runtime, root *rc.Container, bound map[string]*rc.Container, rep rcruntime.DrainReport) {
	st := rt.Stats()
	usage := map[string]float64{"root": float64(root.Usage().CPU()) / float64(sim.Second)}
	for name, c := range bound {
		usage[name] = float64(c.Usage().CPU()) / float64(sim.Second)
	}
	_ = json.NewEncoder(errOut).Encode(map[string]any{
		"served":     st.Served,
		"shed":       st.Shed,
		"drain_shed": st.DrainShed,
		"panics":     st.Panics,
		"delayed":    st.Delayed,
		"accepted":   st.Accepted,
		"refused":    st.Refused,
		"cpu_s":      usage,
		"drain": map[string]any{
			"waited":          rep.Waited.String(),
			"leaked_requests": rep.LeakedRequests,
			"open_conns":      rep.OpenConns,
			"clean":           rep.Clean,
		},
	})
}

// requestBinder resolves the tenant from the X-RC-Tenant header, falling
// back to the ?tenant= query parameter; unmatched requests go to the
// binder's default (the root).
func requestBinder(bound map[string]*rc.Container) rcruntime.Binder {
	header := rcruntime.HeaderBinder("X-RC-Tenant", bound, nil)
	return rcruntime.BinderFunc(func(r *http.Request) *rc.Container {
		if c := header.Bind(r); c != nil {
			return c
		}
		return bound[r.URL.Query().Get("tenant")]
	})
}

// workHandler spins real CPU for ?ms= milliseconds — the charged work.
func workHandler(w http.ResponseWriter, r *http.Request) {
	ms, err := strconv.Atoi(r.URL.Query().Get("ms"))
	if err != nil || ms < 0 || ms > 10000 {
		http.Error(w, "want ?ms=N in [0,10000]", http.StatusBadRequest)
		return
	}
	spin(time.Duration(ms) * time.Millisecond)
	fmt.Fprintf(w, "worked %dms\n", ms)
}

// spin busy-loops for roughly d of real CPU time.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += i
		}
	}
	_ = x
}

// statsHandler reports runtime counters and per-tenant CPU usage.
func statsHandler(rt *rcruntime.Runtime, root *rc.Container, bound map[string]*rc.Container) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := rt.Stats()
		usage := map[string]float64{"root": float64(root.Usage().CPU()) / float64(sim.Second)}
		for name, c := range bound {
			usage[name] = float64(c.Usage().CPU()) / float64(sim.Second)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"served":    st.Served,
			"shed":      st.Shed,
			"delayed":   st.Delayed,
			"accepted":  st.Accepted,
			"refused":   st.Refused,
			"inflight":  st.Inflight,
			"window":    rt.Window().String(),
			"cpu_s":     usage,
			"timestamp": time.Now().UTC().Format(time.RFC3339),
		})
	}
}

// runDemo issues a short burst against the live server: a well-behaved
// tenant alongside a flood, then prints where the requests ended up.
func runDemo(out io.Writer, addr string) error {
	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path, tenant string) (int, error) {
		req, err := http.NewRequest("GET", base+path, nil)
		if err != nil {
			return 0, err
		}
		if tenant != "" {
			req.Header.Set("X-RC-Tenant", tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode, nil
	}
	served, shed := 0, 0
	for i := 0; i < 20; i++ {
		code, err := get("/work?ms=2", "demo")
		if err != nil {
			return err
		}
		switch code {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
		default:
			return fmt.Errorf("demo request got status %d", code)
		}
	}
	fmt.Fprintf(out, "rcserve: demo burst done — %d served, %d shed\n", served, shed)
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	stats, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rcserve: stats %s", stats)
	return nil
}
