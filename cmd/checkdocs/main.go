// Command checkdocs verifies that every exported symbol of a Go package
// has a doc comment. It is part of `make lint`: the root rescon package
// is the facade users see, so an undocumented export there is a lint
// failure, not a style nit.
//
// Usage:
//
//	checkdocs [dir ...]
//
// With no arguments it checks the current directory. Test files are
// ignored. The exit status is the number of directories with missing
// docs (capped at 1 for shell use); offending symbols are listed one per
// line as file:line: symbol.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	failed := false
	for _, dir := range dirs {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// check parses the package in dir and returns one "file:line: symbol"
// entry per exported symbol lacking a doc comment.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, symbol string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s has no doc comment", p.Filename, p.Line, symbol))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && !isMethodOfUnexported(d) {
						report(d.Pos(), declName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// declName renders "Func" or "Type.Method" for a FuncDecl.
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// isMethodOfUnexported reports whether d is a method on an unexported
// receiver type (not part of the facade surface).
func isMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return !id.IsExported()
	}
	return false
}

// checkGenDecl handles const/var/type declarations: a doc comment on the
// grouped declaration covers its specs; otherwise each exported spec
// needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), fmt.Sprintf("%s %s", d.Tok, name.Name))
				}
			}
		}
	}
}
