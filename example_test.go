package rescon_test

import (
	"fmt"

	"rescon"
)

// The canonical flow: a prioritized server on the resource-container
// kernel, with per-activity accounting. Deterministic, so the output is
// exact.
func Example() {
	s := rescon.NewSim(rescon.ModeRC, 42)
	premium := rescon.CIDR("10.9.0.0", 16)
	srv, err := rescon.NewServer(rescon.ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr:              rescon.Addr("10.0.0.1", 80),
		API:               rescon.EventAPI,
		PerConnContainers: true,
		ConnPriority: func(a rescon.Address) int {
			if premium.Matches(a.IP) {
				return 30
			}
			return 1
		},
	})
	if err != nil {
		panic(err)
	}
	clients := rescon.MustStartPopulation(8, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
	})
	s.RunFor(2 * rescon.Second)
	fmt.Printf("served %v requests, all accounted: kernel CPU > 0: %v\n",
		clients.Completed() > 1000,
		srv.Process().DefaultContainer.Usage().CPUKernel > 0)
	// Output: served true requests, all accounted: kernel CPU > 0: true
}

// Containers form a hierarchy: a guest's consumption is the sum of its
// children's, and attributes constrain the whole subtree (§4.5).
func ExampleNewContainer() {
	guest, _ := rescon.NewContainer(nil, rescon.FixedShare, "guest",
		rescon.Attributes{Share: 0.5, Limit: 0.5})
	conn, _ := rescon.NewContainer(guest, rescon.TimeShare, "conn-1",
		rescon.Attributes{Priority: rescon.DefaultPriority})
	conn.ChargeCPU(0, 3*rescon.Millisecond)
	fmt.Println("guest CPU:", guest.Usage().CPU())
	fmt.Println("leaf:", conn.IsLeaf(), "depth:", conn.Depth())
	// Output:
	// guest CPU: 3ms
	// leaf: true depth: 1
}

// The SYN-flood defense of §5.7: a filtered listen socket bound to a
// priority-0 container confines attack processing to idle cycles.
func ExampleServer_AddListener() {
	s := rescon.NewSim(rescon.ModeRC, 7)
	srv, _ := rescon.NewServer(rescon.ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr: rescon.Addr("10.0.0.1", 80),
		API:  rescon.EventAPI, PerConnContainers: true,
	})
	attackers, _ := rescon.NewContainer(nil, rescon.TimeShare, "attackers",
		rescon.Attributes{Priority: 0})
	ls, _ := srv.AddListener(rescon.CIDR("66.0.0.0", 8), attackers)

	good := rescon.MustStartPopulation(16, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
	})
	rescon.StartFlood(s.Kernel, 50_000, rescon.Addr("66.0.0.1", 0).IP, 1024,
		rescon.Addr("10.0.0.1", 80))
	s.RunFor(2 * rescon.Second)
	fmt.Printf("good clients kept working under 50k SYN/s: %v (drops confined to %s)\n",
		good.Rate(s.Now()) > 2000, "attackers")
	_ = ls
	// Output: good clients kept working under 50k SYN/s: true (drops confined to attackers)
}

// WithTelemetry attaches the observability layer at construction: a
// structured trace ring, per-principal usage timelines, and a
// virtual-CPU profile attributing every simulated microsecond to
// (principal × kernel stage).
func ExampleWithTelemetry() {
	s := rescon.NewSim(rescon.ModeRC, 42,
		rescon.WithTelemetry(rescon.TelemetryConfig{}))
	_, err := rescon.NewServer(rescon.ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr: rescon.Addr("10.0.0.1", 80),
		API:  rescon.EventAPI, PerConnContainers: true,
	})
	if err != nil {
		panic(err)
	}
	rescon.MustStartPopulation(8, rescon.ClientConfig{
		Kernel: s.Kernel,
		Src:    rescon.Addr("10.1.0.1", 1024),
		Dst:    rescon.Addr("10.0.0.1", 80),
	})
	s.RunFor(rescon.Second)

	tel := s.Telemetry
	fmt.Println("profiled CPU > 0:", tel.TotalCPU() > 0)
	fmt.Println("socket-stage work on the server:",
		tel.StageCPU("httpd-default", rescon.StageSocket) > 0)
	fmt.Println("timeline sampled:", len(tel.Samples()) > 0)
	// Output:
	// profiled CPU > 0: true
	// socket-stage work on the server: true
	// timeline sampled: true
}

// Fixed shares isolate guests (§5.8): consumption matches allocation.
func ExampleSim_RunFor() {
	s := rescon.NewSim(rescon.ModeRC, 5)
	guest, _ := rescon.NewContainer(nil, rescon.FixedShare, "guest",
		rescon.Attributes{Share: 0.3, Limit: 0.3})
	leaf, _ := rescon.NewContainer(guest, rescon.TimeShare, "work",
		rescon.Attributes{Priority: rescon.DefaultPriority})
	other, _ := rescon.NewContainer(nil, rescon.TimeShare, "other",
		rescon.Attributes{Priority: rescon.DefaultPriority})

	p := s.Kernel.NewProcess("app")
	p.NewThread("guest").PostFunc("w", 100*rescon.Second, 0, leaf, nil)
	p.NewThread("other").PostFunc("w", 100*rescon.Second, 0, other, nil)
	s.RunFor(10 * rescon.Second)
	fmt.Printf("guest share: %.2f\n", guest.Usage().CPU().Seconds()/10)
	// Output: guest share: 0.30
}
