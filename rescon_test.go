package rescon

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	// The README quick-start, as a test: build a prioritized server on
	// the RC kernel and drive it with the public API only.
	s := NewSim(ModeRC, 42)
	premium := CIDR("10.9.0.0", 16)
	srv, err := NewServer(ServerConfig{
		Kernel:            s.Kernel,
		Name:              "httpd",
		Addr:              Addr("10.0.0.1", 80),
		API:               EventAPI,
		PerConnContainers: true,
		ConnPriority: func(a Address) int {
			if premium.Matches(a.IP) {
				return 30
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := MustStartPopulation(8, ClientConfig{
		Kernel: s.Kernel,
		Src:    Addr("10.1.0.1", 1024),
		Dst:    Addr("10.0.0.1", 80),
	})
	vip := MustStartClient(ClientConfig{
		Kernel: s.Kernel,
		Src:    Addr("10.9.0.1", 1024),
		Dst:    Addr("10.0.0.1", 80),
		Think:  5 * Millisecond,
	})
	s.RunFor(3 * Second)

	if clients.Completed() < 1000 {
		t.Fatalf("population completed %d", clients.Completed())
	}
	if vip.Latency.N() == 0 {
		t.Fatal("premium client served nothing")
	}
	if srv.StaticServed == 0 {
		t.Fatal("server served nothing")
	}
	u := srv.Process().DefaultContainer.Usage()
	if u.CPUKernel == 0 {
		t.Fatal("no kernel CPU accounted to the server's default container")
	}
}

func TestContainerHierarchyPublicAPI(t *testing.T) {
	parent, err := NewContainer(nil, FixedShare, "guest", Attributes{Share: 0.5, Limit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	child, err := NewContainer(parent, TimeShare, "conn", Attributes{Priority: DefaultPriority})
	if err != nil {
		t.Fatal(err)
	}
	if child.Parent() != parent {
		t.Fatal("hierarchy broken")
	}
	child.ChargeCPU(0, Millisecond)
	if parent.Usage().CPU() != Millisecond {
		t.Fatal("usage did not aggregate to parent")
	}
}

func TestMTServerPublicAPI(t *testing.T) {
	s := NewSim(ModeRC, 7)
	srv, err := NewMTServer(ServerConfig{
		Kernel:            s.Kernel,
		Name:              "mt-httpd",
		Addr:              Addr("10.0.0.1", 80),
		PerConnContainers: true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pop := MustStartPopulation(8, ClientConfig{
		Kernel: s.Kernel,
		Src:    Addr("10.1.0.1", 1024),
		Dst:    Addr("10.0.0.1", 80),
		Think:  Millisecond,
	})
	s.RunFor(2 * Second)
	if pop.Completed() < 500 {
		t.Fatalf("completed %d", pop.Completed())
	}
	if srv.StaticServed == 0 {
		t.Fatal("MT server served nothing")
	}
	if srv.OpenConns() < 0 {
		t.Fatal("negative open connections")
	}
}

func TestSynFloodDefensePublicAPI(t *testing.T) {
	s := NewSim(ModeRC, 99)
	srv, err := NewServer(ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr: Addr("10.0.0.1", 80),
		API:  EventAPI, PerConnContainers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	floodCont, err := NewContainer(nil, TimeShare, "attackers", Attributes{Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddListener(CIDR("66.0.0.0", 8), floodCont); err != nil {
		t.Fatal(err)
	}
	good := MustStartPopulation(16, ClientConfig{
		Kernel: s.Kernel,
		Src:    Addr("10.1.0.1", 1024),
		Dst:    Addr("10.0.0.1", 80),
	})
	StartFlood(s.Kernel, 30_000, Addr("66.0.0.1", 0).IP, 256, Addr("10.0.0.1", 80))
	s.RunFor(Second)
	good.ResetStats()
	s.RunFor(2 * Second)
	rate := good.Rate(s.Now())
	if rate < 1500 {
		t.Fatalf("defended throughput %.0f req/s under 30k SYN/s flood", rate)
	}
}

func TestModesDiffer(t *testing.T) {
	// The three kernel modes must be distinguishable end to end: under a
	// 20k SYN/s flood the unmodified kernel collapses, RC does not.
	run := func(mode Mode, defend bool) float64 {
		s := NewSim(mode, 3)
		srv, err := NewServer(ServerConfig{
			Kernel: s.Kernel, Name: "httpd",
			Addr: Addr("10.0.0.1", 80), API: SelectAPI,
			PerConnContainers: mode == ModeRC,
		})
		if err != nil {
			t.Fatal(err)
		}
		if defend {
			fc, _ := NewContainer(nil, TimeShare, "attackers", Attributes{Priority: 0})
			if _, err := srv.AddListener(CIDR("66.0.0.0", 8), fc); err != nil {
				t.Fatal(err)
			}
		}
		good := MustStartPopulation(16, ClientConfig{
			Kernel: s.Kernel,
			Src:    Addr("10.1.0.1", 1024),
			Dst:    Addr("10.0.0.1", 80),
		})
		StartFlood(s.Kernel, 20_000, Addr("66.0.0.1", 0).IP, 256, Addr("10.0.0.1", 80))
		s.RunFor(Second)
		good.ResetStats()
		s.RunFor(2 * Second)
		return good.Rate(s.Now())
	}
	unmod := run(ModeUnmodified, false)
	rc := run(ModeRC, true)
	if unmod > rc/10 {
		t.Fatalf("unmodified (%v) should collapse vs defended RC (%v)", unmod, rc)
	}
}

func TestWithAlertsPublicAPI(t *testing.T) {
	// WithWatchdog implies telemetry + alerts: the full stack from one
	// option. Under a flood the facade must surface a critical alert and
	// an engaged watchdog without touching any internal package.
	s := NewSim(ModeUnmodified, 42, WithWatchdog(WatchdogConfig{}))
	if s.Telemetry == nil || s.Alerts == nil || s.Watchdog == nil {
		t.Fatal("WithWatchdog did not attach telemetry, alerts and the watchdog")
	}
	if _, err := NewServer(ServerConfig{
		Kernel: s.Kernel, Name: "httpd",
		Addr: Addr("10.0.0.1", 80), API: EventAPI,
	}); err != nil {
		t.Fatal(err)
	}
	MustStartPopulation(8, ClientConfig{
		Kernel: s.Kernel,
		Src:    Addr("10.1.0.1", 1024),
		Dst:    Addr("10.0.0.1", 80),
	})
	s.RunFor(100 * Millisecond)
	if got := s.Alerts.Worst(); got != AlertOk {
		t.Fatalf("quiet baseline at level %v, want %v", got, AlertOk)
	}
	StartFlood(s.Kernel, 20_000, Addr("66.0.0.1", 0).IP, 256, Addr("10.0.0.1", 80))
	s.RunFor(300 * Millisecond)
	if got := s.Alerts.Worst(); got != AlertCritical {
		t.Fatalf("flood raised %v, want %v", got, AlertCritical)
	}
	if s.Watchdog.Engagements() == 0 {
		t.Fatal("watchdog never engaged under flood")
	}

	// WithAlerts alone: monitor but no watchdog.
	s2 := NewSim(ModeRC, 42, WithAlerts(AlertConfig{}))
	if s2.Alerts == nil || s2.Watchdog != nil {
		t.Fatal("WithAlerts should attach a monitor and no watchdog")
	}
}

func TestFacadeConstructors(t *testing.T) {
	costs := DefaultCosts()
	if costs.PerRequestCost() <= 0 {
		t.Fatal("bad default costs")
	}
	s := NewSim(ModeLRP, 3, WithCosts(costs))
	if s.Kernel.Mode() != ModeLRP {
		t.Fatal("mode not applied")
	}
	s.RunUntil(Time(Millisecond))
	if s.Now() != Time(Millisecond) {
		t.Fatal("RunUntil did not advance")
	}
	smp := NewSim(ModeRC, 3, WithCPUs(2))
	if smp.Kernel.NumCPUs() != 2 {
		t.Fatal("SMP CPUs not applied")
	}
	e := NewEnforcer(0)
	if e.Window() <= 0 {
		t.Fatal("enforcer window")
	}
	c, err := NewContainer(nil, TimeShare, "c", Attributes{Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Do(c, func() {})
}

// TestRuntimeFacade drives the real-runtime bridge entirely through the
// facade: configuration validation, tenant binding, per-request
// charging, and the in-request Rebind/Bound helpers.
func TestRuntimeFacade(t *testing.T) {
	if _, err := NewRuntime(RuntimeConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("NewRuntime(zero) error = %v, want ErrBadConfig", err)
	}
	root, err := NewContainer(nil, FixedShare, "root", Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	tenant, err := NewContainer(root, FixedShare, "tenant", Attributes{Limit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rt := MustNewRuntime(RuntimeConfig{Root: root, MaxDelay: NoDelay},
		WithWindow(50*time.Millisecond),
		WithBinder(HeaderBinder("X-RC-Tenant", map[string]*Container{"tenant": tenant}, nil)),
		WithTelemetrySink(nil))
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if BoundContainer(r.Context()) != tenant {
			t.Error("request not bound to its tenant")
		}
		if !RebindRequest(r.Context(), root) {
			t.Error("rebind to root refused")
		}
	}))
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-RC-Tenant", "tenant")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if st := rt.Stats(); st.Served != 1 {
		t.Fatalf("stats %+v, want 1 served", st)
	}
}

// TestSurvivabilityFacade exercises the degradation and governance
// surface through the facade: breakers, the runtime monitor/watchdog
// pair, drain reporting, live fault injection, and the live chaos
// harness.
func TestSurvivabilityFacade(t *testing.T) {
	root, err := NewContainer(nil, FixedShare, "root", Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	tenant, err := NewContainer(root, FixedShare, "tenant", Attributes{Limit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rt := MustNewRuntime(RuntimeConfig{Root: root, MaxDelay: NoDelay},
		WithWindow(50*time.Millisecond),
		WithBinder(HeaderBinder("X-RC-Tenant", map[string]*Container{"tenant": tenant}, nil)),
		WithBreakers(BreakerConfig{OpenAfter: 3}))

	am := NewAlertMonitor()
	mon, err := AttachRuntimeMonitor(rt, am, RuntimeMonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wd := AttachRuntimeWatchdog(mon, RuntimeWatchdogConfig{Clampable: []*Container{tenant}})
	if wd.Engaged() {
		t.Fatal("watchdog engaged before any traffic")
	}

	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-RC-Tenant", "tenant")
	h.ServeHTTP(httptest.NewRecorder(), req)
	mon.Tick()
	if rt.BreakerOpen(tenant) {
		t.Fatal("breaker open after a served request")
	}

	var rep DrainReport = rt.Drain(time.Second)
	if !rep.Clean || rep.LeakedRequests != 0 {
		t.Fatalf("drain report %+v, want clean", rep)
	}

	inj := NewLiveFaultInjector(1, LiveFaultConfig{PanicRate: 1}, nil)
	var stats LiveFaultStats = inj.Stats()
	if stats.HandlerPanics != 0 {
		t.Fatalf("fresh injector stats %+v", stats)
	}

	sc := GenerateLiveChaosScenario(1)
	res, err := RunLiveChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("live chaos violations: %v", res.Violations)
	}
	if shrunk := ShrinkLiveChaosScenario(sc, "live-leak"); shrunk.Validate() != nil {
		t.Fatal("shrunk scenario invalid")
	}
	path := filepath.Join(t.TempDir(), "live.json")
	if err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLiveChaosScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != sc.Seed {
		t.Fatalf("round-trip seed %d, want %d", loaded.Seed, sc.Seed)
	}
}

// TestWithRebalancer drives the closed-loop share controller through
// the facade only: two sibling containers in a CPU-share pool, demand
// concentrated on one of them, and the controller expected to shift
// share toward it without crossing the starvation floor or breaking
// conservation.
func TestWithRebalancer(t *testing.T) {
	s := NewSim(ModeRC, 7,
		WithWatchdog(WatchdogConfig{}),
		WithRebalancer(RebalanceConfig{}))
	if s.Rebalancer == nil || s.Telemetry == nil || s.Watchdog == nil {
		t.Fatal("WithRebalancer must wire telemetry, watchdog and controller")
	}
	root, err := NewContainer(nil, FixedShare, "pool", Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewContainer(root, TimeShare, "a", Attributes{Share: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewContainer(root, TimeShare, "b", Attributes{Share: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	var hot int64
	if err := s.Rebalancer.AddPool(RebalancePool{
		Name:     "cpu",
		Resource: RebalanceCPUShare,
		Members: []RebalanceMember{
			{Container: a, Demand: func() int64 { hot += 100; return hot }},
			{Container: b, Demand: func() int64 { return 0 }},
		},
	}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * Second)
	if s.Rebalancer.Steps() == 0 {
		t.Fatal("controller never stepped under one-sided demand")
	}
	if a.Attributes().Share <= b.Attributes().Share {
		t.Fatalf("share did not follow demand: a=%g b=%g",
			a.Attributes().Share, b.Attributes().Share)
	}
	for _, audit := range []struct{ name, v string }{
		{"conservation", s.Rebalancer.AuditConservation()},
		{"floors", s.Rebalancer.AuditFloors()},
		{"restore", s.Rebalancer.AuditRestore()},
	} {
		if audit.v != "" {
			t.Errorf("%s audit: %s", audit.name, audit.v)
		}
	}
	if s.Rebalancer.Disarmed() {
		t.Fatal("controller disarmed under steady one-sided demand")
	}
}
