module rescon

go 1.22
