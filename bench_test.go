package rescon

// One benchmark per table and figure of the paper's evaluation (§5),
// plus per-primitive benchmarks for Table 1. The figure benchmarks run
// the corresponding experiment driver on shortened measurement windows
// and report the headline metric with b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates (abbreviated forms of) every result. cmd/rcbench produces
// the full-length tables and curves.

import (
	"testing"

	"rescon/internal/experiments"
	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// --- Table 1: cost of resource container primitives (real time) ---

func table1Env() (*kernel.Process, *kernel.Process, *kernel.Thread) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, kernel.ModeRC, kernel.DefaultCosts())
	p := k.NewProcess("bench")
	p2 := k.NewProcess("bench2")
	return p, p2, p.NewThread("t")
}

var benchAttrs = rc.Attributes{Priority: kernel.DefaultPriority}

func BenchmarkTable1CreateDestroy(b *testing.B) {
	p, _, _ := table1Env()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := p.CreateContainer(kernel.NoParent, rc.TimeShare, "c", benchAttrs)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.ReleaseContainer(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1RebindThread(b *testing.B) {
	p, _, th := table1Env()
	da, _ := p.CreateContainer(kernel.NoParent, rc.TimeShare, "a", benchAttrs)
	db, _ := p.CreateContainer(kernel.NoParent, rc.TimeShare, "b", benchAttrs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := da
		if i&1 == 1 {
			d = db
		}
		if err := p.BindThread(th, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Usage(b *testing.B) {
	p, _, _ := table1Env()
	d, _ := p.CreateContainer(kernel.NoParent, rc.TimeShare, "a", benchAttrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ContainerUsage(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Attributes(b *testing.B) {
	p, _, _ := table1Env()
	d, _ := p.CreateContainer(kernel.NoParent, rc.TimeShare, "a", benchAttrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := p.ContainerAttrs(d)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.SetContainerAttrs(d, got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1MoveBetweenProcesses(b *testing.B) {
	p, p2, _ := table1Env()
	d, _ := p.CreateContainer(kernel.NoParent, rc.TimeShare, "a", benchAttrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd, err := p.MoveContainer(d, p2)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = p2.ReleaseContainer(nd)
		b.StartTimer()
	}
}

func BenchmarkTable1ObtainHandle(b *testing.B) {
	p, _, _ := table1Env()
	d, _ := p.CreateContainer(kernel.NoParent, rc.TimeShare, "a", benchAttrs)
	c, _ := p.Lookup(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd, err := p.ContainerHandle(c)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = p.ReleaseContainer(nd)
		b.StartTimer()
	}
}

// --- §5.3 baseline throughput ---

func benchThroughput(b *testing.B, persistent bool, want float64) {
	b.ReportAllocs()
	var rate float64
	for i := 0; i < b.N; i++ {
		s := NewSim(ModeUnmodified, 42)
		if _, err := NewServer(ServerConfig{
			Kernel: s.Kernel, Name: "httpd", Addr: Addr("10.0.0.1", 80), API: SelectAPI,
		}); err != nil {
			b.Fatal(err)
		}
		pop := MustStartPopulation(32, ClientConfig{
			Kernel:     s.Kernel,
			Src:        Addr("10.1.0.1", 1024),
			Dst:        Addr("10.0.0.1", 80),
			Persistent: persistent,
		})
		s.RunFor(Second)
		pop.ResetStats()
		s.RunFor(2 * Second)
		rate = pop.Rate(s.Now())
	}
	b.ReportMetric(rate, "req/s")
	b.ReportMetric(want, "paper-req/s")
}

func BenchmarkBaselineThroughputConnPerReq(b *testing.B) { benchThroughput(b, false, 2954) }
func BenchmarkBaselineThroughputPersistent(b *testing.B) { benchThroughput(b, true, 9487) }

// --- quick experiment options shared by the figure benchmarks ---

var benchOpt = experiments.Options{Seed: 1999, Warmup: sim.Second, Window: 2 * sim.Second}

// --- Fig. 11: prioritized handling of clients ---

func BenchmarkFig11(b *testing.B) {
	var series []float64
	for i := 0; i < b.N; i++ {
		out := experiments.Fig11(benchOpt)
		series = series[:0]
		for _, s := range out {
			y, _ := s.YAt(35)
			series = append(series, y)
		}
	}
	b.ReportMetric(series[0], "Thigh-baseline-ms")
	b.ReportMetric(series[1], "Thigh-select-ms")
	b.ReportMetric(series[2], "Thigh-eventapi-ms")
}

// --- Figs. 12+13: CGI throughput and CPU share ---

func BenchmarkFig12And13(b *testing.B) {
	var res *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig12(benchOpt)
	}
	t0, _ := res.Throughput[0].YAt(4) // Unmodified at 4 CGI
	t2, _ := res.Throughput[2].YAt(4) // RC System 1 at 4 CGI
	s2, _ := res.CGIShare[2].YAt(4)   // RC System 1 CGI share
	b.ReportMetric(t0, "unmod-tput-4cgi")
	b.ReportMetric(t2, "rc30-tput-4cgi")
	b.ReportMetric(s2, "rc30-cgi-share-pct")
}

// --- Fig. 14: SYN-flood immunity ---

func BenchmarkFig14(b *testing.B) {
	var series []*metricsSeries
	for i := 0; i < b.N; i++ {
		out := experiments.Fig14(benchOpt)
		series = series[:0]
		for _, s := range out {
			series = append(series, &metricsSeries{s.Name, s.Points[len(s.Points)-1].Y})
		}
	}
	b.ReportMetric(series[0].last, "unmod-at-70k")
	b.ReportMetric(series[1].last, "rc-at-70k")
}

type metricsSeries struct {
	name string
	last float64
}

// --- §5.8: virtual server isolation ---

func BenchmarkVServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.VServers(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- workload machinery micro-benchmarks ---

func BenchmarkSimEngineEventChurn(b *testing.B) {
	eng := sim.NewEngine(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Microsecond, func() {})
		eng.Step()
	}
}

func BenchmarkRequestPathEndToEnd(b *testing.B) {
	// Cost of simulating one complete HTTP request, end to end (events,
	// scheduling, accounting) — the simulator's own efficiency.
	s := NewSim(ModeRC, 7)
	if _, err := NewServer(ServerConfig{
		Kernel: s.Kernel, Name: "httpd", Addr: Addr("10.0.0.1", 80), API: EventAPI,
		PerConnContainers: true,
	}); err != nil {
		b.Fatal(err)
	}
	pop := MustStartPopulation(16, ClientConfig{
		Kernel: s.Kernel,
		Src:    Addr("10.1.0.1", 1024),
		Dst:    Addr("10.0.0.1", 80),
	})
	b.ReportAllocs()
	b.ResetTimer()
	done := uint64(0)
	for done < uint64(b.N) {
		s.RunFor(100 * Millisecond)
		done = pop.Completed()
	}
	b.StopTimer()
	if done > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(done), "ns/simulated-request")
	}
}
