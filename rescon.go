// Package rescon is the public facade of the resource-containers
// reproduction (Banga, Druschel & Mogul, "Resource Containers: A New
// Facility for Resource Management in Server Systems", OSDI 1999).
//
// The package re-exports the core abstractions so that applications deal
// with a single import:
//
//   - Container / Attributes / Usage — the resource principal (§4.1–§4.6)
//   - Kernel / Process / Thread — the simulated monolithic kernel with
//     three execution models (unmodified, LRP, resource containers)
//   - Server / MTServer — the event-driven and multi-threaded HTTP server
//     models of §2
//   - Client / Population / Flooder — workload generators (§5.2)
//   - Telemetry — structured tracing, usage timelines and the
//     virtual-CPU profile (attach with WithTelemetry)
//   - AlertMonitor / Watchdog — sockstat-style overload detection on the
//     telemetry stream and the closed-loop reaction (attach with
//     WithAlerts, or AttachAlerts + AttachWatchdog)
//   - Rebalancer — the closed-loop adaptive share controller: shifts
//     container attributes between pool members in proportion to
//     demand, with starvation floors, damping and a self-disarming
//     oscillation detector (attach with WithRebalancer, or
//     AttachRebalancer / AttachRuntimeRebalancer)
//   - Runtime / Binder / AcceptPolicy — the real-runtime bridge: govern
//     a live net/http server with containers (NewRuntime, cmd/rcserve,
//     `rcbench -exp live`)
//
// # Quick start
//
//	s := rescon.NewSim(rescon.ModeRC, 42,
//	    rescon.WithTelemetry(rescon.TelemetryConfig{}))
//	srv, err := rescon.NewServer(rescon.ServerConfig{
//	    Kernel: s.Kernel, Name: "httpd",
//	    Addr:   rescon.Addr("10.0.0.1", 80),
//	    API:    rescon.EventAPI,
//	    PerConnContainers: true,
//	})
//	if err != nil {
//	    log.Fatal(err)
//	}
//	clients, err := rescon.StartPopulation(8, rescon.ClientConfig{
//	    Kernel: s.Kernel, Src: rescon.Addr("10.1.0.1", 1024),
//	    Dst: rescon.Addr("10.0.0.1", 80),
//	})
//	if err != nil {
//	    log.Fatal(err)
//	}
//	s.RunFor(5 * rescon.Second)
//	fmt.Println(clients.Rate(s.Now()), "requests/s")
//	s.Telemetry.WriteProfile(os.Stdout, 10)
//	_ = srv
//
// # Constructor naming
//
// The facade follows one convention throughout: New* constructors are
// passive — they build a value (and may register callbacks) but schedule
// no engine work, so virtual time can pass without them doing anything
// (NewSim, NewContainer, NewServer, NewMTServer, NewFaultInjector,
// NewInvariantChecker, NewEnforcer, NewTelemetry). Start* constructors
// put work on the engine before returning — the returned object is
// already acting and will consume virtual time as soon as the simulation
// runs (StartClient, StartPopulation, StartFlood, StartCrasher,
// StartSlowLoris). A Server is New* because it only reacts to kernel
// upcalls; a Client is Start* because its request loop begins
// immediately.
//
// # Deprecation and removal schedule
//
// Facade symbols are never removed silently. A symbol slated for
// removal first gains a Deprecated notice naming its replacement, stays
// for two further tagged releases so downstream callers can migrate at
// their own pace, and is then deleted. The first full cycle of that
// schedule has now run: NewSimWithCosts and NewSMPSim carried their
// notices for two tagged releases and have been removed — use NewSim
// with the WithCosts / WithCPUs options instead. No facade symbol is
// currently deprecated.
//
// See the examples/ directory for complete programs and cmd/rcbench for
// the harness that regenerates every table and figure of the paper.
package rescon

import (
	"context"
	"time"

	"rescon/internal/alert"
	"rescon/internal/chaos"
	"rescon/internal/fault"
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/rcruntime"
	"rescon/internal/rebalance"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/trace"
	"rescon/internal/workload"
)

// Core resource-container types (internal/rc).
type (
	// Container is a resource principal: the paper's core abstraction.
	Container = rc.Container
	// Attributes hold a container's scheduling parameters and limits.
	Attributes = rc.Attributes
	// ContainerUsage is the resource consumption charged to a container.
	ContainerUsage = rc.Usage
	// Class distinguishes fixed-share from time-share containers.
	Class = rc.Class
	// Desc is a per-process container descriptor.
	Desc = rc.Desc
)

// Container classes.
const (
	TimeShare  = rc.TimeShare
	FixedShare = rc.FixedShare
)

// NewContainer creates a resource container; see rc.New.
func NewContainer(parent *Container, class Class, name string, attrs Attributes) (*Container, error) {
	return rc.New(parent, class, name, attrs)
}

// Simulated kernel types (internal/kernel).
type (
	// Kernel is one simulated server machine.
	Kernel = kernel.Kernel
	// Mode selects the resource-management model.
	Mode = kernel.Mode
	// Process is a protection domain in the simulated kernel.
	Process = kernel.Process
	// Thread is a kernel-schedulable thread.
	Thread = kernel.Thread
	// Conn is an established connection.
	Conn = kernel.Conn
	// ListenSocket is a (possibly filtered) listening socket.
	ListenSocket = kernel.ListenSocket
	// ListenConfig configures a listening socket.
	ListenConfig = kernel.ListenConfig
	// CostModel holds the calibrated CPU costs of every processing stage.
	CostModel = kernel.CostModel
	// Address is a transport endpoint.
	Address = netsim.Addr
	// Filter is a CIDR filter of the new sockaddr namespace (§4.8).
	Filter = netsim.Filter
	// IP is an IPv4 address.
	IP = netsim.IP
)

// Kernel execution models.
const (
	ModeUnmodified = kernel.ModeUnmodified
	ModeLRP        = kernel.ModeLRP
	ModeRC         = kernel.ModeRC
)

// DefaultPriority is the container priority used when none is specified;
// priority 0 is the idle class.
const DefaultPriority = kernel.DefaultPriority

// NoParent passes "no parent" to container syscalls.
const NoParent = kernel.NoParent

// Addr builds an endpoint from a dotted-quad IP string and port.
func Addr(ip string, port uint16) Address { return kernel.Addr(ip, port) }

// CIDR builds a client filter from a dotted-quad prefix and mask length.
func CIDR(prefix string, bits int) Filter { return kernel.FilterCIDR(prefix, bits) }

// DefaultCosts returns the cost model calibrated to the paper's testbed.
func DefaultCosts() CostModel { return kernel.DefaultCosts() }

// Server models (internal/httpsim).
type (
	// Server is the single-process event-driven server (Fig. 2/10).
	Server = httpsim.Server
	// ServerConfig configures an event-driven server.
	ServerConfig = httpsim.Config
	// MTServer is the single-process multi-threaded server (Fig. 3/9).
	MTServer = httpsim.MTServer
	// Request is one HTTP request payload.
	Request = httpsim.Request
	// API selects select() vs the scalable event API.
	API = httpsim.API
)

// Event APIs.
const (
	SelectAPI = httpsim.SelectAPI
	EventAPI  = httpsim.EventAPI
)

// Request kinds.
const (
	Static = httpsim.Static
	CGI    = httpsim.CGI
)

// NewServer starts an event-driven server; see httpsim.NewServer.
func NewServer(cfg ServerConfig) (*Server, error) { return httpsim.NewServer(cfg) }

// NewMTServer starts a multi-threaded server with the given pool size.
func NewMTServer(cfg ServerConfig, threads int) (*MTServer, error) {
	return httpsim.NewMTServer(cfg, threads)
}

// Workload types (internal/workload).
type (
	// Client is a closed-loop request generator (one S-Client slot).
	Client = workload.Client
	// ClientConfig configures a client.
	ClientConfig = workload.ClientConfig
	// Population is a set of clients with pooled statistics.
	Population = workload.Population
	// Flooder emits bogus SYNs at a fixed rate (§5.7).
	Flooder = workload.Flooder
)

// StartClient validates the configuration and launches one closed-loop
// client.
func StartClient(cfg ClientConfig) (*Client, error) { return workload.StartClient(cfg) }

// StartPopulation validates the configuration and launches n clients
// with consecutive source addresses.
func StartPopulation(n int, cfg ClientConfig) (*Population, error) {
	return workload.StartPopulation(n, cfg)
}

// MustStartClient is StartClient that panics on an invalid configuration;
// convenient for examples and tests with known-good configs.
func MustStartClient(cfg ClientConfig) *Client { return workload.MustStartClient(cfg) }

// MustStartPopulation is StartPopulation that panics on an invalid
// configuration; convenient for examples and tests with known-good
// configs.
func MustStartPopulation(n int, cfg ClientConfig) *Population {
	return workload.MustStartPopulation(n, cfg)
}

// StartFlood begins a SYN flood; see workload.StartFlood.
func StartFlood(k *Kernel, rate Rate, prefix IP, hosts uint32, dst Address) *Flooder {
	return workload.StartFlood(k, rate, prefix, hosts, dst)
}

// Virtual-time types (internal/sim).
type (
	// Time is a point in virtual time.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Rate is events per virtual second.
	Rate = sim.Rate
	// Engine is the discrete-event engine.
	Engine = sim.Engine
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Fault injection and resilience (internal/fault, internal/workload).
type (
	// FaultConfig sets the per-class probabilities of the deterministic
	// fault injector: wire drop/duplicate/reorder/delay and disk
	// error/latency-spike rates.
	FaultConfig = fault.Config
	// FaultInjector draws seed-stable wire and disk fault schedules;
	// assign it to Kernel.Faults and Kernel.Disk().Faults.
	FaultInjector = fault.Injector
	// FaultStats counts injected faults by class.
	FaultStats = fault.Stats
	// InvariantChecker periodically asserts CPU-charge conservation,
	// virtual-clock monotonicity and queue bounds at runtime; wire a
	// kernel in with Kernel.WatchInvariants.
	InvariantChecker = fault.Checker
	// CrashPlan configures a crash-and-restart schedule (MTBF, downtime).
	CrashPlan = fault.CrashPlan
	// Crasher drives crash/restart callbacks on an Exp(MTBF) schedule.
	Crasher = fault.Crasher
	// SlowLoris is an attacker that holds server connections open by
	// trickling bytes that never form a request.
	SlowLoris = workload.SlowLoris
	// SlowLorisConfig configures a slow-loris attacker.
	SlowLorisConfig = workload.SlowLorisConfig
)

// NewFaultInjector returns a deterministic fault injector drawing from
// the engine's seed; each fault class uses its own forked stream, so
// enabling one class never perturbs another's schedule.
func NewFaultInjector(eng *Engine, cfg FaultConfig) *FaultInjector {
	return fault.NewInjector(eng, cfg)
}

// NewInvariantChecker returns a runtime invariant checker; call Start to
// begin periodic checks.
func NewInvariantChecker(eng *Engine) *InvariantChecker { return fault.NewChecker(eng) }

// StartCrasher schedules crash/restart cycles; see fault.StartCrasher.
// It returns fault.ErrCrashPlan if the plan's MTBF is not positive.
func StartCrasher(eng *Engine, plan CrashPlan, crash, restart func()) (*Crasher, error) {
	return fault.StartCrasher(eng, plan, crash, restart)
}

// StartSlowLoris launches a slow-loris attacker; see
// workload.StartSlowLoris.
func StartSlowLoris(cfg SlowLorisConfig) *SlowLoris { return workload.StartSlowLoris(cfg) }

// Deterministic chaos harness (internal/chaos): seed-generated
// scenarios, an invariant battery, and auto-shrinking repros. See
// DESIGN.md §9 and cmd/rcchaos.
type (
	// ChaosScenario is a fully serializable description of one chaos
	// run: container hierarchy, workload mix, fault schedule, crash
	// plan, kernel mode and machine shape — a pure function of its seed.
	ChaosScenario = chaos.Scenario
	// ChaosResult reports one chaos run: violations, the determinism
	// hash, and the end-of-run resource counters.
	ChaosResult = chaos.Result
)

// GenerateChaosScenario derives a random-but-valid scenario from the
// seed; the same seed always yields the same scenario.
func GenerateChaosScenario(seed uint64) ChaosScenario { return chaos.Generate(seed) }

// RunChaos runs a scenario twice on fresh engines with the full
// invariant battery and adds a violation if the two run hashes differ;
// see chaos.RunChecked.
func RunChaos(sc ChaosScenario) (*ChaosResult, error) { return chaos.RunChecked(sc) }

// ShrinkChaosScenario greedily minimizes a failing scenario while it
// still fails with the same violation class (see chaos.Classify).
func ShrinkChaosScenario(sc ChaosScenario, class string) ChaosScenario {
	return chaos.Shrink(sc, class)
}

// LoadChaosScenario reads and validates a scenario (repro) JSON file.
func LoadChaosScenario(path string) (ChaosScenario, error) { return chaos.LoadScenario(path) }

// ChaosSmoke generates `runs` scenarios starting at seed and runs each
// under all three kernel modes, returning the first failure.
func ChaosSmoke(runs int, seed uint64) error { return chaos.Smoke(runs, seed) }

// Enforcer applies container CPU limits and accounting to real
// (non-simulated) Go programs via cooperative bracketing — the userspace
// approximation of the paper's kernel mechanism. See
// examples/realtime-limiter.
type Enforcer = rcruntime.Enforcer

// NewEnforcer returns an enforcer over the wall clock with the given
// limit window (0 for the default).
func NewEnforcer(window time.Duration) *Enforcer {
	return rcruntime.New(nil, window)
}

// Runtime surface: govern a real net/http server with containers
// (internal/rcruntime). The Runtime binds each request to a Container,
// charges its wall-clock cost into the hierarchy, sheds over-budget
// requests at the middleware (429) and over-budget or over-cap
// connections at accept — the production counterpart of the simulated
// kernel's Policing. See cmd/rcserve and `rcbench -exp live`.
type (
	// Runtime binds containers to goroutines serving real net/http load:
	// Middleware charges and sheds requests, Listener polices accepts.
	Runtime = rcruntime.Runtime
	// RuntimeConfig configures a Runtime; validate with its Validate
	// method, or let NewRuntime do it.
	RuntimeConfig = rcruntime.Config
	// RuntimeOption is a functional option for NewRuntime (WithClock,
	// WithWindow, WithBinder, WithTelemetrySink).
	RuntimeOption = rcruntime.Option
	// RuntimeStats is a snapshot of a Runtime's request and connection
	// counters.
	RuntimeStats = rcruntime.Stats
	// RuntimeClock abstracts time for the Runtime so tests and the live
	// experiment can inject a deterministic clock.
	RuntimeClock = rcruntime.Clock
	// Binder resolves an incoming request to the Container that pays for
	// it (§4.2 dynamic binding).
	Binder = rcruntime.Binder
	// BinderFunc adapts a function to a Binder.
	BinderFunc = rcruntime.BinderFunc
	// AcceptPolicy configures connection shedding at accept — the real
	// analogue of the simulated kernel's Policing.
	AcceptPolicy = rcruntime.AcceptPolicy
	// RequestEvent is the telemetry record emitted per governed request.
	RequestEvent = rcruntime.RequestEvent
	// TelemetrySink receives RequestEvents from a Runtime.
	TelemetrySink = rcruntime.TelemetrySink
)

// NoDelay, as a RuntimeConfig.MaxDelay, makes admission try-once: an
// over-budget request is shed immediately instead of waiting for the
// window to roll.
const NoDelay = rcruntime.NoDelay

// ErrBadConfig is wrapped by every RuntimeConfig validation failure.
var ErrBadConfig = rcruntime.ErrBadConfig

// NewRuntime validates cfg, applies opts, and returns a Runtime
// governing real HTTP load with the configured container hierarchy.
func NewRuntime(cfg RuntimeConfig, opts ...RuntimeOption) (*Runtime, error) {
	return rcruntime.NewRuntime(cfg, opts...)
}

// MustNewRuntime is NewRuntime, panicking on error — for wiring known
// at compile time.
func MustNewRuntime(cfg RuntimeConfig, opts ...RuntimeOption) *Runtime {
	return rcruntime.MustNewRuntime(cfg, opts...)
}

// WithClock injects the Runtime's time source (nil keeps the wall
// clock).
func WithClock(c RuntimeClock) RuntimeOption { return rcruntime.WithClock(c) }

// WithWindow overrides the enforcement window.
func WithWindow(w time.Duration) RuntimeOption { return rcruntime.WithWindow(w) }

// WithBinder sets how requests resolve to containers (nil keeps
// bind-to-root).
func WithBinder(b Binder) RuntimeOption { return rcruntime.WithBinder(b) }

// WithTelemetrySink streams per-request events to s (nil discards).
func WithTelemetrySink(s TelemetrySink) RuntimeOption { return rcruntime.WithTelemetrySink(s) }

// HeaderBinder binds requests by the named header to the matching
// container in tenants, falling back to def (nil def means the
// Runtime's root).
func HeaderBinder(header string, tenants map[string]*Container, def *Container) Binder {
	return rcruntime.HeaderBinder(header, tenants, def)
}

// RebindRequest re-binds an in-flight request to c (§4.2): the running
// segment is charged to the old container and subsequent time accrues
// to c. It reports false if the request carries no binding or c is
// unusable.
func RebindRequest(ctx context.Context, c *Container) bool { return rcruntime.Rebind(ctx, c) }

// BoundContainer returns the container an in-flight request is
// currently charged to, or nil outside a governed request.
func BoundContainer(ctx context.Context) *Container { return rcruntime.Bound(ctx) }

// Survivability surface: graceful degradation and closed-loop
// governance for the real runtime — per-tenant circuit breakers,
// drain/shutdown with a leak report, an alert-check battery sampling
// the runtime's counters, and a watchdog that clamps the dominant
// over-budget tenant and restores it once the storm passes. See
// DESIGN.md §13 and `rcbench -exp livechaos`.
type (
	// DrainReport summarizes a Runtime drain: whether every in-flight
	// request finished inside the grace period, how many leaked, and how
	// long the drain waited.
	DrainReport = rcruntime.DrainReport
	// BreakerConfig tunes the per-tenant circuit breakers enabled by
	// WithBreakers: consecutive sheds to open, the open duration, and
	// its exponential-backoff bound.
	BreakerConfig = rcruntime.BreakerConfig
	// RuntimeMonitorConfig sets the thresholds of the runtime check
	// battery (shed rate, refusal rate, inflight gauge, panics,
	// per-tenant CPU share, open breakers).
	RuntimeMonitorConfig = rcruntime.MonitorConfig
	// RuntimeMonitor samples a Runtime's counters into an AlertMonitor
	// on every Tick — the adapter between the live runtime and the
	// alerting subsystem.
	RuntimeMonitor = rcruntime.Monitor
	// RuntimeWatchdogConfig tunes the runtime watchdog: the emergency
	// clamp limit, restore backoff, and which tenants may be clamped.
	RuntimeWatchdogConfig = rcruntime.WatchdogConfig
	// RuntimeWatchdog reacts to critical runtime alerts by tightening
	// the accept policy and clamping the runaway tenant, then restores
	// the saved settings after a calm stretch — every action journaled
	// in the alert stream.
	RuntimeWatchdog = rcruntime.Watchdog
)

// NewAlertMonitor returns an empty alert monitor, ready for a check
// battery — the runtime path registers one via AttachRuntimeMonitor
// (the simulated kernel's AttachAlerts builds its own).
func NewAlertMonitor() *AlertMonitor { return alert.New() }

// WithBreakers enables per-tenant circuit breakers on a Runtime:
// consecutive sheds open a tenant's breaker, which fails fast with 503
// until a half-open probe is admitted again.
func WithBreakers(cfg BreakerConfig) RuntimeOption { return rcruntime.WithBreakers(cfg) }

// AttachRuntimeMonitor registers the runtime check battery on am and
// returns the adapter whose Tick samples rt's counters into it.
func AttachRuntimeMonitor(rt *Runtime, am *AlertMonitor, cfg RuntimeMonitorConfig) (*RuntimeMonitor, error) {
	return rcruntime.AttachMonitor(rt, am, cfg)
}

// AttachRuntimeWatchdog wires the closed-loop watchdog to a runtime
// monitor's critical alerts.
func AttachRuntimeWatchdog(m *RuntimeMonitor, cfg RuntimeWatchdogConfig) *RuntimeWatchdog {
	return rcruntime.AttachWatchdog(m, cfg)
}

// Request-outcome causes recorded in RequestEvent.Cause by a governed
// Runtime (served requests carry an empty cause).
const (
	// CauseShed marks a 429: the subtree's window budget stayed
	// exhausted past the request's admission patience.
	CauseShed = rcruntime.CauseShed
	// CauseBreaker marks a 503 from an open per-tenant circuit breaker.
	CauseBreaker = rcruntime.CauseBreaker
	// CauseDrain marks a 503 issued while the runtime is draining.
	CauseDrain = rcruntime.CauseDrain
	// CausePanic marks a request whose handler panicked; the partial
	// work is still charged.
	CausePanic = rcruntime.CausePanic
)

// Live fault injection (internal/fault): deterministic connection
// resets, read stalls, handler stalls and panics for a real net/http
// server — the chaos layer behind `rcbench -exp livechaos`.
type (
	// LiveFaultConfig sets the per-event probabilities and durations of
	// the injected faults.
	LiveFaultConfig = fault.LiveConfig
	// LiveFaultInjector wraps a listener and an http.Handler with
	// seeded fault injection and tallies what it injected.
	LiveFaultInjector = fault.LiveInjector
	// LiveFaultStats counts the faults actually injected in a run.
	LiveFaultStats = fault.LiveStats
)

// NewLiveFaultInjector returns a deterministic injector for the seed;
// sleeper nil uses real time (tests pass the runtime's clock).
func NewLiveFaultInjector(seed int64, cfg LiveFaultConfig, sleeper fault.Sleeper) *LiveFaultInjector {
	return fault.NewLive(seed, cfg, sleeper)
}

// Live chaos harness (internal/chaos): seed-generated scenarios fuzzing
// the breaker/watchdog closed loop on the real middleware stack, with
// auto-shrinking repros. See cmd/rcchaos -live.
type (
	// LiveChaosScenario describes one live chaos run — tenants, fault
	// rates, breaker and watchdog settings — as a pure function of its
	// seed.
	LiveChaosScenario = chaos.LiveScenario
	// LiveChaosResult reports one live run: violations, the determinism
	// hash, watchdog cycle counts, and per-tenant request ledgers.
	LiveChaosResult = chaos.LiveResult
)

// GenerateLiveChaosScenario derives a random-but-valid live scenario
// from the seed.
func GenerateLiveChaosScenario(seed uint64) LiveChaosScenario { return chaos.GenerateLive(seed) }

// RunLiveChaos runs a live scenario twice on fresh runtimes with the
// live invariant battery and adds a violation if the run hashes differ.
func RunLiveChaos(sc LiveChaosScenario) (*LiveChaosResult, error) { return chaos.RunLiveChecked(sc) }

// ShrinkLiveChaosScenario greedily minimizes a failing live scenario
// while it still fails with the same violation class.
func ShrinkLiveChaosScenario(sc LiveChaosScenario, class string) LiveChaosScenario {
	return chaos.ShrinkLive(sc, class)
}

// LoadLiveChaosScenario reads and validates a live scenario (repro)
// JSON file.
func LoadLiveChaosScenario(path string) (LiveChaosScenario, error) {
	return chaos.LoadLiveScenario(path)
}

// LiveChaosSmoke generates `runs` live scenarios starting at seed and
// runs each with the checker, returning the first failure.
func LiveChaosSmoke(runs int, seed uint64) error { return chaos.LiveSmoke(runs, seed) }

// Telemetry and structured tracing (internal/telemetry, internal/trace).
type (
	// Telemetry collects structured trace events, per-principal usage
	// timelines and the virtual-CPU profile for one kernel.
	Telemetry = telemetry.Collector
	// TelemetryConfig sizes a Telemetry collector (zero values take
	// defaults).
	TelemetryConfig = telemetry.Config
	// TelemetrySample is one usage-timeline row.
	TelemetrySample = telemetry.Sample
	// ProfileRow is one (principal × stage) cell of the virtual-CPU
	// profile.
	ProfileRow = telemetry.ProfileRow
	// Tracer is the bounded structured event ring.
	Tracer = trace.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = trace.Event
	// TraceKind classifies trace events.
	TraceKind = trace.Kind
	// Stage is the kernel execution stage CPU time is attributed to.
	Stage = trace.Stage
)

// Kernel execution stages of the virtual-CPU profile.
const (
	StageInterrupt = trace.StageInterrupt
	StageIP        = trace.StageIP
	StageSocket    = trace.StageSocket
	StageSyscall   = trace.StageSyscall
	StageUser      = trace.StageUser
	StageDisk      = trace.StageDisk
)

// NewTelemetry returns a detached telemetry collector; attach it with
// WithTelemetry (at construction) or Kernel.AttachTelemetry (later).
func NewTelemetry(cfg TelemetryConfig) *Telemetry { return telemetry.New(cfg) }

// Alerting and the closed-loop overload watchdog (internal/alert). The
// monitor consumes the telemetry sampling tick, so the kernel must have
// a collector attached first (WithAlerts takes care of that).
type (
	// AlertMonitor evaluates a registered check battery on every
	// telemetry sampling tick and publishes a deterministic,
	// hysteresis-filtered event stream (JSONL via WriteJSONL).
	AlertMonitor = alert.Monitor
	// AlertConfig tunes the built-in check battery: disable built-ins by
	// name, append extra checks.
	AlertConfig = alert.Config
	// AlertCheck is one pluggable detector: thresholds, hysteresis
	// windows and an Observe callback.
	AlertCheck = alert.Check
	// AlertObservation is one (target, value) reading of a check.
	AlertObservation = alert.Observation
	// AlertEvent is one published alert-state transition.
	AlertEvent = alert.Event
	// AlertLevel is an alert severity (ok, warning, critical).
	AlertLevel = alert.Level
	// Watchdog is the closed loop on the alert stream: on critical
	// overload it tightens kernel policing and clamps a runaway
	// container, restoring with exponential backoff.
	Watchdog = alert.Watchdog
	// WatchdogConfig tunes the watchdog's triggers, emergency settings
	// and restore backoff.
	WatchdogConfig = alert.WatchdogConfig
)

// Alert severities.
const (
	AlertOk       = alert.LevelOk
	AlertWarning  = alert.LevelWarning
	AlertCritical = alert.LevelCritical
)

// AttachAlerts builds an AlertMonitor with the built-in check battery
// over k and subscribes it to the telemetry sampling tick; see
// alert.Attach. The kernel must already have a telemetry collector.
func AttachAlerts(k *Kernel, cfg AlertConfig) (*AlertMonitor, error) {
	return alert.Attach(k, cfg)
}

// AttachWatchdog wires the closed-loop watchdog to a monitor's event
// stream; call after AttachAlerts, before running load.
func AttachWatchdog(m *AlertMonitor, k *Kernel, cfg WatchdogConfig) *Watchdog {
	return alert.AttachWatchdog(m, k, cfg)
}

// Closed-loop adaptive rebalancing (internal/rebalance). The controller
// watches per-member demand counters on the telemetry sampling tick and
// live-rewrites container attributes toward the demand split, under
// hard robustness bounds: per-tick step clamps with cooldowns, a
// starvation floor no member is ever pushed below, conserved pool
// totals, and an oscillation detector that disarms the controller and
// restores the saved static shares verbatim if damping proves
// insufficient. Every decision lands in a deterministic JSONL journal.
type (
	// Rebalancer is the feedback controller; inspect it with Steps,
	// Disarms, Disarmed, Allocations, the Audit* invariant probes and
	// the WriteJSONL decision journal.
	Rebalancer = rebalance.Controller
	// RebalanceConfig tunes damping (step clamp, cooldown, deadband),
	// the starvation floor, the oscillation detector and the demand
	// smoothing window. The zero value picks conservative defaults.
	RebalanceConfig = rebalance.Config
	// RebalancePool declares one governed pool: a named resource and at
	// least two members whose current allocations become both the saved
	// static split and the conserved pool total.
	RebalancePool = rebalance.PoolConfig
	// RebalanceMember pairs a container with its cumulative demand
	// counter (monotonic; the controller differences it per tick).
	RebalanceMember = rebalance.Member
	// RebalanceResource selects which attribute a pool trades between
	// members: CPU share, CPU limit or memory quota.
	RebalanceResource = rebalance.Resource
	// RebalanceFreezer is an actuator the controller yields to: while
	// Engaged returns true the controller freezes, and it resyncs its
	// view of member attributes before resuming. Both the simulated
	// watchdog (Watchdog) and the runtime one (RuntimeWatchdog)
	// implement it.
	RebalanceFreezer = rebalance.Freezer
)

// Rebalanceable resources.
const (
	RebalanceCPUShare = rebalance.CPUShare
	RebalanceCPULimit = rebalance.CPULimit
	RebalanceMemQuota = rebalance.MemQuota
)

// AttachRebalancer builds a rebalance controller and drives it from the
// telemetry sampling tick; see rebalance.Attach. Attach it after
// AttachAlerts / AttachWatchdog so a watchdog listed in cfg.Freeze has
// updated its state by the time the controller runs (sample hooks run
// in registration order); WithRebalancer orders this automatically.
// Pools are added afterwards with AddPool, once the governed containers
// exist.
func AttachRebalancer(tel *Telemetry, cfg RebalanceConfig) (*Rebalancer, error) {
	return rebalance.Attach(tel, cfg)
}

// AttachRuntimeRebalancer drives a rebalance controller from a live
// runtime monitor's enforcement tick, serialized against the enforcer's
// snapshot-decide-apply cycle; see rcruntime.AttachRebalancer. Attach
// the runtime watchdog first and list it in cfg.Freeze so emergency
// actuation wins arbitration.
func AttachRuntimeRebalancer(m *RuntimeMonitor, cfg RebalanceConfig) (*Rebalancer, error) {
	return rcruntime.AttachRebalancer(m, cfg)
}

// Sim bundles a discrete-event engine with a simulated kernel.
type Sim struct {
	Engine *Engine
	Kernel *Kernel
	// Telemetry is the attached collector, nil unless WithTelemetry was
	// used (or a collector was attached to the kernel afterwards).
	Telemetry *Telemetry
	// Alerts is the attached alert monitor, nil unless WithAlerts or
	// WithWatchdog was used.
	Alerts *AlertMonitor
	// Watchdog is the attached closed loop, nil unless WithWatchdog was
	// used.
	Watchdog *Watchdog
	// Rebalancer is the attached adaptive share controller, nil unless
	// WithRebalancer was used. Pools are added with AddPool once the
	// governed containers exist.
	Rebalancer *Rebalancer
}

// SimOption customizes NewSim.
type SimOption func(*simOptions)

type simOptions struct {
	costs  CostModel
	ncpus  int
	tel    *telemetry.Collector
	alerts *alert.Config
	wd     *alert.WatchdogConfig
	reb    *rebalance.Config
}

// WithCosts replaces the default (paper-calibrated) cost model.
func WithCosts(costs CostModel) SimOption {
	return func(o *simOptions) { o.costs = costs }
}

// WithCPUs simulates a multiprocessor machine: interrupts go to CPU 0,
// threads migrate freely, and container shares/limits are fractions of
// the whole machine.
func WithCPUs(n int) SimOption {
	return func(o *simOptions) { o.ncpus = n }
}

// WithTelemetry attaches a telemetry collector sized by cfg: structured
// tracing, usage-timeline sampling and virtual-CPU profiling are active
// from the first event. The collector is reachable as Sim.Telemetry.
func WithTelemetry(cfg TelemetryConfig) SimOption {
	return func(o *simOptions) { o.tel = telemetry.New(cfg) }
}

// WithAlerts attaches the built-in alert battery on the telemetry
// sampling tick; the monitor is reachable as Sim.Alerts. A telemetry
// collector is attached implicitly (with default sizing) if WithTelemetry
// is not also given. NewSim panics if cfg is invalid — an Extra check
// reusing a registered name — since that is a programming error, not a
// runtime condition.
func WithAlerts(cfg AlertConfig) SimOption {
	return func(o *simOptions) { o.alerts = &cfg }
}

// WithWatchdog attaches the alert battery (as WithAlerts, with a default
// AlertConfig unless WithAlerts is also given) plus the closed-loop
// overload watchdog reacting to it; the loop is reachable as
// Sim.Watchdog.
func WithWatchdog(cfg WatchdogConfig) SimOption {
	return func(o *simOptions) { o.wd = &cfg }
}

// WithRebalancer attaches the closed-loop adaptive share controller on
// the telemetry sampling tick; the controller is reachable as
// Sim.Rebalancer (add pools with AddPool once the governed containers
// exist). A telemetry collector is attached implicitly if WithTelemetry
// is not also given. When WithWatchdog is also given, the watchdog is
// attached first and appended to cfg.Freeze automatically, so emergency
// actuation always wins arbitration and the controller freezes while
// the watchdog is engaged. Zero-valued damping knobs in cfg take the
// package defaults.
func WithRebalancer(cfg RebalanceConfig) SimOption {
	return func(o *simOptions) { o.reb = &cfg }
}

// NewSim creates a deterministic simulation in the given kernel mode,
// customized by functional options: WithCosts, WithCPUs, WithTelemetry.
func NewSim(mode Mode, seed int64, opts ...SimOption) *Sim {
	o := simOptions{costs: kernel.DefaultCosts(), ncpus: 1}
	for _, opt := range opts {
		opt(&o)
	}
	eng := sim.NewEngine(seed)
	k := kernel.NewSMP(eng, mode, o.costs, o.ncpus)
	s := &Sim{Engine: eng, Kernel: k}
	if o.tel == nil && (o.alerts != nil || o.wd != nil || o.reb != nil) {
		o.tel = telemetry.New(telemetry.Config{})
	}
	if o.tel != nil {
		k.AttachTelemetry(o.tel)
		s.Telemetry = o.tel
	}
	if o.alerts != nil || o.wd != nil {
		acfg := alert.Config{}
		if o.alerts != nil {
			acfg = *o.alerts
		}
		m, err := alert.Attach(k, acfg)
		if err != nil {
			panic("rescon: WithAlerts: " + err.Error())
		}
		s.Alerts = m
		if o.wd != nil {
			s.Watchdog = alert.AttachWatchdog(m, k, *o.wd)
		}
	}
	if o.reb != nil {
		rcfg := *o.reb
		if s.Watchdog != nil {
			// The watchdog registered its sample hook first, so by the
			// time the controller ticks its Engaged state is current;
			// listing it in Freeze makes emergency actuation win.
			rcfg.Freeze = append(rcfg.Freeze, s.Watchdog)
		}
		r, err := rebalance.Attach(s.Telemetry, rcfg)
		if err != nil {
			panic("rescon: WithRebalancer: " + err.Error())
		}
		s.Rebalancer = r
	}
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.Engine.Now() }

// RunFor advances the simulation by d of virtual time.
func (s *Sim) RunFor(d Duration) { s.Engine.RunUntil(s.Engine.Now().Add(d)) }

// RunUntil advances the simulation to absolute virtual time t.
func (s *Sim) RunUntil(t Time) { s.Engine.RunUntil(t) }
