package rebalance

import (
	"bytes"
	"strings"
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// harness builds a root with n FixedShare children holding equal shares
// summing to totalShare, and a controller governing them as one CPU
// pool whose demand signals are driven by the test.
type harness struct {
	t       *testing.T
	root    *rc.Container
	kids    []*rc.Container
	demands []int64
	ctrl    *Controller
	now     sim.Time
}

func newHarness(t *testing.T, n int, totalShare float64, cfg Config) *harness {
	t.Helper()
	h := &harness{t: t}
	h.root = rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{Share: 1})
	per := totalShare / float64(n)
	members := make([]Member, n)
	h.demands = make([]int64, n)
	for i := 0; i < n; i++ {
		c := rc.MustNew(h.root, rc.FixedShare, "kid"+string(rune('A'+i)), rc.Attributes{Share: per})
		h.kids = append(h.kids, c)
		i := i
		members[i] = Member{Container: c, Demand: func() int64 { return h.demands[i] }}
	}
	h.ctrl = New(cfg)
	if err := h.ctrl.AddPool(PoolConfig{Name: "cpu", Resource: CPUShare, Members: members}); err != nil {
		t.Fatalf("AddPool: %v", err)
	}
	return h
}

func (h *harness) tick() {
	h.now += sim.Time(1e6)
	h.ctrl.Tick(h.now)
}

func (h *harness) audit() {
	h.t.Helper()
	if v := h.ctrl.AuditConservation(); v != "" {
		h.t.Fatalf("conservation violated: %s", v)
	}
	if v := h.ctrl.AuditFloors(); v != "" {
		h.t.Fatalf("floor violated: %s", v)
	}
}

func TestAddPoolValidation(t *testing.T) {
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{Share: 1})
	a := rc.MustNew(root, rc.FixedShare, "a", rc.Attributes{Share: 0.3})
	b := rc.MustNew(root, rc.FixedShare, "b", rc.Attributes{Share: 0.3})
	dem := func() int64 { return 0 }
	ctrl := New(Config{})
	cases := []struct {
		name string
		pc   PoolConfig
	}{
		{"no name", PoolConfig{Members: []Member{{a, dem}, {b, dem}}}},
		{"one member", PoolConfig{Name: "p", Members: []Member{{a, dem}}}},
		{"nil container", PoolConfig{Name: "p", Members: []Member{{a, dem}, {nil, dem}}}},
		{"nil demand", PoolConfig{Name: "p", Members: []Member{{a, dem}, {b, nil}}}},
		{"duplicate member", PoolConfig{Name: "p", Members: []Member{{a, dem}, {a, dem}}}},
	}
	for _, tc := range cases {
		if err := ctrl.AddPool(tc.pc); err == nil {
			t.Errorf("%s: AddPool accepted invalid pool", tc.name)
		}
	}
	if err := ctrl.AddPool(PoolConfig{Name: "p", Resource: CPUShare, Members: []Member{{a, dem}, {b, dem}}}); err != nil {
		t.Fatalf("valid pool rejected: %v", err)
	}
	if err := ctrl.AddPool(PoolConfig{Name: "p", Resource: CPUShare, Members: []Member{{a, dem}, {b, dem}}}); err == nil {
		t.Error("duplicate pool name accepted")
	}
	// Zero-total pool: nothing to govern.
	z1 := rc.MustNew(root, rc.FixedShare, "z1", rc.Attributes{})
	z2 := rc.MustNew(root, rc.FixedShare, "z2", rc.Attributes{})
	if err := ctrl.AddPool(PoolConfig{Name: "zero", Resource: CPUShare, Members: []Member{{z1, dem}, {z2, dem}}}); err == nil {
		t.Error("zero-total pool accepted")
	}
}

func TestStepsChaseDemandAndConserve(t *testing.T) {
	h := newHarness(t, 2, 0.8, Config{})
	// All demand on kid B: controller should move share from A to B,
	// bounded per tick, conserving the total at every step.
	for i := 0; i < 200; i++ {
		h.demands[1] += 1000
		h.tick()
		h.audit()
	}
	alloc := h.ctrl.Allocations("cpu")
	if alloc[1] <= alloc[0] {
		t.Fatalf("demanded member did not grow: %v", alloc)
	}
	if h.ctrl.Steps() == 0 {
		t.Fatal("no steps applied")
	}
	// Floors hold even with zero demand on A.
	if v := h.ctrl.AuditFloors(); v != "" {
		t.Fatalf("floor: %s", v)
	}
}

func TestStepBoundPerTick(t *testing.T) {
	h := newHarness(t, 2, 0.8, Config{CooldownTicks: 1})
	total := int64(0.8 * 1e6)
	step := int64(DefaultStepFrac * float64(total))
	prev := h.ctrl.Allocations("cpu")
	for i := 0; i < 50; i++ {
		h.demands[1] += 1_000_000
		h.tick()
		cur := h.ctrl.Allocations("cpu")
		for j := range cur {
			d := cur[j] - prev[j]
			if d < 0 {
				d = -d
			}
			if d > step {
				t.Fatalf("tick %d member %d moved %d units, step bound %d", i, j, d, step)
			}
		}
		prev = cur
	}
}

func TestCooldownSuppressesConsecutiveSteps(t *testing.T) {
	h := newHarness(t, 2, 0.8, Config{CooldownTicks: 10})
	var stepTicks []uint64
	last := uint64(0)
	for i := 0; i < 40; i++ {
		h.demands[1] += 1_000_000
		h.tick()
		if s := h.ctrl.Steps(); s > last {
			stepTicks = append(stepTicks, h.ctrl.Ticks())
			last = s
		}
	}
	if len(stepTicks) < 2 {
		t.Fatalf("expected at least two step rounds, got %d", len(stepTicks))
	}
	for i := 1; i < len(stepTicks); i++ {
		if gap := stepTicks[i] - stepTicks[i-1]; gap <= 10 {
			t.Fatalf("steps %d ticks apart, cooldown 10 not honored", gap)
		}
	}
}

func TestDeadbandSuppressesSmallImbalance(t *testing.T) {
	h := newHarness(t, 2, 0.8, Config{DeadbandFrac: 0.4})
	// 55/45 demand split: imbalance (~4% of pool) under the 40% deadband.
	for i := 0; i < 100; i++ {
		h.demands[0] += 55
		h.demands[1] += 45
		h.tick()
	}
	if h.ctrl.Steps() != 0 {
		t.Fatalf("deadband breached: %d steps for a tiny imbalance", h.ctrl.Steps())
	}
}

func TestFloorNeverCrossed(t *testing.T) {
	h := newHarness(t, 3, 0.9, Config{CooldownTicks: 1})
	// Starve kid A completely for a long time.
	for i := 0; i < 500; i++ {
		h.demands[1] += 700
		h.demands[2] += 300
		h.tick()
		h.audit()
	}
	total := int64(0.9 * 1e6)
	floor := int64(DefaultFloorFrac * float64(total))
	if got := h.ctrl.Allocations("cpu")[0]; got < floor {
		t.Fatalf("starved member at %d units, floor %d", got, floor)
	}
}

func TestOscillationDisarmsAndRestoresExactly(t *testing.T) {
	h := newHarness(t, 2, 0.8, Config{
		StepFrac: 0.5, NoCooldown: true, NoDeadband: true,
		OscWindowTicks: 16, OscMaxFlips: 4, DemandWindowTicks: 1,
	})
	savedA := h.kids[0].Attributes()
	savedB := h.kids[1].Attributes()
	// Alternate demand hard every tick: the controller chases, flips
	// direction repeatedly, and must disarm.
	for i := 0; i < 200 && !h.ctrl.Disarmed(); i++ {
		h.demands[i%2] += 1_000_000
		h.tick()
	}
	if !h.ctrl.Disarmed() {
		t.Fatalf("controller never disarmed (flips=%d)", h.ctrl.Flips())
	}
	if h.ctrl.Disarms() != 1 {
		t.Fatalf("disarms = %d, want 1", h.ctrl.Disarms())
	}
	if got := h.kids[0].Attributes(); got != savedA {
		t.Fatalf("kid A restored to %+v, want %+v", got, savedA)
	}
	if got := h.kids[1].Attributes(); got != savedB {
		t.Fatalf("kid B restored to %+v, want %+v", got, savedB)
	}
	if v := h.ctrl.AuditRestore(); v != "" {
		t.Fatalf("restore audit: %s", v)
	}
	// Disarmed controller does nothing forever after.
	steps := h.ctrl.Steps()
	for i := 0; i < 20; i++ {
		h.demands[i%2] += 1_000_000
		h.tick()
	}
	if h.ctrl.Steps() != steps {
		t.Fatal("disarmed controller still stepping")
	}
}

func TestSmoothDemandShiftDoesNotDisarm(t *testing.T) {
	// A diurnal-style swing — demand migrating once from A to B — must
	// not trip the detector under default damping.
	h := newHarness(t, 2, 0.8, Config{})
	for i := 0; i < 300; i++ {
		if i < 150 {
			h.demands[0] += 900
			h.demands[1] += 100
		} else {
			h.demands[0] += 100
			h.demands[1] += 900
		}
		h.tick()
		h.audit()
	}
	if h.ctrl.Disarmed() {
		t.Fatalf("smooth shift disarmed the controller (flips=%d)", h.ctrl.Flips())
	}
	alloc := h.ctrl.Allocations("cpu")
	if alloc[1] <= alloc[0] {
		t.Fatalf("controller did not follow the shift: %v", alloc)
	}
}

type fakeFreezer struct{ on bool }

func (f *fakeFreezer) Engaged() bool { return f.on }

func TestFreezerPreemptsAndCalmResumes(t *testing.T) {
	fz := &fakeFreezer{}
	h := newHarness(t, 2, 0.8, Config{CalmTicks: 5, Freeze: []Freezer{fz}})
	h.demands[1] += 1_000_000
	h.tick()
	stepsBefore := h.ctrl.Steps()
	if stepsBefore == 0 {
		t.Fatal("no step before freeze")
	}
	fz.on = true
	for i := 0; i < 10; i++ {
		h.demands[1] += 1_000_000
		h.tick()
	}
	if h.ctrl.Steps() != stepsBefore {
		t.Fatal("controller stepped while frozen")
	}
	if h.ctrl.Freezes() != 1 {
		t.Fatalf("freezes = %d, want 1", h.ctrl.Freezes())
	}
	if !h.ctrl.Frozen() {
		t.Fatal("Frozen() false while freezer engaged")
	}
	// The watchdog rewrote attributes while it held the hierarchy; the
	// resumed controller must resync, not fight.
	moved := h.kids[0].Attributes()
	moved.Share = 0.1
	moved.Limit = 0
	if err := h.kids[0].SetAttributes(moved); err != nil {
		t.Fatalf("external mutation: %v", err)
	}
	fz.on = false
	for i := 0; i < 5; i++ { // calm hold-off
		h.tick()
		if h.ctrl.Steps() != stepsBefore {
			t.Fatal("controller stepped during calm hold-off")
		}
	}
	h.tick() // resume tick: resyncs
	if h.ctrl.Frozen() {
		t.Fatal("still frozen after calm elapsed")
	}
	if h.ctrl.Resumes() != 1 {
		t.Fatalf("resumes = %d, want 1", h.ctrl.Resumes())
	}
	if got := h.ctrl.Allocations("cpu")[0]; got != int64(0.1*1e6) {
		t.Fatalf("resync missed external mutation: cur=%d", got)
	}
}

func TestMemQuotaPool(t *testing.T) {
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{Share: 1})
	a := rc.MustNew(root, rc.FixedShare, "cacheA", rc.Attributes{MemLimit: 192 << 10})
	b := rc.MustNew(root, rc.FixedShare, "cacheB", rc.Attributes{MemLimit: 64 << 10})
	var missA, missB int64
	ctrl := New(Config{CooldownTicks: 1})
	err := ctrl.AddPool(PoolConfig{Name: "cache", Resource: MemQuota, Members: []Member{
		{a, func() int64 { return missA }},
		{b, func() int64 { return missB }},
	}})
	if err != nil {
		t.Fatalf("AddPool: %v", err)
	}
	for i := 0; i < 200; i++ {
		missB += 100
		ctrl.Tick(sim.Time(i) * 1e6)
		if v := ctrl.AuditConservation(); v != "" {
			t.Fatalf("conservation: %s", v)
		}
	}
	if got := b.Attributes().MemLimit; got <= 64<<10 {
		t.Fatalf("missing cache did not grow: %d bytes", got)
	}
	if total := a.Attributes().MemLimit + b.Attributes().MemLimit; total != 256<<10 {
		t.Fatalf("quota total drifted: %d", total)
	}
}

func TestCPUShareTracksHardLimit(t *testing.T) {
	// A member whose saved attributes carry Limit == Share (a hard
	// reservation) keeps Limit == Share as it is resized.
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{Share: 1})
	a := rc.MustNew(root, rc.FixedShare, "a", rc.Attributes{Share: 0.5, Limit: 0.5})
	b := rc.MustNew(root, rc.FixedShare, "b", rc.Attributes{Share: 0.2, Limit: 0.2})
	var da, db int64
	ctrl := New(Config{CooldownTicks: 1})
	if err := ctrl.AddPool(PoolConfig{Name: "cpu", Resource: CPUShare, Members: []Member{
		{a, func() int64 { return da }},
		{b, func() int64 { return db }},
	}}); err != nil {
		t.Fatalf("AddPool: %v", err)
	}
	for i := 0; i < 100; i++ {
		db += 1000
		ctrl.Tick(sim.Time(i) * 1e6)
	}
	ba := b.Attributes()
	if ba.Share <= 0.2 {
		t.Fatalf("b did not grow: %+v", ba)
	}
	if ba.Limit != ba.Share {
		t.Fatalf("hard reservation lost: Share=%v Limit=%v", ba.Share, ba.Limit)
	}
}

func TestPlantedBugsTripAudits(t *testing.T) {
	t.Run("leak", func(t *testing.T) {
		h := newHarness(t, 2, 0.8, Config{LeakUnits: 1})
		for i := 0; i < 5; i++ {
			h.tick()
		}
		if v := h.ctrl.AuditConservation(); v == "" {
			t.Fatal("LeakUnits did not trip AuditConservation")
		}
	})
	t.Run("no-floor", func(t *testing.T) {
		h := newHarness(t, 2, 0.8, Config{IgnoreFloors: true, CooldownTicks: 1, NoDeadband: true})
		for i := 0; i < 500; i++ {
			h.demands[1] += 1_000_000
			h.tick()
		}
		if v := h.ctrl.AuditFloors(); v == "" {
			t.Fatal("IgnoreFloors never crossed the floor")
		}
	})
	t.Run("no-disarm", func(t *testing.T) {
		h := newHarness(t, 2, 0.8, Config{
			StepFrac: 0.5, NoCooldown: true, NoDeadband: true,
			OscWindowTicks: 16, OscMaxFlips: 4, DemandWindowTicks: 1,
			DisableDisarm: true,
		})
		for i := 0; i < 200; i++ {
			h.demands[i%2] += 1_000_000
			h.tick()
		}
		if h.ctrl.Disarmed() {
			t.Fatal("DisableDisarm ignored")
		}
		if v := h.ctrl.AuditOscillation(); v == "" {
			t.Fatal("armed oscillating controller passed AuditOscillation")
		}
	})
}

func TestJournalByteStable(t *testing.T) {
	run := func() string {
		h := newHarness(t, 2, 0.8, Config{})
		for i := 0; i < 100; i++ {
			h.demands[i%2*1] += int64(900 - i)
			h.demands[1] += 500
			h.tick()
		}
		var b bytes.Buffer
		if err := h.ctrl.WriteJSONL(&b); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("journal not byte-stable across identical runs")
	}
	if !strings.HasPrefix(a, `{"type":"meta",`) {
		t.Fatalf("journal missing meta header: %q", a[:60])
	}
	if !strings.Contains(a, `"action":"arm"`) {
		t.Fatal("journal missing arm records")
	}
	if !strings.Contains(a, `"action":"step"`) {
		t.Fatal("journal missing step records")
	}
	for _, line := range strings.Split(strings.TrimSpace(a), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("malformed journal line: %q", line)
		}
	}
}

func TestNilAndEmptyControllerSafe(t *testing.T) {
	var nilCtrl *Controller
	nilCtrl.Tick(0)
	if nilCtrl.Disarmed() || nilCtrl.Frozen() {
		t.Fatal("nil controller not inert")
	}
	if v := nilCtrl.AuditConservation(); v != "" {
		t.Fatal("nil controller audit non-empty")
	}
	if err := nilCtrl.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	empty := New(Config{})
	for i := 0; i < 10; i++ {
		empty.Tick(sim.Time(i))
	}
	if empty.Ticks() != 10 || empty.Steps() != 0 {
		t.Fatalf("empty controller ticks=%d steps=%d", empty.Ticks(), empty.Steps())
	}
}
