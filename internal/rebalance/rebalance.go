// Package rebalance is the closed-loop adaptive share controller: a
// feedback loop that watches per-container demand on the telemetry
// sampling tick and live-rewrites container attributes via
// SetAttributes to chase hotspots — growing starved-but-backlogged
// subtrees, shrinking idle reservations, clamping runaway tenants back
// toward their demand-proportional slice.
//
// The headline of the design is not effectiveness but *safety*: a
// controller that mutates the live hierarchy is a new failure mode, so
// every mechanism that could let it misbehave is bounded by
// construction:
//
//   - Integer allocation units. Every pool's allocation is tracked in
//     integer units (millionths of the machine for CPU, bytes for
//     memory) and every applied step moves units from one member to
//     another, so the pool total is conserved *exactly* — not to a
//     float epsilon — at every tick. The chaos harness checks this as
//     the rebalance-conservation invariant.
//   - Bounded steps and cooldowns. No member's allocation moves more
//     than StepFrac of the pool per tick, and a member that was just
//     adjusted is left alone for CooldownTicks. A deadband suppresses
//     reactions to imbalances too small to matter.
//   - Hard starvation floors. No decision may push a member below its
//     floor (min of FloorFrac·total and its starting allocation), no
//     matter how idle it looks — checked as rebalance-starvation.
//   - A self-disarming oscillation detector. Applied steps that keep
//     reversing direction are the signature of a fighting loop; the
//     controller counts sign flips per member over a sliding window
//     and, past the threshold, disarms itself permanently: every
//     member's saved static attributes are restored *verbatim* and the
//     controller degrades to "do nothing". Checked as
//     rebalance-oscillation.
//   - Actuator arbitration. The controller and the overload watchdog
//     (alert.Watchdog in the simulation, rcruntime.Watchdog on the
//     live runtime) act on the same hierarchy. The watchdog wins:
//     while any configured Freezer reports Engaged the controller is
//     frozen, and it stays frozen for CalmTicks after the engagement
//     clears before resyncing its view of the hierarchy and resuming.
//
// Every decision — arm, step, freeze, resume, disarm, restore — is
// journaled and exported as a byte-stable JSONL stream (WriteJSONL),
// which the chaos harness folds into its determinism hash.
//
// Wiring: Attach subscribes the controller to a telemetry collector's
// sampling tick (the simulated kernel's clock); rcruntime's
// AttachRebalancer drives the same controller from the runtime
// monitor's tick under the enforcer's lock. Pools are added after
// construction with AddPool, once the governed containers exist.
package rebalance

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
)

// UnitsPerShare is the integer resolution of CPU allocations: one unit
// is a millionth of the machine, so a whole-machine share is 1e6 units
// and float round-trips through rc.Attributes are exact.
const UnitsPerShare = 1_000_000

// Controller defaults; zero Config fields take these.
const (
	// DefaultStepFrac bounds one member's per-tick movement to 5% of
	// the pool.
	DefaultStepFrac = 0.05
	// DefaultFloorFrac sets the starvation floor at 5% of the pool
	// (capped by the member's starting allocation).
	DefaultFloorFrac = 0.05
	// DefaultCooldownTicks is how long an adjusted member is left alone.
	DefaultCooldownTicks = 4
	// DefaultDeadbandFrac suppresses steps while every member is within
	// 10% of the pool of its demand-proportional target.
	DefaultDeadbandFrac = 0.10
	// DefaultOscWindowTicks is the sliding window of the sign-flip
	// oscillation detector.
	DefaultOscWindowTicks = 64
	// DefaultOscMaxFlips is the flip count (per member, within the
	// window) that trips the detector and disarms the controller.
	DefaultOscMaxFlips = 6
	// DefaultCalmTicks is how long the controller stays frozen after
	// the last Freezer disengages before resuming.
	DefaultCalmTicks = 8
	// DefaultDemandWindowTicks is the smoothing window over per-tick
	// demand deltas.
	DefaultDemandWindowTicks = 8
	// maxJournal bounds the decision journal; older runs truncate
	// deterministically and the meta line records the drop count.
	maxJournal = 1 << 16
)

// Resource selects which attribute a pool governs.
type Resource int

const (
	// CPUShare rebalances Attributes.Share in UnitsPerShare units. When
	// a member's saved attributes carried a hard reservation
	// (Limit > 0), the limit tracks the share so the reservation stays
	// hard at its new size.
	CPUShare Resource = iota
	// CPULimit rebalances Attributes.Limit in UnitsPerShare units —
	// the pool for live-runtime tenants governed by window budgets.
	CPULimit
	// MemQuota rebalances Attributes.MemLimit in bytes — the cache
	// quota pool, effective in every kernel mode because the
	// filesystem cache charges memory regardless of the scheduler.
	MemQuota
)

// String names the resource for journals and errors.
func (r Resource) String() string {
	switch r {
	case CPUShare:
		return "cpu-share"
	case CPULimit:
		return "cpu-limit"
	case MemQuota:
		return "mem-quota"
	}
	return fmt.Sprintf("resource(%d)", int(r))
}

// Freezer is the arbitration interface: anything with an Engaged
// predicate may freeze the controller. Both alert.Watchdog and
// rcruntime.Watchdog satisfy it.
type Freezer interface {
	Engaged() bool
}

// Member is one governed container of a pool plus its demand signal: a
// cumulative, monotonically non-decreasing counter read every tick (CPU
// time consumed, cache misses suffered, bytes queued — whatever
// backlog/pressure proxy the caller trusts). The controller reacts to
// window-smoothed deltas, never absolute values.
type Member struct {
	Container *rc.Container
	Demand    func() int64
}

// PoolConfig describes one pool to govern: a set of sibling containers
// whose combined allocation of one resource is fixed. The pool total is
// the sum of the members' allocations at AddPool time.
type PoolConfig struct {
	// Name labels the pool in the journal and in audits.
	Name string
	// Resource selects the governed attribute.
	Resource Resource
	// Members are the governed containers (at least two).
	Members []Member
}

// Config tunes the controller's damping and arbitration; zero values
// take the Default* constants. The mutation fields are harness seams:
// the chaos self-test plants bugs through them to prove the invariant
// battery catches a misbehaving controller (precedent:
// chaos.MutationPhantomCPU).
type Config struct {
	StepFrac          float64
	FloorFrac         float64
	CooldownTicks     int
	DeadbandFrac      float64
	OscWindowTicks    int
	OscMaxFlips       int
	CalmTicks         int
	DemandWindowTicks int

	// Freeze lists the actuators that preempt this controller; while
	// any reports Engaged (and for CalmTicks after), no step is taken.
	Freeze []Freezer

	// NoDeadband disables the deadband entirely (DeadbandFrac 0 would
	// otherwise take the default) — the no-damping ablation knob.
	NoDeadband bool
	// NoCooldown disables per-member cooldowns — the no-damping
	// ablation knob.
	NoCooldown bool

	// DisableDisarm keeps a tripped oscillation detector from
	// disarming — a planted bug for the chaos self-test; the
	// rebalance-oscillation invariant must catch it.
	DisableDisarm bool
	// LeakUnits mints this many units for the first member of every
	// pool each tick without withdrawing them anywhere — a planted
	// conservation bug; rebalance-conservation must catch it.
	LeakUnits int64
	// IgnoreFloors lets steps cross the starvation floor — a planted
	// bug; rebalance-starvation must catch it.
	IgnoreFloors bool
}

func (cfg Config) withDefaults() Config {
	if cfg.StepFrac <= 0 {
		cfg.StepFrac = DefaultStepFrac
	}
	if cfg.FloorFrac <= 0 {
		cfg.FloorFrac = DefaultFloorFrac
	}
	if cfg.CooldownTicks <= 0 {
		cfg.CooldownTicks = DefaultCooldownTicks
	}
	if cfg.DeadbandFrac <= 0 {
		cfg.DeadbandFrac = DefaultDeadbandFrac
	}
	if cfg.OscWindowTicks <= 0 {
		cfg.OscWindowTicks = DefaultOscWindowTicks
	}
	if cfg.OscMaxFlips <= 0 {
		cfg.OscMaxFlips = DefaultOscMaxFlips
	}
	if cfg.CalmTicks <= 0 {
		cfg.CalmTicks = DefaultCalmTicks
	}
	if cfg.DemandWindowTicks <= 0 {
		cfg.DemandWindowTicks = DefaultDemandWindowTicks
	}
	return cfg
}

// member is the controller-side state of one governed container.
type member struct {
	c      *rc.Container
	demand func() int64

	saved      rc.Attributes // attributes at AddPool time, restored verbatim on disarm
	savedUnits int64
	cur        int64 // current allocation in units; mirrors the actual attribute
	floor      int64

	lastDemand int64   // last cumulative reading
	window     []int64 // ring of per-tick demand deltas
	winPos     int
	winSum     int64

	cooldown int
	lastSign int      // sign of the last applied non-zero step
	flipAt   []uint64 // tick numbers of recent direction flips
}

// pool is one governed allocation set.
type pool struct {
	name     string
	resource Resource
	members  []*member
	total    int64
	step     int64
}

// record is one journaled decision.
type record struct {
	at     sim.Time
	pool   string
	member string
	action string
	delta  int64
	alloc  int64
	detail string
}

// Controller is the closed-loop share controller. It is driven
// entirely by Tick — it has no goroutine of its own — and is
// single-threaded by construction: the simulation drives it on the
// sampling tick, the live runtime under the enforcer's lock.
type Controller struct {
	cfg   Config
	pools []*pool

	frozen bool
	calm   int

	disarmed bool

	ticks      uint64
	steps      uint64
	flips      uint64
	maxFlips   int
	freezes    uint64
	resumes    uint64
	disarms    uint64
	actErrors  uint64
	floorBusts uint64 // floor crossings applied (only with IgnoreFloors)
	truncated  uint64

	journal []record
}

// New returns a detached controller with no pools; wire its Tick to a
// clock (telemetry sampling tick via Attach, or the runtime monitor via
// rcruntime.AttachRebalancer) and add pools with AddPool once the
// governed containers exist.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Attach builds a controller and subscribes it to the collector's
// sampling tick. Attach it *after* the alert monitor (alert.Attach) so
// a watchdog listed in cfg.Freeze has updated its state by the time the
// controller's tick runs — sample hooks run in registration order.
func Attach(tel *telemetry.Collector, cfg Config) (*Controller, error) {
	if tel == nil {
		return nil, fmt.Errorf("rebalance: nil telemetry collector")
	}
	r := New(cfg)
	tel.AddSampleHook(r.Tick)
	return r, nil
}

// AddPool starts governing a pool: the members' current allocations are
// snapshotted as the saved static attributes (restored verbatim on
// disarm) and their sum becomes the conserved pool total.
func (r *Controller) AddPool(pc PoolConfig) error {
	if pc.Name == "" {
		return fmt.Errorf("rebalance: pool needs a name")
	}
	if len(pc.Members) < 2 {
		return fmt.Errorf("rebalance: pool %q needs at least two members, got %d", pc.Name, len(pc.Members))
	}
	for _, p := range r.pools {
		if p.name == pc.Name {
			return fmt.Errorf("rebalance: duplicate pool %q", pc.Name)
		}
	}
	p := &pool{name: pc.Name, resource: pc.Resource}
	seen := make(map[*rc.Container]bool, len(pc.Members))
	for i, mc := range pc.Members {
		if mc.Container == nil {
			return fmt.Errorf("rebalance: pool %q member %d has no container", pc.Name, i)
		}
		if mc.Container.Destroyed() {
			return fmt.Errorf("rebalance: pool %q member %q is destroyed", pc.Name, mc.Container.Name())
		}
		if seen[mc.Container] {
			return fmt.Errorf("rebalance: pool %q lists %q twice", pc.Name, mc.Container.Name())
		}
		seen[mc.Container] = true
		if mc.Demand == nil {
			return fmt.Errorf("rebalance: pool %q member %q has no demand signal", pc.Name, mc.Container.Name())
		}
		attrs := mc.Container.Attributes()
		m := &member{
			c:          mc.Container,
			demand:     mc.Demand,
			saved:      attrs,
			savedUnits: unitsOf(pc.Resource, attrs),
			window:     make([]int64, r.cfg.DemandWindowTicks),
			lastDemand: mc.Demand(),
		}
		m.cur = m.savedUnits
		p.members = append(p.members, m)
		p.total += m.savedUnits
	}
	if p.total <= 0 {
		return fmt.Errorf("rebalance: pool %q has a zero total — nothing to govern", pc.Name)
	}
	floor := int64(r.cfg.FloorFrac * float64(p.total))
	if floor < 1 {
		floor = 1
	}
	for _, m := range p.members {
		m.floor = floor
		if m.savedUnits < m.floor {
			// The floor never exceeds the starting allocation: the
			// controller must not be obliged to *grow* a member just to
			// meet its own floor, and a disarm restore must always be
			// floor-legal.
			m.floor = m.savedUnits
		}
	}
	p.step = int64(r.cfg.StepFrac * float64(p.total))
	if p.step < 1 {
		p.step = 1
	}
	r.pools = append(r.pools, p)
	for _, m := range p.members {
		r.note(record{pool: p.name, member: m.c.Name(), action: "arm",
			alloc: m.cur, detail: fmt.Sprintf("%s total=%d floor=%d step=%d", p.resource, p.total, m.floor, p.step)})
	}
	return nil
}

// Tick runs one control round at virtual time `at`: refresh demand
// windows, arbitrate with the freezers, compute and apply bounded
// steps, and run the oscillation detector. It is the only entry point
// that mutates container attributes.
func (r *Controller) Tick(at sim.Time) {
	if r == nil || r.disarmed {
		return
	}
	r.ticks++

	// Demand windows advance every tick — frozen or not — so a resume
	// reacts to current pressure, not a stale pre-freeze snapshot.
	for _, p := range r.pools {
		for _, m := range p.members {
			cur := m.demand()
			d := cur - m.lastDemand
			m.lastDemand = cur
			if d < 0 {
				d = 0
			}
			m.winSum += d - m.window[m.winPos]
			m.window[m.winPos] = d
			m.winPos = (m.winPos + 1) % len(m.window)
			if m.cooldown > 0 {
				m.cooldown--
			}
		}
	}

	// Arbitration: the watchdog owns the hierarchy while engaged, and
	// for CalmTicks after — its emergency clamps must not be fought.
	if r.anyEngaged() {
		if !r.frozen {
			r.frozen = true
			r.freezes++
			r.note(record{at: at, action: "freeze", detail: "actuator engaged; rebalancing preempted"})
		}
		r.calm = r.cfg.CalmTicks
		return
	}
	if r.frozen {
		if r.calm > 0 {
			r.calm--
			return
		}
		r.frozen = false
		r.resumes++
		// Resync: the preempting actuator may have rewritten attributes
		// (clamp, restore) under the controller's feet. The resume tick
		// only resyncs; control restarts on the next tick.
		for _, p := range r.pools {
			for _, m := range p.members {
				if !m.c.Destroyed() {
					m.cur = unitsOf(p.resource, m.c.Attributes())
				}
			}
		}
		r.note(record{at: at, action: "resume", detail: "calm elapsed; allocations resynced"})
		return
	}

	tripped := false
	for _, p := range r.pools {
		if r.stepPool(at, p) {
			tripped = true
		}
	}
	if tripped && !r.cfg.DisableDisarm {
		r.disarm(at)
	}
}

// stepPool runs one pool's control round and reports whether the
// oscillation detector tripped.
func (r *Controller) stepPool(at sim.Time, p *pool) (tripped bool) {
	if r.cfg.LeakUnits != 0 {
		// Planted conservation bug (see Config.LeakUnits).
		m := p.members[0]
		if r.applyUnits(at, p, m, r.cfg.LeakUnits, "leak") {
			r.steps++
		}
	}

	var sumD int64
	for _, m := range p.members {
		sumD += m.winSum
	}
	if sumD <= 0 {
		return false
	}

	// Demand-proportional targets, floor-clamped. Targets are
	// directions, not promises: conservation is enforced at the
	// transfer step below, so they need not sum exactly to the total.
	want := make([]int64, len(p.members))
	deadband := int64(r.cfg.DeadbandFrac * float64(p.total))
	if r.cfg.NoDeadband {
		deadband = 0
	}
	worst := int64(0)
	for i, m := range p.members {
		target := int64(float64(p.total) * float64(m.winSum) / float64(sumD))
		if target < m.floor && !r.cfg.IgnoreFloors {
			target = m.floor
		}
		d := target - m.cur
		if d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
		if d > p.step {
			d = p.step
		} else if d < -p.step {
			d = -p.step
		}
		if m.cooldown > 0 && !r.cfg.NoCooldown {
			d = 0
		}
		if d < 0 && m.cur+d < m.floor && !r.cfg.IgnoreFloors {
			d = m.floor - m.cur
			if d > 0 {
				d = 0
			}
		}
		want[i] = d
	}
	if worst <= deadband {
		return false
	}

	// Transfer matching: shrinkers offer units, growers request them,
	// and only min(offered, requested) moves — the pool total is
	// conserved exactly by construction.
	var offered, requested int64
	for _, d := range want {
		if d < 0 {
			offered += -d
		} else {
			requested += d
		}
	}
	grant := offered
	if requested < grant {
		grant = requested
	}
	if grant <= 0 {
		return false
	}
	scaleSide(want, -1, offered, grant)
	scaleSide(want, +1, requested, grant)

	// Apply shrinkers first so the sibling share-sum never exceeds the
	// pool total mid-transfer.
	for pass := 0; pass < 2; pass++ {
		for i, m := range p.members {
			d := want[i]
			if d == 0 || (pass == 0) != (d < 0) {
				continue
			}
			if !r.applyUnits(at, p, m, d, "step") {
				continue
			}
			r.steps++
			if !r.cfg.NoCooldown {
				// +1 because the demand phase decrements before the
				// next round's gating: the member is left alone for
				// exactly CooldownTicks full ticks.
				m.cooldown = r.cfg.CooldownTicks + 1
			}
			if s := sign(d); s != 0 {
				if m.lastSign != 0 && s != m.lastSign {
					r.flips++
					m.flipAt = append(m.flipAt, r.ticks)
				}
				m.lastSign = s
			}
			// Slide the flip window and test the detector.
			keep := m.flipAt[:0]
			for _, t := range m.flipAt {
				if r.ticks-t < uint64(r.cfg.OscWindowTicks) {
					keep = append(keep, t)
				}
			}
			m.flipAt = keep
			if len(m.flipAt) > r.maxFlips {
				r.maxFlips = len(m.flipAt)
			}
			if len(m.flipAt) >= r.cfg.OscMaxFlips {
				tripped = true
			}
		}
	}
	return tripped
}

// scaleSide rescales the positive or negative side of want (selected by
// side) from its current sum down to grant, using integer
// largest-remainder apportionment in member order so the result is
// deterministic and sums exactly to grant.
func scaleSide(want []int64, side int, sum, grant int64) {
	if sum == grant || sum == 0 {
		return
	}
	assigned := int64(0)
	lastIdx := -1
	for i, d := range want {
		if d == 0 || sign(d) != side {
			continue
		}
		mag := d
		if mag < 0 {
			mag = -mag
		}
		scaled := mag * grant / sum
		want[i] = scaled * int64(side)
		assigned += scaled
		lastIdx = i
	}
	// Hand the integer-division remainder to the last participant: a
	// deterministic choice that keeps both sides summing to grant.
	if rem := grant - assigned; rem > 0 && lastIdx >= 0 {
		want[lastIdx] += rem * int64(side)
	}
}

// applyUnits actuates a single member's allocation change through
// SetAttributes, keeping cur in lockstep with the actual attribute. It
// reports whether the attribute write took.
func (r *Controller) applyUnits(at sim.Time, p *pool, m *member, delta int64, action string) bool {
	if m.c.Destroyed() {
		return false
	}
	next := m.cur + delta
	if next < 0 {
		next = 0
	}
	attrs := m.c.Attributes()
	setUnits(p.resource, &attrs, next)
	if err := m.c.SetAttributes(attrs); err != nil {
		r.actErrors++
		r.note(record{at: at, pool: p.name, member: m.c.Name(), action: "error",
			delta: delta, alloc: m.cur, detail: err.Error()})
		return false
	}
	if next < m.floor {
		r.floorBusts++
	}
	m.cur = next
	r.note(record{at: at, pool: p.name, member: m.c.Name(), action: action,
		delta: delta, alloc: m.cur, detail: ""})
	return true
}

// disarm trips the controller permanently: every member of every pool
// is restored to its saved static attributes *verbatim*, and the
// controller degrades to "do nothing".
func (r *Controller) disarm(at sim.Time) {
	r.disarmed = true
	r.disarms++
	r.note(record{at: at, action: "disarm",
		detail: fmt.Sprintf("oscillation detected: %d flip(s) within %d tick(s); restoring static shares", r.cfg.OscMaxFlips, r.cfg.OscWindowTicks)})
	for _, p := range r.pools {
		// Shrink-first restore: members above their saved allocation go
		// back down before members below come back up, so the sibling
		// share-sum check holds at every intermediate state. The side is
		// computed up front: applying pass 0 moves m.cur to savedUnits,
		// which must not re-qualify the member for pass 1.
		shrink := make([]bool, len(p.members))
		for i, m := range p.members {
			shrink[i] = m.cur > m.savedUnits
		}
		for pass := 0; pass < 2; pass++ {
			for i, m := range p.members {
				if (pass == 0) != shrink[i] {
					continue
				}
				if m.c.Destroyed() {
					continue
				}
				if err := m.c.SetAttributes(m.saved); err != nil {
					r.actErrors++
					r.note(record{at: at, pool: p.name, member: m.c.Name(), action: "error",
						alloc: m.cur, detail: "restore: " + err.Error()})
					continue
				}
				m.cur = m.savedUnits
				r.note(record{at: at, pool: p.name, member: m.c.Name(), action: "restore",
					alloc: m.cur, detail: ""})
			}
		}
	}
}

func (r *Controller) anyEngaged() bool {
	for _, f := range r.cfg.Freeze {
		if f != nil && f.Engaged() {
			return true
		}
	}
	return false
}

func (r *Controller) note(rec record) {
	if len(r.journal) >= maxJournal {
		r.truncated++
		return
	}
	r.journal = append(r.journal, rec)
}

func sign(d int64) int {
	switch {
	case d > 0:
		return 1
	case d < 0:
		return -1
	}
	return 0
}

// unitsOf reads the governed attribute as integer units.
func unitsOf(res Resource, a rc.Attributes) int64 {
	switch res {
	case CPUShare:
		return int64(a.Share*UnitsPerShare + 0.5)
	case CPULimit:
		return int64(a.Limit*UnitsPerShare + 0.5)
	default:
		return a.MemLimit
	}
}

// setUnits writes the governed attribute from integer units.
func setUnits(res Resource, a *rc.Attributes, u int64) {
	switch res {
	case CPUShare:
		a.Share = float64(u) / UnitsPerShare
		if a.Limit > 0 {
			// A hard reservation stays hard at its new size.
			a.Limit = a.Share
		}
	case CPULimit:
		a.Limit = float64(u) / UnitsPerShare
	default:
		a.MemLimit = u
	}
}

// Disarmed reports whether the oscillation detector has tripped and the
// controller has restored the saved static attributes.
func (r *Controller) Disarmed() bool { return r != nil && r.disarmed }

// Frozen reports whether an arbitrating actuator currently preempts the
// controller (including the post-engagement calm hold-off).
func (r *Controller) Frozen() bool { return r != nil && r.frozen }

// Ticks returns how many control rounds have run.
func (r *Controller) Ticks() uint64 { return r.ticks }

// Steps returns how many member adjustments have been applied.
func (r *Controller) Steps() uint64 { return r.steps }

// Flips returns how many applied-step direction reversals were observed.
func (r *Controller) Flips() uint64 { return r.flips }

// Freezes returns how many times the controller was preempted.
func (r *Controller) Freezes() uint64 { return r.freezes }

// Resumes returns how many times the controller resumed after a freeze.
func (r *Controller) Resumes() uint64 { return r.resumes }

// Disarms returns how many times the controller disarmed (0 or 1).
func (r *Controller) Disarms() uint64 { return r.disarms }

// ActuationErrors returns how many SetAttributes calls failed.
func (r *Controller) ActuationErrors() uint64 { return r.actErrors }

// Allocations returns the named pool's current allocations in units, in
// member order, or nil if the pool does not exist.
func (r *Controller) Allocations(pool string) []int64 {
	for _, p := range r.pools {
		if p.name == pool {
			out := make([]int64, len(p.members))
			for i, m := range p.members {
				out[i] = m.cur
			}
			return out
		}
	}
	return nil
}

// AuditConservation audits the actual container attributes against the
// conserved pool totals: for every pool, the members' governed
// attributes must sum exactly to the pool total. It returns "" when the
// books balance, or a description of the first imbalance. While the
// controller is frozen the audit abstains — the preempting actuator
// (the watchdog's clamp) legitimately holds the hierarchy elsewhere.
func (r *Controller) AuditConservation() string {
	// anyEngaged covers the post-disarm case too: a disarmed controller
	// no longer ticks, so frozen goes stale, but a watchdog clamp still
	// legitimately moves attributes out from under the saved shape.
	if r == nil || r.frozen || r.anyEngaged() {
		return ""
	}
	for _, p := range r.pools {
		var sum int64
		for _, m := range p.members {
			if m.c.Destroyed() {
				return ""
			}
			sum += unitsOf(p.resource, m.c.Attributes())
		}
		if sum != p.total {
			return fmt.Sprintf("pool %q allocations sum to %d unit(s), want exactly %d", p.name, sum, p.total)
		}
	}
	return ""
}

// AuditFloors audits the actual container attributes against the
// starvation floors: no member may sit below its floor. Returns "" when
// clean; abstains while frozen (see AuditConservation).
func (r *Controller) AuditFloors() string {
	if r == nil || r.frozen || r.anyEngaged() {
		return ""
	}
	for _, p := range r.pools {
		for _, m := range p.members {
			if m.c.Destroyed() {
				continue
			}
			if got := unitsOf(p.resource, m.c.Attributes()); got < m.floor {
				return fmt.Sprintf("pool %q member %q at %d unit(s), below its starvation floor %d", p.name, m.c.Name(), got, m.floor)
			}
		}
	}
	return ""
}

// AuditOscillation audits the disarm protocol: a controller whose flip
// count reached the threshold must have disarmed. Returns "" when
// consistent.
func (r *Controller) AuditOscillation() string {
	if r == nil || r.disarmed {
		return ""
	}
	if r.maxFlips >= r.cfg.OscMaxFlips {
		return fmt.Sprintf("controller still armed with %d direction flip(s) in the window (threshold %d)", r.maxFlips, r.cfg.OscMaxFlips)
	}
	return ""
}

// AuditRestore audits a disarmed controller's restore: every member's
// actual attributes must equal the saved static attributes verbatim.
// Returns "" when exact, or while the controller is still armed.
func (r *Controller) AuditRestore() string {
	if r == nil || !r.disarmed || r.anyEngaged() {
		return ""
	}
	for _, p := range r.pools {
		for _, m := range p.members {
			if m.c.Destroyed() {
				continue
			}
			if got := m.c.Attributes(); got != m.saved {
				return fmt.Sprintf("pool %q member %q restored to %+v, want saved %+v", p.name, m.c.Name(), got, m.saved)
			}
		}
	}
	return ""
}

// jstr renders a JSON string with deterministic escaping.
func jstr(s string) string { return strconv.Quote(s) }

// WriteJSONL writes the decision journal as one JSON object per line: a
// meta header (pools, counters) followed by every decision in emission
// order. Encoding is hand-rolled so field order and number formatting
// are byte-stable, matching the telemetry and alert exporters; the
// chaos harness folds the stream into its determinism hash.
func (r *Controller) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	names := make([]string, len(r.pools))
	for i, p := range r.pools {
		names[i] = jstr(p.name)
	}
	fmt.Fprintf(&b, `{"type":"meta","pools":[%s],"ticks":%d,"steps":%d,"flips":%d,"freezes":%d,"resumes":%d,"disarms":%d,"errors":%d,"truncated":%d}`+"\n",
		strings.Join(names, ","), r.ticks, r.steps, r.flips, r.freezes, r.resumes, r.disarms, r.actErrors, r.truncated)
	for _, rec := range r.journal {
		fmt.Fprintf(&b, `{"type":"rebalance","at_ns":%d,"pool":%s,"member":%s,"action":%s,"delta":%d,"alloc":%d,"detail":%s}`+"\n",
			int64(rec.at), jstr(rec.pool), jstr(rec.member), jstr(rec.action), rec.delta, rec.alloc, jstr(rec.detail))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
