// Package rc implements resource containers, the paper's primary
// contribution (Banga, Druschel & Mogul, OSDI 1999, §4).
//
// A resource container is an explicit resource principal, decoupled from
// the protection domain (process). It logically contains all system
// resources used to carry out one independent activity — e.g. one HTTP
// connection — no matter which threads or processes do the work, and no
// matter whether the work happens in user mode or inside the kernel.
//
// Containers form a hierarchy: a child's resource consumption is
// constrained by its parent's scheduling parameters (§4.5). Following the
// paper's prototype, containers come in two classes: fixed-share
// containers, which carry a CPU guarantee/limit and may have children, and
// time-share containers, which time-share the CPU granted to their parent
// and must be leaves. Threads bind only to leaf containers.
//
// The package is deliberately independent of any particular scheduler or
// kernel: it provides the principal abstraction (hierarchy, attributes,
// usage accounting, reference-counted lifecycle). internal/sched consumes
// containers as scheduling principals and internal/kernel exposes the
// syscall-level operations of §4.6.
package rc

import (
	"errors"
	"fmt"
	"sync/atomic"

	"rescon/internal/sim"
)

// Sentinel errors returned by container operations.
var (
	// ErrDestroyed is returned when operating on a container whose last
	// reference has been released.
	ErrDestroyed = errors.New("rc: container destroyed")
	// ErrCycle is returned by SetParent when the new parent is the
	// container itself or one of its descendants.
	ErrCycle = errors.New("rc: parent change would create a cycle")
	// ErrTimeShareParent is returned when attempting to give children to a
	// time-share container (prototype restriction, §4.5).
	ErrTimeShareParent = errors.New("rc: time-share containers cannot have children")
	// ErrShareOverflow is returned when the fixed shares of a container's
	// children would sum to more than 1.0 of the parent.
	ErrShareOverflow = errors.New("rc: children's fixed shares exceed parent capacity")
	// ErrBadAttributes is returned for out-of-range attribute values.
	ErrBadAttributes = errors.New("rc: invalid attributes")
	// ErrNotLeaf is returned when binding a thread to a non-leaf container.
	ErrNotLeaf = errors.New("rc: threads may bind only to leaf containers")
	// ErrMemLimit is returned when a memory charge would exceed a limit
	// anywhere on the ancestor chain.
	ErrMemLimit = errors.New("rc: memory limit exceeded")
)

// Class distinguishes the two container kinds of the prototype (§5.1).
type Class int

const (
	// TimeShare containers time-share the CPU granted to their parent with
	// their siblings, weighted by numeric priority. They must be leaves.
	TimeShare Class = iota
	// FixedShare containers obtain a fixed-share guarantee (and optionally
	// a hard limit) from the scheduler and may have children.
	FixedShare
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case TimeShare:
		return "time-share"
	case FixedShare:
		return "fixed-share"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Attributes carry a container's scheduling parameters, resource limits
// and network QoS values (§4.1, §4.6).
type Attributes struct {
	// Priority is the numeric scheduling priority for time-shared
	// containers. Higher runs first; priority 0 means "only when idle"
	// (used for the SYN-flood defense of §5.7).
	Priority int
	// Share is the guaranteed CPU fraction (of the parent's allocation)
	// for fixed-share containers; 0 means no guarantee.
	Share float64
	// Limit is a hard cap on CPU consumption as a fraction of the parent's
	// allocation; 0 means unlimited. The cap includes all descendants
	// (§4.5: a parent's parameters constrain the whole subtree).
	Limit float64
	// MemLimit caps the bytes of memory charged to the subtree; 0 means
	// unlimited.
	MemLimit int64
	// QoSWeight is the network QoS weight used by the kernel network
	// subsystem when ordering protocol processing; 0 means default (1.0).
	QoSWeight float64
}

func (a Attributes) validate() error {
	if a.Priority < 0 {
		return fmt.Errorf("%w: negative priority %d", ErrBadAttributes, a.Priority)
	}
	if a.Share < 0 || a.Share > 1 {
		return fmt.Errorf("%w: share %v outside [0,1]", ErrBadAttributes, a.Share)
	}
	if a.Limit < 0 || a.Limit > 1 {
		return fmt.Errorf("%w: limit %v outside [0,1]", ErrBadAttributes, a.Limit)
	}
	if a.Limit > 0 && a.Share > a.Limit {
		return fmt.Errorf("%w: share %v exceeds limit %v", ErrBadAttributes, a.Share, a.Limit)
	}
	if a.MemLimit < 0 {
		return fmt.Errorf("%w: negative memory limit", ErrBadAttributes)
	}
	if a.QoSWeight < 0 {
		return fmt.Errorf("%w: negative QoS weight", ErrBadAttributes)
	}
	return nil
}

// Usage is the resource consumption charged to a container, including all
// of its descendants (§4.1: the kernel carefully accounts for the system
// resources consumed by a resource container).
type Usage struct {
	// CPUUser and CPUKernel are the accumulated user- and kernel-mode CPU
	// time. Their sum is the container's total CPU consumption.
	CPUUser   sim.Duration
	CPUKernel sim.Duration
	// PacketsIn/Out and BytesIn/Out count network traffic processed on
	// behalf of the container.
	PacketsIn  uint64
	PacketsOut uint64
	BytesIn    uint64
	BytesOut   uint64
	// Memory is the bytes of memory currently charged.
	Memory int64
	// PacketsDropped counts packets discarded while charged to this
	// container (e.g. SYN queue overflow).
	PacketsDropped uint64
	// DiskReads, DiskBytes and DiskTime account disk activity performed
	// on behalf of the container (§4.4 disk bandwidth).
	DiskReads uint64
	DiskBytes uint64
	DiskTime  sim.Duration
}

// CPU returns total (user + kernel) CPU time.
func (u Usage) CPU() sim.Duration { return u.CPUUser + u.CPUKernel }

// CPUKind labels which execution mode a CPU charge happened in.
type CPUKind int

const (
	// UserCPU is time spent in user mode.
	UserCPU CPUKind = iota
	// KernelCPU is time spent in kernel mode on behalf of the container
	// (protocol processing, syscall work).
	KernelCPU
)

// Container is one resource principal. Containers are not safe for
// concurrent use; like the rest of the simulation they live on a single
// goroutine. (A kernel implementation would protect them with the
// scheduler lock.)
type Container struct {
	id        uint64
	name      string
	class     Class
	parent    *Container
	children  []*Container
	attrs     Attributes
	usage     Usage
	refs      int
	destroyed bool

	// SchedState is an opaque per-scheduler slot. The scheduler attaches
	// its bookkeeping (decayed usage, budget) here so that the rc package
	// need not know about any particular scheduling policy.
	SchedState any

	// chain caches the ancestor path (the container itself first, then
	// each parent up to the root). It is rebuilt lazily and invalidated —
	// for the whole subtree — whenever the topology changes, so the
	// accounting hot path (ChargeCPU and friends, called once per CPU
	// slice and per packet) walks a slice instead of chasing parent
	// pointers.
	chain []*Container

	// epoch counts changes to anything an ancestor-derived value could
	// depend on: this container's (or any ancestor's) attributes, parent
	// link, or destruction. Schedulers key their per-container caches
	// (effective cap budgets, share products) on it.
	epoch uint64
}

// Epoch returns the container's cache-invalidation epoch. It advances
// whenever the container's attributes or any link on its ancestor path
// change; cached values derived from the ancestor chain are valid only
// while the epoch is unchanged.
func (c *Container) Epoch() uint64 { return c.epoch }

// bumpSubtree invalidates ancestor-derived caches for c and every
// descendant. Called on topology and attribute changes, which are
// control-plane operations — the cost is a subtree walk, paid only when
// the hierarchy actually changes.
func (c *Container) bumpSubtree() {
	c.chain = nil
	c.epoch++
	for _, kid := range c.children {
		kid.bumpSubtree()
	}
}

// Ancestors returns the container's ancestor path — the container itself
// first, then each parent up to the root — as a cached slice. The caller
// must not modify or retain it past the next topology change.
func (c *Container) Ancestors() []*Container {
	if c.chain == nil {
		chain := make([]*Container, 0, c.Depth()+1)
		for p := c; p != nil; p = p.parent {
			chain = append(chain, p)
		}
		c.chain = chain
	}
	return c.chain
}

// New creates a container of the given class under parent (nil for a
// top-level container), with one reference held by the caller. It fails if
// the parent cannot have children or the attributes are invalid.
func New(parent *Container, class Class, name string, attrs Attributes) (*Container, error) {
	if err := attrs.validate(); err != nil {
		return nil, err
	}
	c := &Container{name: name, class: class, attrs: attrs, refs: 1}
	c.id = nextID()
	if parent != nil {
		if err := c.SetParent(parent); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and examples where the
// arguments are constants.
func MustNew(parent *Container, class Class, name string, attrs Attributes) *Container {
	c, err := New(parent, class, name, attrs)
	if err != nil {
		panic(err)
	}
	return c
}

// idCounter is the only process-global state in the simulation: container
// IDs must be unique across every container ever created, including when
// the experiment harness runs many independent simulations concurrently,
// so it is advanced atomically. IDs are identity, never ordering — no
// scheduling or rendering decision depends on their numeric values — so
// cross-simulation interleaving does not perturb results.
var idCounter atomic.Uint64

func nextID() uint64 { return idCounter.Add(1) }

// ID returns the container's unique identifier.
func (c *Container) ID() uint64 { return c.id }

// Name returns the diagnostic name given at creation.
func (c *Container) Name() string { return c.name }

// Class returns the container's class.
func (c *Container) Class() Class { return c.class }

// Parent returns the parent container, or nil for a top-level container.
func (c *Container) Parent() *Container { return c.parent }

// Children returns the container's direct children. The returned slice is
// shared; callers must not modify it.
func (c *Container) Children() []*Container { return c.children }

// IsLeaf reports whether the container currently has no children.
func (c *Container) IsLeaf() bool { return len(c.children) == 0 }

// Destroyed reports whether the container has been destroyed.
func (c *Container) Destroyed() bool { return c.destroyed }

// String identifies the container for diagnostics.
func (c *Container) String() string {
	return fmt.Sprintf("container(%d %q %s)", c.id, c.name, c.class)
}

// SetParent moves the container under parent, or detaches it when parent
// is nil ("no parent", §4.6). It rejects cycles, destroyed endpoints,
// time-share parents, and share overflow at the new parent.
func (c *Container) SetParent(parent *Container) error {
	if c.destroyed {
		return ErrDestroyed
	}
	if parent == c.parent {
		return nil
	}
	if parent != nil {
		if parent.destroyed {
			return fmt.Errorf("new parent: %w", ErrDestroyed)
		}
		if parent.class != FixedShare {
			return ErrTimeShareParent
		}
		for p := parent; p != nil; p = p.parent {
			if p == c {
				return ErrCycle
			}
		}
		if c.attrs.Share > 0 {
			total := c.attrs.Share
			for _, sib := range parent.children {
				total += sib.attrs.Share
			}
			if total > 1+1e-9 {
				return ErrShareOverflow
			}
		}
	}
	c.detach()
	c.parent = parent
	if parent != nil {
		parent.children = append(parent.children, c)
	}
	c.bumpSubtree()
	return nil
}

func (c *Container) detach() {
	if c.parent == nil {
		return
	}
	kids := c.parent.children
	for i, k := range kids {
		if k == c {
			c.parent.children = append(kids[:i], kids[i+1:]...)
			break
		}
	}
	c.parent = nil
}

// Retain adds a reference — the analogue of duplicating the container's
// descriptor or passing it to another process (§4.6: the sending process
// retains access). It fails on a destroyed container.
func (c *Container) Retain() error {
	if c.destroyed {
		return ErrDestroyed
	}
	c.refs++
	return nil
}

// Refs returns the current reference count.
func (c *Container) Refs() int { return c.refs }

// Release drops one reference. When the last reference goes away the
// container is destroyed: it is detached from its parent and its children
// are set to "no parent" (§4.6). Releasing a destroyed container is an
// error.
func (c *Container) Release() error {
	if c.destroyed {
		return ErrDestroyed
	}
	c.refs--
	if c.refs > 0 {
		return nil
	}
	c.destroyed = true
	c.detach()
	c.bumpSubtree()
	// Children of a destroyed parent get "no parent".
	kids := c.children
	c.children = nil
	for _, kid := range kids {
		kid.parent = nil
		kid.bumpSubtree()
	}
	return nil
}

// Attributes returns the container's current attributes.
func (c *Container) Attributes() Attributes { return c.attrs }

// SetAttributes replaces the container's attributes after validation,
// including the sibling share-sum check when the container is attached.
func (c *Container) SetAttributes(attrs Attributes) error {
	if c.destroyed {
		return ErrDestroyed
	}
	if err := attrs.validate(); err != nil {
		return err
	}
	if c.parent != nil && attrs.Share > 0 {
		total := attrs.Share
		for _, sib := range c.parent.children {
			if sib != c {
				total += sib.attrs.Share
			}
		}
		if total > 1+1e-9 {
			return ErrShareOverflow
		}
	}
	c.attrs = attrs
	c.bumpSubtree()
	return nil
}

// Usage returns the resource consumption charged to the container and its
// descendants so far (§4.6 "container usage information").
func (c *Container) Usage() Usage { return c.usage }

// ChargeCPU adds CPU time of the given kind to the container and all of
// its ancestors. Charging a destroyed container is a silent no-op — in the
// kernel, in-flight work can complete after the last descriptor closes.
// The walk uses the precomputed ancestor slice: ChargeCPU runs once per
// scheduled CPU slice, so it must not re-derive the path each time.
func (c *Container) ChargeCPU(kind CPUKind, d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("rc: negative CPU charge %v", d))
	}
	if kind == UserCPU {
		for _, p := range c.Ancestors() {
			p.usage.CPUUser += d
		}
		return
	}
	for _, p := range c.Ancestors() {
		p.usage.CPUKernel += d
	}
}

// ChargePacketIn accounts one received packet of the given size.
func (c *Container) ChargePacketIn(bytes int) {
	for _, p := range c.Ancestors() {
		p.usage.PacketsIn++
		p.usage.BytesIn += uint64(bytes)
	}
}

// ChargePacketOut accounts one transmitted packet of the given size.
func (c *Container) ChargePacketOut(bytes int) {
	for _, p := range c.Ancestors() {
		p.usage.PacketsOut++
		p.usage.BytesOut += uint64(bytes)
	}
}

// ChargeDrop accounts one dropped packet.
func (c *Container) ChargeDrop() {
	for _, p := range c.Ancestors() {
		p.usage.PacketsDropped++
	}
}

// ChargeDiskRead accounts one disk read of the given size and device
// occupancy on behalf of the container (§4.4).
func (c *Container) ChargeDiskRead(bytes int, busy sim.Duration) {
	for _, p := range c.Ancestors() {
		p.usage.DiskReads++
		p.usage.DiskBytes += uint64(bytes)
		p.usage.DiskTime += busy
	}
}

// ChargeMemory attempts to charge bytes of memory (negative to release).
// The charge fails without effect if it would push any container on the
// ancestor chain past its MemLimit.
func (c *Container) ChargeMemory(bytes int64) error {
	if bytes > 0 {
		for p := c; p != nil; p = p.parent {
			if p.attrs.MemLimit > 0 && p.usage.Memory+bytes > p.attrs.MemLimit {
				return fmt.Errorf("%w: %s at %d/%d bytes", ErrMemLimit, p, p.usage.Memory, p.attrs.MemLimit)
			}
		}
	}
	for p := c; p != nil; p = p.parent {
		p.usage.Memory += bytes
		if p.usage.Memory < 0 {
			p.usage.Memory = 0
		}
	}
	return nil
}

// Root returns the top of the container's hierarchy (itself if detached).
func (c *Container) Root() *Container {
	p := c
	for p.parent != nil {
		p = p.parent
	}
	return p
}

// Depth returns the number of ancestors above the container.
func (c *Container) Depth() int {
	d := 0
	for p := c.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Walk visits the container and every descendant in depth-first order.
func (c *Container) Walk(fn func(*Container)) {
	fn(c)
	for _, kid := range c.children {
		kid.Walk(fn)
	}
}

// EffectivePriority returns the scheduling priority, defaulting to 0.
func (c *Container) EffectivePriority() int { return c.attrs.Priority }

// QoSWeight returns the network QoS weight, defaulting to 1.0.
func (c *Container) QoSWeight() float64 {
	if c.attrs.QoSWeight <= 0 {
		return 1.0
	}
	return c.attrs.QoSWeight
}
