package rc

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes the container hierarchy rooted at c as an indented tree
// with attributes and usage — the administrator's view the paper implies
// for accounting and capacity planning (§4.8: "sending accurate bills to
// customers, and for use in capacity planning").
func Fprint(w io.Writer, c *Container) {
	fprintNode(w, c, 0)
}

func fprintNode(w io.Writer, c *Container, depth int) {
	indent := strings.Repeat("  ", depth)
	a := c.Attributes()
	var attrs []string
	if a.Priority > 0 {
		attrs = append(attrs, fmt.Sprintf("prio=%d", a.Priority))
	}
	if a.Share > 0 {
		attrs = append(attrs, fmt.Sprintf("share=%.0f%%", a.Share*100))
	}
	if a.Limit > 0 {
		attrs = append(attrs, fmt.Sprintf("limit=%.0f%%", a.Limit*100))
	}
	if a.MemLimit > 0 {
		attrs = append(attrs, fmt.Sprintf("mem<=%d", a.MemLimit))
	}
	if a.QoSWeight > 0 {
		attrs = append(attrs, fmt.Sprintf("qos=%.1f", a.QoSWeight))
	}
	attrStr := ""
	if len(attrs) > 0 {
		attrStr = " [" + strings.Join(attrs, " ") + "]"
	}
	u := c.Usage()
	fmt.Fprintf(w, "%s%s (%s)%s cpu=%v (u=%v k=%v) pkts=%d/%d mem=%d drops=%d\n",
		indent, c.Name(), c.Class(), attrStr,
		u.CPU(), u.CPUUser, u.CPUKernel, u.PacketsIn, u.PacketsOut, u.Memory, u.PacketsDropped)
	for _, kid := range c.Children() {
		fprintNode(w, kid, depth+1)
	}
}

// Sprint returns the tree as a string.
func Sprint(c *Container) string {
	var b strings.Builder
	Fprint(&b, c)
	return b.String()
}
