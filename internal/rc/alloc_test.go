package rc

import (
	"testing"

	"rescon/internal/sim"
)

// Charging runs once per scheduled CPU slice and per packet; with the
// ancestor chain built, it must stay allocation-free.
func TestChargeCPUNoAllocs(t *testing.T) {
	root := MustNew(nil, FixedShare, "root", Attributes{})
	mid := MustNew(root, FixedShare, "mid", Attributes{})
	leaf := MustNew(mid, TimeShare, "leaf", Attributes{Priority: 1})
	leaf.ChargeCPU(UserCPU, sim.Microsecond) // build the chain
	allocs := testing.AllocsPerRun(200, func() {
		leaf.ChargeCPU(UserCPU, sim.Microsecond)
		leaf.ChargeCPU(KernelCPU, sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("ChargeCPU allocates %.1f objects/op, want 0", allocs)
	}
}

func TestChargePacketNoAllocs(t *testing.T) {
	root := MustNew(nil, FixedShare, "root", Attributes{})
	leaf := MustNew(root, TimeShare, "leaf", Attributes{Priority: 1})
	leaf.ChargePacketIn(64)
	allocs := testing.AllocsPerRun(200, func() {
		leaf.ChargePacketIn(64)
		leaf.ChargePacketOut(1024)
		leaf.ChargeDrop()
	})
	if allocs != 0 {
		t.Fatalf("packet charging allocates %.1f objects/op, want 0", allocs)
	}
}

// The cached chain must be rebuilt, not stale, after reparenting.
func TestAncestorChainInvalidation(t *testing.T) {
	a := MustNew(nil, FixedShare, "a", Attributes{})
	b := MustNew(nil, FixedShare, "b", Attributes{})
	leaf := MustNew(a, TimeShare, "leaf", Attributes{Priority: 1})
	leaf.ChargeCPU(UserCPU, sim.Millisecond) // chain through a
	if err := leaf.SetParent(b); err != nil {
		t.Fatal(err)
	}
	leaf.ChargeCPU(UserCPU, sim.Millisecond)
	if got := a.Usage().CPUUser; got != sim.Millisecond {
		t.Fatalf("old parent charged %v after reparent, want 1ms", got)
	}
	if got := b.Usage().CPUUser; got != sim.Millisecond {
		t.Fatalf("new parent charged %v, want 1ms", got)
	}
	if got := leaf.Usage().CPUUser; got != 2*sim.Millisecond {
		t.Fatalf("leaf charged %v, want 2ms", got)
	}
}
