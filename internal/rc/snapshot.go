package rc

import (
	"encoding/json"
	"io"
)

// Snapshot is a serializable view of a container subtree — attributes and
// accumulated usage — for billing and capacity planning (§4.8: containers
// "may be useful to administrators simply for sending accurate bills to
// customers, and for use in capacity planning").
type Snapshot struct {
	ID       uint64     `json:"id"`
	Name     string     `json:"name"`
	Class    string     `json:"class"`
	Attrs    Attributes `json:"attributes"`
	Usage    Usage      `json:"usage"`
	Children []Snapshot `json:"children,omitempty"`
}

// Capture builds a snapshot of the subtree rooted at c.
func Capture(c *Container) Snapshot {
	s := Snapshot{
		ID:    c.ID(),
		Name:  c.Name(),
		Class: c.Class().String(),
		Attrs: c.Attributes(),
		Usage: c.Usage(),
	}
	for _, kid := range c.Children() {
		s.Children = append(s.Children, Capture(kid))
	}
	return s
}

// WriteJSON writes the subtree snapshot as indented JSON.
func WriteJSON(w io.Writer, c *Container) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Capture(c))
}

// Totals aggregates a snapshot's own usage (which already includes its
// descendants) into billing-friendly scalars.
type Totals struct {
	CPUSeconds  float64 `json:"cpu_seconds"`
	UserSeconds float64 `json:"user_seconds"`
	KernSeconds float64 `json:"kernel_seconds"`
	PacketsIn   uint64  `json:"packets_in"`
	PacketsOut  uint64  `json:"packets_out"`
	BytesIn     uint64  `json:"bytes_in"`
	BytesOut    uint64  `json:"bytes_out"`
	DiskBytes   uint64  `json:"disk_bytes"`
	DiskSeconds float64 `json:"disk_seconds"`
	Drops       uint64  `json:"drops"`
}

// Bill converts a snapshot into totals.
func (s Snapshot) Bill() Totals {
	u := s.Usage
	return Totals{
		CPUSeconds:  u.CPU().Seconds(),
		UserSeconds: u.CPUUser.Seconds(),
		KernSeconds: u.CPUKernel.Seconds(),
		PacketsIn:   u.PacketsIn,
		PacketsOut:  u.PacketsOut,
		BytesIn:     u.BytesIn,
		BytesOut:    u.BytesOut,
		DiskBytes:   u.DiskBytes,
		DiskSeconds: u.DiskTime.Seconds(),
		Drops:       u.PacketsDropped,
	}
}
