package rc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"rescon/internal/sim"
)

func mustTop(t *testing.T, name string, attrs Attributes) *Container {
	t.Helper()
	c, err := New(nil, FixedShare, name, attrs)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return c
}

func TestNewBasics(t *testing.T) {
	c, err := New(nil, TimeShare, "conn-1", Attributes{Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "conn-1" || c.Class() != TimeShare || c.Parent() != nil {
		t.Fatalf("unexpected container state: %+v", c)
	}
	if !c.IsLeaf() {
		t.Fatal("new container should be a leaf")
	}
	if c.Refs() != 1 {
		t.Fatalf("Refs %d, want 1", c.Refs())
	}
	if c.EffectivePriority() != 5 {
		t.Fatalf("priority %d, want 5", c.EffectivePriority())
	}
}

func TestIDsUnique(t *testing.T) {
	a := MustNew(nil, TimeShare, "a", Attributes{})
	b := MustNew(nil, TimeShare, "b", Attributes{})
	if a.ID() == b.ID() {
		t.Fatal("container IDs collide")
	}
}

func TestClassString(t *testing.T) {
	if TimeShare.String() != "time-share" || FixedShare.String() != "fixed-share" {
		t.Fatal("class names wrong")
	}
	if !strings.Contains(Class(42).String(), "42") {
		t.Fatal("unknown class should include number")
	}
}

func TestAttributeValidation(t *testing.T) {
	cases := []Attributes{
		{Priority: -1},
		{Share: -0.1},
		{Share: 1.1},
		{Limit: -0.1},
		{Limit: 2},
		{Share: 0.5, Limit: 0.3}, // share > limit
		{MemLimit: -1},
		{QoSWeight: -1},
	}
	for i, a := range cases {
		if _, err := New(nil, FixedShare, "bad", a); !errors.Is(err, ErrBadAttributes) {
			t.Errorf("case %d: want ErrBadAttributes, got %v", i, err)
		}
	}
}

func TestHierarchy(t *testing.T) {
	root := mustTop(t, "server", Attributes{Share: 0.7})
	child, err := New(root, TimeShare, "conn", Attributes{Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if child.Parent() != root {
		t.Fatal("child parent wrong")
	}
	if root.IsLeaf() {
		t.Fatal("root should not be leaf")
	}
	if len(root.Children()) != 1 || root.Children()[0] != child {
		t.Fatal("children list wrong")
	}
	if child.Root() != root || root.Root() != root {
		t.Fatal("Root wrong")
	}
	if child.Depth() != 1 || root.Depth() != 0 {
		t.Fatal("Depth wrong")
	}
}

func TestTimeShareCannotHaveChildren(t *testing.T) {
	ts := MustNew(nil, TimeShare, "ts", Attributes{})
	if _, err := New(ts, TimeShare, "kid", Attributes{}); !errors.Is(err, ErrTimeShareParent) {
		t.Fatalf("want ErrTimeShareParent, got %v", err)
	}
}

func TestSetParentCycle(t *testing.T) {
	a := mustTop(t, "a", Attributes{})
	b, _ := New(a, FixedShare, "b", Attributes{})
	c, _ := New(b, FixedShare, "c", Attributes{})
	if err := a.SetParent(c); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if err := a.SetParent(a); !errors.Is(err, ErrCycle) {
		t.Fatalf("self-parent: want ErrCycle, got %v", err)
	}
}

func TestSetParentNil(t *testing.T) {
	a := mustTop(t, "a", Attributes{})
	b, _ := New(a, TimeShare, "b", Attributes{})
	if err := b.SetParent(nil); err != nil {
		t.Fatal(err)
	}
	if b.Parent() != nil || len(a.Children()) != 0 {
		t.Fatal("detach failed")
	}
}

func TestSetParentIdempotent(t *testing.T) {
	a := mustTop(t, "a", Attributes{})
	b, _ := New(a, TimeShare, "b", Attributes{})
	if err := b.SetParent(a); err != nil {
		t.Fatal(err)
	}
	if len(a.Children()) != 1 {
		t.Fatalf("children duplicated: %d", len(a.Children()))
	}
}

func TestShareOverflow(t *testing.T) {
	root := mustTop(t, "root", Attributes{})
	if _, err := New(root, FixedShare, "a", Attributes{Share: 0.7}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(root, FixedShare, "b", Attributes{Share: 0.4}); !errors.Is(err, ErrShareOverflow) {
		t.Fatalf("want ErrShareOverflow, got %v", err)
	}
	// Exactly 1.0 total is allowed.
	if _, err := New(root, FixedShare, "c", Attributes{Share: 0.3}); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
}

func TestSetAttributesShareOverflow(t *testing.T) {
	root := mustTop(t, "root", Attributes{})
	a, _ := New(root, FixedShare, "a", Attributes{Share: 0.5})
	_, _ = New(root, FixedShare, "b", Attributes{Share: 0.5})
	if err := a.SetAttributes(Attributes{Share: 0.6}); !errors.Is(err, ErrShareOverflow) {
		t.Fatalf("want ErrShareOverflow, got %v", err)
	}
	// Lowering own share is fine.
	if err := a.SetAttributes(Attributes{Share: 0.2}); err != nil {
		t.Fatal(err)
	}
	if a.Attributes().Share != 0.2 {
		t.Fatal("attributes not updated")
	}
}

func TestReleaseDestroys(t *testing.T) {
	c := MustNew(nil, TimeShare, "c", Attributes{})
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	if !c.Destroyed() {
		t.Fatal("container should be destroyed")
	}
	if err := c.Release(); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("double release: want ErrDestroyed, got %v", err)
	}
	if err := c.Retain(); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("retain destroyed: want ErrDestroyed, got %v", err)
	}
	if err := c.SetParent(nil); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("SetParent on destroyed: want ErrDestroyed, got %v", err)
	}
	if err := c.SetAttributes(Attributes{}); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("SetAttributes on destroyed: want ErrDestroyed, got %v", err)
	}
}

func TestRetainPreventsDestroy(t *testing.T) {
	c := MustNew(nil, TimeShare, "c", Attributes{})
	if err := c.Retain(); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	if c.Destroyed() {
		t.Fatal("container destroyed while references remain")
	}
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	if !c.Destroyed() {
		t.Fatal("container should be destroyed at zero refs")
	}
}

func TestDestroyParentOrphansChildren(t *testing.T) {
	p := mustTop(t, "p", Attributes{})
	kid, _ := New(p, TimeShare, "kid", Attributes{})
	if err := p.Release(); err != nil {
		t.Fatal(err)
	}
	// §4.6: if the parent P of a container C is destroyed, C's parent is
	// set to "no parent."
	if kid.Parent() != nil {
		t.Fatal("child should be orphaned")
	}
	if kid.Destroyed() {
		t.Fatal("child must survive parent destruction")
	}
}

func TestDestroyDetachesFromParent(t *testing.T) {
	p := mustTop(t, "p", Attributes{})
	kid, _ := New(p, TimeShare, "kid", Attributes{})
	if err := kid.Release(); err != nil {
		t.Fatal(err)
	}
	if len(p.Children()) != 0 {
		t.Fatal("destroyed child still attached to parent")
	}
}

func TestNewWithDestroyedParent(t *testing.T) {
	p := mustTop(t, "p", Attributes{})
	_ = p.Release()
	if _, err := New(p, TimeShare, "kid", Attributes{}); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("want ErrDestroyed, got %v", err)
	}
}

func TestChargeCPUPropagates(t *testing.T) {
	root := mustTop(t, "root", Attributes{})
	mid, _ := New(root, FixedShare, "mid", Attributes{})
	leaf, _ := New(mid, TimeShare, "leaf", Attributes{})
	leaf.ChargeCPU(UserCPU, 3*sim.Millisecond)
	leaf.ChargeCPU(KernelCPU, 2*sim.Millisecond)
	for _, c := range []*Container{leaf, mid, root} {
		u := c.Usage()
		if u.CPUUser != 3*sim.Millisecond || u.CPUKernel != 2*sim.Millisecond {
			t.Fatalf("%s usage %+v", c, u)
		}
		if u.CPU() != 5*sim.Millisecond {
			t.Fatalf("%s total CPU %v", c, u.CPU())
		}
	}
}

func TestChargeCPUNegativePanics(t *testing.T) {
	c := MustNew(nil, TimeShare, "c", Attributes{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.ChargeCPU(UserCPU, -1)
}

func TestChargePackets(t *testing.T) {
	root := mustTop(t, "root", Attributes{})
	leaf, _ := New(root, TimeShare, "leaf", Attributes{})
	leaf.ChargePacketIn(1500)
	leaf.ChargePacketOut(512)
	leaf.ChargeDrop()
	u := root.Usage()
	if u.PacketsIn != 1 || u.BytesIn != 1500 || u.PacketsOut != 1 || u.BytesOut != 512 || u.PacketsDropped != 1 {
		t.Fatalf("root usage %+v", u)
	}
}

func TestChargeMemoryLimit(t *testing.T) {
	root := mustTop(t, "root", Attributes{MemLimit: 1000})
	leaf, _ := New(root, TimeShare, "leaf", Attributes{})
	if err := leaf.ChargeMemory(800); err != nil {
		t.Fatal(err)
	}
	if err := leaf.ChargeMemory(300); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("want ErrMemLimit, got %v", err)
	}
	// Failed charge must have no effect.
	if leaf.Usage().Memory != 800 || root.Usage().Memory != 800 {
		t.Fatalf("partial charge applied: leaf=%d root=%d", leaf.Usage().Memory, root.Usage().Memory)
	}
	if err := leaf.ChargeMemory(-800); err != nil {
		t.Fatal(err)
	}
	if leaf.Usage().Memory != 0 {
		t.Fatal("release not applied")
	}
}

func TestChargeMemoryClampsAtZero(t *testing.T) {
	c := MustNew(nil, TimeShare, "c", Attributes{})
	if err := c.ChargeMemory(-100); err != nil {
		t.Fatal(err)
	}
	if c.Usage().Memory != 0 {
		t.Fatalf("memory went negative: %d", c.Usage().Memory)
	}
}

func TestWalk(t *testing.T) {
	root := mustTop(t, "root", Attributes{})
	a, _ := New(root, FixedShare, "a", Attributes{})
	_, _ = New(a, TimeShare, "a1", Attributes{})
	_, _ = New(root, TimeShare, "b", Attributes{})
	var names []string
	root.Walk(func(c *Container) { names = append(names, c.Name()) })
	want := "root a a1 b"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("Walk order %q, want %q", got, want)
	}
}

func TestQoSWeightDefault(t *testing.T) {
	c := MustNew(nil, TimeShare, "c", Attributes{})
	if c.QoSWeight() != 1.0 {
		t.Fatalf("default QoS weight %v, want 1", c.QoSWeight())
	}
	c2 := MustNew(nil, TimeShare, "c2", Attributes{QoSWeight: 2.5})
	if c2.QoSWeight() != 2.5 {
		t.Fatalf("QoS weight %v, want 2.5", c2.QoSWeight())
	}
}

// Property: charging a leaf always leaves every ancestor's total CPU equal
// to the sum of the charges made beneath it.
func TestChargeConservationProperty(t *testing.T) {
	f := func(charges []uint16) bool {
		root := MustNew(nil, FixedShare, "root", Attributes{})
		mid := MustNew(root, FixedShare, "mid", Attributes{})
		leafA := MustNew(mid, TimeShare, "a", Attributes{})
		leafB := MustNew(mid, TimeShare, "b", Attributes{})
		var total sim.Duration
		for i, ch := range charges {
			d := sim.Duration(ch) * sim.Microsecond
			if i%2 == 0 {
				leafA.ChargeCPU(UserCPU, d)
			} else {
				leafB.ChargeCPU(KernelCPU, d)
			}
			total += d
		}
		return root.Usage().CPU() == total &&
			mid.Usage().CPU() == total &&
			leafA.Usage().CPU()+leafB.Usage().CPU() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of Retain/Release keeps refs consistent and only
// destroys at zero.
func TestRefcountProperty(t *testing.T) {
	f := func(ops []bool) bool {
		c := MustNew(nil, TimeShare, "c", Attributes{})
		refs := 1
		for _, retain := range ops {
			if retain {
				if err := c.Retain(); err != nil {
					return c.Destroyed() && refs == 0
				}
				refs++
			} else {
				err := c.Release()
				if refs == 0 {
					if !errors.Is(err, ErrDestroyed) {
						return false
					}
					continue
				}
				if err != nil {
					return false
				}
				refs--
			}
			if (refs == 0) != c.Destroyed() {
				return false
			}
			if !c.Destroyed() && c.Refs() != refs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
