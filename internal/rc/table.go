package rc

import (
	"errors"
	"fmt"
)

// ErrBadDescriptor is returned when an operation names a descriptor that
// is not open in the table.
var ErrBadDescriptor = errors.New("rc: bad container descriptor")

// Desc is a per-process container descriptor, analogous to a file
// descriptor (§4.6: containers are visible to the application as file
// descriptors).
type Desc int

// Table is a per-process table of container descriptors. Each open
// descriptor holds one reference on its container; closing the descriptor
// releases the reference, and the container is destroyed when no
// descriptors and no thread bindings remain.
type Table struct {
	slots map[Desc]*Container
	next  Desc
}

// NewTable returns an empty descriptor table.
func NewTable() *Table {
	return &Table{slots: make(map[Desc]*Container)}
}

// Open installs the container at the lowest unused descriptor, taking a
// new reference.
func (t *Table) Open(c *Container) (Desc, error) {
	if err := c.Retain(); err != nil {
		return -1, err
	}
	d := t.next
	for {
		if _, used := t.slots[d]; !used {
			break
		}
		d++
	}
	t.slots[d] = c
	t.next = d + 1
	return d, nil
}

// Lookup returns the container open at d.
func (t *Table) Lookup(d Desc) (*Container, error) {
	c, ok := t.slots[d]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadDescriptor, d)
	}
	return c, nil
}

// Close releases the descriptor's reference and removes it from the table
// (§4.6 "container release").
func (t *Table) Close(d Desc) error {
	c, ok := t.slots[d]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadDescriptor, d)
	}
	delete(t.slots, d)
	if d < t.next {
		t.next = d
	}
	return c.Release()
}

// Len returns the number of open descriptors.
func (t *Table) Len() int { return len(t.slots) }

// Fork duplicates the table for a child process: every open container is
// inherited with its own new reference (§4.6: containers are inherited by
// a new process after a fork()).
func (t *Table) Fork() (*Table, error) {
	child := NewTable()
	for d, c := range t.slots {
		if err := c.Retain(); err != nil {
			// Roll back references taken so far.
			for _, cc := range child.slots {
				_ = cc.Release()
			}
			return nil, err
		}
		child.slots[d] = c
	}
	return child, nil
}

// Transfer passes the container open at d to the table dst, as in passing
// a descriptor over a UNIX-domain socket. The sending process retains
// access (§4.6), so the source descriptor stays open; dst gains its own
// reference at a fresh descriptor.
func (t *Table) Transfer(d Desc, dst *Table) (Desc, error) {
	c, err := t.Lookup(d)
	if err != nil {
		return -1, err
	}
	return dst.Open(c)
}

// Descriptors returns the open descriptors in unspecified order.
func (t *Table) Descriptors() []Desc {
	out := make([]Desc, 0, len(t.slots))
	for d := range t.slots {
		out = append(out, d)
	}
	return out
}

// CloseAll closes every descriptor, releasing all references (process
// exit). It returns the first error encountered but keeps going.
func (t *Table) CloseAll() error {
	var first error
	for d := range t.slots {
		if err := t.Close(d); err != nil && first == nil {
			first = err
		}
	}
	return first
}
