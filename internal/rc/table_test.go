package rc

import (
	"errors"
	"testing"
)

func TestTableOpenLookupClose(t *testing.T) {
	tab := NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{})
	d, err := tab.Open(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Refs() != 2 {
		t.Fatalf("refs %d, want 2 (creator + descriptor)", c.Refs())
	}
	got, err := tab.Lookup(d)
	if err != nil || got != c {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if err := tab.Close(d); err != nil {
		t.Fatal(err)
	}
	if c.Refs() != 1 {
		t.Fatalf("refs after close %d, want 1", c.Refs())
	}
	if _, err := tab.Lookup(d); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("want ErrBadDescriptor, got %v", err)
	}
	if err := tab.Close(d); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("double close: want ErrBadDescriptor, got %v", err)
	}
}

func TestTableLowestDescriptorReuse(t *testing.T) {
	tab := NewTable()
	a := MustNew(nil, TimeShare, "a", Attributes{})
	b := MustNew(nil, TimeShare, "b", Attributes{})
	d0, _ := tab.Open(a)
	d1, _ := tab.Open(b)
	if d0 != 0 || d1 != 1 {
		t.Fatalf("descriptors %d %d, want 0 1", d0, d1)
	}
	_ = tab.Close(d0)
	d2, _ := tab.Open(a)
	if d2 != 0 {
		t.Fatalf("descriptor %d, want reused 0", d2)
	}
}

func TestTableOpenDestroyed(t *testing.T) {
	tab := NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{})
	_ = c.Release()
	if _, err := tab.Open(c); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("want ErrDestroyed, got %v", err)
	}
}

func TestTableLastCloseDestroys(t *testing.T) {
	tab := NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{})
	d, _ := tab.Open(c)
	_ = c.Release() // drop creator ref; descriptor keeps it alive
	if c.Destroyed() {
		t.Fatal("destroyed while descriptor open")
	}
	_ = tab.Close(d)
	if !c.Destroyed() {
		t.Fatal("should be destroyed after last descriptor closes")
	}
}

func TestTableFork(t *testing.T) {
	tab := NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{})
	d, _ := tab.Open(c)
	child, err := tab.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if child.Len() != 1 {
		t.Fatalf("child table len %d, want 1", child.Len())
	}
	got, err := child.Lookup(d)
	if err != nil || got != c {
		t.Fatalf("child lookup: %v %v", got, err)
	}
	if c.Refs() != 3 { // creator + parent desc + child desc
		t.Fatalf("refs %d, want 3", c.Refs())
	}
}

func TestTableTransfer(t *testing.T) {
	src, dst := NewTable(), NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{})
	d, _ := src.Open(c)
	nd, err := src.Transfer(d, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Sender retains access (§4.6).
	if _, err := src.Lookup(d); err != nil {
		t.Fatal("sender lost access after transfer")
	}
	got, err := dst.Lookup(nd)
	if err != nil || got != c {
		t.Fatalf("receiver lookup: %v %v", got, err)
	}
	if c.Refs() != 3 {
		t.Fatalf("refs %d, want 3", c.Refs())
	}
	if _, err := src.Transfer(99, dst); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("transfer of bad desc: %v", err)
	}
}

func TestTableCloseAll(t *testing.T) {
	tab := NewTable()
	a := MustNew(nil, TimeShare, "a", Attributes{})
	b := MustNew(nil, TimeShare, "b", Attributes{})
	_, _ = tab.Open(a)
	_, _ = tab.Open(b)
	if err := tab.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 0 {
		t.Fatalf("table len %d after CloseAll", tab.Len())
	}
	if a.Refs() != 1 || b.Refs() != 1 {
		t.Fatal("references not released")
	}
}

func TestTableDescriptors(t *testing.T) {
	tab := NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{})
	d0, _ := tab.Open(c)
	d1, _ := tab.Open(c)
	ds := tab.Descriptors()
	if len(ds) != 2 {
		t.Fatalf("Descriptors len %d", len(ds))
	}
	seen := map[Desc]bool{}
	for _, d := range ds {
		seen[d] = true
	}
	if !seen[d0] || !seen[d1] {
		t.Fatalf("Descriptors missing entries: %v", ds)
	}
}
