package rc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rescon/internal/sim"
)

func snapshotTree(t *testing.T) *Container {
	t.Helper()
	root := MustNew(nil, FixedShare, "guest", Attributes{Share: 0.5, Limit: 0.5})
	conn := MustNew(root, TimeShare, "conn-1", Attributes{Priority: 10})
	conn.ChargeCPU(UserCPU, 3*sim.Millisecond)
	conn.ChargeCPU(KernelCPU, 2*sim.Millisecond)
	conn.ChargePacketIn(1500)
	conn.ChargePacketOut(1024)
	conn.ChargeDiskRead(4096, 9*sim.Millisecond)
	return root
}

func TestCaptureStructure(t *testing.T) {
	root := snapshotTree(t)
	s := Capture(root)
	if s.Name != "guest" || s.Class != "fixed-share" {
		t.Fatalf("root snapshot %+v", s)
	}
	if len(s.Children) != 1 || s.Children[0].Name != "conn-1" {
		t.Fatalf("children %+v", s.Children)
	}
	if s.Usage.CPU() != 5*sim.Millisecond {
		t.Fatalf("aggregated CPU %v", s.Usage.CPU())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	root := snapshotTree(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "guest" || len(back.Children) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Children[0].Usage.BytesIn != 1500 {
		t.Fatalf("usage lost in round trip: %+v", back.Children[0].Usage)
	}
	for _, want := range []string{`"name": "guest"`, `"conn-1"`, `"disk_bytes"`} {
		_ = want
	}
	out := buf.String()
	if !strings.Contains(out, `"name": "guest"`) || !strings.Contains(out, "conn-1") {
		t.Fatalf("JSON missing fields:\n%s", out)
	}
}

func TestBillTotals(t *testing.T) {
	root := snapshotTree(t)
	b := Capture(root).Bill()
	if b.CPUSeconds != 0.005 || b.UserSeconds != 0.003 || b.KernSeconds != 0.002 {
		t.Fatalf("CPU totals %+v", b)
	}
	if b.PacketsIn != 1 || b.BytesIn != 1500 || b.BytesOut != 1024 {
		t.Fatalf("net totals %+v", b)
	}
	if b.DiskBytes != 4096 || b.DiskSeconds != 0.009 {
		t.Fatalf("disk totals %+v", b)
	}
}

func TestDumpTree(t *testing.T) {
	root := snapshotTree(t)
	out := Sprint(root)
	for _, want := range []string{"guest", "conn-1", "share=50%", "limit=50%", "prio=10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Child indented under parent.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("tree shape wrong:\n%s", out)
	}
}
