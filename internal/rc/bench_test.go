package rc

import (
	"testing"

	"rescon/internal/sim"
)

func BenchmarkChargeCPUDepth3(b *testing.B) {
	root := MustNew(nil, FixedShare, "root", Attributes{})
	mid := MustNew(root, FixedShare, "mid", Attributes{})
	leaf := MustNew(mid, TimeShare, "leaf", Attributes{Priority: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf.ChargeCPU(UserCPU, sim.Microsecond)
	}
}

func BenchmarkNewRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := MustNew(nil, TimeShare, "c", Attributes{Priority: 1})
		_ = c.Release()
	}
}

func BenchmarkTableOpenClose(b *testing.B) {
	t := NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{Priority: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := t.Open(c)
		_ = t.Close(d)
	}
}

func BenchmarkUsageRead(b *testing.B) {
	c := MustNew(nil, TimeShare, "c", Attributes{Priority: 1})
	c.ChargeCPU(UserCPU, sim.Millisecond)
	var u Usage
	for i := 0; i < b.N; i++ {
		u = c.Usage()
	}
	_ = u
}
