package rc

import (
	"testing"

	"rescon/internal/sim"
)

func BenchmarkChargeCPUDepth3(b *testing.B) {
	root := MustNew(nil, FixedShare, "root", Attributes{})
	mid := MustNew(root, FixedShare, "mid", Attributes{})
	leaf := MustNew(mid, TimeShare, "leaf", Attributes{Priority: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf.ChargeCPU(UserCPU, sim.Microsecond)
	}
}

func BenchmarkNewRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := MustNew(nil, TimeShare, "c", Attributes{Priority: 1})
		_ = c.Release()
	}
}

func BenchmarkTableOpenClose(b *testing.B) {
	t := NewTable()
	c := MustNew(nil, TimeShare, "c", Attributes{Priority: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := t.Open(c)
		_ = t.Close(d)
	}
}

// BenchmarkSetAttributesChurn is the rebalance controller's actuation
// path: a closed-loop tick rewrites member attributes in place, every
// few milliseconds, for the lifetime of the process. The benchmark
// mirrors that shape — four siblings under one parent, shares shifting
// between two valid splits — so the sibling share-overflow scan is on
// the measured path. Pinned at zero allocs/op in BENCH_baseline.json.
func BenchmarkSetAttributesChurn(b *testing.B) {
	parent := MustNew(nil, FixedShare, "pool", Attributes{})
	members := make([]*Container, 4)
	for i := range members {
		members[i] = MustNew(parent, FixedShare, "m", Attributes{Share: 0.2, MemLimit: 1 << 20})
	}
	lo := Attributes{Share: 0.1, MemLimit: 1 << 19}
	hi := Attributes{Share: 0.3, MemLimit: 3 << 19}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := members[i%len(members)]
		attrs := lo
		if i%2 == 0 {
			attrs = hi
		}
		if err := m.SetAttributes(attrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUsageRead(b *testing.B) {
	c := MustNew(nil, TimeShare, "c", Attributes{Priority: 1})
	c.ChargeCPU(UserCPU, sim.Millisecond)
	var u Usage
	for i := 0; i < b.N; i++ {
		u = c.Usage()
	}
	_ = u
}
