package alert

import (
	"bytes"
	"sync"
	"testing"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/workload"
)

var (
	testServerAddr = kernel.Addr("10.0.0.1", 80)
	testClientNet  = netsim.MustParseIP("10.1.0.0")
	testAttackNet  = netsim.MustParseIP("66.0.0.0")
)

// floodScene runs a server + paying clients + SYN flood for 400ms with
// the alert battery attached, optionally with the watchdog engaged on
// top. The flood runs from 100ms to 250ms so the run covers quiet →
// overload → recovery.
func floodScene(t *testing.T, mode kernel.Mode, seed int64, withWatchdog bool) (*Monitor, *Watchdog) {
	t.Helper()
	eng := sim.NewEngine(seed)
	k := kernel.New(eng, mode, kernel.DefaultCosts())
	k.AttachTelemetry(telemetry.New(telemetry.Config{}))
	mon, err := Attach(k, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var wd *Watchdog
	if withWatchdog {
		wd = AttachWatchdog(mon, k, WatchdogConfig{})
	}

	if _, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: testServerAddr, API: httpsim.EventAPI,
		PerConnContainers: mode == kernel.ModeRC,
	}); err != nil {
		t.Fatal(err)
	}
	workload.MustStartPopulation(8, workload.ClientConfig{
		Kernel: k,
		Src:    netsim.Addr{IP: testClientNet + 1, Port: 1024},
		Dst:    testServerAddr,
	})
	var flood *workload.Flooder
	eng.After(sim.Duration(100*sim.Millisecond), func() {
		flood = workload.StartFlood(k, 20_000, testAttackNet+1, 4096, testServerAddr)
	})
	eng.After(sim.Duration(250*sim.Millisecond), func() { flood.Stop() })
	eng.RunUntil(sim.Time(400 * sim.Millisecond))
	return mon, wd
}

// TestFloodRaisesCritical: a 20k SYN/s flood must raise a critical
// alert in every kernel mode — and only after the flood starts.
func TestFloodRaisesCritical(t *testing.T) {
	for _, mode := range []kernel.Mode{kernel.ModeUnmodified, kernel.ModeLRP, kernel.ModeRC} {
		mon, _ := floodScene(t, mode, 7, false)
		at, ok := mon.FirstAtSince(LevelCritical, 0)
		if !ok {
			t.Errorf("%v: flood raised no critical alert (events=%d)", mode, len(mon.Events()))
			continue
		}
		if at < sim.Time(100*sim.Millisecond) {
			t.Errorf("%v: critical alert at %v, before the flood began", mode, at)
		}
		if msg := mon.SelfCheck(); msg != "" {
			t.Errorf("%v: %s", mode, msg)
		}
	}
}

// TestQuietBaselineStaysOk: without any attack, a lightly loaded server
// must produce zero alert events — the thresholds are calibrated so
// normal operation is silent.
func TestQuietBaselineStaysOk(t *testing.T) {
	for _, mode := range []kernel.Mode{kernel.ModeUnmodified, kernel.ModeLRP, kernel.ModeRC} {
		eng := sim.NewEngine(7)
		k := kernel.New(eng, mode, kernel.DefaultCosts())
		k.AttachTelemetry(telemetry.New(telemetry.Config{}))
		mon, err := Attach(k, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := httpsim.NewServer(httpsim.Config{
			Kernel: k, Name: "httpd", Addr: testServerAddr, API: httpsim.EventAPI,
		}); err != nil {
			t.Fatal(err)
		}
		workload.MustStartPopulation(4, workload.ClientConfig{
			Kernel: k,
			Src:    netsim.Addr{IP: testClientNet + 1, Port: 1024},
			Dst:    testServerAddr,
		})
		eng.RunUntil(sim.Time(400 * sim.Millisecond))
		if n := len(mon.Events()); n != 0 {
			t.Errorf("%v: quiet baseline emitted %d alert events; first: %+v", mode, n, mon.Events()[0])
		}
	}
}

// TestWatchdogEngagesAndRestores: under flood the watchdog must tighten
// policing, and once the flood stops and alerts clear it must restore
// the saved settings after backoff — the full closed loop.
func TestWatchdogEngagesAndRestores(t *testing.T) {
	mon, wd := floodScene(t, kernel.ModeRC, 7, true)
	if wd.Engagements() == 0 {
		t.Fatalf("watchdog never engaged under flood (events=%d)", len(mon.Events()))
	}
	if wd.Restores() == 0 {
		t.Fatal("watchdog never restored after the flood stopped")
	}
	if wd.Engaged() {
		t.Error("watchdog still engaged 150ms after the flood stopped")
	}
	// The loop must be visible in the event stream.
	var engagedNote, restoredNote bool
	for _, e := range mon.Events() {
		if e.Check == WatchdogCheckName {
			if e.Level == LevelCritical {
				engagedNote = true
			}
			if e.Level == LevelOk && restoredNote == false && engagedNote {
				restoredNote = true
			}
		}
	}
	if !engagedNote || !restoredNote {
		t.Errorf("watchdog notes missing from event stream (engaged=%t restored=%t)", engagedNote, restoredNote)
	}
	if mon.Flaps() != 0 {
		t.Errorf("flood scene produced %d alert flaps, want 0", mon.Flaps())
	}
}

// TestAlertStreamDeterministic is the golden determinism test the issue
// demands: the same seed must render a byte-identical alert JSONL
// stream, serially and concurrently with other simulations (container
// IDs are process-global and race across goroutines; alert targets are
// principal names only).
func TestAlertStreamDeterministic(t *testing.T) {
	render := func() string {
		mon, _ := floodScene(t, kernel.ModeRC, 7, true)
		var buf bytes.Buffer
		if err := mon.WriteJSONL(&buf); err != nil {
			t.Error(err)
		}
		return buf.String()
	}
	serial := render()
	if len(serial) == 0 {
		t.Fatal("empty alert stream")
	}
	if again := render(); again != serial {
		t.Fatal("two serial runs with the same seed render different alert streams")
	}

	out := make([]string, 4)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mon, _ := floodScene(t, kernel.ModeRC, 7, true)
			var buf bytes.Buffer
			if err := mon.WriteJSONL(&buf); err != nil {
				t.Error(err)
			}
			out[i] = buf.String()
		}(i)
	}
	wg.Wait()
	for i, o := range out {
		if o != serial {
			t.Fatalf("concurrent run %d renders a different alert stream than serial", i)
		}
	}
}
