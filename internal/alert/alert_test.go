package alert

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rescon/internal/sim"
)

// synthetic drives a monitor with one hand-fed check: tests set value
// between ticks and the check reports it for one target.
type synthetic struct {
	m     *Monitor
	value float64
	tick  sim.Time
}

func newSynthetic(t *testing.T, c Check) *synthetic {
	t.Helper()
	s := &synthetic{m: New()}
	if c.Observe == nil {
		c.Observe = func() []Observation {
			return []Observation{{Target: "t0", Value: s.value}}
		}
	}
	if err := s.m.Register(c); err != nil {
		t.Fatal(err)
	}
	return s
}

// run feeds value for n ticks and returns events emitted during them.
func (s *synthetic) run(value float64, n int) []Event {
	s.value = value
	before := len(s.m.Events())
	for i := 0; i < n; i++ {
		s.tick += sim.Time(sim.Millisecond)
		s.m.Tick(s.tick)
	}
	return s.m.Events()[before:]
}

func TestRaiseNeedsConsecutiveTicks(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10, Crit: 100})

	// One hot tick, then calm: hysteresis must swallow it.
	if evs := s.run(50, 1); len(evs) != 0 {
		t.Fatalf("event after a single hot tick: %+v", evs)
	}
	if evs := s.run(0, 5); len(evs) != 0 {
		t.Fatalf("events after calm ticks: %+v", evs)
	}

	// Two consecutive hot ticks raise a warning.
	evs := s.run(50, DefaultRaiseTicks)
	if len(evs) != 1 || evs[0].Level != LevelWarning || evs[0].Prev != LevelOk {
		t.Fatalf("want one Ok->Warning event, got %+v", evs)
	}
	if got := s.m.Current("c", "t0"); got != LevelWarning {
		t.Fatalf("Current = %v, want warning", got)
	}

	// Critical needs its own consecutive streak.
	evs = s.run(200, DefaultRaiseTicks)
	if len(evs) != 1 || evs[0].Level != LevelCritical || evs[0].Prev != LevelWarning {
		t.Fatalf("want one Warning->Critical event, got %+v", evs)
	}
}

func TestClearNeedsCalmWindowPlusHoldDown(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10, Crit: 100})
	s.run(200, DefaultRaiseTicks) // raise to critical

	// Calm through the clear window: internally cleared but the
	// publication hold-down keeps the stream quiet.
	if evs := s.run(0, DefaultClearTicks+FlapWindowTicks-1); len(evs) != 0 {
		t.Fatalf("cleared before calm window + hold-down elapsed: %+v", evs)
	}
	if got := s.m.Current("c", "t0"); got != LevelCritical {
		t.Fatalf("published level dropped to %v during hold-down", got)
	}
	evs := s.run(0, 1)
	if len(evs) != 1 || evs[0].Level != LevelOk || evs[0].Prev != LevelCritical {
		t.Fatalf("want one Critical->Ok event, got %+v", evs)
	}
}

func TestCriticalDemotesToWarning(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10, Crit: 100})
	s.run(200, DefaultRaiseTicks)

	// Persistently warm-but-not-critical: demote to warning after the
	// clear window, not straight to Ok.
	evs := s.run(50, DefaultClearTicks)
	if len(evs) != 1 || evs[0].Level != LevelWarning || evs[0].Prev != LevelCritical {
		t.Fatalf("want one Critical->Warning event, got %+v", evs)
	}
}

func TestCritZeroDisablesCritical(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10})
	evs := s.run(1e9, 50)
	for _, e := range evs {
		if e.Level == LevelCritical {
			t.Fatalf("critical event from a check with Crit=0: %+v", e)
		}
	}
	if s.m.Worst() != LevelWarning {
		t.Fatalf("Worst = %v, want warning", s.m.Worst())
	}
}

func TestFlapCountsOnlySuppressionEscape(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10})
	s.run(50, DefaultRaiseTicks) // first raise, penalty 1

	// Quick raise/clear cycles escalate the penalty 2 -> 4 -> 8 without
	// counting a flap: a re-raise right after a published clear is
	// suppression at work (the next clear needs a correspondingly longer
	// calm window), not a suppression failure.
	for penalty := 1; penalty < flapPenaltyCap; penalty *= 2 {
		evs := s.run(0, penalty*DefaultClearTicks+FlapWindowTicks)
		if len(evs) != 1 || evs[0].Level != LevelOk {
			t.Fatalf("penalty %d: want one published clear, got %+v", penalty, evs)
		}
		evs = s.run(50, DefaultRaiseTicks)
		if len(evs) != 1 || evs[0].Flap {
			t.Fatalf("penalty %d: quick re-raise should escalate, not flap: %+v", penalty, evs)
		}
	}
	if s.m.Flaps() != 0 {
		t.Fatalf("Flaps = %d during escalation, want 0", s.m.Flaps())
	}

	// Penalty is now at its cap: one more quick cycle has exhausted every
	// escalation, so it is counted (and marked) as a flap.
	s.run(0, flapPenaltyCap*DefaultClearTicks+FlapWindowTicks)
	evs := s.run(50, DefaultRaiseTicks)
	if len(evs) != 1 || !evs[0].Flap {
		t.Fatalf("want one flap-marked raise at penalty cap, got %+v", evs)
	}
	if s.m.Flaps() != 1 {
		t.Fatalf("Flaps = %d, want 1", s.m.Flaps())
	}

	// A raise long after the clear resets the penalty: no flap, and the
	// clear window shrinks back to its base width.
	s.run(0, flapPenaltyCap*DefaultClearTicks+FlapWindowTicks)
	s.run(0, FlapWindowTicks+1)
	evs = s.run(50, DefaultRaiseTicks)
	if len(evs) != 1 || evs[0].Flap {
		t.Fatalf("late re-raise wrongly marked as flap: %+v", evs)
	}
	if s.m.Flaps() != 1 {
		t.Fatalf("Flaps = %d after clean raise, want 1", s.m.Flaps())
	}
	if evs := s.run(0, DefaultClearTicks+FlapWindowTicks); len(evs) != 1 || evs[0].Level != LevelOk {
		t.Fatalf("clean raise did not reset the clear window: %+v", evs)
	}
}

func TestDampingAbsorbsBriefDip(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10})
	s.run(50, DefaultRaiseTicks) // raise

	// Calm through the clear window (internal clear, hold-down starts),
	// then hot again before the hold-down expires: the dip must be
	// absorbed with zero published events.
	before := len(s.m.Events())
	s.run(0, DefaultClearTicks)
	s.run(50, FlapWindowTicks)
	if got := s.m.Events()[before:]; len(got) != 0 {
		t.Fatalf("dip leaked into the published stream: %+v", got)
	}
	if s.m.Current("c", "t0") != LevelWarning {
		t.Fatalf("published level = %v through the dip, want warning", s.m.Current("c", "t0"))
	}
	if s.m.Damped() != 1 || s.m.Flaps() != 0 {
		t.Fatalf("damped=%d flaps=%d, want 1 and 0", s.m.Damped(), s.m.Flaps())
	}

	// The damped key's penalty doubled: clearing now takes 2× calm plus
	// the hold-down.
	if evs := s.run(0, 2*DefaultClearTicks); len(evs) != 0 {
		t.Fatalf("damped key cleared too early: %+v", evs)
	}
	evs := s.run(0, FlapWindowTicks)
	if len(evs) != 1 || evs[0].Level != LevelOk {
		t.Fatalf("damped key did not clear after penalized window: %+v", evs)
	}
}

func TestVanishedTargetDecaysToOk(t *testing.T) {
	m := New()
	targets := []Observation{{Target: "sock", Value: 50}}
	m.MustRegister(Check{Name: "c", Warn: 10, Observe: func() []Observation { return targets }})
	at := sim.Time(0)
	tick := func(n int) {
		for i := 0; i < n; i++ {
			at += sim.Time(sim.Millisecond)
			m.Tick(at)
		}
	}
	tick(DefaultRaiseTicks)
	if m.Current("c", "sock") != LevelWarning {
		t.Fatal("target never raised")
	}
	// The target disappears (socket closed): implicit calm zeros must
	// clear the alert rather than wedge it raised forever.
	targets = nil
	tick(DefaultClearTicks + FlapWindowTicks)
	if got := m.Current("c", "sock"); got != LevelOk {
		t.Fatalf("vanished target stuck at %v, want ok", got)
	}
}

func TestRegisterRejectsBadChecks(t *testing.T) {
	m := New()
	ob := func() []Observation { return nil }
	if err := m.Register(Check{Name: "dup", Warn: 1, Observe: ob}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		c    Check
	}{
		{"duplicate name", Check{Name: "dup", Warn: 1, Observe: ob}},
		{"empty name", Check{Warn: 1, Observe: ob}},
		{"nil observe", Check{Name: "x", Warn: 1}},
		{"zero warn", Check{Name: "x", Observe: ob}},
		{"crit below warn", Check{Name: "x", Warn: 10, Crit: 5, Observe: ob}},
	}
	for _, tc := range cases {
		if err := m.Register(tc.c); err == nil {
			t.Errorf("%s: Register accepted an invalid check", tc.name)
		}
	}
	// The original registration survives the duplicate attempt.
	if len(m.Events()) != 0 || m.byName["dup"] != 0 {
		t.Fatal("failed registration mutated the registry")
	}
}

func TestNoteAndFirstAtSince(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10, Crit: 100})
	var hookFired int
	s.m.OnEvent(func(Event) { hookFired++ })
	s.m.Note(sim.Time(5), WatchdogCheckName, "(watchdog)", LevelCritical, "engaged")
	if hookFired != 0 {
		t.Fatal("Note fired OnEvent subscribers")
	}
	// FirstAtSince skips watchdog notes: only detections count.
	if _, ok := s.m.FirstAtSince(LevelCritical, 0); ok {
		t.Fatal("FirstAtSince counted a watchdog note as a detection")
	}
	s.run(200, DefaultRaiseTicks)
	at, ok := s.m.FirstAtSince(LevelCritical, 0)
	if !ok || at == 0 {
		t.Fatalf("FirstAtSince missed the critical raise (at=%v ok=%t)", at, ok)
	}
	if _, ok := s.m.FirstAtSince(LevelCritical, at+1); ok {
		t.Fatal("FirstAtSince ignored its since bound")
	}
}

func TestSelfCheckConsistent(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10, Crit: 100})
	s.run(200, 10)
	s.run(0, 20)
	s.run(50, 3)
	if msg := s.m.SelfCheck(); msg != "" {
		t.Fatalf("SelfCheck reports a missed detection on a healthy monitor: %s", msg)
	}
}

func TestWriteJSONLStableAndParseable(t *testing.T) {
	render := func() string {
		s := newSynthetic(t, Check{Name: "c", Warn: 10, Crit: 100})
		s.m.SetRun(42, "rc", sim.Duration(sim.Millisecond))
		s.run(200, 4)
		s.run(0.5, 20)
		s.m.Note(sim.Time(7), WatchdogCheckName, "(watchdog)", LevelOk, `detail with "quotes"`)
		var buf bytes.Buffer
		if err := s.m.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("two identical runs rendered different JSONL")
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("want meta + >=2 events, got %d lines", len(lines))
	}
	for i, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		wantType := "alert"
		if i == 0 {
			wantType = "meta"
		}
		if obj["type"] != wantType {
			t.Fatalf("line %d type = %v, want %s", i, obj["type"], wantType)
		}
	}
	var meta map[string]any
	_ = json.Unmarshal([]byte(lines[0]), &meta)
	if meta["seed"] != float64(42) || meta["mode"] != "rc" {
		t.Fatalf("meta line missing run identity: %s", lines[0])
	}
}

func TestSchmittDeadBandHoldsLevel(t *testing.T) {
	s := newSynthetic(t, Check{Name: "c", Warn: 10, Crit: 100})
	s.run(50, DefaultRaiseTicks) // raise to warning

	// Hover in the dead band [Warn*ClearFrac, Warn): never calm, never
	// hot — the level must hold indefinitely with zero events.
	if evs := s.run(8, 10*DefaultClearTicks); len(evs) != 0 {
		t.Fatalf("dead-band hover emitted events: %+v", evs)
	}
	if got := s.m.Current("c", "t0"); got != LevelWarning {
		t.Fatalf("dead-band hover changed level to %v", got)
	}

	// Dropping below Warn*ClearFrac finally clears.
	evs := s.run(7, DefaultClearTicks+FlapWindowTicks)
	if len(evs) != 1 || evs[0].Level != LevelOk {
		t.Fatalf("want one clear after leaving the dead band, got %+v", evs)
	}
	if s.m.Flaps() != 0 {
		t.Fatalf("Flaps = %d, want 0", s.m.Flaps())
	}
}
