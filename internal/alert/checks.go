// The built-in check battery: sockstat-style detectors over the
// kernel's leading overload indicators. Each check is a closure holding
// its previous counter readings (for delta checks) and iterating kernel
// state in creation order, never map order, so the event stream is
// deterministic for a given seed.

package alert

import (
	"fmt"

	"rescon/internal/kernel"
	"rescon/internal/sim"
)

// Built-in check names, also the keys accepted by Config.Disable.
const (
	CheckSynDrops      = "syn-drops"
	CheckAcceptQueue   = "accept-queue"
	CheckEmbryonic     = "embryonic"
	CheckInterruptLoad = "interrupt-load"
	CheckBacklog       = "backlog-pressure"
	CheckBacklogGrowth = "backlog-growth"
	CheckRunQueue      = "runqueue"
	CheckDiskQueue     = "disk-queue"
	CheckStarvation    = "starvation"
)

// Default thresholds for the battery. Delta checks are per sampling
// tick (DefaultSampleInterval = 1ms of virtual time); level checks on
// queues are occupancy fractions of the queue's bound.
const (
	// SYN drops: any drop in a tick is warning-worthy (it is refused
	// work); a sustained burst is the livelock signature.
	DefaultSynDropsWarn = 1
	DefaultSynDropsCrit = 8
	// Accept queue occupancy: a full queue means the server thread is
	// not being scheduled often enough to drain accepts.
	DefaultAcceptQueueWarn = 0.8
	DefaultAcceptQueueCrit = 1.0
	// Embryonic (half-open) connections per listener: the SYN-flood
	// signature on kernels that never refuse a SYN.
	DefaultEmbryonicWarn = 64
	DefaultEmbryonicCrit = 256
	// Interrupt load: fraction of the sampling tick spent in interrupt
	// context. Sustained near-1.0 is receive livelock — the unmodified
	// kernel's failure mode, invisible to every queue-level check
	// because the queues upstream of the stall stay empty.
	DefaultInterruptWarn = 0.75
	DefaultInterruptCrit = 0.95
	// Protocol backlog occupancy. Policed kernels hold this near
	// SYNFrac (1/16 by default), so a policed server stays quiet here
	// and an unpoliced one under flood pins it at 1.0.
	DefaultBacklogWarn = 0.5
	DefaultBacklogCrit = 0.9
	// Backlog growth: net packets the backlog grew by over the last
	// GrowthWindowTicks. Growth is measured over a window, not per tick:
	// the per-tick derivative of a queue fed by bursty workloads
	// oscillates across any threshold, while windowed growth cancels
	// fill/drain noise and only a sustained fill — a queue actually
	// heading for its bound — accumulates.
	GrowthWindowTicks        = 8
	DefaultBacklogGrowthWarn = 32
	DefaultBacklogGrowthCrit = 256
	// Scheduler run-queue depth (runnable threads).
	DefaultRunQueueWarn = 8
	DefaultRunQueueCrit = 32
	// Disk queue occupancy of DefaultDiskQueueLimit.
	DefaultDiskQueueWarn = 0.5
	DefaultDiskQueueCrit = 0.9
	// Starvation raise window: the watched container must look starved
	// for this many consecutive ticks (8ms) before warning.
	StarvationRaiseTicks = 8
)

// Config tunes Attach's built-in battery.
type Config struct {
	// Disable lists built-in check names (the Check* constants) to omit.
	Disable []string
	// Extra checks are registered after the built-ins, in order.
	Extra []Check
}

func (cfg Config) disabled(name string) bool {
	for _, d := range cfg.Disable {
		if d == name {
			return true
		}
	}
	return false
}

// Attach builds a Monitor with the built-in check battery over k and
// subscribes it to the telemetry sampling tick. The kernel must already
// have a telemetry collector attached — the alert layer is a consumer
// of that stream, not a second sampler.
func Attach(k *kernel.Kernel, cfg Config) (*Monitor, error) {
	tel := k.Telemetry()
	if tel == nil {
		return nil, fmt.Errorf("alert: kernel has no telemetry collector attached")
	}
	m := New()
	m.SetRun(k.Engine().Seed(), k.Mode().String(), tel.Interval())

	reg := func(c Check) {
		if !cfg.disabled(c.Name) {
			m.MustRegister(c)
		}
	}

	// syn-drops: per-listener delta of the SYN/accept drop counter. The
	// counter is monotonic; the first observation baselines it, like
	// sockstat's first gather.
	prevSyn := make(map[string]uint64)
	reg(Check{
		Name: CheckSynDrops, Warn: DefaultSynDropsWarn, Crit: DefaultSynDropsCrit,
		Observe: func() []Observation {
			var obs []Observation
			for _, ls := range k.ListenSockets() {
				if ls.Closed() {
					continue
				}
				target := "listen:" + ls.Addr().String()
				cur := ls.SynDrops()
				// A restarted server re-creates the socket under the same
				// address with fresh counters; treat a backwards counter as
				// a reset, not an enormous delta.
				delta := cur - prevSyn[target]
				if cur < prevSyn[target] {
					delta = cur
				}
				prevSyn[target] = cur
				obs = append(obs, Observation{
					Target: target, Value: float64(delta),
					Detail: fmt.Sprintf("drops_total=%d", cur),
				})
			}
			return obs
		},
	})

	// accept-queue: occupancy of each listener's accept queue.
	reg(Check{
		Name: CheckAcceptQueue, Warn: DefaultAcceptQueueWarn, Crit: DefaultAcceptQueueCrit,
		Observe: func() []Observation {
			var obs []Observation
			for _, ls := range k.ListenSockets() {
				if ls.Closed() || ls.AcceptCap() <= 0 {
					continue
				}
				pend := ls.Pending()
				obs = append(obs, Observation{
					Target: "listen:" + ls.Addr().String(),
					Value:  float64(pend) / float64(ls.AcceptCap()),
					Detail: fmt.Sprintf("pending=%d cap=%d", pend, ls.AcceptCap()),
				})
			}
			return obs
		},
	})

	// embryonic: half-open connections held per listener. Policed
	// kernels shed SYNs before they become embryonic, so a high count
	// means un-admission-controlled flood traffic.
	reg(Check{
		Name: CheckEmbryonic, Warn: DefaultEmbryonicWarn, Crit: DefaultEmbryonicCrit,
		Observe: func() []Observation {
			var obs []Observation
			for _, ls := range k.ListenSockets() {
				if ls.Closed() {
					continue
				}
				n := ls.EmbryonicCount()
				obs = append(obs, Observation{
					Target: "listen:" + ls.Addr().String(), Value: float64(n),
					Detail: fmt.Sprintf("half_open=%d", n),
				})
			}
			return obs
		},
	})

	// interrupt-load: per-tick delta of interrupt-context CPU as a
	// fraction of the tick. This is the only check that sees receive
	// livelock on the unmodified kernel, where packets are consumed at
	// interrupt level and every downstream queue stays calm.
	var prevIntr sim.Duration
	reg(Check{
		Name: CheckInterruptLoad, Warn: DefaultInterruptWarn, Crit: DefaultInterruptCrit,
		Observe: func() []Observation {
			cur := k.InterruptTime()
			delta := cur - prevIntr
			prevIntr = cur
			return []Observation{{
				Target: "(machine)",
				Value:  float64(delta) / float64(tel.Interval()),
				Detail: fmt.Sprintf("interrupt_total_ns=%d", int64(cur)),
			}}
		},
	})

	// backlog-pressure: occupancy of each process's protocol backlog
	// (LRP/RC modes; unmodified kernels have no per-process queue and
	// show up on runqueue/syn-drops instead).
	reg(Check{
		Name: CheckBacklog, Warn: DefaultBacklogWarn, Crit: DefaultBacklogCrit,
		Observe: func() []Observation {
			var obs []Observation
			for _, p := range k.Processes() {
				bound := p.NetBacklogBound()
				if bound <= 0 {
					continue
				}
				n := p.NetBacklog()
				obs = append(obs, Observation{
					Target: p.Name(), Value: float64(n) / float64(bound),
					Detail: fmt.Sprintf("backlog=%d bound=%d", n, bound),
				})
			}
			return obs
		},
	})

	// backlog-growth: net packets the backlog grew by over the last
	// GrowthWindowTicks. Catches a queue filling fast even before
	// occupancy is high, without alerting on fill/drain oscillation.
	histBacklog := make(map[string][]int)
	reg(Check{
		Name: CheckBacklogGrowth, Warn: DefaultBacklogGrowthWarn, Crit: DefaultBacklogGrowthCrit,
		Observe: func() []Observation {
			var obs []Observation
			for _, p := range k.Processes() {
				if p.NetBacklogBound() <= 0 {
					continue
				}
				n := p.NetBacklog()
				hist := histBacklog[p.Name()]
				growth := 0
				if len(hist) > 0 {
					growth = n - hist[0]
				}
				hist = append(hist, n)
				if len(hist) > GrowthWindowTicks {
					hist = hist[1:]
				}
				histBacklog[p.Name()] = hist
				if growth < 0 {
					growth = 0
				}
				obs = append(obs, Observation{
					Target: p.Name(), Value: float64(growth),
					Detail: fmt.Sprintf("backlog=%d", n),
				})
			}
			return obs
		},
	})

	// runqueue: scheduler run-queue depth — the "everything runnable,
	// nothing finishing" stall signal.
	reg(Check{
		Name: CheckRunQueue, Warn: DefaultRunQueueWarn, Crit: DefaultRunQueueCrit,
		Observe: func() []Observation {
			return []Observation{{
				Target: "(machine)", Value: float64(k.RunQueueDepth()),
			}}
		},
	})

	// disk-queue: occupancy of the disk request queue.
	reg(Check{
		Name: CheckDiskQueue, Warn: DefaultDiskQueueWarn, Crit: DefaultDiskQueueCrit,
		Observe: func() []Observation {
			n := k.Disk().QueueLen()
			return []Observation{{
				Target: "(disk)",
				Value:  float64(n) / float64(kernel.DefaultDiskQueueLimit),
				Detail: fmt.Sprintf("queued=%d limit=%d", n, kernel.DefaultDiskQueueLimit),
			}}
		},
	})

	// starvation (resource-container modes only): a watched container
	// with a nonzero guaranteed share that receives packets but gets
	// zero CPU across a busy tick is being starved despite its
	// reservation — exactly the guarantee §4 of the paper exists to
	// protect.
	if k.Mode() == kernel.ModeRC && !cfg.disabled(CheckStarvation) {
		interval := tel.Interval()
		type starvePrev struct {
			cpu  sim.Duration
			pkts uint64
		}
		prev := make(map[string]starvePrev)
		var prevBusy sim.Duration
		m.MustRegister(Check{
			Name: CheckStarvation, Warn: 1, Crit: 0, Raise: StarvationRaiseTicks,
			Observe: func() []Observation {
				busy := k.BusyTime()
				busyDelta := busy - prevBusy
				prevBusy = busy
				var obs []Observation
				for _, c := range k.WatchedContainers() {
					if c.Destroyed() || c.Attributes().Share <= 0 {
						continue
					}
					u := c.Usage()
					pr := prev[c.Name()]
					cpuDelta := u.CPU() - pr.cpu
					pktDelta := u.PacketsIn - pr.pkts
					prev[c.Name()] = starvePrev{cpu: u.CPU(), pkts: u.PacketsIn}
					v := 0.0
					if cpuDelta == 0 && pktDelta > 0 && busyDelta >= interval/2 {
						v = 1
					}
					obs = append(obs, Observation{
						Target: c.Name(), Value: v,
						Detail: fmt.Sprintf("share=%g cpu_delta_ns=%d pkts_delta=%d", c.Attributes().Share, int64(cpuDelta), pktDelta),
					})
				}
				return obs
			},
		})
	}

	for _, c := range cfg.Extra {
		if err := m.Register(c); err != nil {
			return nil, err
		}
	}

	tel.AddSampleHook(m.Tick)
	return m, nil
}
