// Watchdog: the closed loop on top of the detectors. On a critical
// overload alert it tightens the kernel's admission control (the same
// knob the paper's Fig. 16 defense uses) and, when one clampable
// container dominates recent CPU, caps that container's allocation via
// SetAttributes. Once every trigger alert has cleared it restores the
// saved settings after an exponential-backoff delay, so a borderline
// system does not oscillate between policed and unpoliced.

package alert

import (
	"fmt"

	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Watchdog reaction defaults, in sampling ticks where noted.
const (
	// DefaultTightSYNFrac is the emergency SYN admission fraction —
	// four times tighter than the kernel's DefaultSYNPoliceFrac (1/16).
	DefaultTightSYNFrac = 1.0 / 64
	// DefaultClampLimit is the CPU-fraction cap applied to a runaway
	// clampable container while the watchdog is engaged.
	DefaultClampLimit = 0.5
	// DefaultBackoffTicks is the initial delay between the last trigger
	// alert clearing and the watchdog restoring saved settings.
	DefaultBackoffTicks = 16
	// DefaultMaxBackoffTicks caps the exponential restore backoff.
	DefaultMaxBackoffTicks = 256
	// ClampWindowTicks is the CPU-accounting window used to decide
	// which clampable container is the runaway.
	ClampWindowTicks = 8
)

// WatchdogConfig tunes the closed loop; zero values take the defaults
// above.
type WatchdogConfig struct {
	// Triggers are the check names whose critical alerts engage the
	// watchdog. Default: syn-drops, backlog-pressure, runqueue,
	// interrupt-load and embryonic — the last two are the only checks
	// that see receive livelock on the unmodified kernel, where every
	// queue-level signal stays calm.
	Triggers []string
	// TightSYNFrac replaces Policing.SYNFrac while engaged.
	TightSYNFrac float64
	// ClampLimit is the Attributes.Limit applied to a runaway container.
	ClampLimit float64
	// BackoffTicks / MaxBackoffTicks control the restore delay and its
	// exponential growth when the watchdog re-engages soon after a
	// restore.
	BackoffTicks    int
	MaxBackoffTicks int
	// Clampable lists the containers the watchdog may cap. Only
	// explicitly listed containers are ever touched — clamping the
	// server's own container would convert an overload into an outage.
	Clampable []*rc.Container
}

func (cfg WatchdogConfig) withDefaults() WatchdogConfig {
	if len(cfg.Triggers) == 0 {
		cfg.Triggers = []string{CheckSynDrops, CheckBacklog, CheckRunQueue, CheckInterruptLoad, CheckEmbryonic}
	}
	if cfg.TightSYNFrac <= 0 {
		cfg.TightSYNFrac = DefaultTightSYNFrac
	}
	if cfg.ClampLimit <= 0 {
		cfg.ClampLimit = DefaultClampLimit
	}
	if cfg.BackoffTicks <= 0 {
		cfg.BackoffTicks = DefaultBackoffTicks
	}
	if cfg.MaxBackoffTicks <= 0 {
		cfg.MaxBackoffTicks = DefaultMaxBackoffTicks
	}
	return cfg
}

// Watchdog holds the closed-loop state: which trigger keys are
// critical, the saved pre-engagement settings, and the restore
// countdown. It is driven entirely by the monitor's event and tick
// hooks.
type Watchdog struct {
	m   *Monitor
	k   *kernel.Kernel
	cfg WatchdogConfig

	critical map[key]bool // trigger keys currently at LevelCritical

	engaged     bool
	savedPolice kernel.Policing
	clamped     *rc.Container
	savedAttrs  rc.Attributes

	countdown      int // ticks until restore; -1 when no restore pending
	backoff        int
	hasRestored    bool
	restoredAtTick uint64

	engagements uint64
	restores    uint64

	// per-clampable CPU history ring for runaway detection.
	prevCPU []sim.Duration
	deltas  [][]sim.Duration
	histPos int
}

// AttachWatchdog wires a watchdog to a monitor's event stream and tick
// hook. Call after Attach, before running load.
func AttachWatchdog(m *Monitor, k *kernel.Kernel, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		m: m, k: k, cfg: cfg.withDefaults(),
		critical:  make(map[key]bool),
		countdown: -1,
	}
	w.backoff = w.cfg.BackoffTicks
	w.prevCPU = make([]sim.Duration, len(w.cfg.Clampable))
	w.deltas = make([][]sim.Duration, len(w.cfg.Clampable))
	for i, c := range w.cfg.Clampable {
		w.prevCPU[i] = c.Usage().CPU()
		w.deltas[i] = make([]sim.Duration, ClampWindowTicks)
	}
	m.OnEvent(w.onEvent)
	m.OnTick(w.onTick)
	return w
}

// Engaged reports whether the watchdog's emergency settings are
// currently applied.
func (w *Watchdog) Engaged() bool { return w.engaged }

// Engagements returns how many times the watchdog has engaged.
func (w *Watchdog) Engagements() uint64 { return w.engagements }

// Restores returns how many times saved settings have been restored.
func (w *Watchdog) Restores() uint64 { return w.restores }

func (w *Watchdog) isTrigger(check string) bool {
	for _, t := range w.cfg.Triggers {
		if t == check {
			return true
		}
	}
	return false
}

func (w *Watchdog) onEvent(ev Event) {
	if !w.isTrigger(ev.Check) {
		return
	}
	k := key{ev.Check, ev.Target}
	if ev.Level == LevelCritical {
		w.critical[k] = true
		w.engage(ev)
		return
	}
	if !w.critical[k] {
		return
	}
	delete(w.critical, k)
	if w.engaged && len(w.critical) == 0 && w.countdown < 0 {
		// All trigger alerts have cleared critical; schedule the
		// restore after the current backoff.
		w.countdown = w.backoff
		w.m.Note(ev.At, WatchdogCheckName, "(watchdog)", LevelOk,
			fmt.Sprintf("overload cleared; restore in %d tick(s)", w.countdown))
	}
}

func (w *Watchdog) engage(ev Event) {
	if w.engaged {
		// Overload returned while waiting to restore: cancel the
		// countdown, keep the emergency settings.
		w.countdown = -1
		return
	}
	w.engaged = true
	w.engagements++
	if w.hasRestored && w.m.Ticks()-w.restoredAtTick <= FlapWindowTicks {
		// Re-engaged right after restoring — the restore was premature.
		// Back off harder next time.
		w.backoff *= 2
		if w.backoff > w.cfg.MaxBackoffTicks {
			w.backoff = w.cfg.MaxBackoffTicks
		}
	} else {
		w.backoff = w.cfg.BackoffTicks
	}
	w.countdown = -1

	w.savedPolice = w.k.Police
	w.k.Police.Enabled = true
	w.k.Police.SYNFrac = w.cfg.TightSYNFrac
	w.m.Note(ev.At, WatchdogCheckName, "(watchdog)", LevelCritical,
		fmt.Sprintf("engaged on %s/%s: policing tightened syn_frac=%g (was enabled=%t syn_frac=%g)",
			ev.Check, ev.Target, w.cfg.TightSYNFrac, w.savedPolice.Enabled, w.savedPolice.SYNFrac))

	if c := w.runaway(); c != nil {
		attrs := c.Attributes()
		if attrs.Limit == 0 || attrs.Limit > w.cfg.ClampLimit {
			w.clamped = c
			w.savedAttrs = attrs
			attrs.Limit = w.cfg.ClampLimit
			if err := c.SetAttributes(attrs); err != nil {
				w.clamped = nil
			} else {
				w.m.Note(ev.At, WatchdogCheckName, c.Name(), LevelCritical,
					fmt.Sprintf("clamped runaway container limit=%g (was %g)", w.cfg.ClampLimit, w.savedAttrs.Limit))
			}
		}
	}
}

// runaway returns the clampable container that dominated CPU over the
// last ClampWindowTicks: it must have consumed more than half the CPU
// charged to all clampables in the window. Ties and quiet windows
// return nil — the watchdog never guesses.
func (w *Watchdog) runaway() *rc.Container {
	var total sim.Duration
	sums := make([]sim.Duration, len(w.cfg.Clampable))
	for i := range w.cfg.Clampable {
		for _, d := range w.deltas[i] {
			sums[i] += d
		}
		total += sums[i]
	}
	if total <= 0 {
		return nil
	}
	best, bestIdx := sim.Duration(0), -1
	for i, s := range sums {
		if s > best {
			best, bestIdx = s, i
		}
	}
	if bestIdx < 0 || best*2 <= total {
		return nil
	}
	c := w.cfg.Clampable[bestIdx]
	if c.Destroyed() {
		return nil
	}
	return c
}

func (w *Watchdog) onTick(at sim.Time) {
	// Advance the CPU window ring.
	if len(w.cfg.Clampable) > 0 {
		for i, c := range w.cfg.Clampable {
			cur := c.Usage().CPU()
			w.deltas[i][w.histPos] = cur - w.prevCPU[i]
			w.prevCPU[i] = cur
		}
		w.histPos = (w.histPos + 1) % ClampWindowTicks
	}

	if !w.engaged || w.countdown < 0 {
		return
	}
	w.countdown--
	if w.countdown > 0 {
		return
	}
	w.restore(at)
}

func (w *Watchdog) restore(at sim.Time) {
	w.k.Police = w.savedPolice
	detail := fmt.Sprintf("restored policing enabled=%t syn_frac=%g", w.savedPolice.Enabled, w.savedPolice.SYNFrac)
	if w.clamped != nil {
		if !w.clamped.Destroyed() {
			_ = w.clamped.SetAttributes(w.savedAttrs)
		}
		detail += fmt.Sprintf("; unclamped %s limit=%g", w.clamped.Name(), w.savedAttrs.Limit)
		w.clamped = nil
	}
	w.engaged = false
	w.countdown = -1
	w.hasRestored = true
	w.restoredAtTick = w.m.Ticks()
	w.restores++
	w.m.Note(at, WatchdogCheckName, "(watchdog)", LevelOk, detail)
}
