// Package alert is the ops-grade alerting layer over the telemetry
// stream: a pluggable registry of sockstat-style checks that consume
// kernel state on the telemetry sampling tick and turn raw leading
// indicators (SYN-drop counter deltas, accept-queue saturation,
// protocol-backlog growth, run-queue stalls, disk-queue depth,
// per-container starvation) into a deterministic Warning/Critical event
// stream — the operator-visible view of the paper's Fig. 14 story, where
// receive livelock is otherwise discovered only after goodput has
// already collapsed.
//
// Every check value passes through a per-(check, target) state machine
// with hysteresis in both domains: time (a level is raised only after
// Raise consecutive ticks at or above its threshold, cleared only after
// Clear consecutive calm ticks) and value (once raised, a tick counts as
// calm only below ClearFrac× the threshold — a Schmitt trigger, so a
// signal hovering at the threshold holds its level instead of toggling).
// Clears additionally pass through a publication hold-down: the clear
// becomes visible only after the key survives FlapWindowTicks more, and
// a re-raise during the hold cancels it silently (damping) while
// doubling the key's calm requirement, so an oscillating signal
// converges to "stays raised" instead of event churn. A raise that still
// lands within FlapWindowTicks of a published clear escalates that
// doubling further; only a quick re-raise arriving with the penalty
// already at its cap — churn that survived every escalation — is counted
// as a flap, and the chaos harness asserts that count stays zero. The
// event stream is
// exported as byte-stable JSONL alongside the telemetry exporters and is
// asserted byte-identical across serial and parallel runs.
//
// The closed loop on top of the detectors is Watchdog (watchdog.go): on
// critical overload it tightens kernel admission control and clamps a
// runaway container, then restores the original settings with
// exponential backoff once the alert clears.
package alert

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"rescon/internal/sim"
)

// Level is an alert severity. Levels order: Ok < Warning < Critical.
type Level int

const (
	// LevelOk means the check's condition is not (or no longer) met.
	LevelOk Level = iota
	// LevelWarning is the first actionable severity.
	LevelWarning
	// LevelCritical is the overload severity the watchdog reacts to.
	LevelCritical
)

// String names the level as it appears in the JSONL stream.
func (l Level) String() string {
	switch l {
	case LevelOk:
		return "ok"
	case LevelWarning:
		return "warning"
	case LevelCritical:
		return "critical"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Hysteresis and flap-suppression defaults, in sampling ticks.
const (
	// DefaultRaiseTicks is how many consecutive ticks a value must sit at
	// or above a threshold before the level is raised.
	DefaultRaiseTicks = 2
	// DefaultClearTicks is how many consecutive calm ticks (value below
	// the warning threshold) clear a raised alert.
	DefaultClearTicks = 8
	// FlapWindowTicks is both the clear hold-down length and the flap
	// window: a published clear is delayed by this many calm ticks, and a
	// re-raise within this many ticks of a published clear doubles the
	// key's clear hysteresis — or, once the doubling is exhausted at
	// flapPenaltyCap, counts as one flap.
	FlapWindowTicks = 8
	// DefaultClearFrac is the value-domain hysteresis (Schmitt trigger):
	// once raised, a tick only counts as calm when the value drops below
	// ClearFrac × the threshold it crossed. A signal hovering at the
	// raise threshold therefore stays raised instead of flapping.
	DefaultClearFrac = 0.75
	// flapPenaltyCap bounds the clear-hysteresis multiplier a flapping
	// key can accumulate.
	flapPenaltyCap = 8
)

// Observation is one (target, value) pair produced by a check at one
// tick. Targets are principal names (never numeric container IDs, which
// are not stable across parallel runs); checks must return observations
// in a deterministic order.
type Observation struct {
	Target string
	Value  float64
	Detail string
}

// Check is one registered detector: a name, thresholds, hysteresis
// overrides and an Observe function called once per sampling tick.
// Counter-delta checks keep their previous counter readings in the
// Observe closure and return the per-tick delta as the value.
type Check struct {
	// Name identifies the check; registration rejects duplicates.
	Name string
	// Warn raises LevelWarning when the value sits at or above it for
	// Raise consecutive ticks. Must be positive.
	Warn float64
	// Crit raises LevelCritical the same way; zero disables the critical
	// level for this check.
	Crit float64
	// Raise and Clear override the hysteresis defaults when positive.
	Raise int
	Clear int
	// ClearFrac overrides DefaultClearFrac when positive: the fraction
	// of a crossed threshold the value must drop below to count as calm.
	ClearFrac float64
	// Observe returns this tick's observations. A target absent from the
	// returned slice is fed value zero (calm), so alerts on vanished
	// targets (e.g. a closed listen socket) clear normally.
	Observe func() []Observation
}

func (c Check) raiseTicks() int {
	if c.Raise > 0 {
		return c.Raise
	}
	return DefaultRaiseTicks
}

func (c Check) clearTicks() int {
	if c.Clear > 0 {
		return c.Clear
	}
	return DefaultClearTicks
}

func (c Check) clearFrac() float64 {
	if c.ClearFrac > 0 {
		return c.ClearFrac
	}
	return DefaultClearFrac
}

// Event is one alert-state transition (or a watchdog action note).
type Event struct {
	At     sim.Time
	Check  string
	Target string
	// Level and Prev are the new and previous severities.
	Level Level
	Prev  Level
	// Value is the observation that completed the transition; Threshold
	// is the boundary it crossed (the warning threshold for clears).
	Value     float64
	Threshold float64
	// Flap marks a raise that arrived within FlapWindowTicks of the
	// key's previous published clear with the suppression penalty already
	// exhausted — churn the escalating hold-down failed to absorb.
	Flap bool
	// Detail is the check's diagnostic for the observation.
	Detail string
}

type key struct{ check, target string }

// keyState is the per-(check, target) hysteresis state machine. It
// tracks two levels: the internal level the streaks drive directly, and
// the published level the event stream shows. Clears are published only
// after surviving a FlapWindowTicks hold-down; a re-raise during the
// hold cancels the clear silently (damping), so a brief dip never
// appears in the public stream at all.
type keyState struct {
	level     Level // internal, streak-driven
	published Level // operator-visible, event stream

	critStreak int // consecutive ticks value >= Crit
	warnStreak int // consecutive ticks value >= Warn
	coolStreak int // consecutive ticks value below the critical dead band
	calmStreak int // consecutive ticks value below the warning dead band

	lastSeenTick uint64

	// clear hold-down (publication damping)
	pendingClear bool
	pendingSince uint64

	// flap bookkeeping
	hasCleared    bool
	clearedAtTick uint64
	penalty       int // clear-hysteresis multiplier (flap suppression)
	damped        int

	// self-check bookkeeping (missed-detection consistency)
	maxWarnStreak int
	maxCritStreak int
	warnedEver    bool
	critEver      bool
}

// Monitor owns the check registry, the per-key state machines and the
// event stream. It is driven by Tick — normally subscribed to the
// telemetry collector's sampling hook — and, like the rest of the
// simulation, lives on a single goroutine.
type Monitor struct {
	checks []Check
	byName map[string]int // name -> index in checks

	states map[key]*keyState
	order  []key // insertion order, for deterministic iteration

	events  []Event
	onEvent []func(Event)
	onTick  []func(at sim.Time)

	ticks  uint64
	flaps  uint64
	damped uint64

	// run identity for the JSONL header.
	seed       int64
	mode       string
	intervalNs int64
}

// New returns an empty monitor; register checks with Register and drive
// it with Tick (or let Attach wire both).
func New() *Monitor {
	return &Monitor{
		byName: make(map[string]int),
		states: make(map[key]*keyState),
	}
}

// SetRun stamps the monitor with the run's identity (engine seed, kernel
// mode, sampling interval) for the JSONL header.
func (m *Monitor) SetRun(seed int64, mode string, interval sim.Duration) {
	m.seed, m.mode, m.intervalNs = seed, mode, int64(interval)
}

// Register adds a check to the registry. It rejects nil Observe
// functions, non-positive warning thresholds, critical thresholds below
// the warning threshold, and — sockstat-style — duplicate names: the
// earlier registration always wins and the duplicate is reported, never
// silently overwritten.
func (m *Monitor) Register(c Check) error {
	if c.Name == "" {
		return fmt.Errorf("alert: check with empty name")
	}
	if c.Observe == nil {
		return fmt.Errorf("alert: check %q has no Observe function", c.Name)
	}
	if c.Warn <= 0 {
		return fmt.Errorf("alert: check %q warning threshold %v must be positive", c.Name, c.Warn)
	}
	if c.Crit != 0 && c.Crit < c.Warn {
		return fmt.Errorf("alert: check %q critical threshold %v below warning %v", c.Name, c.Crit, c.Warn)
	}
	if _, dup := m.byName[c.Name]; dup {
		return fmt.Errorf("alert: duplicate check name %q", c.Name)
	}
	m.byName[c.Name] = len(m.checks)
	m.checks = append(m.checks, c)
	return nil
}

// MustRegister is Register that panics on an invalid check; convenient
// for the built-in battery, whose names are unique by construction.
func (m *Monitor) MustRegister(c Check) {
	if err := m.Register(c); err != nil {
		panic(err)
	}
}

// OnEvent subscribes fn to every state-transition event, called
// synchronously as the transition is recorded (watchdog responders
// subscribe here). Notes injected with Note do not fire it.
func (m *Monitor) OnEvent(fn func(Event)) {
	m.onEvent = append(m.onEvent, fn)
}

// OnTick subscribes fn to run at the end of every Tick, after all
// checks have been evaluated (the watchdog's restore countdown lives
// here).
func (m *Monitor) OnTick(fn func(at sim.Time)) {
	m.onTick = append(m.onTick, fn)
}

// Ticks returns how many sampling ticks the monitor has consumed.
func (m *Monitor) Ticks() uint64 { return m.ticks }

// Flaps returns how many raise-after-recent-clear transitions arrived
// with the suppression penalty already at its cap — oscillation that
// escaped both damping and every escalation of the hold-down.
func (m *Monitor) Flaps() uint64 { return m.flaps }

// Damped returns how many raise/clear oscillations the hold-down
// absorbed silently — dips that never reached the published stream.
func (m *Monitor) Damped() uint64 { return m.damped }

// Events returns the recorded event stream in emission order.
func (m *Monitor) Events() []Event { return m.events }

// Current returns the present published level of (check, target) — the
// operator-visible level, which lags the internal one through the clear
// hold-down. LevelOk if the key has never been observed.
func (m *Monitor) Current(check, target string) Level {
	if st, ok := m.states[key{check, target}]; ok {
		return st.published
	}
	return LevelOk
}

// Worst returns the highest level any key has ever reached.
func (m *Monitor) Worst() Level {
	worst := LevelOk
	for _, k := range m.order {
		st := m.states[k]
		if st.critEver {
			return LevelCritical
		}
		if st.warnedEver {
			worst = LevelWarning
		}
	}
	return worst
}

// FirstAtSince returns the time of the first event at or above level
// that fired at or after since, and whether one exists. Watchdog notes
// (Check "watchdog") are skipped: they are reactions, not detections.
func (m *Monitor) FirstAtSince(level Level, since sim.Time) (sim.Time, bool) {
	for _, e := range m.events {
		if e.Check == WatchdogCheckName {
			continue
		}
		if e.Level >= level && e.At >= since {
			return e.At, true
		}
	}
	return 0, false
}

// Tick consumes one sampling tick: every registered check observes its
// targets, each observation advances its key's state machine, and keys a
// check stopped reporting are fed calm zeros so they can clear. Tick
// hooks run last.
func (m *Monitor) Tick(at sim.Time) {
	m.ticks++
	for ci := range m.checks {
		c := &m.checks[ci]
		for _, ob := range c.Observe() {
			m.feed(at, c, ob)
		}
		// Targets that vanished from the check's output decay as calm.
		for _, k := range m.order {
			if k.check != c.Name {
				continue
			}
			if st := m.states[k]; st.lastSeenTick != m.ticks {
				m.feed(at, c, Observation{Target: k.target})
			}
		}
	}
	for _, fn := range m.onTick {
		fn(at)
	}
}

// feed advances one key's state machine with this tick's value and
// emits an event if a level transition completes.
func (m *Monitor) feed(at sim.Time, c *Check, ob Observation) {
	k := key{c.Name, ob.Target}
	st, ok := m.states[k]
	if !ok {
		st = &keyState{penalty: 1}
		m.states[k] = st
		m.order = append(m.order, k)
	}
	st.lastSeenTick = m.ticks

	v := ob.Value
	critOn := c.Crit > 0
	frac := c.clearFrac()
	// Value-domain hysteresis: raising needs v at or above a threshold,
	// calming needs v below ClearFrac× that threshold. In between the
	// value is in the dead band — no streak advances, the level holds.
	if critOn && v >= c.Crit {
		st.critStreak++
		st.coolStreak = 0
	} else {
		st.critStreak = 0
		if !critOn || v < c.Crit*frac {
			st.coolStreak++
		} else {
			st.coolStreak = 0
		}
	}
	if v >= c.Warn {
		st.warnStreak++
		st.calmStreak = 0
	} else {
		st.warnStreak = 0
		if v < c.Warn*frac {
			st.calmStreak++
		} else {
			st.calmStreak = 0
		}
	}
	if st.warnStreak > st.maxWarnStreak {
		st.maxWarnStreak = st.warnStreak
	}
	if st.critStreak > st.maxCritStreak {
		st.maxCritStreak = st.critStreak
	}

	raise := c.raiseTicks()
	clear := c.clearTicks() * st.penalty

	want := st.level
	threshold := c.Warn
	switch {
	case critOn && st.critStreak >= raise:
		want, threshold = LevelCritical, c.Crit
	case st.level == LevelOk && st.warnStreak >= raise:
		want, threshold = LevelWarning, c.Warn
	case st.level == LevelCritical && st.coolStreak >= clear && v >= c.Warn*frac:
		// Still warm but persistently below critical: demote.
		want, threshold = LevelWarning, c.Warn
	case st.level > LevelOk && st.calmStreak >= clear:
		want, threshold = LevelOk, c.Warn
	}
	if want != st.level {
		st.level = want
		m.resolve(at, c, st, ob, want, threshold)
	}

	// Clear hold-down survival: the internal clear becomes public only
	// after the key stays calm through a full flap window.
	if st.pendingClear && st.level == LevelOk && m.ticks-st.pendingSince >= FlapWindowTicks {
		st.pendingClear = false
		st.hasCleared = true
		st.clearedAtTick = m.ticks
		m.publish(at, c.Name, st, ob, LevelOk, c.Warn, false)
	}
}

// resolve maps an internal level transition onto the published stream:
// clears enter the hold-down instead of publishing, re-raises during a
// hold-down cancel it silently (damping), and everything else publishes
// immediately with flap accounting.
func (m *Monitor) resolve(at sim.Time, c *Check, st *keyState, ob Observation, want Level, threshold float64) {
	if want == LevelOk {
		if st.published > LevelOk && !st.pendingClear {
			st.pendingClear = true
			st.pendingSince = m.ticks
		}
		return
	}
	if st.pendingClear {
		// The dip never became public. Cancel the pending clear, count
		// the damped cycle, and lengthen this key's calm requirement so
		// an oscillating signal converges to "stays raised".
		st.pendingClear = false
		if want >= st.published {
			st.damped++
			m.damped++
			if st.penalty < flapPenaltyCap {
				st.penalty *= 2
			}
		}
	}
	if want == st.published {
		return
	}
	flap := false
	if st.published == LevelOk {
		if st.hasCleared && m.ticks-st.clearedAtTick <= FlapWindowTicks {
			// A raise right after a published clear. While the penalty
			// still has headroom this is suppression at work: escalate
			// the calm requirement so the next clear is more
			// conservative, and publish a normal raise. Only a quick
			// re-raise that arrives with the penalty already at its cap
			// — churn that survived every escalation — counts as a flap.
			if st.penalty < flapPenaltyCap {
				st.penalty *= 2
			} else {
				flap = true
				m.flaps++
			}
		} else {
			st.penalty = 1
		}
	}
	m.publish(at, c.Name, st, ob, want, threshold, flap)
}

// publish appends a transition of the key's public level to the event
// stream and fires the event hooks.
func (m *Monitor) publish(at sim.Time, check string, st *keyState, ob Observation, level Level, threshold float64, flap bool) {
	ev := Event{
		At: at, Check: check, Target: ob.Target,
		Level: level, Prev: st.published,
		Value: ob.Value, Threshold: threshold, Flap: flap, Detail: ob.Detail,
	}
	st.published = level
	if level >= LevelWarning {
		st.warnedEver = true
	}
	if level == LevelCritical {
		st.critEver = true
	}
	m.events = append(m.events, ev)
	for _, fn := range m.onEvent {
		fn(ev)
	}
}

// WatchdogCheckName is the pseudo-check name watchdog action notes are
// filed under in the event stream.
const WatchdogCheckName = "watchdog"

// Note appends an out-of-band event to the stream — watchdog actions
// use it so the JSONL shows the full detection→reaction→restore loop.
// Notes bypass the state machines (no hysteresis, no flap accounting)
// and do not fire OnEvent subscribers.
func (m *Monitor) Note(at sim.Time, check, target string, level Level, detail string) {
	m.events = append(m.events, Event{
		At: at, Check: check, Target: target,
		Level: level, Prev: level, Detail: detail,
	})
}

// SelfCheck audits the monitor's own bookkeeping against the emitted
// stream: any key that sustained a threshold long enough to raise must
// have emitted the corresponding event. It returns "" when consistent,
// or a description of the first missed detection — the chaos harness
// wires this as the "missed-detection" invariant.
func (m *Monitor) SelfCheck() string {
	for _, k := range m.order {
		st := m.states[k]
		c := m.checks[m.byName[k.check]]
		raise := c.raiseTicks()
		if c.Crit > 0 && st.maxCritStreak >= raise && !st.critEver {
			return fmt.Sprintf("check %q target %q sustained critical for %d tick(s) (raise=%d) but no critical event fired",
				k.check, k.target, st.maxCritStreak, raise)
		}
		if st.maxWarnStreak >= raise && !st.warnedEver {
			return fmt.Sprintf("check %q target %q sustained warning for %d tick(s) (raise=%d) but no warning event fired",
				k.check, k.target, st.maxWarnStreak, raise)
		}
	}
	return ""
}

// jstr renders a JSON string with deterministic escaping.
func jstr(s string) string { return strconv.Quote(s) }

// jnum renders a float deterministically: integral values print without
// an exponent or trailing zeros, others use strconv's shortest form.
func jnum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSONL writes the alert stream as one JSON object per line: a
// meta header (run identity, check registry, totals) followed by every
// event in emission order. Encoding is hand-rolled so field order and
// number formatting are byte-stable, matching the telemetry exporters.
func (m *Monitor) WriteJSONL(w io.Writer) error {
	if m == nil {
		return nil
	}
	var b strings.Builder
	names := make([]string, len(m.checks))
	for i, c := range m.checks {
		names[i] = jstr(c.Name)
	}
	fmt.Fprintf(&b, `{"type":"meta","seed":%d,"mode":%s,"interval_ns":%d,"checks":[%s],"ticks":%d,"events_total":%d,"flaps":%d,"damped":%d}`+"\n",
		m.seed, jstr(m.mode), m.intervalNs, strings.Join(names, ","), m.ticks, len(m.events), m.flaps, m.damped)
	for _, e := range m.events {
		fmt.Fprintf(&b, `{"type":"alert","at_ns":%d,"check":%s,"target":%s,"level":%s,"prev":%s,"value":%s,"threshold":%s,"flap":%t,"detail":%s}`+"\n",
			int64(e.At), jstr(e.Check), jstr(e.Target), jstr(e.Level.String()), jstr(e.Prev.String()),
			jnum(e.Value), jnum(e.Threshold), e.Flap, jstr(e.Detail))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
