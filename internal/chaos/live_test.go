package chaos

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestGenerateLiveDeterministicAndValid(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		a, b := GenerateLive(seed), GenerateLive(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: GenerateLive not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
		if !a.Tenants[0].Calm || a.Tenants[0].Limit != 0 {
			t.Fatalf("seed %d: first tenant must be the unlimited calm victim, got %+v", seed, a.Tenants[0])
		}
	}
	if reflect.DeepEqual(GenerateLive(1), GenerateLive(2)) {
		t.Fatal("distinct seeds generated identical scenarios")
	}
}

func TestLiveScenarioValidate(t *testing.T) {
	good := GenerateLive(1)
	bad := []func(sc *LiveScenario){
		func(sc *LiveScenario) { sc.Window = 0 },
		func(sc *LiveScenario) { sc.HostileRounds, sc.CalmRounds = 0, 0 },
		func(sc *LiveScenario) { sc.Grace = -1 },
		func(sc *LiveScenario) { sc.Tenants = nil },
		func(sc *LiveScenario) { sc.Tenants[1].Name = sc.Tenants[0].Name },
		func(sc *LiveScenario) { sc.Tenants[0].Limit = 1.5 },
		func(sc *LiveScenario) { sc.Faults.PanicRate = 2 },
		func(sc *LiveScenario) { sc.Breakers = &LiveBreakerSpec{OpenAfter: 0} },
		func(sc *LiveScenario) {
			sc.Watchdog = &LiveWatchdogSpec{ClampLimit: 0, BackoffTicks: 1, MaxBackoffTicks: 1}
		},
		func(sc *LiveScenario) {
			sc.Watchdog = &LiveWatchdogSpec{ClampLimit: 0.5, BackoffTicks: 4, MaxBackoffTicks: 2}
		},
	}
	for i, mutate := range bad {
		sc := GenerateLive(1)
		sc.Tenants = append([]LiveTenantSpec(nil), good.Tenants...)
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted a broken scenario", i)
		}
	}
}

// TestRunLiveCleanAndConserving runs a handful of generated scenarios
// and checks the structural properties of a clean result: the ledgers
// balance and the double-run digest is stable.
func TestRunLiveCleanAndConserving(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		sc := GenerateLive(seed)
		r, err := RunLiveChecked(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Failed() {
			t.Fatalf("seed %d: violations: %v", seed, r.Violations)
		}
		var issued, accounted uint64
		for _, led := range r.Tenants {
			issued += led.Issued
			accounted += led.Served + led.Shed + led.Panicked
		}
		if issued == 0 || issued != accounted {
			t.Fatalf("seed %d: ledger issued=%d accounted=%d", seed, issued, accounted)
		}
	}
}

// TestRunLiveClosedLoopEngages pins one seed whose scenario drives the
// watchdog through a full clamp/restore cycle — the harness must
// actually exercise the loop it claims to fuzz.
func TestRunLiveClosedLoopEngages(t *testing.T) {
	// Seed 5 draws a watchdog and a hog mix that engages it (asserted
	// here so a generator change that silently loses the coverage fails).
	sc := GenerateLive(5)
	if sc.Watchdog == nil {
		t.Fatal("seed 5 no longer draws a watchdog; pick a new pinned seed")
	}
	r, err := RunLive(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if r.Engagements == 0 || r.Restores != r.Engagements {
		t.Fatalf("closed loop not exercised: engagements=%d restores=%d", r.Engagements, r.Restores)
	}
}

func TestLiveSmokeClean(t *testing.T) {
	if err := LiveSmoke(10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLiveScenarioRoundTrip(t *testing.T) {
	sc := GenerateLive(42)
	path := filepath.Join(t.TempDir(), "live-repro-42.json")
	if err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLiveScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Fatalf("round trip changed the scenario:\nwrote %+v\nread  %+v", sc, got)
	}
	if _, err := LoadLiveScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestShrinkLiveKeepsCleanScenario: when no candidate reproduces the
// class, ShrinkLive must return the scenario unchanged — it never
// "shrinks" into a different failure.
func TestShrinkLiveKeepsCleanScenario(t *testing.T) {
	sc := GenerateLive(3)
	got := ShrinkLive(sc, "live-starvation")
	if !reflect.DeepEqual(sc, got) {
		t.Fatalf("shrinking a clean scenario changed it:\n%+v\n%+v", sc, got)
	}
}

func TestClassifyLiveClasses(t *testing.T) {
	cases := map[string]string{
		"live-conservation: issued 10 != served 9 + shed 0 + panicked 0":                     "live-conservation",
		"live-leak: drain clean=false leaked=1 inflight=1":                                   "live-leak",
		"live-oscillation: watchdog engaged 2 time(s) during the settled calm phase":         "live-oscillation",
		"live-starvation: unlimited calm tenant \"good\" issued 8 request(s), none admitted": "live-starvation",
		"live determinism: run hashes differ: 0000000000000001 vs 0000000000000002":          "determinism",
	}
	for v, want := range cases {
		if got := Classify(v); got != want {
			t.Errorf("Classify(%q) = %q, want %q", v, got, want)
		}
	}
}
