package chaos

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"rescon/internal/alert"
	"rescon/internal/fault"
	"rescon/internal/rc"
	"rescon/internal/rcruntime"
	"rescon/internal/rebalance"
	"rescon/internal/sim"
)

// The live harness fuzzes the *runtime* closed loop — circuit breakers,
// monitor check battery, watchdog clamp/restore — the way the classic
// harness fuzzes the simulated kernel. A LiveScenario draws a tenant
// mix (one well-behaved population plus hostile hogs), a request-level
// fault schedule (handler stalls and panics), and the defense knobs;
// RunLive drives rcruntime.Middleware directly through
// httptest.ResponseRecorder on a lockstep virtual clock — no sockets,
// no goroutines — so every run is a pure function of the scenario and
// a sweep is cheap enough to burn thousands of seeds.
//
// The invariants it hunts are the failure modes of a self-defending
// server:
//
//   - live-conservation: every request the driver issued must appear in
//     exactly one of the runtime's books (served, shed, breaker,
//     drain, panic), and the telemetry stream must agree with Stats.
//   - live-leak: after the end-of-run drain, the in-flight gauge must
//     be zero and the drain report clean.
//   - live-oscillation: once the hostile phase ends and the calm phase
//     has absorbed the alert hysteresis, the watchdog must not engage
//     again, and every clamp must have been restored by the end — a
//     watchdog that flips policy against a healthy server, or leaves a
//     tenant clamped forever, is itself the outage.
//   - live-starvation: a well-behaved unlimited tenant must never be
//     refused admission entirely — the defenses may slow the hostile
//     tenant, never starve the victim they exist to protect.
//   - determinism: RunLiveChecked re-runs the scenario and compares the
//     full digests (counters, alert stream, violations).

// Live generator fork labels, continuing scenario.go's sequence (8 is
// the sim rebalance axis).
const (
	labelLiveTenants   = 5
	labelLiveFaults    = 6
	labelLiveDefense   = 7
	labelLiveRebalance = 9
)

// liveOscillationGrace is how many calm rounds the harness grants the
// alert pipeline to absorb in-flight criticals before a fresh watchdog
// engagement counts as oscillation. It covers the raise hysteresis plus
// one flap window of the trailing hostile ticks.
const liveOscillationGrace = 12

// liveShrinkMinRounds floors the round counts during shrinking: below a
// handful of rounds the enforcement window never rolls and the
// scenario stops meaning anything.
const (
	liveShrinkMinHostile = 2
	liveShrinkMinCalm    = 8
)

// LiveTenantSpec is one tenant population of a live scenario. Calm
// tenants issue in every round (they are the victims the defenses must
// protect); hostile tenants issue only during the hostile phase.
type LiveTenantSpec struct {
	Name string `json:"name"`
	// Limit is the tenant's CPU limit as a fraction of the window
	// (0 = unlimited; unlimited hogs are what the watchdog must clamp).
	Limit float64 `json:"limit,omitempty"`
	// Requests per round and the virtual CPU cost of each.
	Requests int          `json:"requests"`
	Cost     sim.Duration `json:"cost"`
	// Calm marks the well-behaved population.
	Calm bool `json:"calm,omitempty"`
}

// LiveFaultSpec is the request-level slice of fault.LiveConfig — the
// classes that exist without a real socket. Connection resets and read
// stalls need the wire; the in-process driver draws only fates that
// fire inside the handler stack.
type LiveFaultSpec struct {
	StallRate float64      `json:"stall_rate,omitempty"`
	StallFor  sim.Duration `json:"stall_for,omitempty"`
	PanicRate float64      `json:"panic_rate,omitempty"`
}

// LiveBreakerSpec enables per-tenant circuit breakers.
type LiveBreakerSpec struct {
	OpenAfter int `json:"open_after"`
}

// LiveRebalanceSpec arms the adaptive rebalancer on the live runtime: a
// CPULimit pool over the hostile tenants' window budgets, actuated
// through Enforcer.Sync off the monitor tick, arbitrated against the
// watchdog when one is configured. Mutation plants a controller bug
// (same seam as the sim Scenario.Mutation rebalance values, minus the
// "rebalance-" prefix): "oscillate", "no-disarm", "leak", "no-floor".
type LiveRebalanceSpec struct {
	CooldownTicks int    `json:"cooldown_ticks,omitempty"`
	OscMaxFlips   int    `json:"osc_max_flips,omitempty"`
	CalmTicks     int    `json:"calm_ticks,omitempty"`
	Mutation      string `json:"mutation,omitempty"`
}

// LiveWatchdogSpec enables the monitor + watchdog closed loop.
type LiveWatchdogSpec struct {
	ClampLimit      float64 `json:"clamp_limit"`
	BackoffTicks    int     `json:"backoff_ticks"`
	MaxBackoffTicks int     `json:"max_backoff_ticks"`
	// ShedCrit is the monitor's critical sheds-per-tick threshold,
	// sized by the generator to the hog population so the loop engages.
	ShedCrit float64 `json:"shed_crit"`
	// Clear is the alert hysteresis override; the generator keeps it
	// small so the calm phase provably outlasts the worst-case restore.
	Clear int `json:"clear"`
}

// LiveScenario is one seeded live-runtime scenario: the governed
// middleware stack under a tenant mix, fault schedule and defense
// configuration, all drawn from Seed.
type LiveScenario struct {
	Seed          uint64             `json:"seed"`
	Window        sim.Duration       `json:"window"`
	HostileRounds int                `json:"hostile_rounds"`
	CalmRounds    int                `json:"calm_rounds"`
	Think         sim.Duration       `json:"think"`
	Grace         sim.Duration       `json:"grace"`
	Tenants       []LiveTenantSpec   `json:"tenants"`
	Faults        LiveFaultSpec      `json:"faults"`
	Breakers      *LiveBreakerSpec   `json:"breakers,omitempty"`
	Watchdog      *LiveWatchdogSpec  `json:"watchdog,omitempty"`
	Rebalance     *LiveRebalanceSpec `json:"rebalance,omitempty"`
}

// Validate rejects specs the runner cannot build.
func (sc LiveScenario) Validate() error {
	if sc.Window <= 0 {
		return fmt.Errorf("chaos: live scenario window %v must be positive", sc.Window)
	}
	if sc.HostileRounds < 0 || sc.CalmRounds < 0 || sc.HostileRounds+sc.CalmRounds == 0 {
		return fmt.Errorf("chaos: live scenario needs rounds (hostile %d, calm %d)", sc.HostileRounds, sc.CalmRounds)
	}
	if sc.Grace < 0 {
		return fmt.Errorf("chaos: negative grace %v", sc.Grace)
	}
	if len(sc.Tenants) == 0 {
		return fmt.Errorf("chaos: live scenario has no tenants")
	}
	seen := make(map[string]bool, len(sc.Tenants))
	for i, t := range sc.Tenants {
		if t.Name == "" || seen[t.Name] {
			return fmt.Errorf("chaos: tenant %d: empty or duplicate name %q", i, t.Name)
		}
		seen[t.Name] = true
		if t.Requests < 0 || t.Cost < 0 || t.Limit < 0 || t.Limit > 1 {
			return fmt.Errorf("chaos: tenant %q: bad requests/cost/limit (%d, %v, %g)", t.Name, t.Requests, t.Cost, t.Limit)
		}
	}
	for _, r := range []float64{sc.Faults.StallRate, sc.Faults.PanicRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("chaos: fault rate %g outside [0,1]", r)
		}
	}
	if sc.Breakers != nil && sc.Breakers.OpenAfter < 1 {
		return fmt.Errorf("chaos: breaker open-after %d must be >= 1", sc.Breakers.OpenAfter)
	}
	if w := sc.Watchdog; w != nil {
		if w.ClampLimit <= 0 || w.ClampLimit > 1 {
			return fmt.Errorf("chaos: watchdog clamp limit %g outside (0,1]", w.ClampLimit)
		}
		if w.BackoffTicks < 1 || w.MaxBackoffTicks < w.BackoffTicks {
			return fmt.Errorf("chaos: watchdog backoff %d/%d invalid", w.BackoffTicks, w.MaxBackoffTicks)
		}
	}
	if rb := sc.Rebalance; rb != nil {
		switch rb.Mutation {
		case "", "oscillate", "no-disarm", "leak", "no-floor":
		default:
			return fmt.Errorf("chaos: unknown live rebalance mutation %q", rb.Mutation)
		}
		limited := 0
		for _, t := range sc.Tenants {
			if !t.Calm && t.Limit > 0 {
				limited++
			}
		}
		if limited < 2 {
			return fmt.Errorf("chaos: live rebalance needs at least two limited hostile tenants, got %d", limited)
		}
	}
	return nil
}

// GenerateLive draws a live scenario from a seed. The shape is always
// one unlimited well-behaved tenant (the victim the starvation
// invariant watches) plus 1–3 hogs; faults and each defense layer are
// enabled independently so the sweep covers undefended, breaker-only,
// watchdog-only and fully defended stacks.
func GenerateLive(seed uint64) LiveScenario {
	top := sim.NewRNG(int64(seed))
	rt := top.Fork(labelLiveTenants)
	sc := LiveScenario{
		Seed:          seed,
		Window:        rt.Uniform(50*sim.Millisecond, 150*sim.Millisecond),
		HostileRounds: 8 + rt.Intn(17),
		CalmRounds:    44 + rt.Intn(13),
		Think:         rt.Uniform(sim.Millisecond/2, 2*sim.Millisecond),
		Grace:         sim.Second,
	}
	sc.Tenants = append(sc.Tenants, LiveTenantSpec{
		Name:     "good",
		Requests: 2 + rt.Intn(5),
		Cost:     rt.Uniform(sim.Millisecond, 3*sim.Millisecond),
		Calm:     true,
	})
	hogReqs := 0
	for i, n := 0, 1+rt.Intn(3); i < n; i++ {
		t := LiveTenantSpec{
			Name:     fmt.Sprintf("hog%d", i),
			Requests: 4 + rt.Intn(13),
			Cost:     rt.Uniform(4*sim.Millisecond, 15*sim.Millisecond),
		}
		if rt.Float64() < 0.3 {
			// A pre-limited hog: the enforcer sheds it without watchdog help.
			t.Limit = 0.2 + 0.3*rt.Float64()
		}
		hogReqs += t.Requests
		sc.Tenants = append(sc.Tenants, t)
	}

	rf := top.Fork(labelLiveFaults)
	if rf.Float64() < 0.5 {
		sc.Faults.StallRate = 0.15 * rf.Float64()
		sc.Faults.StallFor = rf.Uniform(5*sim.Millisecond, 30*sim.Millisecond)
	}
	if rf.Float64() < 0.5 {
		sc.Faults.PanicRate = 0.08 * rf.Float64()
	}

	// The rebalance axis: arm the controller on half the seeds whose
	// tenant draw left at least two hogs (its CPULimit pool governs the
	// hostile budgets; the calm victim stays unlimited so the
	// starvation invariant keeps watching it). Hogs get forced window
	// budgets so the pool has a conserved total to govern.
	rb := top.Fork(labelLiveRebalance)
	if hogs := len(sc.Tenants) - 1; hogs >= 2 && rb.Float64() < 0.5 {
		for i := range sc.Tenants {
			if !sc.Tenants[i].Calm {
				sc.Tenants[i].Limit = 0.15 + 0.25*rb.Float64()
			}
		}
		sc.Rebalance = &LiveRebalanceSpec{
			CooldownTicks: 1 + rb.Intn(4),
			OscMaxFlips:   4 + rb.Intn(5),
		}
	}

	rd := top.Fork(labelLiveDefense)
	if rd.Float64() < 0.8 {
		sc.Breakers = &LiveBreakerSpec{OpenAfter: 2 + rd.Intn(5)}
	}
	if rd.Float64() < 0.8 {
		backoff := 2 + rd.Intn(3)
		sc.Watchdog = &LiveWatchdogSpec{
			ClampLimit:      0.05 + 0.25*rd.Float64(),
			BackoffTicks:    backoff,
			MaxBackoffTicks: 4 * backoff,
			// Half the hog population's per-tick refusals sustain
			// criticality through the hostile phase; Clear=2 bounds the
			// worst-case restore (clear + flap penalty + hold-down +
			// backoff) well inside the generated calm phase.
			ShedCrit: maxf(2, float64(hogReqs)/2),
			Clear:    2,
		}
	}
	return sc
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// LiveTenantResult is one tenant's client-side ledger: everything the
// driver issued for it and where each request ended up.
type LiveTenantResult struct {
	Issued, Served, Shed, Panicked uint64
}

// LiveResult is the outcome of one live scenario run.
type LiveResult struct {
	Scenario   LiveScenario
	Violations []string
	Hash       uint64

	Tenants               map[string]LiveTenantResult
	Served, Shed          uint64
	BreakerShed, Panics   uint64
	Engagements, Restores uint64
	RebalanceSteps        uint64
	RebalanceFreezes      uint64
	RebalanceDisarms      uint64
	Faults                fault.LiveStats
	Elapsed               time.Duration
}

// Failed reports whether any invariant was violated.
func (r *LiveResult) Failed() bool { return len(r.Violations) > 0 }

// FailsWith reports whether any violation belongs to the given class.
func (r *LiveResult) FailsWith(class string) bool {
	for _, v := range r.Violations {
		if Classify(v) == class {
			return true
		}
	}
	return false
}

// liveSink tallies RequestEvents by cause for the conservation check.
type liveSink struct {
	mu                                   sync.Mutex
	served, shed, breaker, drain, panics uint64
}

func (s *liveSink) RecordRequest(ev rcruntime.RequestEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Cause {
	case rcruntime.CauseShed:
		s.shed++
	case rcruntime.CauseBreaker:
		s.breaker++
	case rcruntime.CauseDrain:
		s.drain++
	case rcruntime.CausePanic:
		s.panics++
		s.served++
	default:
		s.served++
	}
}

// liveClock is the injected rcruntime.Clock: Sleep advances virtual
// time instead of waiting, so a whole scenario runs in microseconds of
// wall clock and every timestamp is deterministic.
type liveClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *liveClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *liveClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// RunLive executes the scenario once against the real middleware stack
// and returns its result. An error means the scenario could not be
// built — distinct from a clean run that found violations.
func RunLive(sc LiveScenario) (*LiveResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	clk := &liveClock{}
	inj := fault.NewLive(int64(sc.Seed), fault.LiveConfig{
		HandlerStallRate: sc.Faults.StallRate,
		HandlerStallFor:  time.Duration(sc.Faults.StallFor),
		PanicRate:        sc.Faults.PanicRate,
	}, clk)
	sink := &liveSink{}

	root := rc.MustNew(nil, rc.FixedShare, "livefuzz", rc.Attributes{})
	bound := make(map[string]*rc.Container, len(sc.Tenants))
	var hogs []*rc.Container
	for _, t := range sc.Tenants {
		c, err := rc.New(root, rc.FixedShare, t.Name, rc.Attributes{Limit: t.Limit})
		if err != nil {
			return nil, fmt.Errorf("chaos: tenant %q: %w", t.Name, err)
		}
		bound[t.Name] = c
		if !t.Calm {
			hogs = append(hogs, c)
		}
	}

	opts := []rcruntime.Option{
		rcruntime.WithClock(clk),
		rcruntime.WithTelemetrySink(sink),
		rcruntime.WithBinder(rcruntime.HeaderBinder("X-RC-Tenant", bound, nil)),
	}
	if sc.Breakers != nil {
		opts = append(opts, rcruntime.WithBreakers(rcruntime.BreakerConfig{
			OpenAfter: sc.Breakers.OpenAfter,
		}))
	}
	rt, err := rcruntime.NewRuntime(rcruntime.Config{
		Root:     root,
		Window:   time.Duration(sc.Window),
		MaxDelay: rcruntime.NoDelay,
	}, opts...)
	if err != nil {
		return nil, err
	}

	var mon *rcruntime.Monitor
	var wd *rcruntime.Watchdog
	if sc.Watchdog != nil {
		am := alert.New()
		am.SetRun(int64(sc.Seed), "livefuzz", sc.Window)
		mon, err = rcruntime.AttachMonitor(rt, am, rcruntime.MonitorConfig{
			ShedWarn: sc.Watchdog.ShedCrit / 2,
			ShedCrit: sc.Watchdog.ShedCrit,
			Clear:    sc.Watchdog.Clear,
			Tenants:  hogs,
		})
		if err != nil {
			return nil, err
		}
		wd = rcruntime.AttachWatchdog(mon, rcruntime.WatchdogConfig{
			ClampLimit:      sc.Watchdog.ClampLimit,
			BackoffTicks:    sc.Watchdog.BackoffTicks,
			MaxBackoffTicks: sc.Watchdog.MaxBackoffTicks,
			Clampable:       hogs,
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		if cost, err := time.ParseDuration(r.Header.Get("X-Cost")); err == nil && cost > 0 {
			clk.Sleep(cost) // burn virtual CPU
		}
		fmt.Fprintln(w, "ok")
	})
	handler := rt.Middleware(inj.Middleware(mux))

	res := &LiveResult{Scenario: sc, Tenants: make(map[string]LiveTenantResult, len(sc.Tenants))}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// The adaptive rebalancer: a CPULimit pool over the limited hostile
	// tenants, ticked off the monitor (created here when no watchdog
	// scenario already made one). The watchdog was attached first, so
	// its engage lands before the controller's freeze decision on the
	// same tick — the arbitration the sim harness exercises, against the
	// real enforcer.
	var ctrl *rebalance.Controller
	auditRebalance := func() {}
	if spec := sc.Rebalance; spec != nil {
		if mon == nil {
			am := alert.New()
			am.SetRun(int64(sc.Seed), "livefuzz", sc.Window)
			mon, err = rcruntime.AttachMonitor(rt, am, rcruntime.MonitorConfig{Tenants: hogs})
			if err != nil {
				return nil, err
			}
		}
		cfg := rebalance.Config{
			CooldownTicks: spec.CooldownTicks,
			OscMaxFlips:   spec.OscMaxFlips,
			CalmTicks:     spec.CalmTicks,
		}
		thrash := isThrashMutation("rebalance-" + spec.Mutation)
		if thrash {
			cfg.StepFrac = 1
			cfg.NoCooldown = true
			cfg.NoDeadband = true
			cfg.OscWindowTicks = 16
			cfg.OscMaxFlips = 4
			cfg.DemandWindowTicks = 1
		}
		switch spec.Mutation {
		case "no-disarm":
			cfg.DisableDisarm = true
		case "no-floor":
			cfg.IgnoreFloors = true
			cfg.DisableDisarm = true
		case "leak":
			// A leak only manifests on steps; strip the deadband so the
			// small organic imbalances of a live run produce them.
			cfg.LeakUnits = 1
			cfg.NoDeadband = true
		}
		if wd != nil {
			cfg.Freeze = []rebalance.Freezer{wd}
		}
		ctrl, err = rcruntime.AttachRebalancer(mon, cfg)
		if err != nil {
			return nil, err
		}
		var members []rebalance.Member
		poolIdx := 0
		for _, t := range sc.Tenants {
			if t.Calm || t.Limit <= 0 {
				continue
			}
			c := bound[t.Name]
			demand := func() int64 { return int64(c.Usage().CPU()) }
			if thrash {
				i, cum := uint64(poolIdx), int64(0)
				demand = func() int64 {
					if (ctrl.Ticks()+i)%2 == 0 {
						cum += thrashDemand
					}
					return cum
				}
			}
			members = append(members, rebalance.Member{Container: c, Demand: demand})
			poolIdx++
		}
		if err := ctrl.AddPool(rebalance.PoolConfig{
			Name: "cpu", Resource: rebalance.CPULimit, Members: members,
		}); err != nil {
			return nil, err
		}
		audits := []struct {
			class string
			fn    func() string
		}{
			{"rebalance-conservation", latch(ctrl.AuditConservation)},
			{"rebalance-starvation", latch(ctrl.AuditFloors)},
			{"rebalance-oscillation", latch(func() string {
				if v := ctrl.AuditOscillation(); v != "" {
					return v
				}
				return ctrl.AuditRestore()
			})},
		}
		auditRebalance = func() {
			for _, a := range audits {
				if msg := a.fn(); msg != "" {
					violate("%s: %s", a.class, msg)
				}
			}
		}
	}

	issue := func(t LiveTenantSpec) {
		req := httptest.NewRequest("GET", "http://livefuzz/work", nil)
		req.Header.Set("X-RC-Tenant", t.Name)
		req.Header.Set("X-Cost", time.Duration(t.Cost).String())
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		led := res.Tenants[t.Name]
		led.Issued++
		switch rr.Code {
		case http.StatusOK:
			led.Served++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			led.Shed++
		case http.StatusInternalServerError:
			led.Panicked++
		default:
			violate("live-conservation: tenant %q got unexpected status %d", t.Name, rr.Code)
		}
		res.Tenants[t.Name] = led
	}

	start := clk.Now()
	round := func(hostile bool) {
		for _, t := range sc.Tenants {
			if !hostile && !t.Calm {
				continue
			}
			for i := 0; i < t.Requests; i++ {
				issue(t)
			}
		}
		clk.Sleep(time.Duration(sc.Think))
		if mon != nil {
			mon.Tick()
		}
		auditRebalance()
	}
	for r := 0; r < sc.HostileRounds; r++ {
		round(true)
	}
	// The oscillation invariant: once the calm phase has absorbed the
	// hysteresis carried over from the hostile ticks, no new engagement
	// may begin — there is nothing left to defend against.
	var settled uint64
	for r := 0; r < sc.CalmRounds; r++ {
		round(false)
		if wd != nil && r == liveOscillationGrace {
			settled = wd.Engagements()
		}
	}
	res.Elapsed = clk.Now().Sub(start)
	if wd != nil && sc.CalmRounds > liveOscillationGrace {
		if late := wd.Engagements() - settled; late > 0 {
			violate("live-oscillation: watchdog engaged %d time(s) during the settled calm phase", late)
		}
	}

	rep := rt.Drain(time.Duration(sc.Grace))
	s := rt.Stats()
	if !rep.Clean || rep.LeakedRequests != 0 || s.InflightRequests != 0 {
		violate("live-leak: drain clean=%t leaked=%d inflight=%d", rep.Clean, rep.LeakedRequests, s.InflightRequests)
	}

	// Conservation, both directions: the driver's ledger against the
	// runtime's books, and the telemetry stream against Stats.
	var issued, served, shed, panicked uint64
	for _, led := range res.Tenants {
		issued += led.Issued
		served += led.Served
		shed += led.Shed
		panicked += led.Panicked
	}
	if served != s.Served-s.Panics || panicked != s.Panics || shed != s.Shed+s.BreakerShed+s.DrainShed {
		violate("live-conservation: client ledger served=%d panicked=%d shed=%d vs stats served=%d panics=%d shed=%d+%d+%d",
			served, panicked, shed, s.Served, s.Panics, s.Shed, s.BreakerShed, s.DrainShed)
	}
	if issued != served+shed+panicked {
		violate("live-conservation: issued %d != served %d + shed %d + panicked %d", issued, served, shed, panicked)
	}
	sink.mu.Lock()
	conserve := sink.served == s.Served && sink.shed == s.Shed &&
		sink.breaker == s.BreakerShed && sink.drain == s.DrainShed && sink.panics == s.Panics
	sinkLine := fmt.Sprintf("served=%d shed=%d breaker=%d drain=%d panics=%d",
		sink.served, sink.shed, sink.breaker, sink.drain, sink.panics)
	sink.mu.Unlock()
	if !conserve {
		violate("live-conservation: telemetry sink %s vs stats served=%d shed=%d breaker=%d drain=%d panics=%d",
			sinkLine, s.Served, s.Shed, s.BreakerShed, s.DrainShed, s.Panics)
	}

	// Starvation: a calm unlimited tenant that issued work and never got
	// a single request past admission was starved by the defenses.
	for _, t := range sc.Tenants {
		if !t.Calm || t.Limit != 0 {
			continue
		}
		led := res.Tenants[t.Name]
		if led.Issued > 0 && led.Served+led.Panicked == 0 {
			violate("live-starvation: unlimited calm tenant %q issued %d request(s), none admitted", t.Name, led.Issued)
		}
	}

	var am *alert.Monitor
	if mon != nil {
		am = mon.Alert()
	}
	if wd != nil {
		res.Engagements, res.Restores = wd.Engagements(), wd.Restores()
		if wd.Engaged() || res.Restores != res.Engagements {
			violate("live-oscillation: clamp never released: engaged=%t engagements=%d restores=%d",
				wd.Engaged(), res.Engagements, res.Restores)
		}
		if msg := am.SelfCheck(); msg != "" {
			violate("missed-detection: %s", msg)
		}
	}
	if ctrl != nil {
		res.RebalanceSteps = ctrl.Steps()
		res.RebalanceFreezes = ctrl.Freezes()
		res.RebalanceDisarms = ctrl.Disarms()
	}

	res.Served, res.Shed = s.Served, s.Shed
	res.BreakerShed, res.Panics = s.BreakerShed, s.Panics
	res.Faults = inj.Stats()
	res.Hash = hashLiveRun(am, ctrl, res, s)
	return res, nil
}

// hashLiveRun digests the run's observable state — the alert stream,
// the rebalance decision journal, every counter, the per-tenant ledgers
// and the violations — for the determinism double-run.
func hashLiveRun(am *alert.Monitor, ctrl *rebalance.Controller, res *LiveResult, s rcruntime.Stats) uint64 {
	h := fnv.New64a()
	if am != nil {
		_ = am.WriteJSONL(h)
	}
	_ = ctrl.WriteJSONL(h)
	fmt.Fprintf(h, "served=%d shed=%d breaker=%d drain=%d panics=%d refused=%d delayed=%d wd=%d/%d rb=%d/%d/%d faults=%v elapsed=%d\n",
		s.Served, s.Shed, s.BreakerShed, s.DrainShed, s.Panics, s.Refused, s.Delayed,
		res.Engagements, res.Restores,
		res.RebalanceSteps, res.RebalanceFreezes, res.RebalanceDisarms,
		res.Faults, int64(res.Elapsed))
	names := make([]string, 0, len(res.Tenants))
	for name := range res.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		led := res.Tenants[name]
		fmt.Fprintf(h, "%s issued=%d served=%d shed=%d panicked=%d\n", name, led.Issued, led.Served, led.Shed, led.Panicked)
	}
	sorted := append([]string(nil), res.Violations...)
	sort.Strings(sorted)
	for _, v := range sorted {
		fmt.Fprintln(h, v)
	}
	return h.Sum64()
}

// RunLiveChecked runs the scenario twice from scratch and adds a
// determinism violation if the digests differ. The first run's result
// is returned.
func RunLiveChecked(sc LiveScenario) (*LiveResult, error) {
	r1, err := RunLive(sc)
	if err != nil {
		return nil, err
	}
	r2, err := RunLive(sc)
	if err != nil {
		return nil, err
	}
	if r1.Hash != r2.Hash {
		r1.Violations = append(r1.Violations,
			fmt.Sprintf("live determinism: run hashes differ: %016x vs %016x", r1.Hash, r2.Hash))
	}
	return r1, nil
}

// ShrinkLive greedily minimizes a failing live scenario while
// preserving its failure class: it drops hostile tenants, halves
// request counts and round counts, strips the fault schedule and each
// defense layer, keeping every candidate that still fails the same
// way. Determinism failures re-run candidates through RunLiveChecked.
func ShrinkLive(sc LiveScenario, class string) LiveScenario {
	runs := 0
	fails := func(c LiveScenario) bool {
		if runs >= shrinkMaxRuns {
			return false
		}
		runs++
		var r *LiveResult
		var err error
		if class == "determinism" {
			r, err = RunLiveChecked(c)
		} else {
			r, err = RunLive(c)
		}
		return err == nil && r.FailsWith(class)
	}

	for reduced := true; reduced; {
		reduced = false
		// Drop hostile tenants, last-to-first; the calm victim stays.
		for i := len(sc.Tenants) - 1; i >= 0; i-- {
			if sc.Tenants[i].Calm {
				continue
			}
			cand := sc
			cand.Tenants = append(append([]LiveTenantSpec(nil), sc.Tenants[:i]...), sc.Tenants[i+1:]...)
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Halve request counts.
		for i := range sc.Tenants {
			if sc.Tenants[i].Requests <= 1 {
				continue
			}
			cand := sc
			cand.Tenants = append([]LiveTenantSpec(nil), sc.Tenants...)
			cand.Tenants[i].Requests /= 2
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Halve the phases.
		if sc.HostileRounds/2 >= liveShrinkMinHostile {
			cand := sc
			cand.HostileRounds = sc.HostileRounds / 2
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		if sc.CalmRounds/2 >= liveShrinkMinCalm {
			cand := sc
			cand.CalmRounds = sc.CalmRounds / 2
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Strip the fault schedule and each defense layer.
		if sc.Faults != (LiveFaultSpec{}) {
			cand := sc
			cand.Faults = LiveFaultSpec{}
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		if sc.Breakers != nil {
			cand := sc
			cand.Breakers = nil
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		if sc.Watchdog != nil {
			cand := sc
			cand.Watchdog = nil
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Disarm the rebalancer — legal only when no planted mutation
		// needs the controller to exist.
		if sc.Rebalance != nil && sc.Rebalance.Mutation == "" {
			cand := sc
			cand.Rebalance = nil
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
	}
	return sc
}

// WriteFile writes the live scenario as an indented JSON repro file.
func (sc LiveScenario) WriteFile(path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadLiveScenario reads and validates a repro file written by
// LiveScenario.WriteFile.
func LoadLiveScenario(path string) (LiveScenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return LiveScenario{}, fmt.Errorf("chaos: reading live repro: %w", err)
	}
	var sc LiveScenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return LiveScenario{}, fmt.Errorf("chaos: parsing live repro %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return LiveScenario{}, fmt.Errorf("chaos: live repro %s: %w", path, err)
	}
	return sc, nil
}

// LiveSmoke generates and runs live scenarios starting at seed, each
// with the determinism double-run. It returns an error describing the
// first failing scenario, or nil if every run was clean.
func LiveSmoke(runs int, seed uint64) error {
	for i := 0; i < runs; i++ {
		sc := GenerateLive(seed + uint64(i))
		r, err := RunLiveChecked(sc)
		if err != nil {
			return fmt.Errorf("chaos: live seed %d: %w", sc.Seed, err)
		}
		if r.Failed() {
			return fmt.Errorf("chaos: live seed %d: %d violation(s), classes %v, first: %s",
				sc.Seed, len(r.Violations), liveClasses(r), r.Violations[0])
		}
	}
	return nil
}

// liveClasses summarizes a live result's violations as distinct
// failure classes, in first-occurrence order.
func liveClasses(r *LiveResult) []string {
	var out []string
	seen := make(map[string]bool)
	for _, v := range r.Violations {
		c := Classify(v)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
