package chaos

import (
	"rescon/internal/alert"
	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/rebalance"
	"rescon/internal/telemetry"
)

// thrashDemand is the synthetic per-tick demand increment of the
// rebalancer thrash mutations: big enough to slam every
// demand-proportional target fully to the active member.
const thrashDemand = 1 << 20

// isRebalanceMutation reports whether the mutation plants a bug in the
// rebalancer (as opposed to the accounting layer).
func isRebalanceMutation(m string) bool {
	switch m {
	case MutationRebalanceOscillate, MutationRebalanceNoDisarm,
		MutationRebalanceLeak, MutationRebalanceNoFloor:
		return true
	}
	return false
}

// isThrashMutation reports whether the mutation replaces organic demand
// with worst-case alternating demand and strips the damping.
func isThrashMutation(m string) bool {
	switch m {
	case MutationRebalanceOscillate, MutationRebalanceNoDisarm, MutationRebalanceNoFloor:
		return true
	}
	return false
}

// attachRebalance arms the closed loop for a scenario with a
// RebalanceSpec: an alert.Watchdog over the CPU-pool members (the
// arbitration partner — its criticals preempt the controller) and a
// rebalance.Controller on the telemetry tick governing up to two pools
// of the generated hierarchy:
//
//   - cpu: the top-level fixed-share containers with a share grant
//     (demand: attributed CPU time), actuated as CPUShare;
//   - mem: the MemLimit-carrying containers (demand: charged-memory
//     growth), actuated as MemQuota.
//
// A pool needs at least two qualifying members; a topology with neither
// still attaches the (trivially idle) controller so the journal and
// counters stay part of the determinism digest.
func attachRebalance(sc Scenario, k *kernel.Kernel, tel *telemetry.Collector,
	mon *alert.Monitor, built []*rc.Container) (*rebalance.Controller, *alert.Watchdog, error) {
	spec := sc.Rebalance
	cfg := rebalance.Config{
		StepFrac:       spec.StepFrac,
		FloorFrac:      spec.FloorFrac,
		CooldownTicks:  spec.CooldownTicks,
		DeadbandFrac:   spec.DeadbandFrac,
		OscWindowTicks: spec.OscWindowTicks,
		OscMaxFlips:    spec.OscMaxFlips,
		CalmTicks:      spec.CalmTicks,
	}
	thrash := isThrashMutation(sc.Mutation)
	if thrash {
		// Worst-case input: full-pool steps, no damping, tight detector.
		cfg.StepFrac = 1
		cfg.NoCooldown = true
		cfg.NoDeadband = true
		cfg.OscWindowTicks = 16
		cfg.OscMaxFlips = 4
		cfg.DemandWindowTicks = 1
	}
	switch sc.Mutation {
	case MutationRebalanceNoDisarm:
		cfg.DisableDisarm = true
	case MutationRebalanceNoFloor:
		cfg.IgnoreFloors = true
		cfg.DisableDisarm = true
	case MutationRebalanceLeak:
		cfg.LeakUnits = 1
	}

	var cpuMembers, memMembers []*rc.Container
	for i, cs := range sc.Containers {
		if cs.Parent == -1 && cs.Fixed && cs.Share > 0 {
			cpuMembers = append(cpuMembers, built[i])
		}
		if cs.MemLimit > 0 {
			memMembers = append(memMembers, built[i])
		}
	}

	wd := alert.AttachWatchdog(mon, k, alert.WatchdogConfig{Clampable: cpuMembers})
	cfg.Freeze = []rebalance.Freezer{wd}
	ctrl, err := rebalance.Attach(tel, cfg)
	if err != nil {
		return nil, nil, err
	}

	cpuDemand := func(i int, c *rc.Container) func() int64 {
		if thrash {
			var cum int64
			return func() int64 {
				if (ctrl.Ticks()+uint64(i))%2 == 0 {
					cum += thrashDemand
				}
				return cum
			}
		}
		return func() int64 { return int64(c.Usage().CPU()) }
	}
	if len(cpuMembers) >= 2 {
		members := make([]rebalance.Member, len(cpuMembers))
		for i, c := range cpuMembers {
			members[i] = rebalance.Member{Container: c, Demand: cpuDemand(i, c)}
		}
		if err := ctrl.AddPool(rebalance.PoolConfig{
			Name: "cpu", Resource: rebalance.CPUShare, Members: members,
		}); err != nil {
			return nil, nil, err
		}
	}
	// The thrash mutations drive the CPU pool only: one pool is enough
	// to prove the detector (or its planted absence), and the memory
	// pool keeps its organic signal.
	if len(memMembers) >= 2 && !thrash {
		members := make([]rebalance.Member, len(memMembers))
		for i, c := range memMembers {
			c := c
			members[i] = rebalance.Member{Container: c,
				Demand: func() int64 { return int64(c.Usage().Memory) }}
		}
		if err := ctrl.AddPool(rebalance.PoolConfig{
			Name: "mem", Resource: rebalance.MemQuota, Members: members,
		}); err != nil {
			return nil, nil, err
		}
	}
	return ctrl, wd, nil
}

// latch wraps an audit so a persisting violation is recorded once per
// distinct message rather than on every checker tick.
func latch(fn func() string) func() string {
	var last string
	return func() string {
		msg := fn()
		if msg == last {
			return ""
		}
		last = msg
		return msg
	}
}
