package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"rescon/internal/fault"
	"rescon/internal/kernel"
	"rescon/internal/sim"
)

// Mode names accepted by Scenario.Mode, in kernel.Mode order.
var ModeNames = []string{"unmodified", "lrp", "rc"}

// ModeOf maps a scenario mode name to the kernel execution model.
func ModeOf(name string) (kernel.Mode, error) {
	for i, n := range ModeNames {
		if n == name {
			return kernel.Mode(i), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown mode %q (want one of %v)", name, ModeNames)
}

// ContainerSpec describes one resource container of a scenario's
// hierarchy. Parent is the index of an earlier spec in the slice, or -1
// for a root. The generator deliberately produces degenerate shapes —
// zero-share fixed leaves, deep fixed-share chains, limits that exceed
// the parent's own share — because those are the corners where
// scheduler and accounting bugs hide.
type ContainerSpec struct {
	Name     string  `json:"name"`
	Parent   int     `json:"parent"`
	Fixed    bool    `json:"fixed"`
	Priority int     `json:"priority"`
	Share    float64 `json:"share,omitempty"`
	Limit    float64 `json:"limit,omitempty"`
	MemLimit int64   `json:"mem_limit,omitempty"`
	QoS      float64 `json:"qos,omitempty"`
}

// Workload kinds. Each maps to one traffic source the runner starts.
const (
	// WorkClients is a closed-loop population of well-behaved static
	// clients with the resilient timeout/backoff configuration.
	WorkClients = "clients"
	// WorkCGI is a population of CGI aggressors, each keeping one
	// CPU-burning dynamic request outstanding (the §5.6 cache war).
	WorkCGI = "cgi"
	// WorkFlood is a SYN flood at Rate SYNs/s from the attack prefix.
	WorkFlood = "flood"
	// WorkLoris is a slow-loris attacker holding Count connections open
	// with bytes that never form a request.
	WorkLoris = "loris"
	// WorkDisk is a population of uncached clients whose every request
	// misses the filesystem cache and hits the disk.
	WorkDisk = "disk"
	// WorkParked is a mass of established-and-idle connections ramped
	// onto a dedicated listen socket — the datacenter topology of
	// DESIGN.md §11, where the connection table carries 100k+ live
	// entries while the scenario's other traffic fights over the CPU.
	WorkParked = "parked"
)

// WorkloadSpec describes one traffic source. Fields beyond Kind apply
// only where meaningful (Rate to floods, CGICPU to CGI, and so on);
// zero values take the runner's defaults.
type WorkloadSpec struct {
	Kind      string       `json:"kind"`
	Count     int          `json:"count,omitempty"`
	Rate      float64      `json:"rate,omitempty"`
	CGICPU    sim.Duration `json:"cgi_cpu_ns,omitempty"`
	Think     sim.Duration `json:"think_ns,omitempty"`
	AbortRate float64      `json:"abort_rate,omitempty"`
}

// CrashSpec schedules crash-stop/restart cycles for the server worker.
type CrashSpec struct {
	MTBF     sim.Duration `json:"mtbf_ns"`
	Downtime sim.Duration `json:"downtime_ns"`
}

// Scenario is one fully determined chaos run: every axis of the
// configuration space — container hierarchy, workload mix, fault
// schedule, kernel mode, machine size, horizon — pinned down by values
// derived from a single seed (or loaded from a repro file). Running the
// same Scenario twice must produce byte-identical results; that is
// itself one of the checked invariants.
type Scenario struct {
	Seed     uint64       `json:"seed"`
	Mode     string       `json:"mode"`
	CPUs     int          `json:"cpus"`
	Horizon  sim.Duration `json:"horizon_ns"`
	Policing bool         `json:"policing,omitempty"`

	Containers []ContainerSpec `json:"containers,omitempty"`
	Workloads  []WorkloadSpec  `json:"workloads,omitempty"`
	Faults     fault.Config    `json:"faults,omitempty"`
	Crash      *CrashSpec      `json:"crash,omitempty"`
	Rebalance  *RebalanceSpec  `json:"rebalance,omitempty"`

	// Mutation enables a deliberately planted bug in the runner — the
	// harness's self-test seam. The generator never sets it; tests use
	// it to prove the invariant battery catches real accounting bugs and
	// that failures shrink. See MutationPhantomCPU.
	Mutation string `json:"mutation,omitempty"`
}

// MutationPhantomCPU makes the runner periodically charge CPU time to a
// ghost principal that no CPU ever executed — the classic accounting
// bug class resource containers exist to prevent. The CPU-conservation
// invariant must catch it, and because the mutation is independent of
// the generated scenario, shrinking a phantom-cpu failure must converge
// to a near-empty scenario.
const MutationPhantomCPU = "phantom-cpu"

// Rebalancer mutations: planted bugs in the adaptive controller, the
// harness self-test seam for the rebalance-* invariant classes. Each
// requires Scenario.Rebalance to be set; each replaces the controller's
// organic demand signals with hard alternating synthetic demand and
// strips the damping (full-pool steps, no cooldown, no deadband), the
// worst-case thrash input.
const (
	// MutationRebalanceOscillate is the *negative control*: thrash with
	// the disarm protocol intact. The oscillation detector must trip
	// and restore the static shares, so the run stays CLEAN — proving
	// graceful degradation, not just detection.
	MutationRebalanceOscillate = "rebalance-oscillate"
	// MutationRebalanceNoDisarm is the same thrash with the disarm
	// suppressed; the rebalance-oscillation invariant must fire.
	MutationRebalanceNoDisarm = "rebalance-no-disarm"
	// MutationRebalanceLeak mints allocation units out of thin air (one
	// per tick); the rebalance-conservation invariant must fire.
	MutationRebalanceLeak = "rebalance-leak"
	// MutationRebalanceNoFloor lets steps cross the starvation floor;
	// the rebalance-starvation invariant must fire.
	MutationRebalanceNoFloor = "rebalance-no-floor"
)

// RebalanceSpec arms the adaptive rebalancer for the run: the runner
// attaches an alert.Watchdog (the arbitration partner) plus a
// rebalance.Controller governing the generated hierarchy — a CPU-share
// pool over the top-level fixed containers and a memory-quota pool over
// the MemLimit-carrying containers, where at least two qualify. Zero
// fields take the rebalance package defaults.
type RebalanceSpec struct {
	StepFrac       float64 `json:"step_frac,omitempty"`
	FloorFrac      float64 `json:"floor_frac,omitempty"`
	CooldownTicks  int     `json:"cooldown_ticks,omitempty"`
	DeadbandFrac   float64 `json:"deadband_frac,omitempty"`
	OscWindowTicks int     `json:"osc_window_ticks,omitempty"`
	OscMaxFlips    int     `json:"osc_max_flips,omitempty"`
	CalmTicks      int     `json:"calm_ticks,omitempty"`
}

// Validate reports whether the scenario is structurally runnable:
// recognized mode and mutation, a positive machine and horizon, parent
// indices that refer to earlier fixed-share specs, and known workload
// kinds. Attribute ranges (shares, limits) are validated by the
// container layer when the runner builds the hierarchy.
func (sc Scenario) Validate() error {
	if _, err := ModeOf(sc.Mode); err != nil {
		return err
	}
	if sc.CPUs < 1 {
		return fmt.Errorf("chaos: CPUs %d < 1", sc.CPUs)
	}
	if sc.Horizon <= 0 {
		return fmt.Errorf("chaos: non-positive horizon %v", sc.Horizon)
	}
	for i, cs := range sc.Containers {
		if cs.Parent >= i {
			return fmt.Errorf("chaos: container %d parent %d is not an earlier spec", i, cs.Parent)
		}
		if cs.Parent >= 0 && !sc.Containers[cs.Parent].Fixed {
			return fmt.Errorf("chaos: container %d parent %d is not fixed-share", i, cs.Parent)
		}
	}
	for i, w := range sc.Workloads {
		switch w.Kind {
		case WorkClients, WorkCGI, WorkFlood, WorkLoris, WorkDisk, WorkParked:
		default:
			return fmt.Errorf("chaos: workload %d has unknown kind %q", i, w.Kind)
		}
	}
	if sc.Crash != nil && sc.Crash.MTBF <= 0 {
		return fmt.Errorf("chaos: crash plan without positive MTBF")
	}
	switch sc.Mutation {
	case "", MutationPhantomCPU:
	case MutationRebalanceOscillate, MutationRebalanceNoDisarm,
		MutationRebalanceLeak, MutationRebalanceNoFloor:
		if sc.Rebalance == nil {
			return fmt.Errorf("chaos: mutation %q requires a rebalance spec", sc.Mutation)
		}
	default:
		return fmt.Errorf("chaos: unknown mutation %q", sc.Mutation)
	}
	return nil
}

// RNG fork labels, one per independent generation axis, so changing the
// draw count on one axis never perturbs another.
const (
	labelMachine   = 1
	labelTopo      = 2
	labelLoad      = 3
	labelFault     = 4
	labelRebalance = 8 // 5-7 are the live-scenario labels (live.go)
)

// Generate derives a complete Scenario from a single seed. The same
// seed always yields the same scenario; nearby seeds yield unrelated
// ones. Generated scenarios always pass Validate and always build (the
// generator respects the container layer's structural rules while still
// reaching its degenerate corners).
func Generate(seed uint64) Scenario {
	top := sim.NewRNG(int64(seed))
	rm := top.Fork(labelMachine)
	sc := Scenario{
		Seed:     seed,
		Mode:     ModeNames[rm.Intn(len(ModeNames))],
		CPUs:     1 + rm.Intn(4),
		Horizon:  500*sim.Millisecond + rm.Uniform(0, 1500*sim.Millisecond),
		Policing: rm.Float64() < 0.5,
	}
	sc.Containers = genContainers(top.Fork(labelTopo))
	sc.Workloads = genWorkloads(top.Fork(labelLoad))
	// A parked-connection ramp is rate-bound by SYN protocol processing
	// (~107 µs per handshake on one kernel thread), so a seed that drew a
	// 100k+ topology gets the virtual time for the ramp to actually
	// reach its count when the machine cooperates. The stretch is a pure
	// function of the drawn workloads, so determinism is unaffected.
	for _, w := range sc.Workloads {
		if w.Kind == WorkParked {
			if need := sim.Duration(w.Count) * parkedRampBudget; sc.Horizon < need {
				sc.Horizon = need
			}
		}
	}
	rf := top.Fork(labelFault)
	if rf.Float64() < 0.5 {
		sc.Faults = genFaults(rf)
	}
	if rf.Float64() < 0.2 {
		sc.Crash = &CrashSpec{
			MTBF:     300*sim.Millisecond + rf.Uniform(0, 700*sim.Millisecond),
			Downtime: 50*sim.Millisecond + rf.Uniform(0, 200*sim.Millisecond),
		}
	}
	// A fresh fork for the rebalance axis, so arming the controller on
	// half the seeds never perturbs the machine/topology/load draws of
	// scenarios that predate it.
	rr := top.Fork(labelRebalance)
	if rr.Float64() < 0.5 {
		sc.Rebalance = &RebalanceSpec{
			CooldownTicks: 1 + rr.Intn(8),
			OscMaxFlips:   4 + rr.Intn(5),
		}
	}
	return sc
}

// genContainers draws a random hierarchy. Fixed-share containers may
// parent later specs (the container layer only allows children under
// fixed-share nodes); the 0.6 attach bias makes deep chains common.
// Root shares are capped at 0.5 of the machine so time-share work
// elsewhere (the runner's premium probe) keeps CPU entitlement.
func genContainers(r *sim.RNG) []ContainerSpec {
	n := r.Intn(6)
	specs := make([]ContainerSpec, 0, n)
	shareLeft := map[int]float64{-1: 0.5}
	var fixed []int
	for i := 0; i < n; i++ {
		cs := ContainerSpec{
			Name:     fmt.Sprintf("c%d", i),
			Parent:   -1,
			Priority: r.Intn(21),
		}
		if len(fixed) > 0 && r.Float64() < 0.6 {
			cs.Parent = fixed[r.Intn(len(fixed))]
		}
		if r.Float64() < 0.6 {
			cs.Fixed = true
			if left := shareLeft[cs.Parent]; left > 0.01 && r.Float64() < 0.7 {
				cs.Share = left * (0.1 + 0.7*r.Float64())
				shareLeft[cs.Parent] = left - cs.Share
			}
			// Else: a zero-share fixed leaf — entitled to nothing it was
			// not explicitly given, a degenerate shape worth exercising.
			shareLeft[i] = 0.9
			fixed = append(fixed, i)
		}
		if r.Float64() < 0.3 {
			// A limit at least the container's own share but possibly far
			// above the parent's — legal, degenerate, and a classic source
			// of throttling bugs.
			cs.Limit = cs.Share + (1-cs.Share)*r.Float64()
		}
		if r.Float64() < 0.2 {
			cs.MemLimit = int64(64<<10 + r.Intn(1<<20))
		}
		if r.Float64() < 0.2 {
			cs.QoS = 0.25 + 4*r.Float64()
		}
		specs = append(specs, cs)
	}
	return specs
}

// parkedRampBudget is the virtual time granted per parked connection:
// comfortably above the ~107 µs SYN handshake cost, so an uncontended
// ramp finishes inside the stretched horizon with slack for the
// scenario's other load.
const parkedRampBudget = 130 * sim.Microsecond

// genWorkloads draws 1..4 traffic sources with a mix biased toward
// well-behaved clients but regularly including every attacker class and,
// occasionally, a datacenter-scale parked-connection topology (20k–150k
// established connections riding on the flyweight conn table).
func genWorkloads(r *sim.RNG) []WorkloadSpec {
	n := 1 + r.Intn(4)
	out := make([]WorkloadSpec, 0, n)
	for i := 0; i < n; i++ {
		var w WorkloadSpec
		switch p := r.Float64(); {
		case p < 0.33:
			w = WorkloadSpec{Kind: WorkClients, Count: 4 + r.Intn(29), Think: r.Uniform(0, 5*sim.Millisecond)}
			if r.Float64() < 0.3 {
				w.AbortRate = 0.02 + 0.18*r.Float64()
			}
		case p < 0.47:
			w = WorkloadSpec{Kind: WorkCGI, Count: 2 + r.Intn(7), CGICPU: sim.Millisecond + r.Uniform(0, 19*sim.Millisecond)}
		case p < 0.61:
			w = WorkloadSpec{Kind: WorkFlood, Rate: 500 + 19500*r.Float64()}
		case p < 0.75:
			w = WorkloadSpec{Kind: WorkLoris, Count: 16 + r.Intn(113)}
		case p < 0.82:
			w = WorkloadSpec{Kind: WorkParked, Count: 20_000 + r.Intn(130_001)}
		default:
			w = WorkloadSpec{Kind: WorkDisk, Count: 2 + r.Intn(15)}
		}
		out = append(out, w)
	}
	return out
}

// genFaults draws a fault schedule with each class enabled
// independently at modest rates — heavy enough to exercise recovery
// paths, light enough that legitimate work still flows.
func genFaults(r *sim.RNG) fault.Config {
	var cfg fault.Config
	if r.Float64() < 0.5 {
		cfg.DropRate = 0.15 * r.Float64()
	}
	if r.Float64() < 0.3 {
		cfg.DupRate = 0.05 * r.Float64()
	}
	if r.Float64() < 0.3 {
		cfg.ReorderRate = 0.05 * r.Float64()
	}
	if r.Float64() < 0.3 {
		cfg.DelayRate = 0.10 * r.Float64()
	}
	if r.Float64() < 0.3 {
		cfg.DiskErrorRate = 0.05 * r.Float64()
	}
	if r.Float64() < 0.3 {
		cfg.DiskSlowRate = 0.20 * r.Float64()
	}
	return cfg
}

// WriteFile writes the scenario as an indented JSON repro file.
func (sc Scenario) WriteFile(path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadScenario reads and validates a repro file written by WriteFile
// (or by hand).
func LoadScenario(path string) (Scenario, error) {
	var sc Scenario
	data, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, fmt.Errorf("chaos: parsing %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return sc, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return sc, nil
}
