package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rescon/internal/alert"
	"rescon/internal/experiments"
	"rescon/internal/fault"
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/rebalance"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/trace"
	"rescon/internal/workload"
)

// cpuEpsilon is the tolerance of the CPU-conservation invariant. The
// simulator charges integer nanoseconds and every charge site adds the
// same amount to the machine's busy or interrupt counter, so the books
// should balance exactly; the microsecond of slack only forgives
// rounding if a future cost model divides slices.
const cpuEpsilon = sim.Microsecond

// Isolation-floor probe parameters: the premium population must
// complete work at least once per floorStreak probes while the machine
// is demonstrably busy, or the floor is violated.
const (
	floorProbePeriod = 100 * sim.Millisecond
	floorStreak      = 8
	floorBusyDelta   = 100 * sim.Millisecond
)

// premiumClients is the size of the always-on high-priority population
// the isolation-floor invariant observes.
const premiumClients = 2

// Result is the outcome of one scenario run: the recorded invariant
// violations (empty means the run was clean), a hash of the run's full
// observable state (telemetry dump, conservation counters, violations)
// used by the determinism check and repro replay, and headline counters
// for reporting.
type Result struct {
	Scenario   Scenario
	Violations []string
	Hash       uint64

	Completed     uint64
	Established   uint64
	Closed        uint64
	Open          int
	BusyTime      sim.Duration
	InterruptTime sim.Duration
	AttributedCPU sim.Duration
	PolicedDrops  uint64
	Crashes       uint64
	Restarts      uint64
	AlertEvents   uint64
	AlertFlaps    uint64

	RebalanceSteps   uint64
	RebalanceFreezes uint64
	RebalanceDisarms uint64
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// FailsWith reports whether any violation belongs to the given class
// (see Classify).
func (r *Result) FailsWith(class string) bool {
	for _, v := range r.Violations {
		if Classify(v) == class {
			return true
		}
	}
	return false
}

// Run executes the scenario once and returns its result. An error means
// the scenario could not be built (bad spec, unbuildable hierarchy) —
// distinct from a clean run that found violations, which returns a
// Result with a non-empty Violations slice.
func Run(sc Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	mode, err := ModeOf(sc.Mode)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(int64(sc.Seed))
	k := kernel.NewSMP(eng, mode, kernel.DefaultCosts(), sc.CPUs)
	tel := telemetry.New(telemetry.Config{})
	k.AttachTelemetry(tel)
	tel.SetRun(int64(sc.Seed), sc.Mode)
	k.Police.Enabled = sc.Policing

	// Alert monitor. Without a RebalanceSpec it is detection-only: no
	// actuator, so the alerting layer observes the run without
	// perturbing its trajectory. Its event stream joins the determinism
	// hash, and two of its properties are invariants — alerts must not
	// flap, and a sustained overload must never go unreported
	// (SelfCheck). A RebalanceSpec later arms the full closed loop
	// (watchdog + adaptive rebalancer) on top of this monitor.
	mon, err := alert.Attach(k, alert.Config{})
	if err != nil {
		return nil, err
	}

	check := fault.NewChecker(eng)
	check.FailFast = false
	k.WatchInvariants(check)
	check.MustWatchCheck("cpu-conservation", func() string {
		attr, acct := tel.AttributedCPU(), k.BusyTime()+k.InterruptTime()
		diff := attr - acct
		if diff < 0 {
			diff = -diff
		}
		if diff > cpuEpsilon {
			return fmt.Sprintf("telemetry attributes %v but machine ran busy %v + interrupt %v",
				attr, k.BusyTime(), k.InterruptTime())
		}
		return ""
	})
	var reportedFlaps uint64
	check.MustWatchCheck("alert-flap", func() string {
		if f := mon.Flaps(); f > reportedFlaps {
			reportedFlaps = f
			return fmt.Sprintf("alert stream flapped (%d total): hysteresis failed to suppress churn", f)
		}
		return ""
	})
	var lastMissed string
	check.MustWatchCheck("missed-detection", func() string {
		msg := mon.SelfCheck()
		if msg == lastMissed {
			return ""
		}
		lastMissed = msg
		return msg
	})

	// Container hierarchy. The first two fixed-share containers (in spec
	// order) become the per-connection and CGI sandbox parents, so the
	// generated topology actually receives the workload's charges.
	built := make([]*rc.Container, len(sc.Containers))
	var connParent, cgiParent *rc.Container
	for i, cs := range sc.Containers {
		var parent *rc.Container
		if cs.Parent >= 0 {
			parent = built[cs.Parent]
		}
		class := rc.TimeShare
		if cs.Fixed {
			class = rc.FixedShare
		}
		c, err := rc.New(parent, class, cs.Name, rc.Attributes{
			Priority:  cs.Priority,
			Share:     cs.Share,
			Limit:     cs.Limit,
			MemLimit:  cs.MemLimit,
			QoSWeight: cs.QoS,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: building container %d (%s): %w", i, cs.Name, err)
		}
		built[i] = c
		if cs.Fixed && connParent == nil {
			connParent = c
		} else if cs.Fixed && cgiParent == nil {
			cgiParent = c
		}
	}
	if cgiParent == nil {
		cgiParent = connParent
	}

	// The closed loop: watchdog (emergency actuator, arbitration
	// partner) + adaptive rebalancer governing the generated hierarchy,
	// with the controller's own safety properties joining the invariant
	// battery. The audits abstain while the watchdog holds the
	// hierarchy, and latch so a persistent violation is recorded per
	// distinct message, not per checker tick.
	var ctrl *rebalance.Controller
	if sc.Rebalance != nil {
		ctrl, _, err = attachRebalance(sc, k, tel, mon, built)
		if err != nil {
			return nil, err
		}
		check.MustWatchCheck("rebalance-conservation", latch(ctrl.AuditConservation))
		check.MustWatchCheck("rebalance-starvation", latch(ctrl.AuditFloors))
		check.MustWatchCheck("rebalance-oscillation", latch(func() string {
			if v := ctrl.AuditOscillation(); v != "" {
				return v
			}
			return ctrl.AuditRestore()
		}))
	}

	if sc.Faults != (fault.Config{}) {
		inj := fault.NewInjector(eng, sc.Faults)
		k.Faults = inj
		k.Disk().Faults = inj
	}

	// Server, premium listener, and crash-restart plumbing. The premium
	// filtered listener must be re-added inside the boot closure:
	// Shutdown closes every listener, and a restarted worker without it
	// would silently demote the premium client to the default socket.
	rcMode := mode == kernel.ModeRC
	var premCont *rc.Container
	if rcMode {
		premCont = rc.MustNew(nil, rc.TimeShare, "premium",
			rc.Attributes{Priority: experiments.HighPriority})
	}
	serverCfg := httpsim.Config{
		Kernel: k, Name: "httpd", Addr: experiments.ServerAddr, API: httpsim.EventAPI,
		PerConnContainers: rcMode,
		Parent:            connParent,
		CGIParent:         cgiParent,
		ConnPriority: func(a netsim.Addr) int {
			if a.IP == experiments.HighPriorityIP {
				return experiments.HighPriority
			}
			return kernel.DefaultPriority
		},
	}
	var srv *httpsim.Server
	var bootErr error
	boot := func() {
		srv, bootErr = httpsim.NewServer(serverCfg)
		if bootErr == nil && rcMode {
			_, bootErr = srv.AddListener(
				netsim.Filter{Template: experiments.HighPriorityIP, MaskBits: 32}, premCont)
		}
	}
	boot()
	if bootErr != nil {
		return nil, bootErr
	}
	var cr *fault.Crasher
	if sc.Crash != nil {
		cr, err = fault.StartCrasher(eng, fault.CrashPlan{
			MTBF: sc.Crash.MTBF, Downtime: sc.Crash.Downtime,
		}, func() { srv.Shutdown() }, boot)
		if err != nil {
			return nil, err
		}
	}

	// Workloads. Each gets its own source subnet so filtered listeners
	// and per-source accounting can tell populations apart.
	var pops []*workload.Population
	for wi, w := range sc.Workloads {
		switch w.Kind {
		case WorkClients, WorkCGI, WorkDisk:
			cfg := experiments.ResilientClientConfig(k, experiments.ClientAddr(wi))
			cfg.Think = w.Think
			cfg.AbortRate = w.AbortRate
			switch w.Kind {
			case WorkCGI:
				cfg.Kind = httpsim.CGI
				cfg.CGICPU = w.CGICPU
			case WorkDisk:
				cfg.Uncached = true
			}
			pop, err := workload.StartPopulation(w.Count, cfg)
			if err != nil {
				return nil, fmt.Errorf("chaos: workload %d (%s): %w", wi, w.Kind, err)
			}
			pops = append(pops, pop)
		case WorkFlood:
			workload.StartFlood(k, sim.Rate(w.Rate),
				experiments.AttackNet+netsim.IP(wi)<<16, 4096, experiments.ServerAddr)
		case WorkLoris:
			workload.StartSlowLoris(workload.SlowLorisConfig{
				Kernel:  k,
				Src:     netsim.Addr{IP: experiments.AttackNet + netsim.IP(wi)<<16 + 7, Port: 1024},
				Dst:     experiments.ServerAddr,
				Conns:   w.Count,
				Trickle: 50 * sim.Millisecond,
				Hold:    2 * sim.Second,
			})
		case WorkParked:
			if err := startParked(k, wi, w.Count); err != nil {
				return nil, fmt.Errorf("chaos: workload %d (%s): %w", wi, w.Kind, err)
			}
		}
	}

	// Premium population and isolation-floor probe. The floor invariant
	// is only sound when the premium connection containers are
	// top-level (no generated parent capping them), the scheduler is
	// container-driven, nothing crash-stops the server, no wire/disk
	// faults eat the premium client's packets, and no disk-bound
	// workload can serialize it behind a deep disk queue. Under those
	// conditions a high-priority container with runnable work must make
	// progress whenever the machine does.
	var premium *workload.Population
	if rcMode {
		cfg := experiments.ResilientClientConfig(k,
			netsim.Addr{IP: experiments.HighPriorityIP, Port: 1024})
		cfg.Think = sim.Millisecond
		premium, err = workload.StartPopulation(premiumClients, cfg)
		if err != nil {
			return nil, err
		}
	}
	// A RebalanceSpec also disables the floor probe: the armed
	// watchdog's tightened admission control can legitimately starve
	// the premium population's handshakes during an engagement.
	floorOn := rcMode && sc.Crash == nil && sc.Faults == (fault.Config{}) &&
		connParent == nil && !hasWorkload(sc, WorkDisk) && sc.Rebalance == nil
	if floorOn {
		probe := &floorProbe{k: k, pop: premium}
		eng.Every(floorProbePeriod, probe.tick)
		check.MustWatchCheck("isolation-floor", probe.take)
	}

	if sc.Mutation == MutationPhantomCPU {
		eng.Every(50*sim.Millisecond, func() {
			tel.ChargeStage("(ghost)", trace.StageUser, 200*sim.Microsecond)
		})
	}

	check.Start(0)
	eng.RunUntil(sim.Time(0).Add(sc.Horizon))
	check.Check()
	if bootErr != nil {
		return nil, bootErr
	}

	res := &Result{
		Scenario:      sc,
		Violations:    append([]string(nil), check.Violations()...),
		Established:   k.ConnsEstablished(),
		Closed:        k.ConnsClosed(),
		Open:          k.OpenConns(),
		BusyTime:      k.BusyTime(),
		InterruptTime: k.InterruptTime(),
		AttributedCPU: tel.AttributedCPU(),
		PolicedDrops:  k.PolicedDrops(),
	}
	for _, p := range pops {
		res.Completed += p.Completed()
	}
	if premium != nil {
		res.Completed += premium.Completed()
	}
	if cr != nil {
		res.Crashes, res.Restarts = cr.Crashes(), cr.Restarts()
	}
	res.AlertEvents = uint64(len(mon.Events()))
	res.AlertFlaps = mon.Flaps()
	if ctrl != nil {
		res.RebalanceSteps = ctrl.Steps()
		res.RebalanceFreezes = ctrl.Freezes()
		res.RebalanceDisarms = ctrl.Disarms()
	}
	res.Hash = hashRun(tel, mon, ctrl, res)
	return res, nil
}

// parkedNet is the source prefix of parked-connection ramps — disjoint
// from ClientNet's per-population slices and the attack prefix, so
// filters and per-source accounting never confuse a parked connection
// with scenario traffic.
var parkedNet = netsim.MustParseIP("10.2.0.0")

// parkedWindow bounds the parked ramp's outstanding (injected but not
// yet acknowledged) handshakes. Well under the listener's backlogs, so
// a well-behaved ramp never converges by queue drops.
const parkedWindow = 256

// parkedRetry is how long the ramp waits for a SYN-ACK before resending
// a connection's SYN — a lost handshake packet (wire faults, shed SYNs)
// must free its window slot instead of wedging the ramp forever.
const parkedRetry = 50 * sim.Millisecond

// startParked ramps w.Count established-and-idle connections onto a
// dedicated listen socket owned by its own process — the datacenter
// topology of DESIGN.md §11: the flyweight connection table carries the
// mass while the rest of the scenario's traffic fights over the CPU.
// The ramp is closed-loop — new SYNs are injected only as earlier ones
// are acknowledged — so it self-paces to whatever protocol-processing
// rate the scenario leaves available; under floods, caps or crashes it
// simply ramps less far, which is load, not a violation. Connections
// are never closed: they stay live through the horizon and are counted
// by the connection-conservation invariant as open.
func startParked(k *kernel.Kernel, wi, count int) error {
	p := k.NewProcess(fmt.Sprintf("parked%d", wi))
	local := netsim.Addr{IP: experiments.ServerAddr.IP, Port: uint16(9000 + wi)}
	ls, err := k.Listen(p, kernel.ListenConfig{
		Local:         local,
		SynBacklog:    1 << 12,
		AcceptBacklog: 1 << 12,
	})
	if err != nil {
		return err
	}
	eng := k.Engine()
	buf := make([]*kernel.Conn, parkedWindow)
	issued, acked := 0, 0
	// connect sends the i-th connection's SYN and retries on silence. A
	// retry after a lost SYN-ACK can establish a duplicate server-side
	// connection for the same tuple; that is ordinary network behaviour
	// and the conservation invariant counts both sides consistently.
	var connect func(i int)
	connect = func(i int) {
		src := netsim.Addr{
			IP:   parkedNet + netsim.IP(wi)<<8 + netsim.IP(i/60000),
			Port: uint16(1024 + i%60000),
		}
		done := false
		k.ClientSend(kernel.ConnectPacket(src, local, func(*kernel.Conn) {
			if done {
				return // duplicated SYN-ACK
			}
			done = true
			acked++
		}))
		eng.After(parkedRetry, func() {
			if !done {
				connect(i)
			}
		})
	}
	eng.Every(2*sim.Millisecond, func() {
		// Keep the accept queue drained; the parked process never reads
		// from its connections, it just holds them open.
		for ls.AcceptBatch(buf) != 0 {
		}
		outstanding := issued - acked
		if issued >= count || outstanding >= parkedWindow {
			return
		}
		batch := parkedWindow - outstanding
		if rem := count - issued; rem < batch {
			batch = rem
		}
		for j := 0; j < batch; j++ {
			connect(issued)
			issued++
		}
	})
	return nil
}

// hasWorkload reports whether the scenario contains a workload of kind.
func hasWorkload(sc Scenario, kind string) bool {
	for _, w := range sc.Workloads {
		if w.Kind == kind {
			return true
		}
	}
	return false
}

// floorProbe watches the premium population for a stall: floorStreak
// consecutive probes without a completion while the machine accumulated
// at least floorBusyDelta of busy time. The violation latches once and
// is reported through the checker by take.
type floorProbe struct {
	k        *kernel.Kernel
	pop      *workload.Population
	lastDone uint64
	streak   int
	busyAt   sim.Duration
	msg      string
	reported bool
}

func (p *floorProbe) tick() {
	done := p.pop.Completed()
	if done != p.lastDone || done == 0 {
		p.lastDone = done
		p.streak = 0
		p.busyAt = p.k.BusyTime()
		return
	}
	p.streak++
	if p.streak >= floorStreak && p.k.BusyTime()-p.busyAt >= floorBusyDelta && !p.reported {
		p.reported = true
		p.msg = fmt.Sprintf("premium container stalled for %v while machine busy time grew %v",
			sim.Duration(p.streak)*floorProbePeriod, p.k.BusyTime()-p.busyAt)
	}
}

// take hands the latched violation to the checker exactly once.
func (p *floorProbe) take() string {
	msg := p.msg
	p.msg = ""
	return msg
}

// hashRun computes an FNV-1a 64 digest over the run's full observable
// state: the byte-stable telemetry JSONL dump, the alert event stream,
// the rebalancer's decision journal (when armed), the conservation
// counters, and every violation string. Two runs of the same scenario
// must produce the same digest — checked by RunChecked.
func hashRun(tel *telemetry.Collector, mon *alert.Monitor, ctrl *rebalance.Controller, res *Result) uint64 {
	h := fnv.New64a()
	_ = tel.WriteJSONL(h)
	_ = mon.WriteJSONL(h)
	_ = ctrl.WriteJSONL(h)
	fmt.Fprintf(h, "est=%d closed=%d open=%d busy=%d intr=%d attr=%d policed=%d crashes=%d restarts=%d completed=%d alerts=%d flaps=%d rbsteps=%d rbfreezes=%d rbdisarms=%d\n",
		res.Established, res.Closed, res.Open,
		int64(res.BusyTime), int64(res.InterruptTime), int64(res.AttributedCPU),
		res.PolicedDrops, res.Crashes, res.Restarts, res.Completed,
		res.AlertEvents, res.AlertFlaps,
		res.RebalanceSteps, res.RebalanceFreezes, res.RebalanceDisarms)
	// Violations are hashed in sorted order: a couple of kernel-internal
	// collections are maps, so when one bad tick trips several queue
	// checks at once their relative order is not guaranteed, and the
	// digest should not flag that as nondeterminism.
	sorted := append([]string(nil), res.Violations...)
	sort.Strings(sorted)
	for _, v := range sorted {
		fmt.Fprintln(h, v)
	}
	return h.Sum64()
}

// RunChecked runs the scenario twice from scratch and adds a
// determinism violation if the two runs' digests differ — the
// FoundationDB-style check that the simulation really is a pure
// function of the scenario. The first run's result is returned.
func RunChecked(sc Scenario) (*Result, error) {
	r1, err := Run(sc)
	if err != nil {
		return nil, err
	}
	r2, err := Run(sc)
	if err != nil {
		return nil, err
	}
	if r1.Hash != r2.Hash {
		r1.Violations = append(r1.Violations,
			fmt.Sprintf("fault: invariant violated at %v: determinism: run hashes differ: %016x vs %016x",
				sc.Horizon, r1.Hash, r2.Hash))
	}
	return r1, nil
}
