package chaos

import (
	"testing"

	"rescon/internal/sim"
)

// liveRebalanceScenario is a minimal hand-built live scenario that arms
// the rebalancer: a calm unlimited victim plus two limited hogs (the
// CPULimit pool members).
func liveRebalanceScenario() LiveScenario {
	return LiveScenario{
		Seed:          7,
		Window:        100 * sim.Millisecond,
		HostileRounds: 10,
		CalmRounds:    44,
		Think:         sim.Millisecond,
		Grace:         sim.Second,
		Tenants: []LiveTenantSpec{
			{Name: "good", Requests: 3, Cost: 2 * sim.Millisecond, Calm: true},
			{Name: "hog0", Requests: 8, Cost: 8 * sim.Millisecond, Limit: 0.35},
			{Name: "hog1", Requests: 6, Cost: 6 * sim.Millisecond, Limit: 0.3},
		},
		Rebalance: &LiveRebalanceSpec{},
	}
}

// TestLiveRebalanceArmedRunsClean: an armed controller governing real
// window budgets through the enforcer must not violate anything,
// including the determinism double-run (the decision journal is part of
// the digest).
func TestLiveRebalanceArmedRunsClean(t *testing.T) {
	r, err := RunLiveChecked(liveRebalanceScenario())
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("%d violation(s), first: %s", len(r.Violations), r.Violations[0])
	}
}

// TestLiveRebalanceOscillateSelfDisarms: worst-case thrash input with
// the disarm protocol intact must end disarmed, restored, and clean.
func TestLiveRebalanceOscillateSelfDisarms(t *testing.T) {
	sc := liveRebalanceScenario()
	sc.Rebalance.Mutation = "oscillate"
	r, err := RunLiveChecked(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("self-disarming thrash violated invariants: %v", r.Violations)
	}
	if r.RebalanceDisarms != 1 {
		t.Fatalf("disarms = %d, want 1 (oscillation detector never tripped?)", r.RebalanceDisarms)
	}
}

// TestLiveRebalanceMutationsCaught: each planted controller bug must be
// caught by its invariant class, against the real runtime.
func TestLiveRebalanceMutationsCaught(t *testing.T) {
	cases := []struct {
		mutation, class string
	}{
		{"no-disarm", "rebalance-oscillation"},
		{"leak", "rebalance-conservation"},
		{"no-floor", "rebalance-starvation"},
	}
	for _, tc := range cases {
		t.Run(tc.mutation, func(t *testing.T) {
			sc := liveRebalanceScenario()
			sc.Rebalance.Mutation = tc.mutation
			r, err := RunLive(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !r.FailsWith(tc.class) {
				t.Fatalf("mutation %s not caught by %s; violations: %v",
					tc.mutation, tc.class, r.Violations)
			}
		})
	}
}

// TestLiveRebalanceFailureShrinks: a live rebalancer failure must
// shrink to a repro that keeps the mutation, the spec, and the two pool
// members Validate requires — and still fail identically.
func TestLiveRebalanceFailureShrinks(t *testing.T) {
	sc := liveRebalanceScenario()
	sc.Rebalance.Mutation = "no-disarm"
	sc.Tenants = append(sc.Tenants,
		LiveTenantSpec{Name: "hog2", Requests: 10, Cost: 9 * sim.Millisecond, Limit: 0.2},
		LiveTenantSpec{Name: "hog3", Requests: 12, Cost: 5 * sim.Millisecond})
	sc.Faults = LiveFaultSpec{StallRate: 0.1, StallFor: 10 * sim.Millisecond, PanicRate: 0.05}

	shrunk := ShrinkLive(sc, "rebalance-oscillation")
	if shrunk.Rebalance == nil || shrunk.Rebalance.Mutation != "no-disarm" {
		t.Fatalf("shrink dropped the rebalance spec or mutation: %+v", shrunk.Rebalance)
	}
	limited := 0
	for _, tn := range shrunk.Tenants {
		if !tn.Calm && tn.Limit > 0 {
			limited++
		}
	}
	if limited < 2 {
		t.Fatalf("shrink dropped the pool members: %+v", shrunk.Tenants)
	}
	if shrunk.Faults != (LiveFaultSpec{}) {
		t.Fatalf("shrink kept the fault schedule for a workload-independent bug: %+v", shrunk.Faults)
	}
	r, err := RunLive(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FailsWith("rebalance-oscillation") {
		t.Fatalf("shrunk scenario no longer fails; violations: %v", r.Violations)
	}
}

// TestLiveRebalanceValidate: mutations and pools need at least two
// limited hostile tenants; the generator arms a stable subset of seeds
// and always leaves them pool-viable.
func TestLiveRebalanceValidate(t *testing.T) {
	sc := liveRebalanceScenario()
	sc.Rebalance.Mutation = "typo"
	if err := sc.Validate(); err == nil {
		t.Fatal("unknown mutation passed Validate")
	}
	sc = liveRebalanceScenario()
	sc.Tenants = sc.Tenants[:2]
	if err := sc.Validate(); err == nil {
		t.Fatal("rebalance spec with a single limited hog passed Validate")
	}
	armed := 0
	for seed := uint64(0); seed < 64; seed++ {
		g := GenerateLive(seed)
		if g.Rebalance == nil {
			continue
		}
		armed++
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: generated rebalance scenario invalid: %v", seed, err)
		}
	}
	if armed < 8 || armed > 48 {
		t.Fatalf("generator armed %d/64 live scenarios, want a healthy fraction", armed)
	}
}
