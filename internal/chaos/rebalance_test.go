package chaos

import (
	"testing"

	"rescon/internal/sim"
)

// rebalanceScenario is a minimal hand-built scenario that arms the
// adaptive rebalancer: two top-level fixed-share containers (they
// double as the conn/CGI parents, so organic load charges them) and a
// client population to generate demand.
func rebalanceScenario(mode string) Scenario {
	return Scenario{
		Seed:    11,
		Mode:    mode,
		CPUs:    1,
		Horizon: 800 * sim.Millisecond,
		Containers: []ContainerSpec{
			{Name: "a", Parent: -1, Fixed: true, Share: 0.25},
			{Name: "b", Parent: -1, Fixed: true, Share: 0.20},
		},
		Workloads: []WorkloadSpec{
			{Kind: WorkClients, Count: 8},
		},
		Rebalance: &RebalanceSpec{},
	}
}

// TestRebalanceArmedRunsCleanAllModes: an armed controller over an
// ordinary workload must not violate anything, in any kernel mode,
// including the determinism double-run (the decision journal is part of
// the digest).
func TestRebalanceArmedRunsCleanAllModes(t *testing.T) {
	for _, mode := range ModeNames {
		r, err := RunChecked(rebalanceScenario(mode))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.Failed() {
			t.Fatalf("%s: %d violation(s), first: %s", mode, len(r.Violations), r.Violations[0])
		}
	}
}

// TestRebalanceOscillateSelfDisarms is the negative control of the
// invariant battery: worst-case thrash input with the disarm protocol
// INTACT must end with the controller disarmed, the static shares
// restored, and a completely clean run — graceful degradation observed
// end to end.
func TestRebalanceOscillateSelfDisarms(t *testing.T) {
	sc := rebalanceScenario("rc")
	sc.Mutation = MutationRebalanceOscillate
	r, err := RunChecked(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("self-disarming thrash violated invariants: %v", r.Violations)
	}
	if r.RebalanceDisarms != 1 {
		t.Fatalf("disarms = %d, want 1 (oscillation detector never tripped?)", r.RebalanceDisarms)
	}
}

// TestRebalanceMutationsCaught: each planted controller bug must be
// caught by exactly its invariant class.
func TestRebalanceMutationsCaught(t *testing.T) {
	cases := []struct {
		mutation, class string
	}{
		{MutationRebalanceNoDisarm, "rebalance-oscillation"},
		{MutationRebalanceLeak, "rebalance-conservation"},
		{MutationRebalanceNoFloor, "rebalance-starvation"},
	}
	for _, tc := range cases {
		t.Run(tc.mutation, func(t *testing.T) {
			sc := rebalanceScenario("rc")
			sc.Mutation = tc.mutation
			r, err := RunChecked(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !r.FailsWith(tc.class) {
				t.Fatalf("mutation %s not caught by %s; violations: %v",
					tc.mutation, tc.class, r.Violations)
			}
		})
	}
}

// TestRebalanceFailureShrinks: a rebalancer failure must shrink to a
// small repro that keeps the mutation, the rebalance spec, and the two
// pool members the bug needs — and still fail identically.
func TestRebalanceFailureShrinks(t *testing.T) {
	sc := rebalanceScenario("rc")
	sc.Mutation = MutationRebalanceNoDisarm
	sc.Workloads = append(sc.Workloads,
		WorkloadSpec{Kind: WorkLoris, Count: 32},
		WorkloadSpec{Kind: WorkDisk, Count: 4})

	shrunk := Shrink(sc, "rebalance-oscillation")
	if shrunk.Mutation != MutationRebalanceNoDisarm {
		t.Fatal("shrink dropped the mutation")
	}
	if shrunk.Rebalance == nil {
		t.Fatal("shrink dropped the rebalance spec the mutation requires")
	}
	if len(shrunk.Containers) < 2 {
		t.Fatalf("shrink dropped the pool members: %+v", shrunk.Containers)
	}
	if len(shrunk.Workloads) > 1 {
		t.Fatalf("shrink kept %d workloads for a workload-independent bug", len(shrunk.Workloads))
	}
	r, err := Run(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FailsWith("rebalance-oscillation") {
		t.Fatalf("shrunk scenario no longer fails; violations: %v", r.Violations)
	}
}

// TestRebalanceValidate: rebalance mutations require the spec; the
// generator arms the controller on a stable subset of seeds.
func TestRebalanceValidate(t *testing.T) {
	sc := rebalanceScenario("rc")
	sc.Rebalance = nil
	sc.Mutation = MutationRebalanceLeak
	if err := sc.Validate(); err == nil {
		t.Fatal("rebalance mutation without spec passed Validate")
	}
	armed := 0
	for seed := uint64(0); seed < 64; seed++ {
		if Generate(seed).Rebalance != nil {
			armed++
		}
	}
	if armed < 16 || armed > 48 {
		t.Fatalf("generator armed %d/64 scenarios, want roughly half", armed)
	}
}
