package chaos

import (
	"path/filepath"
	"reflect"
	"testing"

	"rescon/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(5), Generate(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Generate(5) not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	// Nearby seeds must differ somewhere.
	c := Generate(6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("Generate(5) == Generate(6)")
	}
}

func TestGeneratedScenariosBuildAndRun(t *testing.T) {
	// Every generated scenario must build (the generator respects the
	// container layer's structural rules). Truncated horizons keep this
	// a build-path check, not a full chaos run.
	n := 20
	if testing.Short() {
		n = 6
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		sc := Generate(seed)
		sc.Horizon = 50 * sim.Millisecond
		if _, err := Run(sc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSmokeAllModes(t *testing.T) {
	runs := 2
	if testing.Short() {
		runs = 1
	}
	if err := Smoke(runs, 1); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	good := Generate(3)
	cases := map[string]func(*Scenario){
		"bad mode":       func(sc *Scenario) { sc.Mode = "turbo" },
		"zero cpus":      func(sc *Scenario) { sc.CPUs = 0 },
		"zero horizon":   func(sc *Scenario) { sc.Horizon = 0 },
		"bad mutation":   func(sc *Scenario) { sc.Mutation = "gremlins" },
		"bad kind":       func(sc *Scenario) { sc.Workloads = []WorkloadSpec{{Kind: "ddos"}} },
		"forward parent": func(sc *Scenario) { sc.Containers = []ContainerSpec{{Name: "x", Parent: 0}} },
		"bad crash":      func(sc *Scenario) { sc.Crash = &CrashSpec{} },
		"timeshare parent": func(sc *Scenario) {
			sc.Containers = []ContainerSpec{{Name: "a", Parent: -1}, {Name: "b", Parent: 0}}
		},
	}
	for name, mutate := range cases {
		sc := good
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, sc)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Generate(11)
	sc.Mutation = MutationPhantomCPU
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Fatalf("round trip changed scenario:\n%+v\nvs\n%+v", sc, got)
	}
}

// TestMutationCaughtAndShrinks is the harness's self-test: a planted
// accounting bug (CPU charged to a ghost principal) must be caught by
// the CPU-conservation invariant, and because the bug is independent of
// the generated scenario, shrinking must strip the scenario down to
// almost nothing while the repro keeps failing identically.
func TestMutationCaughtAndShrinks(t *testing.T) {
	sc := Generate(7)
	sc.Mode = "rc"
	sc.Mutation = MutationPhantomCPU
	r, err := RunChecked(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FailsWith("cpu-conservation") {
		t.Fatalf("phantom-cpu mutation not caught; violations: %v", r.Violations)
	}

	shrunk := Shrink(sc, "cpu-conservation")
	if len(shrunk.Workloads) > 2 || len(shrunk.Containers) > 3 {
		t.Fatalf("shrink left %d workloads, %d containers: %+v",
			len(shrunk.Workloads), len(shrunk.Containers), shrunk)
	}
	if shrunk.Mutation != MutationPhantomCPU {
		t.Fatal("shrink dropped the mutation")
	}
	rr, err := Run(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.FailsWith("cpu-conservation") {
		t.Fatalf("shrunk scenario no longer fails; violations: %v", rr.Violations)
	}

	// Repro replay: the shrunk scenario written to disk and loaded back
	// must reproduce the identical failure hash.
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := shrunk.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hash != r2.Hash {
		t.Fatalf("repro replay hash mismatch: %016x vs %016x", r1.Hash, r2.Hash)
	}
	if !reflect.DeepEqual(r1.Violations, r2.Violations) {
		t.Fatalf("repro replay violations differ:\n%v\nvs\n%v", r1.Violations, r2.Violations)
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]string{
		"fault: invariant violated at 1s: cpu-conservation: telemetry attributes 2s": "cpu-conservation",
		"fault: invariant violated at 1s: conn-conservation: established 5 != ...":   "conn-conservation",
		"fault: invariant violated at 1s: isolation-floor: premium stalled":          "isolation-floor",
		"determinism: run hashes differ":                                             "determinism",
		`fault: invariant violated at 1s: queue "x" over bound: 9 > 8`:               "queue-bound",
		"fault: invariant violated at 1s: container c has negative memory -1":        "non-negative",
		"fault: invariant violated at 1s: clock moved backwards":                     "monotonic-clock",
		"fault: invariant violated at 1s: CPU conservation broken at c":              "hierarchy-conservation",
		"something else entirely":                                                    "unknown",
	}
	for v, want := range cases {
		if got := Classify(v); got != want {
			t.Errorf("Classify(%q) = %q, want %q", v, got, want)
		}
	}
}
