// Package chaos is the deterministic chaos harness: it generates
// randomized-but-reproducible scenarios over the simulated server
// (container hierarchies with degenerate shapes, adversarial workload
// mixes, fault and crash schedules, all three kernel modes), runs them
// under a battery of cross-cutting invariants, and shrinks any failure
// to a minimal JSON repro.
//
// The design follows the simulation-testing school (FoundationDB,
// Antithesis): because the whole system — kernel, network, disk,
// clients, attackers — runs on one discrete-event engine seeded from a
// single integer, a failing run is a pure function of its Scenario and
// can be replayed, bisected and shrunk mechanically.
//
// The invariant battery extends the fault.Checker built-ins (CPU-charge
// hierarchy conservation, non-negative usage, queue bounds, clock
// monotonicity) with:
//
//   - CPU conservation: the telemetry profile's attributed processor
//     time must equal the machine's busy + interrupt time (every cycle
//     charged to some principal, no cycle charged twice) — the paper's
//     central accounting claim, checked to cpuEpsilon.
//   - Connection-lifecycle conservation: connections established ==
//     connections closed + connections open, at every checker tick.
//   - Isolation floor: when the scheduler is container-driven and
//     nothing external (crashes, wire faults, disk queues) can stall
//     it, a high-priority container with runnable work must make
//     progress whenever the machine does.
//   - Alert-flap: the alert monitor's flap counter stays zero — the
//     hysteresis/damping pipeline must absorb every oscillation the
//     scenario throws at it.
//   - Missed-detection: the monitor's self-check stays clean — any
//     signal that sustained a threshold long enough to raise must have
//     produced the corresponding event.
//   - Rebalance safety (scenarios that arm the adaptive rebalancer):
//     rebalance-conservation — the controller's pool allocations sum
//     exactly to the saved static total at every quiet point;
//     rebalance-starvation — no governed container ever sits below its
//     starvation floor; rebalance-oscillation — a controller whose
//     sign-flip count reaches the detector threshold must have
//     disarmed, and a disarmed controller must have restored the saved
//     static attributes verbatim. The planted-bug mutations
//     (MutationRebalance*) prove each class actually fires.
//   - Determinism: re-running a scenario must produce a byte-identical
//     state digest (RunChecked), alert stream and rebalance decision
//     journal included.
//
// Entry points: Generate (seed → Scenario), Run / RunChecked (Scenario
// → Result), Shrink (failing Scenario → minimal Scenario), Smoke (the
// CI loop). The rcchaos command wraps them for the command line.
package chaos

import (
	"fmt"
	"strings"
)

// Classify maps a violation string to its failure class, the unit of
// "fails the same way" used by Shrink and the rcchaos triage output.
func Classify(v string) string {
	for _, c := range []string{"cpu-conservation", "conn-conservation", "isolation-floor", "alert-flap", "missed-detection",
		"rebalance-conservation", "rebalance-starvation", "rebalance-oscillation",
		"live-conservation", "live-leak", "live-oscillation", "live-starvation", "determinism"} {
		if strings.Contains(v, c) {
			return c
		}
	}
	switch {
	case strings.Contains(v, "queue"):
		return "queue-bound"
	case strings.Contains(v, "negative"):
		return "non-negative"
	case strings.Contains(v, "clock") || strings.Contains(v, "fired-event"):
		return "monotonic-clock"
	case strings.Contains(v, "conservation broken"):
		return "hierarchy-conservation"
	}
	return "unknown"
}

// Classes summarizes a result's violations as its distinct failure
// classes, in first-occurrence order.
func Classes(r *Result) []string {
	var out []string
	seen := make(map[string]bool)
	for _, v := range r.Violations {
		c := Classify(v)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Smoke generates runs scenarios starting at seed and executes each one
// under all three kernel modes with the determinism double-run. It
// returns an error describing the first failing scenario, or nil if
// every run was clean — the form CI and `rcbench -exp chaos` consume.
func Smoke(runs int, seed uint64) error {
	for i := 0; i < runs; i++ {
		sc := Generate(seed + uint64(i))
		for _, mode := range ModeNames {
			sc.Mode = mode
			r, err := RunChecked(sc)
			if err != nil {
				return fmt.Errorf("chaos: seed %d mode %s: %w", sc.Seed, mode, err)
			}
			if r.Failed() {
				return fmt.Errorf("chaos: seed %d mode %s: %d violation(s), classes %v, first: %s",
					sc.Seed, mode, len(r.Violations), Classes(r), r.Violations[0])
			}
		}
	}
	return nil
}
