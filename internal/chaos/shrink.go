package chaos

import (
	"rescon/internal/fault"
	"rescon/internal/sim"
)

// emptyFaults is the zero fault schedule, for comparison and reset.
var emptyFaults fault.Config

// shrinkMaxRuns bounds the number of candidate executions one Shrink
// call may spend — a backstop against pathological plateaus, set far
// above what real failures need.
const shrinkMaxRuns = 200

// minHorizon is the shortest horizon Shrink will try: below a quarter
// second most scenarios cannot accumulate enough work to reach the
// interesting states, so shrinking further just produces flaky repros.
const minHorizon = 250 * sim.Millisecond

// Shrink greedily minimizes a failing scenario while preserving its
// failure class (see Classify): it repeatedly tries removing workloads,
// container subtrees, the crash plan and fault schedule, and halving
// workload sizes and the horizon, keeping every candidate that still
// fails the same way, until no single reduction does. The result is the
// minimal repro to ship in a bug report. Determinism failures re-run
// candidates through RunChecked (the class only manifests across a
// double run); every other class uses a single run per candidate.
func Shrink(sc Scenario, class string) Scenario {
	runs := 0
	fails := func(c Scenario) bool {
		if runs >= shrinkMaxRuns {
			return false
		}
		runs++
		var r *Result
		var err error
		if class == "determinism" {
			r, err = RunChecked(c)
		} else {
			r, err = Run(c)
		}
		return err == nil && r.FailsWith(class)
	}

	for reduced := true; reduced; {
		reduced = false
		// Remove whole workloads, last-to-first so indices stay valid.
		for i := len(sc.Workloads) - 1; i >= 0; i-- {
			cand := sc
			cand.Workloads = deleteAt(sc.Workloads, i)
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Halve workload sizes.
		for i := range sc.Workloads {
			cand := sc
			cand.Workloads = append([]WorkloadSpec(nil), sc.Workloads...)
			w := &cand.Workloads[i]
			shrunk := false
			if w.Count > 1 {
				w.Count /= 2
				shrunk = true
			}
			if w.Rate > 100 {
				w.Rate /= 2
				shrunk = true
			}
			if shrunk && fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Remove container subtrees, last-to-first.
		for i := len(sc.Containers) - 1; i >= 0; i-- {
			cand, ok := dropContainer(sc, i)
			if ok && fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Strip scenario-level knobs.
		if sc.Crash != nil {
			cand := sc
			cand.Crash = nil
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		if sc.Faults != (emptyFaults) {
			cand := sc
			cand.Faults = emptyFaults
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		if sc.Policing {
			cand := sc
			cand.Policing = false
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		// Disarm the adaptive rebalancer — legal only when no mutation
		// requires it (a rebalance mutation without the spec fails
		// Validate, and the failure it plants obviously needs the
		// controller to exist).
		if sc.Rebalance != nil && !isRebalanceMutation(sc.Mutation) {
			cand := sc
			cand.Rebalance = nil
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		if sc.CPUs > 1 {
			cand := sc
			cand.CPUs = 1
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
		if sc.Horizon/2 >= minHorizon {
			cand := sc
			cand.Horizon = sc.Horizon / 2
			if fails(cand) {
				sc = cand
				reduced = true
			}
		}
	}
	return sc
}

func deleteAt(ws []WorkloadSpec, i int) []WorkloadSpec {
	out := make([]WorkloadSpec, 0, len(ws)-1)
	out = append(out, ws[:i]...)
	return append(out, ws[i+1:]...)
}

// dropContainer removes spec idx and its whole subtree, remapping the
// surviving specs' parent indices. It reports false when nothing
// changed (idx out of range).
func dropContainer(sc Scenario, idx int) (Scenario, bool) {
	if idx < 0 || idx >= len(sc.Containers) {
		return sc, false
	}
	drop := make(map[int]bool, len(sc.Containers))
	drop[idx] = true
	for i := idx + 1; i < len(sc.Containers); i++ {
		if p := sc.Containers[i].Parent; p >= 0 && drop[p] {
			drop[i] = true
		}
	}
	newIdx := make(map[int]int, len(sc.Containers))
	out := make([]ContainerSpec, 0, len(sc.Containers)-len(drop))
	for i, cs := range sc.Containers {
		if drop[i] {
			continue
		}
		newIdx[i] = len(out)
		out = append(out, cs)
	}
	for j := range out {
		if out[j].Parent >= 0 {
			out[j].Parent = newIdx[out[j].Parent]
		}
	}
	cand := sc
	cand.Containers = out
	return cand, true
}
