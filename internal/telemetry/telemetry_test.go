package telemetry

import (
	"strings"
	"testing"

	"rescon/internal/sim"
	"rescon/internal/trace"
)

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	if c.cfg.TraceCapacity != DefaultTraceCapacity {
		t.Errorf("TraceCapacity = %d, want %d", c.cfg.TraceCapacity, DefaultTraceCapacity)
	}
	if c.cfg.TimelineCapacity != DefaultTimelineCapacity {
		t.Errorf("TimelineCapacity = %d, want %d", c.cfg.TimelineCapacity, DefaultTimelineCapacity)
	}
	if c.Interval() != DefaultSampleInterval {
		t.Errorf("Interval = %v, want %v", c.Interval(), DefaultSampleInterval)
	}
	if c.Tracer() == nil {
		t.Fatal("Tracer() = nil")
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.ChargeStage("x", trace.StageUser, sim.Millisecond)
	c.CountDispatch("x")
	c.Record(Sample{})
	if c.Tracer() != nil || c.Samples() != nil || c.ProfileRows() != nil {
		t.Error("nil collector should return nil views")
	}
	if c.StageCPU("x", trace.StageUser) != 0 || c.TotalDispatches() != 0 || c.Dispatches("x") != 0 {
		t.Error("nil collector should report zero counters")
	}
	if err := c.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if err := c.WriteChromeTrace(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
}

func TestTimelineRingEviction(t *testing.T) {
	c := New(Config{TimelineCapacity: 4})
	for i := 1; i <= 6; i++ {
		c.Record(Sample{At: sim.Time(i), Principal: "p"})
	}
	got := c.Samples()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	for i, s := range got {
		if want := sim.Time(i + 3); s.At != want {
			t.Errorf("sample %d At = %v, want %v (oldest evicted, record order kept)", i, s.At, want)
		}
	}
}

func TestProfileAccumulationAndSorting(t *testing.T) {
	c := New(Config{})
	c.ChargeStage("b", trace.StageUser, 10)
	c.ChargeStage("b", trace.StageUser, 5) // accumulates into the same cell
	c.ChargeStage("a", trace.StageSocket, 15)
	c.ChargeStage("a", trace.StageInterrupt, 40)
	c.ChargeStage("a", trace.StageIP, 15)
	c.ChargeStage("zero", trace.StageDisk, 0) // ignored
	c.ChargeStage("neg", trace.StageDisk, -3) // ignored
	if got := c.StageCPU("b", trace.StageUser); got != 15 {
		t.Errorf("StageCPU(b,user) = %v, want 15", got)
	}
	if got := c.TotalCPU(); got != 85 {
		t.Errorf("TotalCPU = %v, want 85", got)
	}
	rows := c.ProfileRows()
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	// CPU desc, then principal asc, then stage asc.
	want := []ProfileRow{
		{"a", trace.StageInterrupt, 40},
		{"a", trace.StageIP, 15},
		{"a", trace.StageSocket, 15},
		{"b", trace.StageUser, 15},
	}
	for i, r := range rows {
		if r != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestDispatchCounters(t *testing.T) {
	c := New(Config{})
	c.CountDispatch("a")
	c.CountDispatch("a")
	c.CountDispatch("b")
	if c.TotalDispatches() != 3 {
		t.Errorf("TotalDispatches = %d, want 3", c.TotalDispatches())
	}
	if c.Dispatches("a") != 2 || c.Dispatches("b") != 1 || c.Dispatches("c") != 0 {
		t.Errorf("per-principal dispatches wrong: a=%d b=%d c=%d",
			c.Dispatches("a"), c.Dispatches("b"), c.Dispatches("c"))
	}
}

// fill populates a collector with a fixed scene covering every record
// type the exporters render.
func fill(c *Collector) {
	c.SetRun(42, "RC")
	c.Tracer().Emit(trace.Event{
		At: 1000, Kind: trace.KindDispatch, CPU: 0, Stage: trace.StageUser,
		Principal: "httpd", Conn: 7, Cost: 500, Detail: `run "main"`,
	})
	c.Tracer().Emit(trace.Event{
		At: 2000, Kind: trace.KindDrop, CPU: -1, Principal: "attackers",
	})
	c.Record(Sample{At: 1000, Principal: "httpd", CPU: 500, Backlog: 2,
		BacklogHi: 3, ListenQ: 1, DiskQ: 0, Drops: 4, Dispatches: 9})
	c.ChargeStage("httpd", trace.StageUser, 500)
	c.ChargeStage("attackers", trace.StageInterrupt, 900)
	c.CountDispatch("httpd")
}

func TestWriteJSONL(t *testing.T) {
	c := New(Config{})
	fill(c)
	var b strings.Builder
	if err := c.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`{"type":"meta","seed":42,"mode":"RC","interval_ns":1000000,"events_total":2}`,
		`"type":"event","at_ns":1000,"kind":"dispatch","cpu":0,"stage":"user","principal":"httpd","conn":7,"cost_ns":500,"detail":"run \"main\""`,
		`"type":"sample","at_ns":1000,"principal":"httpd","cpu_ns":500,"backlog":2,"backlog_hi":3,"listenq":1,"diskq":0,"drops":4,"dispatches":9`,
		`"type":"profile","principal":"attackers","stage":"interrupt","cpu_ns":900`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSONL missing %s\ngot:\n%s", want, out)
		}
	}
	// Profile rows render hottest-first.
	if strings.Index(out, `"principal":"attackers","stage":"interrupt"`) >
		strings.Index(out, `"principal":"httpd","stage":"user","cpu_ns":500`) {
		t.Error("profile rows not sorted hottest-first in JSONL")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := New(Config{})
	fill(c)
	var b strings.Builder
	if err := c.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, `{"displayTimeUnit":"ms","traceEvents":[`) {
		t.Errorf("bad header: %q", out[:40])
	}
	for _, want := range []string{
		`"ph":"X","ts":1.000,"dur":0.500,"pid":1,"tid":0`, // cost-bearing event
		`"ph":"i"`,                          // zero-cost instant (drop)
		`{"name":"timeline:httpd","ph":"C"`, // counter track
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Chrome trace missing %s\ngot:\n%s", want, out)
		}
	}
}

func TestWriteProfileTopTable(t *testing.T) {
	c := New(Config{})
	fill(c)
	var b strings.Builder
	c.WriteProfile(&b, 1)
	out := b.String()
	if !strings.Contains(out, "PRINCIPAL") || !strings.Contains(out, "SHARE") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "attackers") {
		t.Errorf("hottest row missing:\n%s", out)
	}
	if strings.Contains(out, "httpd") {
		t.Errorf("topN=1 should cut the second row:\n%s", out)
	}
	if !strings.Contains(out, "... (1 more rows)") || !strings.Contains(out, "TOTAL") {
		t.Errorf("missing truncation marker or TOTAL:\n%s", out)
	}
}

// TestExportersDeterministic builds the same scene twice and checks every
// exporter emits byte-identical output.
func TestExportersDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		c := New(Config{})
		fill(c)
		var j, ch, p strings.Builder
		if err := c.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteChromeTrace(&ch); err != nil {
			t.Fatal(err)
		}
		c.WriteProfile(&p, 0)
		return j.String(), ch.String(), p.String()
	}
	j1, c1, p1 := render()
	j2, c2, p2 := render()
	if j1 != j2 {
		t.Error("JSONL output differs between identical runs")
	}
	if c1 != c2 {
		t.Error("Chrome trace output differs between identical runs")
	}
	if p1 != p2 {
		t.Error("profile output differs between identical runs")
	}
}

func TestUsFormatter(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"},
		{1500, "1.500"}, {2_000_003, "2000.003"}, {-1500, "-1.500"},
	}
	for _, c := range cases {
		if got := us(c.ns); got != c.want {
			t.Errorf("us(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}
