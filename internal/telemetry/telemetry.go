// Package telemetry is the simulator's observability layer: a structured
// trace ring, per-principal usage timelines sampled on a virtual-time
// ticker, and a virtual-CPU profile attributing every simulated CPU
// microsecond to (principal × kernel stage) — the paper's "the kernel
// knows where every microsecond went" accounting (§4.6, Figs 11–14) as a
// queryable table instead of a bespoke experiment.
//
// A Collector is attached to a kernel with Kernel.AttachTelemetry; every
// instrumentation point in the kernel is guarded by a nil check, so a
// detached collector costs nothing on the hot paths. All output is
// deterministic: principals are identified by name (never by numeric
// container ID, which is allocated from a process-global counter and is
// not stable across parallel runs), durations are exported as integer
// nanoseconds, and every exporter writes rows in a total order.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rescon/internal/metrics"
	"rescon/internal/sim"
	"rescon/internal/trace"
)

// Defaults used by Config fields left zero.
const (
	DefaultTraceCapacity    = 4096
	DefaultTimelineCapacity = 4096
	DefaultSampleInterval   = sim.Millisecond
)

// Config sizes a Collector.
type Config struct {
	// TraceCapacity bounds the structured trace ring (events retained).
	TraceCapacity int
	// TimelineCapacity bounds the usage-timeline ring (samples retained).
	TimelineCapacity int
	// SampleInterval is the virtual-time period between timeline samples.
	SampleInterval sim.Duration
}

// Sample is one usage-timeline row: the state of one principal at one
// sampling instant. CPU, Drops and Dispatches are cumulative (consumers
// difference adjacent samples for rates); queue depths are instantaneous
// with BacklogHi the high-water mark since the start of the run.
type Sample struct {
	At        sim.Time
	Principal string
	// CPU is the cumulative CPU time consumed by the principal.
	CPU sim.Duration
	// Backlog is the pending-protocol queue depth (packets awaiting
	// protocol processing); BacklogHi is its high-water mark.
	Backlog   int
	BacklogHi int
	// ListenQ is the accept-queue depth of the principal's listen socket.
	ListenQ int
	// DiskQ is the pending disk-request queue depth.
	DiskQ int
	// Drops is the cumulative count of packets dropped while charged to
	// the principal.
	Drops uint64
	// Dispatches is the cumulative count of CPU slices the scheduler has
	// granted the principal.
	Dispatches uint64
}

// ProfileRow is one cell of the virtual-CPU profile: the total CPU time
// attributed to one principal at one kernel stage.
type ProfileRow struct {
	Principal string
	Stage     trace.Stage
	CPU       sim.Duration
}

type stageKey struct {
	principal string
	stage     trace.Stage
}

// Collector accumulates trace events, timeline samples and the
// virtual-CPU profile for one kernel. It is not safe for concurrent use;
// like the rest of the simulation it lives on a single goroutine.
type Collector struct {
	cfg    Config
	tracer *trace.Tracer

	// timeline ring
	samples []Sample
	next    int
	full    bool

	profile       map[stageKey]sim.Duration
	dispatches    map[string]uint64
	totalDispatch uint64

	// sampleHooks run after the kernel records a full round of timeline
	// samples, in registration order; the alert layer subscribes here.
	sampleHooks []func(at sim.Time)

	// run identity, stamped into exporter headers.
	seed int64
	mode string
}

// New returns a collector sized by cfg (zero fields take the package
// defaults).
func New(cfg Config) *Collector {
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = DefaultTraceCapacity
	}
	if cfg.TimelineCapacity <= 0 {
		cfg.TimelineCapacity = DefaultTimelineCapacity
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = DefaultSampleInterval
	}
	return &Collector{
		cfg:        cfg,
		tracer:     trace.New(cfg.TraceCapacity),
		samples:    make([]Sample, cfg.TimelineCapacity),
		profile:    make(map[stageKey]sim.Duration),
		dispatches: make(map[string]uint64),
	}
}

// Tracer returns the collector's structured trace ring; the kernel
// installs it as its Tracer when the collector is attached.
func (c *Collector) Tracer() *trace.Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Interval returns the timeline sampling period.
func (c *Collector) Interval() sim.Duration { return c.cfg.SampleInterval }

// SetRun stamps the collector with the run's identity (engine seed and
// kernel mode) for exporter headers. The kernel calls it on attach.
func (c *Collector) SetRun(seed int64, mode string) {
	c.seed, c.mode = seed, mode
}

// AddSampleHook registers fn to run after every timeline sampling tick,
// once the kernel has recorded the tick's full round of samples. Hooks
// run in registration order on the simulation goroutine, so anything
// they compute from kernel state is deterministic. The alert layer
// (internal/alert) is the canonical subscriber.
func (c *Collector) AddSampleHook(fn func(at sim.Time)) {
	if c == nil || fn == nil {
		return
	}
	c.sampleHooks = append(c.sampleHooks, fn)
}

// FireSampleHooks runs the registered sample hooks; the kernel calls it
// at the end of each sampling tick. Nil-safe.
func (c *Collector) FireSampleHooks(at sim.Time) {
	if c == nil {
		return
	}
	for _, fn := range c.sampleHooks {
		fn(at)
	}
}

// ChargeStage attributes d of simulated CPU to (principal, stage) in the
// virtual-CPU profile. Nil-safe: a detached collector is a no-op.
func (c *Collector) ChargeStage(principal string, stage trace.Stage, d sim.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.profile[stageKey{principal, stage}] += d
}

// CountDispatch counts one scheduler dispatch of the principal. Nil-safe.
func (c *Collector) CountDispatch(principal string) {
	if c == nil {
		return
	}
	c.dispatches[principal]++
	c.totalDispatch++
}

// TotalDispatches returns the cumulative dispatch count across all
// principals.
func (c *Collector) TotalDispatches() uint64 {
	if c == nil {
		return 0
	}
	return c.totalDispatch
}

// Dispatches returns the cumulative dispatch count for the principal.
func (c *Collector) Dispatches(principal string) uint64 {
	if c == nil {
		return 0
	}
	return c.dispatches[principal]
}

// Record appends a timeline sample, evicting the oldest when the ring is
// full. Nil-safe.
func (c *Collector) Record(s Sample) {
	if c == nil {
		return
	}
	c.samples[c.next] = s
	c.next++
	if c.next == len(c.samples) {
		c.next = 0
		c.full = true
	}
}

// Samples returns the retained timeline samples in record order.
func (c *Collector) Samples() []Sample {
	if c == nil {
		return nil
	}
	if !c.full {
		out := make([]Sample, c.next)
		copy(out, c.samples[:c.next])
		return out
	}
	out := make([]Sample, 0, len(c.samples))
	out = append(out, c.samples[c.next:]...)
	out = append(out, c.samples[:c.next]...)
	return out
}

// StageCPU returns the profile cell for (principal, stage).
func (c *Collector) StageCPU(principal string, stage trace.Stage) sim.Duration {
	if c == nil {
		return 0
	}
	return c.profile[stageKey{principal, stage}]
}

// TotalCPU sums the whole profile.
func (c *Collector) TotalCPU() sim.Duration {
	var total sim.Duration
	for _, d := range c.profile {
		total += d
	}
	return total
}

// AttributedCPU sums the profile rows that represent processor time:
// every stage except StageDisk, which records disk-device occupancy
// rather than CPU consumption. This is the left-hand side of the CPU
// conservation invariant — it must equal the machine's thread busy time
// plus interrupt time whenever a collector is attached, in every kernel
// mode.
func (c *Collector) AttributedCPU() sim.Duration {
	if c == nil {
		return 0
	}
	var total sim.Duration
	for k, d := range c.profile {
		if k.stage == trace.StageDisk {
			continue
		}
		total += d
	}
	return total
}

// ProfileRows returns the virtual-CPU profile sorted hottest-first: by
// CPU descending, then principal, then stage — a total order, so the
// rendering is identical across runs and across serial/parallel
// execution.
func (c *Collector) ProfileRows() []ProfileRow {
	if c == nil {
		return nil
	}
	rows := make([]ProfileRow, 0, len(c.profile))
	for k, d := range c.profile {
		rows = append(rows, ProfileRow{Principal: k.principal, Stage: k.stage, CPU: d})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CPU != rows[j].CPU {
			return rows[i].CPU > rows[j].CPU
		}
		if rows[i].Principal != rows[j].Principal {
			return rows[i].Principal < rows[j].Principal
		}
		return rows[i].Stage < rows[j].Stage
	})
	return rows
}

// WriteProfile renders the top-table: one row per (principal, stage)
// profile cell, hottest first, with the share of total attributed CPU.
// topN <= 0 writes every row. The table uses the same renderer as the
// experiment drivers (metrics.Table), so profile output matches the
// rcbench idiom.
func (c *Collector) WriteProfile(w io.Writer, topN int) {
	rows := c.ProfileRows()
	total := c.TotalCPU()
	t := metrics.NewTable("", "PRINCIPAL", "STAGE", "CPU", "SHARE")
	for i, r := range rows {
		if topN > 0 && i >= topN {
			t.AddRow(fmt.Sprintf("... (%d more rows)", len(rows)-topN), "", "", "")
			break
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.CPU) / float64(total)
		}
		t.AddRow(r.Principal, r.Stage.String(), r.CPU.String(), fmt.Sprintf("%.2f%%", share))
	}
	t.AddRow("TOTAL", "-", total.String(), "100.00%")
	t.Render(w)
}

// jstr renders a JSON string with deterministic escaping.
func jstr(s string) string { return strconv.Quote(s) }

// WriteJSONL writes the full structured dump as one JSON object per
// line: a meta header, every retained trace event, every timeline
// sample, and every profile row. Encoding is hand-rolled so field order
// and number formatting are byte-stable; all durations are integer
// nanoseconds.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, `{"type":"meta","seed":%d,"mode":%s,"interval_ns":%d,"events_total":%d}`+"\n",
		c.seed, jstr(c.mode), int64(c.cfg.SampleInterval), c.tracer.Total())
	for _, e := range c.tracer.Events() {
		fmt.Fprintf(&b, `{"type":"event","at_ns":%d,"kind":%s,"cpu":%d,"stage":%s,"principal":%s,"conn":%d,"cost_ns":%d,"detail":%s}`+"\n",
			int64(e.At), jstr(string(e.Kind)), e.CPU, jstr(e.Stage.String()),
			jstr(e.Principal), e.Conn, int64(e.Cost), jstr(e.Detail))
	}
	for _, s := range c.Samples() {
		fmt.Fprintf(&b, `{"type":"sample","at_ns":%d,"principal":%s,"cpu_ns":%d,"backlog":%d,"backlog_hi":%d,"listenq":%d,"diskq":%d,"drops":%d,"dispatches":%d}`+"\n",
			int64(s.At), jstr(s.Principal), int64(s.CPU), s.Backlog, s.BacklogHi,
			s.ListenQ, s.DiskQ, s.Drops, s.Dispatches)
	}
	for _, r := range c.ProfileRows() {
		fmt.Fprintf(&b, `{"type":"profile","principal":%s,"stage":%s,"cpu_ns":%d}`+"\n",
			jstr(r.Principal), jstr(r.Stage.String()), int64(r.CPU))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// us renders nanoseconds as fractional microseconds (the trace_event
// time unit) using integer math, so the text is byte-stable.
func us(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteChromeTrace writes the collector's contents in Chrome
// trace_event format (the JSON loaded by chrome://tracing and Perfetto):
// cost-bearing trace events become "X" duration slices on their CPU's
// track, instantaneous events become "i" instants, and timeline samples
// become "C" counter tracks per principal.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if c == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",")
		}
		first = false
		b.WriteString("\n")
		b.WriteString(line)
	}
	for _, e := range c.tracer.Events() {
		tid := e.CPU
		if tid < 0 {
			tid = 0
		}
		name := e.Detail
		if name == "" {
			name = string(e.Kind)
		}
		args := fmt.Sprintf(`{"principal":%s,"stage":%s,"conn":%d}`,
			jstr(e.Principal), jstr(e.Stage.String()), e.Conn)
		if e.Cost > 0 {
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":%s}`,
				jstr(name), jstr(string(e.Kind)), us(int64(e.At)), us(int64(e.Cost)), tid, args))
		} else {
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,"args":%s}`,
				jstr(name), jstr(string(e.Kind)), us(int64(e.At)), tid, args))
		}
	}
	for _, s := range c.Samples() {
		emit(fmt.Sprintf(`{"name":%s,"ph":"C","ts":%s,"pid":1,"args":{"cpu_ms":%s,"backlog":%d,"listenq":%d,"diskq":%d,"drops":%d}}`,
			jstr("timeline:"+s.Principal), us(int64(s.At)), us(int64(s.CPU)), s.Backlog, s.ListenQ, s.DiskQ, s.Drops))
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
