package workload

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
)

// OpenLoopConfig configures an open-loop request generator: requests
// arrive at a fixed mean rate regardless of server progress — the load
// model that exposes receive livelock and overload collapse (§3.2,
// Mogul & Ramakrishnan [30]).
type OpenLoopConfig struct {
	Kernel *kernel.Kernel
	Src    netsim.Addr
	Dst    netsim.Addr
	// Rate is the mean request arrival rate (Poisson).
	Rate sim.Rate
	// MaxOutstanding bounds in-flight requests; arrivals beyond it are
	// refused and counted (the client gives up immediately, as S-Clients
	// do under overload). Default 64.
	MaxOutstanding int
	// Timeout abandons a request that got no response. Default 3 s.
	Timeout sim.Duration
}

// OpenLoopClient generates fixed-rate traffic.
type OpenLoopClient struct {
	cfg         OpenLoopConfig
	k           *kernel.Kernel
	eng         *sim.Engine
	rng         *sim.RNG
	nextPort    uint16
	outstanding int
	stopped     bool

	// Completions meters successful responses; Latency records their
	// response times; Refused counts arrivals dropped at the client for
	// exceeding MaxOutstanding; Abandoned counts request timeouts.
	Completions *metrics.RateMeter
	Latency     metrics.Summary
	Refused     metrics.Counter
	Abandoned   metrics.Counter
}

// StartOpenLoop launches an open-loop generator.
func StartOpenLoop(cfg OpenLoopConfig) *OpenLoopClient {
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * sim.Second
	}
	c := &OpenLoopClient{
		cfg:         cfg,
		k:           cfg.Kernel,
		eng:         cfg.Kernel.Engine(),
		nextPort:    cfg.Src.Port,
		Completions: metrics.NewRateMeter(cfg.Kernel.Now()),
	}
	c.rng = c.eng.Rand().Fork(uint64(cfg.Src.IP)<<16 | uint64(cfg.Src.Port) | 0xA5A5)
	c.scheduleNext()
	return c
}

// Stop halts new arrivals; in-flight requests finish or time out.
func (c *OpenLoopClient) Stop() { c.stopped = true }

// ResetStats starts a fresh measurement window.
func (c *OpenLoopClient) ResetStats() {
	c.Completions.Restart(c.k.Now())
	c.Latency.Reset()
	c.Refused.Reset()
	c.Abandoned.Reset()
}

func (c *OpenLoopClient) scheduleNext() {
	if c.stopped {
		return
	}
	gap := c.rng.Exp(c.cfg.Rate.Interval())
	c.eng.After(gap, func() {
		c.fire()
		c.scheduleNext()
	})
}

func (c *OpenLoopClient) fire() {
	if c.stopped {
		return
	}
	if c.outstanding >= c.cfg.MaxOutstanding {
		c.Refused.Inc()
		return
	}
	c.outstanding++
	start := c.k.Now()
	c.nextPort++
	if c.nextPort == 0 {
		c.nextPort = 1024
	}
	src := netsim.Addr{IP: c.cfg.Src.IP, Port: c.nextPort}
	settled := false
	settle := func() bool {
		if settled {
			return false
		}
		settled = true
		c.outstanding--
		return true
	}
	c.k.ClientSend(kernel.ConnectPacket(src, c.cfg.Dst, func(conn *kernel.Conn) {
		if settled || c.stopped {
			return
		}
		req := &httpsim.Request{
			Kind:       httpsim.Static,
			Size:       1024,
			CloseAfter: true,
			OnResponse: func(at sim.Time) {
				if settle() {
					c.Completions.Observe(at)
					c.Latency.ObserveDuration(at.Sub(start))
				}
			},
		}
		c.k.ClientSend(kernel.DataPacket(src, c.cfg.Dst, conn.ID(), 512, req))
	}))
	c.eng.After(c.cfg.Timeout, func() {
		if settle() {
			c.Abandoned.Inc()
		}
	})
}
