package workload

import (
	"testing"

	"rescon/internal/kernel"
	"rescon/internal/sim"
)

// silentServer accepts connections but never answers a request — the
// stimulus for client-side timeout, retry and abort machinery.
func silentServer(t *testing.T, k *kernel.Kernel) {
	t.Helper()
	p := k.NewProcess("silent")
	_, err := k.Listen(p, kernel.ListenConfig{
		Local: srvAddr,
		OnAcceptable: func(ls *kernel.ListenSocket) {
			if conn, ok := ls.Accept(); ok {
				conn.SetOnRequest(func(*kernel.Conn, any) {})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlooderStopRestart(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	f := StartFlood(k, 1000, kernel.Addr("66.0.0.1", 0).IP, 16, srvAddr)
	eng.RunUntil(sim.Time(sim.Second))
	afterOn := f.Sent()
	if afterOn < 900 || afterOn > 1100 {
		t.Fatalf("sent %d in 1s, want ~1000", afterOn)
	}

	f.Stop()
	f.Stop() // double Stop is safe
	eng.RunUntil(sim.Time(2 * sim.Second))
	if f.Sent() != afterOn {
		t.Fatalf("flood kept sending while stopped: %d -> %d", afterOn, f.Sent())
	}

	f.Restart()
	f.Restart() // Restart while running must not double the rate
	eng.RunUntil(sim.Time(3 * sim.Second))
	resumed := f.Sent() - afterOn
	if resumed < 900 || resumed > 1100 {
		t.Fatalf("sent %d in 1s after Restart, want ~1000 (on/off attacker resumes at its rate)", resumed)
	}
}

func TestClientBackoffSpacesRetries(t *testing.T) {
	// No server listening: every connect attempt times out. With backoff
	// the retries spread out, so the attempt count falls well below the
	// immediate-retry pace of one per ConnectTimeout.
	eng, k := newTestKernel()
	c := MustStartClient(ClientConfig{
		Kernel:         k,
		Src:            kernel.Addr("10.1.0.1", 1024),
		Dst:            srvAddr,
		ConnectTimeout: 50 * sim.Millisecond,
		BackoffBase:    100 * sim.Millisecond,
		BackoffMax:     400 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(5 * sim.Second))
	if c.Retries.Value() == 0 {
		t.Fatal("no backoff retries recorded")
	}
	// Immediate retries would yield ~100 timeouts in 5s; capped backoff
	// (≤400ms between attempts) must cut that by several times while
	// still making steady attempts.
	if n := c.Timeouts.Value(); n < 10 || n > 50 {
		t.Fatalf("timeouts %d, want backoff-paced (~12-30) not immediate (~100)", n)
	}
}

func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	eng, k := newTestKernel()
	c := MustStartClient(ClientConfig{
		Kernel:         k,
		Src:            kernel.Addr("10.1.0.1", 1024),
		Dst:            srvAddr,
		ConnectTimeout: 50 * sim.Millisecond,
		BackoffBase:    10 * sim.Millisecond,
		MaxRetries:     2,
		Think:          20 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(3 * sim.Second))
	if c.GiveUps.Value() < 2 {
		t.Fatalf("give-ups %d, want repeated abandon-and-move-on cycles", c.GiveUps.Value())
	}
	if c.Meter.Count() != 0 {
		t.Fatal("completed requests against no server")
	}
	// Every give-up consumed MaxRetries+1 timeouts.
	if c.Timeouts.Value() < 3*c.GiveUps.Value() {
		t.Fatalf("timeouts %d inconsistent with %d give-ups at MaxRetries=2",
			c.Timeouts.Value(), c.GiveUps.Value())
	}
}

func TestClientAbortsMidRequest(t *testing.T) {
	eng, k := newTestKernel()
	silentServer(t, k)
	c := MustStartClient(ClientConfig{
		Kernel:         k,
		Src:            kernel.Addr("10.1.0.1", 1024),
		Dst:            srvAddr,
		RequestTimeout: 400 * sim.Millisecond,
		AbortRate:      1, // every request is abandoned partway
		Think:          10 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(3 * sim.Second))
	if c.Aborts.Value() == 0 {
		t.Fatal("no aborts with AbortRate=1")
	}
	// Aborts land inside the first quarter of the request timeout, so the
	// timeout path never fires.
	if c.Timeouts.Value() != 0 {
		t.Fatalf("timeouts %d alongside aborts, want 0", c.Timeouts.Value())
	}
	if c.Meter.Count() != 0 {
		t.Fatal("aborted requests counted as completed")
	}
}

func TestSlowLorisHoldsAndReopens(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k) // trickled junk is not an httpsim request; server just holds the conn
	loris := StartSlowLoris(SlowLorisConfig{
		Kernel:  k,
		Src:     kernel.Addr("66.0.0.7", 1024),
		Dst:     srvAddr,
		Conns:   8,
		Trickle: 20 * sim.Millisecond,
		Hold:    300 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if loris.Opened() <= 8 {
		t.Fatalf("opened %d conns, want reopens beyond the initial 8 with 300ms Hold", loris.Opened())
	}
	if loris.Trickled() == 0 {
		t.Fatal("attacker never trickled data")
	}
	loris.Stop()
	opened, trickled := loris.Opened(), loris.Trickled()
	eng.RunUntil(sim.Time(4 * sim.Second))
	if loris.Opened() != opened || loris.Trickled() != trickled {
		t.Fatal("slow-loris kept running after Stop")
	}
}

func TestSlowLorisDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, k := newTestKernel()
		echoServer(t, k)
		loris := StartSlowLoris(SlowLorisConfig{
			Kernel:  k,
			Src:     kernel.Addr("66.0.0.7", 1024),
			Dst:     srvAddr,
			Conns:   8,
			Trickle: 20 * sim.Millisecond,
		})
		eng.RunUntil(sim.Time(2 * sim.Second))
		return loris.Opened(), loris.Trickled()
	}
	o1, t1 := run()
	o2, t2 := run()
	if o1 != o2 || t1 != t2 {
		t.Fatalf("slow-loris schedule not deterministic: (%d,%d) vs (%d,%d)", o1, t1, o2, t2)
	}
}
