package workload

import (
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
)

// SlowLorisConfig configures a slow-loris attacker.
type SlowLorisConfig struct {
	Kernel *kernel.Kernel
	// Src is the attacker's base address; connections cycle its port.
	Src netsim.Addr
	// Dst is the victim endpoint.
	Dst netsim.Addr
	// Conns is the number of connections held open (default 32).
	Conns int
	// Trickle is the mean interval between junk packets per connection
	// (default 250 ms — just frequent enough to look alive).
	Trickle sim.Duration
	// Hold closes and reopens each connection after this lifetime, so
	// the attack also churns the accept path. Zero holds forever.
	Hold sim.Duration
}

// SlowLoris models the slow-request attack: it opens many connections
// and keeps each alive by trickling tiny packets that never form a
// complete request. The server pays receive-protocol CPU for every
// trickle and pins socket-buffer memory for every held connection, yet
// never sees a request it could account against — low-bandwidth,
// high-occupancy overload, complementary to the SYN flood's
// high-bandwidth attack. With resource containers the per-connection
// (or per-source) charges expose the attacker; without them the cost
// dissolves into interrupt-level noise.
type SlowLoris struct {
	cfg      SlowLorisConfig
	k        *kernel.Kernel
	eng      *sim.Engine
	rng      *sim.RNG
	nextPort uint16
	opened   uint64
	trickled uint64
	stopped  bool
}

// StartSlowLoris launches the attacker immediately, staggering its
// connection attempts over one trickle interval.
func StartSlowLoris(cfg SlowLorisConfig) *SlowLoris {
	if cfg.Conns <= 0 {
		cfg.Conns = 32
	}
	if cfg.Trickle <= 0 {
		cfg.Trickle = 250 * sim.Millisecond
	}
	s := &SlowLoris{
		cfg:      cfg,
		k:        cfg.Kernel,
		eng:      cfg.Kernel.Engine(),
		nextPort: cfg.Src.Port,
	}
	// Own deterministic stream, keyed on the attacker's address so it
	// never perturbs the legitimate clients' schedules.
	s.rng = s.eng.Rand().Fork(0x510717 ^ uint64(cfg.Src.IP)<<16 | uint64(cfg.Src.Port))
	for i := 0; i < cfg.Conns; i++ {
		s.eng.After(s.rng.Uniform(0, cfg.Trickle), func() { s.openOne() })
	}
	return s
}

// Stop halts the attack; held connections simply go quiet (the attacker
// does not bother to close them).
func (s *SlowLoris) Stop() { s.stopped = true }

// Opened returns how many connections the attacker has established.
func (s *SlowLoris) Opened() uint64 { return s.opened }

// Trickled returns how many junk packets the attacker has sent.
func (s *SlowLoris) Trickled() uint64 { return s.trickled }

// openOne establishes one held connection, retrying if the SYN is shed.
func (s *SlowLoris) openOne() {
	if s.stopped {
		return
	}
	s.nextPort++
	if s.nextPort == 0 {
		s.nextPort = 1024
	}
	src := netsim.Addr{IP: s.cfg.Src.IP, Port: s.nextPort}
	established := false
	s.k.ClientSend(kernel.ConnectPacket(src, s.cfg.Dst, func(conn *kernel.Conn) {
		if s.stopped || established {
			return
		}
		established = true
		s.opened++
		s.drip(conn, s.k.Now())
	}))
	s.eng.After(4*s.cfg.Trickle, func() {
		if s.stopped || established {
			return
		}
		// SYN shed (policing, flood, loss): a real attacker retries.
		s.openOne()
	})
}

// drip keeps one connection alive with junk packets until Hold expires
// or the server closes it, then replaces it.
func (s *SlowLoris) drip(conn *kernel.Conn, openedAt sim.Time) {
	if s.stopped {
		return
	}
	if conn.Closed() {
		// The server shed us; come back.
		s.eng.After(s.cfg.Trickle, func() { s.openOne() })
		return
	}
	if s.cfg.Hold > 0 && s.k.Now().Sub(openedAt) >= s.cfg.Hold {
		s.k.ClientSend(kernel.FINPacket(conn.Client(), s.cfg.Dst, conn.ID()))
		s.eng.After(s.cfg.Trickle, func() { s.openOne() })
		return
	}
	s.trickled++
	// A 64-byte fragment that never completes a request: the server's
	// protocol path pays for it, the application never hears of it.
	s.k.ClientSend(kernel.DataPacket(conn.Client(), s.cfg.Dst, conn.ID(), 64, nil))
	s.eng.After(s.rng.Uniform(s.cfg.Trickle/2, s.cfg.Trickle*3/2), func() {
		s.drip(conn, openedAt)
	})
}
