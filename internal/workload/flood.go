package workload

import (
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
)

// Flooder sends bogus SYN packets at a fixed rate from addresses inside a
// source prefix — the "malicious clients" of §5.7.
type Flooder struct {
	k      *kernel.Kernel
	dst    netsim.Addr
	prefix netsim.IP
	hosts  uint32
	rate   sim.Rate
	sent   uint64
	ticker *sim.Ticker
}

// StartFlood begins a SYN flood of rate packets/second toward dst, with
// source addresses cycling through `hosts` addresses starting at prefix.
func StartFlood(k *kernel.Kernel, rate sim.Rate, prefix netsim.IP, hosts uint32, dst netsim.Addr) *Flooder {
	if hosts == 0 {
		hosts = 1
	}
	f := &Flooder{k: k, dst: dst, prefix: prefix, hosts: hosts, rate: rate}
	f.ticker = k.Engine().Every(rate.Interval(), func() { f.sendOne() })
	return f
}

func (f *Flooder) sendOne() {
	src := netsim.Addr{
		IP:   f.prefix + netsim.IP(uint32(f.sent)%f.hosts),
		Port: uint16(1024 + f.sent%50000),
	}
	f.sent++
	f.k.Arrive(kernel.SYNPacket(src, f.dst, true))
}

// Sent returns the number of flood packets emitted.
func (f *Flooder) Sent() uint64 { return f.sent }

// Stop pauses the flood. The source-address cycle is preserved, so a
// later Restart continues where the flood left off.
func (f *Flooder) Stop() {
	if f.ticker != nil {
		f.ticker.Stop()
		f.ticker = nil
	}
}

// Restart resumes a stopped flood at its original rate (an on/off
// attacker). Restarting a running flood is a no-op.
func (f *Flooder) Restart() {
	if f.ticker != nil {
		return
	}
	f.ticker = f.k.Engine().Every(f.rate.Interval(), func() { f.sendOne() })
}
