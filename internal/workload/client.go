// Package workload implements the client side of the paper's experiments
// (§5.2): closed-loop HTTP clients modeled on the S-Client [4], with
// connection timeouts and retries; persistent-connection clients; CGI
// request generators; and SYN flooders for the §5.7 attack.
//
// Clients run on the same virtual-time engine as the server kernel but
// consume no server CPU: only their packets do, via the kernel's receive
// path.
package workload

import (
	"errors"
	"fmt"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
)

// ClientConfig configures one closed-loop client.
type ClientConfig struct {
	Kernel *kernel.Kernel
	// Src is the client's address (its port is remapped per connection).
	Src netsim.Addr
	// Dst is the server endpoint.
	Dst netsim.Addr
	// Persistent reuses one connection for all requests (HTTP/1.1);
	// otherwise each request opens a fresh connection (1 conn/request).
	Persistent bool
	// Think is the pause between receiving a response and issuing the
	// next request. Zero means back-to-back (a saturating client).
	Think sim.Duration
	// Kind and CGICPU select the requested resource.
	Kind   httpsim.RequestKind
	CGICPU sim.Duration
	// Uncached requests miss the filesystem cache and hit the disk.
	Uncached bool
	// PathFor, when set, names the document for each request (consulting
	// the server's filesystem cache); the argument is the request number.
	PathFor func(i uint64) string
	// ConnectTimeout triggers a SYN retransmission; RequestTimeout
	// abandons a connection whose response never arrives. Both default
	// to 3 s, the BSD SYN retransmission interval.
	ConnectTimeout sim.Duration
	RequestTimeout sim.Duration

	// BackoffBase enables exponential backoff between timeout retries:
	// the i-th consecutive retry waits ~min(BackoffBase<<(i-1),
	// BackoffMax), with uniform jitter in [d/2, d] so a retrying
	// population desynchronizes instead of retransmitting in lockstep.
	// Zero keeps the S-Client's immediate-retransmit behavior.
	BackoffBase sim.Duration
	// BackoffMax caps the backoff delay; zero means 16×BackoffBase.
	BackoffMax sim.Duration
	// MaxRetries abandons a request after this many consecutive timeouts
	// (counted in GiveUps) and moves on to the next; zero retries
	// forever.
	MaxRetries int
	// AbortRate is the per-request probability that the client abandons
	// the request mid-flight — closing the connection before the
	// response arrives, like an impatient browser user. The server may
	// still be computing the response when the FIN lands.
	AbortRate float64
}

// Validate reports whether the configuration can produce a working
// client: a kernel to inject packets into and usable endpoints. It is
// called by StartClient, so a broken config surfaces as an error at
// start rather than a panic deep in the engine.
func (cfg ClientConfig) Validate() error {
	if cfg.Kernel == nil {
		return errors.New("workload: ClientConfig.Kernel is nil")
	}
	if cfg.Src.IP == 0 {
		return errors.New("workload: ClientConfig.Src has no IP address")
	}
	if cfg.Dst.IP == 0 || cfg.Dst.Port == 0 {
		return fmt.Errorf("workload: ClientConfig.Dst %v is not a usable endpoint", cfg.Dst)
	}
	if cfg.AbortRate < 0 || cfg.AbortRate > 1 {
		return fmt.Errorf("workload: ClientConfig.AbortRate %v outside [0,1]", cfg.AbortRate)
	}
	return nil
}

// Client is a closed-loop request generator: at most one outstanding
// request, like one S-Client slot.
type Client struct {
	cfg      ClientConfig
	k        *kernel.Kernel
	eng      *sim.Engine
	nextPort uint16
	conn     *kernel.Conn
	gen      uint64 // increments on every restart; stale callbacks no-op

	// Latency records response times (ms) for completed requests.
	Latency metrics.Summary
	// Meter counts completed requests for throughput.
	Meter *metrics.RateMeter
	// Timeouts counts connect/request timeouts.
	Timeouts metrics.Counter
	// Retries counts backoff-delayed retransmissions; Aborts counts
	// mid-request abandonments; GiveUps counts requests dropped after
	// MaxRetries consecutive timeouts.
	Retries metrics.Counter
	Aborts  metrics.Counter
	GiveUps metrics.Counter

	rng      *sim.RNG
	reqSeq   uint64
	attempts int // consecutive timeouts for the current request
	stopped  bool
}

// StartClient validates the configuration and launches the client's
// request loop immediately.
func StartClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 3 * sim.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 3 * sim.Second
	}
	c := &Client{
		cfg:      cfg,
		k:        cfg.Kernel,
		eng:      cfg.Kernel.Engine(),
		nextPort: cfg.Src.Port,
		Meter:    metrics.NewRateMeter(cfg.Kernel.Now()),
	}
	// Per-client deterministic randomness: think-time jitter
	// desynchronizes the population, as natural variance would on a real
	// testbed. The stream depends only on the client's address, so adding
	// a client does not perturb the others.
	c.rng = c.eng.Rand().Fork(uint64(cfg.Src.IP)<<16 | uint64(cfg.Src.Port))
	if cfg.Think > 0 {
		// Staggered start: spread initial requests over one think time.
		c.eng.After(c.rng.Uniform(0, cfg.Think), func() { c.startRequest() })
	} else {
		c.startRequest()
	}
	return c, nil
}

// MustStartClient is StartClient for callers whose configuration is
// known good (tests and experiment drivers); it panics on a validation
// error.
func MustStartClient(cfg ClientConfig) *Client {
	c, err := StartClient(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stop halts the loop after the current request completes or times out.
func (c *Client) Stop() { c.stopped = true }

// ResetStats discards warm-up measurements and starts a fresh window.
func (c *Client) ResetStats() {
	c.Latency.Reset()
	c.Meter.Restart(c.k.Now())
	c.Timeouts.Reset()
	c.Retries.Reset()
	c.Aborts.Reset()
	c.GiveUps.Reset()
}

func (c *Client) srcAddr() netsim.Addr {
	c.nextPort++
	if c.nextPort == 0 {
		c.nextPort = 1024
	}
	return netsim.Addr{IP: c.cfg.Src.IP, Port: c.nextPort}
}

// startRequest begins one request cycle: connect if needed, then send.
func (c *Client) startRequest() {
	if c.stopped {
		return
	}
	start := c.k.Now()
	if c.conn != nil && !c.conn.Closed() {
		c.sendRequest(c.conn, start)
		return
	}
	c.connect(start)
}

func (c *Client) connect(start sim.Time) {
	gen := c.gen
	established := false
	src := c.srcAddr()
	c.k.ClientSend(kernel.ConnectPacket(src, c.cfg.Dst, func(conn *kernel.Conn) {
		if c.gen != gen || established || c.stopped {
			return
		}
		established = true
		c.conn = conn
		c.sendRequest(conn, start)
	}))
	c.eng.After(c.cfg.ConnectTimeout, func() {
		if c.gen != gen || established || c.stopped {
			return
		}
		// SYN lost (queue overflow or wire fault): retransmit, as the
		// S-Client does — immediately, or after backoff when configured.
		c.retryAfterTimeout(func() { c.connect(start) })
	})
}

// retryAfterTimeout decides the fate of a timed-out attempt: give up
// after MaxRetries consecutive timeouts, otherwise retry — immediately
// (the S-Client default) or after a jittered exponential-backoff delay.
func (c *Client) retryAfterTimeout(retry func()) {
	c.Timeouts.Inc()
	c.gen++
	c.attempts++
	if c.cfg.MaxRetries > 0 && c.attempts > c.cfg.MaxRetries {
		c.GiveUps.Inc()
		c.attempts = 0
		c.conn = nil
		c.think()
		return
	}
	d := c.backoff()
	if d <= 0 {
		retry()
		return
	}
	c.Retries.Inc()
	c.eng.After(d, func() {
		if c.stopped {
			return
		}
		retry()
	})
}

// backoff returns the jittered exponential delay for the current retry
// attempt, or zero when backoff is disabled.
func (c *Client) backoff() sim.Duration {
	base := c.cfg.BackoffBase
	if base <= 0 {
		return 0
	}
	cap := c.cfg.BackoffMax
	if cap <= 0 {
		cap = 16 * base
	}
	d := base
	for i := 1; i < c.attempts && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return c.rng.Uniform(d/2, d)
}

func (c *Client) sendRequest(conn *kernel.Conn, start sim.Time) {
	gen := c.gen
	answered := false
	var path string
	if c.cfg.PathFor != nil {
		path = c.cfg.PathFor(c.reqSeq)
		c.reqSeq++
	}
	req := &httpsim.Request{
		Kind:       c.cfg.Kind,
		Size:       1024,
		CGICPU:     c.cfg.CGICPU,
		Uncached:   c.cfg.Uncached,
		Path:       path,
		CloseAfter: !c.cfg.Persistent,
		OnResponse: func(at sim.Time) {
			if c.gen != gen || answered || c.stopped {
				return
			}
			answered = true
			c.attempts = 0
			c.Latency.ObserveDuration(at.Sub(start))
			c.Meter.Observe(at)
			if !c.cfg.Persistent {
				c.conn = nil
			}
			c.think()
		},
	}
	c.k.ClientSend(kernel.DataPacket(conn.Client(), c.cfg.Dst, conn.ID(), 512, req))
	timeout := c.cfg.RequestTimeout
	if c.cfg.Kind == httpsim.CGI {
		// CGI responses legitimately take many seconds of CPU; give them
		// a far larger allowance scaled by the job size.
		timeout += 100 * c.cfg.CGICPU
	}
	c.eng.After(timeout, func() {
		if c.gen != gen || answered || c.stopped {
			return
		}
		c.conn = nil
		c.retryAfterTimeout(func() { c.startRequest() })
	})
	if c.cfg.AbortRate > 0 && c.rng.Float64() < c.cfg.AbortRate {
		// Impatient user: abandon the request partway through its
		// allowance, closing the connection under the server's feet. The
		// server may still spend CPU or disk on the doomed response.
		c.eng.After(c.rng.Uniform(0, timeout/4), func() {
			if c.gen != gen || answered || c.stopped {
				return
			}
			answered = true
			c.attempts = 0
			c.Aborts.Inc()
			c.k.ClientSend(kernel.FINPacket(conn.Client(), c.cfg.Dst, conn.ID()))
			c.conn = nil
			c.think()
		})
	}
}

func (c *Client) think() {
	if c.stopped {
		return
	}
	if c.cfg.Think <= 0 {
		c.startRequest()
		return
	}
	// Uniform ±50% jitter around the configured think time.
	pause := c.rng.Uniform(c.cfg.Think/2, c.cfg.Think*3/2)
	c.eng.After(pause, func() { c.startRequest() })
}

// Population is a set of identically configured clients with pooled
// statistics.
type Population struct {
	Clients []*Client
}

// StartPopulation validates the base configuration and launches n
// clients. Each gets a distinct source IP derived from base (base+1,
// base+2, ...), so filters can address them.
func StartPopulation(n int, base ClientConfig) (*Population, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	p := &Population{}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Src.IP = base.Src.IP + netsim.IP(i)
		c, err := StartClient(cfg)
		if err != nil {
			return nil, err
		}
		p.Clients = append(p.Clients, c)
	}
	return p, nil
}

// MustStartPopulation is StartPopulation for callers whose configuration
// is known good; it panics on a validation error.
func MustStartPopulation(n int, base ClientConfig) *Population {
	p, err := StartPopulation(n, base)
	if err != nil {
		panic(err)
	}
	return p
}

// ResetStats restarts every client's measurement window.
func (p *Population) ResetStats() {
	for _, c := range p.Clients {
		c.ResetStats()
	}
}

// Stop halts every client.
func (p *Population) Stop() {
	for _, c := range p.Clients {
		c.Stop()
	}
}

// Completed sums completed requests across the population.
func (p *Population) Completed() uint64 {
	var total uint64
	for _, c := range p.Clients {
		total += c.Meter.Count()
	}
	return total
}

// Rate returns the population's aggregate completion rate.
func (p *Population) Rate(now sim.Time) float64 {
	var total float64
	for _, c := range p.Clients {
		total += c.Meter.Rate(now)
	}
	return total
}

// MeanLatencyMs returns the mean response time across all clients' samples
// in milliseconds.
func (p *Population) MeanLatencyMs() float64 {
	var sum float64
	var n int
	for _, c := range p.Clients {
		sum += c.Latency.Mean() * float64(c.Latency.N())
		n += c.Latency.N()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String summarizes the population.
func (p *Population) String() string {
	return fmt.Sprintf("population(%d clients)", len(p.Clients))
}
