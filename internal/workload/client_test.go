package workload

import (
	"testing"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
)

var srvAddr = kernel.Addr("10.0.0.1", 80)

// echoServer is a minimal request sink: it accepts connections and
// answers every request immediately (zero think), so client mechanics can
// be tested without the full httpsim stack.
func echoServer(t *testing.T, k *kernel.Kernel) *kernel.Process {
	t.Helper()
	p := k.NewProcess("echo")
	th := p.NewThread("main")
	_, err := k.Listen(p, kernel.ListenConfig{
		Local: srvAddr,
		OnAcceptable: func(ls *kernel.ListenSocket) {
			conn, ok := ls.Accept()
			if !ok {
				return
			}
			conn.SetOnRequest(func(c *kernel.Conn, payload any) {
				req, ok := payload.(*httpsim.Request)
				if !ok {
					return
				}
				cont := c.Container()
				if k.Mode() != kernel.ModeRC {
					cont = nil
				}
				th.PostFunc("handle", 50*sim.Microsecond, 0, cont, func() {
					c.Send(th, req.Size, cont, func() {
						if req.OnResponse != nil {
							req.OnResponse(k.Now())
						}
					})
					if req.CloseAfter {
						c.Close()
					}
				})
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestKernel() (*sim.Engine, *kernel.Kernel) {
	eng := sim.NewEngine(11)
	return eng, kernel.New(eng, kernel.ModeUnmodified, kernel.DefaultCosts())
}

func TestClientClosedLoop(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	c := MustStartClient(ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if c.Meter.Count() < 100 {
		t.Fatalf("completed %d requests, want many", c.Meter.Count())
	}
	if c.Latency.N() != int(c.Meter.Count()) {
		t.Fatalf("latency samples %d != completions %d", c.Latency.N(), c.Meter.Count())
	}
	if c.Timeouts.Value() != 0 {
		t.Fatalf("unexpected timeouts: %d", c.Timeouts.Value())
	}
	// Closed loop: response time lower-bounds the cycle.
	if c.Latency.Min() <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestClientThinkTimeLimitsRate(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	c := MustStartClient(ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
		Think:  10 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(5 * sim.Second))
	rate := c.Meter.Rate(eng.Now())
	// cycle ≈ think (10ms ± jitter) + service; rate must be well under
	// the unthrottled rate and near 1/cycle ≈ 95/s.
	if rate < 60 || rate > 110 {
		t.Fatalf("rate %.1f/s, want ~95/s with 10ms think", rate)
	}
}

func TestClientPersistentSingleConnection(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	c := MustStartClient(ClientConfig{
		Kernel:     k,
		Src:        kernel.Addr("10.1.0.1", 1024),
		Dst:        srvAddr,
		Persistent: true,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if c.Meter.Count() < 100 {
		t.Fatalf("completed %d", c.Meter.Count())
	}
	// Persistent clients are faster than conn-per-request ones: compare.
	eng2, k2 := newTestKernel()
	echoServer(t, k2)
	c2 := MustStartClient(ClientConfig{
		Kernel: k2,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng2.RunUntil(sim.Time(sim.Second))
	if c.Meter.Count() <= c2.Meter.Count() {
		t.Fatalf("persistent (%d) should beat conn-per-request (%d)",
			c.Meter.Count(), c2.Meter.Count())
	}
}

func TestClientConnectTimeoutRetries(t *testing.T) {
	eng, k := newTestKernel()
	// No server listening: every SYN is dropped silently.
	c := MustStartClient(ClientConfig{
		Kernel:         k,
		Src:            kernel.Addr("10.1.0.1", 1024),
		Dst:            srvAddr,
		ConnectTimeout: 100 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if c.Timeouts.Value() < 8 {
		t.Fatalf("timeouts %d, want ~9 retries in 1s with 100ms timeout", c.Timeouts.Value())
	}
	if c.Meter.Count() != 0 {
		t.Fatal("completed requests against no server")
	}
}

func TestClientStop(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	c := MustStartClient(ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	c.Stop()
	n := c.Meter.Count()
	eng.RunUntil(sim.Time(sim.Second))
	if c.Meter.Count() > n+1 {
		t.Fatalf("client kept running after Stop: %d -> %d", n, c.Meter.Count())
	}
}

func TestClientResetStats(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	c := MustStartClient(ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	c.ResetStats()
	if c.Meter.Count() != 0 || c.Latency.N() != 0 {
		t.Fatal("ResetStats did not clear")
	}
	eng.RunUntil(sim.Time(sim.Second))
	if c.Meter.Count() == 0 {
		t.Fatal("client stopped after ResetStats")
	}
}

func TestPopulationDistinctIPs(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	pop := MustStartPopulation(4, ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	if len(pop.Clients) != 4 {
		t.Fatalf("clients %d", len(pop.Clients))
	}
	seen := map[netsim.IP]bool{}
	for _, c := range pop.Clients {
		if seen[c.cfg.Src.IP] {
			t.Fatal("duplicate client IP")
		}
		seen[c.cfg.Src.IP] = true
	}
	eng.RunUntil(sim.Time(sim.Second))
	if pop.Completed() < 400 {
		t.Fatalf("population completed %d", pop.Completed())
	}
	if pop.Rate(eng.Now()) <= 0 || pop.MeanLatencyMs() <= 0 {
		t.Fatal("population stats empty")
	}
	if pop.String() == "" {
		t.Fatal("empty population description")
	}
}

func TestPopulationStopAndReset(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	pop := MustStartPopulation(3, ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(200 * sim.Millisecond))
	pop.ResetStats()
	if pop.Completed() != 0 {
		t.Fatal("ResetStats did not clear population")
	}
	pop.Stop()
	eng.RunUntil(sim.Time(sim.Second))
	if pop.Completed() > 3 {
		t.Fatalf("population kept running after Stop: %d", pop.Completed())
	}
}

func TestMeanLatencyEmptyPopulation(t *testing.T) {
	_, k := newTestKernel()
	pop := &Population{}
	if pop.MeanLatencyMs() != 0 {
		t.Fatal("empty population latency should be 0")
	}
	_ = k
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		eng, k := newTestKernel()
		echoServer(t, k)
		pop := MustStartPopulation(8, ClientConfig{
			Kernel: k,
			Src:    kernel.Addr("10.1.0.1", 1024),
			Dst:    srvAddr,
			Think:  2 * sim.Millisecond,
		})
		eng.RunUntil(sim.Time(2 * sim.Second))
		return pop.Completed(), pop.MeanLatencyMs()
	}
	n1, l1 := run()
	n2, l2 := run()
	if n1 != n2 || l1 != l2 {
		t.Fatalf("simulation not deterministic: (%d, %v) vs (%d, %v)", n1, l1, n2, l2)
	}
}

func TestFlooderRate(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	f := StartFlood(k, 10_000, netsim.MustParseIP("66.0.0.1"), 16, srvAddr)
	eng.RunUntil(sim.Time(sim.Second))
	if f.Sent() < 9_000 || f.Sent() > 11_000 {
		t.Fatalf("flood sent %d in 1s, want ~10000", f.Sent())
	}
	f.Stop()
	n := f.Sent()
	eng.RunUntil(sim.Time(2 * sim.Second))
	if f.Sent() != n {
		t.Fatal("flooder kept sending after Stop")
	}
}

func TestFlooderCyclesSources(t *testing.T) {
	eng, k := newTestKernel()
	var srcs []netsim.IP
	p := k.NewProcess("sink")
	_, err := k.Listen(p, kernel.ListenConfig{
		Local:      srvAddr,
		SynBacklog: 1, // force drops so we see sources via OnSynDrop
		OnSynDrop:  func(a netsim.Addr) { srcs = append(srcs, a.IP) },
	})
	if err != nil {
		t.Fatal(err)
	}
	StartFlood(k, 1000, netsim.MustParseIP("66.0.0.1"), 4, srvAddr)
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	distinct := map[netsim.IP]bool{}
	for _, ip := range srcs {
		distinct[ip] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("flood used %d source addresses, want 4", len(distinct))
	}
}

func TestOpenLoopRateUnderCapacity(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	c := StartOpenLoop(OpenLoopConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
		Rate:   500,
	})
	eng.RunUntil(sim.Time(4 * sim.Second))
	rate := c.Completions.Rate(eng.Now())
	if rate < 450 || rate > 550 {
		t.Fatalf("open-loop completion rate %.0f, want ~500", rate)
	}
	if c.Refused.Value() != 0 {
		t.Fatalf("refused %d under capacity", c.Refused.Value())
	}
}

func TestOpenLoopRefusesBeyondOutstandingCap(t *testing.T) {
	eng, k := newTestKernel()
	// No server: requests pile up to the cap, then arrivals are refused.
	c := StartOpenLoop(OpenLoopConfig{
		Kernel:         k,
		Src:            kernel.Addr("10.1.0.1", 1024),
		Dst:            srvAddr,
		Rate:           1000,
		MaxOutstanding: 4,
		Timeout:        10 * sim.Second,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if c.Refused.Value() == 0 {
		t.Fatal("expected refusals at the outstanding cap")
	}
	if c.Completions.Count() != 0 {
		t.Fatal("completions against no server")
	}
}

func TestOpenLoopAbandonsOnTimeout(t *testing.T) {
	eng, k := newTestKernel()
	c := StartOpenLoop(OpenLoopConfig{
		Kernel:         k,
		Src:            kernel.Addr("10.1.0.1", 1024),
		Dst:            srvAddr,
		Rate:           100,
		MaxOutstanding: 1000,
		Timeout:        100 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if c.Abandoned.Value() < 150 {
		t.Fatalf("abandoned %d, want ~190 with no server", c.Abandoned.Value())
	}
}

func TestOpenLoopStop(t *testing.T) {
	eng, k := newTestKernel()
	echoServer(t, k)
	c := StartOpenLoop(OpenLoopConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
		Rate:   1000,
	})
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	c.Stop()
	n := c.Completions.Count()
	eng.RunUntil(sim.Time(2 * sim.Second))
	if c.Completions.Count() > n+2 {
		t.Fatalf("open-loop client kept firing after Stop")
	}
}

func TestClientsSurviveWireLoss(t *testing.T) {
	// Failure injection: 20% of client packets vanish; retries keep the
	// workload progressing, at reduced throughput and with timeouts.
	eng, k := newTestKernel()
	k.WireLossRate = 0.2
	echoServer(t, k)
	pop := MustStartPopulation(4, ClientConfig{
		Kernel:         k,
		Src:            kernel.Addr("10.1.0.1", 1024),
		Dst:            srvAddr,
		ConnectTimeout: 50 * sim.Millisecond,
		RequestTimeout: 50 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(5 * sim.Second))
	if pop.Completed() < 500 {
		t.Fatalf("completed %d under 20%% loss, want substantial progress", pop.Completed())
	}
	var timeouts uint64
	for _, c := range pop.Clients {
		timeouts += c.Timeouts.Value()
	}
	if timeouts == 0 {
		t.Fatal("no timeouts under 20% wire loss")
	}
	// Compare against a lossless run: loss must cost throughput.
	eng2, k2 := newTestKernel()
	echoServer(t, k2)
	pop2 := MustStartPopulation(4, ClientConfig{
		Kernel: k2,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng2.RunUntil(sim.Time(5 * sim.Second))
	if pop.Completed() >= pop2.Completed() {
		t.Fatalf("lossy run (%d) should trail lossless (%d)", pop.Completed(), pop2.Completed())
	}
}
