package rcruntime

import (
	"fmt"

	"rescon/internal/alert"
	"rescon/internal/rebalance"
	"rescon/internal/sim"
)

// AttachRebalancer hangs an adaptive rebalance.Controller off the
// monitor's tick, actuating through the enforcer: the whole control
// round — demand sampling, watchdog arbitration, SetAttributes — runs
// as one Enforcer.Sync critical section, so the controller never
// observes (or produces) a half-applied hierarchy while request
// goroutines are charging usage. Pool demand closures therefore run
// under the enforcer lock too: keep them to plain reads
// (Container.Usage, counters), and never call Sync from one.
//
// If the monitor's alert.Monitor drives a Watchdog, attach the watchdog
// first and list it in cfg.Freeze: OnTick hooks run in registration
// order, so the watchdog observes and acts on each tick before the
// rebalancer decides whether it is preempted. Pools are added
// afterwards with Controller.AddPool, once the tenant containers exist.
func AttachRebalancer(m *Monitor, cfg rebalance.Config) (*rebalance.Controller, error) {
	if m == nil {
		return nil, fmt.Errorf("rcruntime: AttachRebalancer needs a monitor")
	}
	ctrl := rebalance.New(cfg)
	enf := m.rt.enf
	m.am.OnTick(func(at sim.Time) {
		enf.Sync(func() { ctrl.Tick(at) })
	})
	return ctrl, nil
}

// watchdogFreezer documents the arbitration contract at the type level:
// both rcruntime.Watchdog and alert.Watchdog satisfy rebalance.Freezer.
var (
	_ rebalance.Freezer = (*Watchdog)(nil)
	_ rebalance.Freezer = (*alert.Watchdog)(nil)
)
