package rcruntime

import (
	"net"
	"sync"
	"testing"
	"time"

	"rescon/internal/rc"
)

// TestEnforcerPruneSweepsDestroyed: destroyed containers do not pin
// snapshot-table memory once the prune threshold is crossed, even when
// the window never rolls.
func TestEnforcerPruneSweepsDestroyed(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, time.Hour) // a window that never rolls inside the test
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	keeper := rc.MustNew(root, rc.FixedShare, "keeper", rc.Attributes{Limit: 0.5})

	// Populate a snapshot per short-lived limited leaf, then destroy them.
	var doomed []*rc.Container
	for i := 0; i < 70; i++ {
		c := rc.MustNew(root, rc.FixedShare, "tenant", rc.Attributes{Limit: 0.01})
		doomed = append(doomed, c)
		if _, ok := e.AcquireFor(c, 0); !ok {
			t.Fatalf("fresh leaf %d not admitted", i)
		}
	}
	for _, c := range doomed {
		e.Sync(func() {
			if err := c.Release(); err != nil {
				t.Errorf("release: %v", err)
			}
		})
	}

	// Arm the next sweep (the threshold self-tunes upward as the table
	// grows, so force it for determinism) and trigger it with one
	// ordinary admission.
	e.Sync(func() { e.pruneAt = len(e.snapshots) })
	if _, ok := e.AcquireFor(keeper, 0); !ok {
		t.Fatal("keeper not admitted")
	}

	var live int
	e.Sync(func() {
		live = len(e.snapshots)
		for c := range e.snapshots {
			if c.Destroyed() {
				t.Errorf("destroyed container %s survived the prune", c.Name())
			}
		}
		if e.pruneAt != minPruneSize {
			t.Errorf("pruneAt = %d after sweep, want reset to %d", e.pruneAt, minPruneSize)
		}
	})
	if live > 1 {
		t.Fatalf("%d snapshots survive, want only the keeper's", live)
	}
}

// TestEnforcerChurnRace hammers the enforcer with concurrent admissions,
// charges, and Sync'd container create/destroy churn — the tenant-reaper
// pattern — under the race detector and a real clock with a tiny window
// so rolls, prunes, and waiter wakeups all interleave.
func TestEnforcerChurnRace(t *testing.T) {
	e := New(nil, 200*time.Microsecond)
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	capped := rc.MustNew(root, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	stable := make([]*rc.Container, 4)
	for i := range stable {
		stable[i] = rc.MustNew(capped, rc.TimeShare, "stable", rc.Attributes{Priority: 1})
	}

	var wg sync.WaitGroup
	// Churners: create a leaf, run work through it, destroy it.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var leaf *rc.Container
				e.Sync(func() {
					leaf = rc.MustNew(capped, rc.TimeShare, "churn", rc.Attributes{Priority: 1})
				})
				if charge, ok := e.AcquireFor(leaf, time.Millisecond); ok {
					charge(20 * time.Microsecond)
				}
				e.Sync(func() { _ = leaf.Release() })
				// A charge landing after destruction must be ignored, not
				// crash or corrupt.
				e.Charge(leaf, 10*time.Microsecond)
			}
		}()
	}
	// Workers: admissions and probes against long-lived tenants.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(c *rc.Container) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if charge, ok := e.AcquireFor(c, 500*time.Microsecond); ok {
					charge(10 * time.Microsecond)
				}
				_ = e.OverBudget(c)
				_ = e.WindowRemaining()
			}
		}(stable[g%len(stable)])
	}
	wg.Wait()

	if got := time.Duration(root.Usage().CPU()); got == 0 {
		t.Fatal("no work was ever charged through the churned hierarchy")
	}
	e.Sync(func() {
		for c := range e.waiters {
			if c.Destroyed() {
				t.Errorf("destroyed container %s still holds parked waiters", c.Name())
			}
		}
	})
}

// TestListenerDoubleClose: the policed wrapper absorbs repeated closes,
// so a Shutdown racing an explicit Close never surfaces a spurious
// "use of closed network connection".
func TestListenerDoubleClose(t *testing.T) {
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	rt := MustNewRuntime(Config{Root: root})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := rt.Listener(inner)
	if err := ln.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := ln.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept on a closed listener succeeded")
	}
}

// TestGovernedConnCloseOnce: the inflight gauge is decremented exactly
// once no matter how many times a connection is closed — an HTTP server
// and a deferred cleanup both closing must not drive it negative.
func TestGovernedConnCloseOnce(t *testing.T) {
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	rt := MustNewRuntime(Config{Root: root})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := rt.Listener(inner)
	defer ln.Close()
	conns := acceptLoop(t, ln)

	client := dial(t, inner.Addr().String())
	defer client.Close()
	conn := <-conns
	if got := rt.Stats().Inflight; got != 1 {
		t.Fatalf("inflight = %d after accept, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if err := conn.Close(); err != nil && i == 0 {
			t.Fatalf("close: %v", err)
		}
	}
	if got := rt.Stats().Inflight; got != 0 {
		t.Fatalf("inflight = %d after triple close, want 0", got)
	}
	if got := rt.Stats().Accepted; got != 1 {
		t.Fatalf("accepted = %d, want 1", got)
	}
}
