package rcruntime

import (
	"net/http"
	"testing"
	"time"

	"rescon/internal/rc"
)

// breakerTree is a capped parent with two tenants, so one tenant can
// keep the shared budget exhausted while the other's breaker probes.
func breakerTree(t *testing.T) (root, t1, t2 *rc.Container, binder Binder) {
	t.Helper()
	root = rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	capped := rc.MustNew(root, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	t1 = rc.MustNew(capped, rc.TimeShare, "t1", rc.Attributes{Priority: 1})
	t2 = rc.MustNew(capped, rc.TimeShare, "t2", rc.Attributes{Priority: 1})
	return root, t1, t2, HeaderBinder("X-Tenant", map[string]*rc.Container{"t1": t1, "t2": t2}, nil)
}

// TestBreakerOpensAndRecloses walks the state machine: consecutive
// sheds open the breaker (503 without touching the enforcer), the open
// period elapses into a half-open probe, and an admitted probe closes
// it again.
func TestBreakerOpensAndRecloses(t *testing.T) {
	fc := &fakeClock{}
	root, t1, _, binder := breakerTree(t)
	sink := &recordingSink{}
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder), WithTelemetrySink(sink),
		WithBreakers(BreakerConfig{OpenAfter: 2})) // OpenFor defaults to 2 windows

	// Exhaust the 5 ms budget, then shed twice: the second shed trips it.
	get(h, "t1", "5ms")
	for i := 0; i < 2; i++ {
		if w := get(h, "t1", "1ms"); w.Code != http.StatusTooManyRequests {
			t.Fatalf("shed %d: status %d, want 429", i, w.Code)
		}
	}
	if !rt.BreakerOpen(t1) || rt.BreakerOpens(t1) != 1 || rt.OpenBreakers() != 1 {
		t.Fatalf("breaker not open after threshold: open=%t opens=%d count=%d",
			rt.BreakerOpen(t1), rt.BreakerOpens(t1), rt.OpenBreakers())
	}

	// While open: 503 from the breaker, before admission control.
	w := get(h, "t1", "1ms")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("breaker 503 missing Retry-After")
	}
	if ev := sink.last(t); ev.Cause != CauseBreaker {
		t.Fatalf("breaker event %+v", ev)
	}
	if s := rt.Stats(); s.BreakerShed != 1 || s.Shed != 2 {
		t.Fatalf("stats %+v", s)
	}

	// Past the open period the next request is the half-open probe; the
	// window has rolled, so it is admitted and the breaker closes.
	fc.Sleep(25 * time.Millisecond)
	if w := get(h, "t1", "1ms"); w.Code != http.StatusOK {
		t.Fatalf("probe status %d, want 200", w.Code)
	}
	if rt.BreakerOpen(t1) || rt.OpenBreakers() != 0 {
		t.Fatal("breaker still open after admitted probe")
	}
}

// TestBreakerProbeShedReopens: a half-open probe that is itself shed
// reopens the breaker with a doubled open duration — the exponential
// backoff that keeps a hammering tenant from oscillating the breaker.
func TestBreakerProbeShedReopens(t *testing.T) {
	fc := &fakeClock{}
	root, t1, _, binder := breakerTree(t)
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder),
		WithBreakers(BreakerConfig{OpenAfter: 1, OpenFor: 20 * time.Millisecond}))

	// Trip t1's breaker with one shed.
	get(h, "t1", "5ms")
	get(h, "t1", "1ms")
	if !rt.BreakerOpen(t1) {
		t.Fatal("breaker did not open")
	}

	// Let the open period pass, but have the sibling re-exhaust the
	// shared subtree budget first — the probe must be shed.
	fc.Sleep(20 * time.Millisecond)
	get(h, "t2", "5ms")
	if w := get(h, "t1", "1ms"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("probe status %d, want 429 (shed probe)", w.Code)
	}
	if rt.BreakerOpens(t1) != 2 {
		t.Fatalf("opens = %d, want 2 (reopen after failed probe)", rt.BreakerOpens(t1))
	}

	// The reopen doubled the open duration: 20 ms in, still rejecting
	// even though the window itself has rolled.
	fc.Sleep(21 * time.Millisecond)
	if w := get(h, "t1", "1ms"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d inside doubled open period, want 503", w.Code)
	}
	// After the full 40 ms the budget is fresh; the probe closes it.
	fc.Sleep(20 * time.Millisecond)
	if w := get(h, "t1", "1ms"); w.Code != http.StatusOK {
		t.Fatalf("probe after doubled backoff: status %d, want 200", w.Code)
	}
	if rt.BreakerOpen(t1) {
		t.Fatal("breaker still open after recovery")
	}
}

// TestBreakerDisabledByDefault: without WithBreakers the accessors are
// inert and repeated sheds never turn into 503s.
func TestBreakerDisabledByDefault(t *testing.T) {
	fc := &fakeClock{}
	root, leaf, binder := tenantTree(t)
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder))
	get(h, "capped", "5ms")
	for i := 0; i < 10; i++ {
		if w := get(h, "capped", "1ms"); w.Code != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429 every time without breakers", w.Code)
		}
	}
	if rt.BreakerOpen(leaf) || rt.BreakerOpens(leaf) != 0 || rt.OpenBreakers() != 0 {
		t.Fatal("breaker accessors not inert when disabled")
	}
}

func TestBreakerConfigDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults(10 * time.Millisecond)
	if cfg.OpenAfter != DefaultBreakerOpenAfter {
		t.Fatalf("OpenAfter = %d", cfg.OpenAfter)
	}
	if cfg.OpenFor != DefaultBreakerOpenFactor*10*time.Millisecond {
		t.Fatalf("OpenFor = %v", cfg.OpenFor)
	}
	if cfg.MaxOpenFor != DefaultBreakerMaxFactor*cfg.OpenFor {
		t.Fatalf("MaxOpenFor = %v", cfg.MaxOpenFor)
	}
	// An explicit MaxOpenFor below OpenFor is raised to OpenFor.
	cfg = BreakerConfig{OpenFor: time.Second, MaxOpenFor: time.Millisecond}.withDefaults(10 * time.Millisecond)
	if cfg.MaxOpenFor != time.Second {
		t.Fatalf("MaxOpenFor = %v, want clamped to OpenFor", cfg.MaxOpenFor)
	}
}
