package rcruntime

import (
	"errors"
	"testing"
	"time"

	"rescon/internal/rc"
)

func testTree(t *testing.T, limit float64) (root, leaf *rc.Container) {
	t.Helper()
	root = rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	capped := rc.MustNew(root, rc.FixedShare, "capped", rc.Attributes{Limit: limit})
	leaf = rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	return root, leaf
}

func TestConfigValidate(t *testing.T) {
	root, _ := testTree(t, 0.5)
	dead := rc.MustNew(nil, rc.FixedShare, "dead", rc.Attributes{})
	_ = dead.Release()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil root", Config{}},
		{"destroyed root", Config{Root: dead}},
		{"negative window", Config{Root: root, Window: -time.Second}},
		{"negative maxdelay", Config{Root: root, MaxDelay: -2}},
		{"policy frac out of range", Config{Root: root, Policy: AcceptPolicy{Enabled: true, MaxConns: 8, Frac: 1.5}}},
		{"policy negative maxconns", Config{Root: root, Policy: AcceptPolicy{Enabled: true, MaxConns: -1}}},
		{"enabled policy with no knobs", Config{Root: root, Policy: AcceptPolicy{Enabled: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Validate() = %v, want ErrBadConfig", err)
			}
			if _, err := NewRuntime(tc.cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("NewRuntime() error = %v, want ErrBadConfig", err)
			}
		})
	}
	// NoDelay is a valid MaxDelay, and a zero policy is fine.
	if err := (Config{Root: root, MaxDelay: NoDelay}).Validate(); err != nil {
		t.Fatalf("NoDelay config rejected: %v", err)
	}
}

func TestMustNewRuntimePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewRuntime(Config{}) did not panic")
		}
	}()
	MustNewRuntime(Config{})
}

func TestOptionOverrides(t *testing.T) {
	root, _ := testTree(t, 0.5)
	fc := &fakeClock{}
	rt, err := NewRuntime(Config{Root: root, Window: 50 * time.Millisecond},
		WithClock(fc), WithWindow(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Window() != 20*time.Millisecond {
		t.Fatalf("WithWindow not applied: window %v", rt.Window())
	}
	if rt.Root() != root {
		t.Fatal("Root() mismatch")
	}
	// Option overrides are validated like Config fields.
	if _, err := NewRuntime(Config{Root: root}, WithWindow(-time.Second)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative WithWindow accepted: %v", err)
	}
	// nil option values keep the defaults instead of crashing later.
	rt2, err := NewRuntime(Config{Root: root}, WithClock(nil), WithBinder(nil), WithTelemetrySink(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Window() != DefaultWindow {
		t.Fatalf("default window %v", rt2.Window())
	}
}

func TestAcquireForTryAcquire(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	_, leaf := testTree(t, 0.5)
	e.Acquire(leaf)(5 * time.Millisecond) // exhaust the window budget
	before := fc.Now()
	if _, ok := e.AcquireFor(leaf, 0); ok {
		t.Fatal("try-acquire admitted over-budget work")
	}
	if !fc.Now().Equal(before) {
		t.Fatal("try-acquire consumed time")
	}
	// Within budget, a try-acquire admits and returns a usable charge.
	fc.Sleep(11 * time.Millisecond)
	charge, ok := e.AcquireFor(leaf, 0)
	if !ok {
		t.Fatal("try-acquire refused in-budget work")
	}
	charge(time.Millisecond)
}

func TestAcquireForBoundedWaitExpires(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	_, leaf := testTree(t, 0.5)
	e.Acquire(leaf)(5 * time.Millisecond)
	before := fc.Now()
	if _, ok := e.AcquireFor(leaf, 4*time.Millisecond); ok {
		t.Fatal("admitted before the window rolled")
	}
	if waited := fc.Now().Sub(before); waited > 5*time.Millisecond {
		t.Fatalf("waited %v, want at most ~maxWait", waited)
	}
}

func TestAcquireForWaitsAcrossRoll(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	_, leaf := testTree(t, 0.5)
	e.Acquire(leaf)(5 * time.Millisecond)
	charge, ok := e.AcquireFor(leaf, 30*time.Millisecond)
	if !ok {
		t.Fatal("bounded wait long enough for a roll was refused")
	}
	charge(time.Millisecond)
}

func TestOverBudget(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	_, leaf := testTree(t, 0.5)
	if e.OverBudget(leaf) {
		t.Fatal("fresh container over budget")
	}
	e.Acquire(leaf)(5 * time.Millisecond)
	if !e.OverBudget(leaf) {
		t.Fatal("exhausted subtree not reported over budget")
	}
	fc.Sleep(11 * time.Millisecond)
	if e.OverBudget(leaf) {
		t.Fatal("over budget after the window rolled")
	}
	_ = leaf.Release()
	if e.OverBudget(leaf) {
		t.Fatal("destroyed container reported over budget")
	}
}

func TestWindowRemaining(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	_, leaf := testTree(t, 0.5)
	e.Acquire(leaf)(0) // rolls the window to "now"
	fc.Sleep(4 * time.Millisecond)
	if rem := e.WindowRemaining(); rem != 6*time.Millisecond {
		t.Fatalf("WindowRemaining() = %v, want 6ms", rem)
	}
	fc.Sleep(20 * time.Millisecond)
	if rem := e.WindowRemaining(); rem != 0 {
		t.Fatalf("expired window remaining %v, want 0", rem)
	}
}

// TestReleasedContainersPrunedMidWindow is the regression test for the
// snapshot-table leak: containers released mid-window must not pin
// memory until the next roll — with a long window (or a workload whose
// acquires are always admitted instantly, so the fake clock never
// advances and the window never rolls) the table would otherwise grow
// without bound, one entry per limited container ever acquired.
func TestReleasedContainersPrunedMidWindow(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, time.Hour) // never rolls during the test
	const churn = 1000
	for i := 0; i < churn; i++ {
		capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
		leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
		e.Acquire(leaf)(time.Millisecond)
		_ = leaf.Release()
		_ = capped.Release()
	}
	e.mu.Lock()
	n := len(e.snapshots)
	e.mu.Unlock()
	if n >= churn {
		t.Fatalf("snapshot table retained all %d released containers", n)
	}
	if n > 2*minPruneSize {
		t.Fatalf("snapshot table holds %d entries after churn, want <= %d", n, 2*minPruneSize)
	}
}
