package rcruntime

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"rescon/internal/alert"
	"rescon/internal/rc"
	"rescon/internal/rebalance"
)

// rebalanceRig is a governed runtime with BOTH actuators attached to
// one hierarchy: the overload watchdog (emergency clamps) and the
// adaptive rebalancer (a CPULimit pool over the two tenants), arbitrated
// via rebalance.Config.Freeze. Attach order matters and is the contract
// under test: watchdog first, rebalancer second, so each monitor tick
// runs watchdog observation before the rebalancer's freeze decision.
type rebalanceRig struct {
	fc   *fakeClock
	rt   *Runtime
	h    http.Handler
	am   *alert.Monitor
	mon  *Monitor
	wd   *Watchdog
	ctrl *rebalance.Controller
	root *rc.Container
	hog  *rc.Container
	good *rc.Container
}

func newRebalanceRig(t *testing.T, cfg rebalance.Config) *rebalanceRig {
	t.Helper()
	fc := &fakeClock{}
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	// Both tenants start with window budgets: the rebalancer moves the
	// budget between them; the watchdog may clamp the hog harder.
	hog := rc.MustNew(root, rc.FixedShare, "hog", rc.Attributes{Limit: 0.4})
	good := rc.MustNew(root, rc.FixedShare, "good", rc.Attributes{Limit: 0.4})
	binder := HeaderBinder("X-Tenant", map[string]*rc.Container{"hog": hog, "good": good}, nil)
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder))
	am := alert.New()
	mon, err := AttachMonitor(rt, am, MonitorConfig{
		TenantCPUWarn: 0.5, TenantCPUCrit: 0.75,
		Clear:   2,
		Tenants: []*rc.Container{hog},
	})
	if err != nil {
		t.Fatal(err)
	}
	wd := AttachWatchdog(mon, WatchdogConfig{
		ClampLimit: 0.1, BackoffTicks: 2, MaxBackoffTicks: 8,
		Clampable: []*rc.Container{hog},
	})
	cfg.Freeze = append(cfg.Freeze, wd)
	ctrl, err := AttachRebalancer(mon, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig := &rebalanceRig{fc: fc, rt: rt, h: h, am: am, mon: mon, wd: wd,
		ctrl: ctrl, root: root, hog: hog, good: good}
	demand := func(c *rc.Container) func() int64 {
		return func() int64 { return int64(c.Usage().CPU()) }
	}
	err = ctrl.AddPool(rebalance.PoolConfig{
		Name:     "tenants",
		Resource: rebalance.CPULimit,
		Members: []rebalance.Member{
			{Container: hog, Demand: demand(hog)},
			{Container: good, Demand: demand(good)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

// auditQuiet fails the test if any rebalance invariant is violated at a
// moment when the controller claims authority over the hierarchy.
func (r *rebalanceRig) auditQuiet(t *testing.T) {
	t.Helper()
	if v := r.ctrl.AuditConservation(); v != "" {
		t.Fatalf("conservation: %s", v)
	}
	if v := r.ctrl.AuditFloors(); v != "" {
		t.Fatalf("floor: %s", v)
	}
	if v := r.ctrl.AuditOscillation(); v != "" {
		t.Fatalf("oscillation: %s", v)
	}
}

// TestRebalancerChasesDemandThroughEnforcer: with no overload (watchdog
// quiet) a skewed workload pulls window budget toward the busy tenant,
// conserving the pool total and honoring floors at every tick.
func TestRebalancerChasesDemandThroughEnforcer(t *testing.T) {
	rig := newRebalanceRig(t, rebalance.Config{CooldownTicks: 1, DeadbandFrac: 0.01})
	for i := 0; i < 60; i++ {
		get(rig.h, "good", "4ms") // busy but under the 0.5 warn threshold
		get(rig.h, "hog", "1ms")
		rig.fc.Sleep(time.Millisecond)
		rig.mon.Tick()
		rig.auditQuiet(t)
	}
	if rig.wd.Engaged() {
		t.Fatal("watchdog engaged on a calm workload")
	}
	if rig.ctrl.Steps() == 0 {
		t.Fatal("rebalancer never stepped")
	}
	ha, ga := rig.hog.Attributes().Limit, rig.good.Attributes().Limit
	if ga <= ha {
		t.Fatalf("busy tenant limit %g not above idle tenant %g", ga, ha)
	}
	if total := ha + ga; total < 0.8-1e-9 || total > 0.8+1e-9 {
		t.Fatalf("pool total drifted: %g", total)
	}
}

// TestWatchdogEngageFreezesRebalancer is the arbitration protocol end
// to end: hog dominance engages the watchdog, which preempts and
// freezes the rebalancer (no steps while engaged); calm restores the
// watchdog's clamp, and after the calm hold-off the rebalancer resumes
// from the *actual* (restored) attributes, with conservation and floors
// intact throughout.
func TestWatchdogEngageFreezesRebalancer(t *testing.T) {
	rig := newRebalanceRig(t, rebalance.Config{CooldownTicks: 1, CalmTicks: 2, DeadbandFrac: 0.01})

	for i := 0; i < 4 && !rig.wd.Engaged(); i++ {
		get(rig.h, "hog", "9ms")
		get(rig.h, "good", "1ms")
		rig.fc.Sleep(time.Millisecond)
		rig.mon.Tick()
	}
	if !rig.wd.Engaged() {
		t.Fatal("watchdog never engaged")
	}
	if !rig.ctrl.Frozen() {
		t.Fatal("rebalancer not frozen while watchdog engaged")
	}
	if rig.ctrl.Freezes() != 1 {
		t.Fatalf("freezes = %d, want 1", rig.ctrl.Freezes())
	}

	// While engaged, the watchdog's clamp owns the hog: the rebalancer
	// must not step even under heavy skew.
	frozenSteps := rig.ctrl.Steps()
	for i := 0; i < 5; i++ {
		get(rig.h, "hog", "9ms")
		rig.fc.Sleep(time.Millisecond)
		rig.mon.Tick()
	}
	if rig.ctrl.Steps() != frozenSteps {
		t.Fatal("rebalancer stepped while the watchdog held the hierarchy")
	}
	if got := rig.hog.Attributes().Limit; got != 0.1 {
		t.Fatalf("hog limit %g while clamped, want the 0.1 emergency clamp", got)
	}

	// Calm: watchdog restores, then (after CalmTicks) the rebalancer
	// resyncs and resumes.
	for i := 0; i < 60 && rig.wd.Engaged(); i++ {
		get(rig.h, "good", "1ms")
		rig.fc.Sleep(time.Millisecond)
		rig.mon.Tick()
	}
	if rig.wd.Engaged() {
		t.Fatal("watchdog never restored")
	}
	for i := 0; i < 10 && rig.ctrl.Frozen(); i++ {
		get(rig.h, "good", "1ms")
		rig.fc.Sleep(time.Millisecond)
		rig.mon.Tick()
	}
	if rig.ctrl.Frozen() {
		t.Fatal("rebalancer never resumed after calm")
	}
	if rig.ctrl.Resumes() != 1 {
		t.Fatalf("resumes = %d, want 1", rig.ctrl.Resumes())
	}
	rig.auditQuiet(t)

	// Resumed control still works: skew toward good keeps moving budget.
	before := rig.good.Attributes().Limit
	for i := 0; i < 40; i++ {
		get(rig.h, "good", "4ms")
		rig.fc.Sleep(time.Millisecond)
		rig.mon.Tick()
		rig.auditQuiet(t)
	}
	if rig.good.Attributes().Limit < before {
		t.Fatalf("post-resume control shrank the busy tenant: %g -> %g",
			before, rig.good.Attributes().Limit)
	}
}

// TestInterleavedActuatorsUnderLoad drives both actuators through many
// engage/restore cycles while concurrent request goroutines hammer the
// middleware — the -race proof that rebalancer actuation through
// Enforcer.Sync does not tear the hierarchy, and that the share-sum and
// floor invariants hold at every quiet point.
func TestInterleavedActuatorsUnderLoad(t *testing.T) {
	rig := newRebalanceRig(t, rebalance.Config{CooldownTicks: 1, CalmTicks: 1, DeadbandFrac: 0.01})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := "good"
			if g%2 == 0 {
				tenant = "hog"
			}
			for {
				select {
				case <-stop:
					return
				default:
					get(rig.h, tenant, "1ms")
				}
			}
		}(g)
	}

	// Alternate hostile and calm phases: the watchdog cycles, the
	// rebalancer freezes/resumes around it.
	for phase := 0; phase < 6; phase++ {
		tenant, cost := "good", "1ms"
		if phase%2 == 0 {
			tenant, cost = "hog", "9ms"
		}
		for i := 0; i < 12; i++ {
			get(rig.h, tenant, cost)
			rig.fc.Sleep(time.Millisecond)
			rig.mon.Tick()
			rig.auditQuiet(t)
		}
	}
	close(stop)
	wg.Wait()

	if rig.ctrl.Ticks() == 0 || rig.ctrl.Steps() == 0 {
		t.Fatalf("controller idle through the storm: ticks=%d steps=%d",
			rig.ctrl.Ticks(), rig.ctrl.Steps())
	}
	if rig.wd.Engagements() == 0 {
		t.Fatal("watchdog never engaged during hostile phases")
	}
	if rig.ctrl.Freezes() == 0 {
		t.Fatal("rebalancer never froze despite watchdog engagements")
	}
	if rig.ctrl.ActuationErrors() != 0 {
		t.Fatalf("%d actuation errors", rig.ctrl.ActuationErrors())
	}
	rig.auditQuiet(t)
	if msg := rig.am.SelfCheck(); msg != "" {
		t.Fatalf("alert self-check: %s", msg)
	}
}

// TestAttachRebalancerValidation rejects a nil monitor.
func TestAttachRebalancerValidation(t *testing.T) {
	if _, err := AttachRebalancer(nil, rebalance.Config{}); err == nil {
		t.Fatal("nil monitor accepted")
	}
}
