// Watchdog: the closed loop on top of the runtime check battery — the
// live-server counterpart of the simulation's alert.Watchdog. On a
// critical overload alert it swaps in a tight AcceptPolicy (refuse new
// connections early, before a goroutine or a parsed request is invested
// in them) and, when one clampable tenant dominates recent CPU, caps
// that tenant's Limit via SetAttributes under the enforcer's lock. Once
// every trigger alert has cleared it restores the saved policy and
// attributes after an exponential-backoff delay, so a borderline server
// does not oscillate between policed and unpoliced. Every action is
// journaled into the alert stream under alert.WatchdogCheckName, so the
// JSONL shows the full detection→reaction→restore loop.

package rcruntime

import (
	"fmt"
	"time"

	"rescon/internal/alert"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Watchdog reaction defaults, in monitor ticks where noted.
const (
	// DefaultWatchdogClampLimit is the CPU-fraction cap applied to a
	// runaway clampable tenant while the watchdog is engaged.
	DefaultWatchdogClampLimit = 0.5
	// DefaultWatchdogBackoffTicks is the initial delay between the last
	// trigger alert clearing and the watchdog restoring saved settings.
	DefaultWatchdogBackoffTicks = 16
	// DefaultWatchdogMaxBackoffTicks caps the exponential restore backoff.
	DefaultWatchdogMaxBackoffTicks = 256
	// WatchdogClampWindowTicks is the CPU-accounting window used to
	// decide which clampable tenant is the runaway.
	WatchdogClampWindowTicks = 8
)

// WatchdogConfig tunes the runtime's closed loop; zero values take the
// defaults above.
type WatchdogConfig struct {
	// Triggers are the check names whose critical alerts engage the
	// watchdog. Default: rt-shed-rate, rt-refuse-rate, rt-inflight and
	// rt-tenant-cpu.
	Triggers []string
	// TightPolicy is the emergency AcceptPolicy applied while engaged.
	// Zero keeps the saved policy's connection cap (halved, when set)
	// and, crucially, points OverBudgetOf at the clamped runaway — the
	// only target that actually fires, since an unlimited root is never
	// over budget.
	TightPolicy AcceptPolicy
	// ClampLimit is the Attributes.Limit applied to a runaway tenant.
	ClampLimit float64
	// BackoffTicks / MaxBackoffTicks control the restore delay and its
	// exponential growth when the watchdog re-engages soon after a
	// restore.
	BackoffTicks    int
	MaxBackoffTicks int
	// Clampable lists the tenants the watchdog may cap. Only explicitly
	// listed containers are ever touched — clamping the server's own
	// container would convert an overload into an outage.
	Clampable []*rc.Container
}

func (cfg WatchdogConfig) withDefaults() WatchdogConfig {
	if len(cfg.Triggers) == 0 {
		cfg.Triggers = []string{CheckShedRate, CheckRefuseRate, CheckInflight, CheckTenantCPU}
	}
	if cfg.ClampLimit <= 0 {
		cfg.ClampLimit = DefaultWatchdogClampLimit
	}
	if cfg.BackoffTicks <= 0 {
		cfg.BackoffTicks = DefaultWatchdogBackoffTicks
	}
	if cfg.MaxBackoffTicks <= 0 {
		cfg.MaxBackoffTicks = DefaultWatchdogMaxBackoffTicks
	}
	return cfg
}

type alertKey struct{ check, target string }

// Watchdog holds the closed-loop state for one Runtime: which trigger
// keys are critical, the saved pre-engagement policy and attributes,
// and the restore countdown. It is driven entirely by the monitor's
// event and tick hooks — it has no goroutine of its own.
type Watchdog struct {
	rt  *Runtime
	m   *Monitor
	cfg WatchdogConfig

	critical map[alertKey]bool

	engaged     bool
	savedPolicy AcceptPolicy
	clamped     *rc.Container
	savedAttrs  rc.Attributes

	countdown      int // ticks until restore; -1 when no restore pending
	backoff        int
	hasRestored    bool
	restoredAtTick uint64

	engagements uint64
	restores    uint64

	// per-clampable CPU history ring for runaway detection.
	prevCPU []time.Duration
	deltas  [][]time.Duration
	histPos int
}

// AttachWatchdog wires a watchdog to the monitor's alert stream. Call
// after AttachMonitor, before serving load.
func AttachWatchdog(m *Monitor, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		rt: m.rt, m: m, cfg: cfg.withDefaults(),
		critical:  make(map[alertKey]bool),
		countdown: -1,
	}
	w.backoff = w.cfg.BackoffTicks
	w.prevCPU = make([]time.Duration, len(w.cfg.Clampable))
	w.deltas = make([][]time.Duration, len(w.cfg.Clampable))
	w.rt.enf.Sync(func() {
		for i, c := range w.cfg.Clampable {
			w.prevCPU[i] = time.Duration(c.Usage().CPU())
			w.deltas[i] = make([]time.Duration, WatchdogClampWindowTicks)
		}
	})
	m.am.OnEvent(w.onEvent)
	m.am.OnTick(w.onTick)
	return w
}

// Engaged reports whether the watchdog's emergency settings are
// currently applied.
func (w *Watchdog) Engaged() bool { return w.engaged }

// Engagements returns how many times the watchdog has engaged.
func (w *Watchdog) Engagements() uint64 { return w.engagements }

// Restores returns how many times saved settings have been restored.
func (w *Watchdog) Restores() uint64 { return w.restores }

// Clamped returns the tenant currently clamped, or nil.
func (w *Watchdog) Clamped() *rc.Container { return w.clamped }

func (w *Watchdog) isTrigger(check string) bool {
	for _, t := range w.cfg.Triggers {
		if t == check {
			return true
		}
	}
	return false
}

func (w *Watchdog) onEvent(ev alert.Event) {
	if !w.isTrigger(ev.Check) {
		return
	}
	k := alertKey{ev.Check, ev.Target}
	if ev.Level == alert.LevelCritical {
		w.critical[k] = true
		w.engage(ev)
		return
	}
	if !w.critical[k] {
		return
	}
	delete(w.critical, k)
	if w.engaged && len(w.critical) == 0 && w.countdown < 0 {
		w.countdown = w.backoff
		w.m.am.Note(ev.At, alert.WatchdogCheckName, "(runtime-watchdog)", alert.LevelOk,
			fmt.Sprintf("overload cleared; restore in %d tick(s)", w.countdown))
	}
}

func (w *Watchdog) engage(ev alert.Event) {
	if w.engaged {
		// Overload returned while waiting to restore: cancel the
		// countdown, keep the emergency settings.
		w.countdown = -1
		return
	}
	w.engaged = true
	w.engagements++
	if w.hasRestored && w.m.am.Ticks()-w.restoredAtTick <= alert.FlapWindowTicks {
		// Re-engaged right after restoring — the restore was premature.
		// Back off harder next time.
		w.backoff *= 2
		if w.backoff > w.cfg.MaxBackoffTicks {
			w.backoff = w.cfg.MaxBackoffTicks
		}
	} else {
		w.backoff = w.cfg.BackoffTicks
	}
	w.countdown = -1

	// Clamp first: the derived tight policy wants the runaway as its
	// OverBudgetOf target (an unlimited root never reads as over budget,
	// so pointing the policy there would refuse nothing).
	if c := w.runaway(); c != nil {
		attrs := c.Attributes()
		if attrs.Limit == 0 || attrs.Limit > w.cfg.ClampLimit {
			w.clamped = c
			w.savedAttrs = attrs
			na := attrs
			na.Limit = w.cfg.ClampLimit
			var err error
			w.rt.enf.Sync(func() { err = c.SetAttributes(na) })
			if err != nil {
				w.clamped = nil
			} else {
				w.m.am.Note(ev.At, alert.WatchdogCheckName, c.Name(), alert.LevelCritical,
					fmt.Sprintf("clamped runaway tenant limit=%g (was %g)", w.cfg.ClampLimit, w.savedAttrs.Limit))
			}
		}
	}

	w.savedPolicy = w.rt.Policy()
	tight := w.cfg.TightPolicy
	if !tight.Enabled {
		tight = AcceptPolicy{Enabled: true, MaxConns: w.savedPolicy.MaxConns, Frac: w.savedPolicy.Frac}
		if tight.MaxConns > 1 {
			tight.MaxConns /= 2
		}
	}
	if tight.OverBudgetOf == nil && w.clamped != nil {
		tight.OverBudgetOf = w.clamped
	}
	if err := w.rt.SetPolicy(tight); err != nil {
		// Neither a connection cap nor a clamped runaway to police by:
		// nothing the accept path can refuse on. Keep the saved policy.
		w.m.am.Note(ev.At, alert.WatchdogCheckName, "(runtime-watchdog)", alert.LevelCritical,
			fmt.Sprintf("engaged on %s/%s: policy unchanged (%v)", ev.Check, ev.Target, err))
		return
	}
	w.m.am.Note(ev.At, alert.WatchdogCheckName, "(runtime-watchdog)", alert.LevelCritical,
		fmt.Sprintf("engaged on %s/%s: policy tightened max_conns=%d over_budget_of=%s (was enabled=%t max_conns=%d)",
			ev.Check, ev.Target, tight.MaxConns, policyTarget(tight.OverBudgetOf),
			w.savedPolicy.Enabled, w.savedPolicy.MaxConns))
}

func policyTarget(c *rc.Container) string {
	if c == nil {
		return "(none)"
	}
	return c.Name()
}

// runaway returns the clampable tenant that dominated CPU over the last
// WatchdogClampWindowTicks: it must have consumed more than half the
// CPU charged to all clampables in the window. Ties and quiet windows
// return nil — the watchdog never guesses.
func (w *Watchdog) runaway() *rc.Container {
	var total time.Duration
	sums := make([]time.Duration, len(w.cfg.Clampable))
	for i := range w.cfg.Clampable {
		for _, d := range w.deltas[i] {
			sums[i] += d
		}
		total += sums[i]
	}
	if total <= 0 {
		return nil
	}
	best, bestIdx := time.Duration(0), -1
	for i, s := range sums {
		if s > best {
			best, bestIdx = s, i
		}
	}
	if bestIdx < 0 || best*2 <= total {
		return nil
	}
	c := w.cfg.Clampable[bestIdx]
	if c.Destroyed() {
		return nil
	}
	return c
}

func (w *Watchdog) onTick(at sim.Time) {
	// Advance the CPU window ring.
	if len(w.cfg.Clampable) > 0 {
		w.rt.enf.Sync(func() {
			for i, c := range w.cfg.Clampable {
				cur := time.Duration(c.Usage().CPU())
				w.deltas[i][w.histPos] = cur - w.prevCPU[i]
				w.prevCPU[i] = cur
			}
		})
		w.histPos = (w.histPos + 1) % WatchdogClampWindowTicks
	}

	if !w.engaged || w.countdown < 0 {
		return
	}
	w.countdown--
	if w.countdown > 0 {
		return
	}
	w.restore(at)
}

func (w *Watchdog) restore(at sim.Time) {
	_ = w.rt.SetPolicy(w.savedPolicy)
	detail := fmt.Sprintf("restored policy enabled=%t max_conns=%d", w.savedPolicy.Enabled, w.savedPolicy.MaxConns)
	if w.clamped != nil {
		c, attrs := w.clamped, w.savedAttrs
		w.rt.enf.Sync(func() {
			if !c.Destroyed() {
				_ = c.SetAttributes(attrs)
			}
		})
		detail += fmt.Sprintf("; unclamped %s limit=%g", c.Name(), attrs.Limit)
		w.clamped = nil
	}
	w.engaged = false
	w.countdown = -1
	w.hasRestored = true
	w.restoredAtTick = w.m.am.Ticks()
	w.restores++
	w.m.am.Note(at, alert.WatchdogCheckName, "(runtime-watchdog)", alert.LevelOk, detail)
}
