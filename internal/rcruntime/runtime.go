package rcruntime

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rescon/internal/rc"
)

// ErrBadConfig is returned by NewRuntime for invalid configurations.
var ErrBadConfig = errors.New("rcruntime: invalid config")

// NoDelay as Config.MaxDelay sheds over-budget requests immediately with
// 429 instead of holding them for the window to roll.
const NoDelay time.Duration = -1

// Config configures a Runtime. Root is required; zero values elsewhere
// take defaults. Validate reports problems as errors — the Runtime never
// panics on user input.
type Config struct {
	// Root is the top of the governed container hierarchy. Requests for
	// which the Binder returns no container are charged here.
	Root *rc.Container
	// Window is the limit-enforcement window (0 = DefaultWindow): a
	// subtree with Limit L may consume at most L×Window of CPU per
	// window.
	Window time.Duration
	// MaxDelay bounds how long an over-budget request is held for budget
	// before being shed with 429 Too Many Requests. 0 means one Window
	// (delay at most one roll); NoDelay sheds immediately.
	MaxDelay time.Duration
	// Policy is accept-time admission control, applied by Listener.
	Policy AcceptPolicy
}

// Validate reports the first problem with the configuration, wrapping
// ErrBadConfig, or nil.
func (c Config) Validate() error {
	if c.Root == nil {
		return fmt.Errorf("%w: Root is required", ErrBadConfig)
	}
	if c.Root.Destroyed() {
		return fmt.Errorf("%w: Root is destroyed", ErrBadConfig)
	}
	if c.Window < 0 {
		return fmt.Errorf("%w: negative Window %v", ErrBadConfig, c.Window)
	}
	if c.MaxDelay < 0 && c.MaxDelay != NoDelay {
		return fmt.Errorf("%w: negative MaxDelay %v (use NoDelay to shed immediately)", ErrBadConfig, c.MaxDelay)
	}
	return c.Policy.validate()
}

// Option customizes NewRuntime beyond the Config: the injected clock,
// the request→container Binder, and the per-request telemetry sink.
type Option func(*Runtime)

// WithClock injects the runtime's time source (virtual clocks make every
// admission and accounting decision deterministic in tests and in the
// rcbench live experiment). nil keeps the wall clock.
func WithClock(c Clock) Option {
	return func(rt *Runtime) {
		if c != nil {
			rt.clock = c
		}
	}
}

// WithWindow overrides Config.Window.
func WithWindow(d time.Duration) Option {
	return func(rt *Runtime) { rt.window = d }
}

// WithBinder sets the request→container resolver. nil keeps the default
// binder, which charges every request to Config.Root.
func WithBinder(b Binder) Option {
	return func(rt *Runtime) {
		if b != nil {
			rt.binder = b
		}
	}
}

// WithTelemetrySink streams one RequestEvent per completed or shed
// request to s. nil keeps telemetry detached.
func WithTelemetrySink(s TelemetrySink) Option {
	return func(rt *Runtime) {
		if s != nil {
			rt.sink = s
		}
	}
}

// Request-outcome causes recorded in RequestEvent.Cause. Served
// requests carry an empty cause.
const (
	// CauseShed marks a 429: the subtree's window budget stayed
	// exhausted past MaxDelay.
	CauseShed = "shed"
	// CauseBreaker marks a 503 from an open per-tenant circuit breaker.
	CauseBreaker = "breaker"
	// CauseDrain marks a 503 issued while the runtime is draining.
	CauseDrain = "drain"
	// CausePanic marks a request whose handler panicked; the partial
	// work is still charged to the bound container.
	CausePanic = "panic"
)

// RequestEvent is one request's accounting record, delivered to the
// TelemetrySink when the middleware finishes with the request.
type RequestEvent struct {
	// Container is the name of the container charged when the request
	// completed (after any mid-request Rebind).
	Container string
	// Code is the HTTP status sent (429 for shed requests).
	Code int
	// Shed reports that the request was refused (budget, breaker or
	// drain) and never reached the handler.
	Shed bool
	// Cause classifies the outcome: one of the Cause* constants, or ""
	// for a normally served request.
	Cause string
	// Wall is the handler wall-clock charged into the hierarchy.
	Wall time.Duration
	// Delay is the admission delay endured before the handler ran (or
	// before the request was shed).
	Delay time.Duration
}

// TelemetrySink receives per-request accounting records. Implementations
// must be safe for concurrent use; they are called on the serving
// goroutine, so they should be fast.
type TelemetrySink interface {
	RecordRequest(RequestEvent)
}

type nopSink struct{}

func (nopSink) RecordRequest(RequestEvent) {}

// Stats is a snapshot of the runtime's request and accept counters.
type Stats struct {
	// Served counts requests that completed through the middleware
	// (including requests whose handler panicked and was recovered).
	Served uint64
	// Shed counts requests refused with 429 after exhausting MaxDelay.
	Shed uint64
	// BreakerShed counts requests refused with 503 by an open
	// per-tenant circuit breaker.
	BreakerShed uint64
	// DrainShed counts requests refused with 503 while draining.
	DrainShed uint64
	// Panics counts handler panics recovered by the middleware; the
	// partial work was still charged. Panicked requests also count in
	// Served, so Served+Shed+BreakerShed+DrainShed is the number of
	// requests that entered the middleware and left it.
	Panics uint64
	// Delayed counts served requests that waited for budget first.
	Delayed uint64
	// Accepted counts connections admitted by the policed listener.
	Accepted uint64
	// Refused counts connections refused (closed) at accept.
	Refused uint64
	// Inflight is the number of currently open governed connections.
	Inflight int64
	// InflightRequests is the number of requests currently inside a
	// handler — the quantity Drain waits to reach zero.
	InflightRequests int64
}

// Runtime binds resource containers to a live net/http server: Middleware
// accounts and polices requests, Listener polices accepts, and the whole
// hierarchy remains the ordinary rc.Container tree (snapshot it with
// rc.Capture, rebalance it with SetAttributes while the server runs).
// All methods are safe for concurrent use.
type Runtime struct {
	cfg      Config
	clock    Clock
	window   time.Duration
	maxDelay time.Duration // resolved: >= 0, 0 = shed immediately
	binder   Binder
	sink     TelemetrySink
	enf      *Enforcer

	// policy is the live AcceptPolicy; SetPolicy swaps it atomically so
	// the watchdog can tighten and restore it while the server runs.
	policy atomic.Pointer[AcceptPolicy]

	breakers *breakerSet // nil unless WithBreakers enabled them

	draining atomic.Bool

	lnMu      sync.Mutex
	listeners []*policedListener

	inflight    atomic.Int64
	reqInflight atomic.Int64
	served      atomic.Uint64
	shed        atomic.Uint64
	breakerShed atomic.Uint64
	drainShed   atomic.Uint64
	panics      atomic.Uint64
	delayed     atomic.Uint64
	accepted    atomic.Uint64
	refused     atomic.Uint64
}

// NewRuntime validates cfg (with option overrides folded in) and returns
// a runtime governing the hierarchy under cfg.Root.
func NewRuntime(cfg Config, opts ...Option) (*Runtime, error) {
	rt := &Runtime{
		cfg:      cfg,
		clock:    RealClock{},
		window:   cfg.Window,
		maxDelay: cfg.MaxDelay,
		sink:     nopSink{},
	}
	for _, opt := range opts {
		opt(rt)
	}
	resolved := cfg
	resolved.Window = rt.window
	resolved.MaxDelay = rt.maxDelay
	if err := resolved.Validate(); err != nil {
		return nil, err
	}
	if rt.window <= 0 {
		rt.window = DefaultWindow
	}
	switch {
	case rt.maxDelay == NoDelay:
		rt.maxDelay = 0 // try-acquire: shed immediately
	case rt.maxDelay == 0:
		rt.maxDelay = rt.window
	}
	if rt.binder == nil {
		root := cfg.Root
		rt.binder = BinderFunc(func(*http.Request) *rc.Container { return root })
	}
	pol := cfg.Policy
	rt.policy.Store(&pol)
	rt.enf = New(rt.clock, rt.window)
	return rt, nil
}

// MustNewRuntime is NewRuntime that panics on an invalid configuration;
// for examples and tests with known-good configs.
func MustNewRuntime(cfg Config, opts ...Option) *Runtime {
	rt, err := NewRuntime(cfg, opts...)
	if err != nil {
		panic(err)
	}
	return rt
}

// Enforcer returns the underlying cooperative enforcer, for bracketing
// non-HTTP work (background jobs) against the same budgets.
func (rt *Runtime) Enforcer() *Enforcer { return rt.enf }

// Root returns the root of the governed hierarchy.
func (rt *Runtime) Root() *rc.Container { return rt.cfg.Root }

// Window returns the limit-enforcement window in effect.
func (rt *Runtime) Window() time.Duration { return rt.window }

// Policy returns the AcceptPolicy currently in effect (it may differ
// from Config.Policy after a SetPolicy, e.g. while the watchdog has
// emergency settings applied).
func (rt *Runtime) Policy() AcceptPolicy { return *rt.policy.Load() }

// SetPolicy swaps the live AcceptPolicy, validating it first. New
// accepts see the new policy immediately; established connections are
// untouched. This is the watchdog's actuation lever, and an operator's:
// tighten under attack, restore when calm.
func (rt *Runtime) SetPolicy(p AcceptPolicy) error {
	if err := p.validate(); err != nil {
		return err
	}
	rt.policy.Store(&p)
	return nil
}

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Served:           rt.served.Load(),
		Shed:             rt.shed.Load(),
		BreakerShed:      rt.breakerShed.Load(),
		DrainShed:        rt.drainShed.Load(),
		Panics:           rt.panics.Load(),
		Delayed:          rt.delayed.Load(),
		Accepted:         rt.accepted.Load(),
		Refused:          rt.refused.Load(),
		Inflight:         rt.inflight.Load(),
		InflightRequests: rt.reqInflight.Load(),
	}
}
