// Graceful shutdown for the governed server: Drain stops admitting new
// work (accepts are refused, new requests get a 503 with Connection:
// close) and waits a bounded grace period for in-flight requests to
// finish; Shutdown additionally closes every listener the runtime
// handed out. Neither can preempt a running handler — the same
// cooperative limitation as the rest of the bridge — so the grace bound
// is the contract: after it, whatever is still running is reported as
// leaked and the caller may hard-close the server.

package rcruntime

import (
	"fmt"
	"time"
)

// DrainReport is the outcome of a Drain or Shutdown.
type DrainReport struct {
	// Waited is how long (clock time) the drain waited for in-flight
	// requests.
	Waited time.Duration
	// LeakedRequests is the number of requests still inside handlers
	// when the grace period expired (0 for a clean drain).
	LeakedRequests int64
	// OpenConns is the number of governed connections still open when
	// the drain returned. Idle keep-alive connections linger here until
	// the http.Server closes them; they carry no in-flight work.
	OpenConns int64
	// Clean reports a drain that finished with no in-flight requests.
	Clean bool
}

// Draining reports whether the runtime is refusing new work because a
// Drain or Shutdown has begun.
func (rt *Runtime) Draining() bool { return rt.draining.Load() }

// Drain begins graceful shutdown: the policed listeners refuse every
// new connection, the middleware sheds every new request with a 503 and
// Connection: close, and Drain blocks until the in-flight request count
// reaches zero or grace elapses on the runtime clock. It returns a
// report of what was still running; it never preempts a handler.
// Draining is terminal — there is no resume.
func (rt *Runtime) Drain(grace time.Duration) DrainReport {
	rt.draining.Store(true)
	start := rt.clock.Now()
	step := grace / 50
	if step <= 0 {
		step = time.Millisecond
	}
	if step > 10*time.Millisecond {
		step = 10 * time.Millisecond
	}
	for rt.reqInflight.Load() > 0 {
		if rt.clock.Now().Sub(start) >= grace {
			break
		}
		rt.clock.Sleep(step)
	}
	leaked := rt.reqInflight.Load()
	return DrainReport{
		Waited:         rt.clock.Now().Sub(start),
		LeakedRequests: leaked,
		OpenConns:      rt.inflight.Load(),
		Clean:          leaked == 0,
	}
}

// Shutdown is Drain followed by closing every listener the runtime
// wrapped (idempotently), so a serving http.Server unblocks. It returns
// an error when the grace period expired with requests still running.
func (rt *Runtime) Shutdown(grace time.Duration) (DrainReport, error) {
	rep := rt.Drain(grace)
	rt.closeListeners()
	if !rep.Clean {
		return rep, fmt.Errorf("rcruntime: shutdown grace %v expired with %d request(s) in flight", grace, rep.LeakedRequests)
	}
	return rep, nil
}

// trackListener remembers a policed listener so Shutdown can close it.
func (rt *Runtime) trackListener(pl *policedListener) {
	rt.lnMu.Lock()
	rt.listeners = append(rt.listeners, pl)
	rt.lnMu.Unlock()
}

// closeListeners closes every tracked listener; policedListener.Close
// is idempotent so repeated shutdowns are safe.
func (rt *Runtime) closeListeners() {
	rt.lnMu.Lock()
	lns := append([]*policedListener(nil), rt.listeners...)
	rt.lnMu.Unlock()
	for _, pl := range lns {
		_ = pl.Close()
	}
}
