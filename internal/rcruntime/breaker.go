// Per-tenant circuit breakers: the graceful-degradation layer between
// "shed each over-budget request with a 429" and "refuse the tenant's
// connections at accept". A tenant whose requests are shed repeatedly
// is paying the middleware's admission check (and the server a parsed
// request) for every retry; once the shedding is sustained the breaker
// opens and the tenant's requests are rejected immediately — no
// admission check, no enforcer lock — until a half-open probe shows the
// budget has recovered. Open durations back off exponentially when a
// probe fails, so a tenant hammering a exhausted budget converges to
// long quiet periods instead of oscillating.

package rcruntime

import (
	"sync"
	"time"

	"rescon/internal/rc"
)

// Breaker defaults, used for zero BreakerConfig fields.
const (
	// DefaultBreakerOpenAfter is how many consecutive budget sheds open
	// a tenant's breaker.
	DefaultBreakerOpenAfter = 4
	// DefaultBreakerOpenFactor sets the default open duration as a
	// multiple of the enforcement window (budgets restore on window
	// rolls, so probing faster than a roll cannot succeed).
	DefaultBreakerOpenFactor = 2
	// DefaultBreakerMaxFactor bounds the exponential open-duration
	// backoff, as a multiple of the initial open duration.
	DefaultBreakerMaxFactor = 8
)

// BreakerConfig tunes the per-tenant circuit breakers enabled with
// WithBreakers. Zero values take the defaults above.
type BreakerConfig struct {
	// OpenAfter is the number of consecutive sheds (429s) that open a
	// tenant's breaker.
	OpenAfter int
	// OpenFor is the initial open duration; while open, the tenant's
	// requests are rejected with 503 without touching the enforcer.
	// Zero means DefaultBreakerOpenFactor × the runtime window.
	OpenFor time.Duration
	// MaxOpenFor caps the exponential backoff of the open duration when
	// half-open probes keep failing. Zero means
	// DefaultBreakerMaxFactor × OpenFor.
	MaxOpenFor time.Duration
}

func (c BreakerConfig) withDefaults(window time.Duration) BreakerConfig {
	if c.OpenAfter <= 0 {
		c.OpenAfter = DefaultBreakerOpenAfter
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultBreakerOpenFactor * window
	}
	if c.MaxOpenFor <= 0 {
		c.MaxOpenFor = DefaultBreakerMaxFactor * c.OpenFor
	}
	if c.MaxOpenFor < c.OpenFor {
		c.MaxOpenFor = c.OpenFor
	}
	return c
}

// WithBreakers enables per-tenant circuit breakers on the Middleware:
// after cfg.OpenAfter consecutive sheds a container's requests are
// rejected with 503 (and a Retry-After of the remaining open time)
// until a half-open probe is admitted again. Zero cfg fields take the
// Breaker defaults.
func WithBreakers(cfg BreakerConfig) Option {
	return func(rt *Runtime) {
		rt.breakers = &breakerSet{cfg: cfg, m: make(map[*rc.Container]*breaker)}
	}
}

// breaker state machine values.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one container's circuit-breaker state. All fields are
// guarded by the owning breakerSet's lock.
type breaker struct {
	state     int
	sheds     int       // consecutive sheds while closed
	until     time.Time // open until (then half-open)
	openFor   time.Duration
	opens     uint64 // times this breaker opened (incl. reopens)
	lastCause string
}

// breakerSet owns the per-container breakers. Config defaults are
// resolved lazily against the runtime window on first use.
type breakerSet struct {
	cfg      BreakerConfig
	resolved bool

	mu sync.Mutex
	m  map[*rc.Container]*breaker
}

func (s *breakerSet) config(window time.Duration) BreakerConfig {
	if !s.resolved {
		s.cfg = s.cfg.withDefaults(window)
		s.resolved = true
	}
	return s.cfg
}

// admit decides the request's fate under the container's breaker:
// allowed==true lets it proceed to admission control (possibly as a
// half-open probe); otherwise wait is how long the client should back
// off. The caller must report the admission outcome via onShed/onAdmit.
func (s *breakerSet) admit(c *rc.Container, now time.Time, window time.Duration) (wait time.Duration, allowed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.config(window) // resolve defaults before any state is built
	b := s.m[c]
	if b == nil {
		return 0, true
	}
	switch b.state {
	case breakerClosed:
		return 0, true
	case breakerHalfOpen:
		// One probe is already in flight (or was just shed and re-armed
		// the timer); hold everything else off for the open duration.
		return b.openFor, false
	default: // breakerOpen
		if now.Before(b.until) {
			return b.until.Sub(now), false
		}
		// Open period elapsed: this request becomes the half-open probe.
		b.state = breakerHalfOpen
		return 0, true
	}
}

// onShed records a shed (429) outcome: while closed it advances the
// consecutive-shed streak and opens the breaker at the threshold; a
// shed half-open probe reopens with exponential backoff.
func (s *breakerSet) onShed(c *rc.Container, now time.Time, window time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.config(window)
	b := s.m[c]
	if b == nil {
		b = &breaker{openFor: cfg.OpenFor}
		s.m[c] = b
	}
	switch b.state {
	case breakerClosed:
		b.sheds++
		if b.sheds >= cfg.OpenAfter {
			b.state = breakerOpen
			b.openFor = cfg.OpenFor
			b.until = now.Add(b.openFor)
			b.opens++
		}
	case breakerHalfOpen:
		// The probe was shed: the budget has not recovered. Reopen with
		// a doubled (bounded) open duration.
		b.openFor *= 2
		if b.openFor > cfg.MaxOpenFor {
			b.openFor = cfg.MaxOpenFor
		}
		b.state = breakerOpen
		b.until = now.Add(b.openFor)
		b.opens++
	}
}

// onAdmit records an admitted request: it resets the shed streak, and
// an admitted half-open probe closes the breaker.
func (s *breakerSet) onAdmit(c *rc.Container) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[c]
	if b == nil {
		return
	}
	b.sheds = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.openFor = s.cfg.OpenFor
	}
}

// openCount returns how many breakers are currently not closed.
func (s *breakerSet) openCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.m {
		if b.state != breakerClosed {
			n++
		}
	}
	return n
}

// opens returns the cumulative number of opens (including reopens)
// recorded for c.
func (s *breakerSet) opensOf(c *rc.Container) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[c]; b != nil {
		return b.opens
	}
	return 0
}

// BreakerOpen reports whether c's circuit breaker is currently open or
// half-open (requests other than the probe are being rejected). Always
// false when breakers are disabled.
func (rt *Runtime) BreakerOpen(c *rc.Container) bool {
	if rt.breakers == nil {
		return false
	}
	rt.breakers.mu.Lock()
	defer rt.breakers.mu.Unlock()
	b := rt.breakers.m[c]
	return b != nil && b.state != breakerClosed
}

// BreakerOpens returns how many times c's breaker has opened (including
// reopens after a failed half-open probe). Zero when breakers are
// disabled or c never tripped.
func (rt *Runtime) BreakerOpens(c *rc.Container) uint64 {
	if rt.breakers == nil {
		return 0
	}
	return rt.breakers.opensOf(c)
}

// OpenBreakers returns the number of tenants whose breaker is currently
// open or half-open — the monitor's breaker-pressure signal.
func (rt *Runtime) OpenBreakers() int {
	if rt.breakers == nil {
		return 0
	}
	return rt.breakers.openCount()
}
