package rcruntime

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rescon/internal/rc"
)

// recordingSink collects RequestEvents under a lock.
type recordingSink struct {
	mu     sync.Mutex
	events []RequestEvent
}

func (s *recordingSink) RecordRequest(ev RequestEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *recordingSink) last(t *testing.T) RequestEvent {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) == 0 {
		t.Fatal("no telemetry events recorded")
	}
	return s.events[len(s.events)-1]
}

// govern builds a governed handler: requests carry their synthetic cost
// in X-Cost (a duration) which the handler burns by advancing the fake
// clock — so all accounting is exact and deterministic.
func govern(t *testing.T, fc *fakeClock, cfg Config, opts ...Option) (*Runtime, http.Handler) {
	t.Helper()
	rt, err := NewRuntime(cfg, append([]Option{WithClock(fc)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get("X-Cost"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				t.Errorf("bad X-Cost %q: %v", v, err)
			}
			fc.Sleep(d) // advance the virtual clock: the work's cost
		}
		w.WriteHeader(http.StatusOK)
	}))
	return rt, h
}

func get(h http.Handler, tenant, cost string) *httptest.ResponseRecorder {
	r := httptest.NewRequest("GET", "/", nil)
	if tenant != "" {
		r.Header.Set("X-Tenant", tenant)
	}
	if cost != "" {
		r.Header.Set("X-Cost", cost)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func tenantTree(t *testing.T) (root, leaf *rc.Container, binder Binder) {
	t.Helper()
	root, leaf = testTree(t, 0.5)
	return root, leaf, HeaderBinder("X-Tenant", map[string]*rc.Container{"capped": leaf}, nil)
}

// TestMiddlewareShedsWith429: with MaxDelay == NoDelay an over-budget
// tenant is refused immediately with 429 + Retry-After while the clock
// stands still, and the window roll restores its budget.
func TestMiddlewareShedsWith429(t *testing.T) {
	fc := &fakeClock{}
	root, leaf, binder := tenantTree(t)
	sink := &recordingSink{}
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder), WithTelemetrySink(sink))

	// Budget: Limit 0.5 × 10ms window = 5ms.
	if w := get(h, "capped", "5ms"); w.Code != http.StatusOK {
		t.Fatalf("in-budget request got %d", w.Code)
	}
	if got := time.Duration(leaf.Usage().CPU()); got != 5*time.Millisecond {
		t.Fatalf("charged %v, want 5ms", got)
	}
	before := fc.Now()
	w := get(h, "capped", "1ms")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request got %d, want 429", w.Code)
	}
	if !fc.Now().Equal(before) {
		t.Fatal("shed request consumed virtual time")
	}
	retry, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", w.Header().Get("Retry-After"))
	}
	ev := sink.last(t)
	if !ev.Shed || ev.Code != http.StatusTooManyRequests || ev.Container != "leaf" || ev.Wall != 0 {
		t.Fatalf("shed event = %+v", ev)
	}
	// Other tenants are unaffected: the root is unlimited.
	if w := get(h, "", "1ms"); w.Code != http.StatusOK {
		t.Fatalf("unbound tenant got %d during capped tenant's exhaustion", w.Code)
	}
	// The roll restores the budget.
	fc.Sleep(11 * time.Millisecond)
	if w := get(h, "capped", "1ms"); w.Code != http.StatusOK {
		t.Fatalf("post-roll request got %d", w.Code)
	}
	st := rt.Stats()
	if st.Served != 3 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 3 served / 1 shed", st)
	}
}

// TestMiddlewareDelaysUntilRoll: with the default MaxDelay (one window)
// an over-budget request is held and admitted when the window rolls,
// counted as delayed, not shed.
func TestMiddlewareDelaysUntilRoll(t *testing.T) {
	fc := &fakeClock{}
	root, _, binder := tenantTree(t)
	sink := &recordingSink{}
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond},
		WithBinder(binder), WithTelemetrySink(sink))

	get(h, "capped", "5ms")
	before := fc.Now()
	if w := get(h, "capped", "1ms"); w.Code != http.StatusOK {
		t.Fatalf("delayed request got %d, want 200 after the roll", w.Code)
	}
	if waited := fc.Now().Sub(before); waited < 5*time.Millisecond {
		t.Fatalf("request waited only %v, want about the window remainder", waited)
	}
	ev := sink.last(t)
	if ev.Delay <= 0 || ev.Wall != time.Millisecond {
		t.Fatalf("delayed event = %+v", ev)
	}
	if st := rt.Stats(); st.Delayed != 1 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want 1 delayed / 0 shed", st)
	}
}

// TestRebindMidRequest: the §4.2 dynamic rebinding — work before the
// Rebind charges the original container, work after charges the new one,
// and the telemetry event names the final binding.
func TestRebindMidRequest(t *testing.T) {
	fc := &fakeClock{}
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	first := rc.MustNew(root, rc.TimeShare, "first", rc.Attributes{Priority: 1})
	second := rc.MustNew(root, rc.TimeShare, "second", rc.Attributes{Priority: 1})
	sink := &recordingSink{}
	rt, err := NewRuntime(Config{Root: root, Window: 10 * time.Millisecond},
		WithClock(fc),
		WithBinder(BinderFunc(func(*http.Request) *rc.Container { return first })),
		WithTelemetrySink(sink))
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if Bound(r.Context()) != first {
			t.Error("request not bound to its binder's container")
		}
		fc.Sleep(2 * time.Millisecond)
		if !Rebind(r.Context(), second) {
			t.Error("Rebind failed")
		}
		if Bound(r.Context()) != second {
			t.Error("Bound does not reflect the rebind")
		}
		fc.Sleep(3 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	if w := get(h, "", ""); w.Code != http.StatusOK {
		t.Fatalf("got %d", w.Code)
	}
	if got := time.Duration(first.Usage().CPU()); got != 2*time.Millisecond {
		t.Fatalf("first charged %v, want 2ms", got)
	}
	if got := time.Duration(second.Usage().CPU()); got != 3*time.Millisecond {
		t.Fatalf("second charged %v, want 3ms", got)
	}
	if got := time.Duration(root.Usage().CPU()); got != 5*time.Millisecond {
		t.Fatalf("root charged %v, want 5ms", got)
	}
	ev := sink.last(t)
	if ev.Container != "second" || ev.Wall != 5*time.Millisecond {
		t.Fatalf("event = %+v, want container second / wall 5ms", ev)
	}
}

// TestRebindRejectsBadTargets: no binding in context, nil, and destroyed
// targets all refuse without panicking, and the original binding keeps
// charging.
func TestRebindRejectsBadTargets(t *testing.T) {
	fc := &fakeClock{}
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	dead := rc.MustNew(nil, rc.FixedShare, "dead", rc.Attributes{})
	_ = dead.Release()
	r := httptest.NewRequest("GET", "/", nil)
	if Rebind(r.Context(), root) {
		t.Fatal("Rebind succeeded without a middleware binding")
	}
	if Bound(r.Context()) != nil {
		t.Fatal("Bound outside middleware should be nil")
	}
	// nil contexts refuse instead of panicking.
	if Rebind(nil, root) {
		t.Fatal("Rebind succeeded on a nil context")
	}
	if Bound(nil) != nil {
		t.Fatal("Bound on a nil context should be nil")
	}
	rt, err := NewRuntime(Config{Root: root}, WithClock(fc))
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if Rebind(r.Context(), nil) {
			t.Error("Rebind(nil) succeeded")
		}
		if Rebind(r.Context(), dead) {
			t.Error("Rebind(destroyed) succeeded")
		}
		if Bound(r.Context()) != root {
			t.Error("failed rebinds changed the binding")
		}
		fc.Sleep(time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	if w := get(h, "", ""); w.Code != http.StatusOK {
		t.Fatalf("got %d", w.Code)
	}
	if got := time.Duration(root.Usage().CPU()); got != time.Millisecond {
		t.Fatalf("root charged %v, want 1ms", got)
	}
}

// TestBinderFallbacks: nil and destroyed binder results charge the root.
func TestBinderFallbacks(t *testing.T) {
	fc := &fakeClock{}
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	dead := rc.MustNew(root, rc.TimeShare, "dead", rc.Attributes{Priority: 1})
	_ = dead.Release()
	rt, err := NewRuntime(Config{Root: root},
		WithClock(fc),
		WithBinder(BinderFunc(func(r *http.Request) *rc.Container {
			if r.Header.Get("X-Tenant") == "dead" {
				return dead
			}
			return nil
		})))
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fc.Sleep(time.Millisecond)
	}))
	get(h, "", "")
	get(h, "dead", "")
	if got := time.Duration(root.Usage().CPU()); got != 2*time.Millisecond {
		t.Fatalf("root charged %v, want 2ms (both fallbacks)", got)
	}
}

// TestMiddlewareStatusCapture: the telemetry event carries the handler's
// status code, including implicit 200s on first Write.
func TestMiddlewareStatusCapture(t *testing.T) {
	fc := &fakeClock{}
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	sink := &recordingSink{}
	rt, err := NewRuntime(Config{Root: root}, WithClock(fc), WithTelemetrySink(sink))
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Header.Get("X-Tenant") {
		case "teapot":
			w.WriteHeader(http.StatusTeapot)
		case "implicit":
			_, _ = w.Write([]byte("ok")) // implicit 200
		}
	}))
	get(h, "teapot", "")
	if ev := sink.last(t); ev.Code != http.StatusTeapot {
		t.Fatalf("code %d, want 418", ev.Code)
	}
	get(h, "implicit", "")
	if ev := sink.last(t); ev.Code != http.StatusOK {
		t.Fatalf("code %d, want 200", ev.Code)
	}
}

// TestConcurrentMiddleware hammers a capped tenant from several
// goroutines on the wall clock: the admitted work rate must respect the
// cap (with slack for the cooperative over-admission window) and the
// runtime must be race-clean. Shed requests must appear once the budget
// is gone.
func TestConcurrentMiddleware(t *testing.T) {
	root, leaf, binder := tenantTree(t)
	rt, err := NewRuntime(Config{Root: root, Window: 20 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder))
	if err != nil {
		t.Fatal(err)
	}
	const workUnit = 2 * time.Millisecond
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(workUnit) // real wall-clock work
		w.WriteHeader(http.StatusOK)
	}))
	var served, shedCount atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch w := get(h, "capped", ""); w.Code {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests:
					shedCount.Add(1)
				default:
					t.Errorf("unexpected status %d", w.Code)
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Cap: 50% of 300ms = 150ms of admitted work, plus slack for window
	// boundaries, over-admission (acquire precedes charging) and CI
	// scheduling jitter.
	admitted := time.Duration(served.Load()) * workUnit
	if admitted > 290*time.Millisecond {
		t.Fatalf("admitted %v of work in 300ms at a 50%% cap", admitted)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served")
	}
	if shedCount.Load() == 0 {
		t.Fatal("no requests shed despite saturating a capped tenant")
	}
	if got := time.Duration(leaf.Usage().CPU()); got == 0 {
		t.Fatal("no CPU charged to the hammered tenant")
	}
}
