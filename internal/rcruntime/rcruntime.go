// Package rcruntime applies resource containers to *real* Go programs —
// the userspace approximation of the paper's kernel mechanism. A kernel
// can charge and schedule transparently; a user-space library cannot, so
// enforcement is cooperative: request handlers bracket their work with
// Acquire/After, and the Enforcer delays work whose container subtree has
// exhausted its CPU limit for the current window (the §4.1 Limit
// attribute), while accounting actual usage into the same rc.Container
// hierarchy the simulation uses.
//
// The package has two layers:
//
//   - Enforcer is the cooperative core: Acquire/Do bracket arbitrary
//     sections of Go code with admission control and accounting.
//   - Runtime is the production adapter for net/http servers: a
//     Middleware that binds each request to a container (pluggable
//     Binder, with dynamic §4.2 rebinding via Rebind), charges handler
//     wall-clock into the hierarchy, sheds over-budget work with 429 +
//     Retry-After, and a net.Listener wrapper (Runtime.Listener) that
//     refuses connections at accept — the userspace mirror of
//     kernel.Policing's early SYN drop. Construct it with
//     NewRuntime(Config, ...Option); Config.Validate reports bad
//     configurations as errors rather than panics.
//
// What this gives a real server:
//
//   - per-activity CPU accounting (wall-clock of bracketed sections,
//     aggregated up the container hierarchy);
//   - hard CPU limits per subtree, enforced by admission delay over a
//     sliding window — the cooperative analogue of §5.6's sandboxes;
//   - load shedding before work is invested: 429 at the middleware, and
//     connection refusal at accept for the cost of a close(2) alone;
//   - the same billing/snapshot tooling (rc.Capture, rc.WriteJSON).
//
// What it cannot give (and the paper's kernel could): involuntary
// preemption, charging of kernel-mode protocol processing, and priority
// scheduling of the network stack. Those require the kernel path this
// repository simulates instead; DESIGN.md §12 spells out the mapping.
//
// Everything is deterministic-testable: inject a virtual Clock with
// WithClock and both layers (and the rcbench -exp live load generator)
// run on virtual time.
package rcruntime

import (
	"sync"
	"time"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Clock abstracts time so tests can run instantly and deterministically.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// DefaultWindow is the limit-enforcement window: a subtree with Limit L
// may consume at most L×window of CPU per window.
const DefaultWindow = 100 * time.Millisecond

// minPruneSize is the snapshot-table size below which the enforcer does
// not bother sweeping destroyed containers between window rolls.
const minPruneSize = 64

// Enforcer admits work against container CPU limits and accounts usage.
// It is safe for concurrent use; all container mutations happen under its
// lock (the rc package itself is not concurrency-safe).
type Enforcer struct {
	clock  Clock
	window time.Duration

	mu          sync.Mutex
	windowStart time.Time
	snapshots   map[*rc.Container]time.Duration // subtree usage at window start
	waiters     map[*rc.Container][]chan struct{}
	// pruneAt is the snapshot-table size that triggers the next sweep of
	// destroyed containers. Rolls prune too, but a long window (or one
	// that never rolls because every acquire is admitted instantly) must
	// not let destroyed containers pin memory in the meantime.
	pruneAt int
}

// New returns an enforcer using the given clock (nil for the wall clock)
// and window (0 for DefaultWindow).
func New(clock Clock, window time.Duration) *Enforcer {
	if clock == nil {
		clock = RealClock{}
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Enforcer{
		clock:     clock,
		window:    window,
		snapshots: make(map[*rc.Container]time.Duration),
		waiters:   make(map[*rc.Container][]chan struct{}),
		pruneAt:   minPruneSize,
	}
}

// Window returns the enforcement window.
func (e *Enforcer) Window() time.Duration { return e.window }

func (e *Enforcer) usage(c *rc.Container) time.Duration {
	return time.Duration(c.Usage().CPU())
}

// rollLocked starts a new window if the current one has expired, waking
// all throttled waiters.
func (e *Enforcer) rollLocked(now time.Time) {
	if now.Sub(e.windowStart) < e.window {
		return
	}
	e.windowStart = now
	for c := range e.snapshots {
		if c.Destroyed() {
			delete(e.snapshots, c)
			continue
		}
		e.snapshots[c] = e.usage(c)
	}
	for c, ws := range e.waiters {
		for _, ch := range ws {
			close(ch)
		}
		delete(e.waiters, c)
	}
}

// overLimitLocked returns the first ancestor (or c itself) whose limit
// budget for this window is exhausted, or nil.
func (e *Enforcer) overLimitLocked(c *rc.Container, now time.Time) *rc.Container {
	e.rollLocked(now)
	for p := c; p != nil; p = p.Parent() {
		l := p.Attributes().Limit
		if l <= 0 {
			continue
		}
		snap, ok := e.snapshots[p]
		if !ok {
			snap = e.usage(p)
			e.snapshots[p] = snap
		}
		budget := time.Duration(l * float64(e.window))
		if e.usage(p)-snap >= budget {
			return p
		}
	}
	return nil
}

// maybePruneLocked sweeps destroyed containers out of the snapshot and
// waiter tables once they grow past the prune threshold. Rolls prune on
// their own schedule; this bounds retention for containers released
// mid-window, when the window is long or never rolls. Waiters parked on
// a destroyed container are woken — its limit no longer applies.
func (e *Enforcer) maybePruneLocked() {
	if len(e.snapshots) < e.pruneAt {
		return
	}
	for c := range e.snapshots {
		if c.Destroyed() {
			delete(e.snapshots, c)
		}
	}
	for c, ws := range e.waiters {
		if c.Destroyed() {
			for _, ch := range ws {
				close(ch)
			}
			delete(e.waiters, c)
		}
	}
	e.pruneAt = 2 * len(e.snapshots)
	if e.pruneAt < minPruneSize {
		e.pruneAt = minPruneSize
	}
}

// Acquire blocks until c's subtree has limit budget, then returns a
// charge function the caller must invoke with the work's actual duration
// when done (typically via defer with a start timestamp). Work on
// unlimited containers is admitted immediately.
func (e *Enforcer) Acquire(c *rc.Container) (charge func(actual time.Duration)) {
	charge, _, _ = e.acquire(c, -1)
	return charge
}

// AcquireFor is Acquire with a bounded wait: it admits c within maxWait
// of clock time, or gives up and reports ok=false with no charge
// function. maxWait 0 is a try-acquire (shed immediately when over
// budget); maxWait < 0 waits indefinitely, like Acquire.
func (e *Enforcer) AcquireFor(c *rc.Container, maxWait time.Duration) (charge func(actual time.Duration), ok bool) {
	charge, _, ok = e.acquire(c, maxWait)
	return charge, ok
}

// acquire reports, besides the charge function and admission, whether
// the caller actually blocked for budget (waited) — distinguishing a
// genuinely delayed admission from clock noise between two Now reads.
func (e *Enforcer) acquire(c *rc.Container, maxWait time.Duration) (charge func(actual time.Duration), waited, ok bool) {
	var start time.Time
	started := false
	for {
		e.mu.Lock()
		now := e.clock.Now()
		if !started {
			start, started = now, true
		}
		e.maybePruneLocked()
		blocked := e.overLimitLocked(c, now)
		if blocked == nil {
			e.mu.Unlock()
			break
		}
		if maxWait >= 0 && now.Sub(start) >= maxWait {
			e.mu.Unlock()
			return nil, waited, false
		}
		waited = true
		ch := make(chan struct{})
		e.waiters[blocked] = append(e.waiters[blocked], ch)
		wait := e.window - now.Sub(e.windowStart)
		if maxWait >= 0 {
			if rem := maxWait - now.Sub(start); rem < wait {
				wait = rem
			}
		}
		e.mu.Unlock()
		// Wait for the window to roll (either by timer or by another
		// acquirer rolling it first).
		select {
		case <-ch:
		case <-e.sleepCh(wait):
		}
	}
	return func(actual time.Duration) { e.Charge(c, actual) }, waited, true
}

// Charge accounts actual CPU time to c and its ancestors under the
// enforcer's lock. Negative charges and destroyed containers are
// ignored — in-flight work may complete after its container is released.
func (e *Enforcer) Charge(c *rc.Container, actual time.Duration) {
	if actual < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !c.Destroyed() {
		c.ChargeCPU(rc.UserCPU, sim.Duration(actual))
	}
}

// OverBudget reports whether c's subtree (any limited ancestor,
// including c) has exhausted its limit budget for the current window,
// without waiting. Destroyed containers are never over budget.
func (e *Enforcer) OverBudget(c *rc.Container) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.Destroyed() {
		return false
	}
	return e.overLimitLocked(c, e.clock.Now()) != nil
}

// WindowRemaining returns the time left until the current enforcement
// window rolls and exhausted budgets are restored — the natural
// Retry-After for shed work.
func (e *Enforcer) WindowRemaining() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	rem := e.window - e.clock.Now().Sub(e.windowStart)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Sync runs fn while holding the enforcer's lock. The rc package is not
// concurrency-safe, and the enforcer reads the governed hierarchy under
// its lock on every admission — so any mutation of that hierarchy while
// a server is live (SetAttributes from a watchdog, Destroy from a tenant
// reaper) must go through Sync. Do not call enforcer methods from fn;
// that deadlocks.
func (e *Enforcer) Sync(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
}

// Do brackets fn with Acquire and actual-time charging.
func (e *Enforcer) Do(c *rc.Container, fn func()) {
	charge := e.Acquire(c)
	start := e.clock.Now()
	fn()
	charge(e.clock.Now().Sub(start))
}

// sleepCh returns a channel closed after d via the enforcer's clock.
func (e *Enforcer) sleepCh(d time.Duration) <-chan struct{} {
	if d <= 0 {
		d = time.Millisecond
	}
	ch := make(chan struct{})
	go func() {
		e.clock.Sleep(d)
		close(ch)
	}()
	return ch
}
