// Package rcruntime applies resource containers to *real* Go programs —
// the userspace approximation of the paper's kernel mechanism. A kernel
// can charge and schedule transparently; a user-space library cannot, so
// enforcement is cooperative: request handlers bracket their work with
// Acquire/After, and the Enforcer delays work whose container subtree has
// exhausted its CPU limit for the current window (the §4.1 Limit
// attribute), while accounting actual usage into the same rc.Container
// hierarchy the simulation uses.
//
// What this gives a real server:
//
//   - per-activity CPU accounting (wall-clock of bracketed sections,
//     aggregated up the container hierarchy);
//   - hard CPU limits per subtree, enforced by admission delay over a
//     sliding window — the cooperative analogue of §5.6's sandboxes;
//   - the same billing/snapshot tooling (rc.Capture, rc.WriteJSON).
//
// What it cannot give (and the paper's kernel could): involuntary
// preemption, charging of kernel-mode protocol processing, and priority
// scheduling of the network stack. Those require the kernel path this
// repository simulates instead.
package rcruntime

import (
	"sync"
	"time"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Clock abstracts time so tests can run instantly and deterministically.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// DefaultWindow is the limit-enforcement window: a subtree with Limit L
// may consume at most L×window of CPU per window.
const DefaultWindow = 100 * time.Millisecond

// Enforcer admits work against container CPU limits and accounts usage.
// It is safe for concurrent use; all container mutations happen under its
// lock (the rc package itself is not concurrency-safe).
type Enforcer struct {
	clock  Clock
	window time.Duration

	mu          sync.Mutex
	windowStart time.Time
	snapshots   map[*rc.Container]time.Duration // subtree usage at window start
	waiters     map[*rc.Container][]chan struct{}
}

// New returns an enforcer using the given clock (nil for the wall clock)
// and window (0 for DefaultWindow).
func New(clock Clock, window time.Duration) *Enforcer {
	if clock == nil {
		clock = RealClock{}
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Enforcer{
		clock:     clock,
		window:    window,
		snapshots: make(map[*rc.Container]time.Duration),
		waiters:   make(map[*rc.Container][]chan struct{}),
	}
}

// Window returns the enforcement window.
func (e *Enforcer) Window() time.Duration { return e.window }

func (e *Enforcer) usage(c *rc.Container) time.Duration {
	return time.Duration(c.Usage().CPU())
}

// rollLocked starts a new window if the current one has expired, waking
// all throttled waiters.
func (e *Enforcer) rollLocked(now time.Time) {
	if now.Sub(e.windowStart) < e.window {
		return
	}
	e.windowStart = now
	for c := range e.snapshots {
		if c.Destroyed() {
			delete(e.snapshots, c)
			continue
		}
		e.snapshots[c] = e.usage(c)
	}
	for c, ws := range e.waiters {
		for _, ch := range ws {
			close(ch)
		}
		delete(e.waiters, c)
	}
}

// overLimitLocked returns the first ancestor (or c itself) whose limit
// budget for this window is exhausted, or nil.
func (e *Enforcer) overLimitLocked(c *rc.Container, now time.Time) *rc.Container {
	e.rollLocked(now)
	for p := c; p != nil; p = p.Parent() {
		l := p.Attributes().Limit
		if l <= 0 {
			continue
		}
		snap, ok := e.snapshots[p]
		if !ok {
			snap = e.usage(p)
			e.snapshots[p] = snap
		}
		budget := time.Duration(l * float64(e.window))
		if e.usage(p)-snap >= budget {
			return p
		}
	}
	return nil
}

// Acquire blocks until c's subtree has limit budget, then returns a
// charge function the caller must invoke with the work's actual duration
// when done (typically via defer with a start timestamp). Work on
// unlimited containers is admitted immediately.
func (e *Enforcer) Acquire(c *rc.Container) (charge func(actual time.Duration)) {
	for {
		e.mu.Lock()
		now := e.clock.Now()
		blocked := e.overLimitLocked(c, now)
		if blocked == nil {
			e.mu.Unlock()
			break
		}
		ch := make(chan struct{})
		e.waiters[blocked] = append(e.waiters[blocked], ch)
		wait := e.window - now.Sub(e.windowStart)
		e.mu.Unlock()
		// Wait for the window to roll (either by timer or by another
		// acquirer rolling it first).
		select {
		case <-ch:
		case <-e.sleepCh(wait):
		}
	}
	return func(actual time.Duration) {
		if actual < 0 {
			return
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if !c.Destroyed() {
			c.ChargeCPU(rc.UserCPU, sim.Duration(actual))
		}
	}
}

// Do brackets fn with Acquire and actual-time charging.
func (e *Enforcer) Do(c *rc.Container, fn func()) {
	charge := e.Acquire(c)
	start := e.clock.Now()
	fn()
	charge(e.clock.Now().Sub(start))
}

// sleepCh returns a channel closed after d via the enforcer's clock.
func (e *Enforcer) sleepCh(d time.Duration) <-chan struct{} {
	if d <= 0 {
		d = time.Millisecond
	}
	ch := make(chan struct{})
	go func() {
		e.clock.Sleep(d)
		close(ch)
	}()
	return ch
}
