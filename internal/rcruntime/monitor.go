// Monitor: the bridge from the live runtime's counters to the alert
// package's check battery. The simulation feeds alert.Monitor from
// kernel state on the telemetry tick; a real server has no kernel to
// sample, so this adapter derives the same kind of leading indicators —
// shed-rate deltas, accept refusals, in-flight gauge, panic rate,
// per-tenant CPU share, breaker pressure — from Runtime.Stats and the
// governed container hierarchy, and drives the monitor on whatever tick
// cadence the caller chooses. Under a virtual clock every tick is a
// deterministic function of the request history, so the alert stream is
// byte-stable across runs — the property the livechaos experiment
// asserts.

package rcruntime

import (
	"fmt"
	"time"

	"rescon/internal/alert"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Check names registered by AttachMonitor. They share the alert
// package's event stream with the simulation's sockstat battery, so
// they carry an rt- prefix.
const (
	// CheckShedRate is budget sheds (429s) per tick.
	CheckShedRate = "rt-shed-rate"
	// CheckRefuseRate is connections refused at accept per tick.
	CheckRefuseRate = "rt-refuse-rate"
	// CheckInflight is the in-handler request gauge.
	CheckInflight = "rt-inflight"
	// CheckPanics is recovered handler panics per tick.
	CheckPanics = "rt-panics"
	// CheckTenantCPU is a watched tenant's share of all CPU charged to
	// the governed hierarchy this tick, in [0,1].
	CheckTenantCPU = "rt-tenant-cpu"
	// CheckBreakerOpen is the open-circuit-breaker gauge.
	CheckBreakerOpen = "rt-breaker-open"
)

// Monitor check-threshold defaults (per tick where the check is a rate).
const (
	// DefaultShedWarn / DefaultShedCrit bound budget sheds per tick.
	DefaultShedWarn = 4
	DefaultShedCrit = 16
	// DefaultRefuseWarn / DefaultRefuseCrit bound accept refusals per tick.
	DefaultRefuseWarn = 8
	DefaultRefuseCrit = 32
	// DefaultInflightWarn / DefaultInflightCrit bound the in-handler gauge.
	DefaultInflightWarn = 64
	DefaultInflightCrit = 256
	// DefaultPanicWarn / DefaultPanicCrit bound recovered panics per tick.
	DefaultPanicWarn = 1
	DefaultPanicCrit = 4
	// DefaultTenantCPUWarn / DefaultTenantCPUCrit bound one tenant's share
	// of the watched tenants' CPU this tick.
	DefaultTenantCPUWarn = 0.5
	DefaultTenantCPUCrit = 0.75
	// DefaultBreakerWarn is the open-breaker count that warns. The
	// critical level is disabled by default: open breakers are the
	// defense working, not the overload itself.
	DefaultBreakerWarn = 1
)

// MonitorConfig tunes the runtime check battery; zero thresholds take
// the defaults above. Tenants lists the containers watched per-tenant by
// CheckTenantCPU (and typically matches the watchdog's Clampable set).
type MonitorConfig struct {
	// ShedWarn / ShedCrit threshold budget sheds (429s) per tick.
	ShedWarn, ShedCrit float64
	// RefuseWarn / RefuseCrit threshold accept refusals per tick.
	RefuseWarn, RefuseCrit float64
	// InflightWarn / InflightCrit threshold the in-handler request gauge.
	InflightWarn, InflightCrit float64
	// PanicWarn / PanicCrit threshold recovered panics per tick.
	PanicWarn, PanicCrit float64
	// TenantCPUWarn / TenantCPUCrit threshold a tenant's share of the
	// hierarchy's CPU per tick, in [0,1].
	TenantCPUWarn, TenantCPUCrit float64
	// BreakerWarn / BreakerCrit threshold the open-breaker gauge.
	// BreakerCrit zero leaves the check warning-only.
	BreakerWarn, BreakerCrit float64
	// Tenants are the containers CheckTenantCPU reports per-target
	// observations for. Empty disables the check.
	Tenants []*rc.Container
	// Raise / Clear override the alert package's hysteresis defaults for
	// every registered check when positive.
	Raise, Clear int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	def := func(v *float64, d float64) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.ShedWarn, DefaultShedWarn)
	def(&c.ShedCrit, DefaultShedCrit)
	def(&c.RefuseWarn, DefaultRefuseWarn)
	def(&c.RefuseCrit, DefaultRefuseCrit)
	def(&c.InflightWarn, DefaultInflightWarn)
	def(&c.InflightCrit, DefaultInflightCrit)
	def(&c.PanicWarn, DefaultPanicWarn)
	def(&c.PanicCrit, DefaultPanicCrit)
	def(&c.TenantCPUWarn, DefaultTenantCPUWarn)
	def(&c.TenantCPUCrit, DefaultTenantCPUCrit)
	def(&c.BreakerWarn, DefaultBreakerWarn)
	// BreakerCrit deliberately keeps its zero (critical disabled).
	return c
}

// runtimeTarget is the observation target for whole-runtime checks.
const runtimeTarget = "(runtime)"

// Monitor samples a Runtime into an alert.Monitor on each Tick. It is
// not safe for concurrent Ticks; drive it from one goroutine (the
// telemetry loop, or the experiment's round loop).
type Monitor struct {
	rt  *Runtime
	am  *alert.Monitor
	cfg MonitorConfig

	start time.Time
	prev  Stats

	// this tick's derived values, read by the Observe closures.
	shedRate   float64
	refuseRate float64
	inflight   float64
	panicRate  float64
	breakers   float64

	rootPrev    time.Duration
	tenantPrev  []time.Duration
	tenantShare []float64
	tenantDelta []time.Duration
}

// AttachMonitor registers the runtime check battery on am and returns
// the adapter; drive it with Tick. Registration errors (duplicate check
// names — e.g. two runtimes on one alert.Monitor) are returned, not
// panicked.
func AttachMonitor(rt *Runtime, am *alert.Monitor, cfg MonitorConfig) (*Monitor, error) {
	m := &Monitor{
		rt:    rt,
		am:    am,
		cfg:   cfg.withDefaults(),
		start: rt.clock.Now(),
		prev:  rt.Stats(),
	}
	m.tenantPrev = make([]time.Duration, len(m.cfg.Tenants))
	m.tenantShare = make([]float64, len(m.cfg.Tenants))
	m.tenantDelta = make([]time.Duration, len(m.cfg.Tenants))
	rt.enf.Sync(func() {
		m.rootPrev = time.Duration(rt.cfg.Root.Usage().CPU())
		for i, c := range m.cfg.Tenants {
			m.tenantPrev[i] = time.Duration(c.Usage().CPU())
		}
	})

	gauge := func(v *float64) func() []alert.Observation {
		return func() []alert.Observation {
			return []alert.Observation{{Target: runtimeTarget, Value: *v}}
		}
	}
	checks := []alert.Check{
		{Name: CheckShedRate, Warn: m.cfg.ShedWarn, Crit: m.cfg.ShedCrit,
			Raise: m.cfg.Raise, Clear: m.cfg.Clear, Observe: gauge(&m.shedRate)},
		{Name: CheckRefuseRate, Warn: m.cfg.RefuseWarn, Crit: m.cfg.RefuseCrit,
			Raise: m.cfg.Raise, Clear: m.cfg.Clear, Observe: gauge(&m.refuseRate)},
		{Name: CheckInflight, Warn: m.cfg.InflightWarn, Crit: m.cfg.InflightCrit,
			Raise: m.cfg.Raise, Clear: m.cfg.Clear, Observe: gauge(&m.inflight)},
		{Name: CheckPanics, Warn: m.cfg.PanicWarn, Crit: m.cfg.PanicCrit,
			Raise: m.cfg.Raise, Clear: m.cfg.Clear, Observe: gauge(&m.panicRate)},
		{Name: CheckBreakerOpen, Warn: m.cfg.BreakerWarn, Crit: m.cfg.BreakerCrit,
			Raise: m.cfg.Raise, Clear: m.cfg.Clear, Observe: gauge(&m.breakers)},
	}
	if len(m.cfg.Tenants) > 0 {
		checks = append(checks, alert.Check{
			Name: CheckTenantCPU, Warn: m.cfg.TenantCPUWarn, Crit: m.cfg.TenantCPUCrit,
			Raise: m.cfg.Raise, Clear: m.cfg.Clear,
			Observe: func() []alert.Observation {
				obs := make([]alert.Observation, 0, len(m.cfg.Tenants))
				for i, c := range m.cfg.Tenants {
					obs = append(obs, alert.Observation{
						Target: c.Name(),
						Value:  m.tenantShare[i],
						Detail: fmt.Sprintf("cpu +%v this tick", m.tenantDelta[i]),
					})
				}
				return obs
			},
		})
	}
	for _, c := range checks {
		if err := am.Register(c); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Alert returns the underlying alert.Monitor (for WriteJSONL, Current,
// Flaps and friends).
func (m *Monitor) Alert() *alert.Monitor { return m.am }

// Tick samples the runtime once and advances every registered check's
// state machine. The tick timestamp is the runtime clock's offset from
// the attach instant, so a virtual clock yields a deterministic event
// stream.
func (m *Monitor) Tick() {
	now := m.rt.clock.Now()
	s := m.rt.Stats()
	m.shedRate = float64(s.Shed - m.prev.Shed)
	m.refuseRate = float64(s.Refused - m.prev.Refused)
	m.inflight = float64(s.InflightRequests)
	m.panicRate = float64(s.Panics - m.prev.Panics)
	m.breakers = float64(m.rt.OpenBreakers())
	m.prev = s

	if len(m.cfg.Tenants) > 0 {
		var rootDelta time.Duration
		m.rt.enf.Sync(func() {
			rootCur := time.Duration(m.rt.cfg.Root.Usage().CPU())
			rootDelta = rootCur - m.rootPrev
			m.rootPrev = rootCur
			for i, c := range m.cfg.Tenants {
				cur := time.Duration(c.Usage().CPU())
				m.tenantDelta[i] = cur - m.tenantPrev[i]
				m.tenantPrev[i] = cur
			}
		})
		for i := range m.cfg.Tenants {
			if rootDelta > 0 {
				m.tenantShare[i] = float64(m.tenantDelta[i]) / float64(rootDelta)
			} else {
				m.tenantShare[i] = 0
			}
		}
	}

	m.am.Tick(sim.Time(now.Sub(m.start)))
}
