package rcruntime

import (
	"fmt"
	"net"
	"sync/atomic"

	"rescon/internal/rc"
)

// AcceptPolicy is admission control at the real server's accept path —
// the userspace mirror of kernel.Policing. A refused connection is
// closed immediately, for the cost of a close(2) alone, before any bytes
// are read or a handler goroutine is spawned: the same "drop new work
// early, before investing in it" move as the kernel's SYN drop (§5.7).
type AcceptPolicy struct {
	// Enabled is the master switch; a zero policy refuses nothing.
	Enabled bool
	// MaxConns caps concurrent governed connections: a new connection is
	// refused while Frac×MaxConns are already open. 0 disables the cap.
	MaxConns int
	// Frac is the fraction of MaxConns beyond which new connections are
	// refused, in (0, 1]; 0 means 1.0 (refuse only at the full cap).
	// Mirrors Policing.SYNFrac: shed before the hard bound so in-progress
	// work keeps headroom.
	Frac float64
	// OverBudgetOf, when non-nil, refuses new connections while this
	// container's subtree is over its window budget. Point it at a known
	// abuser (or the whole root under brownout) to shed that load at
	// accept time; established connections are untouched — in-progress
	// work proceeds, new work is refused, exactly the §5.7 policy.
	OverBudgetOf *rc.Container
}

func (p AcceptPolicy) validate() error {
	if p.MaxConns < 0 {
		return fmt.Errorf("%w: negative Policy.MaxConns %d", ErrBadConfig, p.MaxConns)
	}
	if p.Frac < 0 || p.Frac > 1 {
		return fmt.Errorf("%w: Policy.Frac %v outside [0,1]", ErrBadConfig, p.Frac)
	}
	if p.Enabled && p.MaxConns == 0 && p.OverBudgetOf == nil {
		return fmt.Errorf("%w: enabled Policy needs MaxConns or OverBudgetOf", ErrBadConfig)
	}
	return nil
}

// refuseAccept decides a new connection's fate under the live policy.
// A draining runtime refuses everything: stop accepting is the first
// phase of graceful shutdown.
func (rt *Runtime) refuseAccept() bool {
	if rt.draining.Load() {
		return true
	}
	p := *rt.policy.Load()
	if !p.Enabled {
		return false
	}
	if p.MaxConns > 0 {
		frac := p.Frac
		if frac <= 0 {
			frac = 1
		}
		if rt.inflight.Load() >= int64(frac*float64(p.MaxConns)) {
			return true
		}
	}
	if p.OverBudgetOf != nil && rt.enf.OverBudget(p.OverBudgetOf) {
		return true
	}
	return false
}

// Listener wraps ln with the runtime's AcceptPolicy: connections refused
// by the policy are closed on accept and counted in Stats().Refused;
// admitted connections are tracked so MaxConns can bound concurrency.
// Pass the result to http.Server.Serve. The wrapper's Close is
// idempotent, and Shutdown closes every listener the runtime handed
// out.
func (rt *Runtime) Listener(ln net.Listener) net.Listener {
	pl := &policedListener{Listener: ln, rt: rt}
	rt.trackListener(pl)
	return pl
}

type policedListener struct {
	net.Listener
	rt     *Runtime
	closed atomic.Bool
}

// Close implements net.Listener; repeated closes are no-ops so a
// Shutdown racing an explicit Close (or a double defer) never surfaces
// a spurious "use of closed network connection" error.
func (l *policedListener) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	return l.Listener.Close()
}

// Accept implements net.Listener, refusing connections per the policy.
func (l *policedListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.rt.refuseAccept() {
			l.rt.refused.Add(1)
			_ = conn.Close()
			continue
		}
		l.rt.accepted.Add(1)
		l.rt.inflight.Add(1)
		return &governedConn{Conn: conn, rt: l.rt}, nil
	}
}

// governedConn decrements the inflight gauge exactly once on close.
type governedConn struct {
	net.Conn
	rt     *Runtime
	closed atomic.Bool
}

// Close implements net.Conn.
func (c *governedConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.rt.inflight.Add(-1)
	}
	return c.Conn.Close()
}
