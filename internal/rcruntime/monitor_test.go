package rcruntime

import (
	"strings"
	"testing"
	"time"

	"rescon/internal/alert"
	"rescon/internal/rc"
)

// TestMonitorRaisesOnSheds: the rt-shed-rate check observes the per-tick
// shed delta and raises through warning to critical as overload
// sustains.
func TestMonitorRaisesOnSheds(t *testing.T) {
	fc := &fakeClock{}
	root, _, binder := tenantTree(t)
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder))
	am := alert.New()
	mon, err := AttachMonitor(rt, am, MonitorConfig{ShedWarn: 1, ShedCrit: 2, Raise: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Tick 1: two sheds this tick — straight to critical with Raise=1.
	get(h, "capped", "5ms")
	get(h, "capped", "1ms")
	get(h, "capped", "1ms")
	fc.Sleep(time.Millisecond)
	mon.Tick()

	var critical bool
	for _, ev := range am.Events() {
		if ev.Check == CheckShedRate && ev.Level == alert.LevelCritical {
			critical = true
			if ev.Value != 2 {
				t.Fatalf("critical observation %g, want 2 sheds this tick", ev.Value)
			}
		}
	}
	if !critical {
		t.Fatalf("no critical rt-shed-rate event; events: %v", am.Events())
	}
	if mon.Alert() != am {
		t.Fatal("Alert() accessor does not return the attached monitor")
	}
}

// TestMonitorTenantShare: CheckTenantCPU reports each watched tenant's
// share of the hierarchy's per-tick CPU delta.
func TestMonitorTenantShare(t *testing.T) {
	fc := &fakeClock{}
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	hog := rc.MustNew(root, rc.FixedShare, "hog", rc.Attributes{})
	good := rc.MustNew(root, rc.FixedShare, "good", rc.Attributes{})
	binder := HeaderBinder("X-Tenant", map[string]*rc.Container{"hog": hog, "good": good}, nil)
	rt, h := govern(t, fc, Config{Root: root, Window: 100 * time.Millisecond}, WithBinder(binder))
	am := alert.New()
	mon, err := AttachMonitor(rt, am, MonitorConfig{
		TenantCPUWarn: 0.5, TenantCPUCrit: 0.8, Raise: 1,
		Tenants: []*rc.Container{hog},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Hog burns 9 ms of the 10 ms charged this tick: share 0.9, critical.
	get(h, "hog", "9ms")
	get(h, "good", "1ms")
	mon.Tick()

	var got float64
	for _, ev := range am.Events() {
		if ev.Check == CheckTenantCPU && ev.Target == "hog" && ev.Level == alert.LevelCritical {
			got = ev.Value
		}
	}
	if got < 0.89 || got > 0.91 {
		t.Fatalf("hog share %g, want ~0.9; events: %v", got, am.Events())
	}
}

// TestAttachMonitorTwiceFails: the check names collide on one
// alert.Monitor, and the error is returned rather than panicked.
func TestAttachMonitorTwiceFails(t *testing.T) {
	fc := &fakeClock{}
	root, _ := testTree(t, 0.5)
	rt, err := NewRuntime(Config{Root: root, Window: 10 * time.Millisecond}, WithClock(fc))
	if err != nil {
		t.Fatal(err)
	}
	am := alert.New()
	if _, err := AttachMonitor(rt, am, MonitorConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := AttachMonitor(rt, am, MonitorConfig{}); err == nil {
		t.Fatal("second AttachMonitor on one alert.Monitor succeeded")
	}
}

// TestMonitorTickDeterministic: two identical runtimes driven through
// the identical request sequence produce byte-identical alert streams.
func TestMonitorTickDeterministic(t *testing.T) {
	digest := func() string {
		fc := &fakeClock{}
		root, _, binder := tenantTree(t)
		rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
			WithBinder(binder))
		am := alert.New()
		mon, err := AttachMonitor(rt, am, MonitorConfig{ShedWarn: 1, ShedCrit: 2, Raise: 1})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 6; round++ {
			get(h, "capped", "5ms")
			get(h, "capped", "1ms")
			get(h, "capped", "1ms")
			fc.Sleep(time.Millisecond)
			mon.Tick()
		}
		var sb strings.Builder
		if err := am.WriteJSONL(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := digest(), digest()
	if a != b {
		t.Fatalf("alert streams diverged:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty alert stream")
	}
}
