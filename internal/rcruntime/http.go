package rcruntime

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rescon/internal/rc"
)

// Binder resolves an incoming request to the resource container that
// should be charged for it — the binding operation of §4.2. Binders run
// on the serving goroutine for every request; they must be safe for
// concurrent use and fast. Returning nil (or a destroyed container)
// falls back to the runtime's root.
type Binder interface {
	Bind(r *http.Request) *rc.Container
}

// BinderFunc adapts a function to a Binder.
type BinderFunc func(*http.Request) *rc.Container

// Bind implements Binder.
func (f BinderFunc) Bind(r *http.Request) *rc.Container { return f(r) }

// HeaderBinder binds requests to containers by the value of an HTTP
// header (e.g. a tenant id): requests whose header value appears in
// tenants bind there, everything else binds to def (nil = the runtime's
// root). The map is read concurrently and must not be mutated after.
func HeaderBinder(header string, tenants map[string]*rc.Container, def *rc.Container) Binder {
	return BinderFunc(func(r *http.Request) *rc.Container {
		if c, ok := tenants[r.Header.Get(header)]; ok {
			return c
		}
		return def
	})
}

// bindingKey keys the per-request binding in the request context.
type bindingKey struct{}

// binding tracks which container an in-flight request charges, split
// into segments at every Rebind so each container pays for exactly the
// wall-clock consumed while the request was bound to it.
type binding struct {
	rt *Runtime

	mu    sync.Mutex
	c     *rc.Container
	start time.Time     // start of the current charging segment
	total time.Duration // wall-clock charged by finished segments
	done  bool
}

// rebind charges the running segment to the old container and starts a
// new segment on c.
func (b *binding) rebind(c *rc.Container) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	now := b.rt.clock.Now()
	seg := now.Sub(b.start)
	b.rt.enf.Charge(b.c, seg)
	if seg > 0 {
		b.total += seg
	}
	b.c = c
	b.start = now
}

// finish charges the final segment and returns (container charged last,
// total wall-clock charged).
func (b *binding) finish(now time.Time) (*rc.Container, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.done = true
	seg := now.Sub(b.start)
	b.rt.enf.Charge(b.c, seg)
	if seg > 0 {
		b.total += seg
	}
	return b.c, b.total
}

func (b *binding) current() *rc.Container {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.c
}

// Rebind re-binds the in-flight request owning ctx to c — the dynamic
// rebinding of §4.2 (e.g. a handler discovers mid-request which user an
// expensive query belongs to). Wall-clock consumed so far stays charged
// to the previous container; consumption from now on charges c.
// Admission is not re-run: the request was admitted under its original
// binding, and a cooperative runtime cannot preempt it — c's subtree
// still pays, so its future requests are policed accordingly. Reports
// whether a binding was found and c was usable (non-nil, not destroyed).
func Rebind(ctx context.Context, c *rc.Container) bool {
	if ctx == nil || c == nil || c.Destroyed() {
		return false
	}
	b, ok := ctx.Value(bindingKey{}).(*binding)
	if !ok {
		return false
	}
	b.rebind(c)
	return true
}

// Bound returns the container the request owning ctx is currently
// charging, or nil when ctx carries no binding (the handler is not
// running under a Runtime middleware).
func Bound(ctx context.Context) *rc.Container {
	if ctx == nil {
		return nil
	}
	b, ok := ctx.Value(bindingKey{}).(*binding)
	if !ok {
		return nil
	}
	return b.current()
}

// statusWriter captures the status code sent downstream so the telemetry
// sink can record it. Unwrap lets http.ResponseController reach the
// underlying writer for Flush/Hijack.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Unwrap exposes the wrapped ResponseWriter to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// retryAfterSeconds converts a wait into a Retry-After header value:
// whole seconds, rounded up, because telling the client to retry before
// the budget restores only buys another shed. A non-positive wait maps
// to 0 (retry immediately).
func retryAfterSeconds(wait time.Duration) int64 {
	if wait <= 0 {
		return 0
	}
	secs := int64(wait / time.Second)
	if wait%time.Second != 0 {
		secs++ // round up: never tell the client to retry early
	}
	return secs
}

func setRetryAfter(w http.ResponseWriter, wait time.Duration) {
	w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(wait), 10))
}

// Middleware wraps next so that every request is bound to a container
// (via the Binder), admitted against the container subtree's window
// budget, and charged for its handler wall-clock on completion. Requests
// whose subtree budget stays exhausted past MaxDelay are shed with
// 429 Too Many Requests and a Retry-After derived from the remaining
// window — backpressure before work is invested, the cooperative
// analogue of the kernel's early packet drop.
//
// Around that core sit the graceful-degradation layers: a draining
// runtime sheds everything with 503 + Connection: close; a tenant whose
// breaker is open (WithBreakers) is rejected with 503 before the
// enforcer is consulted; and a panicking handler is recovered — the
// partial wall-clock is still charged to the bound container, the
// client gets a 500, and Stats().Panics counts it.
func (rt *Runtime) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := rt.binder.Bind(r)
		if c == nil || c.Destroyed() {
			c = rt.cfg.Root
		}
		if rt.draining.Load() {
			rt.drainShed.Add(1)
			w.Header().Set("Connection", "close")
			setRetryAfter(w, rt.enf.WindowRemaining())
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			rt.sink.RecordRequest(RequestEvent{
				Container: c.Name(),
				Code:      http.StatusServiceUnavailable,
				Shed:      true,
				Cause:     CauseDrain,
			})
			return
		}
		if rt.breakers != nil {
			if wait, allowed := rt.breakers.admit(c, rt.clock.Now(), rt.window); !allowed {
				rt.breakerShed.Add(1)
				setRetryAfter(w, wait)
				http.Error(w, "tenant circuit breaker open", http.StatusServiceUnavailable)
				rt.sink.RecordRequest(RequestEvent{
					Container: c.Name(),
					Code:      http.StatusServiceUnavailable,
					Shed:      true,
					Cause:     CauseBreaker,
				})
				return
			}
		}
		t0 := rt.clock.Now()
		// The charge closure is unused: segments charge through the
		// binding so mid-request Rebind splits the bill correctly.
		_, waited, ok := rt.enf.acquire(c, rt.maxDelay)
		delay := rt.clock.Now().Sub(t0)
		if !waited {
			delay = 0 // admitted on the first check: clock noise, not a wait
		}
		if !ok {
			rt.shed.Add(1)
			if rt.breakers != nil {
				rt.breakers.onShed(c, rt.clock.Now(), rt.window)
			}
			setRetryAfter(w, rt.enf.WindowRemaining())
			http.Error(w, "resource container budget exhausted", http.StatusTooManyRequests)
			rt.sink.RecordRequest(RequestEvent{
				Container: c.Name(),
				Code:      http.StatusTooManyRequests,
				Shed:      true,
				Cause:     CauseShed,
				Delay:     delay,
			})
			return
		}
		if rt.breakers != nil {
			rt.breakers.onAdmit(c)
		}
		if waited {
			rt.delayed.Add(1)
		}
		rt.reqInflight.Add(1)
		b := &binding{rt: rt, c: c, start: rt.clock.Now()}
		sw := &statusWriter{ResponseWriter: w}
		panicked := false
		func() {
			defer func() {
				if p := recover(); p != nil {
					panicked = true
				}
			}()
			next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), bindingKey{}, b)))
		}()
		// Charge the (possibly partial) work even when the handler blew
		// up: the tenant consumed that wall-clock whether or not a
		// response came of it — unaccounted work is exactly the leak
		// resource containers exist to close.
		last, wall := b.finish(rt.clock.Now())
		rt.reqInflight.Add(-1)
		cause := ""
		if panicked {
			rt.panics.Add(1)
			cause = CausePanic
			if sw.status == 0 {
				http.Error(sw, "handler panicked", http.StatusInternalServerError)
			}
		}
		rt.served.Add(1)
		rt.sink.RecordRequest(RequestEvent{
			Container: last.Name(),
			Code:      sw.code(),
			Cause:     cause,
			Wall:      wall,
			Delay:     delay,
		})
	})
}
