package rcruntime

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"rescon/internal/alert"
	"rescon/internal/rc"
)

// watchdogRig is a governed runtime with the full closed loop attached:
// an unlimited hog the watchdog may clamp, a good tenant, low alert
// thresholds so a couple of hostile ticks engage it.
type watchdogRig struct {
	fc   *fakeClock
	rt   *Runtime
	h    http.Handler
	am   *alert.Monitor
	mon  *Monitor
	wd   *Watchdog
	root *rc.Container
	hog  *rc.Container
}

func newWatchdogRig(t *testing.T, cfg WatchdogConfig) *watchdogRig {
	t.Helper()
	fc := &fakeClock{}
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	hog := rc.MustNew(root, rc.FixedShare, "hog", rc.Attributes{}) // unlimited: only a clamp can tame it
	good := rc.MustNew(root, rc.FixedShare, "good", rc.Attributes{})
	binder := HeaderBinder("X-Tenant", map[string]*rc.Container{"hog": hog, "good": good}, nil)
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder))
	am := alert.New()
	mon, err := AttachMonitor(rt, am, MonitorConfig{
		TenantCPUWarn: 0.5, TenantCPUCrit: 0.75,
		Clear:   2,
		Tenants: []*rc.Container{hog},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clampable = []*rc.Container{hog}
	wd := AttachWatchdog(mon, cfg)
	return &watchdogRig{fc: fc, rt: rt, h: h, am: am, mon: mon, wd: wd, root: root, hog: hog}
}

// hostileTick burns hog-dominated CPU and ticks the monitor.
func (r *watchdogRig) hostileTick() {
	get(r.h, "hog", "9ms")
	get(r.h, "good", "1ms")
	r.fc.Sleep(time.Millisecond)
	r.mon.Tick()
}

// calmTick runs only the good tenant.
func (r *watchdogRig) calmTick() {
	get(r.h, "good", "1ms")
	r.fc.Sleep(time.Millisecond)
	r.mon.Tick()
}

// TestWatchdogClampsAndRestores is the closed loop end to end: sustained
// hog dominance engages the watchdog (clamping the hog and tightening
// the accept policy toward it), and a calm stretch clears the alerts,
// counts down the backoff, and restores both settings — with the clamp
// and unclamp journaled in the alert stream.
func TestWatchdogClampsAndRestores(t *testing.T) {
	rig := newWatchdogRig(t, WatchdogConfig{ClampLimit: 0.2, BackoffTicks: 2, MaxBackoffTicks: 8})

	// Default Raise is 2: the second hostile tick's critical engages. One
	// extra tick first so the CPU ring has the hog's delta for runaway
	// detection (the ring advances after each tick's events).
	for i := 0; i < 3 && !rig.wd.Engaged(); i++ {
		rig.hostileTick()
	}
	if !rig.wd.Engaged() || rig.wd.Engagements() != 1 {
		t.Fatalf("watchdog not engaged: engaged=%t engagements=%d", rig.wd.Engaged(), rig.wd.Engagements())
	}
	if rig.wd.Clamped() != rig.hog {
		t.Fatalf("clamped %v, want the hog", rig.wd.Clamped())
	}
	if got := rig.hog.Attributes().Limit; got != 0.2 {
		t.Fatalf("hog limit %g, want the 0.2 clamp", got)
	}
	pol := rig.rt.Policy()
	if !pol.Enabled || pol.OverBudgetOf != rig.hog {
		t.Fatalf("tight policy %+v, want enabled with OverBudgetOf=hog", pol)
	}

	// Calm until the alerts clear and the backoff counts down.
	for i := 0; i < 40 && rig.wd.Engaged(); i++ {
		rig.calmTick()
	}
	if rig.wd.Engaged() || rig.wd.Restores() != 1 {
		t.Fatalf("watchdog never restored: engaged=%t restores=%d", rig.wd.Engaged(), rig.wd.Restores())
	}
	if got := rig.hog.Attributes().Limit; got != 0 {
		t.Fatalf("hog limit %g after restore, want unclamped (0)", got)
	}
	if pol := rig.rt.Policy(); pol.Enabled {
		t.Fatalf("policy %+v after restore, want the saved (disabled) policy", pol)
	}

	// The journal must show the whole cycle.
	var clamped, unclamped bool
	for _, ev := range rig.am.Events() {
		if ev.Check != alert.WatchdogCheckName {
			continue
		}
		if strings.Contains(ev.Detail, "clamped runaway") {
			clamped = true
		}
		if strings.Contains(ev.Detail, "unclamped") {
			unclamped = true
		}
	}
	if !clamped || !unclamped {
		t.Fatalf("journal incomplete: clamp=%t unclamp=%t", clamped, unclamped)
	}
	if msg := rig.am.SelfCheck(); msg != "" {
		t.Fatalf("alert self-check: %s", msg)
	}
}

// TestWatchdogReengageCancelsRestore: overload returning during the
// countdown keeps the emergency settings — the engagement count does
// not grow, the countdown is cancelled.
func TestWatchdogReengageCancelsRestore(t *testing.T) {
	rig := newWatchdogRig(t, WatchdogConfig{ClampLimit: 0.2, BackoffTicks: 6, MaxBackoffTicks: 8})
	for i := 0; i < 3 && !rig.wd.Engaged(); i++ {
		rig.hostileTick()
	}
	if !rig.wd.Engaged() {
		t.Fatal("watchdog not engaged")
	}

	// Calm just long enough for the criticals to clear (countdown armed,
	// backoff 6 not yet elapsed), then hostile again.
	for i := 0; i < 6; i++ {
		rig.calmTick()
	}
	if rig.wd.Restores() != 0 {
		t.Fatal("restored before the backoff elapsed")
	}
	for i := 0; i < 4; i++ {
		rig.hostileTick()
	}
	if !rig.wd.Engaged() || rig.wd.Engagements() != 1 || rig.wd.Restores() != 0 {
		t.Fatalf("re-overload mishandled: engaged=%t engagements=%d restores=%d",
			rig.wd.Engaged(), rig.wd.Engagements(), rig.wd.Restores())
	}
	// The clamp held throughout.
	if got := rig.hog.Attributes().Limit; got != 0.2 {
		t.Fatalf("hog limit %g mid-cycle, want 0.2", got)
	}
}

// TestWatchdogBackoffDoublesOnFlap: a re-engagement soon after a restore
// doubles the restore backoff (bounded), so an oscillating overload
// converges to longer engaged periods.
func TestWatchdogBackoffDoublesOnFlap(t *testing.T) {
	rig := newWatchdogRig(t, WatchdogConfig{ClampLimit: 0.2, BackoffTicks: 2, MaxBackoffTicks: 4})

	engageAndRestore := func() (calmTicks int) {
		for i := 0; i < 5 && !rig.wd.Engaged(); i++ {
			rig.hostileTick()
		}
		if !rig.wd.Engaged() {
			t.Fatal("watchdog not engaged")
		}
		for calmTicks < 60 && rig.wd.Engaged() {
			rig.calmTick()
			calmTicks++
		}
		if rig.wd.Engaged() {
			t.Fatal("watchdog never restored")
		}
		return calmTicks
	}

	first := engageAndRestore()
	// Immediately hostile again: within the flap window of the restore,
	// so the next restore waits longer.
	second := engageAndRestore()
	if rig.wd.Engagements() != 2 || rig.wd.Restores() != 2 {
		t.Fatalf("cycle counts %d/%d, want 2/2", rig.wd.Engagements(), rig.wd.Restores())
	}
	if second <= first {
		t.Fatalf("backoff did not grow: first restore after %d calm tick(s), second after %d", first, second)
	}
}
