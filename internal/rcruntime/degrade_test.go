package rcruntime

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfterSeconds pins the header arithmetic: whole seconds,
// rounded up, never telling the client to retry before the budget can
// have restored.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int64
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2*time.Second + 500*time.Millisecond, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.wait); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.wait, got, c.want)
		}
	}
}

// TestShedCarriesRetryAfter: a 429 announces when the window restores
// the budget — derived from WindowRemaining, rounded up to whole
// seconds.
func TestShedCarriesRetryAfter(t *testing.T) {
	fc := &fakeClock{}
	root, _, binder := tenantTree(t)
	_, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond, MaxDelay: NoDelay},
		WithBinder(binder))

	get(h, "capped", "5ms") // exhaust the 50% budget
	w := get(h, "capped", "1ms")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	// 5 ms remain in the window: rounded up to one whole second.
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

// TestDrainShedsAndReportsClean: with nothing in flight Drain returns
// immediately and clean; afterwards every request is shed with 503 +
// Connection: close and counted as DrainShed.
func TestDrainShedsAndReportsClean(t *testing.T) {
	fc := &fakeClock{}
	root, _, binder := tenantTree(t)
	sink := &recordingSink{}
	rt, h := govern(t, fc, Config{Root: root, Window: 10 * time.Millisecond},
		WithBinder(binder), WithTelemetrySink(sink))

	if rt.Draining() {
		t.Fatal("draining before Drain")
	}
	rep := rt.Drain(100 * time.Millisecond)
	if !rep.Clean || rep.LeakedRequests != 0 || rep.Waited != 0 {
		t.Fatalf("idle drain not clean: %+v", rep)
	}
	if !rt.Draining() {
		t.Fatal("Draining() false after Drain")
	}

	w := get(h, "capped", "1ms")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if got := w.Header().Get("Connection"); got != "close" {
		t.Fatalf("Connection = %q, want close", got)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("drain shed missing Retry-After")
	}
	if ev := sink.last(t); ev.Cause != CauseDrain || !ev.Shed {
		t.Fatalf("drain shed event %+v", ev)
	}
	if s := rt.Stats(); s.DrainShed != 1 || s.Served != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestDrainReportsLeakedRequest: a handler still running when the grace
// expires is reported as leaked (and Shutdown surfaces it as an error);
// the drain never preempts it, and the late finish is still charged.
func TestDrainReportsLeakedRequest(t *testing.T) {
	fc := &fakeClock{}
	root, leaf, binder := tenantTree(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	rt, err := NewRuntime(Config{Root: root, Window: 10 * time.Millisecond},
		WithClock(fc), WithBinder(binder))
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fc.Sleep(3 * time.Millisecond) // the stuck handler's eventual cost
	}))

	done := make(chan struct{})
	go func() {
		defer close(done)
		get(h, "capped", "")
	}()
	<-entered

	// The fake clock makes the poll loop instant: the grace "elapses"
	// without the blocked handler ever finishing.
	rep, err := rt.Shutdown(50 * time.Millisecond)
	if err == nil {
		t.Fatal("Shutdown with a stuck handler returned nil error")
	}
	if rep.Clean || rep.LeakedRequests != 1 {
		t.Fatalf("leak report %+v", rep)
	}
	if rep.Waited < 50*time.Millisecond {
		t.Fatalf("waited %v, want >= grace", rep.Waited)
	}

	close(release)
	<-done
	if s := rt.Stats(); s.InflightRequests != 0 || s.Served != 1 {
		t.Fatalf("after late finish: %+v", s)
	}
	if leaf.Usage().CPU() == 0 {
		t.Fatal("late-finishing handler's work was never charged")
	}
}

// TestMiddlewarePanicRecovery: a panicking handler yields a 500, counts
// in Panics (and Served), and its partial wall-clock is still charged
// to the bound container.
func TestMiddlewarePanicRecovery(t *testing.T) {
	fc := &fakeClock{}
	root, leaf, binder := tenantTree(t)
	sink := &recordingSink{}
	rt, err := NewRuntime(Config{Root: root, Window: 100 * time.Millisecond},
		WithClock(fc), WithBinder(binder), WithTelemetrySink(sink))
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fc.Sleep(7 * time.Millisecond) // partial work before the blow-up
		panic("boom")
	}))

	w := get(h, "capped", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if s := rt.Stats(); s.Panics != 1 || s.Served != 1 || s.InflightRequests != 0 {
		t.Fatalf("stats %+v", s)
	}
	if got := time.Duration(leaf.Usage().CPU()); got != 7*time.Millisecond {
		t.Fatalf("charged %v, want 7ms of partial work", got)
	}
	ev := sink.last(t)
	if ev.Cause != CausePanic || ev.Code != http.StatusInternalServerError || ev.Wall != 7*time.Millisecond {
		t.Fatalf("panic event %+v", ev)
	}
}

// TestEnforcerSync runs a closure under the enforcer lock and observes
// its effects.
func TestEnforcerSync(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	ran := false
	e.Sync(func() { ran = true })
	if !ran {
		t.Fatal("Sync did not run the closure")
	}
}
