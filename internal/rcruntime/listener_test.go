package rcruntime

import (
	"io"
	"net"
	"testing"
	"time"

	"rescon/internal/rc"
)

// acceptLoop accepts in the background, delivering governed conns.
func acceptLoop(t *testing.T, ln net.Listener) <-chan net.Conn {
	t.Helper()
	ch := make(chan net.Conn, 16)
	go func() {
		defer close(ch)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			ch <- c
		}
	}()
	return ch
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// refusedByPeer reports whether the peer closed the connection without
// sending anything — what a policed refusal looks like from the client.
func refusedByPeer(c net.Conn) bool {
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	_, err := c.Read(buf)
	return err == io.EOF || err != nil && !err.(net.Error).Timeout()
}

// TestListenerMaxConns: the connection cap refuses the third concurrent
// connection, and closing an admitted one restores headroom.
func TestListenerMaxConns(t *testing.T) {
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	rt := MustNewRuntime(Config{
		Root:   root,
		Policy: AcceptPolicy{Enabled: true, MaxConns: 2},
	})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	ln := rt.Listener(inner)
	conns := acceptLoop(t, ln)
	addr := inner.Addr().String()

	c1, c2 := dial(t, addr), dial(t, addr)
	defer c1.Close()
	defer c2.Close()
	s1, s2 := <-conns, <-conns
	defer s2.Close()
	if got := rt.Stats(); got.Accepted != 2 || got.Inflight != 2 {
		t.Fatalf("stats after two accepts: %+v", got)
	}

	c3 := dial(t, addr)
	defer c3.Close()
	if !refusedByPeer(c3) {
		t.Fatal("third connection was not refused at the cap")
	}
	if got := rt.Stats(); got.Refused != 1 {
		t.Fatalf("stats after refusal: %+v", got)
	}

	// Closing an admitted connection restores headroom. Double-close must
	// not double-decrement.
	_ = s1.Close()
	_ = s1.Close()
	if got := rt.Stats(); got.Inflight != 1 {
		t.Fatalf("inflight after close: %+v", got)
	}
	c4 := dial(t, addr)
	defer c4.Close()
	s4 := <-conns
	defer s4.Close()
	if got := rt.Stats(); got.Accepted != 3 || got.Inflight != 2 {
		t.Fatalf("stats after re-admission: %+v", got)
	}
}

// TestListenerFrac: with Frac 0.5 of MaxConns 4, the cap bites at two
// inflight connections — shed before the hard bound, like the kernel's
// SYNFrac.
func TestListenerFrac(t *testing.T) {
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	rt := MustNewRuntime(Config{
		Root:   root,
		Policy: AcceptPolicy{Enabled: true, MaxConns: 4, Frac: 0.5},
	})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	conns := acceptLoop(t, rt.Listener(inner))
	addr := inner.Addr().String()

	c1, c2 := dial(t, addr), dial(t, addr)
	defer c1.Close()
	defer c2.Close()
	s1, s2 := <-conns, <-conns
	defer s1.Close()
	defer s2.Close()
	c3 := dial(t, addr)
	defer c3.Close()
	if !refusedByPeer(c3) {
		t.Fatal("connection beyond Frac×MaxConns was not refused")
	}
}

// TestListenerOverBudget: with OverBudgetOf pointed at a capped subtree,
// new connections are refused exactly while that subtree is over its
// window budget — and admitted again after the roll. The fake clock
// makes the budget state deterministic.
func TestListenerOverBudget(t *testing.T) {
	fc := &fakeClock{}
	root, leaf := testTree(t, 0.5)
	rt := MustNewRuntime(Config{
		Root:   root,
		Window: 10 * time.Millisecond,
		Policy: AcceptPolicy{Enabled: true, OverBudgetOf: leaf},
	}, WithClock(fc))
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	conns := acceptLoop(t, rt.Listener(inner))
	addr := inner.Addr().String()

	// Under budget: admitted.
	c1 := dial(t, addr)
	defer c1.Close()
	s1 := <-conns
	defer s1.Close()

	// Exhaust the subtree budget (Limit 0.5 × 10ms = 5ms).
	rt.Enforcer().Acquire(leaf)(5 * time.Millisecond)
	c2 := dial(t, addr)
	defer c2.Close()
	if !refusedByPeer(c2) {
		t.Fatal("connection admitted while the watched subtree was over budget")
	}
	// The roll restores accepts.
	fc.Sleep(11 * time.Millisecond)
	c3 := dial(t, addr)
	defer c3.Close()
	s3 := <-conns
	defer s3.Close()
	if got := rt.Stats(); got.Refused != 1 || got.Accepted != 2 {
		t.Fatalf("stats = %+v, want 1 refused / 2 accepted", got)
	}
}
