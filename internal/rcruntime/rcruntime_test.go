package rcruntime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rescon/internal/rc"
)

// fakeClock advances only when something sleeps, so tests are instant and
// deterministic for the single-goroutine cases.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestUnlimitedAdmitsImmediately(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	before := fc.Now()
	charge := e.Acquire(c)
	charge(3 * time.Millisecond)
	if !fc.Now().Equal(before) {
		t.Fatal("unlimited work should not be delayed")
	}
	if c.Usage().CPU() != 3*1000*1000 {
		t.Fatalf("charged %v", c.Usage().CPU())
	}
}

func TestLimitDelaysWork(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})

	// Consume the 5 ms budget of the first window.
	e.Acquire(leaf)(5 * time.Millisecond)
	// The next acquire must wait for the window to roll.
	before := fc.Now()
	charge := e.Acquire(leaf)
	waited := fc.Now().Sub(before)
	if waited <= 0 {
		t.Fatal("over-budget work admitted without delay")
	}
	if waited > 15*time.Millisecond {
		t.Fatalf("waited %v, want about one window", waited)
	}
	charge(time.Millisecond)
}

func TestHierarchicalLimit(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	parent := rc.MustNew(nil, rc.FixedShare, "parent", rc.Attributes{Limit: 0.3})
	l1 := rc.MustNew(parent, rc.TimeShare, "l1", rc.Attributes{Priority: 1})
	l2 := rc.MustNew(parent, rc.TimeShare, "l2", rc.Attributes{Priority: 1})
	// l1 eats the whole subtree budget (3 ms); l2 must wait too.
	e.Acquire(l1)(3 * time.Millisecond)
	before := fc.Now()
	e.Acquire(l2)(time.Millisecond)
	if fc.Now().Sub(before) <= 0 {
		t.Fatal("sibling admitted despite exhausted parent budget")
	}
}

func TestDoBracketsAndCharges(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	e.Do(c, func() { fc.Sleep(2 * time.Millisecond) })
	if got := time.Duration(c.Usage().CPU()); got != 2*time.Millisecond {
		t.Fatalf("Do charged %v, want 2ms", got)
	}
}

func TestChargeNegativeIgnored(t *testing.T) {
	e := New(&fakeClock{}, time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	e.Acquire(c)(-time.Second)
	if c.Usage().CPU() != 0 {
		t.Fatal("negative charge applied")
	}
}

func TestChargeAfterDestroyIsSafe(t *testing.T) {
	e := New(&fakeClock{}, time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	charge := e.Acquire(c)
	_ = c.Release()
	charge(time.Millisecond) // must not panic
}

func TestDefaults(t *testing.T) {
	e := New(nil, 0)
	if e.Window() != DefaultWindow {
		t.Fatalf("window %v", e.Window())
	}
	// Real clock path: an unlimited acquire is immediate.
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	start := time.Now()
	e.Acquire(c)(0)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("real-clock unlimited acquire stalled")
	}
}

// Concurrency: goroutines hammering a capped container stay within the
// budget rate, and the enforcer survives the race detector.
func TestConcurrentEnforcement(t *testing.T) {
	e := New(RealClock{}, 20*time.Millisecond)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	var granted atomic.Int64
	const workers = 4
	const workUnit = 2 * time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				charge := e.Acquire(leaf)
				// Simulate work by charging without actually burning CPU.
				charge(workUnit)
				granted.Add(int64(workUnit))
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Budget: 50% of 300 ms = 150 ms (+ slack for window boundaries and
	// scheduling jitter on a loaded CI machine).
	if got := time.Duration(granted.Load()); got > 260*time.Millisecond {
		t.Fatalf("granted %v of charged work in 300ms at a 50%% cap", got)
	}
	if granted.Load() == 0 {
		t.Fatal("no work admitted at all")
	}
}
