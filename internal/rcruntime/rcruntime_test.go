package rcruntime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rescon/internal/rc"
)

// fakeClock advances only when something sleeps, so tests are instant and
// deterministic for the single-goroutine cases.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestUnlimitedAdmitsImmediately(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	before := fc.Now()
	charge := e.Acquire(c)
	charge(3 * time.Millisecond)
	if !fc.Now().Equal(before) {
		t.Fatal("unlimited work should not be delayed")
	}
	if c.Usage().CPU() != 3*1000*1000 {
		t.Fatalf("charged %v", c.Usage().CPU())
	}
}

func TestLimitDelaysWork(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})

	// Consume the 5 ms budget of the first window.
	e.Acquire(leaf)(5 * time.Millisecond)
	// The next acquire must wait for the window to roll.
	before := fc.Now()
	charge := e.Acquire(leaf)
	waited := fc.Now().Sub(before)
	if waited <= 0 {
		t.Fatal("over-budget work admitted without delay")
	}
	if waited > 15*time.Millisecond {
		t.Fatalf("waited %v, want about one window", waited)
	}
	charge(time.Millisecond)
}

func TestHierarchicalLimit(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	parent := rc.MustNew(nil, rc.FixedShare, "parent", rc.Attributes{Limit: 0.3})
	l1 := rc.MustNew(parent, rc.TimeShare, "l1", rc.Attributes{Priority: 1})
	l2 := rc.MustNew(parent, rc.TimeShare, "l2", rc.Attributes{Priority: 1})
	// l1 eats the whole subtree budget (3 ms); l2 must wait too.
	e.Acquire(l1)(3 * time.Millisecond)
	before := fc.Now()
	e.Acquire(l2)(time.Millisecond)
	if fc.Now().Sub(before) <= 0 {
		t.Fatal("sibling admitted despite exhausted parent budget")
	}
}

// TestWindowRollRestoresBudget: once the window rolls, previously
// exhausted budget is restored and admission is immediate again — usage
// from the old window must not count against the new one.
func TestWindowRollRestoresBudget(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})

	e.Acquire(leaf)(5 * time.Millisecond) // exhaust the 5ms window budget
	fc.Sleep(11 * time.Millisecond)       // window expires on the fake clock
	before := fc.Now()
	e.Acquire(leaf)(time.Millisecond)
	if fc.Now().Sub(before) != 0 {
		t.Fatal("acquire after window roll should be immediate: budget must reset")
	}
}

// TestBudgetIsPerWindow drives three consecutive windows of exhaustion on
// the fake clock: each window admits its budget, then blocks until the
// roll, and the total admitted tracks budget × windows — the sliding
// snapshot accounting, not a cumulative-usage comparison (which would
// deadlock after the first window).
func TestBudgetIsPerWindow(t *testing.T) {
	fc := &fakeClock{}
	const window = 10 * time.Millisecond
	const budget = 5 * time.Millisecond // Limit 0.5 × 10ms
	e := New(fc, window)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})

	for w := 0; w < 3; w++ {
		e.Acquire(leaf)(budget)
		before := fc.Now()
		charge := e.Acquire(leaf) // over budget: must wait for the roll
		if waited := fc.Now().Sub(before); waited <= 0 {
			t.Fatalf("window %d: over-budget acquire admitted without delay", w)
		}
		charge(0) // admit-only probe; leaves the fresh window's budget intact
	}
	want := time.Duration(3) * budget
	if got := time.Duration(leaf.Usage().CPU()); got != want {
		t.Fatalf("charged %v across 3 windows, want %v", got, want)
	}
}

// TestRollPrunesDestroyedContainers: a limited container that was being
// tracked and is then destroyed must drop out of the snapshot table at
// the next roll instead of leaking (and must not panic the roll).
func TestRollPrunesDestroyedContainers(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})

	e.Acquire(leaf)(time.Millisecond) // seeds the snapshot for "capped"
	e.mu.Lock()
	_, tracked := e.snapshots[capped]
	e.mu.Unlock()
	if !tracked {
		t.Fatal("limited ancestor not tracked after an acquire")
	}
	_ = leaf.Release()
	_ = capped.Release()
	fc.Sleep(11 * time.Millisecond)
	// Any acquire rolls the window and prunes.
	other := rc.MustNew(nil, rc.TimeShare, "other", rc.Attributes{Priority: 1})
	e.Acquire(other)(0)
	e.mu.Lock()
	_, tracked = e.snapshots[capped]
	e.mu.Unlock()
	if tracked {
		t.Fatal("destroyed container still in the snapshot table after a roll")
	}
}

// stuckClock is a fake clock whose Sleep never returns: the only way a
// blocked acquirer can be admitted is the waiter-wake path. Advance moves
// time without unblocking any sleeper.
type stuckClock struct {
	mu  sync.Mutex
	now time.Time
}

func (s *stuckClock) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

func (s *stuckClock) Sleep(time.Duration) { select {} }

func (s *stuckClock) Advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// TestRollWakesBlockedWaiter: a goroutine blocked on an exhausted limit
// is released when another acquirer rolls the window — it must not
// depend on its own fallback sleep firing.
func TestRollWakesBlockedWaiter(t *testing.T) {
	sc := &stuckClock{}
	e := New(sc, 10*time.Millisecond)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})

	e.Acquire(leaf)(5 * time.Millisecond)
	admitted := make(chan struct{})
	go func() {
		e.Acquire(leaf)(0)
		close(admitted)
	}()
	// Wait until the waiter has parked itself on the exhausted container.
	for {
		e.mu.Lock()
		parked := len(e.waiters[capped]) > 0
		e.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	sc.Advance(11 * time.Millisecond) // expire the window…
	e.Acquire(leaf)(0)                // …and roll it from a different acquirer
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked waiter was not woken by the window roll")
	}
}

func TestDoBracketsAndCharges(t *testing.T) {
	fc := &fakeClock{}
	e := New(fc, 10*time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	e.Do(c, func() { fc.Sleep(2 * time.Millisecond) })
	if got := time.Duration(c.Usage().CPU()); got != 2*time.Millisecond {
		t.Fatalf("Do charged %v, want 2ms", got)
	}
}

func TestChargeNegativeIgnored(t *testing.T) {
	e := New(&fakeClock{}, time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	e.Acquire(c)(-time.Second)
	if c.Usage().CPU() != 0 {
		t.Fatal("negative charge applied")
	}
}

func TestChargeAfterDestroyIsSafe(t *testing.T) {
	e := New(&fakeClock{}, time.Millisecond)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	charge := e.Acquire(c)
	_ = c.Release()
	charge(time.Millisecond) // must not panic
}

func TestDefaults(t *testing.T) {
	e := New(nil, 0)
	if e.Window() != DefaultWindow {
		t.Fatalf("window %v", e.Window())
	}
	// Real clock path: an unlimited acquire is immediate.
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	start := time.Now()
	e.Acquire(c)(0)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("real-clock unlimited acquire stalled")
	}
}

// Concurrency: goroutines hammering a capped container stay within the
// budget rate, and the enforcer survives the race detector.
func TestConcurrentEnforcement(t *testing.T) {
	e := New(RealClock{}, 20*time.Millisecond)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	var granted atomic.Int64
	const workers = 4
	const workUnit = 2 * time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				charge := e.Acquire(leaf)
				// Simulate work by charging without actually burning CPU.
				charge(workUnit)
				granted.Add(int64(workUnit))
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Budget: 50% of 300 ms = 150 ms (+ slack for window boundaries and
	// scheduling jitter on a loaded CI machine).
	if got := time.Duration(granted.Load()); got > 260*time.Millisecond {
		t.Fatalf("granted %v of charged work in 300ms at a 50%% cap", got)
	}
	if granted.Load() == 0 {
		t.Fatal("no work admitted at all")
	}
}
