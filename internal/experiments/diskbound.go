package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// DiskBoundPoints is the x axis of the disk-bound extension experiment.
var DiskBoundPoints = []int{0, 2, 4, 8, 12, 16}

// DiskBound is an extension experiment for §4.4: the same prioritized-
// client scenario as Fig. 11, but with *uncached* documents, so the disk
// (~8 ms positioning per request) is the bottleneck instead of the CPU.
// With resource containers the disk queue is served in container-priority
// order and the premium client's response time stays near one disk
// access; on the unmodified kernel the disk queue is FIFO and the premium
// client waits behind every queued low-priority read.
func DiskBound(opt Options) []*metrics.Series {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	modes := []kernel.Mode{kernel.ModeUnmodified, kernel.ModeRC}
	np := len(DiskBoundPoints)
	vals := runPoints(opt.Parallel, len(modes)*np, func(i int) float64 {
		return diskBoundPoint(modes[i/np], DiskBoundPoints[i%np], opt)
	})
	var out []*metrics.Series
	for mi, mode := range modes {
		name := "Unmodified (FIFO disk)"
		if mode == kernel.ModeRC {
			name = "Resource containers (priority disk)"
		}
		s := &metrics.Series{Name: name}
		for pi, n := range DiskBoundPoints {
			s.Append(float64(n), vals[mi*np+pi])
		}
		out = append(out, s)
	}
	return out
}

func diskBoundPoint(mode kernel.Mode, n int, opt Options) float64 {
	e := newEnv(mode, opt)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
		PerConnContainers: mode == kernel.ModeRC,
		ConnPriority: func(a netsim.Addr) int {
			if a.IP == HighPriorityIP {
				return HighPriority
			}
			return LowPriority
		},
	})
	if err != nil {
		panic(err)
	}
	_ = srv

	lows := workload.MustStartPopulation(n, workload.ClientConfig{
		Kernel:   e.k,
		Src:      netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:      ServerAddr,
		Uncached: true,
	})
	high := workload.MustStartClient(workload.ClientConfig{
		Kernel:   e.k,
		Src:      netsim.Addr{IP: HighPriorityIP, Port: 1024},
		Dst:      ServerAddr,
		Uncached: true,
		Think:    20 * sim.Millisecond,
	})
	_ = lows

	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	high.ResetStats()
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	return high.Latency.Mean()
}
