package experiments

import (
	"fmt"

	"rescon/internal/alert"
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/workload"
)

// AlertingFloodRate is the SYN-flood intensity of the watchdog ablation:
// at ~107µs of protocol work per SYN, 20k SYN/s is more than double the
// machine's capacity — deep in the Fig-14 collapse region.
const AlertingFloodRate = sim.Rate(20_000)

// AlertingBucket is the goodput-timeline resolution used to locate the
// collapse knee.
const AlertingBucket = 250 * sim.Millisecond

// alertingClientCount keeps legitimate offered load well above the knee
// detection noise floor: enough resilient clients that steady-state
// buckets hold hundreds of completions.
const alertingClientCount = 64

// AlertingRow is one arm of the watchdog ablation: a kernel mode with
// the alert battery attached, watchdog on or off, attacked by a SYN
// flood plus a slow-loris at onset time.
type AlertingRow struct {
	Mode     kernel.Mode
	Watchdog bool
	// SteadyGoodput is legitimate goodput (req/s) before the attack;
	// FloodGoodput is goodput over the attack window.
	SteadyGoodput float64
	FloodGoodput  float64
	// FirstCritical is when the first critical detection fired after
	// attack onset (-1: never). Watchdog notes don't count.
	FirstCritical sim.Duration
	// Knee is when goodput first fell below half its steady-state rate,
	// measured at AlertingBucket resolution from attack onset (-1: the
	// goodput never collapsed).
	Knee sim.Duration
	// Alert-stream and closed-loop counters for the table.
	Events      int
	Flaps       uint64
	Engagements uint64
	Restores    uint64
}

// AlertingResult holds all six ablation arms (3 modes × watchdog
// on/off) in deterministic order: unmodified, lrp, rc; within a mode,
// watchdog-off then watchdog-on.
type AlertingResult struct {
	Rows []AlertingRow
}

// Row returns the arm for (mode, watchdog).
func (r *AlertingResult) Row(mode kernel.Mode, watchdog bool) AlertingRow {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Watchdog == watchdog {
			return row
		}
	}
	return AlertingRow{FirstCritical: -1, Knee: -1}
}

// Table renders the ablation as the rcbench table.
func (r *AlertingResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Alerting: closed-loop watchdog ablation under SYN flood + slow-loris",
		"Mode", "Watchdog", "Steady (req/s)", "Flood (req/s)", "First crit (ms)", "Knee (ms)", "Alerts", "Engage/Restore")
	onOff := map[bool]string{true: "on", false: "off"}
	ms := func(d sim.Duration) string {
		if d < 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(d)/float64(sim.Millisecond))
	}
	for _, row := range r.Rows {
		t.AddRow(row.Mode.String(), onOff[row.Watchdog],
			row.SteadyGoodput, row.FloodGoodput,
			ms(row.FirstCritical), ms(row.Knee),
			row.Events, fmt.Sprintf("%d/%d", row.Engagements, row.Restores))
	}
	return t
}

// Alerting runs the watchdog ablation: for every kernel mode, the same
// flood + slow-loris overload hits a monitored server twice — once with
// detection only, once with the closed-loop watchdog reacting — and the
// goodput timeline locates the collapse knee relative to the first
// critical alert. This is the operational claim of the alert subsystem:
// the leading indicators fire before goodput collapses, and reacting to
// them automatically buys goodput back.
func Alerting(opt Options) (*AlertingResult, error) {
	opt = opt.withDefaults(2*sim.Second, 5*sim.Second)
	modes := []kernel.Mode{kernel.ModeUnmodified, kernel.ModeLRP, kernel.ModeRC}
	rows, err := runPointsErr(opt.Parallel, 2*len(modes), func(i int) (AlertingRow, error) {
		return alertingPoint(opt, modes[i/2], i%2 == 1)
	})
	if err != nil {
		return nil, err
	}
	return &AlertingResult{Rows: rows}, nil
}

// alertingPoint runs one ablation arm: warmup of legitimate load, then
// flood + slow-loris for the measurement window, goodput bucketed at
// AlertingBucket resolution.
func alertingPoint(opt Options, mode kernel.Mode, withWatchdog bool) (AlertingRow, error) {
	row := AlertingRow{Mode: mode, Watchdog: withWatchdog, FirstCritical: -1, Knee: -1}
	e := newEnv(mode, opt)
	tel := telemetry.New(telemetry.Config{})
	e.k.AttachTelemetry(tel)
	mon, err := alert.Attach(e.k, alert.Config{})
	if err != nil {
		return row, err
	}
	var wd *alert.Watchdog
	if withWatchdog {
		wd = alert.AttachWatchdog(mon, e.k, alert.WatchdogConfig{})
	}

	if _, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
		PerConnContainers: mode == kernel.ModeRC,
	}); err != nil {
		return row, err
	}
	pop := workload.MustStartPopulation(alertingClientCount,
		ResilientClientConfig(e.k, netsim.Addr{IP: ClientNet + 1, Port: 1024}))

	// The attack begins when the warmup ends: a full-rate SYN flood plus
	// a slow-loris tying up server connections.
	onset := e.eng.Now().Add(opt.Warmup)
	e.eng.After(opt.Warmup, func() {
		workload.StartFlood(e.k, AlertingFloodRate, AttackNet+1, 4096, ServerAddr)
		workload.StartSlowLoris(workload.SlowLorisConfig{
			Kernel:  e.k,
			Src:     netsim.Addr{IP: AttackNet + 7, Port: 1024},
			Dst:     ServerAddr,
			Conns:   64,
			Trickle: 50 * sim.Millisecond,
			Hold:    2 * sim.Second,
		})
	})

	// Goodput timeline: completions per AlertingBucket, spanning warmup
	// and attack so the knee is measured against the same clock as the
	// alert stream.
	var buckets []uint64
	var prev uint64
	e.eng.Every(AlertingBucket, func() {
		cur := pop.Completed()
		buckets = append(buckets, cur-prev)
		prev = cur
	})

	e.eng.RunUntil(sim.Time(0).Add(opt.Warmup + opt.Window))

	// Steady-state goodput: the pre-onset buckets, skipping the first
	// (client ramp-up). Flood goodput: everything after onset.
	preOnset := int(opt.Warmup / AlertingBucket)
	if preOnset > len(buckets) {
		preOnset = len(buckets)
	}
	row.SteadyGoodput = bucketRate(buckets[min(1, preOnset):preOnset])
	row.FloodGoodput = bucketRate(buckets[preOnset:])

	// Knee: first post-onset bucket below half the steady-state rate.
	half := row.SteadyGoodput * float64(AlertingBucket) / float64(sim.Second) / 2
	for i, n := range buckets[preOnset:] {
		if float64(n) < half {
			row.Knee = sim.Duration(i+1) * AlertingBucket
			break
		}
	}
	if at, ok := mon.FirstAtSince(alert.LevelCritical, onset); ok {
		row.FirstCritical = at.Sub(onset)
	}
	row.Events = len(mon.Events())
	row.Flaps = mon.Flaps()
	if wd != nil {
		row.Engagements = wd.Engagements()
		row.Restores = wd.Restores()
	}
	return row, nil
}

// bucketRate converts completion-count buckets to a req/s rate.
func bucketRate(buckets []uint64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	var total uint64
	for _, n := range buckets {
		total += n
	}
	return float64(total) / (float64(len(buckets)) * float64(AlertingBucket) / float64(sim.Second))
}
