package experiments

import (
	"testing"

	"rescon/internal/sim"
)

func liveChaosTestOpts() Options {
	return Options{Seed: 7, Warmup: sim.Second, Window: 2 * sim.Second} // quick params
}

// TestLiveChaosSurvivability is the acceptance story of the closed loop
// on the real runtime: under an identical seeded fault schedule and a
// hostile tenant, the defended cell (monitor + watchdog + breakers)
// must strictly improve good-tenant goodput, the watchdog must clamp
// and then restore, and both cells must drain clean.
func TestLiveChaosSurvivability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: boots four real servers")
	}
	opt := liveChaosTestOpts()
	opt.Invariants = true // double run + defense/restore/drain gates
	res, err := LiveChaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	und, def := res.Cells[0], res.Cells[1]
	if und.Config != "undefended" || def.Config != "defended" {
		t.Fatalf("cell order %q, %q", und.Config, def.Config)
	}
	if !res.Deterministic {
		t.Fatal("invariant run did not confirm determinism")
	}
	// The undefended cell must actually suffer: faults fired and no
	// defense layer absorbed anything.
	if und.Faults == (def.Faults) && und.Faults.HandlerPanics == 0 {
		t.Fatal("fault schedule never fired")
	}
	if und.Shed != 0 || und.BreakerShed != 0 || und.Refused != 0 {
		t.Fatalf("undefended cell shed %d/%d/%d, want no shedding layers", und.Shed, und.BreakerShed, und.Refused)
	}
	// The defended cell exercises all three layers.
	if def.Shed == 0 {
		t.Fatal("defended cell never shed at admission (429 layer not exercised)")
	}
	if def.BreakerShed == 0 {
		t.Fatal("defended cell never tripped a breaker (503 layer not exercised)")
	}
	if def.Refused == 0 {
		t.Fatal("defended cell never refused at accept (tight policy not exercised)")
	}
	if def.HogCPUPct >= und.HogCPUPct {
		t.Fatalf("hog CPU share not reduced: %.1f%% defended vs %.1f%% undefended", def.HogCPUPct, und.HogCPUPct)
	}
	// Handler panics are recovered in both cells — the middleware owns
	// recovery whether or not the closed loop is attached.
	if und.Panics == 0 {
		t.Fatal("no injected panic reached a client as a 500")
	}
}

// TestLiveChaosQuickNoGate: without Invariants the experiment runs the
// cells once and reports, never erroring on a healthy run.
func TestLiveChaosQuickNoGate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: boots two real servers")
	}
	res, err := LiveChaos(liveChaosTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("determinism flag set without the invariant double run")
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
