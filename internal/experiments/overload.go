package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// OverloadRates is the offered-load axis of the overload-stability
// extension experiment, in requests/second.
var OverloadRates = []float64{1000, 2000, 3000, 4000, 6000, 8000, 10000}

// Overload is an extension experiment beyond the paper's figures: served
// throughput as a function of *offered* open-loop load under the three
// kernels. It reproduces the §3.2 background claims the paper builds on:
// the interrupt-driven baseline suffers receive livelock under overload
// (throughput collapses past saturation, [30]), while LRP and RC shed
// excess load at early demultiplexing and hold peak throughput ([15]).
func Overload(opt Options) []*metrics.Series {
	opt = opt.withDefaults(2*sim.Second, 5*sim.Second)
	modes := []kernel.Mode{kernel.ModeUnmodified, kernel.ModeLRP, kernel.ModeRC}
	np := len(OverloadRates)
	vals := runPoints(opt.Parallel, len(modes)*np, func(i int) float64 {
		return overloadPoint(modes[i/np], sim.Rate(OverloadRates[i%np]), opt)
	})
	var out []*metrics.Series
	for mi, mode := range modes {
		s := &metrics.Series{Name: mode.String() + " System"}
		for pi, rate := range OverloadRates {
			s.Append(rate, vals[mi*np+pi])
		}
		out = append(out, s)
	}
	return out
}

func overloadPoint(mode kernel.Mode, offered sim.Rate, opt Options) float64 {
	e := newEnv(mode, opt)
	_, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.SelectAPI,
		PerConnContainers: mode == kernel.ModeRC,
	})
	if err != nil {
		panic(err)
	}
	// Spread the offered load over 8 source hosts so no single client's
	// outstanding cap distorts the arrival process.
	perClient := sim.Rate(float64(offered) / 8)
	var clients []*workload.OpenLoopClient
	for i := 0; i < 8; i++ {
		clients = append(clients, workload.StartOpenLoop(workload.OpenLoopConfig{
			Kernel:         e.k,
			Src:            netsim.Addr{IP: ClientNet + netsim.IP(1+i), Port: 1024},
			Dst:            ServerAddr,
			Rate:           perClient,
			MaxOutstanding: 1 << 20, // effectively uncapped: offered rate is the law
			Timeout:        sim.Second,
		}))
	}
	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	for _, c := range clients {
		c.ResetStats()
	}
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	var total float64
	for _, c := range clients {
		total += c.Completions.Rate(e.eng.Now())
	}
	return total
}
