package experiments

import (
	"sync"
	"sync/atomic"
)

// runPoints evaluates n independent data points, fanning them across up
// to parallel worker goroutines, and returns the results in point order.
//
// This is the one concurrent component of the experiment harness, and it
// is safe only because of a structural property every caller must keep:
// fn(i) builds its own sim.Engine and kernel from the point's parameters
// and shares no mutable state with any other point. Workers pull point
// indices from an atomic counter (so slow points do not convoy behind a
// static partition) and write each result to its own slot, which makes
// the output independent of execution interleaving: runPoints(1, ...)
// and runPoints(8, ...) return identical slices.
func runPoints[T any](parallel, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	workers := parallel
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runPointsErr is runPoints for point functions that can fail. All points
// run to completion; the error returned is the failing point with the
// lowest index, so the reported failure is deterministic even when
// several points fail in the same sweep.
func runPointsErr[T any](parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	type res struct {
		v   T
		err error
	}
	rs := runPoints(parallel, n, func(i int) res {
		v, err := fn(i)
		return res{v: v, err: err}
	})
	out := make([]T, n)
	for i, r := range rs {
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.v
	}
	return out, nil
}
