package experiments

import (
	"testing"

	"rescon/internal/kernel"
	"rescon/internal/sim"
)

// TestRebalanceGates runs the full ablation with the -check gates at CI
// windows: byte-identical double run, adaptive goodput strictly above
// the static split in every (shift, mode), the damped arm never
// disarming under organic load shifts, and the no-damping arm tripping
// the oscillation detector exactly once. The starvation-floor,
// conservation and restore audits run inside every cell.
func TestRebalanceGates(t *testing.T) {
	res, err := Rebalance(Options{Warmup: sim.Second, Window: 2 * sim.Second, Invariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("determinism gate did not run")
	}
	if n := len(res.Cells); n != 18 {
		t.Fatalf("got %d cells, want 18 (2 shifts × 3 modes × 3 policies)", n)
	}
	for _, c := range res.Cells {
		switch c.Policy {
		case PolicyStatic:
			if c.Steps != 0 || c.Journal != 0 {
				t.Errorf("%s/%s static cell has controller state: %+v", c.Shift, c.Mode, c)
			}
		default:
			if c.Journal == 0 {
				t.Errorf("%s/%s/%s: no decision journal digest", c.Shift, c.Mode, c.Policy)
			}
		}
	}
}

// TestRebalanceDisarmRestoresExactly pins the graceful-degradation
// claim on a single cell: the no-damping arm must end disarmed with the
// static split restored verbatim, which the in-cell AuditRestore checks
// before rebalancePoint returns — so a non-error cell with Disarms == 1
// is the proof.
func TestRebalanceDisarmRestoresExactly(t *testing.T) {
	opt := (Options{Warmup: sim.Second, Window: 2 * sim.Second}).withDefaults(sim.Second, 2*sim.Second)
	cell, err := rebalancePoint("flash", kernel.ModeRC, PolicyNoDamp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Disarms != 1 {
		t.Fatalf("no-damping arm disarmed %d time(s), want 1: %+v", cell.Disarms, cell)
	}
}
