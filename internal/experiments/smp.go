package experiments

import (
	"fmt"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// SMPCounts is the processor-count axis of the SMP extension experiment.
var SMPCounts = []int{1, 2, 4}

// SMP is an extension experiment for the paper's §2 observation that
// "event-driven servers designed for multiprocessors use one thread per
// processor": throughput of dynamic (in-process module) requests under
// the single-threaded event-driven server vs. the multi-threaded server
// as processors are added. The event-driven server is pinned to its one
// thread; the thread pool scales.
func SMP(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	t := metrics.NewTable("Extension: server architectures on a multiprocessor (module requests/s)",
		"CPUs", "Event-driven (1 thread)", "Multi-threaded (pool of 8)")
	for _, n := range SMPCounts {
		ev := smpPoint(n, false, opt)
		mt := smpPoint(n, true, opt)
		t.AddRow(fmt.Sprintf("%d", n), ev, mt)
	}
	return t
}

func smpPoint(ncpus int, multithreaded bool, opt Options) float64 {
	eng := sim.NewEngine(opt.Seed)
	k := kernel.NewSMP(eng, kernel.ModeRC, kernel.DefaultCosts(), ncpus)
	e := &env{eng: eng, k: k}
	cfg := httpsim.Config{
		Kernel: k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
		PerConnContainers: true,
	}
	var err error
	if multithreaded {
		_, err = httpsim.NewMTServer(cfg, 8)
	} else {
		_, err = httpsim.NewServer(cfg)
	}
	if err != nil {
		panic(err)
	}
	// CPU-heavy dynamic requests (1 ms modules) keep the pool busy.
	pop := workload.MustStartPopulation(32, workload.ClientConfig{
		Kernel: k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    ServerAddr,
		Kind:   httpsim.Module,
		CGICPU: sim.Millisecond,
	})
	return e.measureRate(pop, opt.Warmup, opt.Window)
}
