package experiments

import (
	"math"
	"strings"
	"testing"

	"rescon/internal/metrics"
	"rescon/internal/sim"
)

// quick keeps test runtime reasonable; the rcbench binary uses the full
// windows. The shape assertions below are the per-figure success criteria
// from DESIGN.md §4.
// quick keeps test runs short; Invariants turns the runtime checker on
// for every experiment exercised by the suite, so a conservation or
// queue-bound break fails the tests even when no assertion looks for it.
var quick = Options{Seed: 1999, Warmup: sim.Second, Window: 2 * sim.Second, Invariants: true}

func yAt(t *testing.T, s *metrics.Series, x float64) float64 {
	t.Helper()
	y, ok := s.YAt(x)
	if !ok {
		t.Fatalf("series %q has no point at x=%v", s.Name, x)
	}
	return y
}

func TestTable1PrimitivesAreCheap(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("Table 1 rows: %d, want 7", len(tab.Rows))
	}
	// The paper's claim: every primitive costs much less than one HTTP
	// transaction. Our simulated transaction is 338 µs; require every
	// primitive to be under 10 µs even on slow CI hardware.
	out := tab.String()
	for _, row := range tab.Rows {
		var ns float64
		if _, err := fmtSscan(row[1], &ns); err != nil {
			t.Fatalf("unparseable cost %q", row[1])
		}
		if ns <= 0 || ns > 10_000 {
			t.Fatalf("primitive %q costs %v ns, want (0, 10µs):\n%s", row[0], ns, out)
		}
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

func TestBaselineCalibration(t *testing.T) {
	tab := Baseline(quick)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	var connRate, persRate float64
	mustParse(t, tab.Rows[0][1], &connRate)
	mustParse(t, tab.Rows[1][1], &persRate)
	if math.Abs(connRate-2954)/2954 > 0.08 {
		t.Fatalf("conn/request rate %.0f, want ~2954", connRate)
	}
	if math.Abs(persRate-9487)/9487 > 0.08 {
		t.Fatalf("persistent rate %.0f, want ~9487", persRate)
	}
}

func TestOverheadEffectivelyUnchanged(t *testing.T) {
	tab := Overhead(quick)
	var without, with float64
	mustParse(t, tab.Rows[0][1], &without)
	mustParse(t, tab.Rows[1][1], &with)
	if with < without*0.95 {
		t.Fatalf("§5.4 overhead too high: %.0f vs %.0f", with, without)
	}
}

func TestFig11Shape(t *testing.T) {
	series := Fig11(quick)
	if len(series) != 3 {
		t.Fatalf("series %d", len(series))
	}
	base, sel, ev := series[0], series[1], series[2]

	// Baseline explodes at saturation: T_high at 35 clients is many times
	// the unloaded value and in the multi-millisecond range.
	b0, b35 := yAt(t, base, 0), yAt(t, base, 35)
	if b35 < 4 || b35 < 6*b0 {
		t.Fatalf("baseline should blow up: %v ms -> %v ms", b0, b35)
	}
	// Containers/select: much less than baseline.
	s35 := yAt(t, sel, 35)
	if s35 > b35/3 {
		t.Fatalf("containers/select %v ms not well below baseline %v ms", s35, b35)
	}
	// Event API: nearly flat and below ~1.5 ms throughout.
	e0, e35 := yAt(t, ev, 0), yAt(t, ev, 35)
	if e35 > 1.5 || e35 > 2.5*e0 {
		t.Fatalf("event API should stay nearly flat: %v ms -> %v ms", e0, e35)
	}
	// select() costs keep the select curve above the event API curve.
	if s35 <= e35 {
		t.Fatalf("select (%v ms) should cost more than event API (%v ms)", s35, e35)
	}
}

func TestFig12And13Shape(t *testing.T) {
	res := Fig12(quick)
	if len(res.Throughput) != 4 || len(res.CGIShare) != 4 {
		t.Fatal("want four systems")
	}
	unmod, lrp, rc1, rc2 := res.Throughput[0], res.Throughput[1], res.Throughput[2], res.Throughput[3]

	u0, u4 := yAt(t, unmod, 0), yAt(t, unmod, 4)
	if u4 > u0/2 {
		t.Fatalf("unmodified throughput should collapse: %v -> %v", u0, u4)
	}
	// LRP charges network processing to the server, further reducing its
	// static throughput (§5.6).
	if l4 := yAt(t, lrp, 4); l4 > u4*1.05 {
		t.Fatalf("LRP at 4 CGI (%v) should be at or below unmodified (%v)", l4, u4)
	}
	// The RC sandboxes hold throughput nearly constant at ~(1-cap).
	r1_0, r1_4 := yAt(t, rc1, 0), yAt(t, rc1, 4)
	if math.Abs(r1_4-r1_0*0.70)/(r1_0*0.70) > 0.12 {
		t.Fatalf("RC-30%% at 4 CGI: %v, want ~0.70 of %v", r1_4, r1_0)
	}
	r2_4 := yAt(t, rc2, 4)
	if math.Abs(r2_4-r1_0*0.90)/(r1_0*0.90) > 0.12 {
		t.Fatalf("RC-10%% at 4 CGI: %v, want ~0.90 of %v", r2_4, r1_0)
	}
	// RC curves flat in n: 1 vs 5 CGI within 10%.
	r1_1, r1_5 := yAt(t, rc1, 1), yAt(t, rc1, 5)
	if math.Abs(r1_5-r1_1)/r1_1 > 0.10 {
		t.Fatalf("RC-30%% not flat: %v at 1 CGI vs %v at 5", r1_1, r1_5)
	}

	// Fig. 13: caps enforced almost exactly (§5.6).
	s1 := yAt(t, res.CGIShare[2], 4)
	if math.Abs(s1-30) > 1.5 {
		t.Fatalf("RC-30%% CGI share %v%%, want ~30%%", s1)
	}
	s2 := yAt(t, res.CGIShare[3], 4)
	if math.Abs(s2-10) > 1.0 {
		t.Fatalf("RC-10%% CGI share %v%%, want ~10%%", s2)
	}
	// LRP gives CGI its full fair share ≈ n/(n+1); unmodified slightly
	// less (misaccounting inflates CGI's apparent usage, §5.6).
	lu, ll := yAt(t, res.CGIShare[0], 4), yAt(t, res.CGIShare[1], 4)
	if ll < 70 || ll > 90 {
		t.Fatalf("LRP CGI share %v%%, want ~80%%", ll)
	}
	if lu >= ll {
		t.Fatalf("unmodified CGI share (%v%%) should trail LRP (%v%%)", lu, ll)
	}
}

func TestFig14Shape(t *testing.T) {
	series := Fig14(quick)
	unmod, rc := series[0], series[1]
	u0 := yAt(t, unmod, 0)
	if u0 < 2500 {
		t.Fatalf("unmodified peak %v", u0)
	}
	// "Effectively zero at about 10,000 SYNs/sec."
	if u10 := yAt(t, unmod, 10); u10 > u0*0.05 {
		t.Fatalf("unmodified at 10k SYN/s: %v, want ~0", u10)
	}
	// "Even at 70,000 SYNs/sec, useful throughput remains at about 73%."
	r0, r70 := yAt(t, rc, 0), yAt(t, rc, 70)
	if r70 < r0*0.60 || r70 > r0*0.85 {
		t.Fatalf("RC at 70k SYN/s: %v of peak %v, want ~73%%", r70, r0)
	}
}

func TestVServersIsolation(t *testing.T) {
	tab, err := VServers(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		var alloc, used float64
		mustParse(t, row[1], &alloc)
		mustParse(t, row[2], &used)
		if math.Abs(used-alloc) > 2.5 {
			t.Fatalf("guest %d: consumed %.1f%%, allocated %.1f%%", i+1, used, alloc)
		}
	}
}

func TestAblateFilterPriorityShape(t *testing.T) {
	tab := AblateFilterPriority(quick)
	var weak, strong float64
	mustParse(t, tab.Rows[0][1], &weak)
	mustParse(t, tab.Rows[1][1], &strong)
	// With per-container weighted-fair protocol service, the filter alone
	// blunts the attack but still forfeits a large fraction of capacity;
	// only the priority-0 container restores near-full throughput.
	if weak > strong*0.65 {
		t.Fatalf("filter alone (%v) should clearly trail the full defense (%v)", weak, strong)
	}
}

func TestAblatePruningShape(t *testing.T) {
	tab := AblatePruning(quick)
	var exact, pruned, unpruned float64
	mustParse(t, tab.Rows[0][1], &exact)
	mustParse(t, tab.Rows[1][1], &pruned)
	mustParse(t, tab.Rows[2][1], &unpruned)
	if unpruned > pruned*0.95 {
		t.Fatalf("disabling pruning should cost throughput: %v vs %v", unpruned, pruned)
	}
	if exact < pruned*0.95 {
		t.Fatalf("exact pending-set binding (%v) should be at least as good as implicit (%v)", exact, pruned)
	}
}

func TestFig14WithLRPHasThreeCurves(t *testing.T) {
	// Single cheap point: LRP cannot defend (§6: "LRP, in contrast to our
	// system, cannot protect against such SYN floods").
	series := fig14Run([]fig14System{
		{name: "LRP System", mode: 1},
		{name: "With Resource Containers", mode: 2, defend: true},
	}, []float64{50_000}, quick)
	lrp := yAt(t, series[0], 50)
	rc := yAt(t, series[1], 50)
	if lrp > rc/3 {
		t.Fatalf("LRP (%v) should collapse under flood vs RC (%v)", lrp, rc)
	}
}

func TestRenderFig12Output(t *testing.T) {
	// The series render with all four system names.
	res := Fig12(Options{Seed: 1, Warmup: 200 * sim.Millisecond, Window: 500 * sim.Millisecond})
	var sb strings.Builder
	metrics.RenderSeries(&sb, "Fig 12", "n", res.Throughput...)
	out := sb.String()
	for _, name := range []string{"Unmodified System", "LRP System", "RC System 1", "RC System 2"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %q in rendered output", name)
		}
	}
}

func TestOverloadStability(t *testing.T) {
	// Extension experiment: the unmodified kernel livelocks past
	// saturation while LRP and RC shed load early and hold peak
	// throughput (§3.2, [15], [30]).
	series := Overload(quick)
	if len(series) != 3 {
		t.Fatalf("series %d", len(series))
	}
	unmod, lrp, rcs := series[0], series[1], series[2]
	peak := yAt(t, unmod, 3000)
	if peak < 2500 {
		t.Fatalf("unmodified peak %v", peak)
	}
	if u10 := yAt(t, unmod, 10000); u10 > peak*0.10 {
		t.Fatalf("unmodified should livelock at 10k offered: %v", u10)
	}
	for _, s := range []*metrics.Series{lrp, rcs} {
		v := yAt(t, s, 10000)
		if v < peak*0.90 {
			t.Fatalf("%s should hold peak under overload: %v vs peak %v", s.Name, v, peak)
		}
	}
}

func TestDiskBoundShape(t *testing.T) {
	// Extension experiment: with uncached documents, the priority-ordered
	// disk queue keeps the premium client's response time near one disk
	// access, while the FIFO disk queues it behind every low-priority
	// read (§4.4).
	series := DiskBound(quick)
	fifo, prio := series[0], series[1]
	f16 := yAt(t, fifo, 16)
	p16 := yAt(t, prio, 16)
	if f16 < 60 {
		t.Fatalf("FIFO disk Thigh at 16 clients: %v ms, want large", f16)
	}
	if p16 > 20 {
		t.Fatalf("priority disk Thigh at 16 clients: %v ms, want ~one disk access", p16)
	}
	p0 := yAt(t, prio, 0)
	if p16 > p0*2.5 {
		t.Fatalf("priority disk should stay nearly flat: %v -> %v", p0, p16)
	}
}

func TestSMPScalingShape(t *testing.T) {
	// Extension experiment: the multi-threaded server exploits added
	// processors; the single-threaded event-driven server cannot (§2).
	tab := SMP(quick)
	var ev1, ev4, mt1, mt2 float64
	mustParse(t, tab.Rows[0][1], &ev1)
	mustParse(t, tab.Rows[2][1], &ev4)
	mustParse(t, tab.Rows[0][2], &mt1)
	mustParse(t, tab.Rows[1][2], &mt2)
	if ev4 > ev1*1.5 {
		t.Fatalf("event-driven server should not scale: %v -> %v", ev1, ev4)
	}
	if mt2 < mt1*1.6 {
		t.Fatalf("MT server should scale with a second CPU: %v -> %v", mt1, mt2)
	}
	// On one CPU both architectures are CPU-bound on the same work.
	if mt1 < ev1*0.7 || mt1 > ev1*1.4 {
		t.Fatalf("single-CPU throughput should be comparable: mt=%v ev=%v", mt1, ev1)
	}
}

func TestCacheWarShape(t *testing.T) {
	// Extension experiment: a container memory quota turns the shared
	// buffer cache into per-guest cache isolation (§4.4).
	tab := CacheWar(quick)
	var hitNo, latNo, hitQ, latQ, aNo, aQ float64
	mustParse(t, tab.Rows[0][1], &hitNo)
	mustParse(t, tab.Rows[0][3], &latNo)
	mustParse(t, tab.Rows[1][1], &hitQ)
	mustParse(t, tab.Rows[1][3], &latQ)
	mustParse(t, tab.Rows[0][4], &aNo)
	mustParse(t, tab.Rows[1][4], &aQ)
	if hitNo > 30 {
		t.Fatalf("without isolation the scan should pollute B's cache: hit rate %v%%", hitNo)
	}
	if hitQ < 90 {
		t.Fatalf("with the quota B should stay cache-resident: hit rate %v%%", hitQ)
	}
	if latQ > latNo/10 {
		t.Fatalf("quota should collapse B's latency: %v vs %v ms", latQ, latNo)
	}
	if aQ < aNo*0.8 {
		t.Fatalf("the quota should not meaningfully hurt A: %v vs %v req/s", aQ, aNo)
	}
}

func TestApacheNiceShape(t *testing.T) {
	// §6: mapping QoS onto process priorities expresses the policy but
	// cannot protect the premium client under saturation, because kernel
	// processing and the accept path stay uncontrolled.
	series := Apache(quick)
	apache, rcs := series[0], series[1]
	a35 := yAt(t, apache, 35)
	r35 := yAt(t, rcs, 35)
	if a35 < 3 {
		t.Fatalf("Apache+nice should degrade at saturation: %v ms", a35)
	}
	if r35 > a35/3 {
		t.Fatalf("containers (%v ms) should beat nice-based QoS (%v ms) decisively", r35, a35)
	}
	// At light load nice is fine — the mechanisms only diverge under load.
	a0 := yAt(t, apache, 0)
	if a0 > 1 {
		t.Fatalf("Apache unloaded latency %v ms", a0)
	}
}

func TestTailLatencyShape(t *testing.T) {
	// Containers remove the premium client's latency tail, not just the
	// mean: p99 drops by an order of magnitude at full load.
	tab := TailLatency(quick)
	var basep99, evp99 float64
	mustParse(t, tab.Rows[0][3], &basep99)
	mustParse(t, tab.Rows[2][3], &evp99)
	if basep99 < 4 {
		t.Fatalf("baseline p99 %v ms, expected a heavy tail", basep99)
	}
	if evp99 > basep99/4 {
		t.Fatalf("containers should collapse the tail: p99 %v vs baseline %v", evp99, basep99)
	}
}
