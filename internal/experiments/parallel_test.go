package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunPointsOrderAndCoverage(t *testing.T) {
	for _, par := range []int{1, 2, 4, 17} {
		var calls atomic.Int64
		got := runPoints(par, 10, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if calls.Load() != 10 {
			t.Fatalf("par=%d: fn called %d times, want 10", par, calls.Load())
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestRunPointsZeroPoints(t *testing.T) {
	got := runPoints(4, 0, func(i int) int { panic("must not be called") })
	if len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestRunPointsErrReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := runPointsErr(4, 8, func(i int) (int, error) {
		switch i {
		case 2:
			return 0, errLow
		case 6:
			return 0, errHigh
		}
		return i, nil
	})
	if err != errLow {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
	out, err := runPointsErr(4, 8, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
