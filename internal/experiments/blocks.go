package experiments

import (
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// This file exports the building blocks shared between the experiment
// drivers and external harnesses (the chaos harness in internal/chaos):
// the canonical resilient client configuration and the addressing
// helpers used to lay out multi-tenant client populations.

// ResilientClientConfig is the canonical overload-tolerant client
// configuration of the resilience experiments: short connect/request
// timeouts (so a shed packet costs a fraction of a second, not the BSD
// 3 s) and jittered exponential backoff (so a retrying population does
// not synchronize into bursts). Callers fill in request-mix fields
// (Kind, CGICPU, Uncached, Think) as needed.
func ResilientClientConfig(k *kernel.Kernel, src netsim.Addr) workload.ClientConfig {
	return workload.ClientConfig{
		Kernel:         k,
		Src:            src,
		Dst:            ServerAddr,
		ConnectTimeout: 250 * sim.Millisecond,
		RequestTimeout: 500 * sim.Millisecond,
		BackoffBase:    50 * sim.Millisecond,
		BackoffMax:     800 * sim.Millisecond,
	}
}

// ClientAddr returns the source endpoint for the i-th client network:
// each population gets a disjoint /16-ish slice of ClientNet so filtered
// listeners and per-source accounting can tell them apart.
func ClientAddr(i int) netsim.Addr {
	return netsim.Addr{IP: ClientNet + netsim.IP(i)<<8 + 1, Port: 1024}
}
