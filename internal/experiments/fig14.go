package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// Fig14Rates is the x axis of Fig. 14: SYN-flood rate in SYNs/second.
var Fig14Rates = []float64{0, 2_000, 4_000, 6_000, 8_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000}

// fig14System describes one curve of Fig. 14 (plus the LRP ablation).
type fig14System struct {
	name string
	mode kernel.Mode
	// defend installs the §5.7 defense: a filtered listen socket for the
	// attack prefix bound to a priority-0 container.
	defend bool
	// defensePriority lets the ablation driver weaken the defense (a
	// filter whose container has normal priority).
	defensePriority int
}

// Fig14 reproduces §5.7: server throughput for well-behaved clients as a
// function of the rate of bogus SYNs aimed at the HTTP port, with and
// without resource containers.
func Fig14(opt Options) []*metrics.Series {
	systems := []fig14System{
		{name: "Unmodified System", mode: kernel.ModeUnmodified},
		{name: "With Resource Containers", mode: kernel.ModeRC, defend: true},
	}
	return fig14Run(systems, Fig14Rates, opt)
}

// Fig14WithLRP adds the LRP curve the paper argues about in prose ("LRP,
// in contrast to our system, cannot protect against such SYN floods").
func Fig14WithLRP(opt Options) []*metrics.Series {
	systems := []fig14System{
		{name: "Unmodified System", mode: kernel.ModeUnmodified},
		{name: "LRP System", mode: kernel.ModeLRP},
		{name: "With Resource Containers", mode: kernel.ModeRC, defend: true},
	}
	return fig14Run(systems, Fig14Rates, opt)
}

func fig14Run(systems []fig14System, rates []float64, opt Options) []*metrics.Series {
	opt = opt.withDefaults(2*sim.Second, 5*sim.Second)
	np := len(rates)
	vals := runPoints(opt.Parallel, len(systems)*np, func(i int) float64 {
		return fig14Point(systems[i/np], sim.Rate(rates[i%np]), opt)
	})
	var out []*metrics.Series
	for si, sys := range systems {
		s := &metrics.Series{Name: sys.name}
		for pi, r := range rates {
			s.Append(r/1000, vals[si*np+pi])
		}
		out = append(out, s)
	}
	return out
}

// fig14Point returns good-client throughput (req/s) under a SYN flood of
// the given rate.
func fig14Point(sys fig14System, rate sim.Rate, opt Options) float64 {
	e := newEnv(sys.mode, opt)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
		PerConnContainers: sys.mode == kernel.ModeRC,
	})
	if err != nil {
		panic(err)
	}
	if sys.defend {
		// §5.7/§4.8: isolate the misbehaving clients on a filtered listen
		// socket bound to a container with numeric priority zero, so
		// their connection-request processing happens only when the CPU
		// would otherwise be idle.
		prio := sys.defensePriority // zero unless the ablation raises it
		floodCont := rc.MustNew(nil, rc.TimeShare, "attackers",
			rc.Attributes{Priority: prio})
		if _, err := srv.AddListener(netsim.Filter{Template: AttackNet, MaskBits: 8}, floodCont); err != nil {
			panic(err)
		}
	}

	good := workload.MustStartPopulation(32, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    ServerAddr,
	})
	if rate > 0 {
		workload.StartFlood(e.k, rate, AttackNet+1, 4096, ServerAddr)
	}
	return e.measureRate(good, opt.Warmup, opt.Window)
}
