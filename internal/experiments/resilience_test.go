package experiments

import (
	"strconv"
	"testing"

	"rescon/internal/fault"
)

// TestResiliencePolicingBeatsUnpolicedUnderLoss is the headline acceptance
// criterion: with the server oversubscribed by a SYN flood, per-container
// backlog policing must deliver measurably higher goodput than FIFO drops
// at 10% and 20% wire packet loss.
func TestResiliencePolicingBeatsUnpolicedUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep is slow")
	}
	for _, tc := range []struct {
		loss   float64
		margin float64
	}{
		{0.10, 1.15},
		{0.20, 1.05},
	} {
		policed, err := resiliencePoint(quick, tc.loss, true)
		if err != nil {
			t.Fatal(err)
		}
		unpoliced, err := resiliencePoint(quick, tc.loss, false)
		if err != nil {
			t.Fatal(err)
		}
		if policed < unpoliced*tc.margin {
			t.Errorf("loss %.0f%%: policed %.1f req/s vs unpoliced %.1f, want ≥ %.2f× advantage",
				tc.loss*100, policed, unpoliced, tc.margin)
		}
	}
}

func TestResilienceCurvesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep is slow")
	}
	series, err := ResilienceCurves(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Name != "RC policed" || series[1].Name != "RC unpoliced" {
		t.Fatalf("unexpected series: %v", series)
	}
	for _, s := range series {
		if len(s.Points) != len(ResilienceLossPoints) {
			t.Fatalf("%s has %d points, want %d", s.Name, len(s.Points), len(ResilienceLossPoints))
		}
		// Degradation curve: goodput at the highest loss must be below
		// the lossless point, and everything must stay positive
		// (degraded, not dead).
		first := s.Points[0].Y
		last := s.Points[len(s.Points)-1].Y
		if last <= 0 || first <= 0 {
			t.Fatalf("%s has non-positive goodput: first=%.1f last=%.1f", s.Name, first, last)
		}
		if last >= first {
			t.Fatalf("%s does not degrade with loss: first=%.1f last=%.1f", s.Name, first, last)
		}
	}
}

// TestFaultScenarioDeterminism re-runs one injected-fault scenario and
// requires every output column — including the fault-count detail string —
// to match exactly.
func TestFaultScenarioDeterminism(t *testing.T) {
	cfg := fault.Config{DropRate: 0.10, DupRate: 0.05, ReorderRate: 0.05, DelayRate: 0.10}
	a, err := faultScenario(quick, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faultScenario(quick, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	if a.detail == (fault.Stats{}).String() {
		t.Fatalf("no faults recorded in detail: %q", a.detail)
	}
}

func TestCrashScenarioDeterminism(t *testing.T) {
	a, err := crashScenario(quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := crashScenario(quick)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	if a.detail == "crashes=0 restarts=0" {
		t.Fatal("no crashes landed inside the run")
	}
	if a.goodput <= 0 {
		t.Fatal("crash-restart run completed nothing")
	}
}

func TestFaultMatrixRows(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is slow")
	}
	tbl, err := FaultMatrix(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("fault matrix has %d rows, want 5", len(tbl.Rows))
	}
	baseline, err := strconv.ParseFloat(tbl.Rows[0][1], 64)
	if err != nil || baseline <= 0 {
		t.Fatalf("bad baseline goodput cell: %q", tbl.Rows[0][1])
	}
	for _, row := range tbl.Rows[1:] {
		g, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad goodput cell in %v: %v", row[0], err)
		}
		if g <= 0 {
			t.Fatalf("scenario %v died completely (goodput %v) — degraded, not dead, is the goal", row[0], g)
		}
		if g >= baseline {
			t.Fatalf("scenario %v (%.1f req/s) not degraded vs baseline %.1f", row[0], g, baseline)
		}
	}
}
