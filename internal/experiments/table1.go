package experiments

import (
	"time"

	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Table1 measures the real cost of this implementation's resource
// container primitives — the analogue of the paper's Table 1, which
// timed 10,000 warm-cache invocations of each new system call on a
// 500 MHz Alpha. Absolute numbers differ (different hardware, user-space
// Go vs. kernel C); the paper's claim to verify is that every primitive
// costs far less than one HTTP transaction (338 µs there; the simulated
// per-request budget here).
func Table1() (*metrics.Table, error) {
	const iters = 100_000

	eng := sim.NewEngine(1)
	k := kernel.New(eng, kernel.ModeRC, kernel.DefaultCosts())
	p := k.NewProcess("bench")
	p2 := k.NewProcess("bench2")
	th := p.NewThread("t")

	attrs := rc.Attributes{Priority: kernel.DefaultPriority}

	// create resource container
	descs := make([]rc.Desc, iters)
	start := time.Now()
	for i := 0; i < iters; i++ {
		d, err := p.CreateContainer(kernel.NoParent, rc.TimeShare, "c", attrs)
		if err != nil {
			return nil, err
		}
		descs[i] = d
	}
	createNs := perOp(start, iters)

	// change thread's resource binding (alternate between two containers)
	a, b := descs[0], descs[1]
	start = time.Now()
	for i := 0; i < iters; i++ {
		d := a
		if i&1 == 1 {
			d = b
		}
		if err := p.BindThread(th, d); err != nil {
			return nil, err
		}
	}
	rebindNs := perOp(start, iters)

	// obtain container resource usage
	var u rc.Usage
	start = time.Now()
	for i := 0; i < iters; i++ {
		var err error
		u, err = p.ContainerUsage(a)
		if err != nil {
			return nil, err
		}
	}
	usageNs := perOp(start, iters)
	_ = u

	// set/get container attributes
	start = time.Now()
	for i := 0; i < iters; i++ {
		got, err := p.ContainerAttrs(a)
		if err != nil {
			return nil, err
		}
		if err := p.SetContainerAttrs(a, got); err != nil {
			return nil, err
		}
	}
	attrNs := perOp(start, iters) / 2 // two ops per iteration

	// move container between processes
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := p.MoveContainer(a, p2); err != nil {
			return nil, err
		}
	}
	moveNs := perOp(start, iters)

	// obtain handle for existing container
	cont, err := p.Lookup(a)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := p.ContainerHandle(cont); err != nil {
			return nil, err
		}
	}
	handleNs := perOp(start, iters)

	// destroy resource container (skip the two still bound to the thread)
	start = time.Now()
	for i := 2; i < iters; i++ {
		if err := p.ReleaseContainer(descs[i]); err != nil {
			return nil, err
		}
	}
	destroyNs := perOp(start, iters-2)

	t := metrics.NewTable(
		"Table 1: cost of resource container primitives (this implementation)",
		"Operation", "Cost (ns/op)", "Paper (µs, Alpha 21164)")
	t.AddRow("create resource container", createNs, 2.36)
	t.AddRow("destroy resource container", destroyNs, 2.10)
	t.AddRow("change thread's resource binding", rebindNs, 1.04)
	t.AddRow("obtain container resource usage", usageNs, 2.04)
	t.AddRow("set/get container attributes", attrNs, 2.10)
	t.AddRow("move container between processes", moveNs, 3.15)
	t.AddRow("obtain handle for existing container", handleNs, 1.90)
	return t, nil
}

func perOp(start time.Time, n int) float64 {
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}
