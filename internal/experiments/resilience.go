package experiments

import (
	"fmt"

	"rescon/internal/fault"
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// ResilienceLossPoints is the x axis of the degradation curves: the wire
// packet-loss probability in percent, applied to every legitimate
// client's packets while a SYN flood runs in the background.
var ResilienceLossPoints = []float64{0, 5, 10, 20, 30}

// resilienceClientCount keeps the server oversubscribed across the whole
// loss sweep: at 30% loss each stalling client offers only a few
// requests/second, so it takes hundreds of them to hold offered load
// above server capacity — the regime where admission control matters.
const resilienceClientCount = 384

// ResilienceFloodRate is the background SYN-flood intensity of the
// degradation curves: enough protocol work (~107 µs/SYN) to oversubscribe
// the CPU together with the legitimate load.
const ResilienceFloodRate = sim.Rate(6000)

// resilienceClients returns the legitimate closed-loop population for
// the resilience experiments, using the canonical overload-tolerant
// configuration (see ResilientClientConfig).
func resilienceClients(e *env, n int) *workload.Population {
	return workload.MustStartPopulation(n, ResilientClientConfig(e.k, netsim.Addr{IP: ClientNet + 1, Port: 1024}))
}

// ResilienceCurves produces the degradation curves of the resilience
// experiment family: goodput of well-behaved clients versus wire packet
// loss, while a SYN flood oversubscribes the server, with and without
// per-container backlog policing (admission control). The policed server
// sheds new connection requests at demultiplexing — for the cost of the
// packet filter — once the destination container's protocol backlog
// passes a small threshold, so in-progress work keeps flowing; the
// unpoliced server lets the backlog grow to its hard bound, where drops
// land indiscriminately on new and in-progress packets alike.
func ResilienceCurves(opt Options) ([]*metrics.Series, error) {
	opt = opt.withDefaults(2*sim.Second, 5*sim.Second)
	policed := &metrics.Series{Name: "RC policed"}
	unpoliced := &metrics.Series{Name: "RC unpoliced"}
	vals, err := runPointsErr(opt.Parallel, 2*len(ResilienceLossPoints), func(i int) (float64, error) {
		return resiliencePoint(opt, ResilienceLossPoints[i/2]/100, i%2 == 0)
	})
	if err != nil {
		return nil, err
	}
	for pi, loss := range ResilienceLossPoints {
		policed.Append(loss, vals[2*pi])
		unpoliced.Append(loss, vals[2*pi+1])
	}
	return []*metrics.Series{policed, unpoliced}, nil
}

// resiliencePoint measures goodput (completed requests/s) for one
// (loss, policing) configuration.
func resiliencePoint(opt Options, loss float64, policed bool) (float64, error) {
	e := newEnv(kernel.ModeRC, opt)
	if loss > 0 {
		e.k.Faults = fault.NewInjector(e.eng, fault.Config{DropRate: loss})
	}
	e.k.Police.Enabled = policed
	if _, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
	}); err != nil {
		return 0, err
	}
	good := resilienceClients(e, resilienceClientCount)
	workload.StartFlood(e.k, ResilienceFloodRate, AttackNet+1, 4096, ServerAddr)
	return e.measureRate(good, opt.Warmup, opt.Window), nil
}

// FaultMatrix runs one scenario per fault class and tabulates how the
// resource-container server degrades: goodput, mean latency, client
// timeouts, and the injected-fault counts that produced them. All
// scenarios run in ModeRC with policing enabled — the configuration the
// degradation curves justify.
func FaultMatrix(opt Options) (*metrics.Table, error) {
	opt = opt.withDefaults(2*sim.Second, 5*sim.Second)
	t := metrics.NewTable(
		"Resilience: goodput under injected faults (RC, policed)",
		"Scenario", "Goodput (req/s)", "Mean latency (ms)", "Timeouts", "Detail")
	scenarios := []struct {
		name string
		run  func(Options) (faultRow, error)
	}{
		{"no faults", func(o Options) (faultRow, error) { return faultScenario(o, fault.Config{}, false) }},
		{"wire faults (10% loss, 5% dup, 5% reorder, 10% delay)", func(o Options) (faultRow, error) {
			return faultScenario(o, fault.Config{DropRate: 0.10, DupRate: 0.05, ReorderRate: 0.05, DelayRate: 0.10}, false)
		}},
		{"disk faults (5% error, 20% slow)", func(o Options) (faultRow, error) {
			return faultScenario(o, fault.Config{DiskErrorRate: 0.05, DiskSlowRate: 0.20}, true)
		}},
		{"slow-loris (128 held conns)", slowLorisScenario},
		{"worker crash-restart (MTBF 1s)", crashScenario},
	}
	rows, err := runPointsErr(opt.Parallel, len(scenarios), func(i int) (faultRow, error) {
		return scenarios[i].run(opt)
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		t.AddRow(sc.name, rows[i].goodput, rows[i].latencyMs, rows[i].timeouts, rows[i].detail)
	}
	return t, nil
}

type faultRow struct {
	goodput   float64
	latencyMs float64
	timeouts  uint64
	detail    string
}

// measureRow runs the warmup+window and collects the population-level
// outcome columns.
func measureRow(e *env, pop *workload.Population, opt Options) faultRow {
	goodput := e.measureRate(pop, opt.Warmup, opt.Window)
	var timeouts uint64
	for _, c := range pop.Clients {
		timeouts += c.Timeouts.Value()
	}
	return faultRow{goodput: goodput, latencyMs: pop.MeanLatencyMs(), timeouts: timeouts}
}

// faultScenario runs the standard load (no flood) under an injector
// configuration; uncached selects the disk-bound workload so disk faults
// have something to hit.
func faultScenario(opt Options, cfg fault.Config, uncached bool) (faultRow, error) {
	e := newEnv(kernel.ModeRC, opt)
	inj := fault.NewInjector(e.eng, cfg)
	e.k.Faults = inj
	e.k.Disk().Faults = inj
	e.k.Police.Enabled = true
	if _, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
	}); err != nil {
		return faultRow{}, err
	}
	pop := workload.MustStartPopulation(16, workload.ClientConfig{
		Kernel:         e.k,
		Src:            netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:            ServerAddr,
		Uncached:       uncached,
		ConnectTimeout: 250 * sim.Millisecond,
		RequestTimeout: 500 * sim.Millisecond,
		BackoffBase:    50 * sim.Millisecond,
	})
	row := measureRow(e, pop, opt)
	row.detail = inj.Stats().String()
	return row, nil
}

// slowLorisScenario holds the server under a slow-request attack.
func slowLorisScenario(opt Options) (faultRow, error) {
	e := newEnv(kernel.ModeRC, opt)
	e.k.Police.Enabled = true
	if _, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
	}); err != nil {
		return faultRow{}, err
	}
	pop := resilienceClients(e, 16)
	loris := workload.StartSlowLoris(workload.SlowLorisConfig{
		Kernel:  e.k,
		Src:     netsim.Addr{IP: AttackNet + 7, Port: 1024},
		Dst:     ServerAddr,
		Conns:   128,
		Trickle: 50 * sim.Millisecond,
		Hold:    2 * sim.Second,
	})
	row := measureRow(e, pop, opt)
	row.detail = fmt.Sprintf("held=%d trickled=%d", loris.Opened(), loris.Trickled())
	return row, nil
}

// crashScenario crash-stops the worker on a deterministic schedule and
// restarts a fresh one after each downtime; clients ride through the
// outages on their timeout/backoff machinery.
func crashScenario(opt Options) (faultRow, error) {
	e := newEnv(kernel.ModeRC, opt)
	e.k.Police.Enabled = true
	var srv *httpsim.Server
	var startErr error
	boot := func() {
		srv, startErr = httpsim.NewServer(httpsim.Config{
			Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
		})
	}
	boot()
	if startErr != nil {
		return faultRow{}, startErr
	}
	cr, err := fault.StartCrasher(e.eng, fault.CrashPlan{
		MTBF:     sim.Second,
		Downtime: 250 * sim.Millisecond,
	}, func() { srv.Shutdown() }, boot)
	if err != nil {
		return faultRow{}, err
	}
	pop := resilienceClients(e, 16)
	row := measureRow(e, pop, opt)
	if startErr != nil {
		return faultRow{}, startErr
	}
	row.detail = fmt.Sprintf("crashes=%d restarts=%d", cr.Crashes(), cr.Restarts())
	return row, nil
}
