package experiments

import (
	"testing"

	"rescon/internal/fault"
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// TestCrashAdmissionNoLeaks drives the worst interaction of the
// resilience machinery: a crash-restarting worker under sustained
// overload (SYN flood + retrying clients) with admission control on.
// It asserts the lifecycle bookkeeping the chaos harness relies on:
//
//   - the crasher never double-boots a worker (boots == restarts + 1);
//   - no connection leaks through a crash: after the final shutdown
//     every established connection has been closed exactly once;
//   - the runtime invariant checker (conn-conservation, queue bounds,
//     CPU-charge conservation) stays silent throughout — FailFast mode
//     panics the test on the first violated tick.
func TestCrashAdmissionNoLeaks(t *testing.T) {
	eng := sim.NewEngine(42)
	k := kernel.New(eng, kernel.ModeRC, kernel.DefaultCosts())
	check := fault.NewChecker(eng) // FailFast: a violation panics the test
	k.WatchInvariants(check)
	check.Start(0)
	k.Police.Enabled = true

	boots := 0
	var srv *httpsim.Server
	var bootErr error
	boot := func() {
		boots++
		srv, bootErr = httpsim.NewServer(httpsim.Config{
			Kernel: k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
			PerConnContainers: true,
		})
	}
	boot()
	if bootErr != nil {
		t.Fatal(bootErr)
	}
	cr, err := fault.StartCrasher(eng, fault.CrashPlan{
		MTBF:     400 * sim.Millisecond,
		Downtime: 100 * sim.Millisecond,
	}, func() { srv.Shutdown() }, boot)
	if err != nil {
		t.Fatal(err)
	}

	pop := workload.MustStartPopulation(32,
		ResilientClientConfig(k, netsim.Addr{IP: ClientNet + 1, Port: 1024}))
	flood := workload.StartFlood(k, 4000, AttackNet+1, 4096, ServerAddr)

	eng.RunUntil(sim.Time(0).Add(5 * sim.Second))
	if bootErr != nil {
		t.Fatalf("restart failed: %v", bootErr)
	}
	if cr.Crashes() < 2 {
		t.Fatalf("want >= 2 crashes in 5s with 400ms MTBF, got %d", cr.Crashes())
	}
	if uint64(boots) != cr.Restarts()+1 {
		t.Fatalf("double restart under overload: %d boots vs %d restarts", boots, cr.Restarts())
	}
	if pop.Completed() == 0 {
		t.Fatal("no client work completed; the scenario never exercised the server")
	}

	// Tear everything down and let in-flight work drain; every connection
	// ever established must end up closed, none leaked in a queue.
	cr.Stop()
	flood.Stop()
	pop.Stop()
	srv.Shutdown()
	eng.RunUntil(eng.Now().Add(2 * sim.Second))
	check.Check()

	if open := k.OpenConns(); open != 0 {
		t.Fatalf("%d connection(s) leaked past final shutdown", open)
	}
	if est, closed := k.ConnsEstablished(), k.ConnsClosed(); est != closed {
		t.Fatalf("connection lifecycle broken: %d established, %d closed", est, closed)
	}
	if est := k.ConnsEstablished(); est == 0 {
		t.Fatal("no connections were ever established")
	}
}
