package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// Baseline reproduces §5.3: the throughput of the event-driven server on
// the unmodified kernel for 1 KB cached documents, with 1-connection-per-
// request and persistent-connection HTTP.
func Baseline(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	t := metrics.NewTable("§5.3 baseline throughput (unmodified kernel, 1 KB cached file)",
		"HTTP mode", "Throughput (req/s)", "Paper (req/s)", "CPU cost/request (µs)")

	for _, persistent := range []bool{false, true} {
		e := newEnv(kernel.ModeUnmodified, opt)
		if _, err := httpsim.NewServer(httpsim.Config{
			Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.SelectAPI,
		}); err != nil {
			panic(err)
		}
		pop := workload.MustStartPopulation(32, workload.ClientConfig{
			Kernel:     e.k,
			Src:        kernel.Addr("10.1.0.1", 1024),
			Dst:        ServerAddr,
			Persistent: persistent,
		})
		rate := e.measureRate(pop, opt.Warmup, opt.Window)
		name, paper := "1 connection/request", 2954.0
		if persistent {
			name, paper = "persistent connections", 9487.0
		}
		perReq := 0.0
		if rate > 0 {
			perReq = 1e6 / rate
		}
		t.AddRow(name, rate, paper, perReq)
	}
	return t
}

// Overhead reproduces §5.4's throughput check: with a new resource
// container created, bound and destroyed for every request (paying the
// Table-1 syscall costs), throughput stays effectively unchanged.
func Overhead(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	t := metrics.NewTable("§5.4 overhead of per-request containers (RC kernel)",
		"Configuration", "Throughput (req/s)")
	for _, withContainers := range []bool{false, true} {
		e := newEnv(kernel.ModeRC, opt)
		if _, err := httpsim.NewServer(httpsim.Config{
			Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.SelectAPI,
			PerConnContainers:      withContainers,
			ContainerOpsPerRequest: withContainers,
		}); err != nil {
			panic(err)
		}
		pop := e.staticClients(32, 0)
		rate := e.measureRate(pop, opt.Warmup, opt.Window)
		name := "no per-request containers"
		if withContainers {
			name = "container per request (create+bind+destroy)"
		}
		t.AddRow(name, rate)
	}
	return t
}
