package experiments

import (
	"bytes"
	"sync"
	"testing"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/trace"
	"rescon/internal/workload"
)

// telemetryScene runs the Fig-14 scenario (SYN flood vs. paying clients)
// for 500ms of virtual time with a telemetry collector attached and
// returns the collector. In ModeRC the §5.7 defense is installed: the
// attack prefix lands on a filtered listen socket bound to a priority-0
// "attackers" container.
func telemetryScene(t *testing.T, mode kernel.Mode, seed int64, floodRate sim.Rate) *telemetry.Collector {
	t.Helper()
	eng := sim.NewEngine(seed)
	k := kernel.New(eng, mode, kernel.DefaultCosts())
	tel := telemetry.New(telemetry.Config{})
	k.AttachTelemetry(tel)

	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
		PerConnContainers: mode == kernel.ModeRC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mode == kernel.ModeRC {
		attackers := rc.MustNew(nil, rc.TimeShare, "attackers", rc.Attributes{Priority: 0})
		if _, err := srv.AddListener(netsim.Filter{Template: AttackNet, MaskBits: 8}, attackers); err != nil {
			t.Fatal(err)
		}
		k.WatchContainer(srv.Process().DefaultContainer)
		k.WatchContainer(attackers)
	}
	workload.MustStartPopulation(8, workload.ClientConfig{
		Kernel: k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    ServerAddr,
	})
	if floodRate > 0 {
		workload.StartFlood(k, floodRate, AttackNet+1, 4096, ServerAddr)
	}
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	return tel
}

// renderTelemetry concatenates all three exporters into one string, so a
// single comparison covers JSONL, Chrome trace and profile output.
func renderTelemetry(t *testing.T, tel *telemetry.Collector) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tel.WriteJSONL(&buf); err != nil {
		t.Error(err)
	}
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Error(err)
	}
	tel.WriteProfile(&buf, 0)
	return buf.String()
}

// TestTelemetryDeterministic is the telemetry arm of the determinism
// golden test: the same seed must render byte-identical JSONL, Chrome
// trace and profile output, run serially and run concurrently with other
// simulations (container IDs are process-global and race across
// goroutines; telemetry must key principals by name only).
func TestTelemetryDeterministic(t *testing.T) {
	const seed, rate = 7, 20_000
	run := func() string {
		return renderTelemetry(t, telemetryScene(t, kernel.ModeRC, seed, rate))
	}
	serial := run()
	if again := run(); again != serial {
		t.Fatal("two serial runs with the same seed render different telemetry")
	}
	if serial == renderTelemetry(t, telemetryScene(t, kernel.ModeRC, seed+1, rate)) {
		t.Fatal("changing the seed did not change the telemetry (vacuous golden test)")
	}

	out := make([]string, 4)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = renderTelemetry(t, telemetryScene(t, kernel.ModeRC, seed, rate))
		}(i)
	}
	wg.Wait()
	for i, o := range out {
		if o != serial {
			t.Fatalf("concurrent run %d renders different telemetry than serial", i)
		}
	}
}

// maxInterruptPrincipal returns the principal with the most
// interrupt-stage CPU in the profile.
func maxInterruptPrincipal(tel *telemetry.Collector) (string, sim.Duration) {
	var name string
	var max sim.Duration
	for _, r := range tel.ProfileRows() {
		if r.Stage == trace.StageInterrupt && r.CPU > max {
			name, max = r.Principal, r.CPU
		}
	}
	return name, max
}

// TestFig14InterruptAttribution checks the profile tells the paper's
// Fig-14 story. Under ModeRC the flood's receive processing is charged
// to the attackers' container; on the unmodified kernel the same cycles
// are misattributed to whatever the interrupt preempted — the victim.
// The flood rate is moderate so the unmodified kernel is degraded but
// not fully livelocked (at livelock the CPU never leaves interrupt
// context and the preempted principal is "(idle)").
func TestFig14InterruptAttribution(t *testing.T) {
	// RC sustains a heavy flood (that is the point of the defense), so at
	// 20k SYN/s the attackers dominate interrupt-stage CPU. The
	// unmodified arm uses a moderate rate: heavy enough to hurt, light
	// enough that the victim thread still runs and gets preempted.
	rcTel := telemetryScene(t, kernel.ModeRC, 7, 20_000)
	name, cpu := maxInterruptPrincipal(rcTel)
	if name != "attackers" {
		t.Errorf("ModeRC: most interrupt-stage CPU charged to %q (%v), want the attackers container", name, cpu)
	}
	if ip := rcTel.StageCPU("attackers", trace.StageIP); ip <= 0 {
		t.Errorf("ModeRC: attackers charged no ip-stage (demux) CPU")
	}

	unTel := telemetryScene(t, kernel.ModeUnmodified, 7, 3_000)
	name, cpu = maxInterruptPrincipal(unTel)
	if name != "httpd/main" {
		t.Errorf("ModeUnmodified: most interrupt-stage CPU charged to %q (%v), want the preempted victim httpd/main", name, cpu)
	}
	if got := unTel.StageCPU("attackers", trace.StageInterrupt); got != 0 {
		t.Errorf("ModeUnmodified: %v charged to an %q principal that cannot exist there", got, "attackers")
	}

	// The same flood costs the same cycles either way; only the books
	// differ. Both kernels must show substantial interrupt-stage load.
	if rcIntr := rcTel.StageCPU("attackers", trace.StageInterrupt); rcIntr < 5*sim.Millisecond {
		t.Errorf("ModeRC: implausibly little interrupt CPU on attackers: %v", rcIntr)
	}
	if cpu < 5*sim.Millisecond {
		t.Errorf("ModeUnmodified: implausibly little interrupt CPU on the victim: %v", cpu)
	}
}

// TestTelemetryTimelineSamples checks the sampling ticker produces
// timeline rows for the machine, processes, listen sockets and watched
// containers, with cumulative CPU non-decreasing per principal.
func TestTelemetryTimelineSamples(t *testing.T) {
	tel := telemetryScene(t, kernel.ModeRC, 7, 20_000)
	samples := tel.Samples()
	if len(samples) == 0 {
		t.Fatal("no timeline samples recorded")
	}
	seen := map[string]bool{}
	lastCPU := map[string]sim.Duration{}
	for _, s := range samples {
		seen[s.Principal] = true
		if s.CPU < lastCPU[s.Principal] {
			t.Fatalf("cumulative CPU went backwards for %q at %v", s.Principal, s.At)
		}
		lastCPU[s.Principal] = s.CPU
	}
	for _, want := range []string{"(machine)", "httpd", "attackers"} {
		if !seen[want] {
			t.Errorf("no timeline samples for %q (got principals %v)", want, keys(seen))
		}
	}
	// The flood must show up in the listen-socket rows: the filtered
	// socket's SYN queue takes drops at 20k SYNs/s.
	var listenSeen, dropSeen bool
	for _, s := range samples {
		if len(s.Principal) >= 7 && s.Principal[:7] == "listen:" {
			listenSeen = true
			if s.Drops > 0 {
				dropSeen = true
			}
		}
	}
	if !listenSeen {
		t.Error("no listen-socket timeline samples")
	}
	if !dropSeen {
		t.Error("flood at 20k SYN/s produced no SYN drops in listen-socket samples")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
