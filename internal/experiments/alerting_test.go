package experiments

import (
	"testing"

	"rescon/internal/kernel"
	"rescon/internal/sim"
)

// TestAlertingWatchdogBuysGoodput asserts the operational claims of the
// alert subsystem on every kernel mode: the critical overload alert
// fires before the goodput knee (detection leads collapse), and the
// closed-loop watchdog arm sustains strictly higher goodput under the
// flood than the detection-only arm (reaction buys goodput back).
func TestAlertingWatchdogBuysGoodput(t *testing.T) {
	res, err := Alerting(Options{Seed: 7, Warmup: sim.Second, Window: 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []kernel.Mode{kernel.ModeUnmodified, kernel.ModeLRP, kernel.ModeRC} {
		off, on := res.Row(mode, false), res.Row(mode, true)
		if off.SteadyGoodput <= 0 {
			t.Errorf("%v: no steady-state goodput before the attack", mode)
		}
		if on.FloodGoodput <= off.FloodGoodput {
			t.Errorf("%v: watchdog-on goodput %.1f req/s not strictly above watchdog-off %.1f req/s",
				mode, on.FloodGoodput, off.FloodGoodput)
		}
		if off.Knee < 0 {
			t.Errorf("%v: flood at %v SYN/s produced no goodput knee in the watchdog-off arm", mode, AlertingFloodRate)
		}
		for _, arm := range []AlertingRow{off, on} {
			if arm.FirstCritical < 0 {
				t.Errorf("%v watchdog=%t: no critical alert fired after attack onset", mode, arm.Watchdog)
				continue
			}
			if arm.Knee >= 0 && arm.FirstCritical >= arm.Knee {
				t.Errorf("%v watchdog=%t: first critical at %v, not before the goodput knee at %v",
					mode, arm.Watchdog, arm.FirstCritical, arm.Knee)
			}
			if arm.Flaps != 0 {
				t.Errorf("%v watchdog=%t: alert stream flapped %d time(s)", mode, arm.Watchdog, arm.Flaps)
			}
		}
		if on.Engagements == 0 {
			t.Errorf("%v: watchdog never engaged under the flood", mode)
		}
	}
}
