package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sched"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// Fig11Points is the x axis of Fig. 11: concurrent low-priority clients.
var Fig11Points = []int{0, 5, 10, 15, 20, 25, 30, 35}

// fig11System describes one curve of Fig. 11.
type fig11System struct {
	name       string
	mode       kernel.Mode
	api        httpsim.API
	containers bool
	// premiumSocket binds a filtered listen socket (§4.8) to a
	// high-priority container for the premium client, prioritizing its
	// connection requests before the application sees them. The select()
	// configuration of §5.5 assigns containers only after accept(), so it
	// runs without one.
	premiumSocket bool
	// lottery switches the container scheduler's time-share policy to
	// lottery scheduling (leaf-policy ablation).
	lottery bool
}

var fig11Systems = []fig11System{
	{name: "Without containers", mode: kernel.ModeUnmodified, api: httpsim.SelectAPI},
	{name: "With containers/select()", mode: kernel.ModeRC, api: httpsim.SelectAPI,
		containers: true, premiumSocket: true},
	{name: "With containers/new event API", mode: kernel.ModeRC, api: httpsim.EventAPI,
		containers: true, premiumSocket: true},
}

// HighPriority is the container priority of the premium client's
// connections; LowPriority that of everyone else.
const (
	HighPriority = 30
	LowPriority  = 1
)

// Fig11 reproduces §5.5: the response time seen by one high-priority
// client while an increasing number of low-priority clients saturate the
// server, under three systems. Requests are for the same 1 KB static
// file, one request per connection.
func Fig11(opt Options) []*metrics.Series {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	np := len(Fig11Points)
	vals := runPoints(opt.Parallel, len(fig11Systems)*np, func(i int) float64 {
		return fig11Point(fig11Systems[i/np], Fig11Points[i%np], opt)
	})
	var out []*metrics.Series
	for si, sys := range fig11Systems {
		s := &metrics.Series{Name: sys.name}
		for pi, n := range Fig11Points {
			s.Append(float64(n), vals[si*np+pi])
		}
		out = append(out, s)
	}
	return out
}

// fig11Point returns the high-priority client's mean response time (ms)
// with n low-priority clients.
func fig11Point(sys fig11System, n int, opt Options) float64 {
	e := newEnv(sys.mode, opt)
	if sys.lottery {
		if cs, ok := e.k.Scheduler().(*sched.ContainerScheduler); ok {
			cs.SetLeafPolicy(sched.PolicyLottery, opt.Seed)
		}
	}
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: sys.api,
		PerConnContainers: sys.containers,
		ConnPriority: func(a netsim.Addr) int {
			if a.IP == HighPriorityIP {
				return HighPriority
			}
			return LowPriority
		},
	})
	if err != nil {
		panic(err)
	}
	if sys.premiumSocket {
		// §4.8: a filtered listen socket gives the premium client's SYN
		// and connection-request processing high priority before the
		// application ever sees the connection.
		hiCont := rc.MustNew(nil, rc.TimeShare, "premium",
			rc.Attributes{Priority: HighPriority})
		if _, err := srv.AddListener(netsim.Filter{Template: HighPriorityIP, MaskBits: 32}, hiCont); err != nil {
			panic(err)
		}
	}

	// Low-priority population: closed-loop with a small think time so the
	// x axis sweeps across the saturation knee as in the paper.
	lows := workload.MustStartPopulation(n, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    ServerAddr,
		Think:  5 * sim.Millisecond,
	})
	high := workload.MustStartClient(workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: HighPriorityIP, Port: 1024},
		Dst:    ServerAddr,
		Think:  5 * sim.Millisecond,
	})

	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	lows.ResetStats()
	high.ResetStats()
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	return high.Latency.Mean()
}
