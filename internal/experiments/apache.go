package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// Apache reproduces the related-work comparison of §6: Almeida et al.
// mapped QoS classes onto *process* priorities in a process-per-
// connection (Apache-style) server on an unmodified kernel. The mapping
// expresses the policy — the premium client's user-level work is favored
// — but "the effectiveness of this technique was limited by their
// inability to control kernel-mode resource consumption, or to
// differentiate between existing connections and new connection
// requests": under saturation the premium client still queues behind the
// shared accept path and kernel processing, while resource containers
// keep it fast.
func Apache(opt Options) []*metrics.Series {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	apache := &metrics.Series{Name: "Apache + nice (unmodified)"}
	rcs := &metrics.Series{Name: "With containers/new event API"}
	np := len(Fig11Points)
	vals := runPoints(opt.Parallel, 2*np, func(i int) float64 {
		n := Fig11Points[i%np]
		if i < np {
			return apachePoint(n, opt)
		}
		sys := fig11System{mode: kernel.ModeRC, api: httpsim.EventAPI,
			containers: true, premiumSocket: true}
		return fig11Point(sys, n, opt)
	})
	for pi, n := range Fig11Points {
		apache.Append(float64(n), vals[pi])
		rcs.Append(float64(n), vals[np+pi])
	}
	return []*metrics.Series{apache, rcs}
}

// apachePoint returns T_high for the nice-based process-per-connection
// configuration with n low-priority clients.
func apachePoint(n int, opt Options) float64 {
	e := newEnv(kernel.ModeUnmodified, opt)
	srv, err := httpsim.NewForkServer(httpsim.Config{
		Kernel: e.k, Name: "apache", Addr: ServerAddr,
	}, 16)
	if err != nil {
		panic(err)
	}
	srv.NicePriority = func(a netsim.Addr) int {
		if a.IP == HighPriorityIP {
			return 0 // premium class
		}
		return 8 // background class
	}
	workload.MustStartPopulation(n, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    ServerAddr,
		Think:  5 * sim.Millisecond,
	})
	high := workload.MustStartClient(workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: HighPriorityIP, Port: 1024},
		Dst:    ServerAddr,
		Think:  5 * sim.Millisecond,
	})
	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	high.ResetStats()
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	return high.Latency.Mean()
}
