package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sched"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// AblatePruning isolates the scheduler-binding maintenance design (§4.3,
// §4.7) on the kernel network thread under the Fig. 14 SYN-flood defense.
// Three mechanisms are compared:
//
//  1. exact pending-set binding (the default): the thread's class always
//     reflects exactly the containers with pending packets, so it falls
//     into the idle class the moment only flood traffic is pending;
//  2. implicit binding with pruning (the paper's general mechanism): the
//     thread keeps recently served containers in its binding for the
//     pruning age, so flood processing briefly inherits normal standing;
//  3. implicit binding without pruning: live connection containers keep
//     the thread in the normal class indefinitely, so flood protocol
//     processing competes with the server at normal priority.
func AblatePruning(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 5*sim.Second)
	const floodRate = 70_000
	t := metrics.NewTable("Ablation: network-thread scheduler binding under a 70k SYN/s flood (RC defense)",
		"Binding mechanism", "Good-client throughput (req/s)")
	cfgs := []struct {
		name     string
		implicit bool
		noPrune  bool
	}{
		{"exact pending-set (default)", false, false},
		{"implicit + pruning", true, false},
		{"implicit, pruning disabled", true, true},
	}
	rates := runPoints(opt.Parallel, len(cfgs), func(i int) float64 {
		return ablatePruningPoint(cfgs[i].implicit, cfgs[i].noPrune, floodRate, opt)
	})
	for i, cfg := range cfgs {
		t.AddRow(cfg.name, rates[i])
	}
	return t
}

func ablatePruningPoint(implicit, disablePruning bool, floodRate sim.Rate, opt Options) float64 {
	e := newEnv(kernel.ModeRC, opt)
	e.k.ImplicitNetBinding = implicit
	if cs, ok := e.k.Scheduler().(*sched.ContainerScheduler); ok {
		cs.DisablePruning = disablePruning
	}
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.EventAPI,
		PerConnContainers: true,
	})
	if err != nil {
		panic(err)
	}
	floodCont := rc.MustNew(nil, rc.TimeShare, "attackers", rc.Attributes{Priority: 0})
	if _, err := srv.AddListener(netsim.Filter{Template: AttackNet, MaskBits: 8}, floodCont); err != nil {
		panic(err)
	}
	// Persistent connections: connection containers stay alive, so a
	// non-pruned scheduler binding keeps referencing them.
	good := workload.MustStartPopulation(32, workload.ClientConfig{
		Kernel:     e.k,
		Src:        netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:        ServerAddr,
		Persistent: true,
	})
	workload.StartFlood(e.k, floodRate, AttackNet+1, 4096, ServerAddr)
	return e.measureRate(good, opt.Warmup, opt.Window)
}

// AblateFilterPriority shows that the §5.7 defense needs both mechanisms:
// the filter alone (attacker socket at normal priority) leaves the flood
// a weighted-fair share of protocol processing and forfeits a large part
// of capacity; the filter plus a priority-0 container confines it to
// otherwise-idle cycles.
func AblateFilterPriority(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 5*sim.Second)
	t := metrics.NewTable("Ablation: filter alone vs. filter + priority-0 container (70k SYN/s)",
		"Defense", "Good-client throughput (req/s)")
	prios := []int{kernel.DefaultPriority, 0}
	rates := runPoints(opt.Parallel, len(prios), func(i int) float64 {
		sys := fig14System{mode: kernel.ModeRC, defend: true, defensePriority: prios[i]}
		return fig14Point(sys, 70_000, opt)
	})
	for i, prio := range prios {
		name := "filtered socket, normal priority"
		if prio == 0 {
			name = "filtered socket, priority-0 container"
		}
		t.AddRow(name, rates[i])
	}
	return t
}

// AblateEventAPI isolates the select() scalability cost independent of
// containers (§5.5): high-priority response time at full low-priority
// load under both APIs on the RC kernel.
func AblateEventAPI(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	t := metrics.NewTable("Ablation: select() vs. scalable event API (RC kernel, 35 low-priority clients)",
		"API", "High-priority response time (ms)")
	apis := []httpsim.API{httpsim.SelectAPI, httpsim.EventAPI}
	vals := runPoints(opt.Parallel, len(apis), func(i int) float64 {
		sys := fig11System{name: apis[i].String(), mode: kernel.ModeRC, api: apis[i], containers: true,
			premiumSocket: true}
		return fig11Point(sys, 35, opt)
	})
	for i, api := range apis {
		t.AddRow(api.String(), vals[i])
	}
	return t
}

// AblateLeafPolicy compares the two time-share leaf policies the
// container scheduler supports — decayed-usage priorities (default) and
// lottery scheduling [48] — on the Fig. 11 scenario at full load. Both
// honor the container hierarchy (guarantees, caps, idle class); the
// mechanism is policy-agnostic, as §4.3 claims.
func AblateLeafPolicy(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	t := metrics.NewTable("Ablation: time-share leaf policy (RC kernel, event API, 25 low-priority clients)",
		"Leaf policy", "High-priority response time (ms)")
	lotteries := []bool{false, true}
	vals := runPoints(opt.Parallel, len(lotteries), func(i int) float64 {
		sys := fig11System{mode: kernel.ModeRC, api: httpsim.EventAPI,
			containers: true, premiumSocket: true, lottery: lotteries[i]}
		return fig11Point(sys, 25, opt)
	})
	for i, lottery := range lotteries {
		name := "decayed-usage priorities (default)"
		if lottery {
			name = "lottery scheduling"
		}
		t.AddRow(name, vals[i])
	}
	return t
}

// AblateLRPCharging contrasts where early-demultiplexed processing is
// charged — to the receiving process (LRP) vs. the per-activity container
// (RC) — via the Fig. 11 scenario run on the LRP kernel: without
// container principals, even LRP cannot give the premium client priority
// inside the single server process.
func AblateLRPCharging(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	t := metrics.NewTable("Ablation: LRP vs. RC at 35 low-priority clients (high-priority response time)",
		"System", "High-priority response time (ms)")
	systems := []fig11System{
		{name: "LRP + select()", mode: kernel.ModeLRP, api: httpsim.SelectAPI, containers: false},
		{name: "RC + select()", mode: kernel.ModeRC, api: httpsim.SelectAPI, containers: true, premiumSocket: true},
		{name: "RC + event API", mode: kernel.ModeRC, api: httpsim.EventAPI, containers: true, premiumSocket: true},
	}
	vals := runPoints(opt.Parallel, len(systems), func(i int) float64 {
		return fig11Point(systems[i], 35, opt)
	})
	for i, sys := range systems {
		t.AddRow(sys.name, vals[i])
	}
	return t
}
