package experiments

import (
	"bytes"
	"testing"

	"rescon/internal/metrics"
	"rescon/internal/sim"
)

// The safety net for the parallel sweep runner: every driver must render
// byte-identical output for the same seed, run twice serially and run
// with the points fanned over four workers. Windows are short — these
// runs exist to compare outputs, not to reproduce the paper's numbers.

func detOpts(parallel int) Options {
	return Options{
		Seed:     7,
		Warmup:   200 * sim.Millisecond,
		Window:   500 * sim.Millisecond,
		Parallel: parallel,
	}
}

func renderedSeries(t *testing.T, s []*metrics.Series) string {
	t.Helper()
	var buf bytes.Buffer
	metrics.RenderSeries(&buf, "determinism", "x", s...)
	return buf.String()
}

func TestSweepDriversDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: full sweep determinism runs in the long suite")
	}
	cases := []struct {
		name   string
		render func(t *testing.T, opt Options) string
	}{
		{"fig11", func(t *testing.T, opt Options) string {
			return renderedSeries(t, Fig11(opt))
		}},
		{"fig12", func(t *testing.T, opt Options) string {
			r := Fig12(opt)
			return renderedSeries(t, r.Throughput) + renderedSeries(t, r.CGIShare)
		}},
		{"fig14", func(t *testing.T, opt Options) string {
			return renderedSeries(t, Fig14(opt))
		}},
		{"overload", func(t *testing.T, opt Options) string {
			return renderedSeries(t, Overload(opt))
		}},
		{"resilience", func(t *testing.T, opt Options) string {
			curves, err := ResilienceCurves(opt)
			if err != nil {
				t.Fatal(err)
			}
			return renderedSeries(t, curves)
		}},
		{"faults", func(t *testing.T, opt Options) string {
			tab, err := FaultMatrix(opt)
			if err != nil {
				t.Fatal(err)
			}
			return tab.String()
		}},
		{"ablate-pruning", func(t *testing.T, opt Options) string {
			return AblatePruning(opt).String()
		}},
		{"diskbound", func(t *testing.T, opt Options) string {
			return renderedSeries(t, DiskBound(opt))
		}},
		{"apache", func(t *testing.T, opt Options) string {
			return renderedSeries(t, Apache(opt))
		}},
		{"tail", func(t *testing.T, opt Options) string {
			return TailLatency(opt).String()
		}},
		{"alerting", func(t *testing.T, opt Options) string {
			res, err := Alerting(opt)
			if err != nil {
				t.Fatal(err)
			}
			return res.Table().String()
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.render(t, detOpts(1))
			again := tc.render(t, detOpts(1))
			if serial != again {
				t.Fatalf("two serial runs with the same seed differ:\n--- first ---\n%s--- second ---\n%s", serial, again)
			}
			par := tc.render(t, detOpts(4))
			if par != serial {
				t.Fatalf("parallel=4 output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
			}
		})
	}
}

// Different seeds must actually produce different simulations — otherwise
// the byte-identical assertions above would pass vacuously on a driver
// that ignores its options.
func TestSweepOutputDependsOnSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a := detOpts(2)
	b := detOpts(2)
	b.Seed = 8
	outA := renderedSeries(t, Overload(a))
	outB := renderedSeries(t, Overload(b))
	if outA == outB {
		t.Fatal("changing the seed did not change the rendered output")
	}
}
