package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// TailLatency is a modern re-reading of Fig. 11: the paper reports the
// premium client's *mean* response time, but for interactive services the
// tail is what matters. Same scenario at full load (35 low-priority
// clients), reporting mean / p95 / p99 / max for each system. Containers
// do not just lower the mean — they remove the tail, because the premium
// client's processing never waits behind low-priority backlogs at any
// layer.
func TailLatency(opt Options) *metrics.Table {
	opt = opt.withDefaults(2*sim.Second, 20*sim.Second)
	t := metrics.NewTable("Extension: premium-client latency distribution at 35 low-priority clients (ms)",
		"System", "mean", "p95", "p99", "max")
	sums := runPoints(opt.Parallel, len(fig11Systems), func(i int) *metrics.Summary {
		return tailPoint(fig11Systems[i], 35, opt)
	})
	for i, sys := range fig11Systems {
		s := sums[i]
		t.AddRow(sys.name, s.Mean(), s.Quantile(0.95), s.Quantile(0.99), s.Max())
	}
	return t
}

// tailPoint runs one fig11-style configuration and returns the premium
// client's latency summary.
func tailPoint(sys fig11System, n int, opt Options) *metrics.Summary {
	e := newEnv(sys.mode, opt)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: sys.api,
		PerConnContainers: sys.containers,
		ConnPriority: func(a netsim.Addr) int {
			if a.IP == HighPriorityIP {
				return HighPriority
			}
			return LowPriority
		},
	})
	if err != nil {
		panic(err)
	}
	if sys.premiumSocket {
		hiCont := rc.MustNew(nil, rc.TimeShare, "premium",
			rc.Attributes{Priority: HighPriority})
		if _, err := srv.AddListener(netsim.Filter{Template: HighPriorityIP, MaskBits: 32}, hiCont); err != nil {
			panic(err)
		}
	}
	workload.MustStartPopulation(n, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    ServerAddr,
		Think:  5 * sim.Millisecond,
	})
	high := workload.MustStartClient(workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: HighPriorityIP, Port: 1024},
		Dst:    ServerAddr,
		Think:  5 * sim.Millisecond,
	})
	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	high.ResetStats()
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	return &high.Latency
}
