// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), each regenerating the corresponding rows or
// curves on the simulated kernel, plus the ablations called out in
// DESIGN.md. Every driver builds a fresh deterministic simulation per
// data point, so output is reproducible bit-for-bit.
package experiments

import (
	"runtime"

	"rescon/internal/fault"
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// ServerAddr is the server endpoint used by all experiments.
var ServerAddr = kernel.Addr("10.0.0.1", 80)

// ClientNet is the base address of well-behaved clients.
var ClientNet = netsim.MustParseIP("10.1.0.0")

// HighPriorityIP is the high-priority (premium) client of Fig. 11.
var HighPriorityIP = netsim.MustParseIP("10.9.9.9")

// AttackNet is the SYN-flood source prefix of Fig. 14 (a /8).
var AttackNet = netsim.MustParseIP("66.0.0.0")

// Options tunes experiment length. Quick settings keep `go test` fast;
// the rcbench binary uses full-length windows.
type Options struct {
	Seed   int64
	Warmup sim.Duration
	Window sim.Duration
	// Invariants attaches a runtime invariant checker (CPU-charge
	// conservation, clock monotonicity, queue bounds) to every
	// simulation the experiment builds; a violation panics with a
	// diagnostic. On by default in -short test runs; rcbench enables it
	// with -check.
	Invariants bool
	// Parallel is the number of worker goroutines sweep drivers fan
	// independent data points across (0 = GOMAXPROCS, 1 = serial). Each
	// point builds its own engine and kernel from its own seed, so the
	// rendered output is byte-identical at any parallelism.
	Parallel int
}

// Defaults fills in zero fields.
func (o Options) withDefaults(warmup, window sim.Duration) Options {
	if o.Seed == 0 {
		o.Seed = 1999
	}
	if o.Warmup == 0 {
		o.Warmup = warmup
	}
	if o.Window == 0 {
		o.Window = window
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// env is one simulated machine plus bookkeeping for a measurement run.
type env struct {
	eng   *sim.Engine
	k     *kernel.Kernel
	check *fault.Checker
}

func newEnv(mode kernel.Mode, opt Options) *env {
	eng := sim.NewEngine(opt.Seed)
	e := &env{eng: eng, k: kernel.New(eng, mode, kernel.DefaultCosts())}
	if opt.Invariants {
		e.check = fault.NewChecker(eng)
		e.k.WatchInvariants(e.check)
		e.check.Start(0)
	}
	return e
}

// measureRate runs warmup, clears stats, runs the window, and returns the
// population's aggregate completion rate.
func (e *env) measureRate(pop *workload.Population, warmup, window sim.Duration) float64 {
	start := e.eng.Now()
	e.eng.RunUntil(start.Add(warmup))
	pop.ResetStats()
	e.eng.RunUntil(start.Add(warmup + window))
	return pop.Rate(e.eng.Now())
}

// staticClients starts n saturating 1-connection-per-request clients.
func (e *env) staticClients(n int, think sim.Duration) *workload.Population {
	return workload.MustStartPopulation(n, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    ServerAddr,
		Think:  think,
	})
}

// cgiClients starts n closed-loop dynamic-resource clients, each keeping
// one CGI request (cpu seconds of work) outstanding (§5.6).
func (e *env) cgiClients(n int, cpu sim.Duration) *workload.Population {
	return workload.MustStartPopulation(n, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 0x100, Port: 1024},
		Dst:    ServerAddr,
		Kind:   httpsim.CGI,
		CGICPU: cpu,
	})
}
