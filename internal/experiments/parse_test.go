package experiments

import (
	"fmt"
	"strconv"
	"testing"
)

// sscan parses the first float out of a rendered table cell.
func sscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("parse %q: %w", s, err)
	}
	*v = f
	return 1, nil
}

func mustParse(t *testing.T, s string, v *float64) {
	t.Helper()
	if _, err := sscan(s, v); err != nil {
		t.Fatal(err)
	}
}
