package experiments

import (
	"fmt"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// GuestShares are the fixed CPU shares of the three guest servers in the
// §5.8 Rent-A-Server experiment.
var GuestShares = []float64{0.50, 0.30, 0.20}

// VServers reproduces §5.8: three guest Web servers, each rooted in a
// top-level fixed-share container, serve mixed static+CGI load; the CPU
// each guest consumes must match its allocation, even though each guest
// comprises several processes and a varying number of activities.
func VServers(opt Options) (*metrics.Table, error) {
	opt = opt.withDefaults(5*sim.Second, 30*sim.Second)
	e := newEnv(kernel.ModeRC, opt)

	type guest struct {
		root *rc.Container
		srv  *httpsim.Server
		pop  *workload.Population
		cgi  *workload.Population
	}
	var guests []*guest
	for i, share := range GuestShares {
		root := rc.MustNew(nil, rc.FixedShare, fmt.Sprintf("guest-%d", i+1),
			rc.Attributes{Share: share, Limit: share})
		cgiParent := rc.MustNew(root, rc.FixedShare, "cgi", rc.Attributes{})
		addr := netsim.Addr{IP: ServerAddr.IP, Port: uint16(8001 + i)}
		srv, err := httpsim.NewServer(httpsim.Config{
			Kernel: e.k, Name: fmt.Sprintf("guest%d", i+1), Addr: addr,
			API:               httpsim.SelectAPI,
			PerConnContainers: true,
			Parent:            root,
			CGIParent:         cgiParent,
		})
		if err != nil {
			return nil, err
		}
		// The guest's own process (and its kernel network thread) must
		// live inside the guest's subtree, or its consumption would
		// escape the sandbox.
		if err := srv.Process().DefaultContainer.SetParent(root); err != nil {
			return nil, err
		}
		// Saturating load: static clients plus a CGI client per guest.
		pop := workload.MustStartPopulation(16, workload.ClientConfig{
			Kernel: e.k,
			Src:    netsim.Addr{IP: ClientNet + netsim.IP(1+i*64), Port: 1024},
			Dst:    addr,
		})
		cgi := workload.MustStartPopulation(1, workload.ClientConfig{
			Kernel: e.k,
			Src:    netsim.Addr{IP: ClientNet + netsim.IP(0x200+i*64), Port: 1024},
			Dst:    addr,
			Kind:   httpsim.CGI,
			CGICPU: sim.Second,
		})
		guests = append(guests, &guest{root: root, srv: srv, pop: pop, cgi: cgi})
	}

	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	before := make([]sim.Duration, len(guests))
	for i, g := range guests {
		g.pop.ResetStats()
		before[i] = g.root.Usage().CPU()
	}
	measureStart := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	elapsed := e.eng.Now().Sub(measureStart)

	t := metrics.NewTable("§5.8 isolation of virtual servers (3 guests, mixed static+CGI load)",
		"Guest", "Allocated share (%)", "Consumed CPU (%)", "Static throughput (req/s)")
	for i, g := range guests {
		used := float64(g.root.Usage().CPU()-before[i]) / float64(elapsed) * 100
		t.AddRow(fmt.Sprintf("guest-%d", i+1), GuestShares[i]*100, used, g.pop.Rate(e.eng.Now()))
	}
	return t, nil
}
