package experiments

import (
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Fig12Points is the x axis of Figs. 12 and 13: concurrent CGI requests.
var Fig12Points = []int{0, 1, 2, 3, 4, 5}

// CGIJobCPU is the CPU one dynamic request consumes ("about 2 seconds",
// §5.6).
const CGIJobCPU = 2 * sim.Second

// fig12System describes one curve of Figs. 12/13.
type fig12System struct {
	name string
	mode kernel.Mode
	// cgiLimit caps the CGI-parent container (0 = no sandbox).
	cgiLimit float64
}

var fig12Systems = []fig12System{
	{"Unmodified System", kernel.ModeUnmodified, 0},
	{"LRP System", kernel.ModeLRP, 0},
	{"RC System 1", kernel.ModeRC, 0.30},
	{"RC System 2", kernel.ModeRC, 0.10},
}

// Fig12Result carries both figures from the shared run: static-document
// throughput (Fig. 12) and the CPU share of CGI processing (Fig. 13).
type Fig12Result struct {
	Throughput []*metrics.Series // requests/second
	CGIShare   []*metrics.Series // percent of CPU
}

// Fig12 reproduces §5.6: the throughput of the Web server for cached
// 1 KB static documents, and the CPU consumed by CGI processing, as the
// number of concurrent 2-second CGI requests grows, under four systems.
func Fig12(opt Options) *Fig12Result {
	opt = opt.withDefaults(5*sim.Second, 30*sim.Second)
	np := len(Fig12Points)
	type pair struct{ rate, share float64 }
	vals := runPoints(opt.Parallel, len(fig12Systems)*np, func(i int) pair {
		r, s := fig12Point(fig12Systems[i/np], Fig12Points[i%np], opt)
		return pair{rate: r, share: s}
	})
	res := &Fig12Result{}
	for si, sys := range fig12Systems {
		tput := &metrics.Series{Name: sys.name}
		share := &metrics.Series{Name: sys.name}
		for pi, n := range Fig12Points {
			v := vals[si*np+pi]
			tput.Append(float64(n), v.rate)
			share.Append(float64(n), v.share)
		}
		res.Throughput = append(res.Throughput, tput)
		res.CGIShare = append(res.CGIShare, share)
	}
	return res
}

// fig12Point returns (static throughput req/s, CGI CPU share %) with n
// concurrent CGI requests under the given system.
func fig12Point(sys fig12System, n int, opt Options) (float64, float64) {
	e := newEnv(sys.mode, opt)
	cfg := httpsim.Config{
		Kernel: e.k, Name: "httpd", Addr: ServerAddr, API: httpsim.SelectAPI,
	}
	if sys.mode == kernel.ModeRC {
		cfg.PerConnContainers = true
		if sys.cgiLimit > 0 {
			// The "resource sandbox": every CGI request container is a
			// child of a CGI-parent container restricted to a fraction
			// of the CPU (§5.6).
			cfg.CGIParent = rc.MustNew(nil, rc.FixedShare, "cgi-parent",
				rc.Attributes{Limit: sys.cgiLimit})
		}
	}
	srv, err := httpsim.NewServer(cfg)
	if err != nil {
		panic(err)
	}

	statics := e.staticClients(48, 0)
	if n > 0 {
		e.cgiClients(n, CGIJobCPU)
	}

	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	statics.ResetStats()
	cgiBefore := srv.CGICPU()
	measureStart := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	rate := statics.Rate(e.eng.Now())
	cgiShare := float64(srv.CGICPU()-cgiBefore) / float64(e.eng.Now().Sub(measureStart)) * 100
	return rate, cgiShare
}
