package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"rescon/internal/alert"
	"rescon/internal/fault"
	"rescon/internal/metrics"
	"rescon/internal/rc"
	"rescon/internal/rcruntime"
	"rescon/internal/sim"
)

// The livechaos experiment is the survivability story on the *real*
// runtime: the same governed net/http server as the live experiment,
// now with a hostile tenant, a seeded live fault schedule (connection
// resets, stalled reads, handler stalls, handler panics) and the full
// closed loop on top — monitor check battery, runtime watchdog
// (clamp + tighten), per-tenant circuit breakers, and a graceful drain
// at the end. Two cells run under the identical fault seed: undefended
// (no monitor, no watchdog, no breakers) and defended. Time is virtual
// (lockstep clock, sequential closed-loop issue order), so every cell —
// goodput, fault counts, watchdog engagements and restores — is a
// deterministic function of the seed, and the -check gate re-runs the
// whole experiment to assert the cells byte-identical.

// liveChaosParams are the knobs of one livechaos run.
type liveChaosParams struct {
	hostileRounds int // rounds with the hog flooding (faults active throughout)
	calmRounds    int // rounds with only the good tenant, so alerts clear
	window        time.Duration
	goodN         int
	goodCost      time.Duration
	hogN          int
	hogCost       time.Duration
	think         time.Duration
	shedCost      time.Duration // virtual client cost of a 429/503
	errCost       time.Duration // virtual client cost of a failed connection
	grace         time.Duration // drain grace at the end
	seed          int64
	faults        fault.LiveConfig
}

func liveChaosParamsFor(opt Options) liveChaosParams {
	p := liveChaosParams{
		hostileRounds: 40,
		calmRounds:    48,
		window:        100 * time.Millisecond,
		goodN:         4,
		goodCost:      2 * time.Millisecond,
		hogN:          16,
		hogCost:       10 * time.Millisecond,
		think:         time.Millisecond,
		shedCost:      200 * time.Microsecond,
		errCost:       50 * time.Microsecond,
		grace:         time.Second,
		seed:          opt.Seed,
		faults: fault.LiveConfig{
			ResetRate:        0.05,
			StallRate:        0.05,
			HandlerStallRate: 0.10,
			HandlerStallFor:  20 * time.Millisecond,
			PanicRate:        0.05,
		},
	}
	if opt.Window != 0 && opt.Window <= 2*sim.Second {
		p.hostileRounds = 8 // -quick; calm stays long enough to restore
		p.calmRounds = 36
	}
	return p
}

// LiveChaosCell is one config's outcome. Every field is a deterministic
// function of the seed; the -check gate asserts the whole cell
// byte-identical across two runs.
type LiveChaosCell struct {
	// Config names the cell (undefended / defended).
	Config string
	// GoodRate and HogRate are served requests per virtual second.
	GoodRate, HogRate float64
	// GoodServed/HogServed count 200s per tenant; Panics counts 500s from
	// recovered handler panics; Errors counts client-visible connection
	// failures (injected resets and accept refusals).
	GoodServed, HogServed, Panics, Errors int
	// Shed, BreakerShed and Refused are the server's three shedding
	// layers: 429s at admission, 503s from open breakers, and
	// connections closed at accept.
	Shed, BreakerShed, Refused uint64
	// HogCPUPct is the hog subtree's share of all CPU charged.
	HogCPUPct float64
	// Engagements and Restores count the watchdog's clamp/tighten cycles
	// and their restores (zero in the undefended cell).
	Engagements, Restores uint64
	// Faults is the injector's schedule as consumed by this cell.
	Faults fault.LiveStats
	// Elapsed is the virtual time the run consumed.
	Elapsed time.Duration
	// DrainClean reports the end-of-run graceful drain finished with
	// zero in-flight requests.
	DrainClean bool
}

// fingerprint renders every deterministic field; the -check double run
// compares these byte-for-byte.
func (c *LiveChaosCell) fingerprint() string {
	return fmt.Sprintf("%s good=%d hog=%d panics=%d errors=%d shed=%d breaker=%d refused=%d cpu=%.4f wd=%d/%d faults=%v elapsed=%v drain=%t",
		c.Config, c.GoodServed, c.HogServed, c.Panics, c.Errors, c.Shed, c.BreakerShed, c.Refused,
		c.HogCPUPct, c.Engagements, c.Restores, c.Faults, c.Elapsed, c.DrainClean)
}

// LiveChaosResult is the livechaos experiment's outcome.
type LiveChaosResult struct {
	// Cells hold the undefended and defended runs, in that order.
	Cells []LiveChaosCell
	// Deterministic reports that the -check double run compared the
	// cells byte-identical (false when the gate did not run).
	Deterministic bool
}

// Table renders the deterministic cells.
func (r *LiveChaosResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Live chaos: governed net/http under faults, watchdog+breakers closed loop",
		"config", "good req/s", "hog req/s", "shed 429", "breaker 503", "refused", "panics", "wd engaged", "wd restored")
	for _, c := range r.Cells {
		t.AddRow(c.Config, c.GoodRate, c.HogRate, int(c.Shed), int(c.BreakerShed), int(c.Refused),
			c.Panics, int(c.Engagements), int(c.Restores))
	}
	return t
}

// LiveChaos runs the survivability experiment: a governed live server
// under a seeded fault schedule and a hostile tenant, undefended vs
// defended (monitor + watchdog + breakers), each run ending in a
// graceful drain. With opt.Invariants it additionally re-runs both
// cells and errors unless (1) every cell is byte-identical across the
// two runs, (2) the defended cell's good-tenant goodput strictly
// exceeds the undefended cell's, (3) every watchdog engagement was
// restored and the journal shows the clamp and the unclamp, and
// (4) both drains finished clean.
func LiveChaos(opt Options) (*LiveChaosResult, error) {
	p := liveChaosParamsFor(opt)
	res := &LiveChaosResult{}
	run := func() ([]LiveChaosCell, error) {
		var cells []LiveChaosCell
		for _, cfg := range []struct {
			name     string
			defended bool
		}{{"undefended", false}, {"defended", true}} {
			c, err := runLiveChaosCell(cfg.name, cfg.defended, p, opt.Invariants)
			if err != nil {
				return nil, fmt.Errorf("livechaos %s: %w", cfg.name, err)
			}
			cells = append(cells, *c)
		}
		return cells, nil
	}
	cells, err := run()
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	if !opt.Invariants {
		return res, nil
	}
	again, err := run()
	if err != nil {
		return nil, fmt.Errorf("livechaos re-run: %w", err)
	}
	for i := range cells {
		a, b := cells[i].fingerprint(), again[i].fingerprint()
		if a != b {
			return nil, fmt.Errorf("livechaos nondeterministic: cell %q diverged across identical runs:\n  run1: %s\n  run2: %s",
				cells[i].Config, a, b)
		}
	}
	res.Deterministic = true
	und, def := cells[0], cells[1]
	if def.GoodRate <= und.GoodRate {
		return nil, fmt.Errorf("defense failed: defended good goodput %.3f req/s does not exceed undefended %.3f req/s",
			def.GoodRate, und.GoodRate)
	}
	if def.Engagements == 0 {
		return nil, fmt.Errorf("watchdog never engaged in the defended cell")
	}
	if def.Restores != def.Engagements {
		return nil, fmt.Errorf("watchdog engaged %d time(s) but restored %d: a clamp was never released",
			def.Engagements, def.Restores)
	}
	for _, c := range cells {
		if !c.DrainClean {
			return nil, fmt.Errorf("cell %q drain leaked in-flight requests", c.Config)
		}
	}
	return res, nil
}

// chaosCountingSink tallies RequestEvents by cause so the conservation
// invariant can reconcile the telemetry stream against Stats.
type chaosCountingSink struct {
	mu                                   sync.Mutex
	served, shed, breaker, drain, panics uint64
}

func (s *chaosCountingSink) RecordRequest(ev rcruntime.RequestEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Cause {
	case rcruntime.CauseShed:
		s.shed++
	case rcruntime.CauseBreaker:
		s.breaker++
	case rcruntime.CauseDrain:
		s.drain++
	case rcruntime.CausePanic:
		s.panics++
		s.served++
	default:
		s.served++
	}
}

// runLiveChaosCell boots the governed server with the cell's defenses,
// drives the hostile and calm phases, then drains. Invariants that are
// cheap and always-true (telemetry/stats conservation, zero in-flight
// after drain) are checked unconditionally; checkJournal additionally
// requires the watchdog's clamp and unclamp notes in the alert stream.
func runLiveChaosCell(name string, defended bool, p liveChaosParams, checkJournal bool) (*LiveChaosCell, error) {
	clk := &lockstepClock{}
	inj := fault.NewLive(p.seed, p.faults, clk)
	sink := &chaosCountingSink{}

	root := rc.MustNew(nil, rc.FixedShare, "livechaos", rc.Attributes{})
	good := rc.MustNew(root, rc.FixedShare, "good", rc.Attributes{})
	hog := rc.MustNew(root, rc.FixedShare, "hog", rc.Attributes{}) // unlimited: the watchdog must clamp it

	cfg := rcruntime.Config{
		Root:     root,
		Window:   p.window,
		MaxDelay: rcruntime.NoDelay,
	}
	opts := []rcruntime.Option{
		rcruntime.WithClock(clk),
		rcruntime.WithTelemetrySink(sink),
		rcruntime.WithBinder(rcruntime.HeaderBinder("X-RC-Tenant",
			map[string]*rc.Container{"good": good, "hog": hog}, nil)),
	}
	if defended {
		opts = append(opts, rcruntime.WithBreakers(rcruntime.BreakerConfig{}))
	}
	rt, err := rcruntime.NewRuntime(cfg, opts...)
	if err != nil {
		return nil, err
	}

	var mon *rcruntime.Monitor
	var wd *rcruntime.Watchdog
	if defended {
		am := alert.New()
		am.SetRun(p.seed, "livechaos", sim.Duration(p.window))
		mon, err = rcruntime.AttachMonitor(rt, am, rcruntime.MonitorConfig{
			// The hog's refusals arrive split across the shedding layers;
			// criticality at one keep-alive half's worth of 503s+429s per
			// tick keeps the watchdog engaged for the whole hostile phase.
			ShedCrit: float64(p.hogN) / 2,
			Clear:    2,
			Tenants:  []*rc.Container{hog},
		})
		if err != nil {
			return nil, err
		}
		wd = rcruntime.AttachWatchdog(mon, rcruntime.WatchdogConfig{
			ClampLimit:      0.1,
			BackoffTicks:    4,
			MaxBackoffTicks: 8,
			Clampable:       []*rc.Container{hog},
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		cost, err := time.ParseDuration(r.Header.Get("X-Cost"))
		if err == nil && cost > 0 {
			clk.Sleep(cost) // burn virtual CPU
		}
		_, _ = io.WriteString(w, "ok\n")
	})
	handler := rt.Middleware(inj.Middleware(mux))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(rt.Listener(inj.Listener(ln)))
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()
	base := "http://" + ln.Addr().String() + "/work"

	// Good tenant: keep-alive (established work). Hog: half keep-alive
	// (shed at the middleware / breaker), half reconnecting (refused at
	// accept once the watchdog's tight policy engages).
	goodClient := &http.Client{Transport: &http.Transport{}}
	hogKA := &http.Client{Transport: &http.Transport{}}
	hogNKA := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer goodClient.CloseIdleConnections()
	defer hogKA.CloseIdleConnections()

	cell := &LiveChaosCell{Config: name}
	issue := func(client *http.Client, tenant string, cost time.Duration) error {
		req, err := http.NewRequest("GET", base, nil)
		if err != nil {
			return err
		}
		req.Header.Set("X-RC-Tenant", tenant)
		req.Header.Set("X-Cost", cost.String())
		resp, err := client.Do(req)
		if err != nil {
			// Injected reset or accept refusal: the connection died before
			// a response.
			cell.Errors++
			clk.Sleep(p.errCost)
			return nil
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if tenant == "good" {
				cell.GoodServed++
			} else {
				cell.HogServed++
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			clk.Sleep(p.shedCost)
		case http.StatusInternalServerError:
			cell.Panics++
		default:
			return fmt.Errorf("unexpected status %d", resp.StatusCode)
		}
		return nil
	}

	start := clk.Now()
	round := func(hostile bool) error {
		for i := 0; i < p.goodN; i++ {
			if err := issue(goodClient, "good", p.goodCost); err != nil {
				return err
			}
		}
		if hostile {
			for i := 0; i < p.hogN; i++ {
				client := hogKA
				if i%2 == 1 {
					client = hogNKA
				}
				if err := issue(client, "hog", p.hogCost); err != nil {
					return err
				}
			}
		}
		clk.Sleep(p.think)
		if mon != nil {
			mon.Tick()
		}
		return nil
	}
	for r := 0; r < p.hostileRounds; r++ {
		if err := round(true); err != nil {
			return nil, err
		}
	}
	for r := 0; r < p.calmRounds; r++ {
		if err := round(false); err != nil {
			return nil, err
		}
	}
	cell.Elapsed = clk.Now().Sub(start)

	rep, err := rt.Shutdown(p.grace)
	if err != nil {
		return nil, err
	}
	cell.DrainClean = rep.Clean && rep.LeakedRequests == 0

	s := rt.Stats()
	if s.InflightRequests != 0 {
		return nil, fmt.Errorf("in-flight request leak after drain: %d", s.InflightRequests)
	}
	sink.mu.Lock()
	conserve := sink.served == s.Served && sink.shed == s.Shed &&
		sink.breaker == s.BreakerShed && sink.drain == s.DrainShed && sink.panics == s.Panics
	sinkLine := fmt.Sprintf("sink served=%d shed=%d breaker=%d drain=%d panics=%d",
		sink.served, sink.shed, sink.breaker, sink.drain, sink.panics)
	sink.mu.Unlock()
	if !conserve {
		return nil, fmt.Errorf("stats conservation violated: %s vs stats served=%d shed=%d breaker=%d drain=%d panics=%d",
			sinkLine, s.Served, s.Shed, s.BreakerShed, s.DrainShed, s.Panics)
	}

	cell.Shed, cell.BreakerShed, cell.Refused = s.Shed, s.BreakerShed, s.Refused
	cell.Faults = inj.Stats()
	secs := cell.Elapsed.Seconds()
	if secs > 0 {
		cell.GoodRate = float64(cell.GoodServed) / secs
		cell.HogRate = float64(cell.HogServed) / secs
	}
	rt.Enforcer().Sync(func() {
		if total := root.Usage().CPU(); total > 0 {
			cell.HogCPUPct = 100 * float64(hog.Usage().CPU()) / float64(total)
		}
	})
	if wd != nil {
		cell.Engagements, cell.Restores = wd.Engagements(), wd.Restores()
		if msg := mon.Alert().SelfCheck(); msg != "" {
			return nil, fmt.Errorf("alert self-check: %s", msg)
		}
		if checkJournal && cell.Engagements > 0 {
			var clamped, unclamped bool
			for _, ev := range mon.Alert().Events() {
				if ev.Check != alert.WatchdogCheckName {
					continue
				}
				if strings.Contains(ev.Detail, "clamped runaway") {
					clamped = true
				}
				if strings.Contains(ev.Detail, "unclamped") {
					unclamped = true
				}
			}
			if !clamped || !unclamped {
				return nil, fmt.Errorf("watchdog journal incomplete: clamp=%t unclamp=%t", clamped, unclamped)
			}
		}
	}
	return cell, nil
}
