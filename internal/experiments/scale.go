package experiments

import (
	"fmt"

	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/sim"
)

// ScaleCounts is the concurrent-connection axis of the datacenter-scale
// experiment: the kernel ramps to N established connections and then
// serves request traffic over a hot subset. Quick runs cap the ramp.
var ScaleCounts = []int{10_000, 100_000, 1_000_000}

// scaleQuickCounts keeps -quick (and the CI scale smoke) fast.
var scaleQuickCounts = []int{10_000, 50_000, 100_000}

const (
	// scaleSynBatch paces connection-request injection: batches stay
	// under the policed per-container backlog limit
	// (DefaultSYNPoliceFrac × DefaultNetBacklog = 64), so a policed
	// kernel admits the whole well-behaved ramp without drops.
	scaleSynBatch = 48
	// scaleSynGap is the simulated time budget per injected SYN before
	// the next batch: enough for interrupt + demux + SYN protocol work.
	scaleSynGap = 150 * sim.Microsecond

	// scaleDataBatch/scaleDataGap pace the hot-connection request
	// traffic, staying under DefaultNetBacklog.
	scaleDataBatch = 256
	scaleDataGap   = 120 * sim.Microsecond

	// scaleHotFrac is the fraction of established connections that carry
	// request traffic once the ramp completes — the datacenter shape:
	// millions parked, a small working set hot.
	scaleHotFrac = 100 // 1 in scaleHotFrac

	scaleRounds = 3 // requests per hot connection
)

// Scale is the datacenter-scale extension experiment: flyweight
// connection state under all three kernel modes, policed and unpoliced.
// Each point ramps a fresh kernel to N concurrent established
// connections (verifying the conn table holds exactly N), drives
// scaleRounds requests over the hot subset, and tears everything down
// (verifying the table drains to zero). The reported figure is the
// served request rate during the hot-traffic phase, in simulated req/s.
func Scale(opt Options) (*metrics.Table, error) {
	opt = opt.withDefaults(2*sim.Second, 10*sim.Second)
	counts := ScaleCounts
	if opt.Window <= 2*sim.Second {
		counts = scaleQuickCounts
	}
	type config struct {
		name    string
		mode    kernel.Mode
		policed bool
	}
	configs := []config{
		{"unmod", kernel.ModeUnmodified, false},
		{"unmod+police", kernel.ModeUnmodified, true},
		{"lrp", kernel.ModeLRP, false},
		{"lrp+police", kernel.ModeLRP, true},
		{"rc", kernel.ModeRC, false},
		{"rc+police", kernel.ModeRC, true},
	}
	type point struct{ ci, gi int }
	pts := make([]point, 0, len(counts)*len(configs))
	for ci := range counts {
		for gi := range configs {
			pts = append(pts, point{ci, gi})
		}
	}
	rates, err := runPointsErr(opt.Parallel, len(pts), func(i int) (float64, error) {
		p := pts[i]
		c := configs[p.gi]
		rate, err := scalePoint(counts[p.ci], c.mode, c.policed, opt)
		if err != nil {
			return 0, fmt.Errorf("%s at %d conns: %w", c.name, counts[p.ci], err)
		}
		return rate, nil
	})
	if err != nil {
		return nil, err
	}
	headers := []string{"open conns"}
	for _, c := range configs {
		headers = append(headers, c.name)
	}
	t := metrics.NewTable(
		"Datacenter scale: hot-subset request rate with N established connections (req/s)",
		headers...)
	for ci, n := range counts {
		row := []any{fmt.Sprintf("%d", n)}
		for gi := range configs {
			row = append(row, rates[ci*len(configs)+gi])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// connEstablished is the no-op SYN-ACK callback of the ramp clients (the
// driver tracks established connections through the accept queue).
func connEstablished(*kernel.Conn) {}

// scalePoint runs one (conns, mode, policed) cell and returns the hot
// request rate. Every phase is verified: the ramp must establish exactly
// n connections, every request must be served, and teardown must drain
// the connection table to zero.
func scalePoint(n int, mode kernel.Mode, policed bool, opt Options) (float64, error) {
	eng := sim.NewEngine(opt.Seed)
	k := kernel.New(eng, mode, kernel.DefaultCosts())
	if policed {
		k.Police.Enabled = true
	}
	p := k.NewProcess("fe")
	conns := make([]*kernel.Conn, 0, n)
	buf := make([]*kernel.Conn, 4*scaleSynBatch)
	ls, err := k.Listen(p, kernel.ListenConfig{
		Local:         ServerAddr,
		SynBacklog:    1 << 16,
		AcceptBacklog: 1 << 16,
	})
	if err != nil {
		return 0, err
	}
	drain := func() {
		for {
			m := ls.AcceptBatch(buf)
			if m == 0 {
				return
			}
			conns = append(conns, buf[:m]...)
		}
	}
	// Ramp: paced SYN batches, accepted in batches between injections.
	issued, stalls := 0, 0
	for len(conns) < n {
		batch := scaleSynBatch
		if rem := n - issued; rem < batch {
			batch = rem
		}
		for j := 0; j < batch; j++ {
			src := netsim.Addr{
				IP:   ClientNet + netsim.IP(1+issued/60000),
				Port: uint16(1024 + issued%60000),
			}
			k.ClientSend(kernel.ConnectPacket(src, ServerAddr, connEstablished))
			issued++
		}
		before := len(conns)
		eng.RunUntil(eng.Now().Add(sim.Duration(batch+1) * scaleSynGap))
		drain()
		if len(conns) == before {
			if stalls++; stalls > 1000 {
				return 0, fmt.Errorf("ramp stalled at %d/%d conns (SYN drops %d)",
					len(conns), n, ls.SynDrops())
			}
		} else {
			stalls = 0
		}
	}
	if open := k.OpenConns(); open != n {
		return 0, fmt.Errorf("ramped to %d open conns, want %d", open, n)
	}

	// Hot traffic: requests over the working set, paced under the
	// protocol backlog bound.
	hot := n / scaleHotFrac
	if hot < 100 {
		hot = 100
	}
	if hot > n {
		hot = n
	}
	served := 0
	for _, c := range conns[:hot] {
		c.SetOnRequest(func(*kernel.Conn, any) { served++ })
	}
	start := eng.Now()
	for r := 0; r < scaleRounds; r++ {
		for i := 0; i < hot; i += scaleDataBatch {
			m := hot - i
			if m > scaleDataBatch {
				m = scaleDataBatch
			}
			for j := i; j < i+m; j++ {
				c := conns[j]
				k.ClientSend(kernel.DataPacket(c.Client(), ServerAddr, c.ID(), 64, r))
			}
			eng.RunUntil(eng.Now().Add(sim.Duration(m+1) * scaleDataGap))
		}
	}
	eng.RunUntil(eng.Now().Add(50 * sim.Millisecond))
	elapsed := eng.Now().Sub(start)
	if served != scaleRounds*hot {
		return 0, fmt.Errorf("served %d of %d hot requests", served, scaleRounds*hot)
	}

	// Teardown: the conn table must drain completely.
	for _, c := range conns {
		c.Close()
	}
	if open := k.OpenConns(); open != 0 {
		return 0, fmt.Errorf("%d conns still open after teardown", open)
	}
	return float64(served) / elapsed.Seconds(), nil
}
