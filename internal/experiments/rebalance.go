package experiments

import (
	"fmt"
	"hash/fnv"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/rebalance"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/workload"
)

// The rebalance ablation reproduces the adaptive-rebalancing claim
// (C-Balancer, PAPERS.md) on the one resource whose enforcement is
// identical in every kernel mode: the buffer-cache quota (§4.4's
// MemLimit-as-cache-quota). Two guests hold static 16 KB quotas in a
// 32 KB quota pool; the "season" — which guest's hot set the crowd is
// hammering — shifts mid-run. A static split strands half the pool on
// the idle guest, so the in-season guest cycles a hot set larger than
// its quota through its own LRU (the cache self-evicts within the
// over-quota subtree) and keeps falling to disk speed. The adaptive
// controller reads each guest's miss counters
// (kernel.FileCache.ContainerStats) and moves MemQuota toward the
// misses, so the in-season hot set fits and stays resident. The
// no-damping arm strips every safety mechanism instead: full-pool
// steps with no deadband, cooldown or demand smoothing whipsaw the
// quota between the guests on per-tick miss noise, the oscillation
// detector trips, and the controller disarms back to the exact static
// split — graceful degradation, measured.
const (
	// rebalanceCacheCap is the cache's global capacity. It is
	// deliberately much larger than the quota pool so the per-guest
	// MemQuota — the thing the controller actuates — is the only
	// binding constraint; were the global LRU the bottleneck, quota
	// placement could not affect residency at all.
	rebalanceCacheCap = 512 * 1024
	// rebalanceGuestQuota is the static per-guest split the adaptive
	// arms start from (and the disarmed controller must restore
	// exactly). The pool total is 2× this.
	rebalanceGuestQuota = 16 * 1024
	// rebalanceHotDocs is each guest's in-season hot set (1 KB
	// documents): larger than the static split, smaller than what the
	// controller can grant, so quota placement decides hit or miss —
	// and under LRU the cliff is sharp: a round-robin cycle through
	// one-more-document-than-fits misses every single time. The set is
	// sized so a cold fill (one disk read per document, the disk is a
	// serialized ms-scale queue) completes in a small fraction of a
	// season phase.
	rebalanceHotDocs = 24
	// An off-season guest touches one tiny document that fits under the
	// starvation floor (5% of 32 KB), so its demand signal is
	// genuinely near zero — the solo phases have a stable fixed point
	// instead of a winner-take-all tug of war.
	rebalanceBgDocs = 1
	// Every rebalanceColdEvery-th in-season request fetches a one-shot
	// "cold" document (the web's long tail). The trickle does three
	// jobs: it keeps an honest miss signal alive on a busy guest; its
	// inserts are what reclaim a shrunk quota (the cache drains an
	// over-quota subtree to its limit on the next insert, so a quota
	// the controller takes away is actually given up); and it is
	// exactly the per-tick noise that separates damped from undamped
	// control — the smoothed, deadbanded arm ignores a stray miss, the
	// no-damping arm slams the whole pool toward it.
	rebalanceColdEvery = 16
	// rebalanceClients is the closed-loop client count per guest.
	rebalanceClients = 6
)

// Rebalance policies, in row order.
const (
	PolicyStatic   = "static"
	PolicyAdaptive = "adaptive"
	PolicyNoDamp   = "adaptive-no-damping"
)

// rebalanceShifts are the load-shift patterns, in row order. Flash: a
// flash crowd arrives at guest B mid-window while guest A's audience
// persists — a solo phase followed by sustained contention (two hot
// sets that together exceed the quota pool), the regime where undamped
// control thrashes. Diurnal: the crowd drifts from A to B through a
// contended shoulder — solo A, both, solo B.
var rebalanceShifts = []string{"flash", "diurnal"}

// rebalancePolicies in row order.
var rebalancePolicies = []string{PolicyStatic, PolicyAdaptive, PolicyNoDamp}

// RebalanceCell is one ablation cell: a load-shift pattern × kernel
// mode × quota policy.
type RebalanceCell struct {
	Shift  string
	Mode   kernel.Mode
	Policy string
	// Goodput is both guests' aggregate completion rate (req/s) over
	// the post-warmup window; HitPct the cache hit rate over the same
	// window.
	Goodput float64
	HitPct  float64
	// Controller counters (zero for the static policy) and the FNV-64a
	// digest of its decision journal, for the determinism gate.
	Steps   uint64
	Disarms uint64
	Journal uint64
}

// RebalanceResult holds every cell in deterministic order plus the
// -check gate outcomes.
type RebalanceResult struct {
	Cells []RebalanceCell
	// Deterministic reports that the -check double run compared every
	// cell byte-identical (false when the gate did not run).
	Deterministic bool
}

// Cell returns the cell for (shift, mode, policy).
func (r *RebalanceResult) Cell(shift string, mode kernel.Mode, policy string) RebalanceCell {
	for _, c := range r.Cells {
		if c.Shift == shift && c.Mode == mode && c.Policy == policy {
			return c
		}
	}
	return RebalanceCell{}
}

// Table renders the ablation.
func (r *RebalanceResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Extension: adaptive cache-quota rebalancing under load shifts (32 KB quota pool)",
		"Shift", "Mode", "Policy", "Goodput (req/s)", "Hit rate (%)", "Steps", "Disarmed")
	yn := map[uint64]string{0: "no", 1: "yes"}
	for _, c := range r.Cells {
		t.AddRow(c.Shift, c.Mode.String(), c.Policy, c.Goodput, c.HitPct, c.Steps, yn[min(c.Disarms, 1)])
	}
	return t
}

// Rebalance runs the static-vs-adaptive-vs-no-damping ablation over
// both shift patterns and all three kernel modes. With opt.Invariants
// (-check) it additionally re-runs every cell and enforces the gates:
// byte-identical double run, adaptive goodput strictly above static in
// every (shift, mode), the no-damping arm tripping the oscillation
// detector exactly once, and the adaptive arm staying armed. The
// starvation-floor and conservation audits run inside every cell
// regardless.
func Rebalance(opt Options) (*RebalanceResult, error) {
	opt = opt.withDefaults(2*sim.Second, 6*sim.Second)
	modes := []kernel.Mode{kernel.ModeUnmodified, kernel.ModeLRP, kernel.ModeRC}
	nPol := len(rebalancePolicies)
	cells, err := runPointsErr(opt.Parallel, len(rebalanceShifts)*len(modes)*nPol,
		func(i int) (RebalanceCell, error) {
			return rebalancePoint(rebalanceShifts[i/(len(modes)*nPol)], modes[(i/nPol)%len(modes)],
				rebalancePolicies[i%nPol], opt)
		})
	if err != nil {
		return nil, err
	}
	res := &RebalanceResult{Cells: cells}
	if !opt.Invariants {
		return res, nil
	}

	again, err := runPointsErr(opt.Parallel, len(cells), func(i int) (RebalanceCell, error) {
		c := cells[i]
		return rebalancePoint(c.Shift, c.Mode, c.Policy, opt)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if again[i] != c {
			return nil, fmt.Errorf("rebalance: determinism gate: cell %s/%s/%s differs across runs: %+v vs %+v",
				c.Shift, c.Mode, c.Policy, c, again[i])
		}
	}
	res.Deterministic = true

	for _, shift := range rebalanceShifts {
		for _, mode := range modes {
			static, adaptive := res.Cell(shift, mode, PolicyStatic), res.Cell(shift, mode, PolicyAdaptive)
			if !(adaptive.Goodput > static.Goodput) {
				return nil, fmt.Errorf("rebalance: goodput gate: %s/%s adaptive %.1f req/s does not beat static %.1f req/s",
					shift, mode, adaptive.Goodput, static.Goodput)
			}
			if adaptive.Disarms != 0 {
				return nil, fmt.Errorf("rebalance: stability gate: %s/%s adaptive arm disarmed under organic load", shift, mode)
			}
			if nd := res.Cell(shift, mode, PolicyNoDamp); nd.Disarms != 1 {
				return nil, fmt.Errorf("rebalance: disarm gate: %s/%s no-damping arm disarmed %d time(s), want 1",
					shift, mode, nd.Disarms)
			}
		}
	}
	return res, nil
}

// Guest seasons: in-season clients cycle the big hot set, off-season
// clients touch the tiny background document.
const (
	seasonOff = iota
	seasonIn
)

// rebalancePoint runs one cell: two cache-sharing guests, the shift
// schedule, and the cell's quota policy.
func rebalancePoint(shift string, mode kernel.Mode, policy string, opt Options) (RebalanceCell, error) {
	cell := RebalanceCell{Shift: shift, Mode: mode, Policy: policy}
	e := newEnv(mode, opt)
	e.k.FileCache().SetCapacity(rebalanceCacheCap)
	tel := telemetry.New(telemetry.Config{})
	e.k.AttachTelemetry(tel)

	mkGuest := func(name string, port uint16) (*rc.Container, netsim.Addr, error) {
		root := rc.MustNew(nil, rc.FixedShare, name, rc.Attributes{})
		cacheHolder := rc.MustNew(root, rc.FixedShare, name+"-cache",
			rc.Attributes{MemLimit: rebalanceGuestQuota})
		addr := netsim.Addr{IP: ServerAddr.IP, Port: port}
		srv, err := httpsim.NewServer(httpsim.Config{
			Kernel: e.k, Name: name, Addr: addr, API: httpsim.EventAPI,
			PerConnContainers: mode == kernel.ModeRC,
			Parent:            root,
			CacheContainer:    cacheHolder,
		})
		if err != nil {
			return nil, addr, err
		}
		// Only ModeRC processes have a default container to reparent;
		// the cache quota itself is mode-independent.
		if dc := srv.Process().DefaultContainer; dc != nil {
			if err := dc.SetParent(root); err != nil {
				return nil, addr, err
			}
		}
		return cacheHolder, addr, nil
	}
	aCache, aAddr, err := mkGuest("guestA", 8001)
	if err != nil {
		return cell, err
	}
	bCache, bAddr, err := mkGuest("guestB", 8002)
	if err != nil {
		return cell, err
	}

	var ctrl *rebalance.Controller
	if policy != PolicyStatic {
		// Tuning for this plant: the miss signal is a count, so its
		// window-to-window share is noisy (a handful of misses per
		// window near equilibrium), and proportional control is
		// self-defeating — granting quota to the needy guest shrinks its
		// miss share, so the target recedes as it is approached. The
		// damped arm smooths demand over a longer window and, crucially,
		// spaces steps so one member can apply at most
		// ⌈OscWindow/(Cooldown+1)⌉ = 4 steps inside the 64-tick detector
		// window: fewer than OscMaxFlips (6), so equilibrium dither
		// cannot trip the detector — the actuation bandwidth sits below
		// the trip frequency by construction.
		cfg := rebalance.Config{
			CooldownTicks:     16,
			DemandWindowTicks: 32,
		}
		if policy == PolicyNoDamp {
			// Strip every damping mechanism: full-pool steps, no
			// cooldown, no deadband, raw per-tick demand. The detector
			// itself stays armed, with its window widened to the plant's
			// time constant — quota moves only change miss behavior a
			// request-service-time later, so flips accumulate at the
			// request rate, not the tick rate.
			cfg.StepFrac = 1
			cfg.NoCooldown = true
			cfg.NoDeadband = true
			cfg.DemandWindowTicks = 1
			cfg.OscWindowTicks = 256
			cfg.OscMaxFlips = rebalance.DefaultOscMaxFlips
		}
		ctrl, err = rebalance.Attach(tel, cfg)
		if err != nil {
			return cell, err
		}
		fc := e.k.FileCache()
		missesOf := func(c *rc.Container) func() int64 {
			return func() int64 {
				_, m := fc.ContainerStats(c)
				return int64(m)
			}
		}
		if err := ctrl.AddPool(rebalance.PoolConfig{
			Name:     "cache",
			Resource: rebalance.MemQuota,
			Members: []rebalance.Member{
				{Container: aCache, Demand: missesOf(aCache)},
				{Container: bCache, Demand: missesOf(bCache)},
			},
		}); err != nil {
			return cell, err
		}
		if e.check != nil {
			e.check.MustWatchCheck("rebalance-starvation", ctrl.AuditFloors)
			e.check.MustWatchCheck("rebalance-conservation", ctrl.AuditConservation)
		}
	}

	// The season schedule. Guest A warms up in season, B off.
	aSeason, bSeason := seasonIn, seasonOff
	W := opt.Window
	switch shift {
	case "flash":
		// The flash crowd arrives at B; A's audience persists.
		e.eng.After(opt.Warmup+W/2, func() { bSeason = seasonIn })
	case "diurnal":
		// The crowd drifts A → B through a contended shoulder.
		e.eng.After(opt.Warmup+W*30/100, func() { bSeason = seasonIn })
		e.eng.After(opt.Warmup+W*70/100, func() { aSeason = seasonOff })
	default:
		return cell, fmt.Errorf("rebalance: unknown shift %q", shift)
	}
	// Document namespaces are per guest (the cache is keyed by path):
	// the working sets must be disjoint or quota placement is moot.
	// The sequence is shared round-robin across the guest's clients
	// (the cachewar idiom) so they do not march in lockstep through
	// the same document.
	pathFor := func(name string, season *int) func(uint64) string {
		seq := uint64(0)
		return func(uint64) string {
			seq++
			i := seq
			if *season == seasonIn {
				if i%rebalanceColdEvery == 0 {
					return fmt.Sprintf("/%s/cold/%d", name, i)
				}
				return fmt.Sprintf("/%s/hot/%d", name, i%rebalanceHotDocs)
			}
			return fmt.Sprintf("/%s/bg/%d", name, i%rebalanceBgDocs)
		}
	}
	aPop := workload.MustStartPopulation(rebalanceClients, workload.ClientConfig{
		Kernel:  e.k,
		Src:     netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:     aAddr,
		PathFor: pathFor("guestA", &aSeason),
	})
	bPop := workload.MustStartPopulation(rebalanceClients, workload.ClientConfig{
		Kernel:  e.k,
		Src:     netsim.Addr{IP: ClientNet + 0x40, Port: 1024},
		Dst:     bAddr,
		PathFor: pathFor("guestB", &bSeason),
	})

	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	aPop.ResetStats()
	bPop.ResetStats()
	h0, m0, _ := e.k.FileCache().Stats()
	e.eng.RunUntil(start.Add(opt.Warmup + W))
	h1, m1, _ := e.k.FileCache().Stats()

	cell.Goodput = aPop.Rate(e.eng.Now()) + bPop.Rate(e.eng.Now())
	if acc := (h1 - h0) + (m1 - m0); acc > 0 {
		cell.HitPct = 100 * float64(h1-h0) / float64(acc)
	}

	if ctrl != nil {
		// The safety invariants hold in every cell, gates or not: no
		// allocation below the starvation floor, the pool total
		// conserved, and — when the detector disarmed the controller —
		// the static quotas restored verbatim.
		for name, audit := range map[string]func() string{
			"starvation":   ctrl.AuditFloors,
			"conservation": ctrl.AuditConservation,
			"restore":      ctrl.AuditRestore,
		} {
			if v := audit(); v != "" {
				return cell, fmt.Errorf("rebalance: %s/%s/%s %s audit: %s", shift, mode, policy, name, v)
			}
		}
		cell.Steps, cell.Disarms = ctrl.Steps(), ctrl.Disarms()
		h := fnv.New64a()
		if err := ctrl.WriteJSONL(h); err != nil {
			return cell, err
		}
		cell.Journal = h.Sum64()
	}
	return cell, nil
}
