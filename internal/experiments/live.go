package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"rescon/internal/metrics"
	"rescon/internal/rc"
	"rescon/internal/rcruntime"
	"rescon/internal/sim"
)

// The live experiment is the real-runtime bridge: the same isolation
// story as the simulator's policed-vs-unpoliced ablations, reproduced on
// a *real* net/http server over a loopback listener, governed by
// rcruntime.Runtime. Time is virtual — a lockstep clock is injected into
// the runtime and the closed-loop load generator, handlers "burn" CPU by
// advancing it, and requests are issued sequentially in a fixed order —
// so goodput numbers are bit-identical run to run even though every
// request crosses a real TCP connection and the real net/http stack.
// Only the per-request accounting-overhead microbenchmark uses the wall
// clock (and varies run to run, exactly like Table 1's cost column).

// lockstepClock is the injected rcruntime.Clock: Sleep advances virtual
// time instead of waiting.
type lockstepClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *lockstepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *lockstepClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// liveParams are the knobs of one live cell.
type liveParams struct {
	rounds     int
	window     time.Duration
	goodN      int           // well-behaved closed-loop clients
	goodCost   time.Duration // per-request handler cost
	floodN     int           // flood clients
	floodCost  time.Duration
	floodLimit float64       // flood subtree Limit when policed (0 = unpoliced)
	think      time.Duration // per-round idle advance
	shedCost   time.Duration // virtual cost of a 429 (parse + middleware, no handler)
	refuseCost time.Duration // virtual cost of a connection refused at accept
}

func liveParamsFor(opt Options) liveParams {
	p := liveParams{
		rounds:     50,
		window:     100 * time.Millisecond,
		goodN:      4,
		goodCost:   2 * time.Millisecond,
		floodN:     16,
		floodCost:  10 * time.Millisecond,
		floodLimit: 0.1,
		think:      time.Millisecond,
		shedCost:   200 * time.Microsecond,
		refuseCost: 50 * time.Microsecond,
	}
	if opt.Window != 0 && opt.Window <= 2*sim.Second {
		p.rounds = 12 // -quick
	}
	return p
}

// LiveCell is one config's outcome: goodput in requests per *virtual*
// second, per-tenant accounting, and the shed/refused tallies.
type LiveCell struct {
	// Config names the cell (policed / unpoliced).
	Config string
	// GoodRate and FloodRate are served requests per virtual second.
	GoodRate, FloodRate float64
	// GoodServed/FloodServed/Shed/Refused count request fates across the
	// run: completed per tenant, 429s at the middleware, and connections
	// refused at accept.
	GoodServed, FloodServed, Shed, Refused int
	// FloodCPUPct is the flood subtree's share of all CPU charged to the
	// hierarchy, in percent — what the books say the flood cost.
	FloodCPUPct float64
	// Elapsed is the virtual time the run consumed.
	Elapsed time.Duration
}

// LiveResult is the live experiment's outcome.
type LiveResult struct {
	// Cells hold the unpoliced and policed runs, in that order.
	Cells []LiveCell
	// OverheadNs is the measured per-request overhead of the governed
	// path (binder + admission + accounting) over a bare handler, in
	// wall-clock nanoseconds — the Table-1 cost story for the bridge.
	// Non-deterministic (real clock), like Table 1's cost column.
	OverheadNs float64
}

// Table renders the deterministic goodput cells.
func (r *LiveResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Live bridge: real net/http over loopback, virtual-time lockstep",
		"config", "good req/s", "flood req/s", "flood CPU %", "shed 429", "refused accepts")
	for _, c := range r.Cells {
		t.AddRow(c.Config, c.GoodRate, c.FloodRate, c.FloodCPUPct, c.Shed, c.Refused)
	}
	return t
}

// Live runs the real-runtime bridge experiment: a live net/http server
// on a loopback listener, governed by rcruntime, under a well-behaved
// tenant plus a flood tenant — once unpoliced, once policed (flood
// subtree limited, over-budget accepts refused). With opt.Invariants it
// returns an error unless the policed run's well-behaved goodput
// strictly exceeds the unpoliced run's.
func Live(opt Options) (*LiveResult, error) {
	p := liveParamsFor(opt)
	res := &LiveResult{}
	unpoliced := p
	unpoliced.floodLimit = 0
	for _, cell := range []struct {
		name string
		p    liveParams
	}{{"unpoliced", unpoliced}, {"policed", p}} {
		c, err := runLiveCell(cell.name, cell.p)
		if err != nil {
			return nil, fmt.Errorf("live %s: %w", cell.name, err)
		}
		res.Cells = append(res.Cells, *c)
	}
	res.OverheadNs = measureLiveOverheadNs()
	if opt.Invariants {
		up, pol := res.Cells[0], res.Cells[1]
		if pol.GoodRate <= up.GoodRate {
			return nil, fmt.Errorf("isolation failed: policed good goodput %.3f req/s does not exceed unpoliced %.3f req/s",
				pol.GoodRate, up.GoodRate)
		}
	}
	return res, nil
}

// runLiveCell boots the governed server and drives the closed-loop load
// generator for p.rounds rounds of sequential, fixed-order requests.
func runLiveCell(name string, p liveParams) (*LiveCell, error) {
	clk := &lockstepClock{}
	root := rc.MustNew(nil, rc.FixedShare, "live", rc.Attributes{})
	good := rc.MustNew(root, rc.FixedShare, "good", rc.Attributes{})
	flood := rc.MustNew(root, rc.FixedShare, "flood", rc.Attributes{Limit: p.floodLimit})

	cfg := rcruntime.Config{
		Root:     root,
		Window:   p.window,
		MaxDelay: rcruntime.NoDelay, // shed, don't block: the load is closed-loop
	}
	policed := p.floodLimit > 0
	if policed {
		// Refuse the flood's reconnects at accept while its subtree is
		// over budget — new work shed for the cost of a close(2), while
		// the good tenant's established connection keeps serving.
		cfg.Policy = rcruntime.AcceptPolicy{Enabled: true, OverBudgetOf: flood}
	}
	rt, err := rcruntime.NewRuntime(cfg,
		rcruntime.WithClock(clk),
		rcruntime.WithBinder(rcruntime.HeaderBinder("X-RC-Tenant",
			map[string]*rc.Container{"good": good, "flood": flood}, nil)))
	if err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		cost, err := time.ParseDuration(r.Header.Get("X-Cost"))
		if err == nil && cost > 0 {
			clk.Sleep(cost) // burn virtual CPU
		}
		_, _ = io.WriteString(w, "ok\n")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: rt.Middleware(mux)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(rt.Listener(ln))
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()
	base := "http://" + ln.Addr().String() + "/work"

	// The good tenant keeps its connections alive (established work).
	// Half the flood clients hold an established connection too — their
	// over-budget requests are shed by the middleware (429, after the
	// request is parsed); the other half reconnect for every request
	// (new work) and are refused at accept, before a byte is read — the
	// two shedding layers of the paper's defense, both exercised.
	goodClient := &http.Client{Transport: &http.Transport{}}
	floodKA := &http.Client{Transport: &http.Transport{}}
	floodNKA := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer goodClient.CloseIdleConnections()
	defer floodKA.CloseIdleConnections()

	cell := &LiveCell{Config: name}
	issue := func(client *http.Client, tenant string, cost time.Duration) error {
		req, err := http.NewRequest("GET", base, nil)
		if err != nil {
			return err
		}
		req.Header.Set("X-RC-Tenant", tenant)
		req.Header.Set("X-Cost", cost.String())
		resp, err := client.Do(req)
		if err != nil {
			// Connection refused at accept: the policed listener closed
			// it before a byte of the request was processed.
			cell.Refused++
			clk.Sleep(p.refuseCost)
			return nil
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if tenant == "good" {
				cell.GoodServed++
			} else {
				cell.FloodServed++
			}
		case http.StatusTooManyRequests:
			cell.Shed++
			clk.Sleep(p.shedCost)
		default:
			return fmt.Errorf("unexpected status %d", resp.StatusCode)
		}
		return nil
	}

	start := clk.Now()
	for round := 0; round < p.rounds; round++ {
		for i := 0; i < p.goodN; i++ {
			if err := issue(goodClient, "good", p.goodCost); err != nil {
				return nil, err
			}
		}
		for i := 0; i < p.floodN; i++ {
			client := floodKA
			if i%2 == 1 {
				client = floodNKA
			}
			if err := issue(client, "flood", p.floodCost); err != nil {
				return nil, err
			}
		}
		clk.Sleep(p.think)
	}
	cell.Elapsed = clk.Now().Sub(start)
	secs := cell.Elapsed.Seconds()
	if secs > 0 {
		cell.GoodRate = float64(cell.GoodServed) / secs
		cell.FloodRate = float64(cell.FloodServed) / secs
	}
	if total := root.Usage().CPU(); total > 0 {
		cell.FloodCPUPct = 100 * float64(flood.Usage().CPU()) / float64(total)
	}
	return cell, nil
}

// measureLiveOverheadNs times the governed handler path (binder +
// admission + per-request accounting on the wall clock) against the bare
// handler and returns the per-request difference in nanoseconds — the
// bridge's analogue of Table 1's primitive costs.
func measureLiveOverheadNs() float64 {
	root := rc.MustNew(nil, rc.FixedShare, "bench", rc.Attributes{})
	rt := rcruntime.MustNewRuntime(rcruntime.Config{Root: root})
	bare := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	governed := rt.Middleware(bare)
	req := httptest.NewRequest("GET", "/", nil)

	const iters = 20000
	run := func(h http.Handler) float64 {
		for i := 0; i < iters/10; i++ { // warmup
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	bareNs := run(bare)
	governedNs := run(governed)
	d := governedNs - bareNs
	if d < 0 {
		d = 0 // timer noise on a loaded machine
	}
	return d
}
