package experiments

import (
	"testing"

	"rescon/internal/sim"
)

func liveTestOpts() Options {
	return Options{Seed: 7, Warmup: sim.Second, Window: 2 * sim.Second} // quick params
}

// TestLiveIsolation is the acceptance story of the real-runtime bridge:
// a live net/http server on loopback, flooded by a misbehaving tenant —
// policing (container limit + over-budget accept refusal) must strictly
// improve the well-behaved tenant's goodput, both shedding layers must
// actually fire, and the books must show the flood's CPU share crushed.
func TestLiveIsolation(t *testing.T) {
	res, err := Live(liveTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	up, pol := res.Cells[0], res.Cells[1]
	if up.Config != "unpoliced" || pol.Config != "policed" {
		t.Fatalf("cell order %q, %q", up.Config, pol.Config)
	}
	if pol.GoodRate <= up.GoodRate {
		t.Fatalf("policed good goodput %.3f req/s does not exceed unpoliced %.3f req/s",
			pol.GoodRate, up.GoodRate)
	}
	if up.Shed != 0 || up.Refused != 0 {
		t.Fatalf("unpoliced cell shed %d / refused %d, want 0 / 0", up.Shed, up.Refused)
	}
	if pol.Shed == 0 {
		t.Fatal("policed cell never shed at the middleware (429 layer not exercised)")
	}
	if pol.Refused == 0 {
		t.Fatal("policed cell never refused at accept (listener layer not exercised)")
	}
	// The good tenant is fully served in both cells — the closed loop
	// issues the same demand; only the flood is cut.
	if pol.GoodServed != up.GoodServed {
		t.Fatalf("good served %d policed vs %d unpoliced, want equal demand served", pol.GoodServed, up.GoodServed)
	}
	if pol.FloodCPUPct >= up.FloodCPUPct {
		t.Fatalf("flood CPU share not reduced: %.1f%% policed vs %.1f%% unpoliced",
			pol.FloodCPUPct, up.FloodCPUPct)
	}
	if res.OverheadNs < 0 {
		t.Fatalf("negative overhead %v", res.OverheadNs)
	}
}

// TestLiveDeterministic: the goodput cells are bit-identical across runs
// — virtual time makes the real-HTTP run reproducible. (OverheadNs is
// wall-clock and excluded, like Table 1's cost column.)
func TestLiveDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs two full live cells twice")
	}
	a, err := Live(liveTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Live(liveTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs across runs:\n%+v\n%+v", i, a.Cells[i], b.Cells[i])
		}
	}
	if a.Table().String() != b.Table().String() {
		t.Fatal("rendered tables differ across runs")
	}
}

// TestLiveInvariantGate: with Invariants set, Live enforces the
// isolation acceptance criterion itself (the CI live-smoke contract).
func TestLiveInvariantGate(t *testing.T) {
	opt := liveTestOpts()
	opt.Invariants = true
	if _, err := Live(opt); err != nil {
		t.Fatalf("isolation gate tripped on a healthy run: %v", err)
	}
}
