package experiments

import (
	"fmt"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/metrics"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

// CacheWar is an extension experiment for §4.4's "physical memory":
// two guests share the filesystem buffer cache. Guest B serves a small
// hot document set (cache-resident when left alone); guest A scans a huge
// corpus, a streaming workload whose insertions flood the LRU. Without
// memory isolation A's scan evicts B's hot set and B becomes disk-bound;
// with a container memory quota on A's subtree, A's scan evicts only its
// own pages and B keeps its cache hits — per-activity control of physical
// memory via the hierarchy.
func CacheWar(opt Options) *metrics.Table {
	opt = opt.withDefaults(10*sim.Second, 20*sim.Second)
	// Guest B touches each hot document only every ~4 s by design (the
	// slow reuse is what makes it pollutable), so the hot set needs a
	// long warmup regardless of the caller's quick settings.
	if opt.Warmup < 10*sim.Second {
		opt.Warmup = 10 * sim.Second
	}
	if opt.Window < 15*sim.Second {
		opt.Window = 15 * sim.Second
	}
	t := metrics.NewTable("Extension: cache isolation between guests (shared 256 KB buffer cache)",
		"Configuration", "B hit rate (%)", "B throughput (req/s)", "B latency (ms)", "A throughput (req/s)")
	for _, quota := range []bool{false, true} {
		hit, btput, blat, atput := cacheWarPoint(quota, opt)
		name := "no memory isolation"
		if quota {
			name = "guest A capped at 64 KB cache (MemLimit)"
		}
		t.AddRow(name, hit, btput, blat, atput)
	}
	return t
}

func cacheWarPoint(quota bool, opt Options) (hitPct, bTput, bLatMs, aTput float64) {
	e := newEnv(kernel.ModeRC, opt)
	e.k.FileCache().SetCapacity(256 * 1024)

	mkGuest := func(name string, port uint16, cacheQuota int64) (*httpsim.Server, netsim.Addr) {
		root := rc.MustNew(nil, rc.FixedShare, name, rc.Attributes{})
		// The guest's cache footprint is charged to a dedicated child, so
		// the quota constrains cached documents without also counting the
		// guest's socket buffers.
		cacheHolder := rc.MustNew(root, rc.FixedShare, name+"-cache",
			rc.Attributes{MemLimit: cacheQuota})
		addr := netsim.Addr{IP: ServerAddr.IP, Port: port}
		srv, err := httpsim.NewServer(httpsim.Config{
			Kernel: e.k, Name: name, Addr: addr, API: httpsim.EventAPI,
			PerConnContainers: true,
			Parent:            root,
			CacheContainer:    cacheHolder,
		})
		if err != nil {
			panic(err)
		}
		if err := srv.Process().DefaultContainer.SetParent(root); err != nil {
			panic(err)
		}
		return srv, addr
	}

	var aLimit int64
	if quota {
		aLimit = 64 * 1024
	}
	_, aAddr := mkGuest("guestA", 8001, aLimit)
	_, bAddr := mkGuest("guestB", 8002, 0)

	// Guest A: streaming scan over a huge corpus (every request a new
	// document).
	scanSeq := uint64(0)
	aPop := workload.MustStartPopulation(8, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 1, Port: 1024},
		Dst:    aAddr,
		PathFor: func(uint64) string {
			scanSeq++
			return fmt.Sprintf("/corpus/%d", scanSeq)
		},
	})
	// Guest B: a low-rate service over a 32-document hot set (shared
	// round-robin so clients do not march in lockstep). The slow reuse
	// interval is what makes B vulnerable to cache pollution: between two
	// touches of a hot document, A's scan can stream hundreds of new
	// documents through the shared LRU.
	bSeq := uint64(0)
	bPop := workload.MustStartPopulation(4, workload.ClientConfig{
		Kernel: e.k,
		Src:    netsim.Addr{IP: ClientNet + 0x40, Port: 1024},
		Dst:    bAddr,
		Think:  500 * sim.Millisecond,
		PathFor: func(uint64) string {
			bSeq++
			return fmt.Sprintf("/hot/%d", bSeq%32)
		},
	})

	start := e.eng.Now()
	e.eng.RunUntil(start.Add(opt.Warmup))
	aPop.ResetStats()
	bPop.ResetStats()
	h0, m0, _ := e.k.FileCache().Stats()
	// Hit-rate attribution: B's hot set is the only repeated workload, so
	// global hits ≈ B hits; measure the delta over the window.
	e.eng.RunUntil(start.Add(opt.Warmup + opt.Window))
	h1, m1, _ := e.k.FileCache().Stats()
	_ = m0
	_ = m1

	bReq := float64(bPop.Completed())
	hitPct = 0
	if bReq > 0 {
		hitPct = 100 * float64(h1-h0) / bReq
		if hitPct > 100 {
			hitPct = 100
		}
	}
	return hitPct, bPop.Rate(e.eng.Now()), bPop.MeanLatencyMs(), aPop.Rate(e.eng.Now())
}
