package httpsim

import (
	"fmt"

	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// FastCGIPool is a set of persistent CGI server processes (§2: "the newer
// FastCGI allows persistent CGI processes"). Instead of forking per
// request, the Web server dispatches dynamic requests to pool workers.
// With resource containers, the connection's container is passed to the
// worker process explicitly (§4.8: "...or explicitly, when persistent
// CGI server processes are used"), so the worker's processing for that
// request is charged to the request's activity even though the worker is
// a long-lived separate protection domain.
type FastCGIPool struct {
	k       *kernel.Kernel
	srv     *Server
	workers []*fcgiWorker
	queue   []*fcgiJob

	// Served counts completed dynamic requests.
	Served uint64
}

type fcgiWorker struct {
	proc   *kernel.Process
	thread *kernel.Thread
	busy   bool
}

type fcgiJob struct {
	conn *kernel.Conn
	req  *Request
	// cont is the request's container, passed explicitly to the worker.
	cont *rc.Container
}

// DispatchCost is the IPC cost of handing a request to a pool worker,
// substantially cheaper than a fork (CostModel.UserCGIDispatch).
const DispatchCost = 50 * sim.Microsecond

// NewFastCGIPool creates n persistent worker processes for the server.
func NewFastCGIPool(srv *Server, n int) (*FastCGIPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("httpsim: pool size %d", n)
	}
	p := &FastCGIPool{k: srv.k, srv: srv}
	for i := 0; i < n; i++ {
		proc, err := srv.proc.Fork(fmt.Sprintf("%s-fcgi-%d", srv.cfg.Name, i))
		if err != nil {
			return nil, err
		}
		p.workers = append(p.workers, &fcgiWorker{
			proc:   proc,
			thread: proc.NewThread("worker"),
		})
	}
	srv.fcgi = p
	return p, nil
}

// dispatch hands a dynamic request to an idle worker or queues it.
func (p *FastCGIPool) dispatch(conn *kernel.Conn, req *Request) {
	var cont *rc.Container
	if p.srv.rcMode() {
		// The request's activity container: a child of the CGI sandbox
		// when one is configured, else the connection's own container.
		if p.srv.cfg.CGIParent != nil {
			c, err := rc.New(p.srv.cfg.CGIParent, rc.TimeShare, "fcgi-req",
				rc.Attributes{Priority: kernel.DefaultPriority})
			if err == nil {
				cont = c
			}
		}
		if cont == nil {
			cont = conn.Container()
		}
	}
	job := &fcgiJob{conn: conn, req: req, cont: cont}
	for _, w := range p.workers {
		if !w.busy {
			p.run(w, job)
			return
		}
	}
	p.queue = append(p.queue, job)
}

// run executes a job on a worker. The container travels with the job:
// the worker's thread assumes the request's resource binding for the
// duration of the computation.
func (p *FastCGIPool) run(w *fcgiWorker, job *fcgiJob) {
	w.busy = true
	desc := rc.Desc(-1)
	if p.srv.rcMode() && job.cont != nil {
		// Explicit container passing between protection domains (§4.6):
		// the server opens the container in the worker's descriptor
		// table; the worker binds its thread to it for the duration of
		// the job and closes the descriptor when done.
		if d, err := w.proc.ContainerHandle(job.cont); err == nil {
			desc = d
			_ = w.proc.BindThread(w.thread, d)
		}
	}
	w.thread.PostFunc("fcgi-compute", job.req.CGICPU, rc.UserCPU, job.cont, func() {
		job.conn.Send(w.thread, job.req.Size, job.cont, func() {
			if job.req.OnResponse != nil {
				job.req.OnResponse(p.k.Now())
			}
		})
		w.thread.PostFunc("fcgi-finish", 1, rc.KernelCPU, job.cont, func() {
			p.srv.closeConn(job.conn)
			if desc >= 0 {
				_ = w.proc.ReleaseContainer(desc)
			}
			if p.srv.rcMode() && job.cont != nil && job.cont != job.conn.Container() {
				_ = job.cont.Release()
			}
			p.Served++
			w.busy = false
			p.next(w)
		})
	})
}

func (p *FastCGIPool) next(w *fcgiWorker) {
	if len(p.queue) == 0 {
		return
	}
	job := p.queue[0]
	p.queue[0] = nil
	p.queue = p.queue[1:]
	p.run(w, job)
}

// QueueLen returns the number of requests waiting for a worker.
func (p *FastCGIPool) QueueLen() int { return len(p.queue) }

// Idle returns the number of idle workers.
func (p *FastCGIPool) Idle() int {
	n := 0
	for _, w := range p.workers {
		if !w.busy {
			n++
		}
	}
	return n
}

// CPUTime sums the pool processes' CPU consumption.
func (p *FastCGIPool) CPUTime() sim.Duration {
	var total sim.Duration
	for _, w := range p.workers {
		total += w.proc.CPUTime()
	}
	return total
}
