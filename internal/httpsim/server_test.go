package httpsim_test

import (
	"math"
	"testing"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

var srvAddr = kernel.Addr("10.0.0.1", 80)

func newSim(mode kernel.Mode) (*sim.Engine, *kernel.Kernel) {
	eng := sim.NewEngine(42)
	return eng, kernel.New(eng, mode, kernel.DefaultCosts())
}

// measure runs clients against a server for warmup+window and returns the
// aggregate completion rate during the window.
func measure(eng *sim.Engine, pop *workload.Population, warmup, window sim.Duration) float64 {
	eng.RunUntil(sim.Time(warmup))
	pop.ResetStats()
	eng.RunUntil(sim.Time(warmup + window))
	return pop.Rate(eng.Now())
}

func TestBaselineThroughputConnPerRequest(t *testing.T) {
	// §5.3: 1 KB cached file, one connection per request: 2954 req/s on
	// the unmodified kernel.
	eng, k := newSim(kernel.ModeUnmodified)
	if _, err := httpsim.NewServer(httpsim.Config{Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI}); err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(32, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	rate := measure(eng, pop, 2*sim.Second, 10*sim.Second)
	if math.Abs(rate-2954)/2954 > 0.08 {
		t.Fatalf("conn-per-request throughput %.0f req/s, want ~2954 ±8%%", rate)
	}
}

func TestBaselineThroughputPersistent(t *testing.T) {
	// §5.3: persistent connections: 9487 req/s.
	eng, k := newSim(kernel.ModeUnmodified)
	if _, err := httpsim.NewServer(httpsim.Config{Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI}); err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(32, workload.ClientConfig{
		Kernel:     k,
		Src:        kernel.Addr("10.1.0.1", 1024),
		Dst:        srvAddr,
		Persistent: true,
	})
	rate := measure(eng, pop, 2*sim.Second, 10*sim.Second)
	if math.Abs(rate-9487)/9487 > 0.08 {
		t.Fatalf("persistent throughput %.0f req/s, want ~9487 ±8%%", rate)
	}
}

func TestServerModesServeRequests(t *testing.T) {
	for _, mode := range []kernel.Mode{kernel.ModeUnmodified, kernel.ModeLRP, kernel.ModeRC} {
		for _, api := range []httpsim.API{httpsim.SelectAPI, httpsim.EventAPI} {
			mode, api := mode, api
			t.Run(mode.String()+"/"+api.String(), func(t *testing.T) {
				eng, k := newSim(mode)
				srv, err := httpsim.NewServer(httpsim.Config{
					Kernel: k, Name: "httpd", Addr: srvAddr, API: api,
					PerConnContainers: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				pop := workload.MustStartPopulation(4, workload.ClientConfig{
					Kernel: k,
					Src:    kernel.Addr("10.1.0.1", 1024),
					Dst:    srvAddr,
					Think:  5 * sim.Millisecond,
				})
				eng.RunUntil(sim.Time(2 * sim.Second))
				if pop.Completed() < 100 {
					t.Fatalf("only %d requests completed", pop.Completed())
				}
				if srv.StaticServed < 100 {
					t.Fatalf("server count %d", srv.StaticServed)
				}
				if pop.MeanLatencyMs() <= 0 {
					t.Fatal("no latency recorded")
				}
			})
		}
	}
}

func TestRCOverheadNegligible(t *testing.T) {
	// §5.4: creating one container per connection (with the Table-1 op
	// costs) leaves throughput effectively unchanged.
	run := func(containers bool) float64 {
		eng, k := newSim(kernel.ModeRC)
		_, err := httpsim.NewServer(httpsim.Config{
			Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI,
			PerConnContainers:      containers,
			ContainerOpsPerRequest: containers,
		})
		if err != nil {
			t.Fatal(err)
		}
		pop := workload.MustStartPopulation(32, workload.ClientConfig{
			Kernel: k,
			Src:    kernel.Addr("10.1.0.1", 1024),
			Dst:    srvAddr,
		})
		return measure(eng, pop, 2*sim.Second, 10*sim.Second)
	}
	with, without := run(true), run(false)
	// Observed: ~2.3% from smaller select batches plus ~1.4% from the
	// Table-1 op costs — "effectively unchanged" as in the paper.
	if with < without*0.95 {
		t.Fatalf("per-request containers cost too much: %.0f vs %.0f req/s", with, without)
	}
}

func TestPersistentConnectionReusesConn(t *testing.T) {
	eng, k := newSim(kernel.ModeUnmodified)
	if _, err := httpsim.NewServer(httpsim.Config{Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI}); err != nil {
		t.Fatal(err)
	}
	cl := workload.MustStartClient(workload.ClientConfig{
		Kernel:     k,
		Src:        kernel.Addr("10.1.0.1", 1024),
		Dst:        srvAddr,
		Persistent: true,
		Think:      sim.Millisecond,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if cl.Meter.Count() < 100 {
		t.Fatalf("completed %d", cl.Meter.Count())
	}
	// One connection total: the server saw exactly one accept.
	if cl.Timeouts.Value() != 0 {
		t.Fatalf("timeouts %d", cl.Timeouts.Value())
	}
}

func TestEventAPIPriorityOrder(t *testing.T) {
	// With the event API and containers, a high-priority event is handled
	// before earlier-arrived low-priority events (§5.5).
	eng, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.EventAPI,
		PerConnContainers: true,
		ConnPriority: func(a kernel.Address) int {
			if a.IP == kernel.Addr("10.9.9.9", 0).IP {
				return 30
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
	// Saturate with low-priority clients, then compare mean response
	// times: the high-priority client must be served far faster.
	lows := workload.MustStartPopulation(24, workload.ClientConfig{
		Kernel: k, Src: kernel.Addr("10.1.0.1", 2000), Dst: srvAddr,
	})
	hi := workload.MustStartClient(workload.ClientConfig{
		Kernel: k, Src: kernel.Addr("10.9.9.9", 2000), Dst: srvAddr,
		Think: 10 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	lows.ResetStats()
	hi.ResetStats()
	eng.RunUntil(sim.Time(6 * sim.Second))
	if hi.Latency.N() == 0 {
		t.Fatal("high-priority client starved entirely")
	}
	loMean := lows.MeanLatencyMs()
	hiMean := hi.Latency.Mean()
	if hiMean > loMean/2 {
		t.Fatalf("priority order not honored: hi=%.3fms lo=%.3fms", hiMean, loMean)
	}
}
