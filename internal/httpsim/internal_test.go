package httpsim

// White-box tests of the event loop internals.

import (
	"testing"

	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestSortEventsFDOrder(t *testing.T) {
	evs := []*event{
		{fd: 7, seq: 1},
		{fd: 0, seq: 2},
		{fd: 3, seq: 0},
		{fd: 0, seq: 1},
	}
	sortEvents(evs)
	want := []struct{ fd, seq int }{{0, 1}, {0, 2}, {3, 0}, {7, 1}}
	for i, w := range want {
		if evs[i].fd != w.fd || evs[i].seq != uint64(w.seq) {
			t.Fatalf("position %d: fd=%d seq=%d, want fd=%d seq=%d",
				i, evs[i].fd, evs[i].seq, w.fd, w.seq)
		}
	}
}

func TestSortEventsStable(t *testing.T) {
	// Equal keys keep arrival order.
	evs := []*event{
		{fd: 1, seq: 0},
		{fd: 1, seq: 1},
		{fd: 1, seq: 2},
	}
	sortEvents(evs)
	for i, e := range evs {
		if e.seq != uint64(i) {
			t.Fatalf("stability violated: %v", evs)
		}
	}
}

func TestTakeBestPriorityOrderInRCMode(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, kernel.ModeRC, kernel.DefaultCosts())
	s := &Server{cfg: Config{Kernel: k}, k: k}
	hi := rc.MustNew(nil, rc.TimeShare, "hi", rc.Attributes{Priority: 30})
	lo := rc.MustNew(nil, rc.TimeShare, "lo", rc.Attributes{Priority: 1})
	mkConn := func(c *rc.Container) *kernel.Conn {
		conn := &kernel.Conn{}
		conn.SetContainer(c)
		return conn
	}
	s.pending = []*event{
		{conn: mkConn(lo), seq: 0},
		{conn: mkConn(hi), seq: 1},
		{conn: mkConn(lo), seq: 2},
	}
	ev := s.takeBest()
	if ev.seq != 1 {
		t.Fatalf("takeBest picked seq %d, want the high-priority event", ev.seq)
	}
	if len(s.pending) != 2 {
		t.Fatalf("pending %d after take", len(s.pending))
	}
}

func TestTakeBestFIFOWithoutContainers(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, kernel.ModeUnmodified, kernel.DefaultCosts())
	s := &Server{cfg: Config{Kernel: k}, k: k}
	s.pending = []*event{{seq: 0}, {seq: 1}}
	if ev := s.takeBest(); ev.seq != 0 {
		t.Fatalf("unmodified kernel should dequeue FIFO, got seq %d", ev.seq)
	}
}

func TestTakeBestEmpty(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, kernel.ModeRC, kernel.DefaultCosts())
	s := &Server{cfg: Config{Kernel: k}, k: k}
	if s.takeBest() != nil {
		t.Fatal("takeBest on empty pending should return nil")
	}
}

func TestEventPriorityFallsBackToZero(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, kernel.ModeUnmodified, kernel.DefaultCosts())
	s := &Server{cfg: Config{Kernel: k}, k: k}
	if got := s.eventPriority(&event{conn: &kernel.Conn{}}); got != 0 {
		t.Fatalf("priority of container-less event: %d", got)
	}
}
