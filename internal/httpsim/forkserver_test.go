package httpsim_test

import (
	"testing"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

func TestForkServerServesLoad(t *testing.T) {
	eng, k := newSim(kernel.ModeUnmodified)
	srv, err := httpsim.NewForkServer(httpsim.Config{
		Kernel: k, Name: "ncsa", Addr: srvAddr,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(4, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if pop.Completed() < 1000 {
		t.Fatalf("completed %d", pop.Completed())
	}
	if srv.StaticServed < 1000 {
		t.Fatalf("served %d", srv.StaticServed)
	}
	// The work happened in the worker processes, not the master.
	var workerCPU float64
	for _, v := range srv.WorkerCPU() {
		workerCPU += v
	}
	if workerCPU <= 0 {
		t.Fatal("workers consumed no CPU")
	}
	if srv.Master().CPUTime() == 0 {
		t.Fatal("master (accept path) consumed no CPU")
	}
}

func TestForkServerBacklogWhenWorkersBusy(t *testing.T) {
	eng, k := newSim(kernel.ModeUnmodified)
	_, err := httpsim.NewForkServer(httpsim.Config{
		Kernel: k, Name: "ncsa", Addr: srvAddr,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 concurrent long CGI-ish requests against 1 worker still all
	// complete (queued at the master).
	pop := workload.MustStartPopulation(4, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
		Kind:   httpsim.Module, // served in the worker process
		CGICPU: 50 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(3 * sim.Second))
	if pop.Completed() < 10 {
		t.Fatalf("completed %d with a single worker", pop.Completed())
	}
}

func TestForkServerBadWorkerCount(t *testing.T) {
	_, k := newSim(kernel.ModeUnmodified)
	if _, err := httpsim.NewForkServer(httpsim.Config{Kernel: k, Name: "x", Addr: srvAddr}, 0); err == nil {
		t.Fatal("zero workers should fail")
	}
}

func TestForkServerRCContainersTravelToWorkers(t *testing.T) {
	eng, k := newSim(kernel.ModeRC)
	_, err := httpsim.NewForkServer(httpsim.Config{
		Kernel: k, Name: "ncsa", Addr: srvAddr,
		PerConnContainers: true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(2, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if pop.Completed() < 100 {
		t.Fatalf("completed %d", pop.Completed())
	}
}

func TestForkServerNiceChangesUserScheduling(t *testing.T) {
	// Nice-based QoS (Almeida et al., §6): with CPU-heavy in-process
	// work and enough workers, nice does shift user-level CPU.
	eng, k := newSim(kernel.ModeUnmodified)
	hiIP := kernel.Addr("10.9.9.9", 0).IP
	srv, err := httpsim.NewForkServer(httpsim.Config{
		Kernel: k, Name: "apache", Addr: srvAddr,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.NicePriority = func(a kernel.Address) int {
		if a.IP == hiIP {
			return 0
		}
		return 8 // background class
	}
	mk := func(ip string) *workload.Client {
		return workload.MustStartClient(workload.ClientConfig{
			Kernel: k, Src: kernel.Addr(ip, 1024), Dst: srvAddr,
			Persistent: true, Kind: httpsim.Module, CGICPU: 2 * sim.Millisecond,
		})
	}
	lo := mk("10.1.0.1")
	hi := mk("10.9.9.9")
	eng.RunUntil(sim.Time(4 * sim.Second))
	if hi.Meter.Count() <= lo.Meter.Count() {
		t.Fatalf("niced-down client should be served less: hi=%d lo=%d",
			hi.Meter.Count(), lo.Meter.Count())
	}
}
