// Package httpsim implements the server application models of paper §2
// on top of the simulated kernel:
//
//   - the single-process event-driven server (Fig. 2/10), with both the
//     select() interface and the scalable event API of [5] (§5.5);
//   - the single-process multi-threaded server (Fig. 3/9);
//   - the process-per-connection server with a pre-forked worker pool
//     (Fig. 1, the NCSA architecture), including nice-based QoS (§6);
//   - CGI handling by auxiliary processes (§5.6), optionally sandboxed
//     under a capped parent container, by persistent FastCGI worker
//     pools with explicit container passing, or by in-process library
//     modules (ISAPI/NSAPI style).
//
// Servers speak the kernel's upcall interface (accept/request
// notifications) and express all their CPU consumption as work items, so
// every mode's accounting (unmodified, LRP, resource containers) applies
// to them exactly as it would to a real application.
package httpsim

import (
	"rescon/internal/sim"
)

// RequestKind distinguishes static documents from dynamic (CGI)
// resources.
type RequestKind int

const (
	// Static is a cached static document served by the main process.
	Static RequestKind = iota
	// CGI is a dynamic resource served by an auxiliary process.
	CGI
	// Module is a dynamic resource served by an in-process library module
	// (ISAPI/NSAPI style, §2): no fault isolation, minimal overhead.
	Module
)

// Request is the payload of a request packet.
type Request struct {
	// Kind selects the handling path.
	Kind RequestKind
	// Size is the response size in bytes (the paper uses 1 KB documents).
	Size int
	// Uncached marks a static document not in the filesystem cache: the
	// server must read it from disk, with the disk time charged to the
	// connection's container (§4.4 disk bandwidth).
	Uncached bool
	// Path, when non-empty, identifies the document in the filesystem
	// cache: the server consults the cache, faulting the document in from
	// disk on a miss (its memory charged to the server/guest container,
	// §4.4 physical memory). Overrides Uncached.
	Path string
	// CGICPU is the CPU the CGI process consumes to produce a dynamic
	// response (the paper uses about 2 seconds, §5.6).
	CGICPU sim.Duration
	// CloseAfter requests connection teardown after the response
	// (1 connection/request HTTP). Persistent connections leave it false.
	CloseAfter bool
	// OnResponse is the client's delivery callback.
	OnResponse func(at sim.Time)
}

// StaticRequest builds a 1 KB static-document request.
func StaticRequest(closeAfter bool, onResponse func(sim.Time)) *Request {
	return &Request{Kind: Static, Size: 1024, CloseAfter: closeAfter, OnResponse: onResponse}
}

// CGIRequest builds a dynamic-resource request.
func CGIRequest(cpu sim.Duration, onResponse func(sim.Time)) *Request {
	return &Request{Kind: CGI, Size: 1024, CGICPU: cpu, CloseAfter: true, OnResponse: onResponse}
}

// ModuleRequest builds an in-process dynamic-resource request.
func ModuleRequest(cpu sim.Duration, onResponse func(sim.Time)) *Request {
	return &Request{Kind: Module, Size: 1024, CGICPU: cpu, CloseAfter: true, OnResponse: onResponse}
}
