package httpsim_test

import (
	"testing"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

func TestMTServerServesLoad(t *testing.T) {
	eng, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewMTServer(httpsim.Config{
		Kernel: k, Name: "mt", Addr: srvAddr,
		PerConnContainers: true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(8, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if pop.Completed() < 1000 {
		t.Fatalf("completed %d", pop.Completed())
	}
	if srv.StaticServed < 1000 {
		t.Fatalf("served %d", srv.StaticServed)
	}
	if srv.OpenConns() < 0 || srv.OpenConns() > 8 {
		t.Fatalf("open conns %d", srv.OpenConns())
	}
	if srv.Process().CPUTime() == 0 {
		t.Fatal("no CPU consumed")
	}
}

func TestMTServerBadPoolSize(t *testing.T) {
	_, k := newSim(kernel.ModeRC)
	if _, err := httpsim.NewMTServer(httpsim.Config{Kernel: k, Name: "mt", Addr: srvAddr}, 0); err == nil {
		t.Fatal("zero threads should fail")
	}
}

func TestMTServerPerConnContainerCharging(t *testing.T) {
	// Fig. 9: each connection's work is charged to its own container,
	// dedicated thread per connection.
	eng, k := newSim(kernel.ModeRC)
	parent := rc.MustNew(nil, rc.FixedShare, "guest", rc.Attributes{})
	_, err := httpsim.NewMTServer(httpsim.Config{
		Kernel: k, Name: "mt", Addr: srvAddr,
		PerConnContainers: true,
		Parent:            parent,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(2, workload.ClientConfig{
		Kernel:     k,
		Src:        kernel.Addr("10.1.0.1", 1024),
		Dst:        srvAddr,
		Persistent: true,
		Think:      sim.Millisecond,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if pop.Completed() < 100 {
		t.Fatalf("completed %d", pop.Completed())
	}
	// All per-connection user work landed under the guest.
	if parent.Usage().CPUUser == 0 {
		t.Fatal("no user CPU charged to guest subtree")
	}
	if len(parent.Children()) == 0 {
		t.Fatal("no per-connection containers under guest")
	}
}

func TestMTServerPriorityBetweenConnections(t *testing.T) {
	// Two persistent connections at different priorities, with a CPU-heavy
	// in-process module per request: the high-priority connection's thread
	// wins the CPU (§4.8 Fig. 9 discussion).
	eng, k := newSim(kernel.ModeRC)
	hiIP := kernel.Addr("10.9.9.9", 0).IP
	_, err := httpsim.NewMTServer(httpsim.Config{
		Kernel: k, Name: "mt", Addr: srvAddr,
		PerConnContainers: true,
		ConnPriority: func(a kernel.Address) int {
			if a.IP == hiIP {
				return 30
			}
			return 1
		},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ip string) *workload.Client {
		return workload.MustStartClient(workload.ClientConfig{
			Kernel:     k,
			Src:        kernel.Addr(ip, 1024),
			Dst:        srvAddr,
			Persistent: true,
			Kind:       httpsim.Module,
			CGICPU:     2 * sim.Millisecond,
		})
	}
	lo := mk("10.1.0.1")
	hi := mk("10.9.9.9")
	eng.RunUntil(sim.Time(4 * sim.Second))
	if hi.Meter.Count() < lo.Meter.Count() {
		t.Fatalf("high-priority conn served less: hi=%d lo=%d", hi.Meter.Count(), lo.Meter.Count())
	}
	// Weighted 30:1, both closed-loop: the high client should get the
	// bulk of the module CPU.
	ratio := float64(hi.Meter.Count()) / float64(lo.Meter.Count())
	if ratio < 2 {
		t.Fatalf("priority ratio %.2f, want well above 1", ratio)
	}
}

func TestRequestConstructors(t *testing.T) {
	r := httpsim.StaticRequest(true, nil)
	if r.Kind != httpsim.Static || !r.CloseAfter || r.Size != 1024 {
		t.Fatalf("StaticRequest %+v", r)
	}
	c := httpsim.CGIRequest(sim.Second, nil)
	if c.Kind != httpsim.CGI || c.CGICPU != sim.Second {
		t.Fatalf("CGIRequest %+v", c)
	}
	m := httpsim.ModuleRequest(sim.Millisecond, nil)
	if m.Kind != httpsim.Module || m.CGICPU != sim.Millisecond {
		t.Fatalf("ModuleRequest %+v", m)
	}
}

func TestServerAccessors(t *testing.T) {
	_, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.EventAPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.ListenSocket() == nil {
		t.Fatal("no default listen socket")
	}
	cont := rc.MustNew(nil, rc.TimeShare, "extra", rc.Attributes{Priority: 3})
	ls, err := srv.AddListener(kernel.FilterCIDR("11.0.0.0", 8), cont)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Container() != cont {
		t.Fatal("listener container not bound")
	}
	// Duplicate (same filter) must fail.
	if _, err := srv.AddListener(kernel.FilterCIDR("11.0.0.0", 8), cont); err == nil {
		t.Fatal("duplicate filtered listener should fail")
	}
}
