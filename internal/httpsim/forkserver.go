package httpsim

import (
	"fmt"

	"rescon/internal/kernel"
	"rescon/internal/rc"
)

// ForkServer is the process-per-connection server of paper §2 Fig. 1: a
// master process accepts connections and passes them to pre-forked
// worker processes (the NCSA httpd architecture), each handling one
// connection at a time.
//
// Because every connection gets a whole process, this is the one
// architecture where traditional process-granular mechanisms can express
// per-client policy at all: NicePriority maps client classes to process
// nice values, reproducing the Almeida et al. approach the paper
// discusses in §6 — and its limitation, since nice only affects
// user-level scheduling, not kernel-mode protocol processing.
type ForkServer struct {
	cfg     Config
	k       *kernel.Kernel
	master  *kernel.Process
	masterT *kernel.Thread
	workers []*forkWorker
	backlog []*kernel.Conn

	// NicePriority maps a client address to the worker process's nice
	// value for that connection (positive = yield CPU). Nil means 0.
	NicePriority func(a kernel.Address) int

	// Stats
	StaticServed uint64
}

type forkWorker struct {
	proc   *kernel.Process
	thread *kernel.Thread
	busy   bool
}

// NewForkServer creates a master with n pre-forked workers.
func NewForkServer(cfg Config, n int) (*ForkServer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("httpsim: worker count %d", n)
	}
	s := &ForkServer{cfg: cfg, k: cfg.Kernel}
	s.master = s.k.NewProcess(cfg.Name + "-master")
	for i := 0; i < n; i++ {
		proc, err := s.master.Fork(fmt.Sprintf("%s-w%d", cfg.Name, i))
		if err != nil {
			return nil, err
		}
		s.workers = append(s.workers, &forkWorker{
			proc:   proc,
			thread: proc.NewThread("main"),
		})
	}
	_, err := s.k.Listen(s.master, kernel.ListenConfig{
		Local:         cfg.Addr,
		AcceptBacklog: cfg.AcceptBacklog,
		OnAcceptable:  func(ls *kernel.ListenSocket) { s.accept(ls) },
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Master returns the master process.
func (s *ForkServer) Master() *kernel.Process { return s.master }

// WorkerCPU sums the workers' CPU consumption.
func (s *ForkServer) WorkerCPU() (total map[string]float64) {
	total = make(map[string]float64)
	for _, w := range s.workers {
		total[w.proc.Name()] = w.proc.CPUTime().Seconds()
	}
	return total
}

func (s *ForkServer) rcMode() bool { return s.k.Mode() == kernel.ModeRC }

// accept pops the connection in the master and hands it to an idle
// worker (Fig. 1: "a master process accepts new connections and passes
// them to the pre-forked worker processes").
func (s *ForkServer) accept(ls *kernel.ListenSocket) {
	// The master's accept work runs in its own (tiny) process.
	mThread := s.masterThread()
	var cont *rc.Container
	if s.rcMode() {
		cont = s.master.DefaultContainer
	}
	mThread.PostFunc("accept", s.k.Costs().ConnSetup, rc.KernelCPU, cont, func() {
		conn, ok := ls.Accept()
		if !ok {
			return
		}
		s.dispatch(conn)
	})
}

func (s *ForkServer) masterThread() *kernel.Thread {
	if s.masterT == nil {
		s.masterT = s.master.NewThread("acceptor")
	}
	return s.masterT
}

// dispatch assigns the connection to an idle worker or queues it.
func (s *ForkServer) dispatch(conn *kernel.Conn) {
	for _, w := range s.workers {
		if !w.busy {
			s.serveOn(w, conn)
			return
		}
	}
	s.backlog = append(s.backlog, conn)
}

// serveOn attaches the connection to the worker for its lifetime.
func (s *ForkServer) serveOn(w *forkWorker, conn *kernel.Conn) {
	w.busy = true
	// Per-client nice: the process-priority QoS mapping of [1].
	if s.NicePriority != nil {
		w.proc.Principal.Nice = s.NicePriority(conn.Client())
	} else {
		w.proc.Principal.Nice = 0
	}
	if s.rcMode() {
		// With containers, the connection's container simply travels to
		// the worker: inheritance across protection domains (§4.8).
		cont := conn.Container()
		if s.cfg.PerConnContainers {
			prio := kernel.DefaultPriority
			if s.cfg.ConnPriority != nil {
				prio = s.cfg.ConnPriority(conn.Client())
			}
			if cc, err := rc.New(s.cfg.Parent, rc.TimeShare,
				fmt.Sprintf("conn-%d", conn.ID()), rc.Attributes{Priority: prio}); err == nil {
				cont = cc
				conn.SetContainer(cc)
			}
		}
		_ = cont
	}
	conn.SetOnRequest(func(c *kernel.Conn, payload any) {
		req, ok := payload.(*Request)
		if !ok {
			return
		}
		s.serveRequest(w, c, req)
	})
}

func (s *ForkServer) serveRequest(w *forkWorker, conn *kernel.Conn, req *Request) {
	if conn.Closed() {
		s.release(w, conn)
		return
	}
	var cont *rc.Container
	if s.rcMode() {
		cont = conn.Container()
	}
	cost := s.k.Costs().UserStatic
	if req.Kind != Static {
		cost = req.CGICPU
	}
	w.thread.PostFunc("serve", cost, rc.UserCPU, cont, func() {
		conn.Send(w.thread, req.Size, cont, func() {
			if req.OnResponse != nil {
				req.OnResponse(s.k.Now())
			}
		})
		s.StaticServed++
		if req.CloseAfter {
			s.release(w, conn)
		}
	})
}

// release tears the connection down and gives the worker its next one.
func (s *ForkServer) release(w *forkWorker, conn *kernel.Conn) {
	if !conn.Closed() {
		cc := conn.Container()
		conn.Close()
		if s.rcMode() && s.cfg.PerConnContainers && cc != nil && cc != s.master.DefaultContainer {
			_ = cc.Release()
		}
	}
	w.busy = false
	for len(s.backlog) > 0 {
		next := s.backlog[0]
		s.backlog[0] = nil
		s.backlog = s.backlog[1:]
		if !next.Closed() {
			s.serveOn(w, next)
			return
		}
	}
}
