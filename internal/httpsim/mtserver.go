package httpsim

import (
	"fmt"

	"rescon/internal/kernel"
	"rescon/internal/rc"
)

// MTServer is the single-process multi-threaded server of Fig. 3/9: a
// pool of kernel threads, each connection assigned to one thread for its
// lifetime. With resource containers, the application sets each thread's
// resource binding to the connection's container, so "if a particular
// connection consumes a lot of system resources, this consumption is
// charged to the resource container" (§4.8).
type MTServer struct {
	cfg     Config
	k       *kernel.Kernel
	proc    *kernel.Process
	workers []*kernel.Thread
	nextRR  int
	ls      *kernel.ListenSocket

	// Stats
	StaticServed uint64
	openConns    int
}

// NewMTServer creates a multi-threaded server with the given pool size.
func NewMTServer(cfg Config, threads int) (*MTServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "httpd"
	}
	if threads <= 0 {
		return nil, fmt.Errorf("httpsim: pool size %d", threads)
	}
	s := &MTServer{cfg: cfg, k: cfg.Kernel}
	s.proc = s.k.NewProcess(cfg.Name)
	for i := 0; i < threads; i++ {
		s.workers = append(s.workers, s.proc.NewThread(fmt.Sprintf("worker-%d", i)))
	}
	var err error
	s.ls, err = s.k.Listen(s.proc, kernel.ListenConfig{
		Local:         cfg.Addr,
		AcceptBacklog: cfg.AcceptBacklog,
		OnAcceptable:  func(ls *kernel.ListenSocket) { s.accept(ls) },
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Process returns the server's process.
func (s *MTServer) Process() *kernel.Process { return s.proc }

// OpenConns returns the number of live connections.
func (s *MTServer) OpenConns() int { return s.openConns }

func (s *MTServer) rcMode() bool { return s.k.Mode() == kernel.ModeRC }

// accept assigns the new connection to a pool thread ("idle threads
// accept new connections from the listening socket").
func (s *MTServer) accept(ls *kernel.ListenSocket) {
	th := s.workers[s.nextRR%len(s.workers)]
	s.nextRR++
	th.PostFunc("accept", s.k.Costs().ConnSetup, rc.KernelCPU, ls.Container(), func() {
		conn, ok := ls.Accept()
		if !ok {
			return
		}
		s.openConns++
		if s.rcMode() && s.cfg.PerConnContainers {
			prio := kernel.DefaultPriority
			if s.cfg.ConnPriority != nil {
				prio = s.cfg.ConnPriority(conn.Client())
			}
			cc, err := rc.New(s.cfg.Parent, rc.TimeShare,
				fmt.Sprintf("conn-%d", conn.ID()), rc.Attributes{Priority: prio})
			if err == nil {
				conn.SetContainer(cc)
			}
		}
		conn.SetOnRequest(func(c *kernel.Conn, payload any) {
			req, ok := payload.(*Request)
			if !ok {
				return
			}
			s.serve(th, c, req)
		})
	})
}

// serve runs the request on the connection's dedicated thread, charged to
// the connection's container. Static documents cost UserStatic; dynamic
// resources (Module/CGI kinds) run in-process on the connection's thread
// — the natural fit for the thread-per-connection architecture, where
// the thread is already bound to the activity (§4.8, Fig. 9).
func (s *MTServer) serve(th *kernel.Thread, conn *kernel.Conn, req *Request) {
	if conn.Closed() {
		return
	}
	cost := s.k.Costs().UserStatic
	label := "static"
	if req.Kind != Static {
		cost = req.CGICPU
		label = "dynamic"
	}
	th.PostFunc(label, cost, rc.UserCPU, conn.Container(), func() {
		conn.Send(th, req.Size, conn.Container(), func() {
			if req.OnResponse != nil {
				req.OnResponse(s.k.Now())
			}
		})
		if req.CloseAfter {
			s.close(conn)
		}
		s.StaticServed++
	})
}

func (s *MTServer) close(conn *kernel.Conn) {
	if conn.Closed() {
		return
	}
	cc := conn.Container()
	conn.Close()
	s.openConns--
	if s.rcMode() && s.cfg.PerConnContainers && cc != nil && cc != s.proc.DefaultContainer {
		_ = cc.Release()
	}
}
