package httpsim_test

import (
	"testing"

	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/workload"
)

func TestFastCGIPoolServesDynamicRequests(t *testing.T) {
	eng, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI,
		PerConnContainers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := httpsim.NewFastCGIPool(srv, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(4, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
		Kind:   httpsim.CGI,
		CGICPU: 10 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if pool.Served < 50 {
		t.Fatalf("pool served %d dynamic requests", pool.Served)
	}
	// Completion (wire delivery) and the worker's bookkeeping item are
	// separate events, so the two counters may differ by the requests in
	// flight at the measurement instant.
	if diff := int64(pop.Completed()) - int64(pool.Served); diff < -2 || diff > 2 {
		t.Fatalf("client completions %d vs pool served %d", pop.Completed(), pool.Served)
	}
	if pool.CPUTime() < sim.Duration(pool.Served)*9*sim.Millisecond {
		t.Fatalf("pool CPU %v too low for %d 10ms jobs", pool.CPUTime(), pool.Served)
	}
}

func TestFastCGIPoolQueuesWhenSaturated(t *testing.T) {
	eng, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI,
		PerConnContainers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := httpsim.NewFastCGIPool(srv, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 concurrent long jobs against 1 worker: some must queue.
	workload.MustStartPopulation(4, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
		Kind:   httpsim.CGI,
		CGICPU: 500 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(300 * sim.Millisecond))
	if pool.QueueLen() == 0 {
		t.Fatal("expected queued jobs with a single busy worker")
	}
	if pool.Idle() != 0 {
		t.Fatal("worker should be busy")
	}
	eng.RunUntil(sim.Time(5 * sim.Second))
	if pool.Served < 4 {
		t.Fatalf("served %d", pool.Served)
	}
}

func TestFastCGISandboxCap(t *testing.T) {
	// The FastCGI pool honors the CGI-parent sandbox exactly like forked
	// CGI: persistent workers' computation is charged to per-request
	// containers under the capped parent.
	eng, k := newSim(kernel.ModeRC)
	cgiParent := rc.MustNew(nil, rc.FixedShare, "cgi-parent", rc.Attributes{Limit: 0.25})
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI,
		PerConnContainers: true,
		CGIParent:         cgiParent,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := httpsim.NewFastCGIPool(srv, 2)
	if err != nil {
		t.Fatal(err)
	}
	statics := workload.MustStartPopulation(32, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	workload.MustStartPopulation(2, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.2.0.1", 1024),
		Dst:    srvAddr,
		Kind:   httpsim.CGI,
		CGICPU: 2 * sim.Second,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	statics.ResetStats()
	cpuBefore := pool.CPUTime()
	start := eng.Now()
	eng.RunUntil(sim.Time(10 * sim.Second))
	share := float64(pool.CPUTime()-cpuBefore) / float64(eng.Now().Sub(start))
	if share > 0.27 || share < 0.20 {
		t.Fatalf("pool CPU share %.3f, want ~0.25 (sandbox cap)", share)
	}
	if rate := statics.Rate(eng.Now()); rate < 1800 {
		t.Fatalf("static throughput %.0f under capped FastCGI load", rate)
	}
}

func TestFastCGIBadPoolSize(t *testing.T) {
	_, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI,
		PerConnContainers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := httpsim.NewFastCGIPool(srv, 0); err == nil {
		t.Fatal("zero-size pool should fail")
	}
}

func TestInProcessModuleRequests(t *testing.T) {
	// ISAPI/NSAPI-style dynamic modules run inside the server process,
	// charged to the connection's container (§4.8).
	eng, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.EventAPI,
		PerConnContainers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(2, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
		Kind:   httpsim.Module,
		CGICPU: 5 * sim.Millisecond,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if pop.Completed() < 100 {
		t.Fatalf("module requests completed: %d", pop.Completed())
	}
	// All computation happened in the server process: no CGI processes.
	if srv.CGICPU() != 0 {
		t.Fatalf("in-process modules must not spawn CGI processes (CGI CPU %v)", srv.CGICPU())
	}
	if srv.Process().CPUTime() < sim.Duration(pop.Completed())*5*sim.Millisecond {
		t.Fatal("module CPU not charged to server process")
	}
}

func TestModuleVsCGIOverhead(t *testing.T) {
	// The point of library modules (§2): less overhead than fork-per-
	// request CGI for the same computation.
	run := func(kind httpsim.RequestKind) uint64 {
		eng, k := newSim(kernel.ModeRC)
		if _, err := httpsim.NewServer(httpsim.Config{
			Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.SelectAPI,
			PerConnContainers: true,
		}); err != nil {
			t.Fatal(err)
		}
		pop := workload.MustStartPopulation(4, workload.ClientConfig{
			Kernel: k,
			Src:    kernel.Addr("10.1.0.1", 1024),
			Dst:    srvAddr,
			Kind:   kind,
			CGICPU: sim.Millisecond,
		})
		eng.RunUntil(sim.Time(2 * sim.Second))
		return pop.Completed()
	}
	mod, cgi := run(httpsim.Module), run(httpsim.CGI)
	if mod <= cgi {
		t.Fatalf("modules (%d) should outperform forked CGI (%d)", mod, cgi)
	}
}

func TestUncachedRequestsUseDisk(t *testing.T) {
	eng, k := newSim(kernel.ModeRC)
	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.EventAPI,
		PerConnContainers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := workload.MustStartClient(workload.ClientConfig{
		Kernel:   k,
		Src:      kernel.Addr("10.1.0.1", 1024),
		Dst:      srvAddr,
		Uncached: true,
		Think:    sim.Millisecond,
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if cl.Meter.Count() < 50 {
		t.Fatalf("uncached requests completed: %d", cl.Meter.Count())
	}
	if k.Disk().Served() < cl.Meter.Count() {
		t.Fatalf("disk served %d < completions %d", k.Disk().Served(), cl.Meter.Count())
	}
	// Each uncached response includes at least one seek: latency is
	// dominated by the disk, not the CPU.
	if cl.Latency.Mean() < 8 { // ms
		t.Fatalf("uncached latency %.2f ms, expected >= seek time", cl.Latency.Mean())
	}
	_ = srv
}

func TestCachedRequestsSkipDisk(t *testing.T) {
	eng, k := newSim(kernel.ModeRC)
	if _, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.EventAPI,
		PerConnContainers: true,
	}); err != nil {
		t.Fatal(err)
	}
	workload.MustStartPopulation(2, workload.ClientConfig{
		Kernel: k,
		Src:    kernel.Addr("10.1.0.1", 1024),
		Dst:    srvAddr,
	})
	eng.RunUntil(sim.Time(sim.Second))
	if k.Disk().Served() != 0 {
		t.Fatalf("cached workload touched the disk: %d reads", k.Disk().Served())
	}
}
