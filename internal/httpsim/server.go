package httpsim

import (
	"errors"
	"fmt"

	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/trace"
)

// API selects the event-notification interface the server uses (§5.5).
type API int

const (
	// SelectAPI models select(): each call scans the full interest set
	// (cost linear in open descriptors) and the application handles the
	// returned batch in descriptor order, not priority order.
	SelectAPI API = iota
	// EventAPI models the scalable event API of [5]: constant-cost event
	// retrieval, and with resource containers the kernel returns events
	// in container-priority order.
	EventAPI
)

// String names the API.
func (a API) String() string {
	if a == SelectAPI {
		return "select()"
	}
	return "event API"
}

// Config configures an event-driven server.
type Config struct {
	Kernel *kernel.Kernel
	Name   string
	Addr   netsim.Addr
	API    API

	// PerConnContainers creates one resource container per connection
	// (§4.8), priority from ConnPriority. ModeRC only.
	PerConnContainers bool
	// ConnPriority maps a client address to the numeric priority of its
	// connection container; nil means kernel.DefaultPriority.
	ConnPriority func(netsim.Addr) int
	// ContainerOpsPerRequest additionally pays the Table-1 syscall costs
	// for the per-request container churn (create + rebind + destroy),
	// the §5.4 overhead experiment.
	ContainerOpsPerRequest bool
	// CGIParent, when set, parents every CGI request container (the
	// "resource sandbox" of §5.6). ModeRC only.
	CGIParent *rc.Container
	// Parent, when set, parents every per-connection container (virtual
	// server / guest configurations, §5.8). ModeRC only.
	Parent *rc.Container
	// CacheContainer, when set, is charged for the memory of documents
	// this server faults into the filesystem cache; its MemLimit is the
	// server's cache quota (§4.4). Defaults to Parent, then the process
	// default container.
	CacheContainer *rc.Container
	// OnSynDrop is the application's notification when the kernel drops
	// a connection request because of queue overflow — the modified
	// kernel's SYN-flood signal (§5.7).
	OnSynDrop func(src netsim.Addr)
	// Listeners other than the default can be added with AddListener.
	AcceptBacklog int
}

// Validate reports whether the configuration can produce a working
// server: a kernel to live in and a usable listen endpoint. NewServer
// and NewMTServer call it, so a broken config surfaces as an error at
// construction instead of a panic deep in the kernel.
func (cfg Config) Validate() error {
	if cfg.Kernel == nil {
		return errors.New("httpsim: Config.Kernel is nil")
	}
	if cfg.Addr.IP == 0 || cfg.Addr.Port == 0 {
		return fmt.Errorf("httpsim: Config.Addr %v is not a usable endpoint", cfg.Addr)
	}
	return nil
}

// event is one pending notification in the application.
type event struct {
	// accept event when ls != nil, request event otherwise.
	ls   *kernel.ListenSocket
	conn *kernel.Conn
	req  *Request
	seq  uint64
	fd   int
}

// Server is the single-process event-driven server (Fig. 2/10).
type Server struct {
	cfg    Config
	k      *kernel.Kernel
	proc   *kernel.Process
	thread *kernel.Thread
	ls     *kernel.ListenSocket

	pending   []*event
	nextSeq   uint64
	openConns int
	busy      bool
	down      bool
	listeners []*kernel.ListenSocket
	fcgi      *FastCGIPool

	// Stats
	StaticServed uint64
	CGIServed    uint64
	CGIActive    int
	// DiskErrors counts requests shed because an injected disk media
	// error made the response impossible.
	DiskErrors uint64
	cgiLive    map[*kernel.Process]bool
	cgiCPUDone sim.Duration
}

// CGICPU returns the total CPU consumed by the server's CGI processes so
// far, including processes still running (Fig. 13's y axis).
func (s *Server) CGICPU() sim.Duration {
	total := s.cgiCPUDone
	for p := range s.cgiLive {
		total += p.CPUTime()
	}
	return total
}

// NewServer creates and binds the server. The returned server is running:
// it reacts to kernel upcalls as soon as the simulation delivers them.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "httpd"
	}
	s := &Server{cfg: cfg, k: cfg.Kernel}
	s.proc = s.k.NewProcess(cfg.Name)
	s.thread = s.proc.NewThread("main")
	var err error
	s.ls, err = s.listen(cfg.Addr, netsim.Wildcard, nil, cfg.AcceptBacklog)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Process returns the server's process.
func (s *Server) Process() *kernel.Process { return s.proc }

// ListenSocket returns the server's default listening socket.
func (s *Server) ListenSocket() *kernel.ListenSocket { return s.ls }

// AddListener binds an additional (typically filtered) listening socket
// with its own container — the §4.8/§5.7 mechanism.
func (s *Server) AddListener(filter netsim.Filter, cont *rc.Container) (*kernel.ListenSocket, error) {
	return s.listen(s.cfg.Addr, filter, cont, s.cfg.AcceptBacklog)
}

func (s *Server) listen(addr netsim.Addr, filter netsim.Filter, cont *rc.Container, backlog int) (*kernel.ListenSocket, error) {
	ls, err := s.k.Listen(s.proc, kernel.ListenConfig{
		Local:         addr,
		Filter:        filter,
		Container:     cont,
		AcceptBacklog: backlog,
		OnAcceptable:  func(ls *kernel.ListenSocket) { s.post(&event{ls: ls, fd: 0}) },
		OnSynDrop:     s.cfg.OnSynDrop,
	})
	if err != nil {
		return nil, err
	}
	s.listeners = append(s.listeners, ls)
	return ls, nil
}

// Shutdown crash-stops the server worker: every listening socket is
// unbound (subsequent SYNs go unanswered), every open connection is torn
// down (in-flight requests die and their clients time out), and the
// process exits. It models the abrupt death of a worker for the
// resilience experiments — pair it with fault.StartCrasher and recover
// by constructing a fresh server. Down servers ignore further events.
func (s *Server) Shutdown() {
	if s.down {
		return
	}
	s.down = true
	s.k.Tracer.Emitf(s.k.Now(), trace.KindCrash, "server %s crash-stopped", s.cfg.Name)
	for _, ls := range s.listeners {
		ls.Close()
	}
	s.k.CloseConnsOf(s.proc)
	s.pending = nil
	s.proc.Exit()
}

// Down reports whether the server has been crash-stopped.
func (s *Server) Down() bool { return s.down }

// post records a pending application event and starts the main loop if it
// is idle.
func (s *Server) post(ev *event) {
	if s.down {
		return
	}
	ev.seq = s.nextSeq
	s.nextSeq++
	s.pending = append(s.pending, ev)
	s.loop()
}

// defaultContainer is the charge target for work not yet attributable to
// a connection.
func (s *Server) defaultContainer() *rc.Container { return s.proc.DefaultContainer }

func (s *Server) rcMode() bool { return s.k.Mode() == kernel.ModeRC }

// loop drives the event-handling cycle when the server has work and is
// not already in one.
func (s *Server) loop() {
	if s.busy || len(s.pending) == 0 {
		return
	}
	s.busy = true
	switch s.cfg.API {
	case SelectAPI:
		s.selectCycle()
	default:
		s.pollCycle()
	}
}

// selectCycle: one select() call, then handle the returned batch in fd
// order.
func (s *Server) selectCycle() {
	costs := s.k.Costs()
	cost := costs.SelectBase + sim.Duration(s.openConns+1)*costs.SelectPerFD
	s.thread.PostFunc("select", cost, rc.KernelCPU, s.defaultContainer(), func() {
		batch := s.pending
		s.pending = nil
		// select() reports readiness as a bitmap, so the application
		// scans and handles the batch in descriptor order — this loss of
		// priority information is the inefficiency "inherent in the
		// semantics of the select() API" that §5.5 measures and the new
		// event API removes.
		sortEvents(batch)
		s.runBatch(batch, 0)
	})
}

func sortEvents(evs []*event) {
	// Insertion sort by (fd, arrival): batches are small and this keeps
	// ordering stable and allocation-free.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := evs[j-1], evs[j]
			if a.fd > b.fd || (a.fd == b.fd && a.seq > b.seq) {
				evs[j-1], evs[j] = b, a
			} else {
				break
			}
		}
	}
}

func (s *Server) runBatch(batch []*event, i int) {
	if i >= len(batch) {
		s.busy = false
		s.loop()
		return
	}
	s.handle(batch[i], func() { s.runBatch(batch, i+1) })
}

// pollCycle: one event-API call returning the single best event. With
// resource containers the kernel orders events by container priority;
// without them it is FIFO.
func (s *Server) pollCycle() {
	s.thread.PostFunc("getevent", s.k.Costs().EventPoll, rc.KernelCPU, s.defaultContainer(), func() {
		ev := s.takeBest()
		if ev == nil {
			s.busy = false
			return
		}
		s.handle(ev, func() {
			s.busy = false
			s.loop()
		})
	})
}

func (s *Server) takeBest() *event {
	if len(s.pending) == 0 {
		return nil
	}
	best := 0
	if s.rcMode() {
		for i := 1; i < len(s.pending); i++ {
			if s.eventPriority(s.pending[i]) > s.eventPriority(s.pending[best]) {
				best = i
			}
		}
	}
	ev := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	return ev
}

func (s *Server) eventPriority(ev *event) int {
	var c *rc.Container
	if ev.ls != nil {
		c = ev.ls.Container()
	} else if ev.conn != nil {
		c = ev.conn.Container()
	}
	if c == nil {
		return 0
	}
	return c.EffectivePriority()
}

// handle dispatches one event and calls next when its synchronous work
// completes (response transmission continues asynchronously).
func (s *Server) handle(ev *event, next func()) {
	if ev.ls != nil {
		s.handleAccept(ev.ls, next)
		return
	}
	s.handleRequest(ev.conn, ev.req, next)
}

func (s *Server) handleAccept(ls *kernel.ListenSocket, next func()) {
	costs := s.k.Costs()
	cost := costs.ConnSetup
	if s.rcMode() && s.cfg.PerConnContainers && s.cfg.ContainerOpsPerRequest {
		// create container + bind socket + (later) destroy: Table 1 costs.
		cost += costs.ContainerCreate + costs.ContainerRebind + costs.ContainerDestroy
	}
	s.thread.PostFunc("accept", cost, rc.KernelCPU, ls.Container(), func() {
		conn, ok := ls.Accept()
		if !ok {
			next()
			return
		}
		s.openConns++
		if s.rcMode() && s.cfg.PerConnContainers {
			prio := kernel.DefaultPriority
			if s.cfg.ConnPriority != nil {
				prio = s.cfg.ConnPriority(conn.Client())
			} else if ls.Container() != nil {
				// Inherit the listening socket's priority class.
				prio = ls.Container().EffectivePriority()
			}
			cc, err := rc.New(s.cfg.Parent, rc.TimeShare,
				fmt.Sprintf("conn-%d", conn.ID()), rc.Attributes{Priority: prio})
			if err == nil {
				conn.SetContainer(cc)
			}
		}
		conn.SetOnRequest(func(c *kernel.Conn, payload any) {
			req, ok := payload.(*Request)
			if !ok {
				return
			}
			s.post(&event{conn: c, req: req, fd: c.FD()})
		})
		next()
	})
}

func (s *Server) handleRequest(conn *kernel.Conn, req *Request, next func()) {
	if conn.Closed() {
		next()
		return
	}
	switch req.Kind {
	case CGI:
		s.handleCGI(conn, req, next)
	case Module:
		s.handleModule(conn, req, next)
	default:
		s.handleStatic(conn, req, next)
	}
}

// handleModule serves a dynamic resource with an in-process library
// module (ISAPI/NSAPI style, §2). No fault isolation, no process switch:
// the server "simply binds its thread to the appropriate container"
// (§4.8), so the dynamic computation is charged to the request's
// activity.
func (s *Server) handleModule(conn *kernel.Conn, req *Request, next func()) {
	s.thread.PostFunc("module", req.CGICPU, rc.UserCPU, conn.Container(), func() {
		conn.Send(s.thread, req.Size, conn.Container(), func() {
			if req.OnResponse != nil {
				req.OnResponse(s.k.Now())
			}
		})
		if req.CloseAfter {
			s.closeConn(conn)
		}
		s.CGIServed++
		next()
	})
}

func (s *Server) handleStatic(conn *kernel.Conn, req *Request, next func()) {
	costs := s.k.Costs()
	finish := func() {
		conn.Send(s.thread, req.Size, conn.Container(), func() {
			if req.OnResponse != nil {
				req.OnResponse(s.k.Now())
			}
		})
		if req.CloseAfter {
			s.closeConn(conn)
		}
		s.StaticServed++
	}
	s.thread.PostFunc("static", costs.UserStatic, rc.UserCPU, conn.Container(), func() {
		if req.Path != "" {
			// Named document: consult the filesystem cache. Cache memory
			// is charged to the guest (or server) container; the disk
			// time of a miss to the connection's activity (§4.4).
			memC := s.cfg.CacheContainer
			if memC == nil {
				memC = s.cfg.Parent
			}
			if memC == nil {
				memC = s.defaultContainer()
			}
			s.k.FileCache().Read(req.Path, req.Size, conn.Container(), memC, func() {
				if !conn.Closed() {
					finish()
				}
			})
			next()
			return
		}
		if !req.Uncached {
			finish()
			next()
			return
		}
		// A cache miss: the document comes off the disk, DMA overlapping
		// with other CPU work; the disk time is charged to the
		// connection's container (§4.4). The event loop moves on and the
		// response is sent when the read completes.
		ok := s.k.Disk().ReadWithError(conn.Container(), req.Size, func() {
			if !conn.Closed() {
				finish()
			}
		}, func() {
			// Injected media error: the response cannot be produced, so
			// shed the request now instead of leaving the client to time
			// out against a silent server.
			s.DiskErrors++
			s.closeConn(conn)
		})
		if !ok {
			// Disk queue overflow: the request is dropped (the client
			// will time out), as an overloaded server would shed it.
			s.closeConn(conn)
		}
		next()
	})
}

// closeConn tears down the connection and releases any per-connection
// container (the teardown CPU cost is part of ConnSetup).
func (s *Server) closeConn(conn *kernel.Conn) {
	if conn.Closed() {
		return
	}
	cc := conn.Container()
	conn.Close()
	s.openConns--
	if s.rcMode() && s.cfg.PerConnContainers && cc != nil && cc != s.defaultContainer() {
		_ = cc.Release()
	}
}

func (s *Server) handleCGI(conn *kernel.Conn, req *Request, next func()) {
	if s.fcgi != nil {
		// Persistent CGI servers: a cheap IPC dispatch instead of a fork.
		s.thread.PostFunc("fcgi-dispatch", DispatchCost, rc.UserCPU, conn.Container(), func() {
			s.fcgi.dispatch(conn, req)
			next()
		})
		return
	}
	costs := s.k.Costs()
	s.thread.PostFunc("cgi-dispatch", costs.UserCGIDispatch, rc.UserCPU, conn.Container(), func() {
		s.spawnCGI(conn, req)
		next()
	})
}

// spawnCGI runs the dynamic request in an auxiliary process, with its
// container parented under CGIParent when sandboxing is configured
// (§4.8: "pass the connection's container to the CGI process").
func (s *Server) spawnCGI(conn *kernel.Conn, req *Request) {
	proc, err := s.proc.Fork(s.cfg.Name + "-cgi")
	if err != nil {
		return
	}
	if s.cgiLive == nil {
		s.cgiLive = make(map[*kernel.Process]bool)
	}
	s.cgiLive[proc] = true
	var cont *rc.Container
	if s.rcMode() {
		cont, err = rc.New(s.cfg.CGIParent, rc.TimeShare, "cgi-req",
			rc.Attributes{Priority: kernel.DefaultPriority})
		if err != nil {
			cont = conn.Container()
		}
	}
	s.CGIActive++
	th := proc.NewThread("cgi")
	th.PostFunc("cgi-compute", req.CGICPU, rc.UserCPU, cont, func() {
		conn.Send(th, req.Size, cont, func() {
			if req.OnResponse != nil {
				req.OnResponse(s.k.Now())
			}
		})
		// Allow the send work to complete before the process exits.
		th.PostFunc("cgi-exit", 1, rc.KernelCPU, cont, func() {
			s.closeConn(conn)
			s.CGIServed++
			s.CGIActive--
			if cont != nil && cont != conn.Container() {
				_ = cont.Release()
			}
			s.cgiCPUDone += proc.CPUTime()
			delete(s.cgiLive, proc)
			proc.Exit()
		})
	})
}
