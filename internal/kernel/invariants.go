package kernel

import (
	"fmt"

	"rescon/internal/fault"
	"rescon/internal/rc"
)

// WatchInvariants registers the kernel's live state with the runtime
// invariant checker: the container hierarchies reachable from every
// process's default container (for the CPU-conservation and
// non-negativity checks), the bounded per-container protocol queues and
// listen-socket accept/SYN queues (for the queue-bound check), and the
// connection-lifecycle conservation invariant (every established
// connection is open or closed exactly once — none lost). The sources
// are re-evaluated at every checker tick, so processes, sockets and
// containers created after this call are still covered.
func (k *Kernel) WatchInvariants(ch *fault.Checker) {
	ch.WatchContainerSource(func() []*rc.Container {
		var out []*rc.Container
		for _, p := range k.procs {
			if p.DefaultContainer != nil {
				out = append(out, p.DefaultContainer)
			}
		}
		return out
	})
	ch.WatchQueueSource(func() []fault.QueueState {
		var out []fault.QueueState
		for _, p := range k.procs {
			if p.netQ == nil {
				continue
			}
			for _, cq := range p.netQ.queues {
				name := p.name + "/netq"
				if cq.c != nil {
					name = fmt.Sprintf("%s:%v", name, cq.c)
				}
				// +1 slack: requeueFront may return one borrowed item to a
				// full queue (see netsim.Queue.PushFront).
				out = append(out, fault.QueueState{
					Name:  name,
					Len:   cq.q.Len(),
					Bound: p.netQ.backlog + 1,
				})
			}
		}
		return out
	})
	ch.WatchQueueSource(func() []fault.QueueState {
		var out []fault.QueueState
		for _, ls := range k.net.socks {
			if ls.closed {
				continue
			}
			out = append(out,
				fault.QueueState{
					Name:  "accept:" + ls.cfg.Local.String(),
					Len:   ls.acceptQ.Len(),
					Bound: ls.acceptQ.Cap(),
				},
				fault.QueueState{
					Name:  "syn:" + ls.cfg.Local.String(),
					Len:   ls.synQ.Len(),
					Bound: ls.synQ.Cap(),
				})
		}
		return out
	})
	ch.MustWatchCheck("conn-conservation", func() string {
		est, closed, open := k.net.established, k.net.closed, uint64(k.net.conns.live)
		if est != closed+open {
			return fmt.Sprintf("established %d != closed %d + open %d", est, closed, open)
		}
		return ""
	})
}
