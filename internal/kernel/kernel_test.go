package kernel

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func newKernel(mode Mode) (*sim.Engine, *Kernel) {
	eng := sim.NewEngine(1)
	return eng, New(eng, mode, DefaultCosts())
}

func TestModeString(t *testing.T) {
	if ModeUnmodified.String() != "Unmodified" || ModeLRP.String() != "LRP" || ModeRC.String() != "RC" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode formatting")
	}
}

func TestPostAndComplete(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("p")
	th := p.NewThread("t")
	var done []string
	th.PostFunc("a", 3*sim.Millisecond, rc.UserCPU, nil, func() { done = append(done, "a") })
	th.PostFunc("b", sim.Millisecond, rc.UserCPU, nil, func() { done = append(done, "b") })
	eng.Run()
	if len(done) != 2 || done[0] != "a" || done[1] != "b" {
		t.Fatalf("completion order %v", done)
	}
	if eng.Now() != sim.Time(4*sim.Millisecond) {
		t.Fatalf("clock %v, want 4ms", eng.Now())
	}
	if th.CPUTime() != 4*sim.Millisecond || p.CPUTime() != 4*sim.Millisecond {
		t.Fatalf("cpu accounting: thread %v proc %v", th.CPUTime(), p.CPUTime())
	}
}

func TestZeroCostWorkCompletes(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("p")
	th := p.NewThread("t")
	fired := false
	th.PostFunc("z", 0, rc.UserCPU, nil, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-cost work never completed")
	}
}

func TestWorkChargedToContainer(t *testing.T) {
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("p")
	th := p.NewThread("t")
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 5})
	th.PostFunc("w", 2*sim.Millisecond, rc.UserCPU, c, nil)
	th.PostFunc("kx", sim.Millisecond, rc.KernelCPU, c, nil)
	eng.Run()
	u := c.Usage()
	if u.CPUUser != 2*sim.Millisecond || u.CPUKernel != sim.Millisecond {
		t.Fatalf("container usage %+v", u)
	}
}

func TestModeRCRequiresContainer(t *testing.T) {
	_, k := newKernel(ModeRC)
	p := k.NewProcess("p")
	th := p.NewThread("t")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil-container item in ModeRC")
		}
	}()
	th.PostFunc("bad", sim.Millisecond, rc.UserCPU, nil, nil)
}

func TestTwoProcessesShareCPU(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	pa := k.NewProcess("a")
	pb := k.NewProcess("b")
	ta := pa.NewThread("t")
	tb := pb.NewThread("t")
	// Both saturate for the duration.
	ta.PostFunc("wa", 10*sim.Second, rc.UserCPU, nil, nil)
	tb.PostFunc("wb", 10*sim.Second, rc.UserCPU, nil, nil)
	eng.RunUntil(sim.Time(10 * sim.Second))
	ra := float64(pa.CPUTime()) / float64(10*sim.Second)
	rb := float64(pb.CPUTime()) / float64(10*sim.Second)
	if ra < 0.47 || ra > 0.53 || rb < 0.47 || rb > 0.53 {
		t.Fatalf("shares a=%.3f b=%.3f, want ~0.5 each", ra, rb)
	}
}

func TestInterruptPreemptsThread(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("p")
	th := p.NewThread("t")
	var itemDone, intrDone sim.Time
	th.PostFunc("w", 100*sim.Microsecond, rc.UserCPU, nil, func() { itemDone = eng.Now() })
	// Interrupt arrives mid-item.
	eng.After(50*sim.Microsecond, func() {
		k.cpu.RaiseInterrupt(&intrWork{label: "i", cost: 30 * sim.Microsecond,
			onDone: func() { intrDone = eng.Now() }})
	})
	eng.Run()
	if intrDone != sim.Time(80*sim.Microsecond) {
		t.Fatalf("interrupt done at %v, want 80µs", intrDone)
	}
	if itemDone != sim.Time(130*sim.Microsecond) {
		t.Fatalf("item done at %v, want 130µs (delayed by interrupt)", itemDone)
	}
	if k.InterruptTime() != 30*sim.Microsecond {
		t.Fatalf("interrupt time %v", k.InterruptTime())
	}
	// The preempted thread keeps its already-executed time.
	if th.CPUTime() != 100*sim.Microsecond {
		t.Fatalf("thread cpu %v, want 100µs", th.CPUTime())
	}
}

func TestInterruptsFIFO(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	var order []int
	eng.After(0, func() {
		k.cpu.RaiseInterrupt(&intrWork{cost: 10 * sim.Microsecond, onDone: func() { order = append(order, 1) }})
		k.cpu.RaiseInterrupt(&intrWork{cost: 10 * sim.Microsecond, onDone: func() { order = append(order, 2) }})
	})
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("interrupt order %v", order)
	}
}

func TestMisaccountingChargesPreempted(t *testing.T) {
	// Unmodified mode: interrupt work inflates the preempted process's
	// scheduler usage, shifting CPU away from it (§3.2/§5.6).
	eng, k := newKernel(ModeUnmodified)
	victim := k.NewProcess("victim")
	other := k.NewProcess("other")
	tv := victim.NewThread("t")
	to := other.NewThread("t")
	tv.PostFunc("w", 10*sim.Second, rc.UserCPU, nil, nil)
	to.PostFunc("w", 10*sim.Second, rc.UserCPU, nil, nil)
	// Periodic interrupts that always hit the victim: fire whenever the
	// victim is the running thread.
	eng.Every(500*sim.Microsecond, func() {
		if k.cpu.cur != nil && k.cpu.cur.th == tv {
			k.cpu.RaiseInterrupt(&intrWork{cost: 200 * sim.Microsecond, chargePreempted: true})
		}
	})
	eng.RunUntil(sim.Time(5 * sim.Second))
	if victim.CPUTime() >= other.CPUTime() {
		t.Fatalf("victim of misaccounting should receive less CPU: victim=%v other=%v",
			victim.CPUTime(), other.CPUTime())
	}
}

// --- network path ---

var srvAddr = Addr("10.0.0.1", 80)

// client returns a client endpoint on the test client subnet.
func client(port uint16) Address { return Addr("10.1.0.1", port) }

func TestConnectionEstablishAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeUnmodified, ModeLRP, ModeRC} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			eng, k := newKernel(mode)
			p := k.NewProcess("httpd")
			accepted := 0
			ls, err := k.Listen(p, ListenConfig{
				Local: srvAddr,
				OnAcceptable: func(l *ListenSocket) {
					if c, ok := l.Accept(); ok && c != nil {
						accepted++
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			k.ClientSend(SYNPacket(client(4000), srvAddr, false))
			eng.Run()
			if accepted != 1 {
				t.Fatalf("accepted %d, want 1", accepted)
			}
			if ls.Accepted() != 1 {
				t.Fatalf("socket accepted %d", ls.Accepted())
			}
		})
	}
}

func TestDataDeliveryAndSend(t *testing.T) {
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	th := p.NewThread("main")
	var conn *Conn
	var gotPayload any
	var delivered sim.Time
	_, err := k.Listen(p, ListenConfig{
		Local: srvAddr,
		OnAcceptable: func(l *ListenSocket) {
			conn, _ = l.Accept()
			conn.OnRequest = func(c *Conn, payload any) {
				gotPayload = payload
				c.Send(th, 1024, c.Container(), func() { delivered = eng.Now() })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := client(4000)
	k.ClientSend(SYNPacket(cl, srvAddr, false))
	eng.After(10*sim.Millisecond, func() {
		k.ClientSend(DataPacket(cl, srvAddr, conn.ID(), 512, "GET /"))
	})
	eng.Run()
	if gotPayload != "GET /" {
		t.Fatalf("payload %v", gotPayload)
	}
	if delivered == 0 {
		t.Fatal("response never delivered")
	}
	u := conn.Container().Usage()
	if u.PacketsIn == 0 || u.PacketsOut != 1 || u.BytesOut != 1024 {
		t.Fatalf("conn container usage %+v", u)
	}
	// Kernel protocol processing must be charged to the container.
	if u.CPUKernel == 0 {
		t.Fatal("no kernel CPU charged to connection container")
	}
}

func TestFINClosesConn(t *testing.T) {
	eng, k := newKernel(ModeLRP)
	p := k.NewProcess("httpd")
	var conn *Conn
	_, _ = k.Listen(p, ListenConfig{
		Local:        srvAddr,
		OnAcceptable: func(l *ListenSocket) { conn, _ = l.Accept() },
	})
	cl := client(4000)
	k.ClientSend(SYNPacket(cl, srvAddr, false))
	eng.After(10*sim.Millisecond, func() {
		k.ClientSend(FINPacket(cl, srvAddr, conn.ID()))
	})
	eng.Run()
	if !conn.Closed() {
		t.Fatal("connection should be closed after FIN")
	}
	if _, ok := k.LookupConn(conn.ID()); ok {
		t.Fatal("closed conn still in table")
	}
}

func TestBogusSYNOccupiesAndExpires(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("httpd")
	ls, _ := k.Listen(p, ListenConfig{Local: srvAddr, SynBacklog: 4})
	for i := 0; i < 3; i++ {
		k.ClientSend(SYNPacket(client(uint16(5000+i)), srvAddr, true))
	}
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	if got := ls.EmbryonicCount(); got != 3 {
		t.Fatalf("embryonic %d, want 3", got)
	}
	eng.RunUntil(sim.Time(10*sim.Millisecond) + sim.Time(BogusSynTimeout))
	if got := ls.EmbryonicCount(); got != 0 {
		t.Fatalf("embryonic after timeout %d, want 0", got)
	}
}

func TestBogusSYNOverflowNotifies(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("httpd")
	var drops int
	ls, _ := k.Listen(p, ListenConfig{
		Local:      srvAddr,
		SynBacklog: 2,
		OnSynDrop:  func(Address) { drops++ },
	})
	for i := 0; i < 5; i++ {
		k.ClientSend(SYNPacket(client(uint16(5000+i)), srvAddr, true))
	}
	eng.Run()
	if drops != 3 {
		t.Fatalf("drop notifications %d, want 3", drops)
	}
	if ls.SynDrops() != 3 {
		t.Fatalf("SynDrops %d", ls.SynDrops())
	}
}

func TestRCNetBacklogDropsAtDemux(t *testing.T) {
	// With the container throttled (priority 0 and a busy server), the
	// pending queue fills and further packets drop at demux (§5.7).
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	busy := p.NewThread("busy")
	busy.PostFunc("spin", 10*sim.Second, rc.UserCPU, p.DefaultContainer, nil)
	floodCont := rc.MustNew(nil, rc.TimeShare, "flood", rc.Attributes{Priority: 0})
	var drops int
	_, err := k.Listen(p, ListenConfig{
		Local:     srvAddr,
		Container: floodCont,
		OnSynDrop: func(Address) { drops++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultNetBacklog+10; i++ {
		k.ClientSend(SYNPacket(client(uint16(i)), srvAddr, true))
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	if drops != 10 {
		t.Fatalf("demux drops %d, want 10", drops)
	}
	if floodCont.Usage().PacketsDropped != 10 {
		t.Fatalf("container drop accounting %d", floodCont.Usage().PacketsDropped)
	}
}

func TestRCPriorityOrderProtocolProcessing(t *testing.T) {
	// Two connections with different container priorities: pending
	// packets for the high-priority container are processed first even
	// if they arrived later (§4.7).
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	hi := rc.MustNew(nil, rc.TimeShare, "hi", rc.Attributes{Priority: 20})
	lo := rc.MustNew(nil, rc.TimeShare, "lo", rc.Attributes{Priority: 1})
	var conns []*Conn
	var served []string
	_, _ = k.Listen(p, ListenConfig{
		Local: srvAddr,
		OnAcceptable: func(l *ListenSocket) {
			c, _ := l.Accept()
			if len(conns) == 0 {
				c.SetContainer(lo)
			} else {
				c.SetContainer(hi)
			}
			name := c.Container().Name()
			c.OnRequest = func(*Conn, any) { served = append(served, name) }
			conns = append(conns, c)
		},
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	k.ClientSend(SYNPacket(client(2), srvAddr, false))
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	if len(conns) != 2 {
		t.Fatalf("conns %d", len(conns))
	}
	// Stall the CPU with a long interrupt so both data packets are
	// pending when the kernel thread next runs; low-priority packet
	// arrives first.
	k.Arrive(DataPacket(client(1), srvAddr, conns[0].ID(), 100, nil))
	k.Arrive(DataPacket(client(2), srvAddr, conns[1].ID(), 100, nil))
	eng.Run()
	if len(served) != 2 || served[0] != "hi" || served[1] != "lo" {
		t.Fatalf("service order %v, want [hi lo]", served)
	}
}

func TestLRPFIFOOrderProtocolProcessing(t *testing.T) {
	// LRP processes packets in arrival order regardless of priority.
	eng, k := newKernel(ModeLRP)
	p := k.NewProcess("httpd")
	var conns []*Conn
	var served []int
	_, _ = k.Listen(p, ListenConfig{
		Local: srvAddr,
		OnAcceptable: func(l *ListenSocket) {
			c, _ := l.Accept()
			idx := len(conns)
			c.OnRequest = func(*Conn, any) { served = append(served, idx) }
			conns = append(conns, c)
		},
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	k.ClientSend(SYNPacket(client(2), srvAddr, false))
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	k.Arrive(DataPacket(client(1), srvAddr, conns[0].ID(), 100, nil))
	k.Arrive(DataPacket(client(2), srvAddr, conns[1].ID(), 100, nil))
	eng.Run()
	if len(served) != 2 || served[0] != 0 || served[1] != 1 {
		t.Fatalf("service order %v, want [0 1]", served)
	}
}

func TestFilteredListenSocketDemux(t *testing.T) {
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	var goodAccepts, badAccepts int
	_, _ = k.Listen(p, ListenConfig{
		Local:        srvAddr,
		OnAcceptable: func(l *ListenSocket) { l.Accept(); goodAccepts++ },
	})
	badPrefix := FilterCIDR("66.0.0.0", 8)
	_, _ = k.Listen(p, ListenConfig{
		Local:        srvAddr,
		Filter:       badPrefix,
		OnAcceptable: func(l *ListenSocket) { l.Accept(); badAccepts++ },
	})
	k.ClientSend(SYNPacket(Addr("66.1.2.3", 99), srvAddr, false))
	k.ClientSend(SYNPacket(Addr("10.9.9.9", 99), srvAddr, false))
	eng.Run()
	if goodAccepts != 1 || badAccepts != 1 {
		t.Fatalf("accepts good=%d bad=%d, want 1 each", goodAccepts, badAccepts)
	}
}

func TestProcessExitStopsThreads(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("p")
	th := p.NewThread("t")
	done := false
	th.PostFunc("w", 10*sim.Millisecond, rc.UserCPU, nil, func() { done = true })
	eng.After(sim.Millisecond, func() { p.Exit() })
	eng.Run()
	if done {
		t.Fatal("work completed after process exit")
	}
	if p.CPUTime() > 2*sim.Millisecond {
		t.Fatalf("process kept running after exit: %v", p.CPUTime())
	}
}

func TestListenOnExitedProcess(t *testing.T) {
	_, k := newKernel(ModeUnmodified)
	p := k.NewProcess("p")
	p.Exit()
	if _, err := k.Listen(p, ListenConfig{Local: srvAddr}); err == nil {
		t.Fatal("Listen on exited process should fail")
	}
}

func TestListenSocketClose(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("p")
	accepts := 0
	ls, _ := k.Listen(p, ListenConfig{
		Local:        srvAddr,
		OnAcceptable: func(l *ListenSocket) { accepts++ },
	})
	ls.Close()
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	eng.Run()
	if accepts != 0 {
		t.Fatal("closed socket accepted a connection")
	}
}

func TestListenContainerPrioritizesAcceptVsService(t *testing.T) {
	// §4.8: "the server can use the resource container associated with a
	// listening socket to set the priority of accepting new connections
	// relative to servicing the existing ones." With the listen socket at
	// priority 1 and existing connections at 20, pending protocol work
	// for existing connections runs before connection-request processing.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	lsCont := rc.MustNew(nil, rc.TimeShare, "listen", rc.Attributes{Priority: 1})
	connCont := rc.MustNew(nil, rc.TimeShare, "conns", rc.Attributes{Priority: 20})
	var served []string
	var conn *Conn
	_, _ = k.Listen(p, ListenConfig{
		Local:     srvAddr,
		Container: lsCont,
		OnAcceptable: func(l *ListenSocket) {
			c, ok := l.Accept()
			if !ok {
				return
			}
			if conn == nil {
				conn = c
				c.SetContainer(connCont)
				c.SetOnRequest(func(*Conn, any) { served = append(served, "data") })
				return
			}
			served = append(served, "accept")
		},
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	// Burst: a new SYN arrives just before data for the existing
	// connection; the data (priority 20) must be processed first even
	// though the SYN arrived first.
	k.Arrive(SYNPacket(client(2), srvAddr, false))
	k.Arrive(DataPacket(client(1), srvAddr, conn.ID(), 100, nil))
	eng.Run()
	if len(served) != 2 || served[0] != "data" || served[1] != "accept" {
		t.Fatalf("service order %v, want [data accept]", served)
	}
}

func TestComplementFilterDefense(t *testing.T) {
	// The suggested complement filters (§4.8): bind the premium service
	// to "everyone except the attack prefix" and the attackers' socket to
	// the prefix itself.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	var goodConns, badConns int
	_, err := k.Listen(p, ListenConfig{
		Local:        srvAddr,
		Filter:       FilterCIDRComplement("66.0.0.0", 8),
		OnAcceptable: func(l *ListenSocket) { l.Accept(); goodConns++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.Listen(p, ListenConfig{
		Local:        srvAddr,
		Filter:       FilterCIDR("66.0.0.0", 8),
		OnAcceptable: func(l *ListenSocket) { l.Accept(); badConns++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	k.ClientSend(SYNPacket(Addr("9.9.9.9", 99), srvAddr, false))
	k.ClientSend(SYNPacket(Addr("66.1.2.3", 99), srvAddr, false))
	k.ClientSend(SYNPacket(Addr("10.1.1.1", 99), srvAddr, false))
	eng.Run()
	if goodConns != 2 || badConns != 1 {
		t.Fatalf("good=%d bad=%d, want 2/1", goodConns, badConns)
	}
}

func TestUtilizationBreakdown(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("app")
	p.NewThread("t").PostFunc("w", 400*sim.Millisecond, rc.UserCPU, nil, nil)
	eng.After(0, func() {
		k.cpu.RaiseInterrupt(&intrWork{cost: 100 * sim.Millisecond})
	})
	eng.RunUntil(sim.Time(sim.Second))
	u := k.Utilization()
	if u.Busy != 0.4 || u.Interrupt != 0.1 {
		t.Fatalf("utilization %+v, want busy 0.4 intr 0.1", u)
	}
	if u.Idle < 0.499 || u.Idle > 0.501 {
		t.Fatalf("idle %v, want 0.5", u.Idle)
	}
}

func TestUtilizationAtTimeZero(t *testing.T) {
	_, k := newKernel(ModeUnmodified)
	if u := k.Utilization(); u.Idle != 1 {
		t.Fatalf("fresh machine utilization %+v", u)
	}
}
