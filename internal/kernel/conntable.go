package kernel

// Flyweight connection state: at datacenter scale (§1M concurrent
// connections) a map[uint64]*Conn with one heap allocation per
// connection dominates the SYN/FIN hot path. The connTable replaces it
// with slab-allocated Conn storage addressed by dense uint32 handles and
// a paged id→handle index, so establishing and tearing down a connection
// performs no per-connection heap allocation in steady state (one slab
// per connSlabSize conns, one index page per connPageSize ids) and a
// data-packet route is two array indexations instead of a map probe.
//
// Safety rules the layout depends on:
//
//   - Slots are never reused within a slab's lifetime: a slab's storage
//     is reclaimed only once every slot has been handed out AND every
//     connection in it has closed. Stale *Conn pointers held by the
//     application (which checks Conn.Closed) therefore keep only the old
//     slab array alive — they can never alias a newer connection.
//   - Connection ids are never reused, so the id index is written once
//     per id and zeroed on close; a freed index page can never receive a
//     future id (pages are freed only once id allocation has moved past
//     them).

const (
	// connSlabSize is the number of Conn structs per slab.
	connSlabSize = 1024
	// connPageSize is the number of connection ids per index page.
	connPageSize = 4096
)

// connSlab is one arena block of connection state.
type connSlab struct {
	conns [connSlabSize]Conn
	used  int // slots handed out; never decremented (no slot reuse)
	live  int // slots holding a not-yet-closed connection
}

// idPage is one block of the id→handle index.
type idPage struct {
	handles [connPageSize]uint32 // 0 = no such connection
	live    int
}

// connTable stores every established connection.
type connTable struct {
	slabs []*connSlab
	// open is the slab currently being filled (-1 before the first
	// allocation); freed slab indices are recycled via freeSlabs with a
	// fresh backing array each time.
	open      int
	freeSlabs []int
	pages     []*idPage
	live      int
}

func newConnTable() *connTable { return &connTable{open: -1} }

// alloc hands out a fresh Conn slot and its handle. The Conn is zeroed;
// the caller fills it in and then registers it with insert.
func (t *connTable) alloc() (*Conn, uint32) {
	if t.open < 0 || t.slabs[t.open] == nil || t.slabs[t.open].used == connSlabSize {
		if n := len(t.freeSlabs); n > 0 {
			t.open = t.freeSlabs[n-1]
			t.freeSlabs = t.freeSlabs[:n-1]
			t.slabs[t.open] = &connSlab{}
		} else {
			t.open = len(t.slabs)
			t.slabs = append(t.slabs, &connSlab{})
		}
	}
	s := t.slabs[t.open]
	slot := s.used
	s.used++
	s.live++
	return &s.conns[slot], uint32(t.open*connSlabSize+slot) + 1
}

// conn resolves a non-zero handle to its Conn.
func (t *connTable) conn(h uint32) *Conn {
	h--
	return &t.slabs[h/connSlabSize].conns[h%connSlabSize]
}

// insert registers the id→handle mapping for a just-established
// connection.
func (t *connTable) insert(id uint64, h uint32) {
	pi := int(id / connPageSize)
	for len(t.pages) <= pi {
		t.pages = append(t.pages, nil)
	}
	p := t.pages[pi]
	if p == nil {
		p = &idPage{}
		t.pages[pi] = p
	}
	p.handles[id%connPageSize] = h
	p.live++
	t.live++
}

// lookup returns the connection with the given id, or nil.
func (t *connTable) lookup(id uint64) *Conn {
	pi := int(id / connPageSize)
	if pi >= len(t.pages) {
		return nil
	}
	p := t.pages[pi]
	if p == nil {
		return nil
	}
	h := p.handles[id%connPageSize]
	if h == 0 {
		return nil
	}
	return t.conn(h)
}

// remove drops a closed connection from the table. lastID is the most
// recently issued connection id: an index page is reclaimed only when no
// future id can land in it.
func (t *connTable) remove(id, lastID uint64) {
	pi := int(id / connPageSize)
	if pi >= len(t.pages) || t.pages[pi] == nil {
		return
	}
	p := t.pages[pi]
	off := id % connPageSize
	h := p.handles[off]
	if h == 0 {
		return
	}
	p.handles[off] = 0
	p.live--
	t.live--
	if p.live == 0 && pi < int((lastID+1)/connPageSize) {
		t.pages[pi] = nil
	}
	si := int(h-1) / connSlabSize
	s := t.slabs[si]
	s.live--
	if s.live == 0 && s.used == connSlabSize {
		// Fully retired slab: recycle the index with a fresh array. Stale
		// application pointers keep the old array alive on their own.
		t.slabs[si] = nil
		t.freeSlabs = append(t.freeSlabs, si)
		if t.open == si {
			t.open = -1
		}
	}
}

// each visits every open connection in ascending id order.
func (t *connTable) each(f func(*Conn)) {
	for _, p := range t.pages {
		if p == nil || p.live == 0 {
			continue
		}
		for i := 0; i < connPageSize; i++ {
			if h := p.handles[i]; h != 0 {
				f(t.conn(h))
			}
		}
	}
}
