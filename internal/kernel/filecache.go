package kernel

import (
	"container/list"
	"errors"

	"rescon/internal/rc"
	"rescon/internal/trace"
)

// DefaultCacheCapacity is the filesystem cache size (bytes).
const DefaultCacheCapacity = 8 << 20 // 8 MB, a 1999-era buffer cache

// FileCache models the filesystem buffer cache with resource-container
// accounting (§4.4: "physical memory ... can be conveniently controlled
// by resource containers"): every cached page is charged, as memory, to
// the container that faulted it in, so a MemLimit on a subtree acts as a
// cache quota. When a subtree reaches its quota it evicts *its own*
// least-recently-used documents rather than another activity's — the
// isolation property the application-controlled caching literature [9]
// argues for, here enforced by the container hierarchy.
type FileCache struct {
	k        *Kernel
	capacity int64
	used     int64
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recent

	// Stats
	hits      uint64
	misses    uint64
	evictions uint64

	// Per-container stats, keyed by the memory-charged container (the
	// guest/server container, not the transient per-connection
	// activity) — the demand signal the adaptive rebalancer consumes:
	// a guest's miss counter climbing while a sibling's idles is the
	// evidence for moving cache quota between them.
	perC map[*rc.Container]*containerCacheStats
}

type containerCacheStats struct {
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	path string
	size int64
	cont *rc.Container
	elem *list.Element
}

// FileCache returns the kernel's filesystem cache, creating it on first
// use.
func (k *Kernel) FileCache() *FileCache {
	if k.fcache == nil {
		k.fcache = &FileCache{
			k:        k,
			capacity: DefaultCacheCapacity,
			entries:  make(map[string]*cacheEntry),
			lru:      list.New(),
		}
	}
	return k.fcache
}

// SetCapacity resizes the cache (evicting as needed).
func (fc *FileCache) SetCapacity(bytes int64) {
	fc.capacity = bytes
	for fc.used > fc.capacity {
		if !fc.evictGlobalLRU() {
			break
		}
	}
}

// Stats returns (hits, misses, evictions).
func (fc *FileCache) Stats() (hits, misses, evictions uint64) {
	return fc.hits, fc.misses, fc.evictions
}

// ContainerStats returns the hit/miss counters attributed to the given
// memory-charged container (the memC argument of Read). Zeroes for a
// container that has never been charged.
func (fc *FileCache) ContainerStats(c *rc.Container) (hits, misses uint64) {
	if s, ok := fc.perC[c]; ok {
		return s.hits, s.misses
	}
	return 0, 0
}

func (fc *FileCache) statsFor(c *rc.Container) *containerCacheStats {
	if c == nil {
		return nil
	}
	if fc.perC == nil {
		fc.perC = make(map[*rc.Container]*containerCacheStats)
	}
	s, ok := fc.perC[c]
	if !ok {
		s = &containerCacheStats{}
		fc.perC[c] = s
	}
	return s
}

// Used returns the bytes currently cached.
func (fc *FileCache) Used() int64 { return fc.used }

// Contains reports whether the document is cached, without touching LRU
// state.
func (fc *FileCache) Contains(path string) bool {
	_, ok := fc.entries[path]
	return ok
}

// Read serves a document: a hit calls onReady immediately (the page is in
// memory); a miss reads the document from disk and inserts it. The disk
// time is charged to diskC (the faulting activity); the cached memory is
// charged to memC — typically a long-lived guest or server container, so
// MemLimit there bounds the guest's cache footprint even though its
// per-connection activity containers come and go. Read reports whether
// the access was a hit. If the disk queue is full the read is dropped and
// onReady never fires (the server sheds the request).
func (fc *FileCache) Read(path string, size int, diskC, memC *rc.Container, onReady func()) (hit bool) {
	if e, ok := fc.entries[path]; ok {
		fc.hits++
		if s := fc.statsFor(memC); s != nil {
			s.hits++
		}
		fc.lru.MoveToFront(e.elem)
		if onReady != nil {
			onReady()
		}
		return true
	}
	fc.misses++
	if s := fc.statsFor(memC); s != nil {
		s.misses++
	}
	fc.k.Disk().Read(diskC, size, func() {
		fc.insert(path, int64(size), memC)
		if onReady != nil {
			onReady()
		}
	})
	return false
}

// insert adds a faulted-in document, evicting to make room: first within
// the faulting subtree if its memory quota is exhausted, then globally.
func (fc *FileCache) insert(path string, size int64, c *rc.Container) {
	if size > fc.capacity {
		return // uncacheable
	}
	if _, ok := fc.entries[path]; ok {
		return // raced in by a concurrent fault
	}
	// Global capacity.
	for fc.used+size > fc.capacity {
		if !fc.evictGlobalLRU() {
			return
		}
	}
	// Subtree quota: charge the memory; on limit, evict this activity's
	// own root-subtree entries and retry.
	if c != nil && !c.Destroyed() {
		for {
			err := c.ChargeMemory(size)
			if err == nil {
				break
			}
			if !errors.Is(err, rc.ErrMemLimit) {
				return
			}
			if !fc.evictSubtreeLRU(c.Root()) {
				// The subtree's quota cannot fit this document at all:
				// serve it uncached (the activity thrashes only itself).
				fc.k.Tracer.Emitf(fc.k.Now(), trace.KindDrop,
					"cache quota: %q not cached for %v", path, c)
				return
			}
		}
	}
	e := &cacheEntry{path: path, size: size, cont: c}
	e.elem = fc.lru.PushFront(e)
	fc.entries[path] = e
	fc.used += size
}

// evictGlobalLRU removes the least-recently-used entry.
func (fc *FileCache) evictGlobalLRU() bool {
	back := fc.lru.Back()
	if back == nil {
		return false
	}
	fc.remove(back.Value.(*cacheEntry))
	return true
}

// evictSubtreeLRU removes the least-recently-used entry charged within
// the given root's subtree.
func (fc *FileCache) evictSubtreeLRU(root *rc.Container) bool {
	for el := fc.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.cont != nil && !e.cont.Destroyed() && e.cont.Root() == root {
			fc.remove(e)
			return true
		}
	}
	return false
}

func (fc *FileCache) remove(e *cacheEntry) {
	fc.lru.Remove(e.elem)
	delete(fc.entries, e.path)
	fc.used -= e.size
	fc.evictions++
	if e.cont != nil && !e.cont.Destroyed() {
		_ = e.cont.ChargeMemory(-e.size)
	}
}
