package kernel

import "rescon/internal/sim"

// CostModel holds the CPU cost of every kernel and application processing
// stage. The defaults are calibrated against the paper's measurements on
// a 500 MHz Alpha 21164 running Digital UNIX 4.0D (§5.2–§5.3), so the
// simulated server reproduces the paper's absolute operating points:
//
//   - 1 connection/request HTTP, cached 1 KB file: 338 µs/request
//     => 2954 requests/second at CPU saturation.
//   - persistent-connection HTTP: 105 µs/request => 9487 requests/second.
//   - unmodified-kernel SYN processing ≈ 109 µs at interrupt level
//     => throughput reaches zero near 10,000 SYNs/s (Fig. 14).
//   - early-demux packet filter ≈ 3.8 µs at interrupt level
//     => ≈73% of peak throughput remains at 70,000 SYNs/s (Fig. 14).
//
// Budget for one non-persistent request (sums to 338 µs):
//
//	SYN packet:      Interrupt (2) + SYNProtocol (107)      = 109 µs
//	accept+teardown: ConnSetup (124)                        = 124 µs
//	request packet:  Interrupt (2) + RecvProtocol (45)      =  47 µs
//	user handling:   UserStatic (28)                        =  28 µs
//	response:        SendProtocol (30)                      =  30 µs
//
// A persistent-connection request repeats only the last three lines
// (47 + 28 + 30 = 105 µs). The split between Interrupt and Demux is
// pinned by Fig. 14: the RC system keeps ~73% of peak throughput at
// 70,000 SYNs/s, so interrupt + packet filter ≈ 0.27/70,000 ≈ 3.8 µs.
type CostModel struct {
	// Interrupt is the fixed per-inbound-packet interrupt overhead, always
	// executed at interrupt level and never attributable to a principal.
	Interrupt sim.Duration
	// Demux is the early-demultiplexing (packet filter) cost paid at
	// interrupt level in the LRP and RC systems (§4.7).
	Demux sim.Duration
	// SYNProtocol is the TCP work for a connection request: PCB lookup,
	// PCB+socket allocation, SYN/ACK generation.
	SYNProtocol sim.Duration
	// RecvProtocol is the TCP/IP receive work for one data packet.
	RecvProtocol sim.Duration
	// SendProtocol is the send-side work for a 1 KB response, executed in
	// syscall context (charged correctly in every system).
	SendProtocol sim.Duration
	// ConnSetup is the per-connection accept/PCB/teardown kernel work
	// executed in syscall context.
	ConnSetup sim.Duration
	// FINProtocol is the receive work for a FIN segment.
	FINProtocol sim.Duration
	// UserStatic is the user-mode work to parse a request and prepare a
	// cached 1 KB static response.
	UserStatic sim.Duration
	// UserCGIDispatch is the user+kernel work for the server to hand a
	// dynamic request to a CGI process (fork/exec or FastCGI dispatch).
	UserCGIDispatch sim.Duration

	// SelectBase and SelectPerFD model the select() system call: the
	// kernel scans the whole interest set, so the cost is linear in the
	// number of descriptors (§5.5, [5,6]).
	SelectBase  sim.Duration
	SelectPerFD sim.Duration
	// EventPoll is the cost to dequeue one event with the scalable event
	// API of [5], independent of the number of descriptors.
	EventPoll sim.Duration

	// WireDelay is the one-way client<->server latency on the private
	// 100 Mb/s switched Ethernet of §5.2.
	WireDelay sim.Duration

	// Migration is the cache-affinity penalty a thread pays when it is
	// dispatched on a different processor than it last ran on (cold
	// caches, TLB refill). It is charged only when per-CPU run queues are
	// enabled (Kernel.EnablePerCPUSched) and defaults to zero, so the
	// classic shared-queue configurations are unaffected.
	Migration sim.Duration

	// Container primitive costs (Table 1), charged when the application
	// invokes the corresponding syscall in simulation. The defaults are
	// the paper's measured values, so the §5.4 overhead experiment
	// reproduces "throughput effectively unchanged". (bench_test.go
	// additionally measures the real cost of this implementation's
	// primitives, the honest analogue of Table 1.)
	ContainerCreate  sim.Duration
	ContainerDestroy sim.Duration
	ContainerRebind  sim.Duration
	ContainerUsage   sim.Duration
	ContainerAttr    sim.Duration
	ContainerMove    sim.Duration
	ContainerHandle  sim.Duration
}

// DefaultCosts returns the cost model calibrated to the paper's server
// (see the CostModel documentation for the derivation).
func DefaultCosts() CostModel {
	return CostModel{
		Interrupt:       2 * sim.Microsecond,
		Demux:           1800 * sim.Nanosecond,
		SYNProtocol:     107 * sim.Microsecond,
		RecvProtocol:    45 * sim.Microsecond,
		SendProtocol:    30 * sim.Microsecond,
		ConnSetup:       124 * sim.Microsecond,
		FINProtocol:     10 * sim.Microsecond,
		UserStatic:      28 * sim.Microsecond,
		UserCGIDispatch: 300 * sim.Microsecond,

		SelectBase:  10 * sim.Microsecond,
		SelectPerFD: 3 * sim.Microsecond,
		EventPoll:   2 * sim.Microsecond,

		WireDelay: 50 * sim.Microsecond,

		ContainerCreate:  2360 * sim.Nanosecond,
		ContainerDestroy: 2100 * sim.Nanosecond,
		ContainerRebind:  1040 * sim.Nanosecond,
		ContainerUsage:   2040 * sim.Nanosecond,
		ContainerAttr:    2100 * sim.Nanosecond,
		ContainerMove:    3150 * sim.Nanosecond,
		ContainerHandle:  1900 * sim.Nanosecond,
	}
}

// PerRequestConnCost is the per-connection overhead of 1-connection-per-
// request HTTP beyond the per-request cost: SYN handling plus connection
// setup/teardown.
func (c CostModel) PerRequestConnCost() sim.Duration {
	return c.Interrupt + c.SYNProtocol + c.ConnSetup
}

// PerRequestCost is the cost of one request on an established connection.
func (c CostModel) PerRequestCost() sim.Duration {
	return c.Interrupt + c.RecvProtocol + c.UserStatic + c.SendProtocol
}
