package kernel

import (
	"rescon/internal/rc"
	"rescon/internal/telemetry"
)

// AttachTelemetry connects a telemetry collector to the kernel: the
// collector's trace ring becomes the kernel tracer, CPU-slice and
// interrupt accounting start feeding the virtual-CPU profile, and a
// virtual-time ticker samples the usage timeline every
// collector.Interval(). Attach before generating load; the sampling
// ticker keeps the event queue non-empty, so drive an attached kernel
// with RunUntil/RunFor rather than the open-ended Run.
func (k *Kernel) AttachTelemetry(t *telemetry.Collector) {
	if t == nil || k.tel != nil {
		return
	}
	k.tel = t
	k.Tracer = t.Tracer()
	t.SetRun(k.eng.Seed(), k.mode.String())
	k.eng.Every(t.Interval(), k.sampleTelemetry)
}

// Telemetry returns the attached collector, or nil when detached.
func (k *Kernel) Telemetry() *telemetry.Collector { return k.tel }

// WatchContainer adds a container to the telemetry usage timeline: every
// sampling tick records its cumulative CPU, drop count and dispatch
// count. Sampling order is registration order, so output is
// deterministic.
func (k *Kernel) WatchContainer(c *rc.Container) {
	if c == nil {
		return
	}
	k.watched = append(k.watched, c)
}

// sampleTelemetry records one timeline row per principal: the machine,
// each process (protocol backlog), each listening socket (accept-queue
// depth) and each watched container (usage counters). All iteration
// orders are creation orders — never map order.
func (k *Kernel) sampleTelemetry() {
	now := k.Now()
	diskQ := 0
	if k.disk != nil {
		diskQ = len(k.disk.queue)
	}
	k.tel.Record(telemetry.Sample{
		At: now, Principal: "(machine)",
		CPU:        k.BusyTime() + k.interruptTime,
		Backlog:    k.sch.RunnableCount(), // scheduler run-queue depth
		DiskQ:      diskQ,
		Drops:      k.policedDrops,
		Dispatches: k.tel.TotalDispatches(),
	})
	for _, p := range k.procs {
		s := telemetry.Sample{At: now, Principal: p.name, CPU: p.cpuTime}
		if p.netQ != nil {
			s.Backlog = p.netQ.Len()
		}
		k.tel.Record(s)
	}
	for _, ls := range k.net.socks {
		if ls.closed {
			continue
		}
		k.tel.Record(telemetry.Sample{
			At: now, Principal: "listen:" + ls.cfg.Local.String(),
			ListenQ:   ls.acceptQ.Len(),
			BacklogHi: ls.acceptQ.HighWater(),
			Drops:     ls.synDrops,
		})
	}
	for _, c := range k.watched {
		if c.Destroyed() {
			continue
		}
		u := c.Usage()
		k.tel.Record(telemetry.Sample{
			At: now, Principal: c.Name(),
			CPU:        u.CPU(),
			Drops:      u.PacketsDropped,
			Dispatches: k.tel.Dispatches(c.Name()),
		})
	}
	k.tel.FireSampleHooks(now)
}

// WatchedContainers returns the containers registered with
// WatchContainer, in registration order.
func (k *Kernel) WatchedContainers() []*rc.Container {
	return k.watched
}
