package kernel

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func newPerCPUSMP(t *testing.T, mode Mode, ncpus int) (*sim.Engine, *Kernel) {
	t.Helper()
	eng, k := newSMP(mode, ncpus)
	if !k.EnablePerCPUSched() {
		t.Fatal("EnablePerCPUSched returned false")
	}
	if !k.PerCPUSched() {
		t.Fatal("PerCPUSched false after enabling")
	}
	return eng, k
}

func TestPerCPUSchedParallelExecution(t *testing.T) {
	// Even when both runnable entities are homed on the same run queue,
	// the idle CPU steals: two 1-second jobs on 2 CPUs finish at t=1s.
	eng, k := newPerCPUSMP(t, ModeUnmodified, 2)
	pa := k.NewProcess("a")
	pb := k.NewProcess("b")
	var doneA, doneB sim.Time
	pa.NewThread("t").PostFunc("wa", sim.Second, rc.UserCPU, nil, func() { doneA = eng.Now() })
	pb.NewThread("t").PostFunc("wb", sim.Second, rc.UserCPU, nil, func() { doneB = eng.Now() })
	eng.Run()
	if doneA != sim.Time(sim.Second) || doneB != sim.Time(sim.Second) {
		t.Fatalf("parallel jobs finished at %v and %v, want both at 1s", doneA, doneB)
	}
	if k.BusyTime() != 2*sim.Second {
		t.Fatalf("total busy %v, want 2s", k.BusyTime())
	}
}

func TestPerCPUSchedThreadNeverOnTwoCPUs(t *testing.T) {
	eng, k := newPerCPUSMP(t, ModeUnmodified, 64)
	p := k.NewProcess("a")
	th := p.NewThread("t")
	var done sim.Time
	for i := 0; i < 10; i++ {
		i := i
		th.PostFunc("w", 100*sim.Millisecond, rc.UserCPU, nil, func() {
			if i == 9 {
				done = eng.Now()
			}
		})
	}
	eng.Run()
	if done != sim.Time(sim.Second) {
		t.Fatalf("single thread finished at %v, want fully serialized 1s", done)
	}
	if th.CPUTime() != sim.Second {
		t.Fatalf("thread CPU %v", th.CPUTime())
	}
}

// runPerCPUFleet runs nthreads equal jobs on ncpus with per-CPU
// scheduling and returns (last finish time, per-CPU busy vector).
func runPerCPUFleet(t *testing.T, ncpus, nthreads int, work sim.Duration) (sim.Time, []sim.Duration) {
	eng, k := newPerCPUSMP(t, ModeUnmodified, ncpus)
	var last sim.Time
	for i := 0; i < nthreads; i++ {
		p := k.NewProcess("p")
		p.NewThread("t").PostFunc("w", work, rc.UserCPU, nil, func() {
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	eng.Run()
	busy := make([]sim.Duration, ncpus)
	for i, c := range k.cpus {
		busy[i] = c.BusyTime()
	}
	return last, busy
}

func TestPerCPUSchedSpreadsAcross64CPUs(t *testing.T) {
	// 128 equal jobs on 64 CPUs: stealing must spread the load so every
	// processor does its 2 jobs' worth of work and the makespan is 2x one
	// job, not a pile-up behind a few queues.
	last, busy := runPerCPUFleet(t, 64, 128, 10*sim.Millisecond)
	if last != sim.Time(20*sim.Millisecond) {
		t.Fatalf("makespan %v, want 20ms", last)
	}
	for i, b := range busy {
		if b != 20*sim.Millisecond {
			t.Fatalf("cpu %d busy %v, want 20ms", i, b)
		}
	}
}

func TestPerCPUSchedDeterministic(t *testing.T) {
	l1, b1 := runPerCPUFleet(t, 64, 200, 7*sim.Millisecond)
	l2, b2 := runPerCPUFleet(t, 64, 200, 7*sim.Millisecond)
	if l1 != l2 {
		t.Fatalf("makespans differ across identical runs: %v vs %v", l1, l2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("cpu %d busy differs across identical runs: %v vs %v", i, b1[i], b2[i])
		}
	}
}

func TestPerCPUSchedMigrationCostCharged(t *testing.T) {
	// Three always-runnable threads on 2 CPUs bounce between processors
	// (round-robin through least-recently-run); each hop pays the
	// cache-affinity penalty, so the makespan stretches past the ideal
	// 150ms and the machine's busy time exceeds the useful work.
	run := func(mig sim.Duration) (sim.Time, sim.Duration) {
		eng := sim.NewEngine(1)
		costs := DefaultCosts()
		costs.Migration = mig
		k := NewSMP(eng, ModeUnmodified, costs, 2)
		if !k.EnablePerCPUSched() {
			t.Fatal("EnablePerCPUSched returned false")
		}
		var last sim.Time
		for i := 0; i < 3; i++ {
			p := k.NewProcess("p")
			p.NewThread("t").PostFunc("w", 100*sim.Millisecond, rc.UserCPU, nil, func() {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		}
		eng.Run()
		return last, k.BusyTime()
	}
	base, baseBusy := run(0)
	if baseBusy != 300*sim.Millisecond {
		t.Fatalf("free migration busy %v, want exactly the 300ms of work", baseBusy)
	}
	slow, slowBusy := run(100 * sim.Microsecond)
	if slow <= base {
		t.Fatalf("makespan with migration cost %v not later than free %v", slow, base)
	}
	if slowBusy <= 300*sim.Millisecond {
		t.Fatalf("busy %v with migration cost, want > 300ms of charged time", slowBusy)
	}
}

func TestPerCPUSchedRCModeCapHolds(t *testing.T) {
	// The container scheduler's cap enforcement survives sharding: a 25%
	// limit on a 2-CPU machine still holds under per-CPU queues.
	eng, k := newPerCPUSMP(t, ModeRC, 2)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.25})
	l1 := rc.MustNew(capped, rc.TimeShare, "l1", rc.Attributes{Priority: 1})
	l2 := rc.MustNew(capped, rc.TimeShare, "l2", rc.Attributes{Priority: 1})
	free := rc.MustNew(nil, rc.TimeShare, "free", rc.Attributes{Priority: 1})
	p := k.NewProcess("app")
	p.NewThread("c1").PostFunc("w", 100*sim.Second, rc.UserCPU, l1, nil)
	p.NewThread("c2").PostFunc("w", 100*sim.Second, rc.UserCPU, l2, nil)
	p.NewThread("f1").PostFunc("w", 100*sim.Second, rc.UserCPU, free, nil)
	p.NewThread("f2").PostFunc("w", 100*sim.Second, rc.UserCPU, free, nil)
	eng.RunUntil(sim.Time(10 * sim.Second))
	total := 2.0 * 10
	cappedShare := capped.Usage().CPU().Seconds() / total
	if cappedShare < 0.22 || cappedShare > 0.28 {
		t.Fatalf("capped subtree share %.3f of 2-CPU machine, want ~0.25", cappedShare)
	}
}
