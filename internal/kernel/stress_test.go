package kernel

// Stress test: a chaotic mixed workload must run without panics while
// preserving the kernel's global accounting invariants.

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestKernelAccountingConservation(t *testing.T) {
	for _, ncpus := range []int{1, 2} {
		eng := sim.NewEngine(31)
		k := NewSMP(eng, ModeRC, DefaultCosts(), ncpus)
		p := k.NewProcess("httpd")
		root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
		if err := p.DefaultContainer.SetParent(root); err != nil {
			t.Fatal(err)
		}
		var conns []*Conn
		_, err := k.Listen(p, ListenConfig{
			Local: srvAddr,
			OnAcceptable: func(l *ListenSocket) {
				c, ok := l.Accept()
				if !ok {
					return
				}
				cc := rc.MustNew(root, rc.TimeShare, "conn", rc.Attributes{Priority: 1 + len(conns)%3})
				c.SetContainer(cc)
				conns = append(conns, c)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		th := p.NewThread("main")
		// Mixed load: periodic CPU work, connections, packets, disk reads.
		rng := eng.Rand().Fork(5)
		eng.Every(700*sim.Microsecond, func() {
			switch rng.Intn(4) {
			case 0:
				k.Arrive(SYNPacket(client(uint16(rng.Intn(5000))), srvAddr, rng.Intn(4) == 0))
			case 1:
				if len(conns) > 0 {
					c := conns[rng.Intn(len(conns))]
					if !c.Closed() {
						k.Arrive(DataPacket(c.Client(), srvAddr, c.ID(), 256, nil))
					}
				}
			case 2:
				th.PostFunc("compute", sim.Duration(rng.Intn(500))*sim.Microsecond,
					rc.UserCPU, p.DefaultContainer, nil)
			case 3:
				if len(conns) > 0 {
					c := conns[rng.Intn(len(conns))]
					k.Disk().Read(c.Container(), 1+rng.Intn(8192), nil)
					if rng.Intn(6) == 0 && !c.Closed() {
						cc := c.Container()
						c.Close()
						if cc != nil && cc != p.DefaultContainer && !cc.Destroyed() {
							_ = cc.Release()
						}
					}
				}
			}
		})
		elapsed := 5 * sim.Second
		eng.RunUntil(sim.Time(elapsed))

		// Invariant 1: CPU time is conserved — thread-level busy time plus
		// interrupt time never exceeds machine capacity.
		capacity := sim.Duration(ncpus) * elapsed
		if k.BusyTime()+k.InterruptTime() > capacity {
			t.Fatalf("ncpus=%d: busy %v + interrupts %v exceeds capacity %v",
				ncpus, k.BusyTime(), k.InterruptTime(), capacity)
		}

		// Invariant 2: container-charged CPU never exceeds executed CPU
		// (interrupt-level demux is also charged to containers in RC).
		var charged sim.Duration
		charged += root.Usage().CPU()
		if charged > k.BusyTime()+k.InterruptTime() {
			t.Fatalf("ncpus=%d: containers charged %v > executed %v",
				ncpus, charged, k.BusyTime()+k.InterruptTime())
		}

		// Invariant 3: the machine did real work.
		if k.BusyTime() == 0 || k.Disk().Served() == 0 {
			t.Fatalf("ncpus=%d: stress produced no work (busy=%v disk=%d)",
				ncpus, k.BusyTime(), k.Disk().Served())
		}
	}
}

func TestKernelStressDeterministic(t *testing.T) {
	run := func() (sim.Duration, sim.Duration, uint64) {
		eng := sim.NewEngine(77)
		k := New(eng, ModeRC, DefaultCosts())
		p := k.NewProcess("httpd")
		accepted := uint64(0)
		_, _ = k.Listen(p, ListenConfig{
			Local: srvAddr,
			OnAcceptable: func(l *ListenSocket) {
				if _, ok := l.Accept(); ok {
					accepted++
				}
			},
		})
		rng := eng.Rand().Fork(9)
		eng.Every(300*sim.Microsecond, func() {
			k.Arrive(SYNPacket(client(uint16(rng.Intn(5000))), srvAddr, rng.Intn(3) == 0))
		})
		eng.RunUntil(sim.Time(2 * sim.Second))
		return k.BusyTime(), k.InterruptTime(), accepted
	}
	b1, i1, a1 := run()
	b2, i2, a2 := run()
	if b1 != b2 || i1 != i2 || a1 != a2 {
		t.Fatalf("kernel not deterministic: (%v,%v,%d) vs (%v,%v,%d)", b1, i1, a1, b2, i2, a2)
	}
}
