package kernel

import (
	"testing"
)

// fillConns allocates n connections with sequential ids starting at
// firstID and returns their pointers.
func fillConns(t *connTable, firstID uint64, n int) []*Conn {
	out := make([]*Conn, n)
	for i := 0; i < n; i++ {
		c, h := t.alloc()
		c.id = firstID + uint64(i)
		t.insert(c.id, h)
		out[i] = c
	}
	return out
}

func TestConnTableLookup(t *testing.T) {
	ct := newConnTable()
	conns := fillConns(ct, 1, 3*connSlabSize)
	if ct.live != 3*connSlabSize {
		t.Fatalf("live %d, want %d", ct.live, 3*connSlabSize)
	}
	for i, c := range conns {
		got := ct.lookup(uint64(i + 1))
		if got != c {
			t.Fatalf("lookup(%d) = %p, want %p", i+1, got, c)
		}
	}
	if ct.lookup(uint64(3*connSlabSize+1)) != nil {
		t.Fatal("lookup past the last id should return nil")
	}
	if ct.lookup(1<<40) != nil {
		t.Fatal("lookup far past the index should return nil")
	}
}

func TestConnTableRemove(t *testing.T) {
	ct := newConnTable()
	conns := fillConns(ct, 1, 10)
	last := uint64(10)
	ct.remove(5, last)
	if ct.lookup(5) != nil {
		t.Fatal("removed id still resolves")
	}
	if ct.live != 9 {
		t.Fatalf("live %d, want 9", ct.live)
	}
	// Double remove is a no-op.
	ct.remove(5, last)
	if ct.live != 9 {
		t.Fatalf("live %d after double remove, want 9", ct.live)
	}
	// Other conns are untouched.
	if ct.lookup(4) != conns[3] || ct.lookup(6) != conns[5] {
		t.Fatal("neighbors of a removed id were disturbed")
	}
}

func TestConnTableSlabRecycled(t *testing.T) {
	ct := newConnTable()
	fillConns(ct, 1, connSlabSize) // fills slab 0 exactly
	old := ct.slabs[0]
	for id := uint64(1); id <= connSlabSize; id++ {
		ct.remove(id, connSlabSize)
	}
	if ct.slabs[0] != nil {
		t.Fatal("fully retired slab not released")
	}
	if len(ct.freeSlabs) != 1 || ct.freeSlabs[0] != 0 {
		t.Fatalf("freeSlabs %v, want [0]", ct.freeSlabs)
	}
	// The next allocation reuses index 0 with a FRESH array: stale
	// pointers into the old slab must never alias a new connection.
	c, h := ct.alloc()
	if len(ct.slabs) != 1 {
		t.Fatalf("%d slabs after recycle, want 1", len(ct.slabs))
	}
	if ct.slabs[0] == old {
		t.Fatal("recycled slab reused the old backing array")
	}
	if got := ct.conn(h); got != c {
		t.Fatalf("handle resolves to %p, want %p", got, c)
	}
	// The stale pointer still reads its own (old) memory.
	if &old.conns[0] == c {
		t.Fatal("new conn aliases a stale pointer")
	}
}

func TestConnTablePartialSlabNotRecycled(t *testing.T) {
	ct := newConnTable()
	fillConns(ct, 1, 10) // slab 0 partially used
	for id := uint64(1); id <= 10; id++ {
		ct.remove(id, 10)
	}
	if ct.slabs[0] == nil {
		t.Fatal("partially used slab must not be released (slots are never reused)")
	}
	// Continuing allocation fills the remaining slots of the same slab.
	c, _ := ct.alloc()
	if c != &ct.slabs[0].conns[10] {
		t.Fatal("allocation after removes must continue at the next unused slot")
	}
}

func TestConnTableIndexPageFreed(t *testing.T) {
	ct := newConnTable()
	fillConns(ct, 1, 2*connPageSize)
	lastID := uint64(2 * connPageSize)
	// Page 0 covers ids [0, connPageSize); closing them all frees it,
	// because id allocation has moved past the page.
	for id := uint64(1); id < connPageSize; id++ {
		ct.remove(id, lastID)
	}
	if ct.pages[0] != nil {
		t.Fatal("fully dead index page behind the id cursor not freed")
	}
	// The live page keeps resolving.
	if ct.lookup(connPageSize+1) == nil {
		t.Fatal("live id lost after freeing a dead page")
	}
	// The current page is kept even when momentarily empty: future ids
	// still land in it.
	ct2 := newConnTable()
	fillConns(ct2, 1, 10)
	for id := uint64(1); id <= 10; id++ {
		ct2.remove(id, 10)
	}
	if ct2.pages[0] == nil {
		t.Fatal("current index page freed while future ids can land in it")
	}
	fillConns(ct2, 11, 5)
	if ct2.lookup(12) == nil {
		t.Fatal("id issued after page drain does not resolve")
	}
}

func TestConnTableEachAscendingID(t *testing.T) {
	ct := newConnTable()
	fillConns(ct, 1, connPageSize+100) // spans two pages
	ct.remove(3, connPageSize+100)
	ct.remove(connPageSize+5, connPageSize+100)
	var ids []uint64
	ct.each(func(c *Conn) { ids = append(ids, c.id) })
	if len(ids) != connPageSize+98 {
		t.Fatalf("each visited %d conns, want %d", len(ids), connPageSize+98)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("each out of order: ids[%d]=%d after %d", i, ids[i], ids[i-1])
		}
	}
}

// The connection hot path must not allocate per connection: with a
// million connections parked, an establish/teardown churn cycle reuses
// slab and index storage entirely (one slab per connSlabSize conns and
// one page per connPageSize ids amortize to ~0).
func TestConnCycleNoAllocs(t *testing.T) {
	ct := newConnTable()
	fillConns(ct, 1, 100_000)
	nextID := uint64(100_000)
	allocs := testing.AllocsPerRun(10_000, func() {
		nextID++
		c, h := ct.alloc()
		c.id = nextID
		ct.insert(c.id, h)
		if ct.lookup(c.id) != c {
			t.Fatal("lookup miss")
		}
		ct.remove(c.id, nextID)
	})
	// One slab per connSlabSize cycles and one page per connPageSize ids
	// amortize below 0.5 objects/op; a per-conn allocation would be ≥1.
	if allocs >= 0.5 {
		t.Fatalf("conn cycle allocates %.2f objects/op, want ~0", allocs)
	}
}

// BenchmarkConnCycle measures the flyweight connection hot path with a
// large standing population: allocate, index, resolve and retire one
// connection. Guarded by benchjson as a pinned hot path.
func BenchmarkConnCycle100kOpen(b *testing.B) {
	ct := newConnTable()
	fillConns(ct, 1, 100_000)
	nextID := uint64(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nextID++
		c, h := ct.alloc()
		c.id = nextID
		ct.insert(c.id, h)
		if ct.lookup(c.id) != c {
			b.Fatal("lookup miss")
		}
		ct.remove(c.id, nextID)
	}
}
