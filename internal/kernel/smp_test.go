package kernel

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func newSMP(mode Mode, ncpus int) (*sim.Engine, *Kernel) {
	eng := sim.NewEngine(1)
	return eng, NewSMP(eng, mode, DefaultCosts(), ncpus)
}

func TestSMPParallelExecution(t *testing.T) {
	eng, k := newSMP(ModeUnmodified, 2)
	if k.NumCPUs() != 2 {
		t.Fatalf("NumCPUs %d", k.NumCPUs())
	}
	pa := k.NewProcess("a")
	pb := k.NewProcess("b")
	var doneA, doneB sim.Time
	pa.NewThread("t").PostFunc("wa", sim.Second, rc.UserCPU, nil, func() { doneA = eng.Now() })
	pb.NewThread("t").PostFunc("wb", sim.Second, rc.UserCPU, nil, func() { doneB = eng.Now() })
	eng.Run()
	// Two CPUs: both 1-second jobs finish at t=1s, not serialized.
	if doneA != sim.Time(sim.Second) || doneB != sim.Time(sim.Second) {
		t.Fatalf("parallel jobs finished at %v and %v, want both at 1s", doneA, doneB)
	}
	if k.BusyTime() != 2*sim.Second {
		t.Fatalf("total busy %v, want 2s", k.BusyTime())
	}
}

func TestSMPThreadNeverOnTwoCPUs(t *testing.T) {
	eng, k := newSMP(ModeUnmodified, 4)
	p := k.NewProcess("a")
	th := p.NewThread("t")
	var done sim.Time
	// One thread with lots of queued work: only one CPU may serve it.
	for i := 0; i < 10; i++ {
		i := i
		th.PostFunc("w", 100*sim.Millisecond, rc.UserCPU, nil, func() {
			if i == 9 {
				done = eng.Now()
			}
		})
	}
	eng.Run()
	if done != sim.Time(sim.Second) {
		t.Fatalf("single thread finished at %v, want fully serialized 1s", done)
	}
	if th.CPUTime() != sim.Second {
		t.Fatalf("thread CPU %v", th.CPUTime())
	}
}

func TestSMPUniprocessorDefault(t *testing.T) {
	_, k := newKernel(ModeUnmodified)
	if k.NumCPUs() != 1 {
		t.Fatalf("New should build a uniprocessor, got %d CPUs", k.NumCPUs())
	}
	_, k2 := newSMP(ModeRC, 0)
	if k2.NumCPUs() != 1 {
		t.Fatalf("ncpus<1 should clamp to 1, got %d", k2.NumCPUs())
	}
}

func TestSMPCapScalesWithCapacity(t *testing.T) {
	// A 25% limit on a 2-CPU machine allows 0.5 CPU-seconds per second.
	eng, k := newSMP(ModeRC, 2)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.25})
	l1 := rc.MustNew(capped, rc.TimeShare, "l1", rc.Attributes{Priority: 1})
	l2 := rc.MustNew(capped, rc.TimeShare, "l2", rc.Attributes{Priority: 1})
	free := rc.MustNew(nil, rc.TimeShare, "free", rc.Attributes{Priority: 1})
	p := k.NewProcess("app")
	p.NewThread("c1").PostFunc("w", 100*sim.Second, rc.UserCPU, l1, nil)
	p.NewThread("c2").PostFunc("w", 100*sim.Second, rc.UserCPU, l2, nil)
	p.NewThread("f1").PostFunc("w", 100*sim.Second, rc.UserCPU, free, nil)
	p.NewThread("f2").PostFunc("w", 100*sim.Second, rc.UserCPU, free, nil)
	eng.RunUntil(sim.Time(10 * sim.Second))
	total := 2.0 * 10 // CPU-seconds available
	cappedShare := capped.Usage().CPU().Seconds() / total
	if cappedShare < 0.22 || cappedShare > 0.28 {
		t.Fatalf("capped subtree share %.3f of 2-CPU machine, want ~0.25", cappedShare)
	}
}

func TestSMPSharesSaturateMachine(t *testing.T) {
	// Guests with 60/40 guarantees on 2 CPUs: consumption splits 60/40 of
	// the doubled capacity.
	eng, k := newSMP(ModeRC, 2)
	g1 := rc.MustNew(nil, rc.FixedShare, "g1", rc.Attributes{Share: 0.6})
	g2 := rc.MustNew(nil, rc.FixedShare, "g2", rc.Attributes{Share: 0.4})
	p := k.NewProcess("app")
	for i, g := range []*rc.Container{g1, g1, g2, g2} {
		leaf := rc.MustNew(g, rc.TimeShare, "w", rc.Attributes{Priority: 1})
		p.NewThread(string(rune('a'+i))).PostFunc("w", 100*sim.Second, rc.UserCPU, leaf, nil)
	}
	eng.RunUntil(sim.Time(10 * sim.Second))
	total := 20.0
	s1 := g1.Usage().CPU().Seconds() / total
	s2 := g2.Usage().CPU().Seconds() / total
	if s1 < 0.55 || s1 > 0.65 || s2 < 0.35 || s2 > 0.45 {
		t.Fatalf("SMP shares %.3f/%.3f, want 0.60/0.40", s1, s2)
	}
}

func TestSMPInterruptsOnPrimaryOnly(t *testing.T) {
	eng, k := newSMP(ModeUnmodified, 2)
	pa := k.NewProcess("a")
	pb := k.NewProcess("b")
	var doneA, doneB sim.Time
	pa.NewThread("t").PostFunc("wa", 10*sim.Millisecond, rc.UserCPU, nil, func() { doneA = eng.Now() })
	pb.NewThread("t").PostFunc("wb", 10*sim.Millisecond, rc.UserCPU, nil, func() { doneB = eng.Now() })
	// A long interrupt burst hits CPU 0; the thread there is delayed, the
	// other CPU keeps computing.
	eng.After(sim.Millisecond, func() {
		k.cpu.RaiseInterrupt(&intrWork{label: "storm", cost: 5 * sim.Millisecond})
	})
	eng.Run()
	// The 5 ms stolen by the interrupt is shared: the preempted thread
	// migrates to the other CPU at the next quantum boundary, so both
	// jobs finish a bit late (~12.5 ms each), not one at 15 ms.
	for _, d := range []sim.Time{doneA, doneB} {
		if d <= sim.Time(10*sim.Millisecond) || d > sim.Time(16*sim.Millisecond) {
			t.Fatalf("finish times %v/%v, want both in (10ms, 16ms]", doneA, doneB)
		}
	}
	if total := doneA.Sub(0) + doneB.Sub(0); total < 24*sim.Millisecond || total > 27*sim.Millisecond {
		t.Fatalf("combined finish %v, want ~25ms (20ms work + 5ms stolen)", total)
	}
}

func TestSMPMTServerScales(t *testing.T) {
	// The multi-threaded server exploits a second CPU; an event-driven
	// (single-threaded) server cannot — the paper's §2 observation that
	// multiprocessor event-driven servers need one thread per processor.
	run := func(ncpus, threads int) sim.Time {
		eng := sim.NewEngine(9)
		k := NewSMP(eng, ModeUnmodified, DefaultCosts(), ncpus)
		p := k.NewProcess("mt")
		var workers []*Thread
		for i := 0; i < threads; i++ {
			workers = append(workers, p.NewThread("w"))
		}
		next := 0
		var lastDone sim.Time
		_, err := k.Listen(p, ListenConfig{
			Local: srvAddr,
			OnAcceptable: func(l *ListenSocket) {
				conn, ok := l.Accept()
				if !ok {
					return
				}
				th := workers[next%len(workers)]
				next++
				conn.SetOnRequest(func(c *Conn, payload any) {
					// A CPU-heavy dynamic request, one per connection.
					th.PostFunc("serve", 10*sim.Millisecond, rc.UserCPU, nil, func() {
						c.Send(th, 1024, nil, nil)
						c.Close()
						lastDone = eng.Now()
					})
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			i := i
			k.ClientSend(ConnectPacket(client(uint16(2000+i)), srvAddr, func(conn *Conn) {
				k.ClientSend(DataPacket(client(uint16(2000+i)), srvAddr, conn.ID(), 512, nil))
			}))
		}
		eng.Run()
		return lastDone
	}
	// Makespan of 64 x 10ms jobs across a 4-thread pool.
	m1 := run(1, 4)
	m2 := run(2, 4)
	if float64(m2) > float64(m1)*0.62 {
		t.Fatalf("MT server should nearly halve the makespan on 2 CPUs: %v vs %v", m2, m1)
	}
}
