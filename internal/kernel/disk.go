package kernel

import (
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/trace"
)

// Disk cost model defaults: a late-1990s SCSI disk — ~8 ms average
// positioning, ~25 MB/s media rate (≈40 µs per KB).
const (
	DefaultDiskSeek       = 8 * sim.Millisecond
	DefaultDiskPerKB      = 40 * sim.Microsecond
	DefaultDiskQueueLimit = 256
)

// Disk models the machine's disk: one head, requests served one at a
// time via DMA (no CPU cost), with the pending queue ordered by the
// requesting container's priority and, within a priority, by QoS-weighted
// fair service — the §4.4 claim that disk bandwidth is "conveniently
// controlled by resource containers". Without containers the queue is
// FIFO, as in the unmodified kernel.
type Disk struct {
	k *Kernel
	// SeekTime and PerKB override the default cost model.
	SeekTime sim.Duration
	PerKB    sim.Duration

	queue    []*diskReq
	nextSeq  uint64
	busy     bool
	busyTime sim.Duration
	served   uint64
	// per-container weighted service for fair ordering (mirrors the
	// network pktQueue discipline).
	serviceTab map[*rc.Container]float64
}

type diskReq struct {
	container *rc.Container
	bytes     int
	onDone    func()
	seq       uint64
}

// Disk returns the kernel's disk, creating it on first use.
func (k *Kernel) Disk() *Disk {
	if k.disk == nil {
		k.disk = &Disk{
			k:          k,
			SeekTime:   DefaultDiskSeek,
			PerKB:      DefaultDiskPerKB,
			serviceTab: make(map[*rc.Container]float64),
		}
	}
	return k.disk
}

// BusyTime returns total time the disk spent servicing requests.
func (d *Disk) BusyTime() sim.Duration { return d.busyTime }

// Served returns the number of completed requests.
func (d *Disk) Served() uint64 { return d.served }

// QueueLen returns the number of pending requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Read schedules a disk read of the given size on behalf of c (nil
// outside ModeRC); onDone fires when the data is in memory. Reads beyond
// the queue limit are rejected (onDone never fires) and reported false.
func (d *Disk) Read(c *rc.Container, bytes int, onDone func()) bool {
	if len(d.queue) >= DefaultDiskQueueLimit {
		if c != nil {
			c.ChargeDrop()
		}
		return false
	}
	d.nextSeq++
	d.queue = append(d.queue, &diskReq{container: c, bytes: bytes, onDone: onDone, seq: d.nextSeq})
	d.start()
	return true
}

// start begins servicing if the head is free.
func (d *Disk) start() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	req := d.pick()
	d.busy = true
	cost := d.SeekTime + sim.Duration(req.bytes)*d.PerKB/1024
	d.k.Tracer.Emit(d.k.Now(), trace.KindDispatch, "disk read %dB for %v (%v)", req.bytes, req.container, cost)
	d.k.eng.After(cost, func() {
		d.busy = false
		d.busyTime += cost
		d.served++
		if req.container != nil {
			req.container.ChargeDiskRead(req.bytes, cost)
			w := req.container.QoSWeight()
			d.serviceTab[req.container] += float64(cost) / w
		}
		if req.onDone != nil {
			req.onDone()
		}
		d.start()
	})
}

// pick removes and returns the next request: highest container priority
// first, then least QoS-weighted service, then arrival order. Without
// containers (nil), requests are FIFO at priority 0.
func (d *Disk) pick() *diskReq {
	best := 0
	if d.k.mode == ModeRC {
		for i := 1; i < len(d.queue); i++ {
			if d.diskLess(d.queue[i], d.queue[best]) {
				best = i
			}
		}
	}
	req := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	// Garbage-collect service entries for destroyed containers.
	for c := range d.serviceTab {
		if c.Destroyed() {
			delete(d.serviceTab, c)
		}
	}
	return req
}

func (d *Disk) diskLess(a, b *diskReq) bool {
	pa, pb := 0, 0
	var sa, sb float64
	if a.container != nil {
		pa = a.container.EffectivePriority()
		sa = d.serviceTab[a.container]
	}
	if b.container != nil {
		pb = b.container.EffectivePriority()
		sb = d.serviceTab[b.container]
	}
	if pa != pb {
		return pa > pb
	}
	if sa != sb {
		return sa < sb
	}
	return a.seq < b.seq
}
