package kernel

import (
	"fmt"

	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/trace"
)

// Disk cost model defaults: a late-1990s SCSI disk — ~8 ms average
// positioning, ~25 MB/s media rate (≈40 µs per KB).
const (
	DefaultDiskSeek       = 8 * sim.Millisecond
	DefaultDiskPerKB      = 40 * sim.Microsecond
	DefaultDiskQueueLimit = 256
)

// Disk models the machine's disk: one head, requests served one at a
// time via DMA (no CPU cost), with the pending queue ordered by the
// requesting container's priority and, within a priority, by QoS-weighted
// fair service — the §4.4 claim that disk bandwidth is "conveniently
// controlled by resource containers". Without containers the queue is
// FIFO, as in the unmodified kernel.
type Disk struct {
	k *Kernel
	// SeekTime and PerKB override the default cost model.
	SeekTime sim.Duration
	PerKB    sim.Duration

	// Faults, when set, injects media errors and latency spikes into
	// reads (fault.Injector satisfies this structurally). The fate of a
	// request is drawn when the head reaches it, in service order, so the
	// schedule is deterministic.
	Faults DiskFaults

	queue    []*diskReq
	nextSeq  uint64
	busy     bool
	busyTime sim.Duration
	served   uint64
	errors   uint64
	// per-container weighted service for fair ordering (mirrors the
	// network pktQueue discipline).
	serviceTab map[*rc.Container]float64
}

// DiskFaults decides the fate of each disk read: a media error (the data
// never arrives; the seek time is still paid) or an extra latency spike.
type DiskFaults interface {
	DiskFate(bytes int) (fail bool, extra sim.Duration)
}

type diskReq struct {
	container *rc.Container
	bytes     int
	onDone    func()
	onErr     func()
	seq       uint64
}

// Disk returns the kernel's disk, creating it on first use.
func (k *Kernel) Disk() *Disk {
	if k.disk == nil {
		k.disk = &Disk{
			k:          k,
			SeekTime:   DefaultDiskSeek,
			PerKB:      DefaultDiskPerKB,
			serviceTab: make(map[*rc.Container]float64),
		}
	}
	return k.disk
}

// BusyTime returns total time the disk spent servicing requests.
func (d *Disk) BusyTime() sim.Duration { return d.busyTime }

// Served returns the number of completed requests.
func (d *Disk) Served() uint64 { return d.served }

// Errors returns the number of reads failed by injected media errors.
func (d *Disk) Errors() uint64 { return d.errors }

// QueueLen returns the number of pending requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Read schedules a disk read of the given size on behalf of c (nil
// outside ModeRC); onDone fires when the data is in memory. Reads beyond
// the queue limit are rejected (onDone never fires) and reported false.
// A read failed by an injected media error also never calls onDone; use
// ReadWithError to observe failures.
func (d *Disk) Read(c *rc.Container, bytes int, onDone func()) bool {
	return d.ReadWithError(c, bytes, onDone, nil)
}

// ReadWithError is Read with an error path: onErr fires instead of onDone
// when the read fails with an injected media error, so callers can shed
// the request instead of leaving the client to time out.
func (d *Disk) ReadWithError(c *rc.Container, bytes int, onDone, onErr func()) bool {
	if len(d.queue) >= DefaultDiskQueueLimit {
		if c != nil {
			c.ChargeDrop()
		}
		return false
	}
	d.nextSeq++
	d.queue = append(d.queue, &diskReq{container: c, bytes: bytes, onDone: onDone, onErr: onErr, seq: d.nextSeq})
	d.start()
	return true
}

// start begins servicing if the head is free.
func (d *Disk) start() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	req := d.pick()
	d.busy = true
	cost := d.SeekTime + sim.Duration(req.bytes)*d.PerKB/1024
	failed := false
	if d.Faults != nil {
		fail, extra := d.Faults.DiskFate(req.bytes)
		if fail {
			// A media error surfaces after the head has moved: the seek is
			// paid, the transfer never happens.
			failed = true
			cost = d.SeekTime
			// Name the principal, not the container value: container IDs
			// come from a global counter and are not stable across runs in
			// one process, which would break trace-dump determinism.
			d.k.Tracer.Emitf(d.k.Now(), trace.KindFault, "disk read error %dB for %s", req.bytes, diskPrincipal(req.container))
		} else if extra > 0 {
			cost += extra
			d.k.Tracer.Emitf(d.k.Now(), trace.KindFault, "disk latency spike +%v for %s", extra, diskPrincipal(req.container))
		}
	}
	if d.k.Tracer.Enabled(trace.KindDispatch) {
		name := diskPrincipal(req.container)
		d.k.Tracer.Emit(trace.Event{
			At: d.k.Now(), Kind: trace.KindDispatch, CPU: -1,
			Stage: trace.StageDisk, Principal: name, Cost: cost,
			Detail: fmt.Sprintf("disk read %dB", req.bytes),
		})
	}
	d.k.eng.After(cost, func() {
		d.busy = false
		d.busyTime += cost
		if d.k.tel != nil {
			// Disk occupancy joins the profile under its own stage, so
			// "who held the device" is queryable next to CPU attribution.
			d.k.tel.ChargeStage(diskPrincipal(req.container), trace.StageDisk, cost)
		}
		if req.container != nil {
			// A failed read still occupied the device: charge the time (with
			// no bytes transferred) so device occupancy stays conserved.
			bytes := req.bytes
			if failed {
				bytes = 0
			}
			req.container.ChargeDiskRead(bytes, cost)
			w := req.container.QoSWeight()
			d.serviceTab[req.container] += float64(cost) / w
		}
		if failed {
			d.errors++
			if req.onErr != nil {
				req.onErr()
			}
		} else {
			d.served++
			if req.onDone != nil {
				req.onDone()
			}
		}
		d.start()
	})
}

// diskPrincipal names the principal a disk request is attributed to;
// container-less requests (non-RC modes) fall to the machine bucket.
func diskPrincipal(c *rc.Container) string {
	if c != nil {
		return c.Name()
	}
	return "(machine)"
}

// pick removes and returns the next request: highest container priority
// first, then least QoS-weighted service, then arrival order. Without
// containers (nil), requests are FIFO at priority 0.
func (d *Disk) pick() *diskReq {
	best := 0
	if d.k.mode == ModeRC {
		for i := 1; i < len(d.queue); i++ {
			if d.diskLess(d.queue[i], d.queue[best]) {
				best = i
			}
		}
	}
	req := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	// Garbage-collect service entries for destroyed containers.
	for c := range d.serviceTab {
		if c.Destroyed() {
			delete(d.serviceTab, c)
		}
	}
	return req
}

func (d *Disk) diskLess(a, b *diskReq) bool {
	pa, pb := 0, 0
	var sa, sb float64
	if a.container != nil {
		pa = a.container.EffectivePriority()
		sa = d.serviceTab[a.container]
	}
	if b.container != nil {
		pb = b.container.EffectivePriority()
		sb = d.serviceTab[b.container]
	}
	if pa != pb {
		return pa > pb
	}
	if sa != sb {
		return sa < sb
	}
	return a.seq < b.seq
}
