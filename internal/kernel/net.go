package kernel

import (
	"errors"
	"fmt"

	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
	"rescon/internal/trace"
)

// DefaultSynBacklog is the listen-socket embryonic (SYN) queue length.
const DefaultSynBacklog = 1024

// DefaultAcceptBacklog is the listen-socket accept queue length.
const DefaultAcceptBacklog = 128

// DefaultNetBacklog bounds the per-container (RC) or per-process (LRP)
// pending protocol queue; packets beyond it are dropped at demux time.
const DefaultNetBacklog = 1024

// BogusSynTimeout is how long a bogus embryonic connection occupies a
// SYN-queue slot before the retransmit timer gives up on it.
const BogusSynTimeout = 100 * sim.Millisecond

// SocketBufferBytes is the kernel memory charged to a connection's
// container for its socket buffers (§4.4: resources other than CPU —
// here protocol buffer memory — are charged to the correct activity).
// Connections whose container subtree is at its memory limit are
// refused at SYN time.
const SocketBufferBytes = 16 * 1024

// ErrProcessExited is returned for operations on an exited process.
var ErrProcessExited = errors.New("kernel: process has exited")

// network is the kernel's TCP/IP subsystem state.
type network struct {
	k      *Kernel
	demux  netsim.Demux
	conns  *connTable
	socks  []*ListenSocket // creation order, for telemetry sampling
	nextID uint64
	// established and closed count connection lifecycle transitions for
	// the conservation invariant: every connection ever established is
	// either still open or has been closed exactly once, so
	// established == closed + open at all times.
	established uint64
	closed      uint64
}

func newNetwork(k *Kernel) *network {
	return &network{k: k, conns: newConnTable()}
}

// ListenConfig configures a listening socket.
type ListenConfig struct {
	Local  netsim.Addr
	Filter netsim.Filter
	// Container is the resource container bound to the socket (§4.6);
	// connection-request processing for this socket is charged to it.
	// Required in ModeRC, ignored otherwise.
	Container *rc.Container
	// SynBacklog and AcceptBacklog default to the kernel constants.
	SynBacklog    int
	AcceptBacklog int
	// OnAcceptable fires when a new connection enters the accept queue.
	OnAcceptable func(*ListenSocket)
	// OnSynDrop fires when a SYN is dropped because of queue overflow —
	// the kernel modification of §5.7 that lets the application detect a
	// SYN flood and install a filter.
	OnSynDrop func(src netsim.Addr)
}

// ListenSocket is a listening socket, possibly filtered (§4.8).
type ListenSocket struct {
	k       *Kernel
	proc    *Process
	cfg     ListenConfig
	lis     *netsim.Listener
	synQ    *netsim.Queue[sim.Time] // bogus embryonic slots (expiry times)
	acceptQ *netsim.Queue[*Conn]
	// container is the socket's resource binding.
	container *rc.Container
	synDrops  uint64
	accepted  uint64
	// pendingSYN counts legitimate connection requests admitted at demux
	// but not yet through protocol processing; together with the accept
	// queue it bounds the per-socket channel, so early drops happen
	// before protocol effort is invested (LRP's bounded channels).
	pendingSYN int
	closed     bool
}

// Listen binds a listening socket for the process.
func (k *Kernel) Listen(p *Process, cfg ListenConfig) (*ListenSocket, error) {
	if p.exited {
		return nil, ErrProcessExited
	}
	if cfg.SynBacklog <= 0 {
		cfg.SynBacklog = DefaultSynBacklog
	}
	if cfg.AcceptBacklog <= 0 {
		cfg.AcceptBacklog = DefaultAcceptBacklog
	}
	if k.mode == ModeRC && cfg.Container == nil {
		cfg.Container = p.DefaultContainer
	}
	ls := &ListenSocket{
		k:         k,
		proc:      p,
		cfg:       cfg,
		synQ:      netsim.NewQueue[sim.Time](cfg.SynBacklog),
		acceptQ:   netsim.NewQueue[*Conn](cfg.AcceptBacklog),
		container: cfg.Container,
	}
	ls.lis = &netsim.Listener{Local: cfg.Local, Filter: cfg.Filter, Owner: ls}
	if err := k.net.demux.Add(ls.lis); err != nil {
		return nil, err
	}
	k.net.socks = append(k.net.socks, ls)
	p.ensureNetThread()
	return ls, nil
}

// ensureNetThread creates the per-process kernel network thread used by
// the LRP and RC execution models (§4.7).
func (p *Process) ensureNetThread() {
	if p.k.mode == ModeUnmodified || p.netThread != nil {
		return
	}
	p.netQ = newPktQueue(p.k)
	p.netThread = p.NewThread("knet")
	p.netThread.SetSource(p.netQ)
	if !p.k.ImplicitNetBinding {
		// The network thread's scheduling class tracks exactly the
		// containers with pending protocol work (§4.7): pending traffic
		// for only a priority-0 container leaves the thread in the idle
		// class, with no staleness window.
		p.netThread.ent.DynamicBinding = p.netQ.PendingContainers
	}
}

// ListenSockets returns every listening socket ever bound on the
// kernel, in creation order (the same order telemetry samples them).
// Closed sockets remain in the list so cumulative counters (SynDrops)
// stay observable; filter with Closed as needed.
func (k *Kernel) ListenSockets() []*ListenSocket { return k.net.socks }

// Addr returns the socket's local endpoint.
func (ls *ListenSocket) Addr() netsim.Addr { return ls.cfg.Local }

// AcceptCap returns the accept-queue capacity.
func (ls *ListenSocket) AcceptCap() int { return ls.acceptQ.Cap() }

// Closed reports whether the socket has been closed.
func (ls *ListenSocket) Closed() bool { return ls.closed }

// Container returns the socket's resource binding.
func (ls *ListenSocket) Container() *rc.Container { return ls.container }

// SetContainer rebinds the socket to a container (§4.6 "binding a socket
// or file to a container").
func (ls *ListenSocket) SetContainer(c *rc.Container) { ls.container = c }

// SynDrops returns how many SYNs the socket has dropped.
func (ls *ListenSocket) SynDrops() uint64 { return ls.synDrops }

// expireSyns releases embryonic slots whose retransmit timer has expired.
func (ls *ListenSocket) expireSyns(now sim.Time) {
	for {
		head, ok := ls.synQ.Peek()
		if !ok || head.After(now) {
			return
		}
		ls.synQ.Pop()
	}
}

// EmbryonicCount returns the occupied SYN-queue slots (after expiry).
func (ls *ListenSocket) EmbryonicCount() int {
	ls.expireSyns(ls.k.Now())
	return ls.synQ.Len()
}

// Accepted returns how many connections have been accepted.
func (ls *ListenSocket) Accepted() uint64 { return ls.accepted }

// Pending returns the number of connections waiting in the accept queue.
func (ls *ListenSocket) Pending() int { return ls.acceptQ.Len() }

// Accept pops an established connection from the accept queue. The
// syscall's CPU cost (CostModel.ConnSetup) is the caller's to account —
// servers post it as a work item in whose completion they call Accept.
func (ls *ListenSocket) Accept() (*Conn, bool) {
	c, ok := ls.acceptQ.Pop()
	if ok {
		ls.accepted++
	}
	return c, ok
}

// AcceptBatch pops up to len(dst) established connections from the
// accept queue into dst and returns how many it delivered — batched
// event delivery for servers draining a deep accept backlog in one
// syscall's worth of bookkeeping.
func (ls *ListenSocket) AcceptBatch(dst []*Conn) int {
	n := ls.acceptQ.PopInto(dst)
	ls.accepted += uint64(n)
	return n
}

// Close unbinds the socket.
func (ls *ListenSocket) Close() {
	if ls.closed {
		return
	}
	ls.closed = true
	ls.k.net.demux.Remove(ls.lis)
	for {
		if _, ok := ls.acceptQ.Pop(); !ok {
			break
		}
	}
}

// Conn is one established connection.
type Conn struct {
	k      *Kernel
	id     uint64
	fd     int
	client netsim.Addr
	ls     *ListenSocket
	proc   *Process
	// container is the connection's resource binding: protocol processing
	// for the connection is charged to it (ModeRC).
	container *rc.Container
	// OnRequest is the application's upcall when a request arrives on the
	// connection; the application schedules its own work in response.
	// Requests arriving before the handler is installed are buffered and
	// delivered by SetOnRequest (the kernel socket buffer).
	OnRequest func(*Conn, any)
	pending   []any
	closed    bool
	// memHolder is the container charged for the connection's socket
	// buffers at admission time; the charge is released on Close.
	memHolder *rc.Container
}

// SetOnRequest installs the request upcall and drains any buffered
// requests that arrived before the server finished accepting.
func (c *Conn) SetOnRequest(fn func(*Conn, any)) {
	c.OnRequest = fn
	for len(c.pending) > 0 && c.OnRequest != nil && !c.closed {
		payload := c.pending[0]
		c.pending = c.pending[1:]
		c.OnRequest(c, payload)
	}
}

// ID returns the kernel connection identifier.
func (c *Conn) ID() uint64 { return c.id }

// FD returns the application-visible descriptor number; select()-style
// servers handle ready events in ascending FD order.
func (c *Conn) FD() int { return c.fd }

// Client returns the peer address.
func (c *Conn) Client() netsim.Addr { return c.client }

// Process returns the owning process.
func (c *Conn) Process() *Process { return c.proc }

// Container returns the connection's resource binding.
func (c *Conn) Container() *rc.Container { return c.container }

// SetContainer rebinds the connection's descriptor to a container
// (§4.6); subsequent kernel processing for the connection is charged to
// it.
func (c *Conn) SetContainer(rcc *rc.Container) { c.container = rcc }

// Closed reports whether the connection has been torn down.
func (c *Conn) Closed() bool { return c.closed }

// Close tears the connection down. The teardown CPU cost is part of
// CostModel.ConnSetup, accounted by the server's accept/close work items.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.k.Tracer.Enabled(trace.KindConn) {
		var name string
		if c.container != nil {
			name = c.container.Name()
		}
		c.k.Tracer.Emit(trace.Event{
			At: c.k.Now(), Kind: trace.KindConn, CPU: -1,
			Principal: name, Conn: c.id, Detail: "closed",
		})
	}
	if c.memHolder != nil && !c.memHolder.Destroyed() {
		_ = c.memHolder.ChargeMemory(-SocketBufferBytes)
	}
	c.k.net.conns.remove(c.id, c.k.net.nextID)
	c.k.net.closed++
}

// Send transmits a response of the given size on the connection: the
// send-side protocol cost runs in syscall context on the calling thread
// (charged to chargeTo), then the response reaches the client one wire
// delay later.
func (c *Conn) Send(t *Thread, size int, chargeTo *rc.Container, onDelivered func()) {
	if c.closed {
		return
	}
	if chargeTo != nil {
		chargeTo.ChargePacketOut(size)
	}
	t.Post(&WorkItem{
		Label: "send", Cost: c.k.costs.SendProtocol, Kind: rc.KernelCPU,
		Stage: trace.StageSocket, Container: chargeTo,
		OnDone: func() {
			if onDelivered != nil {
				c.k.eng.After(c.k.costs.WireDelay, onDelivered)
			}
		},
	})
}

// ClientSend injects a packet from the client network: it reaches the
// server NIC one wire delay from now, unless fault injection intervenes —
// the legacy WireLossRate knob drops it outright, and an attached Faults
// injector can drop, duplicate, delay or reorder it (§3.2's "degraded
// network" conditions made reproducible).
func (k *Kernel) ClientSend(pkt *netsim.Packet) {
	if k.WireLossRate > 0 {
		if k.lossRNG == nil {
			k.lossRNG = k.eng.Rand().Fork(0xD0BB5)
		}
		if k.lossRNG.Float64() < k.WireLossRate {
			k.Tracer.Emitf(k.Now(), trace.KindDrop, "wire loss: %s", pkt)
			return
		}
	}
	if k.Faults != nil {
		deliveries := k.Faults.WireFate(pkt)
		if len(deliveries) == 0 {
			k.Tracer.Emitf(k.Now(), trace.KindFault, "wire fault: lost %s", pkt)
			return
		}
		for i, extra := range deliveries {
			if i > 0 {
				k.Tracer.Emitf(k.Now(), trace.KindFault, "wire fault: duplicated %s (+%v)", pkt, extra)
			} else if extra > 0 {
				k.Tracer.Emitf(k.Now(), trace.KindFault, "wire fault: delayed %s (+%v)", pkt, extra)
			}
			k.eng.After(k.costs.WireDelay+extra, func() { k.Arrive(pkt) })
		}
		return
	}
	k.eng.After(k.costs.WireDelay, func() { k.Arrive(pkt) })
}

// Arrive is the NIC receive path: every packet raises an interrupt. What
// happens inside the interrupt depends on the kernel mode (§4.7).
func (k *Kernel) Arrive(pkt *netsim.Packet) {
	k.Tracer.Emitf(k.Now(), trace.KindPacket, "%s", pkt)
	switch k.mode {
	case ModeUnmodified:
		if k.Police.Enabled && pkt.Kind == netsim.SYN {
			// Emergency interrupt-level SYN throttle (see Policing): decide
			// the SYN's fate for the cost of the interrupt alone; only
			// admitted SYNs pay protocol processing.
			k.cpu.RaiseInterrupt(&intrWork{
				label:           "intr+throttle",
				cost:            k.costs.Interrupt,
				chargePreempted: true,
				onDone:          func() { k.throttleSYN(pkt) },
			})
			return
		}
		// All protocol processing at interrupt level, FIFO, charged to
		// the unlucky running principal.
		k.cpu.RaiseInterrupt(&intrWork{
			label:           "intr+proto",
			cost:            k.costs.Interrupt + k.protoCost(pkt),
			chargePreempted: true,
			onDone:          func() { k.protoProcess(pkt, nil) },
		})
	case ModeLRP, ModeRC:
		k.cpu.RaiseInterrupt(&intrWork{
			label:           "intr+demux",
			cost:            k.costs.Interrupt + k.costs.Demux,
			chargePreempted: true,
			// Early demultiplexing identifies who the packet is for, so
			// the profile can attribute this interrupt-level work to its
			// destination instead of the preempted victim.
			deferTel: true,
			onDone:   func() { k.earlyDemux(pkt) },
		})
	}
}

// emitPkt records a structured packet-fate event (drop, police),
// attributed by name to the responsible container when known. Detail
// formatting only happens when the kind is traced.
func (k *Kernel) emitPkt(kind trace.Kind, cont *rc.Container, pkt *netsim.Packet, format string, args ...any) {
	if !k.Tracer.Enabled(kind) {
		return
	}
	var name string
	if cont != nil {
		name = cont.Name()
	}
	k.Tracer.Emit(trace.Event{
		At: k.Now(), Kind: kind, CPU: -1, Principal: name,
		Conn: pkt.ConnID, Detail: fmt.Sprintf(format, args...),
	})
}

// protoCost returns the protocol-processing CPU cost for a packet.
func (k *Kernel) protoCost(pkt *netsim.Packet) sim.Duration {
	switch pkt.Kind {
	case netsim.SYN:
		return k.costs.SYNProtocol
	case netsim.FIN:
		return k.costs.FINProtocol
	default:
		return k.costs.RecvProtocol
	}
}

// earlyDemux classifies the packet at interrupt level (LRP/RC) and queues
// it for the destination's kernel network thread, charging the
// destination container for the demux work and dropping on backlog
// overflow.
func (k *Kernel) earlyDemux(pkt *netsim.Packet) {
	proc, cont, ls := k.route(pkt)
	if k.tel != nil {
		// Deferred attribution of the interrupt+demux work (Fig 14's
		// accounting story): once the packet is classified, its interrupt
		// cost lands on the destination principal at the interrupt stage
		// and its demux cost at the IP stage — in ModeRC the destination
		// container (a flood pays for its own SYN processing), in ModeLRP
		// the destination process, and "(unmatched)" for packets no
		// socket claims.
		name := "(unmatched)"
		if k.mode == ModeRC && cont != nil {
			name = cont.Name()
		} else if proc != nil {
			name = proc.name
		}
		k.tel.ChargeStage(name, trace.StageInterrupt, k.costs.Interrupt)
		k.tel.ChargeStage(name, trace.StageIP, k.costs.Demux)
	}
	if proc == nil {
		return // no matching socket: packet dropped silently
	}
	if k.mode == ModeRC && cont != nil {
		cont.ChargeCPU(rc.KernelCPU, k.costs.Demux)
		cont.ChargePacketIn(pkt.Size)
	}
	if k.policeDemux(pkt, proc, cont, ls) {
		return
	}
	if pkt.Kind == netsim.SYN && ls != nil && !pkt.Bogus && ls.pendingSYN+ls.acceptQ.Len() >= ls.acceptQ.Cap() {
		// Excess connection requests are discarded at demultiplexing,
		// before any protocol processing is invested — LRP's "excess
		// traffic is discarded early" (§3.2), which is what keeps the
		// LRP and RC systems stable under overload.
		k.emitPkt(trace.KindDrop, cont, pkt, "early drop, accept queue full: %s", pkt)
		if cont != nil {
			cont.ChargeDrop()
		}
		ls.synDrops++
		if ls.cfg.OnSynDrop != nil {
			ls.cfg.OnSynDrop(pkt.Src)
		}
		return
	}
	if pkt.Kind == netsim.SYN && ls != nil && !pkt.Bogus {
		ls.pendingSYN++
	}
	w := &pktWork{
		pkt:       pkt,
		container: cont,
		cost:      k.protoCost(pkt),
		run:       func() { k.protoProcess(pkt, ls) },
	}
	if !proc.netQ.enqueue(w) {
		k.emitPkt(trace.KindDrop, cont, pkt, "backlog full: %s", pkt)
		if cont != nil {
			cont.ChargeDrop()
		}
		if pkt.Kind == netsim.SYN && ls != nil {
			ls.synDrops++
			if ls.cfg.OnSynDrop != nil {
				ls.cfg.OnSynDrop(pkt.Src)
			}
		}
		return
	}
	proc.netThread.Wake()
}

// throttleSYN is the unmodified kernel's emergency admission control
// (Policing with no per-process backlog to key on): the SYN has paid
// only the interrupt cost so far. When the listener's embryonic queue
// already holds more than SYNFrac× its capacity the SYN is refused here
// — shedding the flood for ~2µs/SYN instead of the ~107µs of protocol
// work that causes receive livelock. Admitted SYNs pay the normal
// protocol cost in a follow-on interrupt, so the admitted path costs
// what the fast path does.
func (k *Kernel) throttleSYN(pkt *netsim.Packet) {
	_, cont, ls := k.route(pkt)
	if ls == nil {
		return // no matching socket: packet dropped silently, as always
	}
	frac := k.Police.SYNFrac
	if frac <= 0 {
		frac = DefaultSYNPoliceFrac
	}
	if frac < 1 {
		limit := int(frac * float64(ls.synQ.Cap()))
		if limit < 1 {
			limit = 1
		}
		if ls.EmbryonicCount() >= limit {
			k.emitPkt(trace.KindPolice, cont, pkt, "SYN throttled at interrupt level, embryonic over %d: %s", limit, pkt)
			k.policedDrops++
			if cont != nil {
				cont.ChargeDrop()
			}
			ls.synDrops++
			if ls.cfg.OnSynDrop != nil {
				ls.cfg.OnSynDrop(pkt.Src)
			}
			return
		}
	}
	k.cpu.RaiseInterrupt(&intrWork{
		label:           "intr+proto",
		cost:            k.protoCost(pkt),
		chargePreempted: true,
		onDone:          func() { k.protoProcess(pkt, ls) },
	})
}

// policeDemux applies the admission-control policy at demultiplexing
// time: when the destination container's pending-protocol backlog is
// already long, NEW work (connection requests) is refused for the cost of
// the packet filter alone, while in-progress work (data, FIN) keeps
// flowing until the hard bound. This extends the bounded-queue drop
// accounting into an explicit policing decision keyed on per-container
// backlog — early discard of excess load (§3.2) before any protocol
// effort is invested. It reports whether the packet was discarded.
func (k *Kernel) policeDemux(pkt *netsim.Packet, proc *Process, cont *rc.Container, ls *ListenSocket) bool {
	if !k.Police.Enabled || proc.netQ == nil {
		return false
	}
	frac := k.Police.DataFrac
	if pkt.Kind == netsim.SYN {
		frac = k.Police.SYNFrac
		if frac <= 0 {
			frac = DefaultSYNPoliceFrac
		}
	}
	if frac <= 0 || frac >= 1 {
		return false
	}
	limit := int(frac * float64(proc.netQ.backlog))
	if limit < 1 {
		limit = 1
	}
	if proc.netQ.backlogFor(cont) < limit {
		return false
	}
	k.emitPkt(trace.KindPolice, cont, pkt, "policed, backlog over %d: %s", limit, pkt)
	k.policedDrops++
	if cont != nil {
		cont.ChargeDrop()
	}
	if pkt.Kind == netsim.SYN && ls != nil {
		ls.synDrops++
		if ls.cfg.OnSynDrop != nil {
			ls.cfg.OnSynDrop(pkt.Src)
		}
	}
	return true
}

// route finds the destination process, charge container and (for SYNs)
// listening socket of a packet.
func (k *Kernel) route(pkt *netsim.Packet) (*Process, *rc.Container, *ListenSocket) {
	if pkt.Kind == netsim.SYN {
		l := k.net.demux.Match(pkt.Dst, pkt.Src.IP)
		if l == nil {
			return nil, nil, nil
		}
		ls := l.Owner.(*ListenSocket)
		return ls.proc, ls.container, ls
	}
	c := k.net.conns.lookup(pkt.ConnID)
	if c == nil || c.closed {
		return nil, nil, nil
	}
	return c.proc, c.container, c.ls
}

// protoProcess performs the protocol processing effects of a packet once
// its cost has been paid (at interrupt level in ModeUnmodified, on the
// kernel network thread otherwise). ls is pre-routed for LRP/RC; in
// unmodified mode routing happens here, "inside" the protocol work.
func (k *Kernel) protoProcess(pkt *netsim.Packet, ls *ListenSocket) {
	switch pkt.Kind {
	case netsim.SYN:
		if ls == nil {
			l := k.net.demux.Match(pkt.Dst, pkt.Src.IP)
			if l == nil {
				return
			}
			ls = l.Owner.(*ListenSocket)
		}
		k.handleSYN(pkt, ls)
	case netsim.Data:
		c := k.net.conns.lookup(pkt.ConnID)
		if c == nil || c.closed {
			return
		}
		if c.OnRequest != nil {
			c.OnRequest(c, pkt.Payload)
		} else {
			c.pending = append(c.pending, pkt.Payload)
		}
	case netsim.FIN:
		c := k.net.conns.lookup(pkt.ConnID)
		if c == nil {
			return
		}
		c.Close()
	}
}

// handleSYN establishes a connection (legit SYN) or parks a bogus SYN in
// the embryonic queue until its timeout.
func (k *Kernel) handleSYN(pkt *netsim.Packet, ls *ListenSocket) {
	if k.mode != ModeUnmodified && !pkt.Bogus && ls.pendingSYN > 0 {
		ls.pendingSYN--
	}
	if ls.closed {
		return
	}
	if pkt.Bogus {
		// A flood SYN occupies an embryonic slot until the retransmit
		// timer abandons it. Slots expire lazily: all bogus entries share
		// one timeout, so expiries leave the queue in FIFO order.
		ls.expireSyns(k.Now())
		if ls.synQ.Full() {
			k.emitPkt(trace.KindDrop, ls.container, pkt, "SYN queue full: %s", pkt)
			ls.synDrops++
			if ls.cfg.OnSynDrop != nil {
				ls.cfg.OnSynDrop(pkt.Src)
			}
			return
		}
		ls.synQ.Push(k.Now().Add(BogusSynTimeout))
		return
	}
	if ls.acceptQ.Full() {
		k.emitPkt(trace.KindDrop, ls.container, pkt, "accept queue full: %s", pkt)
		ls.synDrops++
		if ls.cfg.OnSynDrop != nil {
			ls.cfg.OnSynDrop(pkt.Src)
		}
		return
	}
	// Admission control on kernel memory (§4.4): socket buffers are
	// charged to the socket's container; a subtree at its memory limit
	// cannot accept more connections.
	var memHolder *rc.Container
	if k.mode == ModeRC && ls.container != nil {
		if err := ls.container.ChargeMemory(SocketBufferBytes); err != nil {
			k.emitPkt(trace.KindDrop, ls.container, pkt, "memory limit: %s (%v)", pkt, err)
			ls.synDrops++
			ls.container.ChargeDrop()
			if ls.cfg.OnSynDrop != nil {
				ls.cfg.OnSynDrop(pkt.Src)
			}
			return
		}
		memHolder = ls.container
	}
	k.net.nextID++
	conn, h := k.net.conns.alloc()
	*conn = Conn{
		k:         k,
		id:        k.net.nextID,
		fd:        int(k.net.nextID),
		client:    pkt.Src,
		ls:        ls,
		proc:      ls.proc,
		container: ls.container,
		memHolder: memHolder,
	}
	if k.Tracer.Enabled(trace.KindConn) {
		var name string
		if conn.container != nil {
			name = conn.container.Name()
		}
		k.Tracer.Emit(trace.Event{
			At: k.Now(), Kind: trace.KindConn, CPU: -1, Principal: name,
			Conn: conn.id, Detail: fmt.Sprintf("established from %s", pkt.Src),
		})
	}
	k.net.conns.insert(conn.id, h)
	k.net.established++
	ls.acceptQ.Push(conn)
	if ls.cfg.OnAcceptable != nil {
		ls.cfg.OnAcceptable(ls)
	}
	// The client learns about the established connection one wire delay
	// later (the SYN-ACK): a SYN may carry a client callback as payload.
	if cb, ok := pkt.Payload.(func(*Conn)); ok {
		k.eng.After(k.costs.WireDelay, func() { cb(conn) })
	}
}

// ConnsEstablished returns how many connections the kernel has ever
// established.
func (k *Kernel) ConnsEstablished() uint64 { return k.net.established }

// ConnsClosed returns how many established connections have been torn
// down.
func (k *Kernel) ConnsClosed() uint64 { return k.net.closed }

// OpenConns returns the number of currently established connections.
func (k *Kernel) OpenConns() int { return k.net.conns.live }

// LookupConn returns the connection with the given id, if established.
func (k *Kernel) LookupConn(id uint64) (*Conn, bool) {
	c := k.net.conns.lookup(id)
	return c, c != nil
}

// CloseConnsOf tears down every established connection owned by the
// process — what the kernel does when a server worker crashes. The conn
// table iterates in ascending connection-id order, so crash recovery is
// deterministic.
func (k *Kernel) CloseConnsOf(p *Process) {
	var victims []*Conn
	k.net.conns.each(func(c *Conn) {
		if c.proc == p {
			victims = append(victims, c)
		}
	})
	for _, c := range victims {
		c.Close()
	}
}

// pktWork is protocol processing pending on a kernel network thread.
type pktWork struct {
	pkt       *netsim.Packet
	label     string
	container *rc.Container
	cost      sim.Duration
	run       func()
	seq       uint64
}

// pktQueue is the per-process pending-protocol queue. In ModeRC it is
// ordered by container priority (§4.7: "the priority of these containers
// determines the order in which they are serviced"); in ModeLRP it is a
// single FIFO. Each container's backlog is bounded.
type pktQueue struct {
	k       *Kernel
	queues  []*contQueue
	nextSeq uint64
	backlog int
}

type contQueue struct {
	c *rc.Container
	q *netsim.Queue[*pktWork]
	// servedWeighted is the QoS-normalized protocol work already done
	// for this container; among equal-priority containers the one with
	// the least weighted service goes first (§4.1 network QoS values).
	servedWeighted float64
}

func newPktQueue(k *Kernel) *pktQueue {
	return &pktQueue{k: k, backlog: DefaultNetBacklog}
}

func (pq *pktQueue) queueFor(c *rc.Container) *contQueue {
	for _, cq := range pq.queues {
		if cq.c == c {
			return cq
		}
	}
	cq := &contQueue{c: c, q: netsim.NewQueue[*pktWork](pq.backlog)}
	// A new flow joins the weighted-fair service at the current virtual
	// time (the minimum of the active flows), so it neither inherits
	// past credit nor starves standing backlogs.
	first := true
	for _, other := range pq.queues {
		if other.q.Len() == 0 {
			continue
		}
		if first || other.servedWeighted < cq.servedWeighted {
			cq.servedWeighted = other.servedWeighted
			first = false
		}
	}
	pq.queues = append(pq.queues, cq)
	return cq
}

// backlogFor returns the pending-protocol backlog of the container's
// queue (the whole process's queue outside ModeRC, mirroring enqueue's
// keying).
func (pq *pktQueue) backlogFor(c *rc.Container) int {
	if pq.k.mode != ModeRC {
		c = nil
	}
	for _, cq := range pq.queues {
		if cq.c == c {
			return cq.q.Len()
		}
	}
	return 0
}

// enqueue adds pending protocol work; it reports false when the backlog
// is full and the packet must be dropped.
func (pq *pktQueue) enqueue(w *pktWork) bool {
	w.seq = pq.nextSeq
	pq.nextSeq++
	var cq *contQueue
	if pq.k.mode == ModeRC {
		cq = pq.queueFor(w.container)
	} else {
		cq = pq.queueFor(nil) // LRP: one FIFO for the whole process
	}
	return cq.q.Push(w)
}

// HasWork implements WorkSource.
func (pq *pktQueue) HasWork() bool {
	for _, cq := range pq.queues {
		if cq.q.Len() > 0 {
			return true
		}
	}
	return false
}

// NextWork implements WorkSource: the pending packet whose container has
// the highest priority runs first; among equal priorities the container
// with the least QoS-weighted service goes first, then arrival order.
func (pq *pktQueue) NextWork() *WorkItem {
	var best *contQueue
	bestPrio := -1
	bestWeighted := 0.0
	var bestSeq uint64
	for _, cq := range pq.queues {
		head, ok := cq.q.Peek()
		if !ok {
			continue
		}
		prio := 0
		if cq.c != nil {
			prio = cq.c.EffectivePriority()
		}
		better := best == nil || prio > bestPrio
		if !better && prio == bestPrio {
			if cq.servedWeighted != bestWeighted {
				better = cq.servedWeighted < bestWeighted
			} else {
				better = head.seq < bestSeq
			}
		}
		if better {
			best, bestPrio, bestWeighted, bestSeq = cq, prio, cq.servedWeighted, head.seq
		}
	}
	if best == nil {
		return nil
	}
	w, _ := best.q.Pop()
	weight := 1.0
	if best.c != nil {
		weight = best.c.QoSWeight()
	}
	best.servedWeighted += float64(w.cost) / weight
	if best.q.Len() == 0 {
		// Drop the drained per-container queue so that short-lived
		// per-connection containers do not accumulate.
		for i, cq := range pq.queues {
			if cq == best {
				pq.queues = append(pq.queues[:i], pq.queues[i+1:]...)
				break
			}
		}
	}
	cont := w.container
	if pq.k.mode != ModeRC {
		cont = nil
	}
	label := w.label
	if label == "" {
		label = "proto:" + w.pkt.Kind.String()
	}
	return &WorkItem{
		Label:     label,
		Cost:      w.cost,
		Kind:      rc.KernelCPU,
		Stage:     trace.StageSocket,
		Container: cont,
		OnDone:    w.run,
	}
}

// topPriority returns the highest container priority among pending
// packets, or -1 when nothing is pending.
func (pq *pktQueue) topPriority() int {
	best := -1
	for _, cq := range pq.queues {
		if cq.q.Len() == 0 {
			continue
		}
		prio := 0
		if cq.c != nil {
			prio = cq.c.EffectivePriority()
		}
		if prio > best {
			best = prio
		}
	}
	return best
}

// requeueFront parks a partially processed work item back at the head of
// its container's queue, so higher-priority pending packets can be served
// first (§4.7: service strictly in container-priority order).
func (pq *pktQueue) requeueFront(item *WorkItem) {
	cq := pq.queueFor(item.Container)
	cq.q.PushFront(&pktWork{
		label:     item.Label,
		container: item.Container,
		cost:      item.Cost,
		run:       item.OnDone,
	})
}

// PendingContainers returns the containers that currently have pending
// protocol work (nil entries are skipped by the scheduler).
func (pq *pktQueue) PendingContainers() []*rc.Container {
	out := make([]*rc.Container, 0, len(pq.queues))
	for _, cq := range pq.queues {
		if cq.q.Len() > 0 && cq.c != nil {
			out = append(out, cq.c)
		}
	}
	return out
}

// Len returns total pending packets.
func (pq *pktQueue) Len() int {
	n := 0
	for _, cq := range pq.queues {
		n += cq.q.Len()
	}
	return n
}

var _ fmt.Stringer = Mode(0)
