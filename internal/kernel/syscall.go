package kernel

import (
	"errors"

	"rescon/internal/rc"
)

// This file is the syscall-level container API of §4.6 — the operations
// Table 1 prices. They are thin, validated wrappers over internal/rc
// operating on per-process descriptor tables, exactly the shape a real
// kernel would expose. bench_test.go measures their real cost (our
// Table 1); the simulated CPU cost of invoking them inside a simulated
// server comes from CostModel.Container* (§5.4).

// ErrWrongMode is returned when container syscalls are used on a kernel
// without container support.
var ErrWrongMode = errors.New("kernel: container operations require ModeRC")

// NoParent passes "no parent" to CreateContainer and SetContainerParent.
const NoParent = rc.Desc(-1)

func (p *Process) requireRC() error {
	if p.k.mode != ModeRC {
		return ErrWrongMode
	}
	if p.exited {
		return ErrProcessExited
	}
	return nil
}

// CreateContainer creates a new resource container, child of the
// container at parent (or top-level for NoParent), and returns its
// descriptor ("create resource container", Table 1).
func (p *Process) CreateContainer(parent rc.Desc, class rc.Class, name string, attrs rc.Attributes) (rc.Desc, error) {
	if err := p.requireRC(); err != nil {
		return -1, err
	}
	var pc *rc.Container
	if parent != NoParent {
		var err error
		pc, err = p.Containers.Lookup(parent)
		if err != nil {
			return -1, err
		}
	}
	c, err := rc.New(pc, class, name, attrs)
	if err != nil {
		return -1, err
	}
	d, err := p.Containers.Open(c)
	if err != nil {
		return -1, err
	}
	// The table holds the descriptor reference; drop the creation ref.
	if err := c.Release(); err != nil {
		return -1, err
	}
	return d, nil
}

// ReleaseContainer closes the descriptor; the container is destroyed when
// its last reference disappears ("destroy resource container", Table 1).
func (p *Process) ReleaseContainer(d rc.Desc) error {
	if err := p.requireRC(); err != nil {
		return err
	}
	return p.Containers.Close(d)
}

// SetContainerParent changes the container's parent (§4.6 "set a
// container's parent"); NoParent detaches it.
func (p *Process) SetContainerParent(d, parent rc.Desc) error {
	if err := p.requireRC(); err != nil {
		return err
	}
	c, err := p.Containers.Lookup(d)
	if err != nil {
		return err
	}
	var pc *rc.Container
	if parent != NoParent {
		if pc, err = p.Containers.Lookup(parent); err != nil {
			return err
		}
	}
	return c.SetParent(pc)
}

// ContainerAttrs reads the container's attributes ("set/get container
// attributes", Table 1).
func (p *Process) ContainerAttrs(d rc.Desc) (rc.Attributes, error) {
	if err := p.requireRC(); err != nil {
		return rc.Attributes{}, err
	}
	c, err := p.Containers.Lookup(d)
	if err != nil {
		return rc.Attributes{}, err
	}
	return c.Attributes(), nil
}

// SetContainerAttrs updates the container's attributes.
func (p *Process) SetContainerAttrs(d rc.Desc, attrs rc.Attributes) error {
	if err := p.requireRC(); err != nil {
		return err
	}
	c, err := p.Containers.Lookup(d)
	if err != nil {
		return err
	}
	return c.SetAttributes(attrs)
}

// ContainerUsage reads the resource usage charged to the container
// ("obtain container resource usage", Table 1).
func (p *Process) ContainerUsage(d rc.Desc) (rc.Usage, error) {
	if err := p.requireRC(); err != nil {
		return rc.Usage{}, err
	}
	c, err := p.Containers.Lookup(d)
	if err != nil {
		return rc.Usage{}, err
	}
	return c.Usage(), nil
}

// MoveContainer passes the container to another process, as descriptors
// pass over UNIX-domain sockets; the sender retains access ("move
// container between processes", Table 1).
func (p *Process) MoveContainer(d rc.Desc, dst *Process) (rc.Desc, error) {
	if err := p.requireRC(); err != nil {
		return -1, err
	}
	if dst.exited {
		return -1, ErrProcessExited
	}
	return p.Containers.Transfer(d, dst.Containers)
}

// ContainerHandle opens a descriptor for a container the process can
// already reference ("obtain handle for existing container", Table 1).
func (p *Process) ContainerHandle(c *rc.Container) (rc.Desc, error) {
	if err := p.requireRC(); err != nil {
		return -1, err
	}
	return p.Containers.Open(c)
}

// Lookup resolves a descriptor to its container (kernel-internal helper
// for binding operations).
func (p *Process) Lookup(d rc.Desc) (*rc.Container, error) {
	return p.Containers.Lookup(d)
}

// BindThread sets the thread's resource binding to the container at d
// ("change thread's resource binding", Table 1). Binding requires a leaf
// container (§4.5 prototype restriction).
func (p *Process) BindThread(t *Thread, d rc.Desc) error {
	if err := p.requireRC(); err != nil {
		return err
	}
	c, err := p.Containers.Lookup(d)
	if err != nil {
		return err
	}
	return p.BindThreadContainer(t, c)
}

// BindThreadContainer is BindThread for a directly held container.
func (p *Process) BindThreadContainer(t *Thread, c *rc.Container) error {
	if err := p.requireRC(); err != nil {
		return err
	}
	if !c.IsLeaf() {
		return rc.ErrNotLeaf
	}
	if c.Destroyed() {
		return rc.ErrDestroyed
	}
	p.k.sch.Bind(t.ent, c, p.k.Now())
	return nil
}

// ThreadBinding returns the thread's current resource binding.
func (p *Process) ThreadBinding(t *Thread) *rc.Container { return t.ent.Resource }

// ResetSchedBinding resets the thread's scheduler binding to its current
// resource binding (§4.6 "reset the scheduler binding").
func (p *Process) ResetSchedBinding(t *Thread) {
	p.k.sch.ResetBinding(t.ent)
}

// BindConn binds an established connection's descriptor to the container
// at d (§4.6 "binding a socket or file to a container").
func (p *Process) BindConn(conn *Conn, d rc.Desc) error {
	if err := p.requireRC(); err != nil {
		return err
	}
	c, err := p.Containers.Lookup(d)
	if err != nil {
		return err
	}
	conn.SetContainer(c)
	return nil
}

// BindListenSocket binds a listening socket to the container at d.
func (p *Process) BindListenSocket(ls *ListenSocket, d rc.Desc) error {
	if err := p.requireRC(); err != nil {
		return err
	}
	c, err := p.Containers.Lookup(d)
	if err != nil {
		return err
	}
	ls.SetContainer(c)
	return nil
}
