package kernel

import (
	"testing"

	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// fillBacklog parks n pending-protocol work items for cont on the
// process's network queue, without running the engine — the white-box
// way to put the backlog at an exact occupancy for threshold tests.
func fillBacklog(t *testing.T, p *Process, cont *rc.Container, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !p.netQ.enqueue(&pktWork{container: cont, cost: sim.Microsecond}) {
			t.Fatalf("backlog full while seeding %d of %d", i, n)
		}
	}
}

// TestPoliceDemuxThresholdTable pins the admission-control decision at
// every edge of the threshold arithmetic: an empty backlog is never
// policed, fractions at or beyond 1 disable the policy, a vanishing
// fraction clamps the limit to one pending packet, and occupancy
// exactly at the limit refuses while one below admits.
func TestPoliceDemuxThresholdTable(t *testing.T) {
	// DefaultNetBacklog = 1024; DefaultSYNPoliceFrac = 1/16 → limit 64.
	cases := []struct {
		name     string
		mode     Mode
		syn      bool // SYN (new work) vs data (in-progress work)
		synFrac  float64
		dataFrac float64
		backlog  int
		policed  bool
	}{
		{"zero-length backlog never policed", ModeRC, true, 1.0 / 16, 0, 0, false},
		{"one below default SYN limit admits", ModeRC, true, 0, 0, 63, false},
		{"exactly at default SYN limit refuses", ModeRC, true, 0, 0, 64, true},
		{"explicit frac, one below limit", ModeRC, true, 0.5, 0, 511, false},
		{"explicit frac, limit==occupancy refuses", ModeRC, true, 0.5, 0, 512, true},
		{"frac 1 disables even when full-ish", ModeRC, true, 1, 0, 1023, false},
		{"frac beyond 1 disables", ModeRC, true, 1.5, 0, 1023, false},
		{"vanishing frac clamps limit to 1: empty admits", ModeRC, true, 1e-9, 0, 0, false},
		{"vanishing frac clamps limit to 1: one pending refuses", ModeRC, true, 1e-9, 0, 1, true},
		{"data unpoliced by default at high occupancy", ModeRC, false, 0, 0, 1000, false},
		{"data frac refuses at its own limit", ModeRC, false, 0, 0.5, 512, true},
		{"data frac admits below its limit", ModeRC, false, 0, 0.5, 511, false},
		{"LRP keys on the process-wide queue", ModeLRP, true, 0, 0, 64, true},
		{"LRP below limit admits", ModeLRP, true, 0, 0, 63, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, k := newKernel(tc.mode)
			k.Police = Policing{Enabled: true, SYNFrac: tc.synFrac, DataFrac: tc.dataFrac}
			p := k.NewProcess("httpd")
			var cont *rc.Container
			if tc.mode == ModeRC {
				cont = rc.MustNew(nil, rc.TimeShare, "sock", rc.Attributes{Priority: 5})
			}
			ls, err := k.Listen(p, ListenConfig{Local: srvAddr, Container: cont})
			if err != nil {
				t.Fatal(err)
			}
			fillBacklog(t, p, cont, tc.backlog)
			pkt := SYNPacket(client(1), srvAddr, false)
			if !tc.syn {
				pkt = DataPacket(client(1), srvAddr, 1, 100, nil)
			}
			dropsBefore := k.PolicedDrops()
			got := k.policeDemux(pkt, p, cont, ls)
			if got != tc.policed {
				t.Fatalf("policed = %t, want %t", got, tc.policed)
			}
			wantDrops := dropsBefore
			if tc.policed {
				wantDrops++
			}
			if k.PolicedDrops() != wantDrops {
				t.Fatalf("PolicedDrops = %d, want %d", k.PolicedDrops(), wantDrops)
			}
			// SYN refusals must be visible on the listener counter (the
			// alert battery's syn-drops source); data refusals must not.
			wantSyn := uint64(0)
			if tc.policed && tc.syn {
				wantSyn = 1
			}
			if ls.SynDrops() != wantSyn {
				t.Fatalf("SynDrops = %d, want %d", ls.SynDrops(), wantSyn)
			}
		})
	}
}

// TestPolicingDisabledNeverRefuses is the master switch: a saturated
// backlog with Police.Enabled unset must fall through to the ordinary
// bounded-queue behaviour.
func TestPolicingDisabledNeverRefuses(t *testing.T) {
	_, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	cont := rc.MustNew(nil, rc.TimeShare, "sock", rc.Attributes{Priority: 5})
	ls, err := k.Listen(p, ListenConfig{Local: srvAddr, Container: cont})
	if err != nil {
		t.Fatal(err)
	}
	fillBacklog(t, p, cont, 1023)
	if k.policeDemux(SYNPacket(client(1), srvAddr, false), p, cont, ls) {
		t.Fatal("policed with the policy disabled")
	}
	if k.PolicedDrops() != 0 {
		t.Fatalf("PolicedDrops = %d, want 0", k.PolicedDrops())
	}
}

// TestPolicingToggledMidRun flips the policy off and back on under a
// sustained flood: policed drops accumulate while enabled, freeze while
// disabled (overflow falls back to plain queue-bound drops), and resume
// when re-enabled — no restart or queue reset required.
func TestPolicingToggledMidRun(t *testing.T) {
	eng, k := newKernel(ModeRC)
	k.Police = Policing{Enabled: true}
	p := k.NewProcess("httpd")
	cont := rc.MustNew(nil, rc.TimeShare, "sock", rc.Attributes{Priority: 5})
	if _, err := k.Listen(p, ListenConfig{Local: srvAddr, Container: cont}); err != nil {
		t.Fatal(err)
	}
	// ~50k SYN/s against ~9k SYN/s of protocol service: the backlog
	// passes the police limit (64) within a few milliseconds.
	for i := 0; i < 3000; i++ {
		pkt := SYNPacket(netsim.Addr{IP: netsim.MustParseIP("66.0.0.1"), Port: uint16(i)}, srvAddr, true)
		eng.After(sim.Duration(i)*20*sim.Microsecond, func() { k.Arrive(pkt) })
	}

	eng.RunUntil(sim.Time(20 * sim.Millisecond))
	afterOn := k.PolicedDrops()
	if afterOn == 0 {
		t.Fatal("no policed drops while enabled under flood")
	}

	k.Police.Enabled = false
	eng.RunUntil(sim.Time(40 * sim.Millisecond))
	if got := k.PolicedDrops(); got != afterOn {
		t.Fatalf("policed drops moved while disabled: %d -> %d", afterOn, got)
	}

	k.Police.Enabled = true
	eng.RunUntil(sim.Time(60 * sim.Millisecond))
	if got := k.PolicedDrops(); got <= afterOn {
		t.Fatalf("policed drops did not resume after re-enable: still %d", got)
	}
}

// TestPolicingCountersConserved sends a fixed burst of legitimate SYNs
// through a policed kernel and checks the fates add up: every SYN is
// either established or counted in SynDrops, exactly once, and policed
// drops are a subset of the listener's drop counter.
func TestPolicingCountersConserved(t *testing.T) {
	for _, mode := range []Mode{ModeLRP, ModeRC} {
		t.Run(mode.String(), func(t *testing.T) {
			eng, k := newKernel(mode)
			k.Police = Policing{Enabled: true}
			p := k.NewProcess("httpd")
			var cont *rc.Container
			if mode == ModeRC {
				cont = rc.MustNew(nil, rc.TimeShare, "sock", rc.Attributes{Priority: 5})
			}
			var ls *ListenSocket
			var err error
			ls, err = k.Listen(p, ListenConfig{
				Local:     srvAddr,
				Container: cont,
				OnAcceptable: func(l *ListenSocket) {
					// Drain accepts so the accept queue never interferes;
					// only policing and the backlog bound refuse SYNs here.
					l.Accept()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 800
			for i := 0; i < n; i++ {
				pkt := SYNPacket(client(uint16(1000+i)), srvAddr, false)
				eng.After(sim.Duration(i)*20*sim.Microsecond, func() { k.Arrive(pkt) })
			}
			eng.Run()

			established := k.ConnsEstablished()
			drops := ls.SynDrops()
			if established+drops != n {
				t.Fatalf("fates not conserved: established %d + drops %d != %d sent", established, drops, n)
			}
			if established == 0 || drops == 0 {
				t.Fatalf("degenerate split established=%d drops=%d: burst did not exercise policing", established, drops)
			}
			if k.PolicedDrops() == 0 || k.PolicedDrops() > drops {
				t.Fatalf("policed drops %d not a nonzero subset of listener drops %d", k.PolicedDrops(), drops)
			}
			if cont != nil {
				if got := cont.Usage().PacketsDropped; got < k.PolicedDrops() {
					t.Fatalf("container charged %d drops, fewer than %d policed", got, k.PolicedDrops())
				}
			}
		})
	}
}

// TestUnmodifiedSYNThrottle covers Policing's degraded form on the
// unmodified kernel (no per-process backlog): an interrupt-level
// embryonic-queue throttle that is off by default, disabled by frac >= 1,
// and when active sheds flood SYNs for the interrupt cost alone while
// still admitting legitimate connections below the limit.
func TestUnmodifiedSYNThrottle(t *testing.T) {
	flood := func(eng *sim.Engine, k *Kernel, n int) {
		for i := 0; i < n; i++ {
			pkt := SYNPacket(netsim.Addr{IP: netsim.MustParseIP("66.0.0.1"), Port: uint16(i)}, srvAddr, true)
			eng.After(sim.Duration(i)*200*sim.Microsecond, func() { k.Arrive(pkt) })
		}
	}

	t.Run("off by default", func(t *testing.T) {
		eng, k := newKernel(ModeUnmodified)
		if _, err := k.Listen(k.NewProcess("httpd"), ListenConfig{Local: srvAddr}); err != nil {
			t.Fatal(err)
		}
		flood(eng, k, 200)
		eng.Run()
		if k.PolicedDrops() != 0 {
			t.Fatalf("throttle active while disabled: %d policed drops", k.PolicedDrops())
		}
	})

	t.Run("frac at 1 disables", func(t *testing.T) {
		eng, k := newKernel(ModeUnmodified)
		k.Police = Policing{Enabled: true, SYNFrac: 1}
		if _, err := k.Listen(k.NewProcess("httpd"), ListenConfig{Local: srvAddr}); err != nil {
			t.Fatal(err)
		}
		flood(eng, k, 200)
		eng.Run()
		if k.PolicedDrops() != 0 {
			t.Fatalf("throttle active with frac=1: %d policed drops", k.PolicedDrops())
		}
	})

	t.Run("sheds over the embryonic limit", func(t *testing.T) {
		eng, k := newKernel(ModeUnmodified)
		k.Police = Policing{Enabled: true} // SYNFrac 0 → default 1/16 of 1024 = 64
		hookDrops := 0
		ls, err := k.Listen(k.NewProcess("httpd"), ListenConfig{
			Local:     srvAddr,
			OnSynDrop: func(Address) { hookDrops++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		// 200 bogus SYNs in 40ms, well inside the 100ms embryonic expiry:
		// the first 64 occupy the queue, the other 136 are throttled.
		flood(eng, k, 200)
		eng.RunUntil(sim.Time(50 * sim.Millisecond))
		if got := ls.EmbryonicCount(); got != 64 {
			t.Fatalf("embryonic count %d, want the 64-slot limit", got)
		}
		if k.PolicedDrops() != 136 {
			t.Fatalf("policed drops %d, want 136", k.PolicedDrops())
		}
		if ls.SynDrops() != 136 || hookDrops != 136 {
			t.Fatalf("SynDrops %d / OnSynDrop %d, want 136 each", ls.SynDrops(), hookDrops)
		}

		// A legitimate SYN is throttled too while the embryonic queue is
		// pinned at the limit — admission control cannot tell flood from
		// legit by address — but succeeds once the bogus entries expire.
		k.Arrive(SYNPacket(client(1), srvAddr, false))
		eng.RunUntil(sim.Time(60 * sim.Millisecond))
		if k.ConnsEstablished() != 0 {
			t.Fatal("legit SYN admitted while embryonic queue at limit")
		}
		eng.RunUntil(sim.Time(150 * sim.Millisecond)) // past BogusSynTimeout
		k.Arrive(SYNPacket(client(2), srvAddr, false))
		eng.Run()
		if k.ConnsEstablished() != 1 {
			t.Fatalf("legit SYN not admitted after expiry: established %d", k.ConnsEstablished())
		}
	})
}
