package kernel

import "rescon/internal/netsim"

// Address is a convenience alias so that workloads and examples need not
// import netsim for the common case.
type Address = netsim.Addr

// Addr builds an endpoint from a dotted-quad IP string and a port.
// It panics on malformed input; use netsim.ParseIP for untrusted strings.
func Addr(ip string, port uint16) netsim.Addr {
	return netsim.Addr{IP: netsim.MustParseIP(ip), Port: port}
}

// FilterCIDR builds a CIDR filter from a dotted-quad prefix and a mask
// length.
func FilterCIDR(ip string, bits int) netsim.Filter {
	return netsim.Filter{Template: netsim.MustParseIP(ip), MaskBits: bits}
}

// FilterCIDRComplement builds a complement filter: matches clients NOT in
// the prefix.
func FilterCIDRComplement(ip string, bits int) netsim.Filter {
	return netsim.Filter{Template: netsim.MustParseIP(ip), MaskBits: bits, Complement: true}
}

// SYNPacket builds a connection-request packet (40-byte TCP SYN).
func SYNPacket(src, dst netsim.Addr, bogus bool) *netsim.Packet {
	return &netsim.Packet{Kind: netsim.SYN, Src: src, Dst: dst, Size: 40, Bogus: bogus}
}

// ConnectPacket builds a SYN whose payload is a client callback invoked
// (one wire delay after establishment) with the new connection — the
// client side of the handshake.
func ConnectPacket(src, dst netsim.Addr, onEstablished func(*Conn)) *netsim.Packet {
	return &netsim.Packet{Kind: netsim.SYN, Src: src, Dst: dst, Size: 40, Payload: onEstablished}
}

// DataPacket builds a request packet on an established connection.
func DataPacket(src, dst netsim.Addr, connID uint64, size int, payload any) *netsim.Packet {
	return &netsim.Packet{Kind: netsim.Data, Src: src, Dst: dst, ConnID: connID, Size: size, Payload: payload}
}

// FINPacket builds a teardown packet for an established connection.
func FINPacket(src, dst netsim.Addr, connID uint64) *netsim.Packet {
	return &netsim.Packet{Kind: netsim.FIN, Src: src, Dst: dst, ConnID: connID, Size: 40}
}
