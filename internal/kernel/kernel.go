// Package kernel simulates the monolithic UNIX-like kernel the paper
// modifies: processes, kernel threads, a single CPU with interrupt-level
// preemption, and a TCP/IP network subsystem with three execution models:
//
//   - ModeUnmodified: protocol processing at interrupt level, FIFO across
//     connections, charged to whatever principal happens to run (§3.2).
//   - ModeLRP: lazy receiver processing — early demultiplexing at
//     interrupt level, protocol processing by a per-process kernel thread
//     scheduled at (and charged to) the receiving process (§3.2, [15]).
//   - ModeRC: the paper's system — early demultiplexing to the resource
//     container bound to the receiving socket or connection; protocol
//     processing by a per-process kernel thread in container-priority
//     order, with its resource binding set per packet (§4.7).
//
// Everything runs in virtual time on internal/sim's event engine, with
// CPU costs from CostModel, so experiment results are deterministic.
package kernel

import (
	"fmt"

	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sched"
	"rescon/internal/sim"
	"rescon/internal/telemetry"
	"rescon/internal/trace"
)

// Mode selects the kernel's resource-management model.
type Mode int

const (
	// ModeUnmodified is the stock kernel baseline.
	ModeUnmodified Mode = iota
	// ModeLRP is the lazy-receiver-processing comparison system.
	ModeLRP
	// ModeRC is the resource-container system.
	ModeRC
)

// String names the mode as in the paper's figure legends.
func (m Mode) String() string {
	switch m {
	case ModeUnmodified:
		return "Unmodified"
	case ModeLRP:
		return "LRP"
	case ModeRC:
		return "RC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Kernel is one simulated server machine (uniprocessor, as in §5.2).
type Kernel struct {
	eng    *sim.Engine
	mode   Mode
	costs  CostModel
	sch    sched.Scheduler
	cpu    *CPU // primary processor (receives interrupts)
	cpus   []*CPU
	net    *network
	disk   *Disk
	fcache *FileCache

	procs  []*Process
	nextID uint64

	// Tracer, when attached, records kernel events (packet arrivals,
	// drops, connection lifecycle, dispatches) in a bounded ring.
	Tracer *trace.Tracer

	// tel, when attached, receives timeline samples and virtual-CPU
	// profile attribution; see AttachTelemetry. Every instrumentation
	// point is behind a nil check, so a detached collector is free.
	tel *telemetry.Collector
	// watched are containers sampled into the telemetry usage timeline,
	// in registration order.
	watched []*rc.Container

	// WireLossRate drops each client-injected packet with this
	// probability (deterministically, from the engine's seeded stream) —
	// failure injection for exercising client timeout/retry paths.
	WireLossRate float64
	lossRNG      *sim.RNG

	// Faults, when set, decides the fate of every client-injected packet
	// (drop/duplicate/delay/reorder); fault.Injector satisfies this
	// structurally. It composes with WireLossRate (loss is applied first).
	Faults WireFaults

	// Police is the admission-control / load-shedding policy applied at
	// early demultiplexing, keyed on per-container protocol backlog.
	Police Policing
	// policedDrops counts packets discarded by the policy.
	policedDrops uint64

	// ImplicitNetBinding makes kernel network threads use the generic
	// observed-bindings-with-pruning scheduler binding (§4.3) instead of
	// the exact pending-packet set (§4.7). It exists as an ablation knob:
	// set it before the first Listen call.
	ImplicitNetBinding bool

	// perCPU, when non-nil, routes dispatch through per-CPU run queues
	// with deterministic work stealing; see EnablePerCPUSched.
	perCPU sched.PerCPUScheduler

	// stats
	interruptTime sim.Duration
	startTime     sim.Time
}

// WireFaults decides the fate of client-injected packets: one entry per
// delivery, each an extra delay beyond the wire delay; an empty slice
// loses the packet. See fault.Injector.WireFate.
type WireFaults interface {
	WireFate(pkt *netsim.Packet) []sim.Duration
}

// DefaultSYNPoliceFrac is the fraction of the per-container protocol
// backlog beyond which new connection requests are refused when policing
// is enabled. Small by design: a long SYN backlog is almost always stale
// work (the clients behind it have timed out), so shedding early keeps
// protocol effort for in-progress activities.
const DefaultSYNPoliceFrac = 1.0 / 16

// Policing configures per-container backlog admission control (the
// load-shedding policy of the resilience experiments). With the policy
// enabled, a packet whose destination container's pending-protocol
// backlog exceeds frac×DefaultNetBacklog is discarded at demultiplexing,
// for the cost of the packet filter alone. SYNs (new work) and data/FIN
// (in-progress work) have separate thresholds, so overload sheds new
// connections while letting accepted ones finish.
//
// ModeUnmodified has no per-process protocol backlog to key on, so there
// the policy degrades to an emergency interrupt-level SYN throttle: once
// a listener's embryonic queue holds more than SYNFrac× its capacity,
// further SYNs are refused for the cost of the interrupt alone instead
// of the full protocol processing — the classic receive-livelock
// mitigation (drop early, before investing work). It is off by default
// and exists as the alert.Watchdog's lever on the unmodified kernel.
type Policing struct {
	Enabled bool
	// SYNFrac is the backlog fraction beyond which connection requests
	// are refused. 0 means DefaultSYNPoliceFrac; >= 1 disables.
	SYNFrac float64
	// DataFrac is the backlog fraction beyond which established-
	// connection traffic is refused. 0 or >= 1 disables (the hard queue
	// bound still applies).
	DataFrac float64
}

// PolicedDrops returns how many packets the admission-control policy has
// discarded.
func (k *Kernel) PolicedDrops() uint64 { return k.policedDrops }

// New returns a uniprocessor kernel (the paper's testbed, §5.2) in the
// given mode with the given cost model.
func New(eng *sim.Engine, mode Mode, costs CostModel) *Kernel {
	return NewSMP(eng, mode, costs, 1)
}

// NewSMP returns a kernel with ncpus processors. Interrupts are handled
// by CPU 0, as on the symmetric multiprocessors of the period; threads
// migrate freely (no affinity).
func NewSMP(eng *sim.Engine, mode Mode, costs CostModel, ncpus int) *Kernel {
	if ncpus < 1 {
		ncpus = 1
	}
	k := &Kernel{eng: eng, mode: mode, costs: costs}
	switch mode {
	case ModeRC:
		cs := sched.NewContainerScheduler()
		cs.Capacity = ncpus
		k.sch = cs
	default:
		k.sch = sched.NewDecayScheduler()
	}
	for i := 0; i < ncpus; i++ {
		k.cpus = append(k.cpus, newCPU(k, i))
	}
	k.cpu = k.cpus[0]
	k.net = newNetwork(k)
	return k
}

// NumCPUs returns the number of processors.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// EnablePerCPUSched partitions the scheduler into one run queue per
// processor with deterministic work stealing: each CPU picks from its
// own queue and, when empty, probes the others in a seeded fixed
// permutation, migrating the stolen thread's home. With CostModel.
// Migration set, a thread dispatched on a different processor than it
// last ran on is charged the cache-affinity penalty. Sharding is a pure
// function of (ncpus, engine seed), so runs stay bit-for-bit
// deterministic. It reports whether the active scheduler supports
// per-CPU queues; the shared-queue default is unchanged until this is
// called.
func (k *Kernel) EnablePerCPUSched() bool {
	ps, ok := k.sch.(sched.PerCPUScheduler)
	if !ok {
		return false
	}
	ps.EnablePerCPU(len(k.cpus), k.eng.Rand().Fork(0x5CEDC9))
	k.perCPU = ps
	return true
}

// PerCPUSched reports whether per-CPU run queues are active.
func (k *Kernel) PerCPUSched() bool { return k.perCPU != nil }

// BusyTime sums thread-level CPU time consumed across all processors.
func (k *Kernel) BusyTime() sim.Duration {
	var total sim.Duration
	for _, c := range k.cpus {
		total += c.busy
	}
	return total
}

// kickAll reacts to newly runnable work across all processors: free CPUs
// dispatch; if none is free, one idle-class slice is evicted.
func (k *Kernel) kickAll() {
	for _, c := range k.cpus {
		if c.cur == nil && !c.inIntr {
			c.dispatch()
		}
	}
	// If work is still pending and some CPU runs idle-class background
	// work, evict it (strict idle-class semantics).
	for _, c := range k.cpus {
		c.PreemptIfIdleClass()
	}
}

// dispatchAll re-dispatches every free processor (cap-window retries).
func (k *Kernel) dispatchAll() {
	for _, c := range k.cpus {
		c.dispatch()
	}
}

// Engine returns the simulation engine the kernel runs on.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Mode returns the kernel's resource-management model.
func (k *Kernel) Mode() Mode { return k.mode }

// Costs returns the kernel's cost model.
func (k *Kernel) Costs() CostModel { return k.costs }

// Scheduler returns the active CPU scheduler.
func (k *Kernel) Scheduler() sched.Scheduler { return k.sch }

// RunQueueDepth returns the scheduler's current runnable-entity count —
// the machine's run-queue depth.
func (k *Kernel) RunQueueDepth() int { return k.sch.RunnableCount() }

// Processes returns the kernel's live processes in creation order.
func (k *Kernel) Processes() []*Process { return k.procs }

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// InterruptTime returns the total CPU time spent at interrupt level.
func (k *Kernel) InterruptTime() sim.Duration { return k.interruptTime }

// Utilization summarizes where machine time went so far.
type Utilization struct {
	// Busy, Interrupt and Idle are fractions of total machine capacity
	// (ncpus × elapsed); they sum to 1.
	Busy      float64
	Interrupt float64
	Idle      float64
}

// Utilization reports the CPU breakdown since the start of the
// simulation.
func (k *Kernel) Utilization() Utilization {
	elapsed := sim.Duration(k.Now())
	if elapsed <= 0 {
		return Utilization{Idle: 1}
	}
	capacity := float64(elapsed) * float64(len(k.cpus))
	u := Utilization{
		Busy:      float64(k.BusyTime()) / capacity,
		Interrupt: float64(k.interruptTime) / capacity,
	}
	u.Idle = 1 - u.Busy - u.Interrupt
	return u
}

// Process is a protection domain: one or more threads, a container
// descriptor table, and (in LRP/RC modes) a kernel network thread that
// performs protocol processing for the process's sockets.
type Process struct {
	k    *Kernel
	id   uint64
	name string

	// Principal is the classic scheduler's resource principal.
	Principal *sched.ProcPrincipal
	// DefaultContainer is the container created for the process at fork
	// time (§4.6); nil outside ModeRC.
	DefaultContainer *rc.Container
	// Containers is the process's container descriptor table.
	Containers *rc.Table

	threads   []*Thread
	netThread *Thread
	netQ      *pktQueue
	cpuTime   sim.Duration
	exited    bool
}

// NewProcess creates a process. In ModeRC a default time-share container
// with DefaultPriority is created for it, as fork() does in §4.6.
func (k *Kernel) NewProcess(name string) *Process {
	k.nextID++
	p := &Process{
		k:          k,
		id:         k.nextID,
		name:       name,
		Principal:  sched.NewProcPrincipal(name),
		Containers: rc.NewTable(),
	}
	if k.mode == ModeRC {
		p.DefaultContainer = rc.MustNew(nil, rc.TimeShare, name+"-default",
			rc.Attributes{Priority: DefaultPriority})
	}
	k.procs = append(k.procs, p)
	return p
}

// DefaultPriority is the numeric priority given to containers that have
// not been explicitly prioritized. It must be positive: priority 0 is the
// idle class (§5.7).
const DefaultPriority = 10

// Fork creates a child process inheriting the parent's container
// descriptor table (§4.6). The child gets its own principal; in ModeRC
// its default container is the parent's default container (inherited
// binding) unless the caller rebinds.
func (p *Process) Fork(name string) (*Process, error) {
	child := p.k.NewProcess(name)
	if p.k.mode == ModeRC {
		// NewProcess made a fresh default; a forked child instead
		// inherits the parent's binding.
		_ = child.DefaultContainer.Release()
		child.DefaultContainer = p.DefaultContainer
	}
	tab, err := p.Containers.Fork()
	if err != nil {
		return nil, err
	}
	_ = child.Containers.CloseAll()
	child.Containers = tab
	return child, nil
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// NetBacklog returns the process's pending-protocol queue depth (packets
// admitted at demultiplexing but not yet through protocol processing);
// zero in ModeUnmodified, where no such queue exists.
func (p *Process) NetBacklog() int {
	if p.netQ == nil {
		return 0
	}
	return p.netQ.Len()
}

// NetBacklogBound returns the per-container bound of the process's
// pending-protocol queue, or zero in ModeUnmodified.
func (p *Process) NetBacklogBound() int {
	if p.netQ == nil {
		return 0
	}
	return p.netQ.backlog
}

// CPUTime returns the CPU actually consumed by the process's threads
// (excluding interrupt-level work, which belongs to no process).
func (p *Process) CPUTime() sim.Duration { return p.cpuTime }

// Exit terminates the process: all threads are unregistered and the
// container table is closed.
func (p *Process) Exit() {
	if p.exited {
		return
	}
	p.exited = true
	for _, t := range p.threads {
		t.exit()
	}
	if p.netThread != nil {
		p.netThread.exit()
	}
	_ = p.Containers.CloseAll()
	for i, x := range p.k.procs {
		if x == p {
			p.k.procs = append(p.k.procs[:i], p.k.procs[i+1:]...)
			break
		}
	}
}

// WorkItem is one segment of thread execution: a CPU cost, the mode it
// runs in, the container it is charged to (nil outside ModeRC), and a
// completion callback.
type WorkItem struct {
	// Label is diagnostic.
	Label string
	// Cost is the remaining CPU time the segment needs.
	Cost sim.Duration
	// Kind is user- or kernel-mode, for the container's usage split.
	Kind rc.CPUKind
	// Stage is the kernel execution stage the segment's CPU time is
	// attributed to in the virtual-CPU profile. Left at StageNone it is
	// derived from Kind (user work → StageUser, kernel work →
	// StageSyscall); the network path sets StageSocket explicitly.
	Stage trace.Stage
	// Container is the resource binding the thread assumes while running
	// this segment (§4.2). It must be non-nil in ModeRC.
	Container *rc.Container
	// OnDone runs when the segment's cost has been fully consumed.
	OnDone func()
}

// WorkSource supplies work items on demand; the kernel network thread
// uses one to pick the pending packet with the highest container
// priority at dispatch time (§4.7).
type WorkSource interface {
	HasWork() bool
	NextWork() *WorkItem
}

// Thread is one kernel-schedulable thread.
type Thread struct {
	proc    *Process
	ent     *sched.Entity
	name    string
	fifo    []*WorkItem
	current *WorkItem
	source  WorkSource
	cpuTime sim.Duration
	exited  bool
}

// NewThread creates a thread in the process. In ModeRC it starts bound to
// the process's default container (§4.2: a thread starts with a default
// resource container binding inherited from its creator).
func (p *Process) NewThread(name string) *Thread {
	p.k.nextID++
	t := &Thread{
		proc: p,
		name: name,
		ent: &sched.Entity{
			ID:   p.k.nextID,
			Name: p.name + "/" + name,
			Proc: p.Principal,
		},
	}
	t.ent.Owner = t
	p.k.sch.Register(t.ent)
	if p.k.mode == ModeRC && p.DefaultContainer != nil {
		t.ent.Fallback = p.DefaultContainer
		p.k.sch.Bind(t.ent, p.DefaultContainer, p.k.Now())
	}
	p.threads = append(p.threads, t)
	return t
}

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// Entity returns the thread's scheduler entity.
func (t *Thread) Entity() *sched.Entity { return t.ent }

// CPUTime returns the CPU consumed by the thread.
func (t *Thread) CPUTime() sim.Duration { return t.cpuTime }

// Post queues a work segment on the thread and wakes the CPU.
func (t *Thread) Post(item *WorkItem) {
	if t.exited {
		return
	}
	if item.Cost <= 0 {
		// Zero-cost work completes immediately at the next event; model
		// it as the minimum schedulable quantum of 1 ns to keep the CPU
		// loop uniform.
		item.Cost = 1
	}
	t.proc.k.checkItem(item)
	t.fifo = append(t.fifo, item)
	t.updateRunnable()
	t.proc.k.kickAll()
}

// PostFunc is a convenience wrapper building a WorkItem.
func (t *Thread) PostFunc(label string, cost sim.Duration, kind rc.CPUKind, c *rc.Container, done func()) {
	t.Post(&WorkItem{Label: label, Cost: cost, Kind: kind, Container: c, OnDone: done})
}

// SetSource installs a pull-based work source (kernel network thread).
func (t *Thread) SetSource(s WorkSource) {
	t.source = s
	t.updateRunnable()
}

// Wake re-evaluates runnability after the thread's work source gained
// work, and kicks the CPU.
func (t *Thread) Wake() {
	t.updateRunnable()
	t.proc.k.kickAll()
}

func (t *Thread) hasWork() bool {
	if t.current != nil || len(t.fifo) > 0 {
		return true
	}
	return t.source != nil && t.source.HasWork()
}

func (t *Thread) updateRunnable() {
	runnable := !t.exited && t.hasWork()
	if runnable && t.proc.k.mode == ModeRC && !t.ent.HasLiveBinding() {
		// Every container the thread recently served has been destroyed
		// (e.g. its last connection closed). Fall back to the process
		// default container so the pending work can be scheduled; the
		// work item's own container takes over when the slice starts.
		if d := t.proc.DefaultContainer; d != nil && !d.Destroyed() {
			t.proc.k.sch.Bind(t.ent, d, t.proc.k.Now())
		}
	}
	t.proc.k.sch.SetRunnable(t.ent, runnable)
}

// yieldIdleWork parks a partially processed idle-class work item back
// into the thread's work source when normal-priority work is pending, so
// the thread serves pending packets strictly in container-priority order
// (§4.7). Without this, a half-processed priority-0 packet would block
// the head of the kernel network thread.
func (t *Thread) yieldIdleWork() {
	if t.current == nil || t.source == nil {
		return
	}
	c := t.current.Container
	if c == nil || c.Class() != rc.TimeShare || c.EffectivePriority() > 0 {
		return
	}
	pq, ok := t.source.(*pktQueue)
	if !ok || pq.topPriority() <= 0 {
		return
	}
	pq.requeueFront(t.current)
	t.current = nil
}

// next pops the thread's next work item (FIFO first, then source).
func (t *Thread) next() *WorkItem {
	if len(t.fifo) > 0 {
		item := t.fifo[0]
		t.fifo[0] = nil
		t.fifo = t.fifo[1:]
		if len(t.fifo) == 0 {
			t.fifo = nil
		}
		return item
	}
	if t.source != nil && t.source.HasWork() {
		item := t.source.NextWork()
		if item != nil {
			t.proc.k.checkItem(item)
		}
		return item
	}
	return nil
}

func (t *Thread) exit() {
	if t.exited {
		return
	}
	t.exited = true
	t.fifo = nil
	t.current = nil
	t.source = nil
	t.proc.k.sch.Unregister(t.ent)
}

// checkItem enforces the ModeRC invariant that every work segment has a
// container to charge, and normalizes the telemetry stage from the CPU
// kind when the poster left it unset.
func (k *Kernel) checkItem(item *WorkItem) {
	if k.mode == ModeRC && item.Container == nil {
		panic(fmt.Sprintf("kernel: ModeRC work item %q without a container", item.Label))
	}
	if item.Stage == trace.StageNone {
		if item.Kind == rc.UserCPU {
			item.Stage = trace.StageUser
		} else {
			item.Stage = trace.StageSyscall
		}
	}
}
