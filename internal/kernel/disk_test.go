package kernel

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestDiskSingleRead(t *testing.T) {
	eng, k := newKernel(ModeRC)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 5})
	var doneAt sim.Time
	if !k.Disk().Read(c, 64*1024, func() { doneAt = eng.Now() }) {
		t.Fatal("read rejected")
	}
	eng.Run()
	want := DefaultDiskSeek + 64*DefaultDiskPerKB
	if doneAt != sim.Time(want) {
		t.Fatalf("read finished at %v, want %v", doneAt, want)
	}
	u := c.Usage()
	if u.DiskReads != 1 || u.DiskBytes != 64*1024 || u.DiskTime != want {
		t.Fatalf("disk accounting %+v", u)
	}
}

func TestDiskAccountingPropagates(t *testing.T) {
	eng, k := newKernel(ModeRC)
	parent := rc.MustNew(nil, rc.FixedShare, "p", rc.Attributes{})
	leaf := rc.MustNew(parent, rc.TimeShare, "l", rc.Attributes{Priority: 1})
	k.Disk().Read(leaf, 1024, nil)
	eng.Run()
	if parent.Usage().DiskReads != 1 || parent.Usage().DiskBytes != 1024 {
		t.Fatalf("parent disk usage %+v", parent.Usage())
	}
}

func TestDiskPriorityOrder(t *testing.T) {
	eng, k := newKernel(ModeRC)
	hi := rc.MustNew(nil, rc.TimeShare, "hi", rc.Attributes{Priority: 20})
	lo := rc.MustNew(nil, rc.TimeShare, "lo", rc.Attributes{Priority: 1})
	var order []string
	// First read occupies the head; the next two queue and are reordered
	// by priority even though the low one arrived first.
	k.Disk().Read(lo, 1024, func() { order = append(order, "first") })
	k.Disk().Read(lo, 1024, func() { order = append(order, "lo") })
	k.Disk().Read(hi, 1024, func() { order = append(order, "hi") })
	eng.Run()
	if len(order) != 3 || order[1] != "hi" || order[2] != "lo" {
		t.Fatalf("service order %v, want [first hi lo]", order)
	}
}

func TestDiskFIFOWithoutContainers(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Disk().Read(nil, 1024, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("unmodified disk should be FIFO: %v", order)
		}
	}
}

func TestDiskQoSWeightedSharing(t *testing.T) {
	// Two equal-priority activities with QoS weights 1 and 3 keeping the
	// disk saturated: served bytes split ~1:3 (§4.4 disk bandwidth
	// allocation).
	eng, k := newKernel(ModeRC)
	light := rc.MustNew(nil, rc.TimeShare, "light", rc.Attributes{Priority: 5, QoSWeight: 1})
	heavy := rc.MustNew(nil, rc.TimeShare, "heavy", rc.Attributes{Priority: 5, QoSWeight: 3})
	d := k.Disk()
	var submit func(c *rc.Container)
	submit = func(c *rc.Container) {
		d.Read(c, 8*1024, func() { submit(c) }) // always one pending per flow
	}
	// Two outstanding per flow keeps the queue contested.
	submit(light)
	submit(light)
	submit(heavy)
	submit(heavy)
	eng.RunUntil(sim.Time(20 * sim.Second))
	lt, ht := light.Usage().DiskTime, heavy.Usage().DiskTime
	ratio := float64(ht) / float64(lt)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("disk service ratio %.2f, want ~3", ratio)
	}
}

func TestDiskQueueLimit(t *testing.T) {
	_, k := newKernel(ModeRC)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	accepted := 0
	for i := 0; i < DefaultDiskQueueLimit+10; i++ {
		if k.Disk().Read(c, 1024, nil) {
			accepted++
		}
	}
	// One request is in service plus a full queue.
	if accepted != DefaultDiskQueueLimit+1 {
		t.Fatalf("accepted %d, want %d", accepted, DefaultDiskQueueLimit+1)
	}
	if c.Usage().PacketsDropped != 9 {
		t.Fatalf("drops %d, want 9", c.Usage().PacketsDropped)
	}
}

func TestDiskOverlapsCPU(t *testing.T) {
	// DMA: the CPU does other work while the disk seeks.
	eng, k := newKernel(ModeRC)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	p := k.NewProcess("app")
	th := p.NewThread("t")
	var cpuDone, diskDone sim.Time
	k.Disk().Read(c, 1024, func() { diskDone = eng.Now() })
	th.PostFunc("compute", 5*sim.Millisecond, rc.UserCPU, c, func() { cpuDone = eng.Now() })
	eng.Run()
	if cpuDone != sim.Time(5*sim.Millisecond) {
		t.Fatalf("CPU work delayed by disk: done at %v", cpuDone)
	}
	if diskDone >= sim.Time(9*sim.Millisecond) {
		t.Fatalf("disk did not overlap: done at %v", diskDone)
	}
}
