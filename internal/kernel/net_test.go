package kernel

import (
	"testing"

	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestSocketBufferMemoryAdmission(t *testing.T) {
	// §4.4: socket-buffer memory is charged to the socket's container;
	// a subtree at its memory limit refuses further connections.
	eng, k := newKernel(ModeRC)
	// Room for exactly 2 connections.
	lim := rc.MustNew(nil, rc.FixedShare, "guest",
		rc.Attributes{MemLimit: 2 * SocketBufferBytes})
	sockCont := rc.MustNew(lim, rc.TimeShare, "sock", rc.Attributes{Priority: 5})
	accepted, drops := 0, 0
	_, err := k.Listen(k.NewProcess("httpd"), ListenConfig{
		Local:        srvAddr,
		Container:    sockCont,
		OnAcceptable: func(l *ListenSocket) { l.Accept(); accepted++ },
		OnSynDrop:    func(Address) { drops++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		k.ClientSend(SYNPacket(client(uint16(3000+i)), srvAddr, false))
	}
	eng.Run()
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2 (memory limit)", accepted)
	}
	if drops != 2 {
		t.Fatalf("drops %d, want 2", drops)
	}
	if got := lim.Usage().Memory; got != 2*SocketBufferBytes {
		t.Fatalf("memory charged %d, want %d", got, 2*SocketBufferBytes)
	}
}

func TestSocketBufferMemoryReleasedOnClose(t *testing.T) {
	eng, k := newKernel(ModeRC)
	lim := rc.MustNew(nil, rc.FixedShare, "guest",
		rc.Attributes{MemLimit: SocketBufferBytes})
	sockCont := rc.MustNew(lim, rc.TimeShare, "sock", rc.Attributes{Priority: 5})
	var conns []*Conn
	accepted := 0
	_, _ = k.Listen(k.NewProcess("httpd"), ListenConfig{
		Local:     srvAddr,
		Container: sockCont,
		OnAcceptable: func(l *ListenSocket) {
			c, ok := l.Accept()
			if ok {
				conns = append(conns, c)
				accepted++
			}
		},
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	if accepted != 1 {
		t.Fatalf("accepted %d", accepted)
	}
	// Second connection refused while the first holds the buffer...
	k.ClientSend(SYNPacket(client(2), srvAddr, false))
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	if accepted != 1 {
		t.Fatalf("accepted %d, want still 1", accepted)
	}
	// ...and admitted after it closes.
	conns[0].Close()
	if lim.Usage().Memory != 0 {
		t.Fatalf("memory not released: %d", lim.Usage().Memory)
	}
	k.ClientSend(SYNPacket(client(3), srvAddr, false))
	eng.Run()
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2 after release", accepted)
	}
}

func TestQoSWeightedProtocolService(t *testing.T) {
	// Two containers at equal priority with QoS weights 1 and 3: under a
	// standing backlog, protocol processing divides ~1:3 (§4.1 "network
	// QoS values").
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	light := rc.MustNew(nil, rc.TimeShare, "light", rc.Attributes{Priority: 5, QoSWeight: 1})
	heavy := rc.MustNew(nil, rc.TimeShare, "heavy", rc.Attributes{Priority: 5, QoSWeight: 3})
	var conns []*Conn
	_, _ = k.Listen(p, ListenConfig{
		Local: srvAddr,
		OnAcceptable: func(l *ListenSocket) {
			c, _ := l.Accept()
			if len(conns) == 0 {
				c.SetContainer(light)
			} else {
				c.SetContainer(heavy)
			}
			conns = append(conns, c)
		},
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	k.ClientSend(SYNPacket(client(2), srvAddr, false))
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if len(conns) != 2 {
		t.Fatalf("conns %d", len(conns))
	}
	// Offer more protocol work than the CPU can process (45 µs per
	// packet, two packets every 50 µs), so the bounded queues stay full
	// and the weighted-fair order decides which work gets done.
	tick := eng.Every(50*sim.Microsecond, func() {
		k.Arrive(DataPacket(client(1), srvAddr, conns[0].ID(), 100, nil))
		k.Arrive(DataPacket(client(2), srvAddr, conns[1].ID(), 100, nil))
	})
	eng.RunUntil(sim.Time(3 * sim.Second))
	tick.Stop()
	lu := light.Usage().CPUKernel
	hu := heavy.Usage().CPUKernel
	if lu == 0 || hu == 0 {
		t.Fatalf("no protocol service recorded: light=%v heavy=%v", lu, hu)
	}
	ratio := float64(hu) / float64(lu)
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("QoS service ratio %.2f, want ~3.0", ratio)
	}
}

func TestQoSDefaultWeightEqualService(t *testing.T) {
	// Default weights: equal-priority backlogged flows share equally.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	a := rc.MustNew(nil, rc.TimeShare, "a", rc.Attributes{Priority: 5})
	b := rc.MustNew(nil, rc.TimeShare, "b", rc.Attributes{Priority: 5})
	var conns []*Conn
	_, _ = k.Listen(p, ListenConfig{
		Local: srvAddr,
		OnAcceptable: func(l *ListenSocket) {
			c, _ := l.Accept()
			if len(conns) == 0 {
				c.SetContainer(a)
			} else {
				c.SetContainer(b)
			}
			conns = append(conns, c)
		},
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	k.ClientSend(SYNPacket(client(2), srvAddr, false))
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	tick := eng.Every(50*sim.Microsecond, func() {
		k.Arrive(DataPacket(client(1), srvAddr, conns[0].ID(), 100, nil))
		k.Arrive(DataPacket(client(2), srvAddr, conns[1].ID(), 100, nil))
	})
	eng.RunUntil(sim.Time(3 * sim.Second))
	tick.Stop()
	au, bu := a.Usage().CPUKernel, b.Usage().CPUKernel
	ratio := float64(au) / float64(bu)
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("equal-weight service ratio %.2f, want ~1.0", ratio)
	}
}

func TestMemoryAdmissionOnlyInRCMode(t *testing.T) {
	// Without containers there is no memory admission: the unmodified
	// kernel accepts regardless.
	eng, k := newKernel(ModeUnmodified)
	accepted := 0
	_, _ = k.Listen(k.NewProcess("httpd"), ListenConfig{
		Local:        srvAddr,
		OnAcceptable: func(l *ListenSocket) { l.Accept(); accepted++ },
	})
	for i := 0; i < 8; i++ {
		k.ClientSend(SYNPacket(client(uint16(i)), srvAddr, false))
	}
	eng.Run()
	if accepted != 8 {
		t.Fatalf("accepted %d, want 8", accepted)
	}
}

func TestIdleWorkYieldsToNormalPackets(t *testing.T) {
	// A half-processed priority-0 packet is parked when normal-priority
	// protocol work arrives (§4.7 strict priority order), and finishes
	// later.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	floodCont := rc.MustNew(nil, rc.TimeShare, "flood", rc.Attributes{Priority: 0})
	var accepts []string
	mkListener := func(name string, filter netsim.Filter, cont *rc.Container) {
		_, err := k.Listen(p, ListenConfig{
			Local:     srvAddr,
			Filter:    filter,
			Container: cont,
			OnAcceptable: func(l *ListenSocket) {
				l.Accept()
				accepts = append(accepts, name)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mkListener("good", netsim.Wildcard, nil)
	mkListener("flood", FilterCIDR("66.0.0.0", 8), floodCont)

	// A legit SYN from the flood prefix starts 107 µs of priority-0
	// protocol work; 30 µs in, a good SYN arrives. The good connection
	// must be established first.
	k.Arrive(SYNPacket(Addr("66.0.0.1", 99), srvAddr, false))
	eng.After(30*sim.Microsecond, func() {
		k.Arrive(SYNPacket(Addr("10.1.0.1", 99), srvAddr, false))
	})
	eng.Run()
	if len(accepts) != 2 || accepts[0] != "good" || accepts[1] != "flood" {
		t.Fatalf("accept order %v, want [good flood]", accepts)
	}
}

func TestKernelAccessors(t *testing.T) {
	eng, k := newKernel(ModeRC)
	if k.Engine() != eng || k.Mode() != ModeRC || k.Scheduler() == nil {
		t.Fatal("accessors broken")
	}
	if k.Costs().PerRequestCost() != k.Costs().Interrupt+k.Costs().RecvProtocol+k.Costs().UserStatic+k.Costs().SendProtocol {
		t.Fatal("PerRequestCost wrong")
	}
	if k.Costs().PerRequestConnCost() != k.Costs().Interrupt+k.Costs().SYNProtocol+k.Costs().ConnSetup {
		t.Fatal("PerRequestConnCost wrong")
	}
	p := k.NewProcess("app")
	if p.Name() != "app" {
		t.Fatal("process name")
	}
	th := p.NewThread("t")
	if th.Process() != p {
		t.Fatal("thread process")
	}
	var conn *Conn
	ls, _ := k.Listen(p, ListenConfig{
		Local:        srvAddr,
		OnAcceptable: func(l *ListenSocket) { conn, _ = l.Accept() },
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	eng.Run()
	if conn.FD() == 0 || conn.Process() != p {
		t.Fatal("conn accessors")
	}
	if ls.Pending() != 0 {
		t.Fatal("accept queue should be drained")
	}
	if k.cpu.BusyTime() < 0 {
		t.Fatal("busy time")
	}
	d := k.Disk()
	if d.QueueLen() != 0 || d.BusyTime() != 0 {
		t.Fatal("fresh disk state")
	}
	if p.netQ.Len() != 0 {
		t.Fatal("pending packets on idle kernel")
	}
}
