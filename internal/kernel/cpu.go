package kernel

import (
	"rescon/internal/netsim"
	"rescon/internal/rc"
	"rescon/internal/sched"
	"rescon/internal/sim"
	"rescon/internal/trace"
)

// intrWork is one unit of interrupt-level processing. Interrupts have
// strictly higher priority than any thread (§3.2): they preempt the
// running slice and run FIFO to completion.
type intrWork struct {
	label string
	cost  sim.Duration
	// container, when non-nil, receives the rc accounting for the work
	// (RC-mode demultiplexing charges the destination container).
	container *rc.Container
	// chargePreempted charges the work to whatever principal was running
	// when the interrupt fired — the unmodified kernel's misaccounting.
	chargePreempted bool
	// deferTel suppresses the default telemetry attribution (interrupt
	// cost charged to the preempted principal — the baseline's "victim
	// pays" story): LRP/RC demux work attributes itself to the packet's
	// destination once early demultiplexing has identified it.
	deferTel bool
	onDone   func()
}

// running describes the thread slice currently on the CPU.
type running struct {
	th      *Thread
	item    *WorkItem
	started sim.Time
	ev      sim.Event
	// mig is the cache-affinity migration penalty prepended to this
	// slice (per-CPU scheduling): charged like slice time, but it makes
	// no progress on the item's cost.
	mig sim.Duration
}

// CPU models one processor: one thread slice at a time, preempted (on
// the primary processor) by FIFO interrupt work.
type CPU struct {
	k     *Kernel
	id    int
	intrQ *netsim.Queue[*intrWork]
	// inIntr is true while interrupt work occupies the CPU.
	inIntr bool
	// preempted is the entity that was running when interrupt level was
	// entered; baseline interrupt work is (mis)charged to it.
	preempted *sched.Entity
	cur       *running
	retryEv   sim.Event
	busy      sim.Duration
}

func newCPU(k *Kernel, id int) *CPU {
	return &CPU{k: k, id: id, intrQ: netsim.NewQueue[*intrWork](0)}
}

// BusyTime returns thread-level CPU time consumed (interrupt time is
// accounted separately on the kernel).
func (c *CPU) BusyTime() sim.Duration { return c.busy }

// RaiseInterrupt queues interrupt-level work and preempts any running
// thread slice.
func (c *CPU) RaiseInterrupt(w *intrWork) {
	c.intrQ.Push(w)
	if c.inIntr {
		return // will be drained by the active interrupt loop
	}
	if c.cur != nil {
		th := c.cur.th
		c.preemptCurrent()
		c.preempted = th.ent
	} else {
		c.preempted = nil
	}
	c.inIntr = true
	c.runNextIntr()
}

// PreemptIfIdleClass stops a running idle-class slice (a priority-0
// time-share container, §5.7) so that newly runnable normal-priority work
// takes the CPU immediately: background work runs strictly when the CPU
// would otherwise be idle.
func (c *CPU) PreemptIfIdleClass() {
	if c.inIntr || c.cur == nil {
		return
	}
	cont := c.cur.item.Container
	if cont == nil || cont.Class() != rc.TimeShare || cont.EffectivePriority() > 0 {
		return
	}
	c.preemptCurrent()
	c.dispatch()
}

// preemptCurrent stops the running slice, charging the partial progress.
func (c *CPU) preemptCurrent() {
	r := c.cur
	c.cur = nil
	r.th.ent.SetOnCPU(false)
	now := c.k.Now()
	elapsed := now.Sub(r.started)
	r.ev.Cancel()
	if elapsed > 0 {
		c.chargeSlice(r.th, r.item, elapsed, now)
		// Only time past the migration penalty advanced the item.
		progress := elapsed - r.mig
		if progress < 0 {
			progress = 0
		}
		r.item.Cost -= progress
	}
	// The item stays as the thread's current work and resumes later.
}

func (c *CPU) runNextIntr() {
	w, ok := c.intrQ.Pop()
	if !ok {
		c.inIntr = false
		c.preempted = nil
		c.dispatch()
		return
	}
	if c.k.Tracer.Enabled(trace.KindInterrupt) {
		var name string
		if w.container != nil {
			name = w.container.Name()
		}
		c.k.Tracer.Emit(trace.Event{
			At: c.k.Now(), Kind: trace.KindInterrupt, CPU: c.id,
			Stage: trace.StageInterrupt, Principal: name, Cost: w.cost,
			Detail: w.label,
		})
	}
	c.k.eng.After(w.cost, func() {
		now := c.k.Now()
		c.k.interruptTime += w.cost
		if w.container != nil {
			w.container.ChargeCPU(rc.KernelCPU, w.cost)
		}
		if w.chargePreempted && c.preempted != nil {
			// The classic misaccounting: interrupt time lands on the
			// scheduler state of the unlucky preempted principal.
			c.k.sch.Charge(c.preempted, nil, w.cost, now)
		}
		if c.k.tel != nil && !w.deferTel {
			// Profile attribution for interrupt-level work that is not
			// re-attributed at demux time: the baseline's misaccounting
			// made visible — the preempted principal pays (Fig 14).
			name := "(idle)"
			if c.preempted != nil {
				name = c.preempted.Name
			}
			c.k.tel.ChargeStage(name, trace.StageInterrupt, w.cost)
		}
		if w.onDone != nil {
			w.onDone()
		}
		c.runNextIntr()
	})
}

// telPrincipal names the resource principal a slice is attributed to in
// telemetry: the bound container when there is one, else the scheduler
// entity. Names, not numeric IDs — container IDs come from a global
// counter and are not stable across parallel runs.
func telPrincipal(th *Thread, item *WorkItem) string {
	if item.Container != nil {
		return item.Container.Name()
	}
	return th.ent.Name
}

// chargeSlice performs all accounting for d of CPU consumed by th running
// item.
func (c *CPU) chargeSlice(th *Thread, item *WorkItem, d sim.Duration, now sim.Time) {
	if item.Container != nil {
		item.Container.ChargeCPU(item.Kind, d)
	}
	c.k.sch.Charge(th.ent, item.Container, d, now)
	th.cpuTime += d
	th.proc.cpuTime += d
	c.busy += d
	if c.k.tel != nil {
		c.k.tel.ChargeStage(telPrincipal(th, item), item.Stage, d)
	}
}

// dispatch puts the next thread slice on the CPU if it is free.
func (c *CPU) dispatch() {
	if c.inIntr || c.cur != nil {
		return
	}
	now := c.k.Now()
	// Entities put aside because their pending work's container is out
	// of cap budget; restored after the scheduling decision, with a
	// retry armed for the next window.
	var overBudget []*sched.Entity
	defer func() {
		if len(overBudget) == 0 {
			return
		}
		for _, e := range overBudget {
			c.k.sch.SetRunnable(e, true)
		}
		if b, ok := c.k.sch.(sched.SliceBudgeter); ok {
			c.scheduleRetry(b.NextWindow(now))
		}
	}()
	for {
		e := c.pick(now)
		if e == nil {
			if next, ok := c.k.sch.NextRelease(now); ok {
				c.scheduleRetry(next)
			}
			return
		}
		th := e.Owner.(*Thread)
		th.yieldIdleWork()
		if th.current == nil {
			th.current = th.next()
		}
		if th.current == nil {
			// The entity looked runnable but has no work (stale state);
			// fix it up and pick again.
			th.updateRunnable()
			continue
		}
		if item := th.current; item.Container != nil && !item.Container.Destroyed() {
			if b, ok := c.k.sch.(sched.SliceBudgeter); ok && b.SliceBudget(item.Container, now) <= 0 {
				// The work's own container is out of budget this window:
				// the thread may have standing via other bindings, but
				// this work must not run (§5.6 exact cap enforcement).
				c.k.sch.SetRunnable(e, false)
				overBudget = append(overBudget, e)
				continue
			}
		}
		c.start(th, now)
		return
	}
}

// pick selects the next entity for this CPU: the per-CPU scheduler when
// sharded run queues are enabled, else the shared global Pick.
func (c *CPU) pick(now sim.Time) *sched.Entity {
	if c.k.perCPU != nil {
		return c.k.perCPU.PickFor(c.id, now)
	}
	return c.k.sch.Pick(now)
}

// start begins a slice of the thread's current item.
func (c *CPU) start(th *Thread, now sim.Time) {
	item := th.current
	if item.Container != nil && item.Container.Destroyed() {
		// The activity was torn down while this work sat queued (e.g. a
		// response send racing a connection close). Charge the process
		// default container instead of a dead principal.
		item.Container = th.proc.DefaultContainer
	}
	if item.Container != nil {
		// Assuming the item's resource binding (§4.2); this also folds
		// the container into the thread's scheduler binding (§4.3).
		if th.ent.Resource != item.Container {
			c.k.sch.Bind(th.ent, item.Container, now)
		}
	}
	slice := c.k.sch.Quantum()
	if item.Cost < slice {
		slice = item.Cost
	}
	if b, ok := c.k.sch.(sched.SliceBudgeter); ok && item.Container != nil {
		if sb := b.SliceBudget(item.Container, now); sb < slice {
			slice = sb
		}
	}
	if c.k.tel != nil {
		c.k.tel.CountDispatch(telPrincipal(th, item))
	}
	if c.k.Tracer.Enabled(trace.KindDispatch) {
		c.k.Tracer.Emit(trace.Event{
			At: now, Kind: trace.KindDispatch, CPU: c.id, Stage: item.Stage,
			Principal: telPrincipal(th, item), Cost: slice, Detail: item.Label,
		})
	}
	var mig sim.Duration
	if c.k.perCPU != nil {
		if last := th.ent.LastCPU(); last >= 0 && last != c.id {
			mig = c.k.costs.Migration
		}
		th.ent.NoteRanOn(c.id)
	}
	th.ent.SetOnCPU(true)
	r := &running{th: th, item: item, started: now, mig: mig}
	c.cur = r
	r.ev = c.k.eng.After(mig+slice, func() { c.completeSlice(r, slice) })
}

// completeSlice finishes a slice: accounting, completion callback, next
// dispatch.
func (c *CPU) completeSlice(r *running, slice sim.Duration) {
	now := c.k.Now()
	c.cur = nil
	r.th.ent.SetOnCPU(false)
	// The migration penalty burns CPU (and is charged) but makes no
	// progress on the item itself — cold caches, not useful work.
	c.chargeSlice(r.th, r.item, slice+r.mig, now)
	r.item.Cost -= slice
	var done func()
	if r.item.Cost <= 0 {
		r.th.current = nil
		done = r.item.OnDone
	}
	r.th.updateRunnable()
	if done != nil {
		done()
	}
	c.dispatch()
}

// scheduleRetry arms a dispatch retry at t (for throttled threads whose
// cap budget replenishes at the next window).
func (c *CPU) scheduleRetry(t sim.Time) {
	if c.retryEv.Pending() && c.retryEv.At() <= t {
		return
	}
	c.retryEv.Cancel()
	c.retryEv = c.k.eng.At(t, func() { c.k.dispatchAll() })
}
